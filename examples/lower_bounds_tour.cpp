// Scenario: the paper's lower-bound proofs, executed. Each proof is a
// scheduling adversary; this tour runs them one by one and shows what they
// do to real algorithms — the part of a theory paper a library can make
// tangible.
#include <cstdio>
#include <vector>

#include "core/adversary.h"
#include "core/bounds.h"
#include "core/measures.h"
#include "core/contention_detection.h"
#include "core/algorithm_registry.h"
#include "sched/sched.h"

int main() {
  using namespace cfc;

  // ---------------------------------------------------------------- Lemma 2
  std::printf("== Lemma 2: the two-process merge ==\n");
  std::printf(
      "Claim: correct detectors force every pair of solo runs to 'cross'\n"
      "(one writes a register the other reads, with different values).\n");
  {
    SimSetup good = [](Sim& sim) {
      static std::vector<std::unique_ptr<Detector>> keep;
      keep.push_back(setup_detection(
          sim,
          AlgorithmRegistry::instance().detector("splitter-tree-l2").factory,
          4));
    };
    const SoloProfile p0 = solo_profile(good, 0);
    const SoloProfile p1 = solo_profile(good, 1);
    std::printf("splitter-tree p0/p1 cross: %s\n",
                lemma2_condition(p0, p1) ? "yes (as required)" : "NO");

    SimSetup bad = [](Sim& sim) {
      static std::vector<std::unique_ptr<Detector>> keep;
      keep.push_back(setup_detection(sim, SelfishDetector::factory(), 2));
    };
    const MergeResult res = lemma2_merge(bad, 0, 1);
    std::printf(
        "selfish detector (never crosses): merge makes both win: %s\n\n",
        res.both_won() ? "yes -> unsound, QED" : "no");
  }

  // -------------------------------------------------------------- Theorem 5
  std::printf("== Theorem 5: log n registers even contention-free ==\n");
  for (const int n : {8, 64}) {
    Sim sim;
    auto alg = setup_naming(
        sim, AlgorithmRegistry::instance().naming("taf-tree").factory, n);
    run_sequentially(sim);
    int max_regs = 0;
    for (Pid p = 0; p < n; ++p) {
      max_regs = std::max(max_regs, measure_all(sim.trace(), p).registers);
    }
    std::printf("n=%2d: some process touched %d bits (bound: %d)\n", n,
                max_regs, bounds::thm5_cf_register_lower(
                              static_cast<std::uint64_t>(n)));
  }

  // -------------------------------------------------------------- Theorem 6
  std::printf("\n== Theorem 6: the lockstep symmetry adversary ==\n");
  std::printf(
      "Identical processes stepped in lockstep: every op except\n"
      "test-and-flip leaves at least |group|-1 of them indistinguishable.\n");
  for (const bool use_taf : {false, true}) {
    const int n = 16;
    Sim sim;
    const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
    auto alg = setup_naming(
        sim,
        registry.naming(use_taf ? "taf-tree" : "tas-scan").factory, n);
    std::vector<Pid> group;
    for (Pid p = 0; p < n; ++p) {
      group.push_back(p);
    }
    const LockstepResult res = lockstep_symmetry_adversary(sim, group);
    std::printf("  %-9s rounds until the group collapses: %llu (%s)\n",
                use_taf ? "taf-tree:" : "tas-scan:",
                static_cast<unsigned long long>(res.rounds),
                use_taf ? "halves each round: log n" : "minus one per "
                                                       "round: n-1");
  }

  // -------------------------------------------------------------- Theorem 7
  std::printf("\n== Theorem 7: tas-only contention-free register cost ==\n");
  {
    const int n = 10;
    Sim sim;
    auto alg = setup_naming(
        sim, AlgorithmRegistry::instance().naming("tas-scan").factory, n);
    run_sequentially(sim);
    std::printf("sequential run, registers touched per process:");
    for (Pid p = 0; p < n; ++p) {
      std::printf(" %d", measure_all(sim.trace(), p).registers);
    }
    std::printf("\nthe late processes pay n-1 = %d — contention-free!\n", n - 1);
  }

  // ------------------------------------------------------- Lemma 3 / Lemma 6
  std::printf("\n== Lemmas 3 & 6: the counting inequalities ==\n");
  std::printf(
      "Any correct detector's solo profile (w writes, r read-registers,\n"
      "c registers) must satisfy them; a hypothetical 'constant-cost'\n"
      "bit-register algorithm at n = 2^40 would not:\n");
  std::printf("  lemma3(n=2^40, l=1, w=2, r=2) -> %s\n",
              bounds::lemma3_satisfied(1ull << 40, 1, 2, 2)
                  ? "satisfiable"
                  : "IMPOSSIBLE (so no such algorithm exists)");
  std::printf("  lemma6(n=2^40, l=1, c=2, w=2) -> %s\n",
              bounds::lemma6_satisfied(1ull << 40, 1, 2, 2)
                  ? "satisfiable"
                  : "IMPOSSIBLE (so no such algorithm exists)");
  return 0;
}
