// Scenario: picking a lock for a machine whose word granularity you choose.
//
// The paper's Theorem 3 trades atomicity l (bits per atomic access) against
// contention-free cost 7*ceil(log n / l). This example builds the tree
// algorithm for a range of atomicities, verifies mutual exclusion under
// heavy simulated contention, and prints the cost curve so the trade-off is
// concrete — the engineering question behind multi-grain memory access
// ([MS93] packs several small registers into one word for exactly this
// reason).
#include <cstdio>
#include <vector>

#include "analysis/study.h"
#include "core/algorithm_registry.h"
#include "core/bounds.h"
#include "sched/sched.h"

int main() {
  using namespace cfc;
  const int n = 256;

  std::printf("mutual exclusion for n = %d processes\n\n", n);
  std::printf("l (bits) | cf steps | cf registers | 7ceil(logn/l) | algorithm\n");
  std::printf("---------+----------+--------------+---------------+----------\n");
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
  // One campaign over the registry's Theorem 3 grid: the per-atomicity
  // cells interleave across the experiment pool instead of running one
  // atomicity at a time.
  Campaign campaign;
  std::vector<int> atomicities;
  for (const MutexAlgorithmEntry* entry :
       registry.mutex_for_n(n, "thm3-exact")) {
    const int l = entry->info.atomicity_param;
    if (l > bounds::ceil_log2(n)) {
      continue;  // the theorem covers 1 <= l <= log n
    }
    campaign.add(StudySpec::of(entry->info.name)
                     .kind(StudyKind::Mutex)
                     .n(n)
                     .policy(AccessPolicy::RegistersOnly)
                     .sample_pids(4)
                     .contention_free());
    atomicities.push_back(l);
  }
  const std::vector<StudyResult> results = campaign.run();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StudyResult& r = results[i];
    std::printf("%8d | %8d | %12d | %13d | %s\n", atomicities[i], r.cf.steps,
                r.cf.registers,
                bounds::thm3_cf_step_upper(n, atomicities[i]),
                r.subject.c_str());
  }

  // Contended correctness: 16 processes, 3 critical sections each, random
  // schedules. The simulator throws if two processes ever share the CS.
  std::printf("\ncontention check (16 processes x 3 sessions, 20 seeds): ");
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Sim sim;
    auto alg =
        setup_mutex(sim, registry.mutex("thm3-exact-l3").factory, 16, 3);
    RandomScheduler rnd(seed);
    if (drive(sim, rnd, RunLimits{500'000}) != RunOutcome::AllDone) {
      std::printf("run did not finish (seed %llu)\n",
                  static_cast<unsigned long long>(seed));
      return 1;
    }
  }
  std::printf("mutual exclusion + deadlock freedom held\n");

  // The practical summary the paper's introduction gestures at:
  std::printf(
      "\nreading the table: with single bits (l=1) a lock costs ~%d\n"
      "uncontended accesses; with a byte of atomicity (l=8) it costs %d.\n"
      "Lamport's algorithm at l = log n = %d is the constant-7 endpoint.\n",
      bounds::thm3_cf_step_upper(n, 1), bounds::thm3_cf_step_upper(n, 8),
      bounds::ceil_log2(n));
  return 0;
}
