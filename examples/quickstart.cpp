// Quickstart: simulate Lamport's fast mutual exclusion algorithm, measure
// its contention-free complexity the way the paper defines it, and check
// the Theorem 1/2 lower bounds against the measurement.
//
//   $ ./examples/quickstart
//
// Walkthrough:
//  1. A Sim owns the shared registers and the processes. Algorithms are
//     C++20 coroutines that suspend at every shared-memory access, so a
//     scheduler controls the interleaving at the granularity of the paper's
//     events.
//  2. SoloScheduler produces the paper's contention-free runs; the trace
//     measurement then counts steps (accesses) and registers (distinct
//     registers) inside the entry->exit window.
//  3. The measured summary goes through the unified Study API: one
//     StudySpec describes the measurement, one StudyResult carries every
//     measure (and serializes to the canonical JSON with to_json).
#include <cstdio>

#include "analysis/study.h"
#include "core/algorithm_registry.h"
#include "core/bounds.h"
#include "sched/sched.h"

int main() {
  using namespace cfc;

  const int n = 16;

  // --- Manual tour: one process entering and leaving its critical section
  // alone, step by step.
  Sim sim;
  const MutexFactory lamport =
      AlgorithmRegistry::instance().mutex("lamport-fast").factory;
  auto mutex = setup_mutex(sim, lamport, n, /*sessions=*/1);
  std::printf("spawned %d processes; registers in shared memory: %d\n",
              sim.process_count(), sim.memory().size());

  const Pid p = 3;
  SoloScheduler solo(p);
  drive(sim, solo);

  std::printf("process %d ran alone; accesses performed: %llu\n", p,
              static_cast<unsigned long long>(sim.access_count(p)));
  for (const Access& a : sim.trace().accesses_of(p)) {
    std::printf("  seq=%-3llu %-5s %-12s value=%llu\n",
                static_cast<unsigned long long>(a.seq),
                a.kind == AccessKind::Write ? "write" : "read",
                std::string(sim.memory().reg_name(a.reg)).c_str(),
                static_cast<unsigned long long>(
                    a.kind == AccessKind::Write ? a.written
                                                : a.returned.value_or(0)));
  }

  // --- The measured contention-free complexity (max over all processes),
  // through the declarative Study API.
  const StudyResult cf = run_study(StudySpec::of("lamport-fast")
                                       .kind(StudyKind::Mutex)
                                       .n(n)
                                       .policy(AccessPolicy::RegistersOnly)
                                       .contention_free());
  std::printf(
      "\ncontention-free complexity of %s at n=%d:\n"
      "  steps     = %d   (paper: 5 entry + 2 exit = 7)\n"
      "  registers = %d   (paper: b[i], x, y = 3)\n"
      "  atomicity = %d   (= ceil(log2(n+1)))\n",
      cf.subject.c_str(), n, cf.cf.steps, cf.cf.registers,
      cf.measured_atomicity);

  // --- The paper's lower bounds, evaluated at the measured atomicity.
  const double lb_step =
      bounds::thm1_cf_step_lower(n, cf.measured_atomicity);
  const double lb_reg =
      bounds::thm2_cf_register_lower(n, cf.measured_atomicity);
  std::printf(
      "\nTheorem 1 demands cf steps > %.2f  -> measured %d: %s\n"
      "Theorem 2 demands cf regs >= %.2f  -> measured %d: %s\n",
      lb_step, cf.cf.steps,
      cf.cf.steps > lb_step ? "satisfied" : "VIOLATED",
      lb_reg, cf.cf.registers,
      static_cast<double>(cf.cf.registers) >= lb_reg ? "satisfied"
                                                     : "VIOLATED");

  // --- The same result, machine-readable (the canonical study JSON every
  // bench emits).
  std::printf("\ncanonical study JSON:\n%s\n",
              to_json(cf, StudyJsonOptions{.include_timing = false}).c_str());
  return 0;
}
