// Scenario: the fast-path pattern — "am I alone? then skip the expensive
// coordination". That is the paper's contention detection problem
// (Section 2.3), the weak problem its mutual exclusion lower bounds are
// actually proved against.
//
// This example runs the splitter-tree detector, shows the Lemma 1 reduction
// from any mutex, and demonstrates the Lemma 2 merge adversary destroying a
// plausible-looking but broken detector.
#include <cstdio>

#include "core/adversary.h"
#include "core/algorithm_registry.h"
#include "core/contention_detection.h"
#include "mutex/detector_adapter.h"
#include "sched/sched.h"

int main() {
  using namespace cfc;
  const int n = 16;
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
  const DetectorFactory splitter =
      registry.detector("splitter-tree-l2").factory;

  // --- Solo run: the lone process must output 1.
  {
    Sim sim;
    auto det = setup_detection(sim, splitter, n);
    SoloScheduler solo(5);
    drive(sim, solo);
    std::printf("solo process 5 -> output %d (%llu accesses)\n",
                *sim.output(5),
                static_cast<unsigned long long>(sim.access_count(5)));
  }

  // --- Everyone races: at most one winner, all terminate.
  {
    Sim sim;
    auto det = setup_detection(sim, splitter, n);
    RandomScheduler rnd(7);
    drive(sim, rnd);
    std::printf("contended run  -> winners: %d (must be <= 1)\n",
                count_winners(sim));
  }

  // --- Lemma 1: any mutex is a detector. The adapter aborts waiters once
  // the winner raises the `won` bit.
  {
    Sim sim;
    auto det = setup_detection(
        sim,
        DetectorFromMutex::factory(registry.mutex("lamport-fast").factory),
        n);
    RandomScheduler rnd(11);
    drive(sim, rnd, RunLimits{200'000});
    std::printf("lemma1(lamport-fast) -> winners: %d, everyone done: %s\n",
                count_winners(sim), sim.all_done() ? "yes" : "no");
  }

  // --- Lemma 2's teeth: a detector whose processes never read each other's
  // registers cannot be correct; the merge adversary builds the violating
  // run mechanically (each process stays "hidden" from the other).
  {
    SimSetup broken = [](Sim& sim) {
      static std::vector<std::unique_ptr<Detector>> keep;
      keep.push_back(setup_detection(sim, SelfishDetector::factory(), 2));
    };
    const SoloProfile a = solo_profile(broken, 0);
    const SoloProfile b = solo_profile(broken, 1);
    std::printf(
        "\nbroken 'selfish' detector: lemma2 condition holds for the pair? "
        "%s\n",
        lemma2_condition(a, b) ? "yes" : "no");
    const MergeResult merged = lemma2_merge(broken, 0, 1);
    std::printf("merge adversary outputs: p0=%d p1=%d -> %s\n",
                merged.output1.value_or(-1), merged.output2.value_or(-1),
                merged.both_won() ? "SAFETY VIOLATION (as the lemma predicts)"
                                  : "no violation");
  }
  return 0;
}
