// Scenario: the Section 4 claim on real hardware. "Contention for a
// critical section is rare in a well designed system" [Lam87] — so a lock
// should be judged by its contention-free cost, and backoff keeps the
// contended cost close to it.
//
// Runs Lamport's fast lock and a test-and-set lock over std::atomic with
// real threads, with and without exponential backoff.
#include <cstdio>
#include <thread>

#include "rt/contention_study.h"

int main() {
  using namespace cfc::rt;

  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("lock          threads backoff   accesses/acq   ns/acq\n");
  std::printf("----------------------------------------------------------\n");
  for (const int threads : {1, 2, 4}) {
    for (const bool backoff : {false, true}) {
      ContentionStudyConfig config;
      config.threads = threads;
      config.acquisitions_per_thread = 3000;
      config.backoff = backoff;

      const ContentionStudyResult lam = run_lamport_study(config);
      std::printf("lamport-fast  %7d %7s   %12.1f %8.0f\n", threads,
                  backoff ? "yes" : "no", lam.mean_accesses, lam.mean_ns);
      if (lam.violations != 0) {
        std::printf("  MUTUAL EXCLUSION VIOLATION on hardware!\n");
        return 1;
      }

      const ContentionStudyResult tas = run_tas_study(config);
      std::printf("tas-lock      %7d %7s   %12.1f %8.0f\n", threads,
                  backoff ? "yes" : "no", tas.mean_accesses, tas.mean_ns);
      if (tas.violations != 0) {
        return 1;
      }
    }
  }
  std::printf(
      "\nthe paper's point: the 1-thread rows (7 accesses for Lamport) are\n"
      "what a well-designed system pays almost always; backoff keeps the\n"
      "contended rows close to them.\n");
  return 0;
}
