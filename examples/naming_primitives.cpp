// Scenario: assigning unique ids to identical workers, and how the choice
// of synchronization primitive changes the cost (the paper's Section 3).
//
// Runs every naming algorithm in the AlgorithmRegistry for the same worker
// pool, under a random schedule and under the contention-free sequential
// schedule, and prints the four complexity measures per algorithm — the
// executable version of the paper's "Tight bounds for naming" table.
#include <cstdio>

#include "analysis/naming_complexity.h"
#include "core/algorithm_registry.h"
#include "naming/checkers.h"

int main() {
  using namespace cfc;
  const int n = 32;
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();

  std::printf("naming %d identical workers\n\n", n);
  std::printf(
      "%-28s %-20s | cf step | cf reg | wc step | wc reg\n"
      "--------------------------------------------------"
      "-------------------------------\n",
      "model", "algorithm");
  for (const NamingAlgorithmEntry* entry : registry.naming_algorithms()) {
    const NamingAlgMeasurement m =
        measure_naming(entry->factory, n, {1, 2, 3, 4, 5});
    std::printf("%-28s %-20s | %7d | %6d | %7d | %6d\n",
                entry->info.required_model.to_string().c_str(),
                m.name.c_str(), m.cf.steps, m.cf.registers, m.wc.steps,
                m.wc.registers);
  }

  const NamingFactory taf = registry.naming("taf-tree").factory;

  // Show actual assigned names for one algorithm under contention.
  std::printf("\nnames claimed under a contended schedule (taf-tree): ");
  const NamingRunCheck check = run_naming_random(taf, 8, 42);
  if (!check.ok()) {
    std::printf("FAILED\n");
    return 1;
  }
  for (const int name : check.names) {
    std::printf("%d ", name);
  }
  std::printf("\n");

  // And with crash failures: drop three workers mid-protocol.
  std::printf("with 3 crashed workers (wait-freedom):               ");
  const NamingRunCheck crashed =
      run_naming_random(taf, 8, 43, {{0, 1}, {3, 0}, {5, 2}});
  if (!crashed.all_terminated || !crashed.names_unique) {
    std::printf("FAILED\n");
    return 1;
  }
  for (const int name : crashed.names) {
    std::printf("%d ", name);
  }
  std::printf(" (survivors only)\n");

  std::printf(
      "\nreading the table: read access halves nothing but *contention-free*\n"
      "cost (log n vs n-1); test-and-reset fixes the worst-case register\n"
      "complexity; test-and-flip fixes everything — four measures separate\n"
      "four primitive sets the classic worst-case step measure conflates.\n");
  return 0;
}
