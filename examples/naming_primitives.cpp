// Scenario: assigning unique ids to identical workers, and how the choice
// of synchronization primitive changes the cost (the paper's Section 3).
//
// Runs every naming algorithm in the AlgorithmRegistry for the same worker
// pool, under a random schedule and under the contention-free sequential
// schedule, and prints the four complexity measures per algorithm — the
// executable version of the paper's "Tight bounds for naming" table.
#include <cstdio>
#include <vector>

#include "analysis/study.h"
#include "core/algorithm_registry.h"
#include "naming/checkers.h"

int main() {
  using namespace cfc;
  const int n = 32;
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();

  std::printf("naming %d identical workers\n\n", n);
  std::printf(
      "%-28s %-20s | cf step | cf reg | wc step | wc reg\n"
      "--------------------------------------------------"
      "-------------------------------\n",
      "model", "algorithm");
  // One campaign over the registry's naming catalogue — the executable
  // version of the paper's "Tight bounds for naming" table, every
  // algorithm's adversary battery interleaved across the pool.
  Campaign campaign;
  const auto candidates = registry.naming_algorithms();
  for (const NamingAlgorithmEntry* entry : candidates) {
    campaign.add(StudySpec::of(entry->info.name)
                     .kind(StudyKind::Naming)
                     .n(n)
                     .contention_free()
                     .worst_case()
                     .seeds({1, 2, 3, 4, 5}));
  }
  const std::vector<StudyResult> results = campaign.run();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StudyResult& r = results[i];
    std::printf("%-28s %-20s | %7d | %6d | %7d | %6d\n",
                candidates[i]->info.required_model.to_string().c_str(),
                r.subject.c_str(), r.cf.steps, r.cf.registers, r.wc.steps,
                r.wc.registers);
  }

  const NamingFactory taf = registry.naming("taf-tree").factory;

  // Show actual assigned names for one algorithm under contention.
  std::printf("\nnames claimed under a contended schedule (taf-tree): ");
  const NamingRunCheck check = run_naming_random(taf, 8, 42);
  if (!check.ok()) {
    std::printf("FAILED\n");
    return 1;
  }
  for (const int name : check.names) {
    std::printf("%d ", name);
  }
  std::printf("\n");

  // And with crash failures: drop three workers mid-protocol.
  std::printf("with 3 crashed workers (wait-freedom):               ");
  const NamingRunCheck crashed =
      run_naming_random(taf, 8, 43, {{0, 1}, {3, 0}, {5, 2}});
  if (!crashed.all_terminated || !crashed.names_unique) {
    std::printf("FAILED\n");
    return 1;
  }
  for (const int name : crashed.names) {
    std::printf("%d ", name);
  }
  std::printf(" (survivors only)\n");

  std::printf(
      "\nreading the table: read access halves nothing but *contention-free*\n"
      "cost (log n vs n-1); test-and-reset fixes the worst-case register\n"
      "complexity; test-and-flip fixes everything — four measures separate\n"
      "four primitive sets the classic worst-case step measure conflates.\n");
  return 0;
}
