// Scenario: turning a sampled estimate into a certified bound.
//
// The Table 1 worst-case rows are adversarial maxima, but a random schedule
// search only *samples* the schedule space — it can under-report the true
// worst case. This example builds ONE Campaign of studies — an exhaustive
// and a random search per configuration, plus the [AT92] depth sweep — and
// certifies the worst-case remembered contention — the paper's clean-entry
// windows, the cost a process pays after contention has left — for
// Peterson, the TAS lock, and a tournament tree, then cross-checks the
// random-search values and the paper's Table 1 rows:
//
//   * worst-case REGISTER complexity is bounded (Table 1 row 3: O(log n)
//     [Kes82]); the certified values pin it exactly at these n.
//   * worst-case STEP complexity is unbounded (Table 1 row 4, [AT92]); the
//     certified value grows with the depth budget, which the example shows.
//   * the TAS contrast: with one rmw bit, both certified costs collapse to
//     a constant — the paper's bounds are specific to atomic registers.
//
// The identical peterson-2p depth-20 exhaustive search is requested twice
// (the comparison table and the Table 1 register cross-check); the
// campaign deduplicates it, so it runs once.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/study.h"
#include "core/algorithm_registry.h"

int main(int argc, char** argv) {
  using namespace cfc;

  // Observability hooks (both optional, neither changes any certified
  // value — the study JSON is byte-identical with or without them):
  //   --trace <file>      Chrome trace-event JSON of the campaign phases
  //   --progress [file]   heartbeat; JSONL to <file>, else human stderr
  std::string trace_path;
  bool want_progress = false;
  std::string progress_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--progress") {
      want_progress = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        progress_path = argv[++i];
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace <file>] [--progress [file]]\n",
                   argv[0]);
      return 2;
    }
  }

  struct Case {
    std::string name;
    int n;
    int depth;
  };
  const std::vector<Case> cases = {
      {"peterson-2p", 2, 20},
      {"tas-lock", 2, 16},
      {"tas-lock", 3, 14},
      {"peterson-tree", 2, 20},
      {"kessels-tree", 2, 20},
      // The POR frontier: n = 4 certification under source-dpor (the
      // default reduction of every Exhaustive study) — the Peterson
      // tournament tree, the TAS lock, and the Kessels tree, past the
      // n = 3 wall the unreduced factorial tree imposed.
      {"peterson-tree", 4, 10},
      {"tas-lock", 4, 10},
      {"kessels-tree", 4, 10},
      // PR 7's frontier: n = 5 under STATEFUL source-dpor — the
      // sleep-set-aware visited cache collapses the re-convergent
      // lattices these algorithms produce, so the whole bounded space
      // certifies in seconds where stateless source-dpor alone churned
      // through millions of redundant re-explorations.
      {"peterson-tree", 5, 12},
      {"tas-lock", 5, 12},
      {"kessels-tree", 5, 12},
  };

  const auto exhaustive_spec = [](const std::string& name, int n, int depth) {
    return StudySpec::of(name)
        .kind(StudyKind::Mutex)
        .n(n)
        .worst_case(SearchStrategy::Exhaustive)
        .depth(depth);
  };

  // --- One campaign: per case an exhaustive and a random study, then the
  // [AT92] depth sweep, then the Table 1 register cross-checks (the last
  // duplicating a sweep entry — deduplicated by the campaign).
  Campaign campaign;
  for (const Case& c : cases) {
    StudySpec ex = exhaustive_spec(c.name, c.n, c.depth);
    if (!trace_path.empty()) {
      ex.trace(trace_path);  // campaign-wide; the first spec carries it
    }
    if (want_progress) {
      ex.progress(progress_path, /*interval_ms=*/250);
    }
    campaign.add(std::move(ex));
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 1; s <= 32; ++s) {
      seeds.push_back(s);
    }
    campaign.add(StudySpec::of(c.name)
                     .kind(StudyKind::Mutex)
                     .n(c.n)
                     .worst_case(SearchStrategy::Random)
                     .seeds(seeds)
                     .budget(static_cast<std::uint64_t>(c.depth)));
  }
  const std::vector<int> at92_depths = {12, 16, 20, 24};
  for (const int depth : at92_depths) {
    campaign.add(exhaustive_spec("peterson-2p", 2, depth));
  }
  struct RegCheck {
    const char* name;
    int expect_entry_regs;
  };
  const std::vector<RegCheck> reg_checks = {{"peterson-2p", 3},
                                            {"tas-lock", 1}};
  for (const RegCheck& rc : reg_checks) {
    campaign.add(exhaustive_spec(rc.name, 2, 20));
  }

  CampaignStats stats;
  const std::vector<StudyResult> results = campaign.run(nullptr, &stats);

  std::printf(
      "Certified worst-case remembered contention (exhaustive explorer)\n"
      "vs. random-schedule search on the same configuration\n"
      "(%zu studies, %zu unique measurement tasks — %zu deduplicated):\n\n",
      stats.specs, stats.tasks_planned, stats.tasks_deduplicated);
  std::printf(
      "algorithm       | n | depth |   states | certified entry  | random "
      "entry | exit\n");
  std::printf(
      "                |   |       |          | steps reg        | steps "
      "reg   | steps\n");
  std::printf(
      "----------------+---+-------+----------+------------------+--------"
      "-----+------\n");

  bool all_ok = true;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    const StudyResult& ex = results[2 * i];
    const StudyResult& rnd = results[2 * i + 1];

    std::printf("%-15s | %d | %5d | %8llu | %5d %3d %s | %5d %3d   | %5d\n",
                c.name.c_str(), c.n, c.depth,
                static_cast<unsigned long long>(ex.states_visited),
                ex.wc_entry.steps, ex.wc_entry.registers,
                ex.certified ? "(cert.)" : "       ", rnd.wc_entry.steps,
                rnd.wc_entry.registers, ex.wc_exit.steps);

    // Certification sanity: random sampling over the same space can never
    // beat the exhaustive maxima. The reverse — exhaustive exceeding the
    // random values — is the expected finding (flagged below).
    if (rnd.wc_entry.steps > ex.wc_entry.steps ||
        rnd.wc_entry.registers > ex.wc_entry.registers) {
      std::printf("  ERROR: random search exceeded the certified bound\n");
      all_ok = false;
    }
    if (ex.wc_entry.steps > rnd.wc_entry.steps) {
      std::printf(
          "  finding: exhaustive beats random sampling by %d entry steps "
          "(%d vs %d)\n",
          ex.wc_entry.steps - rnd.wc_entry.steps, ex.wc_entry.steps,
          rnd.wc_entry.steps);
    }
  }

  // The POR payoff: every n = 4 and n = 5 configuration above must come
  // back certified (the whole bounded space covered, no state-budget cut)
  // under the source-dpor reduction, with the reduction counters
  // populated — the headline this example exists to demonstrate. At n = 5
  // the stateful cache does the heavy lifting: cache_hits counts the
  // re-convergent subtrees it refused to re-explore.
  std::printf("\nn = 4 / n = 5 certification under stateful source-dpor:\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (cases[i].n < 4) {
      continue;
    }
    const StudyResult& ex = results[2 * i];
    const bool ok = ex.certified &&
                    ex.wc_reduction == ReductionPolicy::SourceDpor &&
                    ex.races_detected > 0;
    std::printf(
        "  %-14s n=%d depth=%2d certified=%s reduction=%s states=%llu "
        "races=%llu backtracks=%llu cache_hits=%llu %s\n",
        cases[i].name.c_str(), cases[i].n, cases[i].depth,
        ex.certified ? "true" : "false", name(ex.wc_reduction),
        static_cast<unsigned long long>(ex.states_visited),
        static_cast<unsigned long long>(ex.races_detected),
        static_cast<unsigned long long>(ex.backtrack_points),
        static_cast<unsigned long long>(ex.cache_hits),
        ok ? "ok" : "NOT CERTIFIED");
    all_ok = all_ok && ok;
  }

  // Table 1, row 4 ([AT92]): the worst-case step row is unbounded — the
  // certified clean-entry step maximum must grow with the depth budget.
  std::printf("\n[AT92] unbounded worst-case steps, certified per depth "
              "(peterson-2p, n=2):\n  ");
  int prev = -1;
  bool grows = true;
  for (std::size_t d = 0; d < at92_depths.size(); ++d) {
    const StudyResult& r = results[2 * cases.size() + d];
    std::printf("depth %d -> %d steps   ", at92_depths[d], r.wc_entry.steps);
    grows = grows && r.wc_entry.steps > prev;
    prev = r.wc_entry.steps;
  }
  std::printf("\n  %s\n", grows ? "grows with every depth budget — the row "
                                  "is unbounded, as the paper proves"
                                : "ERROR: expected growth");
  all_ok = all_ok && grows;

  // Table 1, row 3: worst-case register complexity is bounded. At n=2 the
  // certified values pin it: Peterson touches its 3 bits, the TAS lock 1.
  std::printf("\nTable 1 cross-check at n=2 (certified registers):\n");
  for (std::size_t k = 0; k < reg_checks.size(); ++k) {
    const StudyResult& r =
        results[2 * cases.size() + at92_depths.size() + k];
    const bool ok = r.wc_entry.registers == reg_checks[k].expect_entry_regs;
    std::printf("  %-12s entry registers = %d (expected %d) %s\n",
                reg_checks[k].name, r.wc_entry.registers,
                reg_checks[k].expect_entry_regs, ok ? "ok" : "MISMATCH");
    all_ok = all_ok && ok;
  }

  // The dedup claim from the file comment, verified: at least the repeated
  // peterson-2p depth-20 search and the AT92 depth-20 entry were shared.
  if (stats.tasks_deduplicated < 2) {
    std::printf("\nERROR: expected campaign deduplication to fire\n");
    all_ok = false;
  }

  std::printf("\n%s\n", all_ok ? "all certifications consistent"
                               : "INCONSISTENT CERTIFICATION");
  return all_ok ? 0 : 1;
}
