// Scenario: turning a sampled estimate into a certified bound.
//
// The Table 1 worst-case rows are adversarial maxima, but a random schedule
// search only *samples* the schedule space — it can under-report the true
// worst case. This example runs the schedule-space explorer exhaustively at
// small n (every interleaving up to a depth bound, visited states pruned by
// fingerprint) and certifies the worst-case remembered contention — the
// paper's clean-entry windows, the cost a process pays after contention has
// left — for Peterson, the TAS lock, and a tournament tree, then
// cross-checks the random-search values and the paper's Table 1 rows:
//
//   * worst-case REGISTER complexity is bounded (Table 1 row 3: O(log n)
//     [Kes82]); the certified values pin it exactly at these n.
//   * worst-case STEP complexity is unbounded (Table 1 row 4, [AT92]); the
//     certified value grows with the depth budget, which the example shows.
//   * the TAS contrast: with one rmw bit, both certified costs collapse to
//     a constant — the paper's bounds are specific to atomic registers.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "core/algorithm_registry.h"

int main() {
  using namespace cfc;
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();

  struct Case {
    std::string name;
    int n;
    int depth;
  };
  const std::vector<Case> cases = {
      {"peterson-2p", 2, 20},
      {"tas-lock", 2, 16},
      {"tas-lock", 3, 14},
      {"peterson-tree", 2, 20},
      {"kessels-tree", 2, 20},
  };

  std::printf(
      "Certified worst-case remembered contention (exhaustive explorer)\n"
      "vs. random-schedule search on the same configuration:\n\n");
  std::printf(
      "algorithm       | n | depth |   states | certified entry  | random "
      "entry | exit\n");
  std::printf(
      "                |   |       |          | steps reg        | steps "
      "reg   | steps\n");
  std::printf(
      "----------------+---+-------+----------+------------------+--------"
      "-----+------\n");

  bool all_ok = true;
  for (const Case& c : cases) {
    const MutexFactory make = registry.mutex(c.name).factory;

    WorstCaseSearchOptions exhaustive;
    exhaustive.strategy = SearchStrategy::Exhaustive;
    exhaustive.limits.max_depth = c.depth;
    const MutexWcSearchResult ex =
        search_mutex_worst_case(make, c.n, /*sessions=*/1, exhaustive);

    WorstCaseSearchOptions random;
    random.strategy = SearchStrategy::Random;
    random.budget_per_run = static_cast<std::uint64_t>(c.depth);
    random.seeds.clear();
    for (std::uint64_t s = 1; s <= 32; ++s) {
      random.seeds.push_back(s);
    }
    const MutexWcSearchResult rnd =
        search_mutex_worst_case(make, c.n, /*sessions=*/1, random);

    std::printf("%-15s | %d | %5d | %8llu | %5d %3d %s | %5d %3d   | %5d\n",
                c.name.c_str(), c.n, c.depth,
                static_cast<unsigned long long>(ex.states_visited),
                ex.entry.steps, ex.entry.registers,
                ex.certified ? "(cert.)" : "       ", rnd.entry.steps,
                rnd.entry.registers, ex.exit.steps);

    // Certification sanity: random sampling over the same space can never
    // beat the exhaustive maxima. The reverse — exhaustive exceeding the
    // random values — is the expected finding (flagged below).
    if (rnd.entry.steps > ex.entry.steps ||
        rnd.entry.registers > ex.entry.registers) {
      std::printf("  ERROR: random search exceeded the certified bound\n");
      all_ok = false;
    }
    if (ex.entry.steps > rnd.entry.steps) {
      std::printf(
          "  finding: exhaustive beats random sampling by %d entry steps "
          "(%d vs %d)\n",
          ex.entry.steps - rnd.entry.steps, ex.entry.steps, rnd.entry.steps);
    }
  }

  // Table 1, row 4 ([AT92]): the worst-case step row is unbounded — the
  // certified clean-entry step maximum must grow with the depth budget.
  std::printf("\n[AT92] unbounded worst-case steps, certified per depth "
              "(peterson-2p, n=2):\n  ");
  const MutexFactory peterson = registry.mutex("peterson-2p").factory;
  int prev = -1;
  bool grows = true;
  for (const int depth : {12, 16, 20, 24}) {
    WorstCaseSearchOptions o;
    o.strategy = SearchStrategy::Exhaustive;
    o.limits.max_depth = depth;
    const MutexWcSearchResult r =
        search_mutex_worst_case(peterson, 2, 1, o);
    std::printf("depth %d -> %d steps   ", depth, r.entry.steps);
    grows = grows && r.entry.steps > prev;
    prev = r.entry.steps;
  }
  std::printf("\n  %s\n", grows ? "grows with every depth budget — the row "
                                  "is unbounded, as the paper proves"
                                : "ERROR: expected growth");
  all_ok = all_ok && grows;

  // Table 1, row 3: worst-case register complexity is bounded. At n=2 the
  // certified values pin it: Peterson touches its 3 bits, the TAS lock 1.
  std::printf("\nTable 1 cross-check at n=2 (certified registers):\n");
  struct RegCheck {
    const char* name;
    int expect_entry_regs;
  };
  for (const RegCheck& rc :
       std::vector<RegCheck>{{"peterson-2p", 3}, {"tas-lock", 1}}) {
    WorstCaseSearchOptions o;
    o.strategy = SearchStrategy::Exhaustive;
    o.limits.max_depth = 20;
    const MutexWcSearchResult r = search_mutex_worst_case(
        registry.mutex(rc.name).factory, 2, 1, o);
    const bool ok = r.entry.registers == rc.expect_entry_regs;
    std::printf("  %-12s entry registers = %d (expected %d) %s\n", rc.name,
                r.entry.registers, rc.expect_entry_regs,
                ok ? "ok" : "MISMATCH");
    all_ok = all_ok && ok;
  }

  std::printf("\n%s\n", all_ok ? "all certifications consistent"
                               : "INCONSISTENT CERTIFICATION");
  return all_ok ? 0 : 1;
}
