// cfc_report: CI-side consumer for the observability payloads.
//
//   cfc_report diff <baseline.json> <current.json> [--max-regress <pct>]
//     Compares two cfc.bench.v1 payloads row by row. Rows are matched on
//     their identity fields (every string field plus the run parameters
//     n/depth/threads/l/seed/repeat); for each matched pair every shared
//     numeric field is reported, and throughput fields (keys ending in
//     "_per_sec", where lower is worse) gate the exit status: a drop of
//     more than <pct> percent (default 3) fails the diff. Rows present in
//     only one payload are listed but never fail the run — benches grow
//     rows over time.
//
//   cfc_report --check-trace <trace.json>
//     Validates a Chrome trace-event file the obs tracer wrote: parses the
//     JSON, checks the event shape (ph:"X", name/ts/dur/tid), and verifies
//     spans nest without partial overlap per thread. Nonzero on any
//     problem, with the problems printed.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"
#include "obs/trace.h"

namespace {

std::string read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cfc_report: cannot open %s\n", path);
    std::exit(2);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int check_trace(const char* path) {
  std::vector<std::string> errors;
  const bool ok = cfc::obs::check_trace_json(read_file(path), &errors);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "cfc_report: %s: %s\n", path, e.c_str());
  }
  std::printf("cfc_report: %s: %s\n", path,
              ok ? "valid trace (spans balanced)" : "INVALID trace");
  return ok ? 0 : 1;
}

/// Run parameters that identify a row alongside its string fields; every
/// other numeric field is treated as a measurement.
bool is_identity_key(const std::string& key) {
  static const char* const kKeys[] = {"n",    "depth",  "threads",
                                      "l",    "seed",   "repeat",
                                      "pids", "sessions"};
  return std::any_of(std::begin(kKeys), std::end(kKeys),
                     [&](const char* k) { return key == k; });
}

struct Row {
  std::string identity;  ///< "key=value|..." over the identity fields
  std::map<std::string, double> metrics;
};

std::vector<Row> rows_of(const cfc::json::Node& payload, const char* path) {
  if (!payload.is_object() ||
      cfc::json::to_string_field(cfc::json::member(payload, "schema")) !=
          "cfc.bench.v1") {
    std::fprintf(stderr, "cfc_report: %s is not a cfc.bench.v1 payload\n",
                 path);
    std::exit(2);
  }
  std::vector<Row> rows;
  const cfc::json::Node* arr = payload.find("rows");
  if (arr == nullptr || !arr->is_array()) {
    return rows;
  }
  for (const cfc::json::Node& r : arr->array) {
    if (!r.is_object()) {
      continue;
    }
    Row row;
    for (const auto& [key, value] : r.object) {  // std::map: sorted, stable
      if (value.type == cfc::json::Node::Type::String) {
        row.identity += key + "=" + value.text + "|";
      } else if (value.type == cfc::json::Node::Type::Number) {
        if (is_identity_key(key)) {
          row.identity += key + "=" + value.text + "|";
        } else {
          row.metrics[key] = cfc::json::to_double(value);
        }
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

int diff(const char* base_path, const char* cur_path, double max_regress) {
  const cfc::json::Node base_doc = cfc::json::parse(read_file(base_path));
  const cfc::json::Node cur_doc = cfc::json::parse(read_file(cur_path));
  const std::vector<Row> base = rows_of(base_doc, base_path);
  std::vector<Row> cur = rows_of(cur_doc, cur_path);

  std::printf("cfc_report diff: %zu baseline rows vs %zu current rows "
              "(max throughput regression %.1f%%)\n",
              base.size(), cur.size(), max_regress);

  std::size_t matched = 0;
  std::size_t regressions = 0;
  std::vector<bool> used(cur.size(), false);
  for (const Row& b : base) {
    // First unconsumed identity match: duplicate identities pair in order.
    std::size_t at = cur.size();
    for (std::size_t i = 0; i < cur.size(); ++i) {
      if (!used[i] && cur[i].identity == b.identity) {
        at = i;
        break;
      }
    }
    if (at == cur.size()) {
      std::printf("  [only-baseline] %s\n", b.identity.c_str());
      continue;
    }
    used[at] = true;
    ++matched;
    for (const auto& [key, base_v] : b.metrics) {
      const auto it = cur[at].metrics.find(key);
      if (it == cur[at].metrics.end()) {
        continue;
      }
      const double cur_v = it->second;
      const double pct =
          base_v != 0.0 ? 100.0 * (cur_v - base_v) / std::fabs(base_v)
                        : 0.0;
      const bool rate = key.size() > 8 &&
                        key.compare(key.size() - 8, 8, "_per_sec") == 0;
      const bool regressed = rate && pct < -max_regress;
      if (regressed) {
        ++regressions;
        std::printf("  [REGRESSION] %s%s: %.6g -> %.6g (%+.1f%%)\n",
                    b.identity.c_str(), key.c_str(), base_v, cur_v, pct);
      } else if (rate) {
        std::printf("  [ok] %s%s: %.6g -> %.6g (%+.1f%%)\n",
                    b.identity.c_str(), key.c_str(), base_v, cur_v, pct);
      }
    }
  }
  for (std::size_t i = 0; i < cur.size(); ++i) {
    if (!used[i]) {
      std::printf("  [only-current] %s\n", cur[i].identity.c_str());
    }
  }
  std::printf("cfc_report diff: %zu matched, %zu regression(s)\n", matched,
              regressions);
  return regressions == 0 ? 0 : 1;
}

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: cfc_report diff <baseline.json> <current.json> "
               "[--max-regress <pct>]\n"
               "       cfc_report --check-trace <trace.json>\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--check-trace") == 0) {
    return check_trace(argv[2]);
  }
  if (argc >= 4 && std::strcmp(argv[1], "diff") == 0) {
    double max_regress = 3.0;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--max-regress") == 0 && i + 1 < argc) {
        char* end = nullptr;
        max_regress = std::strtod(argv[++i], &end);
        if (end == nullptr || *end != '\0' || max_regress < 0.0) {
          std::fprintf(stderr, "cfc_report: invalid --max-regress value\n");
          usage(2);
        }
      } else {
        usage(2);
      }
    }
    try {
      return diff(argv[2], argv[3], max_regress);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "cfc_report: %s\n", e.what());
      return 2;
    }
  }
  usage(2);
}
