// cfc_lint: the sa/ registry linter as a CLI. Dry-runs every registered
// algorithm through the static footprint pass (src/sa/static_summary.h)
// and reports metadata/protocol contradictions as structured diagnostics
// (src/sa/lint.h). Exit status 0 when no Error-severity diagnostic fired,
// 1 otherwise — warnings print but do not fail the run, so CI can gate on
// the exit status alone.
//
// Usage: cfc_lint [--quiet]
//   --quiet   print only Error diagnostics (warnings still counted in the
//             summary line).

#include <cstdio>
#include <cstring>
#include <vector>

#include "sa/lint.h"

int main(int argc, char** argv) {
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "cfc_lint: unknown option '%s'\n", argv[i]);
      std::fprintf(stderr, "usage: cfc_lint [--quiet]\n");
      return 2;
    }
  }

  const std::vector<cfc::LintDiagnostic> diags = cfc::lint_registry();
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const cfc::LintDiagnostic& d : diags) {
    const bool is_error = d.severity == cfc::LintSeverity::Error;
    (is_error ? errors : warnings) += 1;
    if (is_error || !quiet) {
      std::fprintf(stderr, "%s\n", d.format().c_str());
    }
  }
  std::printf("cfc_lint: %zu error(s), %zu warning(s)\n", errors, warnings);
  return errors == 0 ? 0 : 1;
}
