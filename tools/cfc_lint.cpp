// cfc_lint: the sa/ registry linter as a CLI. Dry-runs every registered
// algorithm through the static footprint pass (src/sa/static_summary.h)
// and reports metadata/protocol contradictions as structured diagnostics
// (src/sa/lint.h). Exit status 0 when no Error-severity diagnostic fired,
// 1 otherwise — warnings print but do not fail the run, so CI can gate on
// the exit status alone.
//
// Usage: cfc_lint [--quiet] [--json]
//   --quiet   print only Error diagnostics (warnings still counted in the
//             summary line).
//   --json    write the diagnostics to stdout as one JSON array of
//             structured rows ({severity, rule, kind, subject, message})
//             followed by a summary object, instead of the human format.
//             --quiet filters the rows the same way. Exit status is
//             unchanged — machine consumers can use either.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sa/lint.h"

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_field(std::string& out, const char* key, const std::string& v,
                  bool last = false) {
  out += '"';
  out += key;
  out += "\": \"";
  append_escaped(out, v);
  out += last ? "\"" : "\", ";
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "cfc_lint: unknown option '%s'\n", argv[i]);
      std::fprintf(stderr, "usage: cfc_lint [--quiet] [--json]\n");
      return 2;
    }
  }

  const std::vector<cfc::LintDiagnostic> diags = cfc::lint_registry();
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::string rows;
  for (const cfc::LintDiagnostic& d : diags) {
    const bool is_error = d.severity == cfc::LintSeverity::Error;
    (is_error ? errors : warnings) += 1;
    if (!is_error && quiet) {
      continue;
    }
    if (json) {
      rows += rows.empty() ? "\n    {" : ",\n    {";
      append_field(rows, "severity", cfc::name(d.severity));
      append_field(rows, "rule", d.rule);
      append_field(rows, "kind", d.kind);
      append_field(rows, "subject", d.subject);
      append_field(rows, "message", d.message, /*last=*/true);
      rows += '}';
    } else {
      std::fprintf(stderr, "%s\n", d.format().c_str());
    }
  }
  if (json) {
    std::printf(
        "{\n  \"schema\": \"cfc.lint.v1\",\n  \"diagnostics\": [%s%s],\n"
        "  \"summary\": {\"errors\": %zu, \"warnings\": %zu}\n}\n",
        rows.c_str(), rows.empty() ? "" : "\n  ", errors, warnings);
  } else {
    std::printf("cfc_lint: %zu error(s), %zu warning(s)\n", errors,
                warnings);
  }
  return errors == 0 ? 0 : 1;
}
