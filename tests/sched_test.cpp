#include "sched/sched.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cfc {
namespace {

/// Each process increments a shared counter `k` times (read + write per
/// increment, non-atomic on purpose).
Task<void> incrementer(ProcessContext& ctx, RegId r, int k) {
  ctx.set_section(Section::Working);
  for (int i = 0; i < k; ++i) {
    const Value v = co_await ctx.read(r);
    co_await ctx.write(r, v + 1);
  }
  ctx.set_section(Section::Done);
}

Sim::BodyFactory make_incrementer(RegId r, int k) {
  return [r, k](ProcessContext& ctx) { return incrementer(ctx, r, k); };
}

TEST(Sched, SoloSchedulerRunsOnlyTargetProcess) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16);
  const Pid a = sim.spawn("a", make_incrementer(r, 3));
  const Pid b = sim.spawn("b", make_incrementer(r, 3));
  SoloScheduler solo(a);
  const RunOutcome out = drive(sim, solo);
  EXPECT_EQ(out, RunOutcome::SchedulerStopped);  // b still runnable
  EXPECT_EQ(sim.status(a), ProcStatus::Done);
  EXPECT_EQ(sim.status(b), ProcStatus::NotStarted);
  EXPECT_EQ(sim.memory().peek(r), 3u);  // only a's increments
}

TEST(Sched, SequentialSchedulerRunsEachToCompletionInOrder) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16);
  const Pid a = sim.spawn("a", make_incrementer(r, 2));
  const Pid b = sim.spawn("b", make_incrementer(r, 2));
  const Pid c = sim.spawn("c", make_incrementer(r, 2));
  SequentialScheduler seq({c, a, b});
  EXPECT_EQ(drive(sim, seq), RunOutcome::AllDone);
  // No interleaving: all six increments landed.
  EXPECT_EQ(sim.memory().peek(r), 6u);
  // c's accesses all precede a's, which precede b's.
  const auto evs = sim.trace().accesses();
  std::vector<Pid> order;
  for (const Access& acc : evs) {
    if (order.empty() || order.back() != acc.pid) {
      order.push_back(acc.pid);
    }
  }
  EXPECT_EQ(order, (std::vector<Pid>{c, a, b}));
}

TEST(Sched, RoundRobinInterleavesLosesIncrements) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16);
  sim.spawn("a", make_incrementer(r, 4));
  sim.spawn("b", make_incrementer(r, 4));
  RoundRobinScheduler rr;
  EXPECT_EQ(drive(sim, rr), RunOutcome::AllDone);
  // Perfect read/write interleaving loses updates: the counter ends below 8.
  EXPECT_LT(sim.memory().peek(r), 8u);
  EXPECT_GE(sim.memory().peek(r), 4u);
}

TEST(Sched, RandomSchedulerIsDeterministicPerSeed) {
  auto final_value = [](std::uint64_t seed) {
    Sim sim;
    const RegId r = sim.memory().add_register("r", 16);
    sim.spawn("a", make_incrementer(r, 4));
    sim.spawn("b", make_incrementer(r, 4));
    RandomScheduler rnd(seed);
    drive(sim, rnd);
    return sim.memory().peek(r);
  };
  EXPECT_EQ(final_value(7), final_value(7));
  EXPECT_EQ(final_value(123), final_value(123));
}

TEST(Sched, ScriptedSchedulerFollowsScript) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16);
  const Pid a = sim.spawn("a", make_incrementer(r, 2));
  const Pid b = sim.spawn("b", make_incrementer(r, 2));
  // a reads, b reads (both see 0), a writes 1, b writes 1 -> lost update.
  ScriptedScheduler script({a, b, a, b});
  EXPECT_EQ(drive(sim, script), RunOutcome::SchedulerStopped);
  EXPECT_EQ(sim.memory().peek(r), 1u);
}

TEST(Sched, ScriptSkipsNonRunnableEntries) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16);
  const Pid a = sim.spawn("a", make_incrementer(r, 1));
  const Pid b = sim.spawn("b", make_incrementer(r, 1));
  // a finishes after 2 accesses; further a-entries are skipped. Everyone
  // completes, so the drive reports AllDone before the script runs dry.
  ScriptedScheduler script({a, a, a, a, b, b});
  EXPECT_EQ(drive(sim, script), RunOutcome::AllDone);
  EXPECT_EQ(sim.status(a), ProcStatus::Done);
  EXPECT_EQ(sim.status(b), ProcStatus::Done);
}

TEST(Sched, BudgetExhaustionOnSpinLoop) {
  Sim sim;
  const RegId r = sim.memory().add_bit("flag");
  const Pid a = sim.spawn("spin", [r](ProcessContext& ctx) -> Task<void> {
    for (;;) {
      const Value v = co_await ctx.read(r);
      if (v != 0) {
        break;
      }
    }
  });
  SoloScheduler solo(a);
  EXPECT_EQ(drive(sim, solo, RunLimits{100}), RunOutcome::BudgetExhausted);
  EXPECT_EQ(sim.access_count(a), 100u);
}

TEST(Sched, StepUntilPredicate) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16);
  const Pid a = sim.spawn("a", make_incrementer(r, 10));
  const std::uint64_t steps = step_until(
      sim, a, [&](const Sim& s) { return s.memory().peek(r) >= 3; });
  EXPECT_EQ(sim.memory().peek(r), 3u);
  EXPECT_EQ(steps, 6u);  // 3 increments, 2 accesses each
}

TEST(Sched, StepNCountsAccesses) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16);
  const Pid a = sim.spawn("a", make_incrementer(r, 10));
  EXPECT_EQ(step_n(sim, a, 5), 5u);
  EXPECT_EQ(sim.access_count(a), 5u);
}

TEST(Sched, RunToCompletionStopsAtTermination) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16);
  const Pid a = sim.spawn("a", make_incrementer(r, 2));
  EXPECT_EQ(run_to_completion(sim, a), 4u);
  EXPECT_EQ(sim.status(a), ProcStatus::Done);
}

TEST(Sched, RoundRobinSkipsCrashedProcesses) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16);
  const Pid a = sim.spawn("a", make_incrementer(r, 3));
  const Pid b = sim.spawn("b", make_incrementer(r, 3));
  sim.crash_after(a, 2);
  RoundRobinScheduler rr;
  EXPECT_EQ(drive(sim, rr), RunOutcome::AllDone);
  EXPECT_EQ(sim.status(a), ProcStatus::Crashed);
  EXPECT_EQ(sim.status(b), ProcStatus::Done);
}

}  // namespace
}  // namespace cfc
