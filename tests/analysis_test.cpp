// Analysis-layer internals: the ASCII table renderer the benches print
// with, and the error paths of the experiment drivers.
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/naming_complexity.h"
#include "analysis/table.h"
#include "naming/tas_scan.h"

namespace cfc {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  // Header, rule, two rows.
  EXPECT_NE(out.find("| name  | value |"), std::string::npos) << out;
  EXPECT_NE(out.find("|-------|-------|"), std::string::npos) << out;
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos) << out;
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos) << out;
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only"), std::string::npos);
  // Renders without throwing and keeps three columns.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(TextTable, FirstColumnLeftRestRightAligned) {
  TextTable t({"label", "num"});
  t.add_row({"x", "9"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| x     |"), std::string::npos) << out;  // left pad
  EXPECT_NE(out.find("|   9 |"), std::string::npos) << out;    // right pad
}

// A "mutex" that never terminates its solo session must be reported as a
// weak-deadlock-freedom violation, not measured.
TEST(ExperimentDriver, NonTerminatingSoloSessionThrows) {
  class Stuck final : public MutexAlgorithm {
   public:
    explicit Stuck(RegisterFile& mem) { r_ = mem.add_bit("stuck.r"); }
    Task<void> enter(ProcessContext& ctx, int) override {
      for (;;) {
        const Value v = co_await ctx.read(r_);
        if (v != 0) {
          break;  // never: nobody sets it
        }
      }
    }
    Task<void> exit(ProcessContext& ctx, int) override {
      co_await ctx.read(r_);
    }
    Task<Value> try_enter(ProcessContext& ctx, int slot, RegId) override {
      co_await enter(ctx, slot);
      co_return 1;
    }
    [[nodiscard]] int capacity() const override { return 4; }
    [[nodiscard]] int atomicity() const override { return 1; }
    [[nodiscard]] std::string algorithm_name() const override {
      return "stuck";
    }

   private:
    RegId r_;
  };
  const MutexFactory factory = [](RegisterFile& mem, int) {
    return std::make_unique<Stuck>(mem);
  };
  EXPECT_THROW((void)measure_mutex_contention_free(factory, 2),
               std::logic_error);
}

// A detector whose solo process outputs 0 is broken and must be reported.
TEST(ExperimentDriver, SoloLoserDetectorThrows) {
  class Defeatist final : public Detector {
   public:
    explicit Defeatist(RegisterFile& mem) { r_ = mem.add_bit("d.r"); }
    Task<void> detect(ProcessContext& ctx, int) override {
      co_await ctx.read(r_);
      ctx.set_output(0);  // always gives up: violates solo-win
    }
    [[nodiscard]] int capacity() const override { return 8; }
    [[nodiscard]] int atomicity() const override { return 1; }
    [[nodiscard]] std::string algorithm_name() const override {
      return "defeatist";
    }

   private:
    RegId r_;
  };
  const DetectorFactory factory = [](RegisterFile& mem, int) {
    return std::make_unique<Defeatist>(mem);
  };
  EXPECT_THROW((void)measure_detector_contention_free(factory, 2),
               std::logic_error);
}

TEST(ExperimentDriver, MeasureNamingRejectsOverCapacity) {
  // TasScan capacity equals its construction n; naming measurement at a
  // larger n must be rejected by setup_naming.
  const NamingFactory tiny = [](RegisterFile& mem, int) {
    return std::make_unique<TasScan>(mem, 2);
  };
  EXPECT_THROW((void)measure_naming(tiny, 4, {1}), std::invalid_argument);
}

TEST(Table2Column, BestTakesMinPerMeasureAcrossAlgorithms) {
  Table2Column col;
  NamingAlgMeasurement a;
  a.cf.steps = 10;
  a.cf.registers = 3;
  a.wc.steps = 50;
  a.wc.registers = 20;
  NamingAlgMeasurement b;
  b.cf.steps = 4;
  b.cf.registers = 8;
  b.wc.steps = 60;
  b.wc.registers = 5;
  col.algorithms = {a, b};
  const Table2Cell best = col.best();
  EXPECT_EQ(best.cf_step, 4);       // from b
  EXPECT_EQ(best.cf_register, 3);   // from a
  EXPECT_EQ(best.wc_step, 50);      // from a
  EXPECT_EQ(best.wc_register, 5);   // from b
}

}  // namespace
}  // namespace cfc
