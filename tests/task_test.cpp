// Unit tests for the coroutine Task type itself: laziness, value/void
// results, nesting, exception propagation, move semantics, and teardown of
// suspended frames.
#include "sched/task.h"

#include <gtest/gtest.h>

#include <coroutine>
#include <stdexcept>

namespace cfc {
namespace {

/// Minimal manual awaiter: suspends and parks the handle in a slot.
struct Park {
  std::coroutine_handle<>* slot;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const noexcept { *slot = h; }
  void await_resume() const noexcept {}
};

Task<int> immediate_value() { co_return 42; }

Task<void> immediate_void() { co_return; }

TEST(Task, IsLazyUntilResumed) {
  bool ran = false;
  auto make = [&]() -> Task<void> {
    ran = true;
    co_return;
  };
  const Task<void> t = make();
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(ran);  // body not started
  t.handle().resume();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(t.done());
}

TEST(Task, ValueResult) {
  const Task<int> t = immediate_value();
  t.handle().resume();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), 42);
}

TEST(Task, VoidCompletes) {
  const Task<void> t = immediate_void();
  t.handle().resume();
  EXPECT_TRUE(t.done());
  EXPECT_NO_THROW(t.rethrow_if_exception());
}

TEST(Task, NestedAwaitPropagatesValue) {
  auto outer = []() -> Task<int> {
    const int a = co_await immediate_value();
    const int b = co_await immediate_value();
    co_return a + b;
  };
  const Task<int> t = outer();
  t.handle().resume();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), 84);
}

TEST(Task, ExceptionPropagatesThroughNesting) {
  auto thrower = []() -> Task<int> {
    throw std::runtime_error("inner boom");
    co_return 0;  // unreachable
  };
  auto outer = [&]() -> Task<int> {
    const int v = co_await thrower();
    co_return v;
  };
  const Task<int> t = outer();
  t.handle().resume();
  ASSERT_TRUE(t.done());
  EXPECT_THROW((void)t.result(), std::runtime_error);
}

TEST(Task, MoveTransfersOwnership) {
  Task<int> a = immediate_value();
  const auto addr = a.handle().address();
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.handle().address(), addr);
  b.handle().resume();
  EXPECT_EQ(b.result(), 42);
}

TEST(Task, MoveAssignDestroysPrevious) {
  Task<int> a = immediate_value();
  Task<int> b = immediate_value();
  b = std::move(a);  // b's original frame must be destroyed (ASan-checked)
  EXPECT_TRUE(b.valid());
  b.handle().resume();
  EXPECT_EQ(b.result(), 42);
}

TEST(Task, SuspendedFrameDestroyedSafely) {
  std::coroutine_handle<> parked;
  bool cleaned = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  auto body = [&]() -> Task<void> {
    const Sentinel s{&cleaned};
    co_await Park{&parked};
    co_return;  // never reached
  };
  {
    const Task<void> t = body();
    t.handle().resume();  // suspended at Park
    EXPECT_FALSE(t.done());
    EXPECT_FALSE(cleaned);
  }  // destructor destroys the suspended frame
  EXPECT_TRUE(cleaned);
}

TEST(Task, DeepNestingCompletesWithoutStackGrowth) {
  // 10k-deep chain of immediately-completing awaits: symmetric transfer
  // keeps this flat.
  auto chain = [](auto&& self, int depth) -> Task<int> {
    if (depth == 0) {
      co_return 1;
    }
    const int below = co_await self(self, depth - 1);
    co_return below + 1;
  };
  const Task<int> t = chain(chain, 10'000);
  t.handle().resume();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), 10'001);
}

TEST(Task, ManySequentialSuspensions) {
  std::coroutine_handle<> parked;
  auto body = [&]() -> Task<int> {
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      co_await Park{&parked};
      ++count;
    }
    co_return count;
  };
  const Task<int> t = body();
  t.handle().resume();
  while (!t.done()) {
    parked.resume();
  }
  EXPECT_EQ(t.result(), 1000);
}

}  // namespace
}  // namespace cfc
