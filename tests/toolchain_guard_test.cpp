// Guards against a GCC 12 coroutine miscompilation: a `co_await` expression
// inside a *loop condition* (`while (co_await x) ...`) produces wrong code
// (clobbered awaiter frame slot -> crashes or lost suspensions), while the
// same await hoisted into the loop body works. See lamport_fast.cpp for the
// canonical body-style pattern. This test (1) demonstrates the safe pattern
// executes correctly, and (2) scans the source tree to keep the forbidden
// pattern out.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "sched/sched.h"
#include "sched/sim.h"

#ifndef CFC_SOURCE_DIR
#define CFC_SOURCE_DIR "."
#endif

namespace cfc {
namespace {

// The safe hoisted-await loop runs correctly for many iterations.
Task<void> hoisted_spin(ProcessContext& ctx, RegId flag, RegId counter) {
  for (;;) {
    const Value v = co_await ctx.read(flag);
    if (v != 0) {
      break;
    }
  }
  co_await ctx.write(counter, 1);
}

TEST(ToolchainGuard, HoistedAwaitLoopExecutesCorrectly) {
  Sim sim;
  const RegId flag = sim.memory().add_bit("flag");
  const RegId counter = sim.memory().add_bit("counter");
  const Pid p = sim.spawn("p", [flag, counter](ProcessContext& ctx) {
    return hoisted_spin(ctx, flag, counter);
  });
  for (int i = 0; i < 1000; ++i) {
    sim.step(p);
  }
  EXPECT_TRUE(sim.runnable(p));
  sim.memory().poke(flag, 1);
  step_n(sim, p, 2);
  EXPECT_EQ(sim.status(p), ProcStatus::Done);
  EXPECT_EQ(sim.memory().peek(counter), 1u);
}

// No source file may contain `while (co_await` or a co_await inside a for
// condition — the GCC 12 footgun.
TEST(ToolchainGuard, NoLoopConditionCoAwaitInSources) {
  namespace fs = std::filesystem;
  const std::regex forbidden(R"(while\s*\(\s*co_await)");
  std::vector<std::string> offenders;
  for (const char* root : {CFC_SOURCE_DIR "/src", CFC_SOURCE_DIR "/tests",
                           CFC_SOURCE_DIR "/examples",
                           CFC_SOURCE_DIR "/bench"}) {
    if (!fs::exists(root)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const auto ext = entry.path().extension();
      if (ext != ".cpp" && ext != ".h") {
        continue;
      }
      std::ifstream in(entry.path());
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string text = ss.str();
      // Skip comment lines mentioning the pattern by requiring a match that
      // is not preceded by '//' on its line.
      for (std::sregex_iterator it(text.begin(), text.end(), forbidden), end;
           it != end; ++it) {
        const auto pos = static_cast<std::size_t>(it->position());
        const std::size_t line_start = text.rfind('\n', pos) + 1;
        const std::string_view line(text.data() + line_start,
                                    pos - line_start);
        if (line.find("//") == std::string_view::npos) {
          offenders.push_back(entry.path().string());
        }
      }
    }
  }
  EXPECT_TRUE(offenders.empty())
      << "loop-condition co_await found in: " << offenders.front();
}

}  // namespace
}  // namespace cfc
