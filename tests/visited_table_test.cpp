// VisitedTable correctness against a map-based dominance oracle: the flat
// open-addressing table with inline/spilled antichain pairs must answer
// every dominated() query exactly like the straightforward
// unordered_map<key, vector<pair>> implementation it replaced, across
// random workloads, key collisions on probe chains, inline overflow into
// the spill pool, and growth/rehash.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/visited_table.h"

namespace cfc {
namespace {

/// The reference semantics (the explorer's former cache, verbatim).
class OracleTable {
 public:
  [[nodiscard]] bool dominated(std::uint64_t key, int depth,
                               int preempt) const {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      return false;
    }
    for (const auto& [d, p] : it->second) {
      if (d <= depth && p <= preempt) {
        return true;
      }
    }
    return false;
  }

  void insert(std::uint64_t key, int depth, int preempt) {
    std::vector<std::pair<int, int>>& v = map_[key];
    std::erase_if(v, [&](const std::pair<int, int>& e) {
      return e.first >= depth && e.second >= preempt;
    });
    v.emplace_back(depth, preempt);
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::pair<int, int>>> map_;
};

TEST(VisitedTable, MatchesOracleOnRandomWorkload) {
  std::mt19937_64 rng(42);
  VisitedTable table;
  OracleTable oracle;
  // Few distinct keys so antichains grow and the dominance logic is
  // exercised hard; depths/preempts small so pairs collide and dominate.
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 199);
  std::uniform_int_distribution<int> dim_dist(0, 15);
  for (int i = 0; i < 20000; ++i) {
    // Spread the key space (probe-chain collisions included) while
    // avoiding the one documented alias: key 0 is remapped internally to
    // the golden-ratio constant, so don't generate that constant itself.
    const std::uint64_t key = key_dist(rng) * 0x100000001b3ULL;
    const int depth = dim_dist(rng);
    const int preempt = dim_dist(rng);
    ASSERT_EQ(table.dominated(key, depth, preempt),
              oracle.dominated(key, depth, preempt))
        << "key " << key << " (" << depth << ", " << preempt << ")";
    if (!table.dominated(key, depth, preempt)) {
      table.insert(key, depth, preempt);
      oracle.insert(key, depth, preempt);
    }
  }
  EXPECT_EQ(table.size(), oracle.size());
}

TEST(VisitedTable, CheckAndInsertMatchesTwoCallForm) {
  std::mt19937_64 rng(7);
  VisitedTable combined;
  VisitedTable split;
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 99);
  std::uniform_int_distribution<int> dim_dist(0, 10);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t key = key_dist(rng);
    const int depth = dim_dist(rng);
    const int preempt = dim_dist(rng);
    const bool was_dominated = split.dominated(key, depth, preempt);
    if (!was_dominated) {
      split.insert(key, depth, preempt);
    }
    ASSERT_EQ(combined.check_and_insert(key, depth, preempt), was_dominated);
  }
  EXPECT_EQ(combined.size(), split.size());
}

TEST(VisitedTable, ExhaustiveModeKeepsSingletonAntichains) {
  // Exhaustive searches always pass preempt == 0: a later (shallower)
  // visit dominates and replaces the earlier one, so memory stays at one
  // pair per key and never spills.
  VisitedTable table;
  table.insert(1, 10, 0);
  table.insert(1, 7, 0);  // dominates (10, 0): replaces it
  EXPECT_TRUE(table.dominated(1, 7, 0));
  EXPECT_TRUE(table.dominated(1, 12, 0));
  EXPECT_FALSE(table.dominated(1, 6, 0));
  EXPECT_EQ(table.size(), 1u);
}

TEST(VisitedTable, LongAntichainsSpillAndUnspill) {
  // A strictly diagonal antichain (d+p constant) never self-dominates:
  // 12 pairs on one key overflow the 2 inline slots into the spill pool.
  VisitedTable table;
  const std::uint64_t key = 77;
  for (int i = 0; i < 12; ++i) {
    table.insert(key, 20 - i, i);
  }
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(table.dominated(key, 20 - i, i));
  }
  EXPECT_FALSE(table.dominated(key, 8, 0));
  // A (0, 0) visit dominates everything: the antichain collapses to it.
  table.insert(key, 0, 0);
  EXPECT_TRUE(table.dominated(key, 0, 0));
  EXPECT_EQ(table.size(), 1u);
  // The freed spill nodes are recycled for another key.
  for (int i = 0; i < 12; ++i) {
    table.insert(key + 1, 20 - i, i);
  }
  EXPECT_TRUE(table.dominated(key + 1, 15, 5));
}

TEST(VisitedTable, SurvivesGrowthAndKeyZero) {
  VisitedTable table;
  OracleTable oracle;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng();  // distinct keys: forces rehashes
    table.insert(key, 5, 5);
    oracle.insert(key, 5, 5);
  }
  // Key 0 is remapped internally but must behave like any key.
  EXPECT_FALSE(table.dominated(0, 10, 10));
  table.insert(0, 3, 3);
  EXPECT_TRUE(table.dominated(0, 10, 10));
  EXPECT_FALSE(table.dominated(0, 2, 2));
  EXPECT_EQ(table.size(), oracle.size() + 1);
  EXPECT_GT(table.bytes(), 0u);
}

TEST(VisitedTable, RejectsOutOfRangeBudgets) {
  VisitedTable table;
  EXPECT_THROW(table.insert(1, -1, 0), std::out_of_range);
  EXPECT_THROW(table.insert(1, 0, 0x10000), std::out_of_range);
  EXPECT_THROW(table.check_and_insert(1, 0x10000, 0), std::out_of_range);
}

}  // namespace
}  // namespace cfc
