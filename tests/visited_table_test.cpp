// VisitedTable correctness against a map-based dominance oracle: the flat
// open-addressing table with inline/spilled antichain pairs must answer
// every dominated() query exactly like the straightforward
// unordered_map<key, vector<pair>> implementation it replaced, across
// random workloads, key collisions on probe chains, inline overflow into
// the spill pool, and growth/rehash.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/visited_table.h"

namespace cfc {
namespace {

/// The reference semantics (the explorer's former cache, verbatim).
class OracleTable {
 public:
  [[nodiscard]] bool dominated(std::uint64_t key, int depth,
                               int preempt) const {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      return false;
    }
    for (const auto& [d, p] : it->second) {
      if (d <= depth && p <= preempt) {
        return true;
      }
    }
    return false;
  }

  void insert(std::uint64_t key, int depth, int preempt) {
    std::vector<std::pair<int, int>>& v = map_[key];
    std::erase_if(v, [&](const std::pair<int, int>& e) {
      return e.first >= depth && e.second >= preempt;
    });
    v.emplace_back(depth, preempt);
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::pair<int, int>>> map_;
};

TEST(VisitedTable, MatchesOracleOnRandomWorkload) {
  std::mt19937_64 rng(42);
  VisitedTable table;
  OracleTable oracle;
  // Few distinct keys so antichains grow and the dominance logic is
  // exercised hard; depths/preempts small so pairs collide and dominate.
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 199);
  std::uniform_int_distribution<int> dim_dist(0, 15);
  for (int i = 0; i < 20000; ++i) {
    // Spread the key space (probe-chain collisions included) while
    // avoiding the one documented alias: key 0 is remapped internally to
    // the golden-ratio constant, so don't generate that constant itself.
    const std::uint64_t key = key_dist(rng) * 0x100000001b3ULL;
    const int depth = dim_dist(rng);
    const int preempt = dim_dist(rng);
    ASSERT_EQ(table.dominated(key, depth, preempt),
              oracle.dominated(key, depth, preempt))
        << "key " << key << " (" << depth << ", " << preempt << ")";
    if (!table.dominated(key, depth, preempt)) {
      table.insert(key, depth, preempt);
      oracle.insert(key, depth, preempt);
    }
  }
  EXPECT_EQ(table.size(), oracle.size());
}

TEST(VisitedTable, CheckAndInsertMatchesTwoCallForm) {
  std::mt19937_64 rng(7);
  VisitedTable combined;
  VisitedTable split;
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 99);
  std::uniform_int_distribution<int> dim_dist(0, 10);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t key = key_dist(rng);
    const int depth = dim_dist(rng);
    const int preempt = dim_dist(rng);
    const bool was_dominated = split.dominated(key, depth, preempt);
    if (!was_dominated) {
      split.insert(key, depth, preempt);
    }
    ASSERT_EQ(combined.check_and_insert(key, depth, preempt), was_dominated);
  }
  EXPECT_EQ(combined.size(), split.size());
}

TEST(VisitedTable, ExhaustiveModeKeepsSingletonAntichains) {
  // Exhaustive searches always pass preempt == 0: a later (shallower)
  // visit dominates and replaces the earlier one, so memory stays at one
  // pair per key and never spills.
  VisitedTable table;
  table.insert(1, 10, 0);
  table.insert(1, 7, 0);  // dominates (10, 0): replaces it
  EXPECT_TRUE(table.dominated(1, 7, 0));
  EXPECT_TRUE(table.dominated(1, 12, 0));
  EXPECT_FALSE(table.dominated(1, 6, 0));
  EXPECT_EQ(table.size(), 1u);
}

TEST(VisitedTable, LongAntichainsSpillAndUnspill) {
  // A strictly diagonal antichain (d+p constant) never self-dominates:
  // 12 pairs on one key overflow the 2 inline slots into the spill pool.
  VisitedTable table;
  const std::uint64_t key = 77;
  for (int i = 0; i < 12; ++i) {
    table.insert(key, 20 - i, i);
  }
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(table.dominated(key, 20 - i, i));
  }
  EXPECT_FALSE(table.dominated(key, 8, 0));
  // A (0, 0) visit dominates everything: the antichain collapses to it.
  table.insert(key, 0, 0);
  EXPECT_TRUE(table.dominated(key, 0, 0));
  EXPECT_EQ(table.size(), 1u);
  // The freed spill nodes are recycled for another key.
  for (int i = 0; i < 12; ++i) {
    table.insert(key + 1, 20 - i, i);
  }
  EXPECT_TRUE(table.dominated(key + 1, 15, 5));
}

TEST(VisitedTable, SurvivesGrowthAndKeyZero) {
  VisitedTable table;
  OracleTable oracle;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng();  // distinct keys: forces rehashes
    table.insert(key, 5, 5);
    oracle.insert(key, 5, 5);
  }
  // Key 0 is remapped internally but must behave like any key.
  EXPECT_FALSE(table.dominated(0, 10, 10));
  table.insert(0, 3, 3);
  EXPECT_TRUE(table.dominated(0, 10, 10));
  EXPECT_FALSE(table.dominated(0, 2, 2));
  EXPECT_EQ(table.size(), oracle.size() + 1);
  EXPECT_GT(table.bytes(), 0u);
}

TEST(VisitedTable, RejectsOutOfRangeBudgets) {
  VisitedTable table;
  EXPECT_THROW(table.insert(1, -1, 0), std::out_of_range);
  EXPECT_THROW(table.insert(1, 0, 0x10000), std::out_of_range);
  EXPECT_THROW(table.check_and_insert(1, 0x10000, 0), std::out_of_range);
}

/// Reference semantics for the sleep-set-aware cache: a stored mask m
/// subsumes a visit under `sleep` iff m ⊆ sleep; inserting drops stored
/// supersets of the new mask (the new, wider exploration covers them).
class SleepOracle {
 public:
  [[nodiscard]] bool subsumed(std::uint64_t key, std::uint32_t sleep) const {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      return false;
    }
    for (const std::uint32_t m : it->second) {
      if ((m & ~sleep) == 0) {
        return true;
      }
    }
    return false;
  }

  void insert(std::uint64_t key, std::uint32_t sleep) {
    std::vector<std::uint32_t>& v = map_[key];
    std::erase_if(v,
                  [&](std::uint32_t m) { return (sleep & ~m) == 0; });
    v.push_back(sleep);
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> map_;
};

TEST(SleepCache, MatchesOracleOnRandomWorkload) {
  std::mt19937_64 rng(42);
  SleepCache cache;
  SleepOracle oracle;
  // Few distinct keys and narrow 8-bit masks: subset/superset relations
  // are frequent, so the antichain maintenance is exercised hard.
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 199);
  std::uniform_int_distribution<std::uint32_t> mask_dist(0, 255);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = key_dist(rng) * 0x100000001b3ULL;
    const std::uint32_t sleep = mask_dist(rng);
    ASSERT_EQ(cache.subsumed(key, sleep), oracle.subsumed(key, sleep))
        << "key " << key << " sleep " << sleep;
    if (!cache.subsumed(key, sleep)) {
      cache.insert(key, sleep);
      oracle.insert(key, sleep);
    }
  }
  EXPECT_EQ(cache.size(), oracle.size());
}

TEST(SleepCache, CheckAndInsertMatchesTwoCallForm) {
  std::mt19937_64 rng(7);
  SleepCache combined;
  SleepCache split;
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 99);
  std::uniform_int_distribution<std::uint32_t> mask_dist(0, 63);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t key = key_dist(rng);
    const std::uint32_t sleep = mask_dist(rng);
    const bool was = split.subsumed(key, sleep);
    if (!was) {
      split.insert(key, sleep);
    }
    ASSERT_EQ(combined.check_and_insert(key, sleep), was);
  }
  EXPECT_EQ(combined.size(), split.size());
}

TEST(SleepCache, SubsetSubsumesAndInsertDropsSupersets) {
  SleepCache cache;
  cache.insert(1, 0b0011);
  // A stored subset covers any wider sleep mask...
  EXPECT_TRUE(cache.subsumed(1, 0b0011));
  EXPECT_TRUE(cache.subsumed(1, 0b0111));
  // ...but never a narrower one (the narrower visit explores more).
  EXPECT_FALSE(cache.subsumed(1, 0b0001));
  EXPECT_FALSE(cache.subsumed(1, 0b0110));
  // Inserting the narrower mask subsumes the stored superset.
  cache.insert(1, 0b0001);
  EXPECT_TRUE(cache.subsumed(1, 0b0001));
  EXPECT_TRUE(cache.subsumed(1, 0b0011));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SleepCache, IncomparableMasksSpillPastTheInlineSlots) {
  SleepCache cache;
  const std::uint64_t key = 77;
  // ~(1 << i) masks are pairwise incomparable: none subsumes another, so
  // 12 of them overflow the 2 inline slots into the spill pool.
  for (int i = 0; i < 12; ++i) {
    const std::uint32_t m = 0xFFFu & ~(1u << i);
    EXPECT_FALSE(cache.subsumed(key, m));
    cache.insert(key, m);
  }
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(cache.subsumed(key, 0xFFFu & ~(1u << i)));
  }
  EXPECT_FALSE(cache.subsumed(key, 0xFFFu & ~(3u << 3)));
  EXPECT_GT(cache.live_bytes(), 0u);
  EXPECT_LE(cache.live_bytes(), cache.bytes());
  // The empty mask subsumes everything: the whole antichain collapses.
  cache.insert(key, 0);
  EXPECT_TRUE(cache.subsumed(key, 0));
  EXPECT_EQ(cache.size(), 1u);
  // The freed spill nodes are recycled for another key.
  for (int i = 0; i < 12; ++i) {
    cache.insert(key + 1, 0xFFFu & ~(1u << i));
  }
  EXPECT_TRUE(cache.subsumed(key + 1, 0xFFFu & ~(1u << 5)));
}

TEST(SleepCache, ClearKeepsReservedCapacity) {
  SleepCache cache;
  for (std::uint64_t k = 1; k <= 500; ++k) {
    for (int i = 0; i < 4; ++i) {
      cache.insert(k * 0x9e3779b9ULL, 0xFFu & ~(1u << i));
    }
  }
  const std::size_t reserved = cache.bytes();
  EXPECT_GT(cache.size(), 0u);
  EXPECT_GT(cache.live_bytes(), 0u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.subsumed(0x9e3779b9ULL, 0xFF));
  // Capacity (slot array + spill slabs) survives for reuse; live bytes
  // fall back to the empty slot array.
  EXPECT_EQ(cache.bytes(), reserved);
  cache.insert(123, 7);
  EXPECT_TRUE(cache.subsumed(123, 7));
  EXPECT_EQ(cache.bytes(), reserved);
}

TEST(SleepCache, SurvivesGrowthAndKeyZero) {
  SleepCache cache;
  SleepOracle oracle;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng();  // distinct keys: forces rehashes
    cache.insert(key, 0b101);
    oracle.insert(key, 0b101);
  }
  // Key 0 is remapped internally but must behave like any key.
  EXPECT_FALSE(cache.subsumed(0, 0xFFFF));
  cache.insert(0, 0b11);
  EXPECT_TRUE(cache.subsumed(0, 0b111));
  EXPECT_FALSE(cache.subsumed(0, 0b1));
  EXPECT_EQ(cache.size(), oracle.size() + 1);
  EXPECT_GT(cache.bytes(), 0u);
}

}  // namespace
}  // namespace cfc
