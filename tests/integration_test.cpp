// Cross-module integration and whole-framework property tests:
//  * schedule recording + replay reproduces runs exactly;
//  * the Lemma 1 reduction composes with every mutex algorithm;
//  * the Theorem 1/2 lower bounds and Lemma 3/6 inequalities hold for the
//    measured contention-free profile of *every* register-model mutex at
//    *every* swept configuration (the framework-wide soundness property);
//  * contention-free <= worst-case and register <= step, always.
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "core/bounds.h"
#include "mutex/detector_adapter.h"
#include "mutex/kessels.h"
#include "mutex/lamport_fast.h"
#include "mutex/lamport_packed.h"
#include "mutex/lamport_tree.h"
#include "mutex/peterson.h"
#include "mutex/tournament.h"
#include "sched/sched.h"

namespace cfc {
namespace {

TEST(Replay, RecordedRandomScheduleReplaysToIdenticalTrace) {
  auto run_once = [](Scheduler& sched) {
    Sim sim;
    auto alg = setup_mutex(sim, LamportFast::factory(), 4, 2);
    drive(sim, sched, RunLimits{100'000});
    return sim.trace().accesses();
  };

  RandomScheduler rnd(1234);
  RecordingScheduler rec(rnd);
  const std::vector<Access> original = run_once(rec);
  ASSERT_FALSE(original.empty());

  ScriptedScheduler replay(rec.schedule());
  const std::vector<Access> replayed = run_once(replay);

  ASSERT_EQ(original.size(), replayed.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].pid, replayed[i].pid) << i;
    EXPECT_EQ(original[i].reg, replayed[i].reg) << i;
    EXPECT_EQ(original[i].before, replayed[i].before) << i;
    EXPECT_EQ(original[i].after, replayed[i].after) << i;
  }
}

TEST(Replay, RecordingDoesNotPerturbTheSchedule) {
  auto final_trace_size = [](std::uint64_t seed, bool recorded) {
    Sim sim;
    auto alg = setup_mutex(sim, LamportFast::factory(), 3, 2);
    RandomScheduler rnd(seed);
    if (recorded) {
      RecordingScheduler rec(rnd);
      drive(sim, rec, RunLimits{100'000});
    } else {
      drive(sim, rnd, RunLimits{100'000});
    }
    return sim.trace().size();
  };
  for (std::uint64_t seed : {7ull, 99ull}) {
    EXPECT_EQ(final_trace_size(seed, true), final_trace_size(seed, false));
  }
}

struct NamedMutex {
  const char* name;
  MutexFactory factory;
  int max_n;
  bool register_model;  // pure atomic-register algorithm
};

std::vector<NamedMutex> swept_mutexes() {
  return {
      {"peterson", Peterson::factory(), 2, true},
      {"kessels", Kessels::factory(), 2, true},
      {"lamport", LamportFast::factory(), 1 << 20, true},
      {"lamport-packed", LamportPacked::factory(), 1 << 16, true},
      {"peterson-tree", TournamentMutex::peterson_tree(), 1 << 20, true},
      {"kessels-tree", TournamentMutex::kessels_tree(), 1 << 20, true},
      {"thm3-l2", theorem3_factory(2), 1 << 20, true},
      {"thm3-l3", theorem3_factory(3), 1 << 20, true},
      {"thm3-l4-paper", theorem3_factory(4, TreeArity::PaperLiteral),
       1 << 20, true},
  };
}

class FrameworkSoundness : public ::testing::TestWithParam<int> {};

// The central cross-check: for every algorithm and every n in the sweep,
// the measured contention-free profile satisfies every lower bound the
// paper proves. A bug in either the algorithms, the measurement windows,
// or the bound formulas would break this.
TEST_P(FrameworkSoundness, LowerBoundsHoldForMeasuredProfiles) {
  const auto algs = swept_mutexes();
  const NamedMutex& alg = algs[static_cast<std::size_t>(GetParam())];
  for (const int n : {2, 4, 8, 16, 64, 256}) {
    if (n > alg.max_n) {
      continue;
    }
    const MutexCfResult r = measure_mutex_contention_free(
        alg.factory, n,
        alg.register_model ? AccessPolicy::RegistersOnly
                           : AccessPolicy::Unrestricted,
        /*max_pids=*/4);
    const auto un = static_cast<std::uint64_t>(n);
    const int l = r.measured_atomicity;
    EXPECT_GT(static_cast<double>(r.session.steps),
              bounds::thm1_cf_step_lower(n, l))
        << alg.name << " n=" << n;
    EXPECT_GE(static_cast<double>(r.session.registers) + 1e-9,
              bounds::thm2_cf_register_lower(n, l))
        << alg.name << " n=" << n;
    EXPECT_TRUE(bounds::lemma3_satisfied(un, l, r.session.write_steps,
                                         r.session.read_registers))
        << alg.name << " n=" << n;
    EXPECT_TRUE(bounds::lemma6_satisfied(un, l, r.session.registers,
                                         r.session.write_registers))
        << alg.name << " n=" << n;
    // Internal consistency of the measures themselves.
    EXPECT_LE(r.session.registers, r.session.steps) << alg.name;
    EXPECT_LE(r.session.read_registers, r.session.read_steps) << alg.name;
    EXPECT_LE(r.session.write_registers, r.session.write_steps) << alg.name;
    EXPECT_EQ(r.session.steps, r.session.read_steps + r.session.write_steps)
        << alg.name << " (register-model accesses are read xor write)";
    EXPECT_EQ(r.session.steps, r.entry.steps + r.exit.steps) << alg.name;
  }
}

// Lemma 1 composes with every mutex: the derived detector is correct and
// its contention-free cost is the mutex's entry cost plus one access.
TEST_P(FrameworkSoundness, Lemma1ComposesWithEveryMutex) {
  const auto algs = swept_mutexes();
  const NamedMutex& alg = algs[static_cast<std::size_t>(GetParam())];
  const int n = std::min(alg.max_n, 8);

  const MutexCfResult mutex_cf = measure_mutex_contention_free(
      alg.factory, n, AccessPolicy::Unrestricted, /*max_pids=*/4);
  const ComplexityReport det_cf = measure_detector_contention_free(
      DetectorFromMutex::factory(alg.factory), n);
  EXPECT_EQ(det_cf.steps, mutex_cf.entry.steps + 1) << alg.name;
  EXPECT_EQ(det_cf.registers, mutex_cf.entry.registers + 1) << alg.name;

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Sim sim;
    auto det =
        setup_detection(sim, DetectorFromMutex::factory(alg.factory), n);
    RandomScheduler rnd(seed);
    ASSERT_EQ(drive(sim, rnd, RunLimits{500'000}), RunOutcome::AllDone)
        << alg.name << " seed " << seed;
    EXPECT_LE(count_winners(sim), 1) << alg.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMutexes, FrameworkSoundness,
                         ::testing::Range(0, 9),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           static const auto algs = swept_mutexes();
                           std::string name =
                               algs[static_cast<std::size_t>(pinfo.param)]
                                   .name;
                           for (char& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

// Contention-free complexity never exceeds what the worst-case search
// finds when both measure the same windows (cf sessions are particular
// runs, so any wc estimate from a superset of schedules dominates).
TEST(MeasureOrdering, ContentionFreeAtMostWorstCase) {
  for (const int n : {2, 4, 8}) {
    const MutexCfResult cf = measure_mutex_contention_free(
        LamportFast::factory(), n, AccessPolicy::RegistersOnly);
    WorstCaseSearchOptions options;
    options.seeds = {1, 2, 3, 4};
    const MutexWcSearchResult wc = search_mutex_worst_case(
        LamportFast::factory(), n, /*sessions=*/2, options);
    EXPECT_LE(cf.entry.steps, wc.entry.steps) << n;
    EXPECT_LE(cf.exit.steps, wc.exit.steps) << n;
  }
}

// The paper's register-vs-space distinction: the Theorem 3 tree uses O(n)
// shared registers (space) while a process touches only O(log n / l) of
// them (register complexity); [BL93]'s n-register space bound is respected
// by every implemented deadlock-free mutex.
TEST(SpaceVsRegisterComplexity, TreeUsesManyRegistersTouchesFew) {
  const int n = 64;
  Sim sim;
  auto alg = setup_mutex(sim, theorem3_factory(2), n, 1);
  const int space = sim.memory().size();
  const MutexCfResult cf = measure_mutex_contention_free(
      theorem3_factory(2), n, AccessPolicy::RegistersOnly, /*max_pids=*/2);
  EXPECT_GE(space, n);  // [BL93] lower bound on space
  EXPECT_LT(cf.session.registers, space / 4);
}

}  // namespace
}  // namespace cfc
