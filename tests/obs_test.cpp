// The observability layer (src/obs/): the metric registry against a plain
// map oracle (including a multi-threaded shard-merge determinism check),
// the scoped-span tracer's Chrome trace-event output (must parse and
// nest), and the trace validator's rejection of malformed payloads.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cfc::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A fresh registry per test: the global one is shared process state.
class MetricsTest : public ::testing::Test {
 protected:
  MetricRegistry reg_;
};

TEST_F(MetricsTest, MatchesMapOracleSingleThread) {
  reg_.set_enabled(true);
  std::map<Metric, std::uint64_t> oracle;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto m = static_cast<Metric>(rng() % kMetricCount);
    const std::uint64_t v = rng() % 1000;
    if (metric_desc(m).kind == MetricKind::Counter) {
      reg_.add(m, v);
      oracle[m] += v;
    } else {
      reg_.set(m, v);
      oracle[m] = v;
    }
  }
  const MetricRegistry::Snapshot snap = reg_.snapshot();
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const auto m = static_cast<Metric>(i);
    EXPECT_EQ(snap.value(m), oracle[m]) << metric_desc(m).name;
  }
}

TEST_F(MetricsTest, CounterShardsMergeToExactTotalAcrossThreads) {
  reg_.set_enabled(true);
  // Each worker adds a known arithmetic series; the shard-summed snapshot
  // must equal the closed form regardless of shard assignment, at every
  // thread count the CI determinism gate uses.
  for (const int threads : {1, 2, 4, 8}) {
    reg_.reset();
    constexpr std::uint64_t kPerThread = 5000;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([this] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          reg_.add(Metric::states_visited, 2);
          reg_.add(Metric::cache_hits, 1);
        }
      });
    }
    for (std::thread& th : pool) {
      th.join();
    }
    const MetricRegistry::Snapshot snap = reg_.snapshot();
    const auto n = static_cast<std::uint64_t>(threads);
    EXPECT_EQ(snap.value(Metric::states_visited), 2 * kPerThread * n)
        << "threads=" << threads;
    EXPECT_EQ(snap.value(Metric::cache_hits), kPerThread * n)
        << "threads=" << threads;
  }
}

TEST_F(MetricsTest, DisabledRegistryIsInert) {
  EXPECT_FALSE(reg_.enabled());
  reg_.set_enabled(true);
  reg_.add(Metric::states_visited, 5);
  reg_.set(Metric::slab_bytes, 100);
  reg_.set_max(Metric::slab_bytes, 50);  // max keeps the larger value
  const MetricRegistry::Snapshot snap = reg_.snapshot();
  EXPECT_EQ(snap.value(Metric::states_visited), 5u);
  EXPECT_EQ(snap.value(Metric::slab_bytes), 100u);
  reg_.reset();
  EXPECT_EQ(reg_.snapshot().value(Metric::states_visited), 0u);
}

TEST(Trace, SpansWriteValidChromeTraceJson) {
  const std::string path = ::testing::TempDir() + "obs_trace_basic.json";
  Tracer::start(path);
  {
    const TraceSpan outer("outer");
    {
      const TraceSpan inner("inner");
    }
    {
      const TraceSpan inner2("inner2");
    }
  }
  // A second thread records into its own buffer (distinct tid).
  std::thread([] { const TraceSpan t("worker"); }).join();
  ASSERT_TRUE(Tracer::stop());

  const std::string payload = read_file(path);
  EXPECT_NE(payload.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(payload.find("\"outer\""), std::string::npos);
  EXPECT_NE(payload.find("\"worker\""), std::string::npos);
  std::vector<std::string> errors;
  EXPECT_TRUE(check_trace_json(payload, &errors));
  EXPECT_TRUE(errors.empty());
  std::remove(path.c_str());
}

TEST(Trace, NullNameSkipsRecordingAndOffCostsNothing) {
  // No active tracer: spans are inert.
  {
    const TraceSpan t("ignored");
  }
  const std::string path = ::testing::TempDir() + "obs_trace_skip.json";
  Tracer::start(path);
  {
    const TraceSpan sampled_out(nullptr);  // the sampling hook
    const TraceSpan kept("kept");
  }
  ASSERT_TRUE(Tracer::stop());
  const std::string payload = read_file(path);
  EXPECT_NE(payload.find("\"kept\""), std::string::npos);
  EXPECT_EQ(payload.find("\"ignored\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, ValidatorRejectsMalformedPayloads) {
  std::vector<std::string> errors;
  EXPECT_FALSE(check_trace_json("not json", &errors));
  EXPECT_FALSE(check_trace_json("[]", nullptr));
  EXPECT_FALSE(check_trace_json("{}", nullptr));
  EXPECT_FALSE(check_trace_json(
      R"({"traceEvents": [{"ph": "B", "name": "x", "ts": 0, "dur": 1, "pid": 1, "tid": 1}]})",
      nullptr));
  // Partial overlap within one tid: [0,10) vs [5,15) cannot nest.
  EXPECT_FALSE(check_trace_json(
      R"({"traceEvents": [
        {"name": "a", "cat": "c", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
        {"name": "b", "cat": "c", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 1}
      ]})",
      &errors));
  // The same two spans on different tids are independent: valid.
  EXPECT_TRUE(check_trace_json(
      R"({"traceEvents": [
        {"name": "a", "cat": "c", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
        {"name": "b", "cat": "c", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 2}
      ]})",
      nullptr));
}

}  // namespace
}  // namespace cfc::obs
