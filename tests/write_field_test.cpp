// Edge cases of the multi-grain sub-word store (Section 1.3 / [MS93]):
// zero-width fields are rejected, adjacent fields do not clobber each
// other, and a full-word field store behaves exactly like a plain write.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/sched.h"
#include "sched/sim.h"

namespace cfc {
namespace {

/// Runs `body` as the only process of a fresh sim owning one `width`-bit
/// register preloaded with `initial`, and returns the final register value.
Value run_single(int width, Value initial,
                 const std::function<Task<void>(ProcessContext&, RegId)>&
                     body) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", width);
  sim.memory().poke(r, initial);
  const Pid p = sim.spawn("p", [&body, r](ProcessContext& ctx) {
    return body(ctx, r);
  });
  while (sim.runnable(p)) {
    sim.step(p);
  }
  EXPECT_EQ(sim.status(p), ProcStatus::Done);
  return sim.memory().peek(r);
}

TEST(WriteField, ZeroWidthFieldIsRejectedEagerly) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    // The factory itself throws — a zero-width store is not an access and
    // must not silently degrade to a full-register write.
    EXPECT_THROW((void)ctx.write_field(r, 0, 0, 0), std::invalid_argument);
    EXPECT_THROW((void)ctx.write_field(r, 3, -1, 0), std::invalid_argument);
    EXPECT_THROW((void)ctx.write_field(r, -1, 2, 0), std::invalid_argument);
    co_await ctx.write(r, 7);
  });
  while (sim.runnable(0)) {
    sim.step(0);
  }
  EXPECT_EQ(sim.memory().peek(r), 7u);
}

TEST(WriteField, AdjacentFieldsDoNotOverlap) {
  // Three adjacent 4-bit fields in a 12-bit word, written in arbitrary
  // order: each store must touch exactly its own bits.
  const Value result = run_single(
      12, 0, [](ProcessContext& ctx, RegId r) -> Task<void> {
        co_await ctx.write_field(r, 4, 4, 0xA);  // middle
        co_await ctx.write_field(r, 0, 4, 0xB);  // low
        co_await ctx.write_field(r, 8, 4, 0xC);  // high
        co_await ctx.write_field(r, 4, 4, 0xD);  // overwrite middle only
      });
  EXPECT_EQ(result, 0xCDBu);
}

TEST(WriteField, FieldStorePreservesSurroundingBits) {
  const Value result = run_single(
      16, 0xFFFF, [](ProcessContext& ctx, RegId r) -> Task<void> {
        co_await ctx.write_field(r, 4, 8, 0x00);  // clear the middle byte
      });
  EXPECT_EQ(result, 0xF00Fu);
}

TEST(WriteField, FullWordFieldActsAsPlainWrite) {
  // Full 64-bit field on a 64-bit register: the mask computation must not
  // shift by >= the word size (UB) and the store must replace everything.
  const Value result = run_single(
      64, 0x1234'5678'9ABC'DEF0ull,
      [](ProcessContext& ctx, RegId r) -> Task<void> {
        co_await ctx.write_field(r, 0, 64, 0xFEDC'BA98'7654'3210ull);
      });
  EXPECT_EQ(result, 0xFEDC'BA98'7654'3210ull);
}

TEST(WriteField, FullWidthFieldOnNarrowRegister) {
  const Value result = run_single(
      8, 0x55, [](ProcessContext& ctx, RegId r) -> Task<void> {
        co_await ctx.write_field(r, 0, 8, 0xAA);
      });
  EXPECT_EQ(result, 0xAAu);
}

TEST(WriteField, OutOfRangeFieldThrowsAtExecution) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write_field(r, 4, 8, 0);  // bits [4,12) of an 8-bit reg
  });
  EXPECT_THROW(sim.step(0), std::invalid_argument);
}

TEST(WriteField, OversizedValueThrowsAtExecution) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write_field(r, 0, 4, 0x1F);  // 5 bits into a 4-bit field
  });
  EXPECT_THROW(sim.step(0), std::invalid_argument);
}

TEST(WriteField, FieldWriteCountsAsOneStep) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write_field(r, 0, 8, 1);
    co_await ctx.write_field(r, 8, 8, 2);
  });
  while (sim.runnable(p)) {
    sim.step(p);
  }
  EXPECT_EQ(sim.access_count(p), 2u);
  EXPECT_EQ(sim.memory().peek(r), 0x0201u);
}

}  // namespace
}  // namespace cfc
