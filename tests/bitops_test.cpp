#include "memory/bitops.h"

#include <gtest/gtest.h>

namespace cfc {
namespace {

TEST(BitOps, SkipLeavesValueAndReturnsNothing) {
  for (bool v : {false, true}) {
    const BitOpResult r = apply(BitOp::Skip, v);
    EXPECT_EQ(r.new_value, v);
    EXPECT_FALSE(r.returned.has_value());
  }
}

TEST(BitOps, ReadLeavesValueAndReturnsIt) {
  for (bool v : {false, true}) {
    const BitOpResult r = apply(BitOp::Read, v);
    EXPECT_EQ(r.new_value, v);
    ASSERT_TRUE(r.returned.has_value());
    EXPECT_EQ(*r.returned, v);
  }
}

TEST(BitOps, Write0SetsZeroNoReturn) {
  for (bool v : {false, true}) {
    const BitOpResult r = apply(BitOp::Write0, v);
    EXPECT_FALSE(r.new_value);
    EXPECT_FALSE(r.returned.has_value());
  }
}

TEST(BitOps, Write1SetsOneNoReturn) {
  for (bool v : {false, true}) {
    const BitOpResult r = apply(BitOp::Write1, v);
    EXPECT_TRUE(r.new_value);
    EXPECT_FALSE(r.returned.has_value());
  }
}

TEST(BitOps, TestAndSetSetsOneReturnsOld) {
  for (bool v : {false, true}) {
    const BitOpResult r = apply(BitOp::TestAndSet, v);
    EXPECT_TRUE(r.new_value);
    ASSERT_TRUE(r.returned.has_value());
    EXPECT_EQ(*r.returned, v);
  }
}

TEST(BitOps, TestAndResetSetsZeroReturnsOld) {
  for (bool v : {false, true}) {
    const BitOpResult r = apply(BitOp::TestAndReset, v);
    EXPECT_FALSE(r.new_value);
    ASSERT_TRUE(r.returned.has_value());
    EXPECT_EQ(*r.returned, v);
  }
}

TEST(BitOps, FlipComplementsNoReturn) {
  for (bool v : {false, true}) {
    const BitOpResult r = apply(BitOp::Flip, v);
    EXPECT_EQ(r.new_value, !v);
    EXPECT_FALSE(r.returned.has_value());
  }
}

TEST(BitOps, TestAndFlipComplementsReturnsOld) {
  for (bool v : {false, true}) {
    const BitOpResult r = apply(BitOp::TestAndFlip, v);
    EXPECT_EQ(r.new_value, !v);
    ASSERT_TRUE(r.returned.has_value());
    EXPECT_EQ(*r.returned, v);
  }
}

TEST(BitOps, ReturnsValueClassification) {
  EXPECT_FALSE(returns_value(BitOp::Skip));
  EXPECT_TRUE(returns_value(BitOp::Read));
  EXPECT_FALSE(returns_value(BitOp::Write0));
  EXPECT_TRUE(returns_value(BitOp::TestAndReset));
  EXPECT_FALSE(returns_value(BitOp::Write1));
  EXPECT_TRUE(returns_value(BitOp::TestAndSet));
  EXPECT_FALSE(returns_value(BitOp::Flip));
  EXPECT_TRUE(returns_value(BitOp::TestAndFlip));
}

TEST(BitOps, CanModifyClassification) {
  EXPECT_FALSE(can_modify(BitOp::Skip));
  EXPECT_FALSE(can_modify(BitOp::Read));
  for (BitOp op : {BitOp::Write0, BitOp::Write1, BitOp::TestAndSet,
                   BitOp::TestAndReset, BitOp::Flip, BitOp::TestAndFlip}) {
    EXPECT_TRUE(can_modify(op)) << name(op);
  }
}

// Section 3.2: duality. write-0/write-1 and test-and-reset/test-and-set are
// dual pairs; skip, read, flip, test-and-flip are self-dual.
TEST(BitOps, DualPairsMatchPaper) {
  EXPECT_EQ(dual(BitOp::Write0), BitOp::Write1);
  EXPECT_EQ(dual(BitOp::Write1), BitOp::Write0);
  EXPECT_EQ(dual(BitOp::TestAndReset), BitOp::TestAndSet);
  EXPECT_EQ(dual(BitOp::TestAndSet), BitOp::TestAndReset);
  EXPECT_EQ(dual(BitOp::Skip), BitOp::Skip);
  EXPECT_EQ(dual(BitOp::Read), BitOp::Read);
  EXPECT_EQ(dual(BitOp::Flip), BitOp::Flip);
  EXPECT_EQ(dual(BitOp::TestAndFlip), BitOp::TestAndFlip);
}

TEST(BitOps, DualIsAnInvolution) {
  for (BitOp op : kAllBitOps) {
    EXPECT_EQ(dual(dual(op)), op) << name(op);
  }
}

// The semantic content of duality: applying the dual op to the complemented
// bit complements the result and returns the complemented old value.
TEST(BitOps, DualSemanticallyComplements) {
  for (BitOp op : kAllBitOps) {
    for (bool v : {false, true}) {
      const BitOpResult direct = apply(op, v);
      const BitOpResult mirrored = apply(dual(op), !v);
      EXPECT_EQ(mirrored.new_value, !direct.new_value) << name(op);
      ASSERT_EQ(mirrored.returned.has_value(), direct.returned.has_value())
          << name(op);
      if (direct.returned.has_value()) {
        EXPECT_EQ(*mirrored.returned, !*direct.returned) << name(op);
      }
    }
  }
}

TEST(BitOps, NamesRoundTrip) {
  for (BitOp op : kAllBitOps) {
    const auto parsed = parse_bit_op(name(op));
    ASSERT_TRUE(parsed.has_value()) << name(op);
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(parse_bit_op("no-such-op").has_value());
}

}  // namespace
}  // namespace cfc
