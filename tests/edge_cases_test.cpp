// Boundary conditions across the whole library: single-process systems,
// minimal register widths, crash at every possible position, empty windows,
// and measurement of processes that never ran.
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "core/adversary.h"
#include "core/measures.h"
#include "mutex/lamport_fast.h"
#include "mutex/tas_lock.h"
#include "naming/checkers.h"
#include "naming/tas_read_search.h"
#include "naming/tas_scan.h"
#include "naming/taf_tree.h"
#include "sched/sched.h"

namespace cfc {
namespace {

// --- n = 1: every problem is trivial but must still work. ---

TEST(SingleProcess, LamportMutexAlone) {
  const MutexCfResult r =
      measure_mutex_contention_free(LamportFast::factory(), 1);
  EXPECT_EQ(r.session.steps, 7);  // the algorithm doesn't shortcut n=1
  EXPECT_EQ(r.session.registers, 3);
}

TEST(SingleProcess, NamingAlone) {
  const NamingRunCheck scan = run_naming_sequential(TasScan::factory(), 1);
  EXPECT_TRUE(scan.ok());
  EXPECT_EQ(scan.names, std::vector<int>{1});
  // tas-scan for n=1 has zero shared bits and zero steps.
  EXPECT_EQ(scan.per_process[0].steps, 0);

  const NamingRunCheck search =
      run_naming_sequential(TasReadSearch::factory(), 1);
  EXPECT_TRUE(search.ok());
  EXPECT_EQ(search.names, std::vector<int>{1});
}

TEST(SingleProcess, DetectionAlone) {
  Sim sim;
  auto det = setup_detection(sim, SplitterTree::factory(1), 1);
  SoloScheduler solo(0);
  drive(sim, solo);
  EXPECT_EQ(sim.output(0), 1);
}

// --- Crash at every position (exhaustive failure injection). ---

TEST(CrashSweep, TafTreeEveryCrashPointKeepsUniqueness) {
  const int n = 8;
  const int max_steps = 3;  // log2(8) = 3 accesses per process
  for (Pid victim = 0; victim < n; ++victim) {
    for (std::uint64_t point = 0; point <= static_cast<std::uint64_t>(max_steps); ++point) {
      const NamingRunCheck check = run_naming_random(
          TafTree::factory(), n, /*seed=*/static_cast<std::uint64_t>(victim) * 17 + point,
          {{victim, point}});
      EXPECT_TRUE(check.all_terminated)
          << "victim " << victim << " point " << point;
      EXPECT_TRUE(check.names_unique)
          << "victim " << victim << " point " << point;
    }
  }
}

TEST(CrashSweep, TasScanMultipleSimultaneousCrashes) {
  const int n = 9;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    // Crash every second process at a staggered position.
    std::vector<CrashPlanEntry> crashes;
    for (Pid p = 0; p < n; p += 2) {
      crashes.push_back({p, static_cast<std::uint64_t>(p) / 2});
    }
    const NamingRunCheck check =
        run_naming_random(TasScan::factory(), n, seed, crashes);
    EXPECT_TRUE(check.all_terminated) << "seed " << seed;
    EXPECT_TRUE(check.names_unique) << "seed " << seed;
    // A crash plan fires only if the victim *attempts* one access too many;
    // a process that claims its name first terminates normally. So at
    // least the 4 unplanned processes finish, possibly more.
    EXPECT_GE(check.names.size(), 4u);
    EXPECT_LE(check.names.size(), static_cast<std::size_t>(n));
  }
}

TEST(CrashSweep, AllButOneCrashImmediately) {
  const int n = 6;
  std::vector<CrashPlanEntry> crashes;
  for (Pid p = 0; p + 1 < n; ++p) {
    crashes.push_back({p, 0});
  }
  const NamingRunCheck check =
      run_naming_random(TasScan::factory(), n, 3, crashes);
  EXPECT_TRUE(check.ok());
  ASSERT_EQ(check.names.size(), 1u);
  EXPECT_EQ(check.names[0], 1);  // survivor finds the first bit free
}

// --- Measurement windows on degenerate traces. ---

TEST(DegenerateWindows, ProcessThatNeverRanMeasuresZero) {
  Sim sim;
  auto alg = setup_mutex(sim, LamportFast::factory(), 3, 1);
  SoloScheduler solo(0);
  drive(sim, solo);
  const ComplexityReport rep = measure_all(sim.trace(), 2);
  EXPECT_EQ(rep.steps, 0);
  EXPECT_EQ(rep.registers, 0);
  EXPECT_EQ(rep.atomicity, 0);
  EXPECT_TRUE(contention_free_sessions(sim.trace(), 2, 3).empty());
}

TEST(DegenerateWindows, EmptyTraceYieldsNoWindows) {
  Trace empty;
  EXPECT_TRUE(contention_free_sessions(empty, 0, 1).empty());
  EXPECT_TRUE(clean_entry_windows(empty, 0, 1).empty());
  EXPECT_TRUE(exit_windows(empty, 0).empty());
  EXPECT_EQ(max_over_windows(empty, 0, {}).steps, 0);
}

TEST(DegenerateWindows, ZeroLengthRange) {
  Sim sim;
  const RegId r = sim.memory().add_bit("r");
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.read(r);
  });
  run_to_completion(sim, p);
  EXPECT_EQ(measure(sim.trace(), p, SeqRange{0, 0}).steps, 0);
}

// --- Width extremes. ---

TEST(WidthExtremes, SixtyFourBitRegisterRoundTrips) {
  Sim sim;
  const RegId r = sim.memory().add_register("wide", 64);
  const Value big = ~Value{0};
  const Pid p = sim.spawn("p", [r, big](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write(r, big);
    const Value v = co_await ctx.read(r);
    ctx.set_output(v == big ? 1 : 0);
  });
  run_to_completion(sim, p);
  EXPECT_EQ(sim.output(p), 1);
}

TEST(WidthExtremes, FieldStoreAtTopOfWord) {
  Sim sim;
  const RegId r = sim.memory().add_register("wide", 64);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write_field(r, 60, 4, 0xF);
  });
  run_to_completion(sim, p);
  EXPECT_EQ(sim.memory().peek(r), Value{0xF} << 60);
}

// --- Budget boundaries. ---

TEST(Budget, DriveWithZeroBudgetDoesNothing) {
  Sim sim;
  auto alg = setup_mutex(sim, TasLock::factory(), 2, 1);
  RoundRobinScheduler rr;
  EXPECT_EQ(drive(sim, rr, RunLimits{0}), RunOutcome::BudgetExhausted);
  EXPECT_EQ(sim.trace().access_count(), 0u);
}

TEST(Budget, StepUntilRespectsBudget) {
  Sim sim;
  const RegId r = sim.memory().add_bit("flag");
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    for (;;) {
      const Value v = co_await ctx.read(r);
      if (v != 0) {
        break;
      }
    }
  });
  const std::uint64_t taken =
      step_until(sim, p, [](const Sim&) { return false; }, 25);
  EXPECT_EQ(taken, 25u);
}

// --- Solo profile of a process that crashes mid-run. ---

TEST(SoloProfileEdge, CrashTruncatesProfile) {
  SimSetup setup = [](Sim& sim) {
    static std::vector<std::unique_ptr<Detector>> keep;
    keep.push_back(setup_detection(sim, SplitterTree::factory(1), 4));
    sim.crash_after(1, 2);
  };
  const SoloProfile prof = solo_profile(setup, 1);
  EXPECT_EQ(prof.accesses.size(), 2u);
  EXPECT_FALSE(prof.output.has_value());
}

// --- Model lattice edge: skip is allowed but useless. ---

TEST(SkipOp, ExecutesAndCountsAsAStep) {
  Sim sim;
  sim.set_model(Model{BitOp::Skip, BitOp::TestAndSet});
  const RegId r = sim.memory().add_bit("r");
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.op(BitOp::Skip, r);
    const Value v = co_await ctx.test_and_set(r);
    ctx.set_output(static_cast<int>(v));
  });
  run_to_completion(sim, p);
  EXPECT_EQ(sim.output(p), 0);
  EXPECT_EQ(sim.access_count(p), 2u);  // skip costs a step, returns nothing
  EXPECT_EQ(sim.memory().peek(r), 1u);
}

}  // namespace
}  // namespace cfc
