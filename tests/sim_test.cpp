#include "sched/sim.h"

#include <gtest/gtest.h>

#include "sched/sched.h"

namespace cfc {
namespace {

/// Writes `v` to `r`, reads it back, and stores the result as output.
Task<void> write_then_read(ProcessContext& ctx, RegId r, Value v) {
  co_await ctx.write(r, v);
  const Value got = co_await ctx.read(r);
  ctx.set_output(static_cast<int>(got));
}

TEST(Sim, SingleProcessWriteReadRoundTrip) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) {
    return write_then_read(ctx, r, 42);
  });
  while (sim.runnable(p)) {
    sim.step(p);
  }
  EXPECT_EQ(sim.status(p), ProcStatus::Done);
  ASSERT_TRUE(sim.output(p).has_value());
  EXPECT_EQ(*sim.output(p), 42);
  EXPECT_EQ(sim.access_count(p), 2u);
  EXPECT_EQ(sim.memory().peek(r), 42u);
}

TEST(Sim, StepExecutesExactlyOneAccess) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) {
    return write_then_read(ctx, r, 5);
  });
  EXPECT_EQ(sim.access_count(p), 0u);
  sim.step(p);
  EXPECT_EQ(sim.access_count(p), 1u);
  EXPECT_EQ(sim.memory().peek(r), 5u);  // the write happened
  EXPECT_EQ(sim.status(p), ProcStatus::Runnable);
  sim.step(p);
  EXPECT_EQ(sim.access_count(p), 2u);
  EXPECT_EQ(sim.status(p), ProcStatus::Done);
}

TEST(Sim, EnsureStartedExposesPendingWithoutExecuting) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) {
    return write_then_read(ctx, r, 7);
  });
  EXPECT_FALSE(sim.pending(p).has_value());
  sim.ensure_started(p);
  ASSERT_TRUE(sim.pending(p).has_value());
  EXPECT_EQ(sim.pending(p)->kind, AccessKind::Write);
  EXPECT_EQ(sim.pending(p)->reg, r);
  EXPECT_EQ(sim.pending(p)->to_write, 7u);
  EXPECT_EQ(sim.access_count(p), 0u);  // nothing executed yet
  EXPECT_EQ(sim.memory().peek(r), 0u);
}

/// A coroutine calling a sub-coroutine; checks nesting suspends correctly.
Task<Value> read_twice(ProcessContext& ctx, RegId r) {
  const Value a = co_await ctx.read(r);
  const Value b = co_await ctx.read(r);
  co_return a + b;
}

Task<void> nested_body(ProcessContext& ctx, RegId r) {
  co_await ctx.write(r, 3);
  const Value sum = co_await read_twice(ctx, r);
  ctx.set_output(static_cast<int>(sum));
}

TEST(Sim, NestedCoroutinesSuspendPerAccess) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) {
    return nested_body(ctx, r);
  });
  int steps = 0;
  while (sim.runnable(p)) {
    sim.step(p);
    ++steps;
  }
  EXPECT_EQ(steps, 3);  // write + two reads, each its own scheduling step
  ASSERT_TRUE(sim.output(p).has_value());
  EXPECT_EQ(*sim.output(p), 6);
}

TEST(Sim, TwoProcessesInterleaveAtAccessGranularity) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  const Pid a = sim.spawn("a", [r](ProcessContext& ctx) -> Task<void> {
    return write_then_read(ctx, r, 1);
  });
  const Pid b = sim.spawn("b", [r](ProcessContext& ctx) -> Task<void> {
    return write_then_read(ctx, r, 2);
  });
  // a writes 1, b writes 2, a reads (sees 2), b reads (sees 2).
  sim.step(a);
  sim.step(b);
  sim.step(a);
  sim.step(b);
  EXPECT_EQ(*sim.output(a), 2);
  EXPECT_EQ(*sim.output(b), 2);
}

TEST(Sim, BitOperationsApplyAtomically) {
  Sim sim;
  const RegId r = sim.memory().add_bit("bit");
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    const Value first = co_await ctx.test_and_set(r);
    const Value second = co_await ctx.test_and_set(r);
    ctx.set_output(static_cast<int>(first * 10 + second));
  });
  while (sim.runnable(p)) {
    sim.step(p);
  }
  EXPECT_EQ(*sim.output(p), 1);  // first tas returned 0, second returned 1
  EXPECT_EQ(sim.memory().peek(r), 1u);
}

TEST(Sim, CrashInjectionStopsProcess) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) {
    return write_then_read(ctx, r, 9);
  });
  sim.crash_after(p, 1);  // allowed one access, crashes attempting the second
  EXPECT_EQ(sim.step(p), Sim::StepResult::Access);
  EXPECT_EQ(sim.step(p), Sim::StepResult::CrashedNow);
  EXPECT_EQ(sim.status(p), ProcStatus::Crashed);
  EXPECT_FALSE(sim.runnable(p));
  EXPECT_FALSE(sim.output(p).has_value());
  // The first access still happened.
  EXPECT_EQ(sim.memory().peek(r), 9u);
}

TEST(Sim, CrashAtZeroPreventsAnyAccess) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) {
    return write_then_read(ctx, r, 9);
  });
  sim.crash_after(p, 0);
  EXPECT_EQ(sim.step(p), Sim::StepResult::CrashedNow);
  EXPECT_EQ(sim.memory().peek(r), 0u);
}

TEST(Sim, RegistersOnlyPolicyRejectsBitOps) {
  Sim sim;
  sim.set_access_policy(AccessPolicy::RegistersOnly);
  const RegId r = sim.memory().add_bit("bit");
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.test_and_set(r);
  });
  EXPECT_THROW(sim.step(p), AccessPolicyViolation);
}

TEST(Sim, BitModelPolicyRejectsRegisterReads) {
  Sim sim;
  sim.set_model(Model::rmw());
  const RegId r = sim.memory().add_bit("bit");
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.read(r);  // register read, not BitOp::Read
  });
  EXPECT_THROW(sim.step(p), AccessPolicyViolation);
}

TEST(Sim, ModelRejectsUnsupportedBitOp) {
  Sim sim;
  sim.set_model(Model::test_and_set());
  const RegId r = sim.memory().add_bit("bit");
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.test_and_flip(r);
  });
  EXPECT_THROW(sim.step(p), AccessPolicyViolation);
}

TEST(Sim, ModelAllowsSupportedBitOp) {
  Sim sim;
  sim.set_model(Model::test_and_set());
  const RegId r = sim.memory().add_bit("bit");
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    const Value v = co_await ctx.test_and_set(r);
    ctx.set_output(static_cast<int>(v));
  });
  while (sim.runnable(p)) {
    sim.step(p);
  }
  EXPECT_EQ(*sim.output(p), 0);
}

TEST(Sim, BitOpOnWideRegisterRejected) {
  Sim sim;
  const RegId r = sim.memory().add_register("wide", 8);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.test_and_set(r);
  });
  EXPECT_THROW(sim.step(p), AccessPolicyViolation);
}

TEST(Sim, MutualExclusionCheckerFires) {
  Sim sim;
  sim.check_mutual_exclusion(true);
  auto body = [](ProcessContext& ctx) -> Task<void> {
    ctx.set_section(Section::Entry);
    ctx.set_section(Section::Critical);
    // Needs one access so the process suspends inside its critical section.
    co_await ctx.read(0);
    ctx.set_section(Section::Remainder);
  };
  sim.memory().add_bit("r");
  const Pid a = sim.spawn("a", body);
  const Pid b = sim.spawn("b", body);
  sim.ensure_started(a);  // a is now in its critical section
  EXPECT_EQ(sim.section(a), Section::Critical);
  EXPECT_THROW(sim.ensure_started(b), MutualExclusionViolation);
}

TEST(Sim, TraceRecordsAccessesInOrder) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) {
    return write_then_read(ctx, r, 3);
  });
  while (sim.runnable(p)) {
    sim.step(p);
  }
  const auto accs = sim.trace().accesses_of(p);
  ASSERT_EQ(accs.size(), 2u);
  EXPECT_EQ(accs[0].kind, AccessKind::Write);
  EXPECT_EQ(accs[0].written, 3u);
  EXPECT_EQ(accs[0].before, 0u);
  EXPECT_EQ(accs[0].after, 3u);
  EXPECT_EQ(accs[1].kind, AccessKind::Read);
  ASSERT_TRUE(accs[1].returned.has_value());
  EXPECT_EQ(*accs[1].returned, 3u);
  EXPECT_LT(accs[0].seq, accs[1].seq);
}

TEST(Sim, WriteOutOfRangeThrows) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 2);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write(r, 4);  // does not fit in 2 bits
  });
  EXPECT_THROW(sim.step(p), std::invalid_argument);
}

TEST(Sim, ExceptionInsideBodyPropagatesOnStep) {
  Sim sim;
  sim.memory().add_bit("r");
  const Pid p = sim.spawn("p", [](ProcessContext& ctx) -> Task<void> {
    co_await ctx.read_bit(0);
    throw std::runtime_error("algorithm bug");
  });
  sim.ensure_started(p);
  EXPECT_THROW(sim.step(p), std::runtime_error);
}

TEST(Sim, BusyWaitLoopTakesOneStepPerIteration) {
  Sim sim;
  const RegId flag = sim.memory().add_bit("flag");
  const Pid waiter = sim.spawn("waiter", [flag](ProcessContext& ctx) -> Task<void> {
    for (;;) {
      const Value v = co_await ctx.read(flag);
      if (v != 0) {
        break;
      }
    }
    ctx.set_output(1);
  });
  const Pid setter = sim.spawn("setter", [flag](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write(flag, 1);
  });
  for (int i = 0; i < 5; ++i) {
    sim.step(waiter);
  }
  EXPECT_EQ(sim.access_count(waiter), 5u);
  EXPECT_TRUE(sim.runnable(waiter));
  sim.step(setter);
  sim.step(waiter);  // reads 1, exits the loop
  EXPECT_EQ(sim.status(waiter), ProcStatus::Done);
  EXPECT_EQ(*sim.output(waiter), 1);
}

TEST(Sim, SuspendedProcessesTearDownCleanly) {
  // A process abandoned mid-run (e.g. after a crash or budget stop) must
  // destroy its coroutine frames without leaks (exercised under ASan in CI;
  // here we just verify no crash on destruction).
  Sim sim;
  const RegId r = sim.memory().add_bit("r");
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    while (true) {
      co_await ctx.read(r);
    }
  });
  sim.step(p);
  sim.step(p);
  EXPECT_TRUE(sim.runnable(p));
  // sim goes out of scope with p suspended at an access
}

}  // namespace
}  // namespace cfc
