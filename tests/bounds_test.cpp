#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace cfc::bounds {
namespace {

TEST(Bounds, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_THROW((void)ceil_log2(0), std::invalid_argument);
}

TEST(Bounds, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_THROW((void)floor_log2(0), std::invalid_argument);
}

TEST(Bounds, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_THROW((void)ceil_div(1, 0), std::invalid_argument);
}

// Theorem 1: c > log n / (l - 2 + 3 log log n).
TEST(Bounds, Thm1MatchesFormula) {
  const double n = 1 << 16;  // log n = 16, log log n = 4
  const double expect_l1 = 16.0 / (1.0 - 2.0 + 12.0);
  EXPECT_NEAR(thm1_cf_step_lower(n, 1), expect_l1, 1e-9);
  const double expect_l8 = 16.0 / (8.0 - 2.0 + 12.0);
  EXPECT_NEAR(thm1_cf_step_lower(n, 8), expect_l8, 1e-9);
}

TEST(Bounds, Thm1VacuousForTinyN) {
  EXPECT_EQ(thm1_cf_step_lower(2, 1), 0.0);
  EXPECT_EQ(thm1_cf_step_lower(1, 1), 0.0);
}

TEST(Bounds, Thm1GrowsWithN) {
  double prev = 0;
  for (std::uint64_t n = 16; n <= (1ull << 40); n <<= 4) {
    const double cur = thm1_cf_step_lower(static_cast<double>(n), 1);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Bounds, Thm1ShrinksWithL) {
  const double n = 1 << 20;
  EXPECT_GT(thm1_cf_step_lower(n, 1), thm1_cf_step_lower(n, 8));
  EXPECT_GT(thm1_cf_step_lower(n, 8), thm1_cf_step_lower(n, 20));
}

TEST(Bounds, Thm1MinIntegerStrict) {
  // rhs = 16/12 ~ 1.33 at n=2^16, l=2 -> min integer c with c > rhs is 2.
  EXPECT_EQ(thm1_min_cf_steps(1 << 16, 2), 2);
  // vacuous bound -> c must exceed 0, i.e. at least 1
  EXPECT_EQ(thm1_min_cf_steps(2, 8), 1);
}

// Theorem 2: c >= sqrt(log n / (l + log log n)).
TEST(Bounds, Thm2MatchesFormula) {
  const double n = 1 << 16;
  EXPECT_NEAR(thm2_cf_register_lower(n, 1), std::sqrt(16.0 / 5.0), 1e-9);
  EXPECT_NEAR(thm2_cf_register_lower(n, 4), std::sqrt(16.0 / 8.0), 1e-9);
}

TEST(Bounds, Thm2MinRegistersAtLeastOne) {
  EXPECT_GE(thm2_min_cf_registers(2, 1), 1);
  EXPECT_GE(thm2_min_cf_registers(1 << 20, 1), 1);
}

TEST(Bounds, Thm2MinRegistersGrowsUnboundedly) {
  // Register complexity cannot be a constant number of bits (Section 2.5):
  // the minimum consistent c crosses any fixed threshold as n grows.
  const int at_small = thm2_min_cf_registers(1 << 4, 1);
  const int at_huge = thm2_min_cf_registers(1ull << 60, 1);
  EXPECT_GT(at_huge, at_small);
  EXPECT_GE(at_huge, 2);  // sqrt(60 / (1 + log2 60)) - 1 ~ 1.95 -> c >= 2
}

// Theorem 3: 7*ceil(log n / l) steps, 3*ceil(log n / l) registers.
TEST(Bounds, Thm3UpperBounds) {
  EXPECT_EQ(thm3_cf_step_upper(1024, 1), 70);
  EXPECT_EQ(thm3_cf_step_upper(1024, 2), 35);
  EXPECT_EQ(thm3_cf_step_upper(1024, 5), 14);
  EXPECT_EQ(thm3_cf_step_upper(1024, 10), 7);
  EXPECT_EQ(thm3_cf_register_upper(1024, 1), 30);
  EXPECT_EQ(thm3_cf_register_upper(1024, 2), 15);
  EXPECT_EQ(thm3_cf_register_upper(1024, 10), 3);
  EXPECT_EQ(thm3_cf_step_upper(1, 3), 0);
  EXPECT_THROW((void)thm3_cf_step_upper(8, 0), std::invalid_argument);
}

// Lamport's fast algorithm: l = log n, constant contention-free complexity.
TEST(Bounds, Thm3AtFullAtomicityIsConstant) {
  for (std::uint64_t n : {4ull, 64ull, 1024ull, 1ull << 20}) {
    const int l = ceil_log2(n);
    EXPECT_EQ(thm3_cf_step_upper(n, l), 7) << n;
    EXPECT_EQ(thm3_cf_register_upper(n, l), 3) << n;
  }
}

// Consistency: the Theorem 3 upper bound always dominates the Theorem 1/2
// lower bounds (otherwise the paper would be inconsistent).
TEST(Bounds, UpperBoundsDominateLowerBounds) {
  for (std::uint64_t n = 4; n <= (1ull << 30); n <<= 1) {
    for (int l = 1; l <= 16; ++l) {
      EXPECT_GE(thm3_cf_step_upper(n, l) + 1e-9,
                thm1_cf_step_lower(static_cast<double>(n), l))
          << "n=" << n << " l=" << l;
      EXPECT_GE(thm3_cf_register_upper(n, l) + 1e-9,
                thm2_cf_register_lower(static_cast<double>(n), l))
          << "n=" << n << " l=" << l;
    }
  }
}

// Lemma 3: w*l + w*log(w^2 r + w r^2) >= log n.
TEST(Bounds, Lemma3AcceptsFeasiblePoints) {
  // Lamport-like: at atomicity log n, one write to each of 2 registers and
  // 2 reads suffice: w=3, r=2, l=10, n=1024 -> lhs >= 30 > 10.
  EXPECT_TRUE(lemma3_satisfied(1024, 10, 3, 2));
  // Tree algorithm at l=1: w,r ~ log n.
  EXPECT_TRUE(lemma3_satisfied(1024, 1, 20, 30));
}

TEST(Bounds, Lemma3RejectsTooFastAlgorithms) {
  // Constant steps over bits for huge n would contradict the lemma.
  EXPECT_FALSE(lemma3_satisfied(1ull << 40, 1, 2, 2));
  EXPECT_FALSE(lemma3_satisfied(1ull << 60, 1, 3, 3));
}

TEST(Bounds, Lemma3EdgeCases) {
  EXPECT_TRUE(lemma3_satisfied(1, 1, 0, 0));   // single process: vacuous
  EXPECT_FALSE(lemma3_satisfied(4, 1, 0, 1));  // no writes but n > 1
}

// Lemma 6: n < 2 w! (4c w!)^c (w 2^{lw})^w.
TEST(Bounds, Lemma6AcceptsFeasiblePoints) {
  EXPECT_TRUE(lemma6_satisfied(1024, 10, 3, 2));  // Lamport-like
  EXPECT_TRUE(lemma6_satisfied(1024, 1, 30, 20));
}

TEST(Bounds, Lemma6RejectsConstantRegisterAlgorithms) {
  // c = w = 2 at l = 1 cannot detect contention among 2^40 processes.
  EXPECT_FALSE(lemma6_satisfied(1ull << 40, 1, 2, 2));
}

TEST(Bounds, MinBitAccessesCorollary) {
  EXPECT_EQ(min_contention_free_bit_accesses(10, 7), 16);
  EXPECT_EQ(min_contention_free_bit_accesses(1, 5), 5);
}

// Naming bounds (Theorems 4-7).
TEST(Bounds, NamingBounds) {
  EXPECT_EQ(thm4_taf_wc_step(64), 6);
  EXPECT_EQ(thm4_tastar_wc_register(64), 6);
  EXPECT_EQ(thm4_tas_wc_step(64), 63u);
  EXPECT_EQ(thm4_tasread_cf_step(64), 6);
  EXPECT_EQ(thm5_cf_register_lower(64), 6);
  EXPECT_EQ(thm6_wc_step_lower(64), 63u);
  EXPECT_EQ(thm7_tas_cf_register_lower(64), 63u);
}

// The naming table's internal consistency: contention-free <= worst-case,
// register <= step, for every column the paper lists.
TEST(Bounds, NamingTableConsistent) {
  for (std::uint64_t n : {2ull, 8ull, 64ull, 1024ull}) {
    EXPECT_LE(thm5_cf_register_lower(n),
              static_cast<int>(thm6_wc_step_lower(n)));
    EXPECT_LE(thm4_taf_wc_step(n), static_cast<int>(thm4_tas_wc_step(n)));
  }
}

}  // namespace
}  // namespace cfc::bounds
