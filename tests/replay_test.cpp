// Scheduler replay determinism: a run recorded with RecordingScheduler must
// be reproducible exactly — event for event — by feeding the recorded pid
// sequence to ScriptedScheduler on a fresh simulation, including under
// crash injection (the Section 3 stopping failures).
#include <gtest/gtest.h>

#include <vector>

#include "core/algorithm_registry.h"
#include "naming/naming_algorithm.h"
#include "mutex/mutex_algorithm.h"
#include "sched/sched.h"

namespace cfc {
namespace {

struct CrashPlan {
  Pid pid;
  std::uint64_t after_accesses;
};

void expect_traces_identical(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const TraceEvent& ea = a.events()[i];
    const TraceEvent& eb = b.events()[i];
    ASSERT_EQ(ea.seq, eb.seq) << "event " << i;
    ASSERT_EQ(ea.pid, eb.pid) << "event " << i;
    ASSERT_EQ(ea.kind, eb.kind) << "event " << i;
    if (ea.kind == TraceEvent::Kind::Access) {
      ASSERT_EQ(ea.access.reg, eb.access.reg) << "event " << i;
      ASSERT_EQ(ea.access.kind, eb.access.kind) << "event " << i;
      ASSERT_EQ(ea.access.bit_op, eb.access.bit_op) << "event " << i;
      ASSERT_EQ(ea.access.written, eb.access.written) << "event " << i;
      ASSERT_EQ(ea.access.returned, eb.access.returned) << "event " << i;
      ASSERT_EQ(ea.access.before, eb.access.before) << "event " << i;
      ASSERT_EQ(ea.access.after, eb.access.after) << "event " << i;
    } else if (ea.kind == TraceEvent::Kind::SectionChange) {
      ASSERT_EQ(ea.from, eb.from) << "event " << i;
      ASSERT_EQ(ea.to, eb.to) << "event " << i;
    }
  }
}

/// Records a random-scheduled mutex run (with optional crashes), replays
/// the recorded schedule on a fresh sim, and demands identical traces.
void roundtrip_mutex(const MutexFactory& factory, int n, int sessions,
                     std::uint64_t seed,
                     const std::vector<CrashPlan>& crashes) {
  Sim recorded;
  auto alg1 = setup_mutex(recorded, factory, n, sessions);
  for (const CrashPlan& c : crashes) {
    recorded.crash_after(c.pid, c.after_accesses);
  }
  RandomScheduler rnd(seed);
  RecordingScheduler recording(rnd);
  drive(recorded, recording, RunLimits{100'000});

  Sim replayed;
  auto alg2 = setup_mutex(replayed, factory, n, sessions);
  for (const CrashPlan& c : crashes) {
    replayed.crash_after(c.pid, c.after_accesses);
  }
  ScriptedScheduler scripted(recording.schedule());
  drive(replayed, scripted, RunLimits{100'000});

  expect_traces_identical(recorded.trace(), replayed.trace());
  for (Pid p = 0; p < n; ++p) {
    EXPECT_EQ(recorded.status(p), replayed.status(p)) << "pid " << p;
    EXPECT_EQ(recorded.output(p), replayed.output(p)) << "pid " << p;
  }
}

TEST(SchedulerReplay, MutexRoundTripWithoutCrashes) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("thm3-exact-l2").factory;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    roundtrip_mutex(factory, 4, 2, seed, {});
  }
}

TEST(SchedulerReplay, MutexRoundTripUnderCrashInjection) {
  // A crashed process's pending access never executes; the replay must
  // reproduce the crash at the same event index and the same downstream
  // behaviour of the survivors (who may inherit a blocked lock — hence the
  // budget-limited drive).
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("lamport-fast").factory;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    roundtrip_mutex(factory, 4, 2, seed,
                    {{0, seed % 5}, {2, 1 + seed % 3}});
  }
}

TEST(SchedulerReplay, NamingRoundTripUnderCrashInjection) {
  const auto& registry = AlgorithmRegistry::instance();
  for (const NamingAlgorithmEntry* entry : registry.naming_algorithms()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const int n = 8;
      Sim recorded;
      auto alg1 = setup_naming(recorded, entry->factory, n);
      recorded.crash_after(3, seed % 4);
      RandomScheduler rnd(seed);
      RecordingScheduler recording(rnd);
      drive(recorded, recording, RunLimits{100'000});

      Sim replayed;
      auto alg2 = setup_naming(replayed, entry->factory, n);
      replayed.crash_after(3, seed % 4);
      ScriptedScheduler scripted(recording.schedule());
      drive(replayed, scripted, RunLimits{100'000});

      expect_traces_identical(recorded.trace(), replayed.trace());
    }
  }
}

TEST(SchedulerReplay, RecordingSchedulerLogsOnlyWhatRan) {
  // The recorded schedule replays to the same access counts even when the
  // script includes pids that crashed mid-run (ScriptedScheduler skips
  // non-runnable entries, mirroring the original skip behaviour).
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("peterson-tree").factory;
  Sim recorded;
  auto alg = setup_mutex(recorded, factory, 4, 1);
  recorded.crash_after(1, 2);
  RandomScheduler rnd(1234);
  RecordingScheduler recording(rnd);
  drive(recorded, recording, RunLimits{100'000});
  EXPECT_FALSE(recording.schedule().empty());

  Sim replayed;
  auto alg2 = setup_mutex(replayed, factory, 4, 1);
  replayed.crash_after(1, 2);
  ScriptedScheduler scripted(recording.schedule());
  drive(replayed, scripted, RunLimits{100'000});
  for (Pid p = 0; p < 4; ++p) {
    EXPECT_EQ(recorded.access_count(p), replayed.access_count(p));
  }
}

}  // namespace
}  // namespace cfc
