// Checkpoint/fork fidelity: a simulation forked mid-schedule must be
// indistinguishable from a from-scratch replay of the same schedule —
// including crash injection and multi-grain field writes — and the
// incremental memory fingerprint must agree with a freshly recomputed one.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/algorithm_registry.h"
#include "core/state_fingerprint.h"
#include "mutex/mutex_algorithm.h"
#include "sched/sched.h"

namespace cfc {
namespace {

struct CrashPlan {
  Pid pid;
  std::uint64_t after_accesses;
};

/// A deterministic rebuild callback for a mutex configuration with crash
/// injection; `keep` holds every built algorithm alive for the sims' sake.
SimBuilder mutex_builder(const MutexFactory& factory, int n, int sessions,
                         std::vector<CrashPlan> crashes) {
  auto keep =
      std::make_shared<std::vector<std::unique_ptr<MutexAlgorithm>>>();
  return [factory, n, sessions, crashes, keep](Sim& sim) {
    keep->push_back(setup_mutex(sim, factory, n, sessions));
    for (const CrashPlan& c : crashes) {
      sim.crash_after(c.pid, c.after_accesses);
    }
  };
}

/// From-scratch reference replay: applies a schedule log unit by unit to a
/// freshly built simulation (with sinks and invariant checks fully live).
void apply_units(Sim& sim, const std::vector<SimCheckpoint::Unit>& units) {
  for (const SimCheckpoint::Unit& u : units) {
    if (u.start_only) {
      sim.ensure_started(u.pid);
    } else {
      sim.step(u.pid);
    }
  }
}

void expect_same_state(const Sim& a, const Sim& b) {
  ASSERT_EQ(a.process_count(), b.process_count());
  EXPECT_EQ(a.next_seq(), b.next_seq());
  EXPECT_EQ(a.memory().fingerprint(), b.memory().fingerprint());
  EXPECT_EQ(a.memory().snapshot(), b.memory().snapshot());
  EXPECT_EQ(state_fingerprint(a), state_fingerprint(b));
  for (Pid p = 0; p < a.process_count(); ++p) {
    EXPECT_EQ(a.status(p), b.status(p)) << "pid " << p;
    EXPECT_EQ(a.section(p), b.section(p)) << "pid " << p;
    EXPECT_EQ(a.output(p), b.output(p)) << "pid " << p;
    EXPECT_EQ(a.access_count(p), b.access_count(p)) << "pid " << p;
    EXPECT_EQ(a.process_digest(p), b.process_digest(p)) << "pid " << p;
  }
}

/// The satellite scenario: run a prefix, checkpoint, diverge two branches
/// from the same checkpoint, and differential-test each branch against a
/// from-scratch replay of its full schedule log.
void fork_and_diverge(const MutexFactory& factory, int n, int sessions,
                      const std::vector<CrashPlan>& crashes,
                      std::uint64_t prefix_seed) {
  const SimBuilder rebuild = mutex_builder(factory, n, sessions, crashes);

  Sim original;
  rebuild(original);
  RandomScheduler prefix_rnd(prefix_seed);
  drive(original, prefix_rnd, RunLimits{40});
  const SimCheckpoint cp = original.checkpoint();

  for (const std::uint64_t branch_seed : {prefix_seed + 100, prefix_seed + 200}) {
    std::unique_ptr<Sim> branch = Sim::fork(cp, rebuild);
    RandomScheduler branch_rnd(branch_seed);
    drive(*branch, branch_rnd, RunLimits{60});

    Sim scratch;
    rebuild(scratch);
    apply_units(scratch, branch->schedule_log());
    expect_same_state(*branch, scratch);
  }
}

TEST(Checkpoint, ForkAndDivergeMatchesScratchReplay) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("thm3-exact-l2").factory;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    fork_and_diverge(factory, 4, 2, {}, seed);
  }
}

TEST(Checkpoint, ForkFidelityUnderCrashInjection) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("lamport-fast").factory;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    fork_and_diverge(factory, 4, 2, {{0, seed % 5}, {2, 1 + seed % 3}},
                     seed);
  }
}

TEST(Checkpoint, ForkFidelityWithMultiGrainFieldWrites) {
  // lamport-packed stores several logical registers in one word via
  // write_field: sub-word stores must fingerprint and replay exactly.
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("lamport-packed").factory;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    fork_and_diverge(factory, 4, 2, {{1, 2 + seed % 4}}, seed);
  }
}

TEST(Checkpoint, ForkVerifiesMemoryFingerprint) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  const SimBuilder rebuild = mutex_builder(factory, 2, 1, {});
  Sim sim;
  rebuild(sim);
  RandomScheduler rnd(7);
  drive(sim, rnd, RunLimits{10});
  SimCheckpoint cp = sim.checkpoint();
  cp.memory_fingerprint ^= 1;  // corrupt: replay must refuse
  EXPECT_THROW((void)Sim::fork(cp, rebuild), std::logic_error);
}

TEST(Checkpoint, MemorySnapshotIsOptIn) {
  // checkpoint(false) skips the deep MemorySnapshot copy; the checkpoint
  // still replays and verifies by fingerprint + event counter. The
  // default stays value-verifying (cp.memory populated).
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  const SimBuilder rebuild = mutex_builder(factory, 2, 1, {});
  Sim sim;
  rebuild(sim);
  RandomScheduler rnd(5);
  drive(sim, rnd, RunLimits{12});

  const SimCheckpoint full = sim.checkpoint();
  EXPECT_FALSE(full.memory.empty());
  SimCheckpoint light = sim.checkpoint(/*with_memory=*/false);
  EXPECT_TRUE(light.memory.empty());
  EXPECT_EQ(light.memory_fingerprint, full.memory_fingerprint);
  EXPECT_EQ(light.next_seq, full.next_seq);
  EXPECT_EQ(light.schedule.size(), full.schedule.size());

  const std::unique_ptr<Sim> from_light = Sim::fork(light, rebuild);
  const std::unique_ptr<Sim> from_full = Sim::fork(full, rebuild);
  expect_same_state(*from_light, *from_full);

  // Fingerprint verification still guards the memory-free checkpoint.
  light.memory_fingerprint ^= 1;
  EXPECT_THROW((void)Sim::fork(light, rebuild), std::logic_error);
}

TEST(Checkpoint, ForkSuppressesSinksDuringReplayThenReattaches) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  const SimBuilder rebuild = mutex_builder(factory, 2, 1, {});
  Sim sim;
  rebuild(sim);
  RandomScheduler rnd(3);
  drive(sim, rnd, RunLimits{8});
  const Seq at_fork = sim.next_seq();

  std::unique_ptr<Sim> forked = sim.fork(rebuild);
  EXPECT_TRUE(forked->trace().empty());  // the prefix is not re-materialized
  EXPECT_EQ(forked->next_seq(), at_fork);

  TraceRecorder post;
  forked->add_sink(post);
  RandomScheduler cont(4);
  drive(*forked, cont, RunLimits{5});
  // The re-attached sink sees exactly the post-fork events, numbered
  // continuously after the prefix.
  ASSERT_FALSE(post.trace().empty());
  EXPECT_GE(post.trace().events().front().seq, at_fork);
}

TEST(Checkpoint, DriveFromResumesIdenticallyToUninterruptedRun) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("kessels-tree").factory;
  const SimBuilder rebuild = mutex_builder(factory, 4, 1, {});

  Sim uninterrupted;
  rebuild(uninterrupted);
  RandomScheduler rnd_full(42);
  const RunOutcome full = drive(uninterrupted, rnd_full, RunLimits{100});

  Sim first_half;
  rebuild(first_half);
  RandomScheduler rnd_split(42);
  drive(first_half, rnd_split, RunLimits{40});
  std::unique_ptr<Sim> resumed;
  // The same scheduler object continues: it only observes runnability,
  // which the fork reproduces, so the pick stream is unchanged.
  const RunOutcome rest = drive_from(first_half.checkpoint(), rebuild,
                                     rnd_split, resumed, RunLimits{60});
  EXPECT_EQ(full, rest);
  expect_same_state(uninterrupted, *resumed);
}

}  // namespace
}  // namespace cfc
