// Real-atomics backend: mutual exclusion holds on hardware, the
// contention-free access counts match the simulator twin, and the backoff
// study machinery works end to end.
#include <gtest/gtest.h>

#include "rt/atomic_memory.h"
#include "rt/contention_study.h"
#include "rt/lamport_fast_rt.h"

namespace cfc::rt {
namespace {

TEST(AtomicMemory, ReadWriteRoundTrip) {
  AtomicMemory mem(4);
  EXPECT_EQ(mem.read(2), 0u);
  mem.write(2, 77);
  EXPECT_EQ(mem.read(2), 77u);
  mem.reset();
  EXPECT_EQ(mem.read(2), 0u);
}

TEST(AtomicMemory, TestAndSetReturnsOld) {
  AtomicMemory mem(1);
  EXPECT_EQ(mem.test_and_set(0), 0u);
  EXPECT_EQ(mem.test_and_set(0), 1u);
  EXPECT_EQ(mem.read(0), 1u);
}

// Solo acquisition costs exactly the paper's seven accesses — the hardware
// twin agrees with the instrumented simulator.
TEST(LamportFastRt, SoloCostsSevenAccesses) {
  AtomicMemory mem(LamportFastRt::registers_needed(4));
  LamportFastRt lock(mem, 4);
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t entry = lock.lock(2);
    const std::uint64_t exit = lock.unlock(2);
    EXPECT_EQ(entry, 5u);
    EXPECT_EQ(exit, 2u);
  }
}

TEST(TasLockRt, SoloCostsTwoAccesses) {
  AtomicMemory mem(1);
  TasLockRt lock(mem);
  EXPECT_EQ(lock.lock(), 1u);
  EXPECT_EQ(lock.unlock(), 1u);
}

class RtStudy : public ::testing::TestWithParam<int> {};

TEST_P(RtStudy, LamportMutualExclusionHolds) {
  ContentionStudyConfig config;
  config.threads = GetParam();
  config.acquisitions_per_thread = 300;
  const ContentionStudyResult res = run_lamport_study(config);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_EQ(res.total_acquisitions,
            static_cast<std::uint64_t>(config.threads) * 300u);
}

TEST_P(RtStudy, LamportWithBackoffMutualExclusionHolds) {
  ContentionStudyConfig config;
  config.threads = GetParam();
  config.acquisitions_per_thread = 300;
  config.backoff = true;
  const ContentionStudyResult res = run_lamport_study(config);
  EXPECT_EQ(res.violations, 0u);
}

TEST_P(RtStudy, TasLockMutualExclusionHolds) {
  ContentionStudyConfig config;
  config.threads = GetParam();
  config.acquisitions_per_thread = 300;
  const ContentionStudyResult res = run_tas_study(config);
  EXPECT_EQ(res.violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, RtStudy, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "t" + std::to_string(pinfo.param);
                         });

TEST(RtStudy, SoloMeanAccessesIsSeven) {
  ContentionStudyConfig config;
  config.threads = 1;
  config.acquisitions_per_thread = 500;
  const ContentionStudyResult res = run_lamport_study(config);
  EXPECT_DOUBLE_EQ(res.mean_accesses, 7.0);
}

TEST(LamportFastRt, RejectsTooSmallMemory) {
  AtomicMemory mem(3);
  EXPECT_THROW(LamportFastRt(mem, 4), std::invalid_argument);
}

}  // namespace
}  // namespace cfc::rt
