// Exploration correctness: the bounded exhaustive explorer must (a) certify
// worst-case values no smaller than any random search over the same
// configuration, (b) reproduce the contention the scripted Lemma-2 merge
// adversary constructs, (c) be bit-identical across thread counts, and
// (d) still find safety violations.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/experiment.h"
#include "core/adversary.h"
#include "core/algorithm_registry.h"
#include "core/contention_detection.h"
#include "mutex/peterson.h"
#include "mutex/tas_lock.h"

namespace cfc {
namespace {

WorstCaseSearchOptions exhaustive_opts(int depth) {
  WorstCaseSearchOptions o;
  o.strategy = SearchStrategy::Exhaustive;
  o.limits.max_depth = depth;
  return o;
}

WorstCaseSearchOptions random_opts(std::uint64_t budget, int nseeds) {
  WorstCaseSearchOptions o;
  o.strategy = SearchStrategy::Random;
  o.budget_per_run = budget;
  o.seeds.clear();
  for (int i = 1; i <= nseeds; ++i) {
    o.seeds.push_back(static_cast<std::uint64_t>(i));
  }
  return o;
}

// Every random schedule of <= depth picks is one path of the exhaustive
// tree, so the exhaustive maxima dominate the random maxima field by field.
// This exercises the soundness of visited-state pruning: an unsound merge
// would let the random search win.
TEST(Explorer, ExhaustiveDominatesRandomOnSameDepth) {
  const int depth = 20;
  const MutexFactory make = Peterson::factory();
  const MutexWcSearchResult ex =
      search_mutex_worst_case(make, 2, 1, exhaustive_opts(depth));
  const MutexWcSearchResult rnd =
      search_mutex_worst_case(make, 2, 1, random_opts(depth, 32));
  EXPECT_TRUE(ex.certified);
  EXPECT_FALSE(rnd.certified);
  EXPECT_GE(ex.entry.steps, rnd.entry.steps);
  EXPECT_GE(ex.entry.registers, rnd.entry.registers);
  EXPECT_GE(ex.exit.steps, rnd.exit.steps);
  EXPECT_GE(ex.exit.registers, rnd.exit.registers);
}

TEST(Explorer, CertifiesPetersonWorstCaseWindows) {
  const MutexWcSearchResult ex =
      search_mutex_worst_case(Peterson::factory(), 2, 1, exhaustive_opts(20));
  // Clean-entry register complexity is bounded by the three shared bits and
  // certified exactly; the exit code is the single flag write.
  EXPECT_EQ(ex.entry.registers, 3);
  EXPECT_EQ(ex.exit.steps, 1);
  EXPECT_EQ(ex.exit.registers, 1);
  // The worst-case *step* row is unbounded [AT92]: a deeper bound must
  // certify a strictly larger clean-entry step maximum (longer spins fit).
  const MutexWcSearchResult shallow =
      search_mutex_worst_case(Peterson::factory(), 2, 1, exhaustive_opts(12));
  EXPECT_GT(ex.entry.steps, shallow.entry.steps);
  // Peterson spins: some paths are always cut by the depth bound.
  EXPECT_TRUE(ex.truncated);
  EXPECT_TRUE(ex.entry.truncated);
}

TEST(Explorer, CertifiesTasLockCleanEntry) {
  // The TAS lock only spins while another process holds the lock (is in its
  // CS), and such windows are not clean: the certified clean-entry cost is
  // the single test-and-set on the single lock bit.
  const MutexWcSearchResult ex =
      search_mutex_worst_case(TasLock::factory(), 2, 1, exhaustive_opts(16));
  EXPECT_EQ(ex.entry.steps, 1);
  EXPECT_EQ(ex.entry.registers, 1);
  EXPECT_EQ(ex.exit.steps, 1);
}

TEST(Explorer, BitIdenticalAcrossThreadCounts) {
  ExperimentRunner seq(1);
  ExperimentRunner par(4);
  const MutexFactory make = Peterson::factory();
  const MutexWcSearchResult a =
      search_mutex_worst_case(make, 2, 1, exhaustive_opts(16), &seq);
  const MutexWcSearchResult b =
      search_mutex_worst_case(make, 2, 1, exhaustive_opts(16), &par);
  EXPECT_EQ(a.entry.steps, b.entry.steps);
  EXPECT_EQ(a.entry.registers, b.entry.registers);
  EXPECT_EQ(a.entry.truncated, b.entry.truncated);
  EXPECT_EQ(a.exit.steps, b.exit.steps);
  EXPECT_EQ(a.exit.registers, b.exit.registers);
  EXPECT_EQ(a.schedules_tried, b.schedules_tried);
  EXPECT_EQ(a.states_visited, b.states_visited);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.certified, b.certified);
}

// Bounded (preemption-limited) exploration covers a subset of the
// exhaustive space, so its maxima are sandwiched between the contention-free
// values and the exhaustive maxima.
TEST(Explorer, BoundedIsSandwichedBetweenCfAndExhaustive) {
  WorstCaseSearchOptions bounded = exhaustive_opts(16);
  bounded.strategy = SearchStrategy::Bounded;
  bounded.limits.max_preemptions = 2;
  const MutexWcSearchResult b =
      search_mutex_worst_case(Peterson::factory(), 2, 1, bounded);
  const MutexWcSearchResult ex =
      search_mutex_worst_case(Peterson::factory(), 2, 1, exhaustive_opts(16));
  EXPECT_LE(b.entry.steps, ex.entry.steps);
  EXPECT_LE(b.entry.registers, ex.entry.registers);
  // With >= 1 preemption available, the solo session (cf entry = 3 steps)
  // is in the bounded space.
  EXPECT_GE(b.entry.steps, 3);
  EXPECT_LT(b.states_visited, ex.states_visited);
}

TEST(Explorer, FindsMutualExclusionViolationInBrokenLock) {
  class NoMutex final : public MutexAlgorithm {
   public:
    explicit NoMutex(RegisterFile& mem) { r_ = mem.add_bit("nomutex.r"); }
    Task<void> enter(ProcessContext& ctx, int) override {
      co_await ctx.read(r_);
    }
    Task<void> exit(ProcessContext& ctx, int) override {
      co_await ctx.read(r_);
    }
    Task<Value> try_enter(ProcessContext& ctx, int slot, RegId) override {
      co_await enter(ctx, slot);
      co_return 1;
    }
    [[nodiscard]] int capacity() const override { return 2; }
    [[nodiscard]] int atomicity() const override { return 1; }
    [[nodiscard]] std::string algorithm_name() const override {
      return "broken";
    }

   private:
    RegId r_;
  };
  const MutexFactory broken = [](RegisterFile& mem, int) {
    return std::make_unique<NoMutex>(mem);
  };
  Explorer::Config cfg;
  cfg.nprocs = 2;
  cfg.strategy = SearchStrategy::Exhaustive;
  cfg.limits.max_depth = 10;
  cfg.setup = [&broken](Sim& sim) -> std::shared_ptr<void> {
    return setup_mutex(sim, broken, 2, 1);
  };
  const Explorer::Result res = Explorer(cfg).run();
  EXPECT_GT(res.stats.violations, 0u);

  // The violation count survives into the public search result: a
  // "certified" maximum over a broken algorithm is clearly marked unsafe.
  const MutexWcSearchResult wc =
      search_mutex_worst_case(broken, 2, 1, exhaustive_opts(10));
  EXPECT_GT(wc.violations, 0u);
}

// The Lemma-2 merge adversary is one schedule of the exhaustive space: the
// explorer must reproduce at least the contention it constructs. For the
// SelfishDetector every process performs the same fixed access sequence in
// every schedule, so the values agree exactly.
TEST(Explorer, ReproducesMergeAdversaryContentionExactly) {
  const DetectorFactory selfish = SelfishDetector::factory();
  auto keep = std::make_shared<std::vector<std::unique_ptr<Detector>>>();
  const SimSetup setup = [selfish, keep](Sim& sim) {
    keep->push_back(setup_detection(sim, selfish, 2));
  };
  const MergeResult merge = lemma2_merge(setup, 0, 1);
  ASSERT_TRUE(merge.both_terminated);
  EXPECT_TRUE(merge.both_won());  // the selfish detector is broken

  WorstCaseSearchOptions opts = exhaustive_opts(16);
  const DetectorWcSearchResult ex =
      search_detector_worst_case(selfish, 2, opts);
  EXPECT_TRUE(ex.certified);
  EXPECT_EQ(ex.best.steps, merge.max_total.steps);
  EXPECT_EQ(ex.best.registers, merge.max_total.registers);
}

TEST(Explorer, DominatesMergeAdversaryOnSplitterTree) {
  const DetectorFactory splitter = SplitterTree::factory(1);
  auto keep = std::make_shared<std::vector<std::unique_ptr<Detector>>>();
  const SimSetup setup = [splitter, keep](Sim& sim) {
    keep->push_back(setup_detection(sim, splitter, 2));
  };
  const MergeResult merge = lemma2_merge(setup, 0, 1);

  const DetectorWcSearchResult ex =
      search_detector_worst_case(splitter, 2, exhaustive_opts(24));
  EXPECT_TRUE(ex.certified);
  EXPECT_FALSE(ex.truncated);  // detectors terminate: full certification
  EXPECT_GE(ex.best.steps, merge.max_total.steps);
  // Worst-case step bound of the depth-1 splitter tree: 4 accesses.
  EXPECT_LE(ex.best.steps, 4);
  // Random sampling over the same space cannot beat the certified value.
  const DetectorWcSearchResult rnd =
      search_detector_worst_case(splitter, 2, random_opts(24, 16));
  EXPECT_LE(rnd.best.steps, ex.best.steps);
}

TEST(Explorer, TruncationIsSurfacedInReports) {
  // A random budget too small to close any window: the zero-valued report
  // must say so instead of masquerading as a certified completion.
  const MutexWcSearchResult tiny =
      search_mutex_worst_case(Peterson::factory(), 2, 1, random_opts(2, 2));
  EXPECT_TRUE(tiny.truncated);
  EXPECT_TRUE(tiny.entry.truncated);
  EXPECT_EQ(tiny.entry.steps, 0);
  // A full random run completes and is not flagged.
  const MutexWcSearchResult full =
      search_mutex_worst_case(Peterson::factory(), 2, 1,
                              random_opts(100'000, 2));
  EXPECT_FALSE(full.truncated);
  EXPECT_FALSE(full.entry.truncated);
}

TEST(Explorer, BoundedPruningPreservesValues) {
  // Under a preemption bound the visited key must include the last-running
  // pid: merging states with different `last` would prune subtrees whose
  // continuations are still in budget. Pruned and unpruned bounded searches
  // must certify identical values.
  WorstCaseSearchOptions pruned;
  pruned.strategy = SearchStrategy::Bounded;
  pruned.limits.max_depth = 14;
  pruned.limits.max_preemptions = 1;
  WorstCaseSearchOptions unpruned = pruned;
  unpruned.limits.prune_visited = false;
  const MutexWcSearchResult a =
      search_mutex_worst_case(Peterson::factory(), 2, 1, pruned);
  const MutexWcSearchResult b =
      search_mutex_worst_case(Peterson::factory(), 2, 1, unpruned);
  EXPECT_EQ(a.entry.steps, b.entry.steps);
  EXPECT_EQ(a.entry.registers, b.entry.registers);
  EXPECT_EQ(a.exit.steps, b.exit.steps);
  EXPECT_EQ(a.truncated, b.truncated);
}

TEST(Explorer, BoundedMarksPreemptionStarvedLeavesInsideFrontier) {
  // max_preemptions=0 admits only solo runs; once the solo process
  // finishes (within the frontier prefix) the other is runnable but every
  // switch is over budget — the bounded space was cut, and the result must
  // say so instead of claiming an un-truncated certification.
  WorstCaseSearchOptions o;
  o.strategy = SearchStrategy::Bounded;
  o.limits.max_depth = 12;
  o.limits.max_preemptions = 0;
  const MutexWcSearchResult r =
      search_mutex_worst_case(TasLock::factory(), 2, 1, o);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.entry.steps, 1);  // the solo clean entry is still found
}

TEST(Explorer, ExhaustiveIgnoresLeftoverPreemptionLimit) {
  // Reusing a Bounded limits struct with strategy=Exhaustive must not
  // silently shrink the certified space.
  WorstCaseSearchOptions leftover = exhaustive_opts(16);
  leftover.limits.max_preemptions = 0;
  const MutexWcSearchResult a =
      search_mutex_worst_case(Peterson::factory(), 2, 1, leftover);
  const MutexWcSearchResult b =
      search_mutex_worst_case(Peterson::factory(), 2, 1, exhaustive_opts(16));
  EXPECT_EQ(a.entry.steps, b.entry.steps);
  EXPECT_EQ(a.states_visited, b.states_visited);
}

// reduce_independent (sleep-set-lite) must preserve the certified values
// while skipping redundant sibling orderings. Differentially validated
// against the plain exhaustive explorer for every registry algorithm at
// n = 2..3 (the acceptance gate for enabling it on a given workload).
TEST(Explorer, ReduceIndependentPreservesMutexValues) {
  for (const int n : {2, 3}) {
    for (const MutexAlgorithmEntry* e :
         AlgorithmRegistry::instance().mutex_for_n(n)) {
      SCOPED_TRACE(e->info.name + " n=" + std::to_string(n));
      WorstCaseSearchOptions plain = exhaustive_opts(n == 2 ? 12 : 8);
      WorstCaseSearchOptions reduced = plain;
      reduced.limits.reduce_independent = true;
      const MutexWcSearchResult a =
          search_mutex_worst_case(e->factory, n, 1, plain);
      const MutexWcSearchResult b =
          search_mutex_worst_case(e->factory, n, 1, reduced);
      EXPECT_EQ(a.entry.steps, b.entry.steps);
      EXPECT_EQ(a.entry.registers, b.entry.registers);
      EXPECT_EQ(a.exit.steps, b.exit.steps);
      EXPECT_EQ(a.exit.registers, b.exit.registers);
      EXPECT_EQ(a.certified, b.certified);
      EXPECT_LE(b.states_visited, a.states_visited);
    }
  }
}

TEST(Explorer, ReduceIndependentPreservesDetectorValues) {
  for (const int n : {2, 3}) {
    for (const DetectorAlgorithmEntry* e :
         AlgorithmRegistry::instance().detector_algorithms()) {
      SCOPED_TRACE(e->info.name + " n=" + std::to_string(n));
      WorstCaseSearchOptions plain = exhaustive_opts(n == 2 ? 14 : 10);
      WorstCaseSearchOptions reduced = plain;
      reduced.limits.reduce_independent = true;
      const DetectorWcSearchResult a =
          search_detector_worst_case(e->factory, n, plain);
      const DetectorWcSearchResult b =
          search_detector_worst_case(e->factory, n, reduced);
      EXPECT_EQ(a.best.steps, b.best.steps);
      EXPECT_EQ(a.best.registers, b.best.registers);
      EXPECT_EQ(a.best.read_steps, b.best.read_steps);
      EXPECT_EQ(a.best.write_steps, b.best.write_steps);
      EXPECT_EQ(a.certified, b.certified);
      EXPECT_LE(b.states_visited, a.states_visited);
    }
  }
}

TEST(Explorer, ReduceIndependentRequiresExhaustive) {
  Explorer::Config cfg;
  cfg.nprocs = 2;
  cfg.strategy = SearchStrategy::Bounded;
  cfg.limits.max_preemptions = 1;
  cfg.limits.reduce_independent = true;
  cfg.setup = [](Sim& sim) -> std::shared_ptr<void> {
    return setup_mutex(sim, Peterson::factory(), 2, 1);
  };
  EXPECT_THROW((void)Explorer(cfg), std::invalid_argument);
}

TEST(Explorer, NewCountersAreThreadInvariant) {
  // restores / replayed_steps / sims_built / visited_bytes are per-cell
  // deterministic sums, so they must not depend on the pool size.
  ExperimentRunner seq(1);
  ExperimentRunner par(4);
  Explorer::Config cfg;
  cfg.nprocs = 2;
  cfg.strategy = SearchStrategy::Exhaustive;
  cfg.limits.max_depth = 14;
  cfg.setup = [](Sim& sim) -> std::shared_ptr<void> {
    return setup_mutex(sim, Peterson::factory(), 2, 1);
  };
  const Explorer explorer(cfg);
  const Explorer::Result a = explorer.run(&seq);
  const Explorer::Result b = explorer.run(&par);
  EXPECT_EQ(a.stats.restores, b.stats.restores);
  EXPECT_EQ(a.stats.replayed_steps, b.stats.replayed_steps);
  EXPECT_EQ(a.stats.sims_built, b.stats.sims_built);
  EXPECT_EQ(a.stats.visited_bytes, b.stats.visited_bytes);
  EXPECT_GT(a.stats.visited_bytes, 0u);
}

TEST(Explorer, VisitedPruningOnlyDropsRedundantWork) {
  // Pruning must not change the certified values, only the visit count.
  WorstCaseSearchOptions pruned = exhaustive_opts(14);
  WorstCaseSearchOptions unpruned = exhaustive_opts(14);
  unpruned.limits.prune_visited = false;
  const MutexWcSearchResult a =
      search_mutex_worst_case(Peterson::factory(), 2, 1, pruned);
  const MutexWcSearchResult b =
      search_mutex_worst_case(Peterson::factory(), 2, 1, unpruned);
  EXPECT_EQ(a.entry.steps, b.entry.steps);
  EXPECT_EQ(a.entry.registers, b.entry.registers);
  EXPECT_EQ(a.exit.steps, b.exit.steps);
  EXPECT_LE(a.states_visited, b.states_visited);
}

}  // namespace
}  // namespace cfc
