#include "core/contention_detection.h"

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/measures.h"
#include "sched/sched.h"

namespace cfc {
namespace {

struct SplitterParam {
  int n;
  int l;
};

class SplitterTreeTest : public ::testing::TestWithParam<SplitterParam> {};

// Safety requirement 2: in a run where only one process is activated, it
// terminates with output 1.
TEST_P(SplitterTreeTest, SoloProcessWins) {
  const auto [n, l] = GetParam();
  for (Pid p = 0; p < n; ++p) {
    Sim sim;
    auto det = setup_detection(sim, SplitterTree::factory(l), n);
    SoloScheduler solo(p);
    drive(sim, solo);
    ASSERT_EQ(sim.status(p), ProcStatus::Done);
    EXPECT_EQ(sim.output(p), 1) << "pid " << p;
  }
}

// Safety requirement 1: at most one process outputs 1, under many random
// schedules.
TEST_P(SplitterTreeTest, AtMostOneWinnerUnderRandomSchedules) {
  const auto [n, l] = GetParam();
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Sim sim;
    auto det = setup_detection(sim, SplitterTree::factory(l), n);
    RandomScheduler rnd(seed);
    ASSERT_EQ(drive(sim, rnd), RunOutcome::AllDone);
    EXPECT_LE(count_winners(sim), 1) << "seed " << seed;
  }
}

// Everyone terminates regardless of schedule (the splitter is wait-free).
TEST_P(SplitterTreeTest, WaitFreeUnderRoundRobin) {
  const auto [n, l] = GetParam();
  Sim sim;
  auto det = setup_detection(sim, SplitterTree::factory(l), n);
  RoundRobinScheduler rr;
  EXPECT_EQ(drive(sim, rr), RunOutcome::AllDone);
  for (Pid p = 0; p < n; ++p) {
    EXPECT_TRUE(sim.output(p).has_value());
  }
}

// Worst-case step complexity is 4d where d = ceil(bits(n)/l) trie levels;
// register complexity 2d; atomicity at most l.
TEST_P(SplitterTreeTest, ComplexityMatchesFormula) {
  const auto [n, l] = GetParam();
  Sim sim;
  auto det = setup_detection(sim, SplitterTree::factory(l), n);
  const auto* splitter = dynamic_cast<SplitterTree*>(det.get());
  ASSERT_NE(splitter, nullptr);
  const int d = splitter->depth();
  const int id_bits =
      std::max(1, bounds::ceil_log2(static_cast<std::uint64_t>(n)));
  EXPECT_EQ(d, bounds::ceil_div(id_bits, l));

  // Solo winner wins every node on its path: 4 accesses (w x, r y, w y,
  // r x) over 2 registers per node.
  SoloScheduler solo(0);
  drive(sim, solo);
  const ComplexityReport rep = measure_all(sim.trace(), 0);
  EXPECT_EQ(rep.steps, 4 * d);
  EXPECT_EQ(rep.registers, 2 * d);
  EXPECT_LE(rep.atomicity, l);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitterTreeTest,
    ::testing::Values(SplitterParam{1, 1}, SplitterParam{2, 1},
                      SplitterParam{3, 2}, SplitterParam{4, 1},
                      SplitterParam{4, 3}, SplitterParam{8, 1},
                      SplitterParam{8, 4}, SplitterParam{16, 2},
                      SplitterParam{16, 5}, SplitterParam{31, 5},
                      SplitterParam{32, 3}, SplitterParam{64, 7}),
    [](const ::testing::TestParamInfo<SplitterParam>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_l" +
             std::to_string(pinfo.param.l);
    });

TEST(SplitterTree, FullWidthFactoryUsesOneLevel) {
  Sim sim;
  auto det = setup_detection(sim, SplitterTree::factory_full_width(), 100);
  const auto* splitter = dynamic_cast<SplitterTree*>(det.get());
  ASSERT_NE(splitter, nullptr);
  EXPECT_EQ(splitter->depth(), 1);
  EXPECT_EQ(splitter->atomicity(), 7);  // ids 0..99 need 7 bits

  SoloScheduler solo(3);
  drive(sim, solo);
  const ComplexityReport rep = measure_all(sim.trace(), 3);
  EXPECT_EQ(rep.steps, 4);      // Lamport's fast path: w x, r y, w y, r x
  EXPECT_EQ(rep.registers, 2);  // x and y
}

// Two processes racing through the splitter: whoever writes x last and
// reads its own chunks wins; the other must lose on y or the read-back.
TEST(SplitterTree, PairwiseRaceNeverDoubleWins) {
  const int n = 4;
  for (int l = 1; l <= 3; ++l) {
    for (Pid a = 0; a < n; ++a) {
      for (Pid b = 0; b < n; ++b) {
        if (a == b) {
          continue;
        }
        for (std::uint64_t seed = 0; seed < 20; ++seed) {
          Sim sim;
          auto det = setup_detection(sim, SplitterTree::factory(l), n);
          // Random interleaving of just a and b.
          std::mt19937_64 rng(seed);
          while (sim.runnable(a) || sim.runnable(b)) {
            const Pid pick = (rng() % 2 == 0) ? a : b;
            if (sim.runnable(pick)) {
              sim.step(pick);
            } else {
              sim.step(sim.runnable(a) ? a : b);
            }
          }
          EXPECT_LE(count_winners(sim), 1)
              << "l=" << l << " a=" << a << " b=" << b << " seed=" << seed;
        }
      }
    }
  }
}

// The broken detector double-wins even under a plain sequential-ish race:
// it exists to prove the Lemma 2 adversary has teeth (see adversary_test).
TEST(SelfishDetector, SoloWins) {
  Sim sim;
  auto det = setup_detection(sim, SelfishDetector::factory(), 3);
  SoloScheduler solo(1);
  drive(sim, solo);
  EXPECT_EQ(sim.output(1), 1);
}

TEST(SelfishDetector, ConcurrentRunDoubleWins) {
  Sim sim;
  auto det = setup_detection(sim, SelfishDetector::factory(), 2);
  RoundRobinScheduler rr;
  drive(sim, rr);
  EXPECT_EQ(count_winners(sim), 2);  // the safety violation
}

TEST(Detection, CountWinnersThrowsOnMissingOutput) {
  Sim sim;
  sim.memory().add_bit("r");
  const Pid p = sim.spawn("no-output", [](ProcessContext& ctx) -> Task<void> {
    ctx.set_section(Section::Working);
    co_await ctx.read_bit(0);
    ctx.set_section(Section::Done);
  });
  run_to_completion(sim, p);
  EXPECT_THROW((void)count_winners(sim), std::logic_error);
}

// Lemma 1 sanity: the splitter solves single-shot mutex-with-weak-deadlock-
// freedom semantics; its contention-free step complexity obeys Theorem 1.
TEST(Detection, SplitterObeysTheorem1LowerBound) {
  for (int n : {4, 16, 64, 256}) {
    for (int l : {1, 2, 4}) {
      Sim sim;
      auto det = setup_detection(sim, SplitterTree::factory(l), n);
      SoloScheduler solo(0);
      drive(sim, solo);
      const ComplexityReport rep = measure_all(sim.trace(), 0);
      const double lower =
          bounds::thm1_cf_step_lower(static_cast<double>(n), l);
      EXPECT_GT(rep.steps, lower) << "n=" << n << " l=" << l;
    }
  }
}

}  // namespace
}  // namespace cfc
