#include "core/adversary.h"

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/contention_detection.h"
#include "core/measures.h"
#include "sched/sched.h"

namespace cfc {
namespace {

SimSetup splitter_setup(int n, int l) {
  return [n, l](Sim& sim) {
    auto det = setup_detection(sim, SplitterTree::factory(l), n);
    // Keep the detector alive for the sim's lifetime by stashing it in a
    // shared_ptr captured by a no-op spawn... simpler: leak into a static.
    static std::vector<std::unique_ptr<Detector>> keep_alive;
    keep_alive.push_back(std::move(det));
  };
}

SimSetup selfish_setup(int n) {
  return [n](Sim& sim) {
    auto det = setup_detection(sim, SelfishDetector::factory(), n);
    static std::vector<std::unique_ptr<Detector>> keep_alive;
    keep_alive.push_back(std::move(det));
  };
}

TEST(SoloProfile, ExtractsWritesReadsAndFirstWriteOrder) {
  const SoloProfile prof = solo_profile(splitter_setup(8, 2), 3);
  // Splitter tree solo: ids 0..7 need 3 bits, l=2 -> d=2 levels; at each
  // node: write x, read y, write y, read x.
  const int d = 2;
  ASSERT_EQ(prof.accesses.size(), static_cast<std::size_t>(4 * d));
  EXPECT_EQ(prof.writes.size(), static_cast<std::size_t>(2 * d));
  EXPECT_EQ(prof.reads.size(), static_cast<std::size_t>(2 * d));
  EXPECT_EQ(prof.wr.size(), static_cast<std::size_t>(2 * d));
  EXPECT_EQ(prof.output, 1);
}

TEST(SoloProfile, WValuesEncodeProcessId) {
  const SoloProfile p1 = solo_profile(splitter_setup(8, 3), 1);
  const SoloProfile p2 = solo_profile(splitter_setup(8, 3), 2);
  // l = 3 covers the whole 3-bit id space: a single node whose x register
  // receives the full 0-based id.
  ASSERT_FALSE(p1.writes.empty());
  ASSERT_FALSE(p2.writes.empty());
  EXPECT_EQ(p1.writes[0].first, p2.writes[0].first);  // same register x
  EXPECT_EQ(p1.writes[0].second, 1u);
  EXPECT_EQ(p2.writes[0].second, 2u);
}

// Lemma 2: every correct detector satisfies the condition for every pair.
TEST(Lemma2, ConditionHoldsForAllSplitterPairs) {
  const int n = 6;
  for (int l : {1, 2, 4}) {
    std::vector<SoloProfile> profs;
    for (Pid p = 0; p < n; ++p) {
      profs.push_back(solo_profile(splitter_setup(n, l), p));
    }
    for (Pid a = 0; a < n; ++a) {
      for (Pid b = a + 1; b < n; ++b) {
        EXPECT_TRUE(lemma2_condition(profs[static_cast<std::size_t>(a)],
                                     profs[static_cast<std::size_t>(b)]))
            << "l=" << l << " pair " << a << "," << b;
      }
    }
  }
}

// ... and the broken detector violates it for every pair.
TEST(Lemma2, ConditionFailsForSelfishDetector) {
  const int n = 4;
  std::vector<SoloProfile> profs;
  for (Pid p = 0; p < n; ++p) {
    profs.push_back(solo_profile(selfish_setup(n), p));
  }
  for (Pid a = 0; a < n; ++a) {
    for (Pid b = a + 1; b < n; ++b) {
      EXPECT_FALSE(lemma2_condition(profs[static_cast<std::size_t>(a)],
                                    profs[static_cast<std::size_t>(b)]));
    }
  }
}

// The merge adversary turns the violated condition into a double win —
// the executable content of Lemma 2's proof.
TEST(Lemma2, MergeAdversaryDoubleWinsBrokenDetector) {
  const MergeResult res = lemma2_merge(selfish_setup(2), 0, 1);
  EXPECT_TRUE(res.both_terminated);
  EXPECT_TRUE(res.both_won());
}

// Against a correct detector the merge produces a legal run: at most one 1.
TEST(Lemma2, MergeAdversaryCannotBreakSplitter) {
  for (int l : {1, 2, 3}) {
    for (Pid a = 0; a < 4; ++a) {
      for (Pid b = 0; b < 4; ++b) {
        if (a == b) {
          continue;
        }
        const MergeResult res = lemma2_merge(splitter_setup(4, l), a, b);
        EXPECT_TRUE(res.both_terminated);
        const int winners = (res.output1 == 1 ? 1 : 0) +
                            (res.output2 == 1 ? 1 : 0);
        EXPECT_LE(winners, 1) << "l=" << l << " " << a << "," << b;
      }
    }
  }
}

// --- Lockstep symmetry adversary (Theorem 6 machinery). ---

/// Identical processes: each scans an array of test-and-set bits for the
/// first 0, like the Theorem 4.3 naming algorithm (no process ids used).
Task<void> tas_scan_body(ProcessContext& ctx, const std::vector<RegId>& bits) {
  ctx.set_section(Section::Working);
  int claimed = static_cast<int>(bits.size());  // fallback name
  for (std::size_t j = 0; j < bits.size(); ++j) {
    if (co_await ctx.test_and_set(bits[j]) == 0) {
      claimed = static_cast<int>(j);
      break;
    }
  }
  ctx.set_output(claimed);
  ctx.set_section(Section::Done);
}

TEST(Lockstep, TasScanForcesLinearRounds) {
  const int n = 8;
  Sim sim;
  std::vector<RegId> bits;
  for (int j = 0; j < n - 1; ++j) {
    bits.push_back(sim.memory().add_bit("b" + std::to_string(j)));
  }
  std::vector<Pid> group;
  for (int i = 0; i < n; ++i) {
    group.push_back(sim.spawn("p" + std::to_string(i),
                              [&bits](ProcessContext& ctx) {
                                return tas_scan_body(ctx, bits);
                              }));
  }
  const LockstepResult res = lockstep_symmetry_adversary(sim, group);
  // Each tas splits off exactly one process (the one that saw 0): the
  // identical set shrinks by one per round -> n - 1 rounds survive.
  EXPECT_FALSE(res.identical_group_terminated);
  EXPECT_EQ(res.rounds, static_cast<std::uint64_t>(n - 1));
  EXPECT_GE(res.rounds, bounds::thm6_wc_step_lower(n));
}

/// Identical processes over a test-and-flip tree: the adversary's identical
/// set halves each round, so it collapses in ~log n rounds — the reason
/// Theorem 6 excludes test-and-flip.
Task<void> taf_probe_body(ProcessContext& ctx, const std::vector<RegId>& bits) {
  ctx.set_section(Section::Working);
  std::size_t v = 0;
  int path = 0;
  for (std::size_t level = 0; level < bits.size(); ++level) {
    const Value r = co_await ctx.test_and_flip(bits[v]);
    path = path * 2 + static_cast<int>(r);
    v = 2 * v + 1 + static_cast<std::size_t>(r);
    if (v >= bits.size()) {
      break;
    }
  }
  ctx.set_output(path);
  ctx.set_section(Section::Done);
}

TEST(Lockstep, TestAndFlipHalvesTheIdenticalSet) {
  const int n = 16;
  Sim sim;
  std::vector<RegId> bits;
  for (int j = 0; j < n - 1; ++j) {
    bits.push_back(sim.memory().add_bit("t" + std::to_string(j)));
  }
  std::vector<Pid> group;
  for (int i = 0; i < n; ++i) {
    group.push_back(sim.spawn("p" + std::to_string(i),
                              [&bits](ProcessContext& ctx) {
                                return taf_probe_body(ctx, bits);
                              }));
  }
  const LockstepResult res = lockstep_symmetry_adversary(sim, group);
  // Set sizes 16 -> 8 -> 4 -> 2, then the final pair terminates at the leaf
  // level as singletons (distinct names): log2(n) rounds in total.
  EXPECT_EQ(res.rounds, 4u);
  EXPECT_FALSE(res.identical_group_terminated);
  ASSERT_EQ(res.group_sizes.size(), 3u);
  EXPECT_EQ(res.group_sizes[0], 8u);
  EXPECT_EQ(res.group_sizes[1], 4u);
  EXPECT_EQ(res.group_sizes[2], 2u);
}

/// A broken "naming" algorithm that ignores shared memory: the adversary
/// catches the identical group terminating together (duplicate outputs).
Task<void> oblivious_body(ProcessContext& ctx, RegId r) {
  ctx.set_section(Section::Working);
  co_await ctx.op(BitOp::Read, r);
  ctx.set_output(7);  // everyone picks the same name
  ctx.set_section(Section::Done);
}

TEST(Lockstep, CatchesIdenticalGroupTerminatingTogether) {
  Sim sim;
  const RegId r = sim.memory().add_bit("r");
  std::vector<Pid> group;
  for (int i = 0; i < 4; ++i) {
    group.push_back(sim.spawn("p" + std::to_string(i),
                              [r](ProcessContext& ctx) {
                                return oblivious_body(ctx, r);
                              }));
  }
  const LockstepResult res = lockstep_symmetry_adversary(sim, group);
  EXPECT_TRUE(res.identical_group_terminated);
}

TEST(RunSequentially, CompletesAllProcesses) {
  Sim sim;
  std::vector<RegId> bits;
  for (int j = 0; j < 3; ++j) {
    bits.push_back(sim.memory().add_bit("b" + std::to_string(j)));
  }
  for (int i = 0; i < 4; ++i) {
    sim.spawn("p" + std::to_string(i), [&bits](ProcessContext& ctx) {
      return tas_scan_body(ctx, bits);
    });
  }
  EXPECT_TRUE(run_sequentially(sim));
  EXPECT_TRUE(sim.all_done());
  // Theorem 7 shape: the i-th process touches i+1 registers (capped), so
  // the last ones touch all n-1 = 3 bits.
  const ComplexityReport last = measure_all(sim.trace(), 3);
  EXPECT_EQ(last.registers, 3);
}

}  // namespace
}  // namespace cfc
