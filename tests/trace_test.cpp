// Trace/run bookkeeping: sequence numbering, per-process extraction,
// section events, width tracking, and terminal events — the data the whole
// measurement layer depends on.
#include "sched/run.h"

#include <gtest/gtest.h>

#include "sched/sched.h"
#include "sched/sim.h"

namespace cfc {
namespace {

TEST(Trace, SeqNumbersAreDense) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 4);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    ctx.set_section(Section::Working);
    co_await ctx.write(r, 1);
    co_await ctx.read(r);
    ctx.set_section(Section::Done);
  });
  run_to_completion(sim, p);
  const auto& evs = sim.trace().events();
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].seq, i);
  }
}

TEST(Trace, AccessCountExcludesSectionAndTerminalEvents) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 4);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    ctx.set_section(Section::Entry);
    co_await ctx.write(r, 1);
    ctx.set_section(Section::Critical);
    ctx.set_section(Section::Remainder);
  });
  run_to_completion(sim, p);
  EXPECT_EQ(sim.trace().access_count(), 1u);
  EXPECT_GT(sim.trace().size(), 1u);  // section + finish events recorded
}

TEST(Trace, YieldLeavesNoAccessEvent) {
  Sim sim;
  sim.memory().add_bit("r");
  const Pid p = sim.spawn("p", [](ProcessContext& ctx) -> Task<void> {
    co_await ctx.yield();
    co_await ctx.yield();
    co_await ctx.read(0);
  });
  run_to_completion(sim, p);
  EXPECT_EQ(sim.trace().access_count(), 1u);
  EXPECT_EQ(sim.access_count(p), 1u);
}

TEST(Trace, PerProcessExtraction) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 4);
  auto body = [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write(r, 1);
    co_await ctx.read(r);
  };
  const Pid a = sim.spawn("a", body);
  const Pid b = sim.spawn("b", body);
  RoundRobinScheduler rr;
  drive(sim, rr);
  EXPECT_EQ(sim.trace().accesses_of(a).size(), 2u);
  EXPECT_EQ(sim.trace().accesses_of(b).size(), 2u);
  EXPECT_EQ(sim.trace().accesses().size(), 4u);
}

TEST(Trace, MaxWidthTracksWidestTouchedRegister) {
  Sim sim;
  const RegId narrow = sim.memory().add_bit("bit");
  const RegId wide = sim.memory().add_register("wide", 48);
  const Pid a = sim.spawn("a", [narrow](ProcessContext& ctx) -> Task<void> {
    co_await ctx.read(narrow);
  });
  const Pid b = sim.spawn("b", [&](ProcessContext& ctx) -> Task<void> {
    co_await ctx.read(narrow);
    co_await ctx.read(wide);
  });
  RoundRobinScheduler rr;
  drive(sim, rr);
  EXPECT_EQ(sim.trace().max_width_accessed(a), 1);
  EXPECT_EQ(sim.trace().max_width_accessed(b), 48);
  EXPECT_EQ(sim.trace().max_width_accessed(), 48);
}

TEST(Trace, CrashEventRecorded) {
  Sim sim;
  const RegId r = sim.memory().add_bit("r");
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.read(r);
    co_await ctx.read(r);
  });
  sim.crash_after(p, 1);
  sim.step(p);
  sim.step(p);
  bool saw_crash = false;
  for (const TraceEvent& ev : sim.trace().events()) {
    if (ev.kind == TraceEvent::Kind::Crash) {
      saw_crash = true;
      EXPECT_EQ(ev.pid, p);
    }
  }
  EXPECT_TRUE(saw_crash);
}

TEST(Trace, SectionNamesStable) {
  EXPECT_EQ(name(Section::Remainder), "remainder");
  EXPECT_EQ(name(Section::Entry), "entry");
  EXPECT_EQ(name(Section::Critical), "critical");
  EXPECT_EQ(name(Section::Exit), "exit");
  EXPECT_EQ(name(Section::Working), "working");
  EXPECT_EQ(name(Section::Done), "done");
}

TEST(Trace, ClearResets) {
  Trace t;
  TraceEvent ev;
  ev.seq = 0;
  t.push(ev);
  EXPECT_FALSE(t.empty());
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.next_seq(), 0u);
}

}  // namespace
}  // namespace cfc
