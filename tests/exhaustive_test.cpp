// Exhaustive bounded-depth verification of the two-process algorithms:
// every interleaving up to the depth bound, replayed and checked. This is
// the strongest safety evidence in the suite — at these depths the
// non-waiting paths are covered completely.
#include <gtest/gtest.h>

#include "mutex/checkers.h"
#include "mutex/kessels.h"
#include "mutex/lamport_fast.h"
#include "mutex/lamport_packed.h"
#include "mutex/peterson.h"
#include "mutex/tas_lock.h"
#include "mutex/tournament.h"

namespace cfc {
namespace {

TEST(Exhaustive, PetersonAllInterleavingsDepth16) {
  const ExhaustiveResult res =
      exhaustive_two_process(Peterson::factory(), /*sessions=*/1, 16);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_GT(res.completed_runs, 100u);
  // Depth 16 covers every completed run of one session each (max 12 picks
  // on non-spinning paths) plus every spin prefix up to the bound.
}

TEST(Exhaustive, KesselsAllInterleavingsDepth16) {
  const ExhaustiveResult res =
      exhaustive_two_process(Kessels::factory(), 1, 16);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_GT(res.completed_runs, 100u);
}

TEST(Exhaustive, LamportAllInterleavingsDepth16) {
  const ExhaustiveResult res =
      exhaustive_two_process(LamportFast::factory(), 1, 16);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_GT(res.completed_runs, 100u);
}

TEST(Exhaustive, LamportPackedAllInterleavingsDepth16) {
  const ExhaustiveResult res =
      exhaustive_two_process(LamportPacked::factory(), 1, 16);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_GT(res.completed_runs, 100u);
}

TEST(Exhaustive, TasLockAllInterleavingsDepth14) {
  const ExhaustiveResult res =
      exhaustive_two_process(TasLock::factory(), 1, 14);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_GT(res.completed_runs, 50u);
}

TEST(Exhaustive, PetersonTwoSessionsDepth20) {
  // Two sessions of five picks each per process need >= 20 picks, so only
  // the tightest interleavings complete inside the bound — but every
  // reachable 20-step prefix is still checked.
  const ExhaustiveResult res =
      exhaustive_two_process(Peterson::factory(), /*sessions=*/2, 20);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_GT(res.completed_runs, 100u);
}

TEST(Exhaustive, PetersonTreeTwoProcessesDepth18) {
  // A 2-leaf tournament degenerates to its root node; the exhaustive sweep
  // checks the tree plumbing end to end.
  const ExhaustiveResult res =
      exhaustive_two_process(TournamentMutex::peterson_tree(), 1, 18);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_GT(res.completed_runs, 100u);
}

// The checker finds violations when they exist: a broken "lock" that just
// reads a register admits a double-CS at a very small depth.
TEST(Exhaustive, BrokenLockCaughtImmediately) {
  class NoMutex final : public MutexAlgorithm {
   public:
    explicit NoMutex(RegisterFile& mem) { r_ = mem.add_bit("nomutex.r"); }
    Task<void> enter(ProcessContext& ctx, int) override {
      co_await ctx.read(r_);
    }
    Task<void> exit(ProcessContext& ctx, int) override {
      co_await ctx.read(r_);
    }
    Task<Value> try_enter(ProcessContext& ctx, int slot, RegId) override {
      co_await enter(ctx, slot);
      co_return 1;
    }
    [[nodiscard]] int capacity() const override { return 2; }
    [[nodiscard]] int atomicity() const override { return 1; }
    [[nodiscard]] std::string algorithm_name() const override {
      return "broken";
    }

   private:
    RegId r_;
  };
  const MutexFactory broken = [](RegisterFile& mem, int) {
    return std::make_unique<NoMutex>(mem);
  };
  const ExhaustiveResult res = exhaustive_two_process(broken, 1, 8);
  EXPECT_GT(res.violations, 0u);
}
// (The leaf-to-root tournament release bug structurally needs a third
// process from the opposite subtree; it is covered by the random-schedule
// regression in mutex_safety_test.)

}  // namespace
}  // namespace cfc
