#include "core/measures.h"

#include <gtest/gtest.h>

#include "sched/sched.h"
#include "sched/sim.h"

namespace cfc {
namespace {

/// A toy "mutex" whose entry code performs `entry_accesses` accesses over
/// `entry_regs` registers and whose exit code performs `exit_accesses`.
struct ToyMutex {
  std::vector<RegId> regs;

  Task<void> session(ProcessContext& ctx, int entry_accesses, int exit_accesses,
                     int entry_regs) const {
    ctx.set_section(Section::Entry);
    for (int i = 0; i < entry_accesses; ++i) {
      co_await ctx.read(regs[static_cast<std::size_t>(i % entry_regs)]);
    }
    ctx.set_section(Section::Critical);
    ctx.set_section(Section::Exit);
    for (int i = 0; i < exit_accesses; ++i) {
      co_await ctx.write(regs[0], 1);
    }
    ctx.set_section(Section::Remainder);
  }
};

TEST(Measures, CountsStepsAndDistinctRegisters) {
  Sim sim;
  ToyMutex toy;
  for (int i = 0; i < 4; ++i) {
    toy.regs.push_back(sim.memory().add_register("r" + std::to_string(i), 8));
  }
  const Pid p = sim.spawn("p", [&toy](ProcessContext& ctx) {
    return toy.session(ctx, 6, 2, 3);
  });
  run_to_completion(sim, p);

  const ComplexityReport rep = measure_all(sim.trace(), p);
  EXPECT_EQ(rep.steps, 8);
  EXPECT_EQ(rep.registers, 3);  // r0, r1, r2 (r0 reused in exit)
  EXPECT_EQ(rep.read_steps, 6);
  EXPECT_EQ(rep.write_steps, 2);
  EXPECT_EQ(rep.read_registers, 3);
  EXPECT_EQ(rep.write_registers, 1);
  EXPECT_EQ(rep.atomicity, 8);
}

TEST(Measures, WindowRestrictsCounting) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 4);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    for (int i = 0; i < 6; ++i) {
      co_await ctx.read(r);
    }
  });
  run_to_completion(sim, p);
  const auto accs = sim.trace().accesses_of(p);
  ASSERT_EQ(accs.size(), 6u);
  const ComplexityReport rep =
      measure(sim.trace(), p, SeqRange{accs[1].seq, accs[4].seq});
  EXPECT_EQ(rep.steps, 3);  // accesses 1, 2, 3
}

TEST(Measures, ContentionFreeSessionDetectedWhenAlone) {
  Sim sim;
  ToyMutex toy;
  toy.regs.push_back(sim.memory().add_register("r0", 8));
  toy.regs.push_back(sim.memory().add_register("r1", 8));
  const Pid p = sim.spawn("p", [&toy](ProcessContext& ctx) {
    return toy.session(ctx, 4, 1, 2);
  });
  sim.spawn("idle", [&toy](ProcessContext& ctx) {
    return toy.session(ctx, 4, 1, 2);
  });
  SoloScheduler solo(p);
  drive(sim, solo);

  const auto windows = contention_free_sessions(sim.trace(), p, 2);
  ASSERT_EQ(windows.size(), 1u);
  const ComplexityReport rep = measure(sim.trace(), p, windows[0]);
  EXPECT_EQ(rep.steps, 5);      // 4 entry + 1 exit
  EXPECT_EQ(rep.registers, 2);  // r0, r1
}

TEST(Measures, SessionWithInterferenceIsNotContentionFree) {
  Sim sim;
  ToyMutex toy;
  toy.regs.push_back(sim.memory().add_register("r0", 8));
  const Pid p = sim.spawn("p", [&toy](ProcessContext& ctx) {
    return toy.session(ctx, 4, 1, 1);
  });
  const Pid q = sim.spawn("q", [&toy](ProcessContext& ctx) {
    return toy.session(ctx, 4, 1, 1);
  });
  // Interleave: q enters its entry code while p is mid-session.
  step_n(sim, p, 2);
  step_n(sim, q, 1);  // q now in entry: p's session is contended
  run_to_completion(sim, p);
  run_to_completion(sim, q);

  EXPECT_TRUE(contention_free_sessions(sim.trace(), p, 2).empty());
  // q's later session is also contended (p was in non-remainder at q's
  // entry... p finished first, so q's window start sees p in remainder).
  // q entered entry while p was mid-session, so q has no clean window
  // either.
  EXPECT_TRUE(contention_free_sessions(sim.trace(), q, 2).empty());
}

TEST(Measures, MultipleSessionsEachGetAWindow) {
  Sim sim;
  ToyMutex toy;
  toy.regs.push_back(sim.memory().add_register("r0", 8));
  const Pid p = sim.spawn("p", [&toy](ProcessContext& ctx) -> Task<void> {
    co_await toy.session(ctx, 2, 1, 1);
    co_await toy.session(ctx, 4, 1, 1);
  });
  run_to_completion(sim, p);
  const auto windows = contention_free_sessions(sim.trace(), p, 1);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(measure(sim.trace(), p, windows[0]).steps, 3);
  EXPECT_EQ(measure(sim.trace(), p, windows[1]).steps, 5);
  const ComplexityReport best = max_over_windows(sim.trace(), p, windows);
  EXPECT_EQ(best.steps, 5);
}

TEST(Measures, CleanEntryWindowExcludesCsHolders) {
  Sim sim;
  ToyMutex toy;
  toy.regs.push_back(sim.memory().add_register("r0", 8));
  const Pid p = sim.spawn("p", [&toy](ProcessContext& ctx) {
    return toy.session(ctx, 3, 1, 1);
  });
  const Pid q = sim.spawn("q", [&toy](ProcessContext& ctx) {
    return toy.session(ctx, 3, 1, 1);
  });
  // p runs its whole session first; q then has a clean entry window.
  run_to_completion(sim, p);
  run_to_completion(sim, q);
  const auto p_windows = clean_entry_windows(sim.trace(), p, 2);
  const auto q_windows = clean_entry_windows(sim.trace(), q, 2);
  ASSERT_EQ(p_windows.size(), 1u);
  ASSERT_EQ(q_windows.size(), 1u);
  EXPECT_EQ(measure(sim.trace(), p, p_windows[0]).steps, 3);
  EXPECT_EQ(measure(sim.trace(), q, q_windows[0]).steps, 3);
}

TEST(Measures, EntryWindowDirtyWhileOtherInCriticalSection) {
  Sim sim;
  ToyMutex toy;
  toy.regs.push_back(sim.memory().add_register("r0", 8));
  const RegId gate = sim.memory().add_bit("gate");
  // p holds the critical section until gate is set.
  const Pid p = sim.spawn("p", [&toy, gate](ProcessContext& ctx) -> Task<void> {
    ctx.set_section(Section::Entry);
    co_await ctx.read(toy.regs[0]);
    ctx.set_section(Section::Critical);
    for (;;) {
      const Value v = co_await ctx.read(gate);
      if (v != 0) {
        break;
      }
    }
    ctx.set_section(Section::Exit);
    co_await ctx.write(toy.regs[0], 1);
    ctx.set_section(Section::Remainder);
  });
  const Pid q = sim.spawn("q", [&toy](ProcessContext& ctx) {
    return toy.session(ctx, 3, 1, 1);
  });
  const Pid helper = sim.spawn("helper", [gate](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write(gate, 1);
  });

  step_n(sim, p, 2);  // p now in critical section, spinning on gate
  EXPECT_EQ(sim.section(p), Section::Critical);
  step_n(sim, q, 2);  // q enters and works while p is in CS: dirty window
  step_n(sim, helper, 1);
  run_to_completion(sim, p);
  run_to_completion(sim, q);

  EXPECT_TRUE(clean_entry_windows(sim.trace(), q, 3).empty());
}

TEST(Measures, ExitWindowsMeasureExitCodeOnly) {
  Sim sim;
  ToyMutex toy;
  toy.regs.push_back(sim.memory().add_register("r0", 8));
  const Pid p = sim.spawn("p", [&toy](ProcessContext& ctx) {
    return toy.session(ctx, 5, 2, 1);
  });
  run_to_completion(sim, p);
  const auto windows = exit_windows(sim.trace(), p);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(measure(sim.trace(), p, windows[0]).steps, 2);
}

TEST(Measures, ReportMaxAndPlusCombinators) {
  ComplexityReport a;
  a.steps = 5;
  a.registers = 2;
  a.atomicity = 4;
  ComplexityReport b;
  b.steps = 3;
  b.registers = 6;
  b.atomicity = 1;
  const ComplexityReport mx = a.max_with(b);
  EXPECT_EQ(mx.steps, 5);
  EXPECT_EQ(mx.registers, 6);
  EXPECT_EQ(mx.atomicity, 4);
  const ComplexityReport sum = a.plus(b);
  EXPECT_EQ(sum.steps, 8);
  EXPECT_EQ(sum.registers, 8);
  EXPECT_EQ(sum.atomicity, 4);
}

TEST(Measures, NotStartedProcessesCountAsRemainder) {
  Sim sim;
  ToyMutex toy;
  toy.regs.push_back(sim.memory().add_register("r0", 8));
  const Pid p = sim.spawn("p", [&toy](ProcessContext& ctx) {
    return toy.session(ctx, 2, 1, 1);
  });
  // Three spawned-but-never-run processes.
  for (int i = 0; i < 3; ++i) {
    sim.spawn("idle" + std::to_string(i), [&toy](ProcessContext& ctx) {
      return toy.session(ctx, 2, 1, 1);
    });
  }
  run_to_completion(sim, p);
  EXPECT_EQ(contention_free_sessions(sim.trace(), p, 4).size(), 1u);
}

}  // namespace
}  // namespace cfc
