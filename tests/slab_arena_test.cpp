// SlabArena mechanics: geometric block growth, pointer stability across
// growth, reset/reuse of the reserved blocks, and the reserved-footprint
// accounting the visited caches report through their bytes() methods.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "analysis/slab_arena.h"

namespace cfc {
namespace {

TEST(SlabArena, GrowsGeometrically) {
  SlabArena arena(64);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  (void)arena.alloc<char>(1);
  EXPECT_EQ(arena.bytes_reserved(), 64u);
  // Fill the first block, then force a second and a third: each block
  // doubles the previous one's size.
  (void)arena.alloc<char>(63);
  (void)arena.alloc<char>(100);  // does not fit 64: new 128-byte block
  EXPECT_EQ(arena.bytes_reserved(), 64u + 128u);
  (void)arena.alloc<char>(200);  // does not fit 128: new 256-byte block
  EXPECT_EQ(arena.bytes_reserved(), 64u + 128u + 256u);
}

TEST(SlabArena, OversizeAllocationGetsABigEnoughBlock) {
  SlabArena arena(64);
  char* p = arena.alloc<char>(1000);
  ASSERT_NE(p, nullptr);
  // The block doubles from the base size until the request fits.
  EXPECT_EQ(arena.bytes_reserved(), 1024u);
  std::memset(p, 0x5a, 1000);  // the whole span is writable
}

TEST(SlabArena, TinyFirstBlockIsClampedUp) {
  SlabArena arena(1);
  (void)arena.alloc<char>(1);
  EXPECT_EQ(arena.bytes_reserved(), 64u);
}

TEST(SlabArena, PointersSurviveGrowth) {
  SlabArena arena(64);
  std::uint64_t* first = arena.alloc<std::uint64_t>(4);
  for (int i = 0; i < 4; ++i) {
    first[i] = 0x1234567800ULL + static_cast<std::uint64_t>(i);
  }
  // Force several new blocks: earlier blocks are never moved or freed.
  for (int i = 0; i < 8; ++i) {
    (void)arena.alloc<char>(512);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(first[i], 0x1234567800ULL + static_cast<std::uint64_t>(i));
  }
}

TEST(SlabArena, ResetReusesBlocksWithoutReallocating) {
  SlabArena arena(64);
  char* first = arena.alloc<char>(32);
  (void)arena.alloc<char>(100);  // second block
  (void)arena.alloc<char>(300);  // third block
  const std::uint64_t reserved = arena.bytes_reserved();
  EXPECT_EQ(reserved, 64u + 128u + 512u);

  arena.reset();
  // The footprint is unchanged and the cursor is back at the first block:
  // the same allocation pattern lands on the same storage.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  char* again = arena.alloc<char>(32);
  EXPECT_EQ(again, first);
  (void)arena.alloc<char>(100);
  (void)arena.alloc<char>(300);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(SlabArena, RespectsAlignment) {
  SlabArena arena(64);
  (void)arena.alloc<char>(3);  // misalign the cursor
  std::uint64_t* p = arena.alloc<std::uint64_t>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::uint64_t),
            0u);
  *p = ~0ULL;  // writable at the aligned address
}

TEST(SlabArena, ZeroCountAllocationIsNonNullAndDistinct) {
  SlabArena arena(64);
  char* a = arena.alloc<char>(0);
  char* b = arena.alloc<char>(0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace cfc
