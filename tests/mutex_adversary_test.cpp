// Adversarial schedules for mutual exclusion:
//  * the [AT92] fact that worst-case step complexity is unbounded, witnessed
//    by a scripted 3-process schedule that forces the eventual winner
//    through arbitrarily many steps while no process is in its critical
//    section (so the steps land in the paper's *clean* worst-case window);
//  * the Lemma 1 reduction (mutex -> contention detection) preserving
//    contention-free complexity up to one extra access.
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "core/adversary.h"
#include "core/bounds.h"
#include "mutex/detector_adapter.h"
#include "mutex/lamport_fast.h"
#include "mutex/lamport_tree.h"
#include "mutex/tas_lock.h"
#include "sched/sched.h"

namespace cfc {
namespace {

/// Drives the AT92-style witness: process a (id 1) is pushed into Lamport's
/// slow path and made to spin on b3 for `spins` iterations while process c
/// (id 3) sits in its entry code; then the adversary releases the knot and
/// a wins. Returns the steps counted in a's clean entry window.
int lamport_unbounded_witness(int spins) {
  Sim sim;
  auto alg = setup_mutex(sim, LamportFast::factory(), 3, /*sessions=*/1);
  const Pid a = 0;  // algorithm id 1
  const Pid c = 2;  // algorithm id 3

  step_n(sim, a, 4);  // b1:=1, x:=1, read y(=0), y:=1
  step_n(sim, c, 2);  // b3:=1, x:=3
  step_n(sim, a, 4);  // read x(=3) -> slow path; b1:=0; scan reads b1, b2
  for (int i = 0; i < spins; ++i) {
    sim.step(a);  // spins on b3 = 1
  }
  EXPECT_EQ(sim.section(a), Section::Entry);
  EXPECT_EQ(sim.count_in_section(Section::Critical), 0);
  EXPECT_EQ(sim.count_in_section(Section::Exit), 0);

  step_n(sim, c, 2);  // c: read y(=1) -> b3:=0, now awaiting y = 0
  step_n(sim, a, 2);  // a: read b3(=0), read y(=1=own id) -> critical section
  EXPECT_EQ(sim.section(a), Section::Critical);

  const auto windows = clean_entry_windows(sim.trace(), a, 3);
  EXPECT_EQ(windows.size(), 1u);
  return windows.empty() ? 0 : measure(sim.trace(), a, windows[0]).steps;
}

TEST(At92Unbounded, WinnerStepsGrowWithAdversaryBudget) {
  const int s10 = lamport_unbounded_witness(10);
  const int s100 = lamport_unbounded_witness(100);
  const int s1000 = lamport_unbounded_witness(1000);
  EXPECT_GE(s10, 10 + 10);
  EXPECT_EQ(s100 - s10, 90);    // exactly one step per extra spin
  EXPECT_EQ(s1000 - s100, 900);
}

TEST(At92Unbounded, ContrastContentionFreeStaysConstant) {
  // The same algorithm whose worst case just grew without bound has
  // contention-free step complexity exactly 7.
  const MutexCfResult cf =
      measure_mutex_contention_free(LamportFast::factory(), 3);
  EXPECT_EQ(cf.session.steps, 7);
}

// --- Lemma 1 adapter. ---

TEST(Lemma1Adapter, SoloWinnerCostsEntryPlusOne) {
  for (int n : {2, 4, 16, 64}) {
    const ComplexityReport rep = measure_detector_contention_free(
        DetectorFromMutex::factory(LamportFast::factory()), n);
    EXPECT_EQ(rep.steps, 5 + 1) << "n=" << n;  // entry 5 + write won
    EXPECT_EQ(rep.registers, 3 + 1) << "n=" << n;
  }
}

TEST(Lemma1Adapter, AtMostOneWinnerEveryoneTerminates) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Sim sim;
    auto det = setup_detection(
        sim, DetectorFromMutex::factory(LamportFast::factory()), 4);
    RandomScheduler rnd(seed);
    ASSERT_EQ(drive(sim, rnd, RunLimits{500'000}), RunOutcome::AllDone)
        << "seed " << seed;
    EXPECT_LE(count_winners(sim), 1) << "seed " << seed;
  }
}

TEST(Lemma1Adapter, ExactlyOneWinnerWhenAllRun) {
  // With the Lamport adapter, under a fair schedule someone always enters
  // the critical section and wins.
  for (std::uint64_t seed = 50; seed < 70; ++seed) {
    Sim sim;
    auto det = setup_detection(
        sim, DetectorFromMutex::factory(LamportFast::factory()), 3);
    RandomScheduler rnd(seed);
    ASSERT_EQ(drive(sim, rnd, RunLimits{500'000}), RunOutcome::AllDone);
    EXPECT_EQ(count_winners(sim), 1) << "seed " << seed;
  }
}

TEST(Lemma1Adapter, WorksOverTreeAndTasMutexes) {
  const ComplexityReport tree = measure_detector_contention_free(
      DetectorFromMutex::factory(theorem3_factory(2)), 16);
  // Tree entry = 7 per level minus 2 exit accesses, plus the won write.
  EXPECT_GT(tree.steps, 5);
  const ComplexityReport tas = measure_detector_contention_free(
      DetectorFromMutex::factory(TasLock::factory()), 16);
  EXPECT_EQ(tas.steps, 2);  // tas + write won
  EXPECT_EQ(tas.registers, 2);
}

// The adapter's solo profiles satisfy Lemma 2's condition pairwise, like
// any correct detector.
TEST(Lemma1Adapter, SatisfiesLemma2Condition) {
  SimSetup setup = [](Sim& sim) {
    auto det = setup_detection(
        sim, DetectorFromMutex::factory(LamportFast::factory()), 4);
    static std::vector<std::unique_ptr<Detector>> keep;
    keep.push_back(std::move(det));
  };
  std::vector<SoloProfile> profs;
  for (Pid p = 0; p < 4; ++p) {
    profs.push_back(solo_profile(setup, p));
  }
  for (Pid x = 0; x < 4; ++x) {
    for (Pid y = x + 1; y < 4; ++y) {
      EXPECT_TRUE(lemma2_condition(profs[static_cast<std::size_t>(x)],
                                   profs[static_cast<std::size_t>(y)]))
          << x << "," << y;
    }
  }
}

// Every measured contention-free profile of every register-model detector
// obeys the Lemma 3 and Lemma 6 inequalities.
TEST(LowerBoundInequalities, HoldForAllRegisterDetectors) {
  struct Case {
    DetectorFactory factory;
    int n;
  };
  std::vector<Case> cases;
  for (int n : {4, 16, 64}) {
    for (int l : {1, 2, 4}) {
      cases.push_back({SplitterTree::factory(l), n});
    }
    cases.push_back({DetectorFromMutex::factory(LamportFast::factory()), n});
    cases.push_back({DetectorFromMutex::factory(theorem3_factory(2)), n});
  }
  for (const Case& c : cases) {
    for (Pid p = 0; p < std::min(c.n, 4); ++p) {
      Sim sim;
      auto det = setup_detection(sim, c.factory, c.n);
      SoloScheduler solo(p);
      drive(sim, solo);
      const ComplexityReport rep = measure_all(sim.trace(), p);
      const int l = sim.trace().max_width_accessed(p);
      EXPECT_TRUE(bounds::lemma3_satisfied(static_cast<std::uint64_t>(c.n), l,
                                           rep.write_steps,
                                           rep.read_registers))
          << "n=" << c.n;
      EXPECT_TRUE(bounds::lemma6_satisfied(static_cast<std::uint64_t>(c.n), l,
                                           rep.registers,
                                           rep.write_registers))
          << "n=" << c.n;
    }
  }
}

}  // namespace
}  // namespace cfc
