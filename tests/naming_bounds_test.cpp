// Naming lower bounds (Theorems 5-7) demonstrated by executable
// adversaries, and the Section 3.3 table's per-cell measured values.
#include <gtest/gtest.h>

#include "analysis/naming_complexity.h"
#include "core/adversary.h"
#include "core/bounds.h"
#include "naming/checkers.h"
#include "naming/tas_read_search.h"
#include "naming/tas_scan.h"
#include "naming/tas_tar_tree.h"
#include "naming/taf_tree.h"
#include "sched/sched.h"

namespace cfc {
namespace {

// Theorem 5: in every model, some process accesses >= log n distinct bits
// in the contention-free (sequential) run. Checked against all four
// algorithms — including taf-tree, where it is tight.
TEST(Theorem5, SequentialRunForcesLogNRegisters) {
  struct Case {
    NamingFactory factory;
    bool pow2_only;
  };
  const std::vector<Case> cases = {{TafTree::factory(), true},
                                   {TasTarTree::factory(), true},
                                   {TasScan::factory(), false},
                                   {TasReadSearch::factory(), false}};
  for (const Case& c : cases) {
    for (int n : {2, 4, 8, 16, 64}) {
      if (c.pow2_only && (n & (n - 1)) != 0) {
        continue;
      }
      const NamingRunCheck check = run_naming_sequential(c.factory, n);
      ASSERT_TRUE(check.ok());
      int max_regs = 0;
      for (const ComplexityReport& rep : check.per_process) {
        max_regs = std::max(max_regs, rep.registers);
      }
      EXPECT_GE(max_regs, bounds::thm5_cf_register_lower(
                              static_cast<std::uint64_t>(n)))
          << "n=" << n;
    }
  }
}

// Theorem 6: without test-and-flip, the lockstep adversary forces some
// process through >= n - 1 steps.
TEST(Theorem6, LockstepForcesNMinus1StepsWithoutTaf) {
  for (int n : {4, 8, 16, 32}) {
    Sim sim;
    auto alg = setup_naming(sim, TasScan::factory(), n);
    std::vector<Pid> group;
    for (Pid p = 0; p < n; ++p) {
      group.push_back(p);
    }
    const LockstepResult res = lockstep_symmetry_adversary(sim, group);
    EXPECT_FALSE(res.identical_group_terminated);
    EXPECT_GE(res.rounds,
              bounds::thm6_wc_step_lower(static_cast<std::uint64_t>(n)))
        << "n=" << n;
  }
}

// ... while with test-and-flip the identical set halves per round and the
// adversary collapses after ~log n rounds: Theorem 6's exclusion of
// test-and-flip is necessary.
TEST(Theorem6, TafEscapesTheLockstepAdversary) {
  for (int n : {4, 8, 16, 32, 64}) {
    Sim sim;
    auto alg = setup_naming(sim, TafTree::factory(), n);
    std::vector<Pid> group;
    for (Pid p = 0; p < n; ++p) {
      group.push_back(p);
    }
    const LockstepResult res = lockstep_symmetry_adversary(sim, group);
    EXPECT_FALSE(res.identical_group_terminated);
    EXPECT_EQ(res.rounds, static_cast<std::uint64_t>(bounds::ceil_log2(
                              static_cast<std::uint64_t>(n))))
        << "n=" << n;
  }
}

// Theorem 7: with test-and-set only, the *contention-free* register
// complexity is already n - 1: in the sequential run the last process
// touches every bit.
TEST(Theorem7, TasOnlySequentialForcesNMinus1Registers) {
  for (int n : {2, 4, 8, 16, 50}) {
    const NamingRunCheck check = run_naming_sequential(TasScan::factory(), n);
    ASSERT_TRUE(check.ok());
    int max_regs = 0;
    for (const ComplexityReport& rep : check.per_process) {
      max_regs = std::max(max_regs, rep.registers);
    }
    EXPECT_EQ(max_regs, static_cast<int>(bounds::thm7_tas_cf_register_lower(
                            static_cast<std::uint64_t>(n))))
        << "n=" << n;
  }
}

// --- The Section 3.3 table, measured. ---

class Table2 : public ::testing::TestWithParam<int> {};

TEST_P(Table2, MeasuredCellsMatchPaper) {
  const int n = GetParam();
  const auto log_n = bounds::ceil_log2(static_cast<std::uint64_t>(n));
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
  const std::vector<Table2Column> table = measure_table2(n, seeds);
  ASSERT_EQ(table.size(), 5u);

  // Column 1: test-and-set — n-1 everywhere.
  {
    const Table2Cell c = table[0].best();
    EXPECT_EQ(c.cf_register, n - 1);
    EXPECT_EQ(c.cf_step, n - 1);
    EXPECT_EQ(c.wc_register, n - 1);
    EXPECT_EQ(c.wc_step, n - 1);
  }
  // Column 2: read+test-and-set — contention-free drops to ~log n; the
  // worst case stays n-1.
  {
    const Table2Cell c = table[1].best();
    EXPECT_LE(c.cf_step, log_n + 1);
    EXPECT_LE(c.cf_register, log_n + 1);
    EXPECT_GE(c.cf_step, log_n);
    EXPECT_EQ(c.wc_step, n - 1);
  }
  // Column 3: read+tas+tar — worst-case register drops to log n too;
  // worst-case steps remain n-1.
  {
    const Table2Cell c = table[2].best();
    EXPECT_EQ(c.wc_register, log_n);
    EXPECT_LE(c.cf_register, log_n);
    EXPECT_EQ(c.wc_step, n - 1);
  }
  // Column 4: test-and-flip — log n for all four measures, exactly.
  {
    const Table2Cell c = table[3].best();
    EXPECT_EQ(c.cf_register, log_n);
    EXPECT_EQ(c.cf_step, log_n);
    EXPECT_EQ(c.wc_register, log_n);
    EXPECT_EQ(c.wc_step, log_n);
  }
  // Column 5: rmw — the best of everything: log n across the board.
  {
    const Table2Cell c = table[4].best();
    EXPECT_EQ(c.cf_register, log_n);
    EXPECT_EQ(c.cf_step, log_n);
    EXPECT_EQ(c.wc_register, log_n);
    EXPECT_EQ(c.wc_step, log_n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Table2, ::testing::Values(4, 8, 16, 32),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "n" + std::to_string(pinfo.param);
                         });

// The read/write-only bit model cannot solve naming deterministically
// (Section 3.1): under the lockstep adversary, identical processes that
// can never learn anything distinguishing either run forever or terminate
// together with duplicate names. We exhibit the latter for the natural
// write-then-read attempt.
TEST(ReadWriteModel, SymmetryCannotBeBroken) {
  const int n = 4;
  Sim sim;
  sim.set_model(Model::read_write());
  const RegId r = sim.memory().add_bit("rw.r");
  std::vector<Pid> group;
  for (int i = 0; i < n; ++i) {
    group.push_back(
        sim.spawn("p" + std::to_string(i), [r](ProcessContext& ctx) -> Task<void> {
          ctx.set_section(Section::Working);
          // Identical deterministic protocol: write 1, read, decide.
          co_await ctx.op(BitOp::Write1, r);
          const Value v = co_await ctx.op(BitOp::Read, r);
          ctx.set_output(static_cast<int>(v));
          ctx.set_section(Section::Done);
        }));
  }
  const LockstepResult res = lockstep_symmetry_adversary(sim, group);
  EXPECT_TRUE(res.identical_group_terminated);
}

}  // namespace
}  // namespace cfc
