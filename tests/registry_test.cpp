// The AlgorithmRegistry: self-registration coverage, deterministic
// enumeration order, model/capacity filters, and duplicate rejection.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/algorithm_registry.h"

namespace cfc {
namespace {

TEST(Registry, AllExpectedAlgorithmsSelfRegistered) {
  const auto& registry = AlgorithmRegistry::instance();
  // Mutex: the named singletons plus the 2x8 Theorem 3 grid.
  for (const char* name :
       {"lamport-fast", "lamport-packed", "peterson-2p", "kessels-2p",
        "peterson-tree", "kessels-tree", "tas-lock", "thm3-paper-l1",
        "thm3-paper-l8", "thm3-exact-l1", "thm3-exact-l4"}) {
    EXPECT_NO_THROW((void)registry.mutex(name)) << name;
  }
  EXPECT_GE(registry.mutex_algorithms().size(), 23u);

  // Naming: the paper's four plus the two duals.
  for (const char* name : {"tas-scan", "tar-scan", "tas-read-search",
                           "tar-read-search", "tas-tar-tree", "taf-tree"}) {
    EXPECT_NO_THROW((void)registry.naming(name)) << name;
  }
  EXPECT_EQ(registry.naming_algorithms().size(), 6u);

  // Detectors: the splitter-tree family. The deliberately broken
  // SelfishDetector must NOT be enumerable.
  EXPECT_EQ(registry.detector_algorithms().size(), 4u);
  EXPECT_THROW((void)registry.detector("selfish(broken)"), std::out_of_range);
}

TEST(Registry, UnknownNameThrows) {
  const auto& registry = AlgorithmRegistry::instance();
  EXPECT_THROW((void)registry.mutex("no-such-algorithm"), std::out_of_range);
  EXPECT_THROW((void)registry.naming("no-such-algorithm"), std::out_of_range);
}

TEST(Registry, EnumerationIsNameSorted) {
  const auto& registry = AlgorithmRegistry::instance();
  const auto entries = registry.mutex_algorithms();
  EXPECT_TRUE(std::is_sorted(
      entries.begin(), entries.end(),
      [](const MutexAlgorithmEntry* a, const MutexAlgorithmEntry* b) {
        return a->info.name < b->info.name;
      }));
}

TEST(Registry, TagFilterSelectsFamilies) {
  const auto& registry = AlgorithmRegistry::instance();
  EXPECT_EQ(registry.mutex_algorithms("thm3-paper").size(), 8u);
  EXPECT_EQ(registry.mutex_algorithms("thm3-exact").size(), 8u);
  EXPECT_EQ(registry.mutex_algorithms("tournament").size(), 2u);
  EXPECT_EQ(registry.mutex_algorithms("no-such-tag").size(), 0u);
  for (const MutexAlgorithmEntry* e :
       registry.mutex_algorithms("thm3-paper")) {
    EXPECT_GE(e->info.atomicity_param, 1);
    EXPECT_LE(e->info.atomicity_param, 8);
    EXPECT_TRUE(e->info.has_tag("thm3"));
  }
}

TEST(Registry, CapacityFilterExcludesTwoProcessAlgorithms) {
  const auto& registry = AlgorithmRegistry::instance();
  const auto at_2 = registry.mutex_for_n(2);
  const auto at_4 = registry.mutex_for_n(4);
  const auto has = [](const auto& entries, const char* name) {
    return std::any_of(entries.begin(), entries.end(), [name](const auto* e) {
      return e->info.name == name;
    });
  };
  EXPECT_TRUE(has(at_2, "peterson-2p"));
  EXPECT_TRUE(has(at_2, "kessels-2p"));
  EXPECT_FALSE(has(at_4, "peterson-2p"));
  EXPECT_FALSE(has(at_4, "kessels-2p"));
  EXPECT_TRUE(has(at_4, "lamport-fast"));
}

TEST(Registry, NamingModelFilterMatchesPaperColumns) {
  const auto& registry = AlgorithmRegistry::instance();
  const auto names = [&](Model m) {
    std::vector<std::string> out;
    for (const NamingAlgorithmEntry* e : registry.naming_for_model(m)) {
      out.push_back(e->info.name);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(names(Model::test_and_set()),
            (std::vector<std::string>{"tas-scan"}));
  EXPECT_EQ(names(Model::read_test_and_set()),
            (std::vector<std::string>{"tas-read-search", "tas-scan"}));
  EXPECT_EQ(names(Model::test_and_flip()),
            (std::vector<std::string>{"taf-tree"}));
  // rmw admits everything.
  EXPECT_EQ(names(Model::rmw()).size(), 6u);
  // The read/write model admits nothing (naming is unsolvable there).
  EXPECT_TRUE(names(Model::read_write()).empty());
}

TEST(Registry, FactoriesProduceWorkingAlgorithms) {
  const auto& registry = AlgorithmRegistry::instance();
  for (const NamingAlgorithmEntry* e : registry.naming_algorithms()) {
    RegisterFile mem;
    auto alg = e->factory(mem, 8);
    ASSERT_NE(alg, nullptr) << e->info.name;
    EXPECT_GE(alg->capacity(), 8) << e->info.name;
    // The registered metadata matches the instance's declared model.
    EXPECT_TRUE(alg->model().includes(e->info.required_model))
        << e->info.name;
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  auto& registry = AlgorithmRegistry::instance();
  EXPECT_THROW(
      registry.add_mutex(AlgorithmInfo::named("lamport-fast"),
                         registry.mutex("lamport-fast").factory),
      std::logic_error);
}

TEST(Registry, RegistrationValidatesMetadata) {
  auto& registry = AlgorithmRegistry::instance();
  const MutexFactory factory = registry.mutex("lamport-fast").factory;
  const std::size_t before = registry.mutex_algorithms().size();

  // Empty names can never be looked up or reported on.
  EXPECT_THROW(registry.add_mutex(AlgorithmInfo::named(""), factory),
               std::logic_error);
  // Every problem here coordinates >= 2 processes; max_n = 1 is a typo.
  EXPECT_THROW(
      registry.add_mutex(
          AlgorithmInfo::named("bogus-max-n").capacity_limit(1), factory),
      std::logic_error);
  // The pow2 restriction contradicts a non-power-of-two declared capacity.
  EXPECT_THROW(
      registry.add_mutex(
          AlgorithmInfo::named("bogus-pow2").capacity_limit(6).pow2_only(),
          factory),
      std::logic_error);
  // Same validation guards the other kinds.
  EXPECT_THROW(registry.add_naming(AlgorithmInfo::named(""),
                                   registry.naming("tas-scan").factory),
               std::logic_error);
  EXPECT_THROW(
      registry.add_detector(
          AlgorithmInfo::named("bogus-detector").capacity_limit(1),
          registry.detector_algorithms().front()->factory),
      std::logic_error);

  // Rejection happens before the emplace: the registry is untouched.
  EXPECT_EQ(registry.mutex_algorithms().size(), before);
  EXPECT_THROW((void)registry.mutex("bogus-max-n"), std::out_of_range);
  EXPECT_THROW((void)registry.mutex("bogus-pow2"), std::out_of_range);
}

}  // namespace
}  // namespace cfc
