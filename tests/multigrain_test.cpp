// Multi-grain memory access (Section 1.3 / [MS93]): sub-word field stores
// in the simulator, and the packed Lamport variant built on them.
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "mutex/checkers.h"
#include "mutex/lamport_fast.h"
#include "mutex/lamport_packed.h"
#include "sched/sched.h"

namespace cfc {
namespace {

TEST(FieldStore, WritesOnlyTheField) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16, 0xABCD);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write_field(r, 4, 8, 0xEF);  // bits [4,12)
  });
  run_to_completion(sim, p);
  EXPECT_EQ(sim.memory().peek(r), 0xAEFDu);
}

TEST(FieldStore, FullWidthFieldEqualsPlainWrite) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8, 0xFF);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write_field(r, 0, 8, 0x12);
  });
  run_to_completion(sim, p);
  EXPECT_EQ(sim.memory().peek(r), 0x12u);
}

TEST(FieldStore, CountsAsOneStep) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 16);
  const Pid p = sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write_field(r, 0, 8, 1);
    co_await ctx.write_field(r, 8, 8, 2);
  });
  run_to_completion(sim, p);
  EXPECT_EQ(sim.access_count(p), 2u);
  EXPECT_EQ(sim.memory().peek(r), 0x0201u);
  const auto accs = sim.trace().accesses_of(p);
  ASSERT_EQ(accs.size(), 2u);
  EXPECT_TRUE(accs[0].is_write());
  EXPECT_FALSE(accs[0].is_read());
}

TEST(FieldStore, BoundsChecked) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  {
    const Pid p = sim.spawn("p1", [r](ProcessContext& ctx) -> Task<void> {
      co_await ctx.write_field(r, 4, 8, 1);  // [4,12) exceeds width 8
    });
    EXPECT_THROW(sim.step(p), std::invalid_argument);
  }
  {
    const Pid p = sim.spawn("p2", [r](ProcessContext& ctx) -> Task<void> {
      co_await ctx.write_field(r, 0, 4, 16);  // 16 needs 5 bits
    });
    EXPECT_THROW(sim.step(p), std::invalid_argument);
  }
}

TEST(FieldStore, InterleavedFieldsDoNotClobberEachOther) {
  // Two processes each own half of a word; arbitrary interleavings of
  // their field stores never lose updates (the atomicity guarantee that
  // makes packing sound).
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Sim sim;
    const RegId r = sim.memory().add_register("r", 16);
    auto writer = [r](int shift) {
      return [r, shift](ProcessContext& ctx) -> Task<void> {
        for (Value v = 1; v <= 5; ++v) {
          co_await ctx.write_field(r, shift, 8, v);
        }
      };
    };
    sim.spawn("lo", writer(0));
    sim.spawn("hi", writer(8));
    RandomScheduler rnd(seed);
    drive(sim, rnd);
    EXPECT_EQ(sim.memory().peek(r), 0x0505u) << "seed " << seed;
  }
}

// --- LamportPacked: the paper's 7 steps over only 2 registers. ---

TEST(LamportPacked, ContentionFreeSevenStepsTwoRegisters) {
  for (int n : {1, 2, 8, 64, 1000}) {
    const MutexCfResult r = measure_mutex_contention_free(
        LamportPacked::factory(), n, AccessPolicy::RegistersOnly,
        /*max_pids=*/6);
    EXPECT_EQ(r.session.steps, 7) << "n=" << n;
    EXPECT_EQ(r.session.registers, 2) << "n=" << n;
    EXPECT_EQ(r.entry.steps, 5) << "n=" << n;
    EXPECT_EQ(r.exit.steps, 2) << "n=" << n;
  }
}

TEST(LamportPacked, AtomicityIsDoubled) {
  for (int n : {3, 8, 100}) {
    const MutexCfResult packed = measure_mutex_contention_free(
        LamportPacked::factory(), n, AccessPolicy::Unrestricted,
        /*max_pids=*/2);
    const MutexCfResult plain = measure_mutex_contention_free(
        LamportFast::factory(), n, AccessPolicy::Unrestricted,
        /*max_pids=*/2);
    EXPECT_EQ(packed.measured_atomicity, 2 * plain.measured_atomicity);
  }
}

TEST(LamportPacked, SafetyUnderBoundedPreemptionExploration) {
  const ExplorationResult res = explore_bounded_preemption(
      LamportPacked::factory(), /*n=*/2, /*sessions=*/1, /*max_segments=*/4,
      /*max_segment_len=*/6);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_EQ(res.incomplete_runs, 0u);
}

TEST(LamportPacked, SafetyThreeProcesses) {
  const ExplorationResult res = explore_bounded_preemption(
      LamportPacked::factory(), /*n=*/3, /*sessions=*/1, /*max_segments=*/3,
      /*max_segment_len=*/5);
  EXPECT_EQ(res.violations, 0u);
}

TEST(LamportPacked, RandomSchedulesAndLiveness) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Sim sim;
    auto alg = setup_mutex(sim, LamportPacked::factory(), 5, 2);
    RandomScheduler rnd(seed);
    EXPECT_NO_THROW(drive(sim, rnd, RunLimits{500'000})) << "seed " << seed;
  }
  EXPECT_TRUE(deadlock_free_under_fair_schedules(LamportPacked::factory(), 4,
                                                 3, {1, 2, 3, 4}));
}

// Cross-check: the packed and unpacked variants make identical scheduling
// decisions in solo runs (same step count at every point).
TEST(LamportPacked, SoloTraceShapeMatchesUnpacked) {
  Sim packed_sim;
  auto packed = setup_mutex(packed_sim, LamportPacked::factory(), 8, 1);
  SoloScheduler solo_p(2);
  drive(packed_sim, solo_p);

  Sim plain_sim;
  auto plain = setup_mutex(plain_sim, LamportFast::factory(), 8, 1);
  SoloScheduler solo_q(2);
  drive(plain_sim, solo_q);

  const auto a = packed_sim.trace().accesses_of(2);
  const auto b = plain_sim.trace().accesses_of(2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].is_write(), b[i].is_write()) << "access " << i;
  }
}

}  // namespace
}  // namespace cfc
