// Static model analysis (src/sa/): soundness of the footprint/conflict
// refinement of the POR dependence relation, plus the registry linter.
//
//  * The differential suite is the acceptance gate of the refinement: the
//    statically refined source-DPOR search must certify *bit-identical*
//    report values — whole-run totals, every window maximum, and the
//    violation verdict — to the unrefined source-DPOR search, for every
//    registry mutex and detector at n = 2..3, crash injection included,
//    on the sequential engine and a thread pool, while never visiting
//    more states.
//  * The over-approximation suite pins every dynamically observed
//    register conflict (solo + randomized schedules, every registry
//    algorithm including naming) to the static may-conflict table — a
//    coverage hole in the collection pass fails here instead of hiding.
//  * The lint fixtures exercise every cfc_lint diagnostic on deliberately
//    broken algorithms, and the real registry must lint error-free.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment_runner.h"
#include "analysis/explorer.h"
#include "analysis/study.h"
#include "core/algorithm_registry.h"
#include "core/bounds.h"
#include "core/contention_detection.h"
#include "mutex/mutex_algorithm.h"
#include "naming/naming_algorithm.h"
#include "por/dependence.h"
#include "sa/lint.h"
#include "sa/static_summary.h"
#include "sched/sched.h"
#include "sched/sim.h"

namespace cfc {
namespace {

void expect_reports_equal(const ComplexityReport& a,
                          const ComplexityReport& b,
                          const std::string& what) {
  EXPECT_EQ(a.steps, b.steps) << what;
  EXPECT_EQ(a.registers, b.registers) << what;
  EXPECT_EQ(a.read_steps, b.read_steps) << what;
  EXPECT_EQ(a.write_steps, b.write_steps) << what;
  EXPECT_EQ(a.read_registers, b.read_registers) << what;
  EXPECT_EQ(a.write_registers, b.write_registers) << what;
  EXPECT_EQ(a.atomicity, b.atomicity) << what;
  EXPECT_EQ(a.truncated, b.truncated) << what;
}

/// Same full-measurement objective as the POR differential: every field
/// the paper's measures define, so value preservation is proven for all
/// of them at once.
ExploreObjective all_measures_objective(int n) {
  ExploreObjective obj;
  obj.eval = [n](const Sim&, const MeasureAccumulator& acc) {
    ComplexityReport entry;
    ComplexityReport exit;
    ComplexityReport session;
    ComplexityReport total;
    for (Pid pid = 0; pid < n; ++pid) {
      entry = entry.max_with(acc.clean_entry_max(pid));
      exit = exit.max_with(acc.exit_max(pid));
      session = session.max_with(acc.contention_free_session_max(pid));
      total = total.max_with(acc.total(pid));
    }
    return std::vector<ComplexityReport>{entry, exit, session, total};
  };
  return obj;
}

Explorer::Config explorer_config(const Explorer::SetupFn& setup, int n,
                                 int depth, bool static_refine) {
  Explorer::Config cfg;
  cfg.nprocs = n;
  cfg.strategy = SearchStrategy::Exhaustive;
  cfg.limits.max_depth = depth;
  cfg.limits.reduction = ReductionPolicy::SourceDpor;
  cfg.limits.static_refine = static_refine;
  cfg.setup = setup;
  cfg.objective = all_measures_objective(n);
  return cfg;
}

Explorer::SetupFn mutex_setup(const MutexFactory& make, int n,
                              std::vector<std::uint64_t> crash_after = {}) {
  return [make, n, crash_after](Sim& sim) -> std::shared_ptr<void> {
    auto alg = setup_mutex(sim, make, n, /*sessions=*/1);
    for (std::size_t p = 0; p < crash_after.size(); ++p) {
      sim.crash_after(static_cast<Pid>(p), crash_after[p]);
    }
    return alg;
  };
}

Explorer::SetupFn detector_setup(const DetectorFactory& make, int n,
                                 std::vector<std::uint64_t> crash_after = {}) {
  return [make, n, crash_after](Sim& sim) -> std::shared_ptr<void> {
    auto det = setup_detection(sim, make, n);
    for (std::size_t p = 0; p < crash_after.size(); ++p) {
      sim.crash_after(static_cast<Pid>(p), crash_after[p]);
    }
    return det;
  };
}

/// The differential: the refined search must certify bit-identical values,
/// violations, and truncation outcomes. Exploration-size counters are NOT
/// compared: sleep-set DPOR tree size is not monotone in the dependence
/// relation (a weaker relation can reorder backtrack insertion and grow the
/// tree — lamport-packed does at n=2), so the states-never-increase gate
/// lives in bench/explorer_scaling section 3d on its fixed bench configs.
void expect_refined_matches_unrefined(const Explorer::SetupFn& setup, int n,
                                      int depth, ExperimentRunner* runner,
                                      const std::string& what) {
  const Explorer::Result base =
      Explorer(explorer_config(setup, n, depth, /*static_refine=*/false))
          .run(runner);
  const Explorer::Result refined =
      Explorer(explorer_config(setup, n, depth, /*static_refine=*/true))
          .run(runner);
  ASSERT_EQ(base.best.size(), refined.best.size()) << what;
  const char* field[] = {"clean-entry", "exit", "cf-session", "totals"};
  for (std::size_t i = 0; i < base.best.size(); ++i) {
    expect_reports_equal(base.best[i], refined.best[i],
                         what + " / " + field[i]);
  }
  EXPECT_EQ(base.stats.violations, refined.stats.violations) << what;
  EXPECT_EQ(base.stats.truncated, refined.stats.truncated) << what;
  EXPECT_EQ(base.stats.state_budget_hit, refined.stats.state_budget_hit)
      << what;
  // The unrefined run never refines anything.
  EXPECT_EQ(base.stats.static_refined_pairs, 0u) << what;
}

TEST(SaDifferential, MutexRegistryAtN2And3) {
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  for (const int n : {2, 3}) {
    const int depth = n == 2 ? 12 : 8;
    for (const MutexAlgorithmEntry* e :
         AlgorithmRegistry::instance().mutex_for_n(n)) {
      for (ExperimentRunner* runner : {&seq, &pool}) {
        const std::string what = e->info.name + " n=" + std::to_string(n) +
                                 " threads=" +
                                 std::to_string(runner->thread_count());
        SCOPED_TRACE(what);
        expect_refined_matches_unrefined(mutex_setup(e->factory, n), n,
                                         depth, runner, what);
      }
    }
  }
}

TEST(SaDifferential, DetectorRegistryAtN2And3) {
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  for (const int n : {2, 3}) {
    const int depth = n == 2 ? 14 : 10;
    for (const DetectorAlgorithmEntry* e :
         AlgorithmRegistry::instance().detector_algorithms()) {
      for (ExperimentRunner* runner : {&seq, &pool}) {
        const std::string what = e->info.name + " n=" + std::to_string(n) +
                                 " threads=" +
                                 std::to_string(runner->thread_count());
        SCOPED_TRACE(what);
        expect_refined_matches_unrefined(detector_setup(e->factory, n), n,
                                         depth, runner, what);
      }
    }
  }
}

TEST(SaDifferential, MutexWithCrashInjection) {
  // Crash-armed pending units are exactly what R1/R2 refine, so the crash
  // differential is the suite's sharpest probe.
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  for (const int n : {2, 3}) {
    const int depth = n == 2 ? 12 : 8;
    for (const MutexAlgorithmEntry* e :
         AlgorithmRegistry::instance().mutex_for_n(n)) {
      for (ExperimentRunner* runner : {&seq, &pool}) {
        const std::string what = e->info.name + " crash n=" +
                                 std::to_string(n) + " threads=" +
                                 std::to_string(runner->thread_count());
        SCOPED_TRACE(what);
        expect_refined_matches_unrefined(mutex_setup(e->factory, n, {2}), n,
                                         depth, runner, what);
      }
    }
  }
}

TEST(SaDifferential, DetectorWithCrashInjection) {
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  for (const int n : {2, 3}) {
    const int depth = n == 2 ? 14 : 10;
    for (const DetectorAlgorithmEntry* e :
         AlgorithmRegistry::instance().detector_algorithms()) {
      for (ExperimentRunner* runner : {&seq, &pool}) {
        const std::string what = e->info.name + " crash n=" +
                                 std::to_string(n) + " threads=" +
                                 std::to_string(runner->thread_count());
        SCOPED_TRACE(what);
        expect_refined_matches_unrefined(detector_setup(e->factory, n, {1}),
                                         n, depth, runner, what);
      }
    }
  }
}

TEST(SaDifferential, RefinementCounterPopulatedAndThreadInvariant) {
  const MutexFactory peterson =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  const auto cfg = explorer_config(mutex_setup(peterson, 2), 2, 14,
                                   /*static_refine=*/true);
  const Explorer::Result a = Explorer(cfg).run(&seq);
  const Explorer::Result b = Explorer(cfg).run(&pool);
  // At the root both processes are NotStarted: R1 synthesizes their first
  // units (distinct flag registers), so refined pairs must fire.
  EXPECT_GT(a.stats.static_refined_pairs, 0u);
  EXPECT_EQ(a.stats.static_refined_pairs, b.stats.static_refined_pairs);
  EXPECT_EQ(a.stats.states_visited, b.stats.states_visited);
  EXPECT_EQ(a.stats.races_detected, b.stats.races_detected);
  EXPECT_EQ(a.stats.backtrack_points, b.stats.backtrack_points);
  EXPECT_EQ(a.stats.sleep_blocked, b.stats.sleep_blocked);
}

// --- The over-approximation suite: every dynamically observed conflict is
// in the static table. ---

/// Per-register dynamic observation: which pids were seen reading/writing
/// over a battery of schedules.
struct DynamicFootprint {
  std::vector<std::uint32_t> readers;
  std::vector<std::uint32_t> writers;

  void ensure(std::size_t regs) {
    if (readers.size() < regs) {
      readers.resize(regs, 0);
      writers.resize(regs, 0);
    }
  }

  void record(const Sim& sim) {
    for (const TraceEvent& ev : sim.trace().events()) {
      if (ev.kind != TraceEvent::Kind::Access || ev.pid < 0) {
        continue;
      }
      ensure(static_cast<std::size_t>(ev.access.reg) + 1);
      const std::uint32_t bit = 1u << static_cast<unsigned>(ev.pid);
      if (ev.access.is_write()) {
        writers[static_cast<std::size_t>(ev.access.reg)] |= bit;
      }
      if (!ev.access.is_write() || ev.access.is_read()) {
        readers[static_cast<std::size_t>(ev.access.reg)] |= bit;
      }
    }
  }
};

/// Dry-runs a battery of schedules (one solo run per pid, then randomized
/// schedules over several seeds) and asserts every observed conflicting
/// pair is in the model's may-conflict table.
void expect_overapproximates(const StaticModel::SetupFn& setup, int n,
                             const std::string& what) {
  const StaticModel model = StaticModel::analyze(setup, n);
  DynamicFootprint obs;
  const auto run_one = [&](Scheduler& sched) {
    Sim sim;
    const std::shared_ptr<void> owner = setup(sim);
    try {
      (void)drive(sim, sched, RunLimits{4096});
    } catch (const MutualExclusionViolation&) {
      // Broken subjects (SelfishDetector-style): the partial trace still
      // counts as dynamic observation.
    }
    obs.record(sim);
  };
  for (Pid p = 0; p < n; ++p) {
    SoloScheduler solo(p);
    run_one(solo);
  }
  for (const std::uint64_t seed :
       {1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull, 8ull}) {
    RandomScheduler rnd(seed);
    run_one(rnd);
  }
  for (RegId r = 0; r < static_cast<RegId>(obs.readers.size()); ++r) {
    const std::uint32_t touch = obs.readers[static_cast<std::size_t>(r)] |
                                obs.writers[static_cast<std::size_t>(r)];
    for (Pid a = 0; a < n; ++a) {
      for (Pid b = a + 1; b < n; ++b) {
        const std::uint32_t abit = 1u << static_cast<unsigned>(a);
        const std::uint32_t bbit = 1u << static_cast<unsigned>(b);
        const bool both = (touch & abit) != 0 && (touch & bbit) != 0;
        const std::uint32_t w = obs.writers[static_cast<std::size_t>(r)];
        if (both && (w & (abit | bbit)) != 0) {
          EXPECT_TRUE(model.may_conflict(r, a, b))
              << what << ": observed conflict on register " << r
              << " between pids " << a << " and " << b
              << " missing from the static table";
        }
      }
    }
  }
}

TEST(SaOverApproximation, MutexRegistry) {
  for (const MutexAlgorithmEntry* e :
       AlgorithmRegistry::instance().mutex_for_n(2)) {
    SCOPED_TRACE(e->info.name);
    expect_overapproximates(mutex_setup(e->factory, 2), 2, e->info.name);
  }
}

TEST(SaOverApproximation, MutexRegistryWithCrashInjection) {
  for (const MutexAlgorithmEntry* e :
       AlgorithmRegistry::instance().mutex_for_n(2)) {
    SCOPED_TRACE(e->info.name + " crash");
    expect_overapproximates(mutex_setup(e->factory, 2, {2}), 2,
                            e->info.name + " crash");
  }
}

TEST(SaOverApproximation, NamingRegistry) {
  for (const int n : {2, 3}) {
    for (const NamingAlgorithmEntry* e :
         AlgorithmRegistry::instance().naming_algorithms()) {
      if (e->info.max_n != 0 && n > e->info.max_n) {
        continue;
      }
      if (e->info.pow2_n_only && !bounds::is_power_of_two(n)) {
        continue;
      }
      const NamingFactory make = e->factory;
      const std::string what = e->info.name + " n=" + std::to_string(n);
      SCOPED_TRACE(what);
      expect_overapproximates(
          [make, n](Sim& sim) -> std::shared_ptr<void> {
            return setup_naming(sim, make, n);
          },
          n, what);
    }
  }
}

TEST(SaOverApproximation, DetectorRegistry) {
  for (const int n : {2, 3}) {
    for (const DetectorAlgorithmEntry* e :
         AlgorithmRegistry::instance().detector_algorithms()) {
      const std::string what = e->info.name + " n=" + std::to_string(n);
      SCOPED_TRACE(what);
      expect_overapproximates(detector_setup(e->factory, n), n, what);
    }
  }
}

// --- The static model itself. ---

TEST(SaStaticModel, PetersonFootprint) {
  const MutexFactory peterson =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  const StaticModel model =
      StaticModel::analyze(mutex_setup(peterson, 2), 2);
  EXPECT_EQ(model.nprocs(), 2);
  EXPECT_GT(model.register_count(), 0);
  EXPECT_GT(model.units_collected(), 0u);
  for (Pid p = 0; p < 2; ++p) {
    // Peterson's first unit is the flag write: known, a real access, a
    // write.
    const FirstUnit& fu = model.first_unit(p);
    EXPECT_TRUE(fu.known);
    EXPECT_FALSE(fu.yield);
    EXPECT_TRUE(fu.wrote);
    EXPECT_GE(fu.reg, 0);
    // The session driver enters Entry before the flag write posts.
    EXPECT_FALSE(fu.prologue_quiet);
    const SoloOutcome& solo = model.solo_outcome(p);
    EXPECT_TRUE(solo.completed);
    EXPECT_TRUE(solo.entered_entry);
    EXPECT_TRUE(solo.entered_exit);
    EXPECT_GT(solo.units, 0u);
    EXPECT_GE(solo.max_width_accessed, 1);
  }
  // The two first units hit distinct per-process flags.
  EXPECT_NE(model.first_unit(0).reg, model.first_unit(1).reg);
  // Out-of-range queries answer conservatively.
  EXPECT_TRUE(model.write_may_change_section(
      static_cast<RegId>(model.register_count())));
  EXPECT_TRUE(model.may_conflict(static_cast<RegId>(model.register_count()),
                                 0, 1));
}

TEST(SaDependence, StaticModelRefinesUnstartedAndCrashUnits) {
  const MutexFactory peterson =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  const auto setup = mutex_setup(peterson, 2);
  const StaticModel model = StaticModel::analyze(setup, 2);

  // R1 gate: the mutex session driver enters Entry during the prologue, so
  // a registry mutex's unstarted pend stays unknown even with the model —
  // a section-changing prologue is observationally dependent with every
  // concurrently measured step, which the pending-side relation cannot
  // express (see por/dependence.h).
  {
    Sim sim;
    const std::shared_ptr<void> owner = setup(sim);
    EXPECT_TRUE(model.first_unit(0).known);
    EXPECT_FALSE(model.first_unit(0).prologue_quiet);
    const NextStep plain = next_step_of(sim, 0);
    EXPECT_FALSE(plain.known);
    const NextStep refined = next_step_of(sim, 0, &model);
    EXPECT_FALSE(refined.known);
  }

  // A raw section-quiet model: the body's first action IS the posted
  // write, nothing changes sections before it. R1 applies here.
  const StaticModel::SetupFn quiet_setup =
      [](Sim& sim) -> std::shared_ptr<void> {
    const RegId r = sim.memory().add_register("quiet.r", 8);
    for (int p = 0; p < 2; ++p) {
      sim.spawn("q" + std::to_string(p),
                [r](ProcessContext& ctx) -> Task<void> {
                  co_await ctx.write(r, 1);
                  (void)co_await ctx.read(r);
                });
    }
    return nullptr;
  };
  const StaticModel quiet_model = StaticModel::analyze(quiet_setup, 2);

  // R1: a NotStarted quiet-prologue process is unknown dynamically, known
  // statically; the first access's continuation may still change sections.
  {
    Sim sim;
    const std::shared_ptr<void> owner = quiet_setup(sim);
    ASSERT_TRUE(quiet_model.first_unit(0).known);
    ASSERT_TRUE(quiet_model.first_unit(0).prologue_quiet);
    const NextStep plain = next_step_of(sim, 0);
    EXPECT_FALSE(plain.known);
    const NextStep refined = next_step_of(sim, 0, &quiet_model);
    EXPECT_TRUE(refined.known);
    EXPECT_TRUE(refined.statically_known);
    EXPECT_FALSE(refined.yield);
    EXPECT_TRUE(refined.wrote);
    EXPECT_EQ(refined.reg, quiet_model.first_unit(0).reg);
    EXPECT_TRUE(refined.may_change_section);
  }

  // R1 + armed crash before the first unit: the quiet prologue followed by
  // the immediate crash provably emits nothing — section-quiet yield.
  {
    Sim sim;
    const std::shared_ptr<void> owner = quiet_setup(sim);
    sim.crash_after(0, 0);
    const NextStep refined = next_step_of(sim, 0, &quiet_model);
    EXPECT_TRUE(refined.known);
    EXPECT_TRUE(refined.statically_known);
    EXPECT_TRUE(refined.yield);
    EXPECT_FALSE(refined.may_change_section);
  }

  // The same crash arming stays unknown under the section-changing
  // prologue: the Entry change the prologue emits is real.
  {
    Sim sim;
    const std::shared_ptr<void> owner = setup(sim);
    sim.crash_after(0, 0);
    const NextStep refined = next_step_of(sim, 0, &model);
    EXPECT_FALSE(refined.known);
  }

  // R2: a Runnable process with an armed crash emits only the Crash
  // terminal event — known, yield, section-quiet.
  {
    Sim sim;
    const std::shared_ptr<void> owner = setup(sim);
    sim.crash_after(0, 1);
    sim.step(0);  // first access executes; the crash is now pending
    ASSERT_TRUE(sim.crash_pending(0));
    const NextStep plain = next_step_of(sim, 0);
    EXPECT_FALSE(plain.known);
    const NextStep refined = next_step_of(sim, 0, &model);
    EXPECT_TRUE(refined.known);
    EXPECT_TRUE(refined.statically_known);
    EXPECT_TRUE(refined.yield);
    EXPECT_FALSE(refined.may_change_section);
  }
}

TEST(SaDependence, RefinedPairCounterCountsOnlyStaticWins) {
  StepSummary quiet_write;  // section-quiet write of register 3 by pid 0
  quiet_write.pid = 0;
  quiet_write.accessed = true;
  quiet_write.reg = 3;
  quiet_write.wrote = true;

  NextStep dynamic_pend;  // dynamically captured pend on another register
  dynamic_pend.known = true;
  dynamic_pend.reg = 5;
  NextStep static_pend = dynamic_pend;  // same shape, statically synthesized
  static_pend.statically_known = true;

  std::uint64_t count = 0;
  // Independent either way, but only the static synthesis is a refinement:
  // the dynamic capture would have answered independent unrefined too.
  EXPECT_FALSE(dependent(quiet_write, dynamic_pend, &count));
  EXPECT_EQ(count, 0u);
  EXPECT_FALSE(dependent(quiet_write, static_pend, &count));
  EXPECT_EQ(count, 1u);

  // A section-changing executed unit against a section-quiet pend: only a
  // static section-quiet fact (may_change_section=false) lets the pair
  // through, so that independence is counted as refined as well.
  StepSummary section_step;
  section_step.pid = 0;
  section_step.section_changed = true;
  NextStep quiet_pend;
  quiet_pend.known = true;
  quiet_pend.reg = 5;
  quiet_pend.may_change_section = false;
  count = 0;
  EXPECT_FALSE(dependent(section_step, quiet_pend, &count));
  EXPECT_EQ(count, 1u);

  // Dependent pairs never count.
  NextStep same_reg = static_pend;
  same_reg.reg = 3;
  count = 0;
  EXPECT_TRUE(dependent(quiet_write, same_reg, &count));
  EXPECT_EQ(count, 0u);
}

// --- Study plumbing: the spec flag, the JSON counter. ---

TEST(SaStudy, StaticRefineFlagFlowsIntoStudyJson) {
  StudySpec base = StudySpec::of("peterson-2p")
                       .kind(StudyKind::Mutex)
                       .n(2)
                       .worst_case(SearchStrategy::Exhaustive)
                       .depth(12);
  StudySpec refined = base;
  refined.static_refine();
  // The fluent flag survives a later limits() call (like the reduction
  // policy), so builder order does not matter.
  ExploreLimits relimit;
  relimit.max_depth = 12;
  refined.limits(relimit);
  EXPECT_TRUE(refined.search.limits.static_refine);
  EXPECT_EQ(effective_reduction(refined.search.limits),
            ReductionPolicy::SourceDpor);

  const StudyResult a = run_study(base);
  const StudyResult b = run_study(refined);
  EXPECT_EQ(a.static_refined_pairs, 0u);
  EXPECT_GT(b.static_refined_pairs, 0u);
  // Value preservation end-to-end through the study pipeline.
  expect_reports_equal(a.wc, b.wc, "wc totals");
  expect_reports_equal(a.wc_entry, b.wc_entry, "wc entry");
  expect_reports_equal(a.wc_exit, b.wc_exit, "wc exit");
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_LE(b.states_visited, a.states_visited);

  const std::string json = to_json(b);
  EXPECT_NE(json.find("\"static_refined_pairs\": "), std::string::npos);
  EXPECT_EQ(study_from_json(json).static_refined_pairs,
            b.static_refined_pairs);
}

// --- The lint fixtures: one deliberately broken algorithm per rule. ---

/// A well-behaved single-register base; fixtures override what they break.
class FixtureMutex : public MutexAlgorithm {
 public:
  explicit FixtureMutex(RegisterFile& mem) {
    r_ = mem.add_bit("fixture.r");
  }
  Task<void> enter(ProcessContext& ctx, int) override {
    co_await ctx.write(r_, 1);
  }
  Task<void> exit(ProcessContext& ctx, int) override {
    co_await ctx.write(r_, 0);
  }
  Task<Value> try_enter(ProcessContext& ctx, int slot, RegId) override {
    co_await enter(ctx, slot);
    co_return 1;
  }
  [[nodiscard]] int capacity() const override { return 8; }
  [[nodiscard]] int atomicity() const override { return 1; }
  [[nodiscard]] std::string algorithm_name() const override {
    return "fixture";
  }

 protected:
  RegId r_;
};

MutexAlgorithmEntry fixture_entry(std::string name, MutexFactory factory) {
  return MutexAlgorithmEntry{AlgorithmInfo::named(std::move(name)),
                             std::move(factory)};
}

bool has_rule(const std::vector<LintDiagnostic>& diags,
              const std::string& rule, LintSeverity sev) {
  for (const LintDiagnostic& d : diags) {
    if (d.rule == rule && d.severity == sev) {
      return true;
    }
  }
  return false;
}

TEST(SaLint, CleanFixturePasses) {
  const auto diags = lint_mutex(fixture_entry(
      "fixture-clean", [](RegisterFile& mem, int) {
        return std::make_unique<FixtureMutex>(mem);
      }));
  EXPECT_FALSE(has_errors(diags));
  EXPECT_TRUE(diags.empty());
}

TEST(SaLint, DeadRegisterWarns) {
  class DeadReg final : public FixtureMutex {
   public:
    explicit DeadReg(RegisterFile& mem) : FixtureMutex(mem) {
      (void)mem.add_bit("fixture.never_touched");
    }
  };
  const auto diags = lint_mutex(fixture_entry(
      "fixture-dead-register", [](RegisterFile& mem, int) {
        return std::make_unique<DeadReg>(mem);
      }));
  EXPECT_TRUE(has_rule(diags, "dead-register", LintSeverity::Warning));
  EXPECT_FALSE(has_errors(diags));  // a warning, not an error
}

TEST(SaLint, AtomicityMismatchErrors) {
  class WideReg final : public FixtureMutex {
   public:
    explicit WideReg(RegisterFile& mem) : FixtureMutex(mem) {
      wide_ = mem.add_register("fixture.wide", 4);
    }
    Task<void> enter(ProcessContext& ctx, int) override {
      co_await ctx.write(wide_, 9);  // 4-bit write under declared l = 1
      co_await ctx.write(r_, 1);
    }

   private:
    RegId wide_;
  };
  const auto diags = lint_mutex(fixture_entry(
      "fixture-atomicity", [](RegisterFile& mem, int) {
        return std::make_unique<WideReg>(mem);
      }));
  EXPECT_TRUE(has_rule(diags, "atomicity-mismatch", LintSeverity::Error));
}

TEST(SaLint, FieldOverlapErrors) {
  class OverlappingFields final : public FixtureMutex {
   public:
    explicit OverlappingFields(RegisterFile& mem) : FixtureMutex(mem) {
      packed_ = mem.add_register("fixture.packed", 4);
    }
    Task<void> enter(ProcessContext& ctx, int) override {
      co_await ctx.write_field(packed_, 0, 2, 1);
      co_await ctx.write(r_, 1);
    }
    Task<void> exit(ProcessContext& ctx, int) override {
      co_await ctx.write_field(packed_, 1, 2, 1);  // overlaps [0,2) at bit 1
      co_await ctx.write(r_, 0);
    }
    [[nodiscard]] int atomicity() const override { return 4; }

   private:
    RegId packed_;
  };
  const auto diags = lint_mutex(fixture_entry(
      "fixture-field-overlap", [](RegisterFile& mem, int) {
        return std::make_unique<OverlappingFields>(mem);
      }));
  EXPECT_TRUE(has_rule(diags, "field-overlap", LintSeverity::Error));
}

TEST(SaLint, CapacityMetadataErrors) {
  // Declared max_n above what the built instance supports.
  class Cap2 final : public FixtureMutex {
   public:
    explicit Cap2(RegisterFile& mem) : FixtureMutex(mem) {}
    [[nodiscard]] int capacity() const override { return 2; }
  };
  MutexAlgorithmEntry shrunk = fixture_entry(
      "fixture-capacity", [](RegisterFile& mem, int) {
        return std::make_unique<Cap2>(mem);
      });
  shrunk.info.max_n = 4;
  EXPECT_TRUE(has_rule(lint_mutex(shrunk), "capacity-metadata",
                       LintSeverity::Error));

  // pow2 flag on a non-power-of-two declared capacity (constructed
  // directly — registration itself rejects this shape, which
  // RegistryValidation below covers).
  MutexAlgorithmEntry pow2 = fixture_entry(
      "fixture-pow2", [](RegisterFile& mem, int) {
        return std::make_unique<FixtureMutex>(mem);
      });
  pow2.info.max_n = 6;
  pow2.info.pow2_n_only = true;
  EXPECT_TRUE(has_rule(lint_mutex(pow2), "capacity-metadata",
                       LintSeverity::Error));
}

TEST(SaLint, SectionProtocolErrors) {
  class StuckEnter final : public FixtureMutex {
   public:
    explicit StuckEnter(RegisterFile& mem) : FixtureMutex(mem) {}
    Task<void> enter(ProcessContext& ctx, int) override {
      for (;;) {
        co_await ctx.read(r_);  // spins forever, even solo
      }
    }
  };
  const auto diags = lint_mutex(fixture_entry(
      "fixture-stuck", [](RegisterFile& mem, int) {
        return std::make_unique<StuckEnter>(mem);
      }));
  EXPECT_TRUE(has_rule(diags, "section-protocol", LintSeverity::Error));
}

TEST(SaLint, RegistryIsErrorFree) {
  // The CI gate in test form: warnings allowed, errors never.
  const std::vector<LintDiagnostic> diags = lint_registry();
  for (const LintDiagnostic& d : diags) {
    EXPECT_NE(d.severity, LintSeverity::Error) << d.format();
  }
}

}  // namespace
}  // namespace cfc
