// The canonical StudyResult JSON serializer: golden-file schema lock plus
// full round-trip (serialize -> parse -> serialize, byte-identical). The
// golden file freezes the "cfc.study.v1" schema — an intentional schema
// change must update tests/golden/study_result.json in the same commit.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/study.h"

namespace cfc {
namespace {

ComplexityReport report(int steps, int registers, int read_steps,
                        int write_steps, int read_registers,
                        int write_registers, int atomicity,
                        bool truncated = false) {
  ComplexityReport r;
  r.steps = steps;
  r.registers = registers;
  r.read_steps = read_steps;
  r.write_steps = write_steps;
  r.read_registers = read_registers;
  r.write_registers = write_registers;
  r.atomicity = atomicity;
  r.truncated = truncated;
  return r;
}

/// The fixture frozen in tests/golden/study_result.json: every field of
/// the schema populated with distinct values.
StudyResult golden_fixture() {
  StudyResult r;
  r.subject = "peterson-2p";
  r.kind = StudyKind::Mutex;
  r.n = 2;
  r.sessions = 1;
  r.has_cf = true;
  r.cf = report(7, 3, 3, 4, 2, 3, 1);
  r.cf_entry = report(5, 3, 3, 2, 2, 3, 1);
  r.cf_exit = report(2, 1, 0, 2, 0, 1, 1);
  r.measured_atomicity = 1;
  r.has_wc = true;
  r.wc_strategy = SearchStrategy::Exhaustive;
  // requested != used: the hybrid probe picked source-dpor — exercises
  // the auditable-choice pair of the stateful/hybrid schema extension.
  r.wc_reduction = ReductionPolicy::SourceDpor;
  r.wc_reduction_requested = ReductionPolicy::Hybrid;
  r.races_detected = 21;
  r.backtrack_points = 9;
  r.sleep_blocked = 4;
  r.cache_hits = 17;
  r.work_items = 6;
  r.restore_marks = 33;
  r.static_refined_pairs = 5;
  r.wc = report(14, 4, 6, 8, 3, 4, 1, true);
  r.wc_entry = report(12, 3, 6, 6, 3, 3, 1, true);
  r.wc_exit = report(2, 1, 0, 2, 0, 1, 1);
  r.schedules_tried = 12;
  r.states_visited = 345;
  r.violations = 0;
  r.truncated = true;
  r.certified = true;
  r.frontier_clamped = true;
  r.plan_ms = 0.2;
  r.execute_ms = 1.1;
  r.merge_ms = 0.2;
  r.wall_ms = 1.5;
  return r;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "cannot open " << path;
    return {};
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void expect_reports_equal(const ComplexityReport& a,
                          const ComplexityReport& b, const char* what) {
  EXPECT_EQ(a.steps, b.steps) << what;
  EXPECT_EQ(a.registers, b.registers) << what;
  EXPECT_EQ(a.read_steps, b.read_steps) << what;
  EXPECT_EQ(a.write_steps, b.write_steps) << what;
  EXPECT_EQ(a.read_registers, b.read_registers) << what;
  EXPECT_EQ(a.write_registers, b.write_registers) << what;
  EXPECT_EQ(a.atomicity, b.atomicity) << what;
  EXPECT_EQ(a.truncated, b.truncated) << what;
}

TEST(StudyJson, MatchesGoldenFile) {
  const std::string golden =
      read_file(std::string(CFC_SOURCE_DIR) + "/tests/golden/study_result.json");
  // The golden file ends with a trailing newline (editor/VCS convention);
  // the serializer emits none.
  EXPECT_EQ(to_json(golden_fixture()) + "\n", golden);
}

TEST(StudyJson, RoundTripsByteIdentically) {
  const StudyResult original = golden_fixture();
  const std::string json = to_json(original);
  const StudyResult parsed = study_from_json(json);
  EXPECT_EQ(to_json(parsed), json);

  EXPECT_EQ(parsed.subject, original.subject);
  EXPECT_EQ(parsed.kind, original.kind);
  EXPECT_EQ(parsed.n, original.n);
  EXPECT_EQ(parsed.sessions, original.sessions);
  EXPECT_EQ(parsed.has_cf, original.has_cf);
  expect_reports_equal(parsed.cf, original.cf, "cf");
  expect_reports_equal(parsed.cf_entry, original.cf_entry, "cf_entry");
  expect_reports_equal(parsed.cf_exit, original.cf_exit, "cf_exit");
  EXPECT_EQ(parsed.measured_atomicity, original.measured_atomicity);
  EXPECT_EQ(parsed.has_wc, original.has_wc);
  EXPECT_EQ(parsed.wc_strategy, original.wc_strategy);
  EXPECT_EQ(parsed.wc_reduction, original.wc_reduction);
  EXPECT_EQ(parsed.wc_reduction_requested, original.wc_reduction_requested);
  EXPECT_EQ(parsed.races_detected, original.races_detected);
  EXPECT_EQ(parsed.backtrack_points, original.backtrack_points);
  EXPECT_EQ(parsed.sleep_blocked, original.sleep_blocked);
  EXPECT_EQ(parsed.cache_hits, original.cache_hits);
  EXPECT_EQ(parsed.work_items, original.work_items);
  EXPECT_EQ(parsed.restore_marks, original.restore_marks);
  EXPECT_EQ(parsed.static_refined_pairs, original.static_refined_pairs);
  expect_reports_equal(parsed.wc, original.wc, "wc");
  expect_reports_equal(parsed.wc_entry, original.wc_entry, "wc_entry");
  expect_reports_equal(parsed.wc_exit, original.wc_exit, "wc_exit");
  EXPECT_EQ(parsed.schedules_tried, original.schedules_tried);
  EXPECT_EQ(parsed.states_visited, original.states_visited);
  EXPECT_EQ(parsed.violations, original.violations);
  EXPECT_EQ(parsed.truncated, original.truncated);
  EXPECT_EQ(parsed.certified, original.certified);
  EXPECT_EQ(parsed.frontier_clamped, original.frontier_clamped);
  EXPECT_DOUBLE_EQ(parsed.plan_ms, original.plan_ms);
  EXPECT_DOUBLE_EQ(parsed.execute_ms, original.execute_ms);
  EXPECT_DOUBLE_EQ(parsed.merge_ms, original.merge_ms);
  EXPECT_DOUBLE_EQ(parsed.wall_ms, original.wall_ms);
}

TEST(StudyJson, AbsentMeasurementsSerializeAsNull) {
  StudyResult r;
  r.subject = "tas-scan";
  r.kind = StudyKind::Naming;
  r.n = 8;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"cf\": null"), std::string::npos);
  EXPECT_NE(json.find("\"wc\": null"), std::string::npos);

  const StudyResult parsed = study_from_json(json);
  EXPECT_FALSE(parsed.has_cf);
  EXPECT_FALSE(parsed.has_wc);
  EXPECT_EQ(parsed.kind, StudyKind::Naming);
  EXPECT_EQ(to_json(parsed), json);
}

TEST(StudyJson, TimingIsOptionalAndExcludable) {
  const StudyResult r = golden_fixture();
  const std::string without =
      to_json(r, StudyJsonOptions{.include_timing = false});
  EXPECT_EQ(without.find("wall_ms"), std::string::npos);
  EXPECT_EQ(without.find("\"timing\""), std::string::npos);
  // Parsing the timing-free form succeeds and defaults the phases to 0.
  const StudyResult parsed = study_from_json(without);
  EXPECT_DOUBLE_EQ(parsed.wall_ms, 0.0);
  EXPECT_DOUBLE_EQ(parsed.plan_ms, 0.0);
  EXPECT_DOUBLE_EQ(parsed.execute_ms, 0.0);
  EXPECT_DOUBLE_EQ(parsed.merge_ms, 0.0);

  // Pre-timing payloads carry wall_ms but no timing object; they parse.
  std::string no_phases = to_json(r);
  const std::string timing_line =
      "  \"timing\": {\"plan_ms\": 0.200, \"execute_ms\": 1.100, "
      "\"merge_ms\": 0.200},\n";
  const std::size_t at = no_phases.find(timing_line);
  ASSERT_NE(at, std::string::npos);
  no_phases.erase(at, timing_line.size());
  const StudyResult legacy = study_from_json(no_phases);
  EXPECT_DOUBLE_EQ(legacy.wall_ms, 1.5);
  EXPECT_DOUBLE_EQ(legacy.plan_ms, 0.0);
}

TEST(StudyJson, BigCountersSurviveExactly) {
  StudyResult r = golden_fixture();
  r.states_visited = 9'007'199'254'740'993ull;  // 2^53 + 1: breaks doubles
  r.schedules_tried = 18'446'744'073'709'551'615ull;  // 2^64 - 1
  r.races_detected = 18'446'744'073'709'551'614ull;
  r.backtrack_points = 9'007'199'254'740'995ull;
  const StudyResult parsed = study_from_json(to_json(r));
  EXPECT_EQ(parsed.states_visited, r.states_visited);
  EXPECT_EQ(parsed.schedules_tried, r.schedules_tried);
  EXPECT_EQ(parsed.races_detected, r.races_detected);
  EXPECT_EQ(parsed.backtrack_points, r.backtrack_points);
}

TEST(StudyJson, ReductionIsOptionalForPrePorPayloads) {
  // Pre-POR cfc.study.v1 payloads carry no "reduction" member; they must
  // keep parsing, defaulting to policy off with zero counters.
  std::string json = to_json(golden_fixture());
  const std::size_t at = json.find("    \"reduction\": ");
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = json.find('\n', at);
  json.erase(at, end - at + 1);
  const StudyResult parsed = study_from_json(json);
  EXPECT_EQ(parsed.wc_reduction, ReductionPolicy::Off);
  EXPECT_EQ(parsed.races_detected, 0u);
  EXPECT_EQ(parsed.backtrack_points, 0u);
  EXPECT_EQ(parsed.sleep_blocked, 0u);
  EXPECT_EQ(parsed.work_items, 0u);
  EXPECT_EQ(parsed.restore_marks, 0u);

  // A present-but-bogus policy is malformed input, not a silent default.
  std::string bad = to_json(golden_fixture());
  bad.replace(bad.find("source-dpor"), 11, "bogus-dpor!");
  EXPECT_THROW((void)study_from_json(bad), std::invalid_argument);
}

TEST(StudyJson, ParallelCountersOptionalForPreParallelPayloads) {
  // Payloads written before the parallel-DPOR counters carry a reduction
  // object without work_items/restore_marks; they parse with zeros while
  // the pre-existing counters survive untouched.
  std::string json = to_json(golden_fixture());
  const std::string added = ", \"work_items\": 6, \"restore_marks\": 33";
  const std::size_t at = json.find(added);
  ASSERT_NE(at, std::string::npos);
  json.erase(at, added.size());
  const StudyResult parsed = study_from_json(json);
  EXPECT_EQ(parsed.wc_reduction, ReductionPolicy::SourceDpor);
  EXPECT_EQ(parsed.races_detected, 21u);
  EXPECT_EQ(parsed.work_items, 0u);
  EXPECT_EQ(parsed.restore_marks, 0u);
}

TEST(StudyJson, StatefulCountersOptionalForPreStatefulPayloads) {
  // Payloads written before stateful/hybrid DPOR carry a reduction object
  // without requested/cache_hits and a wc object without frontier_clamped;
  // they parse with requested defaulting to the used policy (the two never
  // diverged before hybrid), zero cache hits, and an unclamped frontier.
  std::string json = to_json(golden_fixture());
  const std::string req = ", \"requested\": \"hybrid\"";
  const std::size_t rat = json.find(req);
  ASSERT_NE(rat, std::string::npos);
  json.erase(rat, req.size());
  const std::string ch = ", \"cache_hits\": 17";
  const std::size_t cat = json.find(ch);
  ASSERT_NE(cat, std::string::npos);
  json.erase(cat, ch.size());
  const std::string fc = ",\n    \"frontier_clamped\": true";
  const std::size_t fat = json.find(fc);
  ASSERT_NE(fat, std::string::npos);
  json.erase(fat, fc.size());
  const StudyResult parsed = study_from_json(json);
  EXPECT_EQ(parsed.wc_reduction, ReductionPolicy::SourceDpor);
  EXPECT_EQ(parsed.wc_reduction_requested, ReductionPolicy::SourceDpor);
  EXPECT_EQ(parsed.cache_hits, 0u);
  EXPECT_FALSE(parsed.frontier_clamped);
  EXPECT_EQ(parsed.races_detected, 21u);
}

TEST(StudyJson, StaticRefineCounterOptionalForPreSaPayloads) {
  // Payloads written before the static model analysis (src/sa/) carry a
  // reduction object without static_refined_pairs; they parse with zero
  // while every other counter survives untouched.
  std::string json = to_json(golden_fixture());
  const std::string added = ", \"static_refined_pairs\": 5";
  const std::size_t at = json.find(added);
  ASSERT_NE(at, std::string::npos);
  json.erase(at, added.size());
  const StudyResult parsed = study_from_json(json);
  EXPECT_EQ(parsed.static_refined_pairs, 0u);
  EXPECT_EQ(parsed.races_detected, 21u);
  EXPECT_EQ(parsed.restore_marks, 33u);
}

TEST(StudyJson, EscapesSubjectStrings) {
  StudyResult r;
  r.subject = "weird\"name\\with\ncontrol\tchars";
  const StudyResult parsed = study_from_json(to_json(r));
  EXPECT_EQ(parsed.subject, r.subject);
}

TEST(StudyJson, ArraySerializerEmitsEveryResult) {
  const std::vector<StudyResult> results = {golden_fixture(),
                                            golden_fixture()};
  const std::string json = to_json(results);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Two schema headers: two serialized studies.
  std::size_t count = 0;
  for (std::size_t at = json.find("cfc.study.v1"); at != std::string::npos;
       at = json.find("cfc.study.v1", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(StudyJson, RejectsMalformedInput) {
  EXPECT_THROW((void)study_from_json(""), std::invalid_argument);
  EXPECT_THROW((void)study_from_json("[]"), std::invalid_argument);
  EXPECT_THROW((void)study_from_json("{\"schema\": \"cfc.study.v2\"}"),
               std::invalid_argument);
  EXPECT_THROW((void)study_from_json("{\"schema\": \"cfc.study.v1\"}"),
               std::invalid_argument);  // missing fields
  std::string truncated = to_json(golden_fixture());
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)study_from_json(truncated), std::invalid_argument);
  // Non-hex \u escapes are rejected, not silently parsed as 0.
  std::string bad_escape = to_json(golden_fixture());
  bad_escape.replace(bad_escape.find("peterson"), 8, "p\\uZZZZn");
  EXPECT_THROW((void)study_from_json(bad_escape), std::invalid_argument);
  // Code points beyond ÿ would be corrupted by the single-byte
  // decode, so they are rejected rather than mangled.
  std::string wide_escape = to_json(golden_fixture());
  wide_escape.replace(wide_escape.find("peterson"), 8, "p\\u0394\\u0395");
  EXPECT_THROW((void)study_from_json(wide_escape), std::invalid_argument);
  // Mistyped fields are malformed input, not zeros.
  std::string mistyped = to_json(golden_fixture());
  mistyped.replace(mistyped.find("\"n\": 2"), 6, "\"n\": \"two\"");
  EXPECT_THROW((void)study_from_json(mistyped), std::invalid_argument);
}

}  // namespace
}  // namespace cfc
