// POR soundness: the source-DPOR policy (measurement-aware dependence,
// full sleep sets, race-driven source-set backtracking) must certify
// *bit-identical* report values — whole-run totals, every window maximum,
// and the violation verdict — to the unreduced exhaustive search, for
// every registry mutex and detector algorithm at n = 2..3, including
// crash injection, on the sequential reference engine and a thread pool.
// This differential is the acceptance gate that lets certified searches
// default to the reduced tree.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/explorer.h"
#include "analysis/study.h"
#include "core/algorithm_registry.h"
#include "obs/trace.h"
#include "por/dependence.h"
#include "por/sleep_sets.h"
#include "por/source_dpor.h"

namespace cfc {
namespace {

void expect_reports_equal(const ComplexityReport& a,
                          const ComplexityReport& b,
                          const std::string& what) {
  EXPECT_EQ(a.steps, b.steps) << what;
  EXPECT_EQ(a.registers, b.registers) << what;
  EXPECT_EQ(a.read_steps, b.read_steps) << what;
  EXPECT_EQ(a.write_steps, b.write_steps) << what;
  EXPECT_EQ(a.read_registers, b.read_registers) << what;
  EXPECT_EQ(a.write_registers, b.write_registers) << what;
  EXPECT_EQ(a.atomicity, b.atomicity) << what;
  EXPECT_EQ(a.truncated, b.truncated) << what;
}

/// The full-measurement objective: clean-entry, exit, and cf-session
/// window maxima plus whole-run totals, each the max over processes. Every
/// field the paper's measures define, so the differential below proves the
/// reduction value-preserving for all of them at once.
ExploreObjective all_measures_objective(int n) {
  ExploreObjective obj;
  obj.eval = [n](const Sim&, const MeasureAccumulator& acc) {
    ComplexityReport entry;
    ComplexityReport exit;
    ComplexityReport session;
    ComplexityReport total;
    for (Pid pid = 0; pid < n; ++pid) {
      entry = entry.max_with(acc.clean_entry_max(pid));
      exit = exit.max_with(acc.exit_max(pid));
      session = session.max_with(acc.contention_free_session_max(pid));
      total = total.max_with(acc.total(pid));
    }
    return std::vector<ComplexityReport>{entry, exit, session, total};
  };
  // Totals are part of the objective, so the (weakest, always sound)
  // default accumulator digest is the pruning key: leave obj.digest unset.
  return obj;
}

Explorer::Config explorer_config(const Explorer::SetupFn& setup, int n,
                                 int depth, ReductionPolicy policy) {
  Explorer::Config cfg;
  cfg.nprocs = n;
  cfg.strategy = SearchStrategy::Exhaustive;
  cfg.limits.max_depth = depth;
  cfg.limits.reduction = policy;
  cfg.setup = setup;
  cfg.objective = all_measures_objective(n);
  return cfg;
}

/// Runs the same exploration unreduced and under source-dpor on the given
/// runner and asserts the certified values (all four objective reports),
/// the violation verdict, and the truncation flags agree exactly — while
/// the reduced search never explores more states.
void expect_source_dpor_matches_unreduced(const Explorer::SetupFn& setup,
                                          int n, int depth,
                                          ExperimentRunner* runner,
                                          const std::string& what) {
  const Explorer::Result off =
      Explorer(explorer_config(setup, n, depth, ReductionPolicy::Off))
          .run(runner);
  const Explorer::Result por =
      Explorer(explorer_config(setup, n, depth, ReductionPolicy::SourceDpor))
          .run(runner);
  ASSERT_EQ(off.best.size(), por.best.size()) << what;
  const char* field[] = {"clean-entry", "exit", "cf-session", "totals"};
  for (std::size_t i = 0; i < off.best.size(); ++i) {
    expect_reports_equal(off.best[i], por.best[i],
                         what + " / " + field[i]);
  }
  EXPECT_EQ(off.stats.truncated, por.stats.truncated) << what;
  EXPECT_EQ(off.stats.state_budget_hit, por.stats.state_budget_hit) << what;
  // Registry algorithms are safe: the violation count must agree exactly
  // (0 == 0); for broken algorithms the *verdict* (found / not found) is
  // what reduction preserves — violating traces violate in every
  // linearization — which BrokenLock below asserts.
  EXPECT_EQ(off.stats.violations, por.stats.violations) << what;
}

/// The reduction claim itself: against the same tree with neither the
/// visited cache nor the reduction (source-dpor replaces the cache — see
/// the Explorer constructor), the reduced search must explore a strict
/// subset of states while certifying the same values.
void expect_source_dpor_reduces(const Explorer::SetupFn& setup, int n,
                                int depth, const std::string& what) {
  Explorer::Config raw = explorer_config(setup, n, depth, ReductionPolicy::Off);
  raw.limits.prune_visited = false;
  const Explorer::Result off = Explorer(raw).run();
  const Explorer::Result por =
      Explorer(explorer_config(setup, n, depth, ReductionPolicy::SourceDpor))
          .run();
  EXPECT_LT(por.stats.states_visited, off.stats.states_visited) << what;
  ASSERT_EQ(off.best.size(), por.best.size()) << what;
  for (std::size_t i = 0; i < off.best.size(); ++i) {
    expect_reports_equal(off.best[i], por.best[i], what);
  }
}

Explorer::SetupFn mutex_setup(const MutexFactory& make, int n,
                              std::vector<std::uint64_t> crash_after = {}) {
  return [make, n, crash_after](Sim& sim) -> std::shared_ptr<void> {
    auto alg = setup_mutex(sim, make, n, /*sessions=*/1);
    for (std::size_t p = 0; p < crash_after.size(); ++p) {
      sim.crash_after(static_cast<Pid>(p), crash_after[p]);
    }
    return alg;
  };
}

Explorer::SetupFn detector_setup(const DetectorFactory& make, int n,
                                 std::vector<std::uint64_t> crash_after = {}) {
  return [make, n, crash_after](Sim& sim) -> std::shared_ptr<void> {
    auto det = setup_detection(sim, make, n);
    for (std::size_t p = 0; p < crash_after.size(); ++p) {
      sim.crash_after(static_cast<Pid>(p), crash_after[p]);
    }
    return det;
  };
}

// --- The differential suite: every registry algorithm, n = 2..3,
// threads 1 and 4. ---

TEST(PorDifferential, MutexRegistryAtN2And3) {
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  for (const int n : {2, 3}) {
    const int depth = n == 2 ? 12 : 8;
    for (const MutexAlgorithmEntry* e :
         AlgorithmRegistry::instance().mutex_for_n(n)) {
      for (ExperimentRunner* runner : {&seq, &pool}) {
        const std::string what = e->info.name + " n=" + std::to_string(n) +
                                 " threads=" +
                                 std::to_string(runner->thread_count());
        SCOPED_TRACE(what);
        expect_source_dpor_matches_unreduced(mutex_setup(e->factory, n),
                                             n, depth, runner, what);
      }
    }
  }
}

TEST(PorDifferential, DetectorRegistryAtN2And3) {
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  for (const int n : {2, 3}) {
    const int depth = n == 2 ? 14 : 10;
    for (const DetectorAlgorithmEntry* e :
         AlgorithmRegistry::instance().detector_algorithms()) {
      for (ExperimentRunner* runner : {&seq, &pool}) {
        const std::string what = e->info.name + " n=" + std::to_string(n) +
                                 " threads=" +
                                 std::to_string(runner->thread_count());
        SCOPED_TRACE(what);
        expect_source_dpor_matches_unreduced(detector_setup(e->factory, n),
                                             n, depth, runner, what);
      }
    }
  }
}

TEST(PorDifferential, MutexWithCrashInjection) {
  // A crash-armed process's next step is unknowable, so the dependence
  // relation orders it against everything; the differential must still
  // hold with stopping failures in the space.
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  for (const int n : {2, 3}) {
    const int depth = n == 2 ? 12 : 8;
    for (const MutexAlgorithmEntry* e :
         AlgorithmRegistry::instance().mutex_for_n(n)) {
      // Process 0 crashes at its 3rd access attempt: mid-entry for every
      // registry algorithm.
      for (ExperimentRunner* runner : {&seq, &pool}) {
        const std::string what = e->info.name + " crash n=" +
                                 std::to_string(n) + " threads=" +
                                 std::to_string(runner->thread_count());
        SCOPED_TRACE(what);
        expect_source_dpor_matches_unreduced(
            mutex_setup(e->factory, n, {2}), n, depth, runner, what);
      }
    }
  }
}

TEST(PorDifferential, DetectorWithCrashInjection) {
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  for (const int n : {2, 3}) {
    const int depth = n == 2 ? 14 : 10;
    for (const DetectorAlgorithmEntry* e :
         AlgorithmRegistry::instance().detector_algorithms()) {
      for (ExperimentRunner* runner : {&seq, &pool}) {
        const std::string what = e->info.name + " crash n=" +
                                 std::to_string(n) + " threads=" +
                                 std::to_string(runner->thread_count());
        SCOPED_TRACE(what);
        expect_source_dpor_matches_unreduced(
            detector_setup(e->factory, n, {1}), n, depth, runner, what);
      }
    }
  }
}

TEST(PorDifferential, SourceDporReducesTheUnprunedTree) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
  expect_source_dpor_reduces(
      mutex_setup(registry.mutex("peterson-2p").factory, 2), 2, 14,
      "peterson-2p");
  expect_source_dpor_reduces(
      mutex_setup(registry.mutex("kessels-2p").factory, 2), 2, 12,
      "kessels-2p");
  expect_source_dpor_reduces(
      detector_setup(registry.detector("splitter-tree-l2").factory, 3), 3,
      10, "splitter-tree-l2");
}

// --- Safety under reduction. ---

TEST(PorDifferential, BrokenLockViolationSurvivesReduction) {
  // Violating traces violate in every linearization (section-change pairs
  // never commute), so the reduced search must still find the broken
  // lock's mutual-exclusion violation — fewer violating schedules visited,
  // but never zero.
  class NoMutex final : public MutexAlgorithm {
   public:
    explicit NoMutex(RegisterFile& mem) { r_ = mem.add_bit("nomutex.r"); }
    Task<void> enter(ProcessContext& ctx, int) override {
      co_await ctx.read(r_);
    }
    Task<void> exit(ProcessContext& ctx, int) override {
      co_await ctx.read(r_);
    }
    Task<Value> try_enter(ProcessContext& ctx, int slot, RegId) override {
      co_await enter(ctx, slot);
      co_return 1;
    }
    [[nodiscard]] int capacity() const override { return 2; }
    [[nodiscard]] int atomicity() const override { return 1; }
    [[nodiscard]] std::string algorithm_name() const override {
      return "broken";
    }

   private:
    RegId r_;
  };
  const MutexFactory broken = [](RegisterFile& mem, int) {
    return std::make_unique<NoMutex>(mem);
  };
  const Explorer::Result por =
      Explorer(explorer_config(mutex_setup(broken, 2), 2, 10,
                               ReductionPolicy::SourceDpor))
          .run();
  EXPECT_GT(por.stats.violations, 0u);
}

// --- Reduction counters: populated and thread-count invariant. ---

TEST(PorCounters, PopulatedAndThreadInvariant) {
  const MutexFactory peterson =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  const auto cfg = explorer_config(mutex_setup(peterson, 2), 2, 14,
                                   ReductionPolicy::SourceDpor);
  const Explorer::Result a = Explorer(cfg).run(&seq);
  const Explorer::Result b = Explorer(cfg).run(&pool);
  EXPECT_GT(a.stats.races_detected, 0u);
  EXPECT_GT(a.stats.backtrack_points, 0u);
  EXPECT_EQ(a.stats.sleep_blocked, a.stats.pruned_independent);
  EXPECT_EQ(a.stats.races_detected, b.stats.races_detected);
  EXPECT_EQ(a.stats.backtrack_points, b.stats.backtrack_points);
  EXPECT_EQ(a.stats.sleep_blocked, b.stats.sleep_blocked);
  EXPECT_EQ(a.stats.states_visited, b.stats.states_visited);
  EXPECT_EQ(a.stats.pruned_visited, b.stats.pruned_visited);

  // Sleep sets earn their keep where three processes give an inserted
  // sibling a genuinely independent third party: the blocked-branch
  // counter must be populated there (at n = 2 a race-inserted sibling
  // conflicts with the branch it raced, so sleepers rarely survive).
  const DetectorFactory splitter =
      AlgorithmRegistry::instance().detector("splitter-tree-l2").factory;
  const Explorer::Result d =
      Explorer(explorer_config(detector_setup(splitter, 3), 3, 10,
                               ReductionPolicy::SourceDpor))
          .run(&seq);
  EXPECT_GT(d.stats.sleep_blocked, 0u);
  EXPECT_EQ(d.stats.sleep_blocked, d.stats.pruned_independent);
}

// --- The parallel work-stealing path: canonical JSON is byte-identical
// at every thread count, and a steal-heavy fan-out matches sequential. ---

std::string study_json_at(const StudySpec& spec, int threads) {
  ExperimentRunner runner(threads);
  const StudyResult r = run_study(spec, &runner);
  return to_json(r, StudyJsonOptions{.include_timing = false});
}

/// Runs the spec at threads 1 (the reference engine) and 2/4/8 and
/// asserts the timing-free cfc.study.v1 payloads are byte-identical —
/// the determinism contract of the work-stealing source-DPOR path.
void expect_json_thread_invariant(const StudySpec& spec,
                                  const std::string& what) {
  const std::string reference = study_json_at(spec, 1);
  // The reference payload really exercised the reduced parallel path.
  EXPECT_NE(reference.find("\"policy\": \"source-dpor\""), std::string::npos)
      << what;
  EXPECT_NE(reference.find("\"work_items\":"), std::string::npos) << what;
  EXPECT_NE(reference.find("\"restore_marks\":"), std::string::npos) << what;
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(study_json_at(spec, threads), reference)
        << what << " threads=" << threads;
  }
}

TEST(PorStudyJson, MutexByteIdenticalAcrossThreadCounts) {
  for (const int n : {2, 3}) {
    const int depth = n == 2 ? 12 : 8;
    for (const MutexAlgorithmEntry* e :
         AlgorithmRegistry::instance().mutex_for_n(n)) {
      for (const bool crash : {false, true}) {
        StudySpec spec = StudySpec::of(e->info.name)
                             .kind(StudyKind::Mutex)
                             .n(n)
                             .worst_case(SearchStrategy::Exhaustive)
                             .depth(depth);
        if (crash) {
          // Process 0 crashes at its 3rd access attempt (mid-entry).
          spec.crash({2});
        }
        const std::string what = e->info.name + " n=" + std::to_string(n) +
                                 (crash ? " crash" : "");
        SCOPED_TRACE(what);
        expect_json_thread_invariant(spec, what);
      }
    }
  }
}

TEST(PorStudyJson, DetectorByteIdenticalAcrossThreadCounts) {
  for (const int n : {2, 3}) {
    const int depth = n == 2 ? 14 : 10;
    for (const DetectorAlgorithmEntry* e :
         AlgorithmRegistry::instance().detector_algorithms()) {
      for (const bool crash : {false, true}) {
        StudySpec spec = StudySpec::of(e->info.name)
                             .kind(StudyKind::Detector)
                             .n(n)
                             .worst_case(SearchStrategy::Exhaustive)
                             .depth(depth);
        if (crash) {
          spec.crash({1});
        }
        const std::string what = e->info.name + " n=" + std::to_string(n) +
                                 (crash ? " crash" : "");
        SCOPED_TRACE(what);
        expect_json_thread_invariant(spec, what);
      }
    }
  }
}

TEST(PorStress, StealHeavyFanOutMatchesSequential) {
  // A deep three-process detector tree gives the planner a wide frontier
  // of long work items — the steal-heavy shape. Run it on an 8-thread
  // pool (more workers than cores on most CI boxes, so queues drain
  // unevenly and steals actually happen) and on the sequential reference,
  // and require identical certified values and thread-invariant counters.
  // CI additionally runs this test under ThreadSanitizer.
  const DetectorFactory splitter =
      AlgorithmRegistry::instance().detector("splitter-tree-l2").factory;
  const auto cfg = explorer_config(detector_setup(splitter, 3), 3, 12,
                                   ReductionPolicy::SourceDpor);
  ExperimentRunner seq(1);
  ExperimentRunner pool(8);
  const Explorer::Result a = Explorer(cfg).run(&seq);
  const Explorer::Result b = Explorer(cfg).run(&pool);
  ASSERT_EQ(a.best.size(), b.best.size());
  for (std::size_t i = 0; i < a.best.size(); ++i) {
    expect_reports_equal(a.best[i], b.best[i], "steal-heavy");
  }
  EXPECT_GT(a.stats.work_items, 1u);  // the planner genuinely fanned out
  EXPECT_EQ(a.stats.work_items, b.stats.work_items);
  EXPECT_EQ(a.stats.states_visited, b.stats.states_visited);
  EXPECT_EQ(a.stats.races_detected, b.stats.races_detected);
  EXPECT_EQ(a.stats.backtrack_points, b.stats.backtrack_points);
  EXPECT_EQ(a.stats.sleep_blocked, b.stats.sleep_blocked);
  EXPECT_EQ(a.stats.restore_marks, b.stats.restore_marks);
  EXPECT_EQ(a.stats.violations, b.stats.violations);
  // Thread-dependent observability: the pool built one sim per worker
  // (plus the planner's), never more than items + 1.
  EXPECT_LE(b.stats.sims_built, a.stats.work_items + 1);
}

// --- The dependence relation's unit semantics. ---

TEST(PorDependence, RegisterConflictAndSectionAdjacency) {
  StepSummary read_a;   // section-quiet read of register 7 by pid 0
  read_a.pid = 0;
  read_a.accessed = true;
  read_a.reg = 7;
  StepSummary read_b = read_a;  // same register, other process
  read_b.pid = 1;
  StepSummary write_b = read_b;
  write_b.wrote = true;
  StepSummary write_other = write_b;
  write_other.reg = 9;
  StepSummary section_b;  // section-change-adjacent unit of pid 1
  section_b.pid = 1;
  section_b.section_changed = true;
  StepSummary section_a = section_b;
  section_a.pid = 0;

  EXPECT_FALSE(dependent(read_a, read_b));   // read/read commutes
  EXPECT_TRUE(dependent(read_a, write_b));   // read/write conflicts
  EXPECT_FALSE(dependent(read_a, write_other));
  EXPECT_TRUE(dependent(section_a, section_b));  // both touch sections
  EXPECT_FALSE(dependent(read_a, section_b));    // access vs section-change
  EXPECT_TRUE(dependent(read_a, read_a));        // program order

  // Executed-vs-pending: the pending side's adjacency is unknowable.
  NextStep pend_read;
  pend_read.known = true;
  pend_read.reg = 7;
  EXPECT_FALSE(dependent(read_a, pend_read));
  EXPECT_TRUE(dependent(write_b, pend_read));
  EXPECT_TRUE(dependent(section_b, pend_read));  // worst-case adjacency
  NextStep unknown;
  EXPECT_TRUE(dependent(read_a, unknown));
  NextStep yield;
  yield.known = true;
  yield.yield = true;
  EXPECT_FALSE(dependent(read_a, yield));
  EXPECT_TRUE(dependent(section_a, yield));  // yields can change sections
}

TEST(PorSleepSets, TransferWakesOnConflictOnly) {
  std::array<NextStep, 3> pends{};
  pends[1].known = true;
  pends[1].reg = 7;
  pends[2].known = true;
  pends[2].reg = 9;
  SleepSet candidates;
  candidates.insert(1);
  candidates.insert(2);

  StepSummary write7;
  write7.pid = 0;
  write7.accessed = true;
  write7.reg = 7;
  write7.wrote = true;
  const SleepSet after =
      transfer_sleep(candidates, write7, std::span(pends.data(), 3));
  EXPECT_FALSE(after.contains(1));  // conflicting sleeper woke
  EXPECT_TRUE(after.contains(2));   // disjoint sleeper stays asleep

  StepSummary section_step;
  section_step.pid = 0;
  section_step.section_changed = true;
  const SleepSet woken =
      transfer_sleep(candidates, section_step, std::span(pends.data(), 3));
  EXPECT_TRUE(woken.empty());  // section changes wake every sleeper
}

// --- The legacy sleep-lite alias keeps selecting sleep-lite. ---

TEST(PorPolicy, ReduceIndependentAliasSelectsSleepLite) {
  // The pre-POR flag must keep its meaning: results identical to asking
  // for the policy by name, states included.
  WorstCaseSearchOptions by_flag;
  by_flag.strategy = SearchStrategy::Exhaustive;
  by_flag.limits.max_depth = 12;
  by_flag.limits.reduce_independent = true;
  WorstCaseSearchOptions by_name = by_flag;
  by_name.limits.reduce_independent = false;
  by_name.limits.reduction = ReductionPolicy::SleepLite;
  const MutexFactory peterson =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  const MutexWcSearchResult a =
      search_mutex_worst_case(peterson, 2, 1, by_flag);
  const MutexWcSearchResult b =
      search_mutex_worst_case(peterson, 2, 1, by_name);
  expect_reports_equal(a.entry, b.entry, "entry");
  expect_reports_equal(a.exit, b.exit, "exit");
  EXPECT_EQ(a.states_visited, b.states_visited);
  EXPECT_EQ(a.schedules_tried, b.schedules_tried);
}

// --- Observability is inert: tracing + progress heartbeats running over
// a study must leave the canonical JSON byte-identical, at the sequential
// reference engine and on a thread pool. ---

TEST(PorStudyJson, ByteIdenticalWithObservabilityOn) {
  const auto spec = [] {
    return StudySpec::of("peterson-2p")
        .kind(StudyKind::Mutex)
        .n(2)
        .worst_case(SearchStrategy::Exhaustive)
        .depth(12);
  };
  for (const int threads : {1, 4}) {
    const std::string reference = study_json_at(spec(), threads);
    const std::string dir = ::testing::TempDir();
    const std::string trace_path =
        dir + "por_obs_trace_t" + std::to_string(threads) + ".json";
    const std::string progress_path =
        dir + "por_obs_progress_t" + std::to_string(threads) + ".jsonl";

    StudySpec observed = spec();
    observed.trace(trace_path).progress(progress_path, /*interval_ms=*/1);
    const std::string with_obs = study_json_at(observed, threads);
    EXPECT_EQ(with_obs, reference) << "threads=" << threads;

    // The side channels really ran: the trace file validates as balanced
    // Chrome trace JSON and the heartbeat wrote at least the final line.
    std::ifstream trace_in(trace_path, std::ios::binary);
    ASSERT_TRUE(trace_in.good()) << trace_path;
    std::ostringstream trace_buf;
    trace_buf << trace_in.rdbuf();
    std::vector<std::string> errors;
    EXPECT_TRUE(obs::check_trace_json(trace_buf.str(), &errors));
    for (const std::string& e : errors) {
      ADD_FAILURE() << e;
    }
    std::ifstream progress_in(progress_path);
    ASSERT_TRUE(progress_in.good()) << progress_path;
    std::string line;
    ASSERT_TRUE(std::getline(progress_in, line));
    EXPECT_NE(line.find("\"states\""), std::string::npos);
  }
}

TEST(PorPolicy, RequiresExhaustiveStrategy) {
  Explorer::Config cfg;
  cfg.nprocs = 2;
  cfg.strategy = SearchStrategy::Bounded;
  cfg.limits.max_preemptions = 1;
  cfg.limits.reduction = ReductionPolicy::SourceDpor;
  cfg.setup = [](Sim& sim) -> std::shared_ptr<void> {
    return setup_mutex(
        sim, AlgorithmRegistry::instance().mutex("peterson-2p").factory, 2,
        1);
  };
  EXPECT_THROW((void)Explorer(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace cfc
