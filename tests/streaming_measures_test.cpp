// Differential test of the streaming measurement sink: a MeasureAccumulator
// attached to a simulation must report exactly what the offline trace-based
// functions in core/measures.h compute over the recorded trace — totals,
// contention-free sessions, clean entry windows, and exit windows — on
// randomized schedules across algorithm families, with and without crash
// injection.
#include <gtest/gtest.h>

#include <vector>

#include "core/algorithm_registry.h"
#include "core/measures.h"
#include "core/streaming_measures.h"
#include "mutex/mutex_algorithm.h"
#include "naming/naming_algorithm.h"
#include "sched/sched.h"

namespace cfc {
namespace {

void expect_reports_equal(const ComplexityReport& streaming,
                          const ComplexityReport& traced,
                          const std::string& what) {
  EXPECT_EQ(streaming.steps, traced.steps) << what;
  EXPECT_EQ(streaming.registers, traced.registers) << what;
  EXPECT_EQ(streaming.read_steps, traced.read_steps) << what;
  EXPECT_EQ(streaming.write_steps, traced.write_steps) << what;
  EXPECT_EQ(streaming.read_registers, traced.read_registers) << what;
  EXPECT_EQ(streaming.write_registers, traced.write_registers) << what;
  EXPECT_EQ(streaming.atomicity, traced.atomicity) << what;
}

/// Runs the sim (trace recording on AND accumulator attached) and compares
/// every streaming quantity to the trace-based reference, per pid.
void compare_all_measures(Sim& sim, const MeasureAccumulator& acc, int n,
                          const std::string& what) {
  const Trace& trace = sim.trace();
  for (Pid pid = 0; pid < n; ++pid) {
    const std::string who = what + " pid=" + std::to_string(pid);
    expect_reports_equal(acc.total(pid), measure_all(trace, pid),
                         who + " total");
    const auto cf_sessions = contention_free_sessions(trace, pid, n);
    expect_reports_equal(acc.contention_free_session_max(pid),
                         max_over_windows(trace, pid, cf_sessions),
                         who + " cf-session");
    EXPECT_EQ(acc.contention_free_session_count(pid),
              static_cast<int>(cf_sessions.size()))
        << who;
    expect_reports_equal(
        acc.clean_entry_max(pid),
        max_over_windows(trace, pid, clean_entry_windows(trace, pid, n)),
        who + " clean-entry");
    expect_reports_equal(
        acc.exit_max(pid),
        max_over_windows(trace, pid, exit_windows(trace, pid)),
        who + " exit");
  }
}

TEST(StreamingMeasures, MatchesTraceOnRandomMutexSchedules) {
  const auto& registry = AlgorithmRegistry::instance();
  const std::vector<std::string> algorithms = {
      "lamport-fast", "thm3-exact-l2", "kessels-tree", "peterson-tree"};
  for (const std::string& name : algorithms) {
    const MutexAlgorithmEntry& entry = registry.mutex(name);
    for (const int n : {2, 4, 8}) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        Sim sim;
        MeasureAccumulator acc(n);
        sim.add_sink(acc);
        auto alg = setup_mutex(sim, entry.factory, n, /*sessions=*/2);
        RandomScheduler rnd(seed);
        drive(sim, rnd, RunLimits{100'000});
        compare_all_measures(
            sim, acc, n,
            name + " n=" + std::to_string(n) + " seed=" +
                std::to_string(seed));
      }
    }
  }
}

TEST(StreamingMeasures, MatchesTraceOnSoloSessions) {
  const auto& registry = AlgorithmRegistry::instance();
  const int n = 8;
  for (const MutexAlgorithmEntry* entry : registry.mutex_for_n(n, "thm3")) {
    for (Pid pid = 0; pid < n; pid += 3) {
      Sim sim;
      MeasureAccumulator acc(n);
      sim.add_sink(acc);
      auto alg = setup_mutex(sim, entry->factory, n, /*sessions=*/1);
      SoloScheduler solo(pid);
      drive(sim, solo);
      compare_all_measures(sim, acc, n, entry->info.name + " solo");
      EXPECT_EQ(acc.contention_free_session_count(pid), 1)
          << entry->info.name;
    }
  }
}

TEST(StreamingMeasures, MatchesTraceOnNamingRunsWithCrashes) {
  const auto& registry = AlgorithmRegistry::instance();
  const int n = 8;
  for (const NamingAlgorithmEntry* entry : registry.naming_algorithms()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      Sim sim;
      MeasureAccumulator acc(n);
      sim.add_sink(acc);
      auto alg = setup_naming(sim, entry->factory, n);
      // Crash two processes at different depths; wait-freedom keeps the
      // rest running, and measurement must agree either way.
      sim.crash_after(1, seed % 3);
      sim.crash_after(5, 1 + seed % 2);
      RandomScheduler rnd(seed);
      drive(sim, rnd, RunLimits{100'000});
      compare_all_measures(
          sim, acc, n, entry->info.name + " seed=" + std::to_string(seed));
    }
  }
}

TEST(StreamingMeasures, AgreesWithTraceWhenRecordingDisabled) {
  // Two identical runs driven by the same seed: one with the trace, one
  // streaming-only (recording off). The streaming run must see the same
  // events — sequence numbering does not depend on materialization.
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("lamport-fast").factory;
  const int n = 4;

  Sim traced;
  auto alg1 = setup_mutex(traced, factory, n, 2);
  RandomScheduler rnd1(99);
  drive(traced, rnd1, RunLimits{50'000});

  Sim streaming;
  streaming.set_trace_recording(false);
  MeasureAccumulator acc(n);
  streaming.add_sink(acc);
  auto alg2 = setup_mutex(streaming, factory, n, 2);
  RandomScheduler rnd2(99);
  drive(streaming, rnd2, RunLimits{50'000});

  EXPECT_TRUE(streaming.trace().empty());
  EXPECT_EQ(streaming.next_seq(), traced.next_seq());
  for (Pid pid = 0; pid < n; ++pid) {
    expect_reports_equal(acc.total(pid), measure_all(traced.trace(), pid),
                         "recording-off pid=" + std::to_string(pid));
  }
}

TEST(StreamingMeasures, SinkCanBeRemoved) {
  Sim sim;
  const RegId r = sim.memory().add_register("r", 8);
  MeasureAccumulator acc(1);
  sim.add_sink(acc);
  sim.spawn("p", [r](ProcessContext& ctx) -> Task<void> {
    co_await ctx.write(r, 1);
    co_await ctx.write(r, 2);
  });
  sim.step(0);
  sim.remove_sink(acc);
  sim.step(0);
  EXPECT_EQ(acc.total(0).steps, 1);          // only the first access seen
  EXPECT_EQ(sim.trace().access_count(), 2u);  // the trace saw both
}

}  // namespace
}  // namespace cfc
