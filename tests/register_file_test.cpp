#include "memory/register_file.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cfc {
namespace {

TEST(RegisterFile, AddAndInspect) {
  RegisterFile mem;
  const RegId a = mem.add_register("a", 4, 9);
  const RegId b = mem.add_bit("b", true);
  EXPECT_EQ(mem.size(), 2);
  EXPECT_EQ(mem.width(a), 4);
  EXPECT_EQ(mem.width(b), 1);
  EXPECT_EQ(mem.reg_name(a), "a");
  EXPECT_EQ(mem.peek(a), 9u);
  EXPECT_EQ(mem.peek(b), 1u);
  EXPECT_EQ(mem.initial_value(a), 9u);
}

TEST(RegisterFile, WidthBoundsEnforced) {
  RegisterFile mem;
  EXPECT_THROW(mem.add_register("w0", 0), std::invalid_argument);
  EXPECT_THROW(mem.add_register("w65", 65), std::invalid_argument);
  EXPECT_NO_THROW(mem.add_register("w64", 64));
  EXPECT_NO_THROW(mem.add_register("w1", 1));
}

TEST(RegisterFile, InitialValueMustFit) {
  RegisterFile mem;
  EXPECT_THROW(mem.add_register("r", 3, 8), std::invalid_argument);
  EXPECT_NO_THROW(mem.add_register("r", 3, 7));
}

TEST(RegisterFile, MaxValuePerWidth) {
  RegisterFile mem;
  const RegId r1 = mem.add_register("r1", 1);
  const RegId r8 = mem.add_register("r8", 8);
  const RegId r64 = mem.add_register("r64", 64);
  EXPECT_EQ(mem.max_value(r1), 1u);
  EXPECT_EQ(mem.max_value(r8), 255u);
  EXPECT_EQ(mem.max_value(r64), ~Value{0});
}

TEST(RegisterFile, PokeChecksRange) {
  RegisterFile mem;
  const RegId r = mem.add_register("r", 2);
  mem.poke(r, 3);
  EXPECT_EQ(mem.peek(r), 3u);
  EXPECT_THROW(mem.poke(r, 4), std::invalid_argument);
}

TEST(RegisterFile, ResetRestoresInitialValues) {
  RegisterFile mem;
  const RegId a = mem.add_register("a", 8, 42);
  const RegId b = mem.add_bit("b");
  mem.poke(a, 7);
  mem.poke(b, 1);
  mem.reset();
  EXPECT_EQ(mem.peek(a), 42u);
  EXPECT_EQ(mem.peek(b), 0u);
}

TEST(RegisterFile, BadIdsThrow) {
  RegisterFile mem;
  EXPECT_THROW((void)mem.peek(0), std::out_of_range);
  const RegId r = mem.add_bit("r");
  EXPECT_NO_THROW((void)mem.peek(r));
  EXPECT_THROW((void)mem.peek(r + 1), std::out_of_range);
  EXPECT_THROW((void)mem.width(-1), std::out_of_range);
}

TEST(RegisterFile, FitsMatchesWidth) {
  RegisterFile mem;
  const RegId r = mem.add_register("r", 3);
  EXPECT_TRUE(mem.fits(r, 7));
  EXPECT_FALSE(mem.fits(r, 8));
}

TEST(RegisterFile, SnapshotRestoreRoundTrip) {
  RegisterFile mem;
  const RegId a = mem.add_register("a", 8, 42);
  const RegId b = mem.add_bit("b");
  const RegId c = mem.add_register("c", 64);
  const MemorySnapshot snap = mem.snapshot();
  const std::uint64_t fp = mem.fingerprint();

  mem.poke(a, 7);
  mem.poke(b, 1);
  mem.poke(c, ~Value{0});
  EXPECT_NE(mem.fingerprint(), fp);

  mem.restore(snap);
  EXPECT_EQ(mem.peek(a), 42u);
  EXPECT_EQ(mem.peek(b), 0u);
  EXPECT_EQ(mem.peek(c), 0u);
  EXPECT_EQ(mem.fingerprint(), fp);
  EXPECT_EQ(mem.snapshot(), snap);
}

TEST(RegisterFile, IncrementalFingerprintMatchesRebuiltFile) {
  // The incrementally maintained hash must equal the hash of a file that
  // reached the same values by any other poke sequence.
  RegisterFile a;
  RegisterFile b;
  for (int i = 0; i < 6; ++i) {
    a.add_register("r" + std::to_string(i), 16);
    b.add_register("r" + std::to_string(i), 16);
  }
  a.poke(0, 11);
  a.poke(3, 500);
  a.poke(0, 13);   // overwrite
  a.poke(5, 1);
  b.poke(5, 1);    // different order, different intermediate values
  b.poke(0, 99);
  b.poke(0, 13);
  b.poke(3, 500);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  b.poke(3, 501);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(RegisterFile, ResetRestoresInitialFingerprint) {
  RegisterFile mem;
  mem.add_register("a", 8, 42);
  mem.add_bit("b");
  const std::uint64_t fp0 = mem.fingerprint();
  mem.poke(0, 9);
  mem.poke(1, 1);
  mem.reset();
  EXPECT_EQ(mem.fingerprint(), fp0);
}

TEST(RegisterFile, RestoreRejectsBadSnapshots) {
  RegisterFile mem;
  mem.add_register("a", 3);
  EXPECT_THROW(mem.restore(MemorySnapshot{}), std::invalid_argument);
  EXPECT_THROW(mem.restore(MemorySnapshot{1, 2}), std::invalid_argument);
  EXPECT_THROW(mem.restore(MemorySnapshot{8}), std::invalid_argument);
  mem.restore(MemorySnapshot{7});
  EXPECT_EQ(mem.peek(0), 7u);
}

}  // namespace
}  // namespace cfc
