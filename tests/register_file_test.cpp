#include "memory/register_file.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cfc {
namespace {

TEST(RegisterFile, AddAndInspect) {
  RegisterFile mem;
  const RegId a = mem.add_register("a", 4, 9);
  const RegId b = mem.add_bit("b", true);
  EXPECT_EQ(mem.size(), 2);
  EXPECT_EQ(mem.width(a), 4);
  EXPECT_EQ(mem.width(b), 1);
  EXPECT_EQ(mem.reg_name(a), "a");
  EXPECT_EQ(mem.peek(a), 9u);
  EXPECT_EQ(mem.peek(b), 1u);
  EXPECT_EQ(mem.initial_value(a), 9u);
}

TEST(RegisterFile, WidthBoundsEnforced) {
  RegisterFile mem;
  EXPECT_THROW(mem.add_register("w0", 0), std::invalid_argument);
  EXPECT_THROW(mem.add_register("w65", 65), std::invalid_argument);
  EXPECT_NO_THROW(mem.add_register("w64", 64));
  EXPECT_NO_THROW(mem.add_register("w1", 1));
}

TEST(RegisterFile, InitialValueMustFit) {
  RegisterFile mem;
  EXPECT_THROW(mem.add_register("r", 3, 8), std::invalid_argument);
  EXPECT_NO_THROW(mem.add_register("r", 3, 7));
}

TEST(RegisterFile, MaxValuePerWidth) {
  RegisterFile mem;
  const RegId r1 = mem.add_register("r1", 1);
  const RegId r8 = mem.add_register("r8", 8);
  const RegId r64 = mem.add_register("r64", 64);
  EXPECT_EQ(mem.max_value(r1), 1u);
  EXPECT_EQ(mem.max_value(r8), 255u);
  EXPECT_EQ(mem.max_value(r64), ~Value{0});
}

TEST(RegisterFile, PokeChecksRange) {
  RegisterFile mem;
  const RegId r = mem.add_register("r", 2);
  mem.poke(r, 3);
  EXPECT_EQ(mem.peek(r), 3u);
  EXPECT_THROW(mem.poke(r, 4), std::invalid_argument);
}

TEST(RegisterFile, ResetRestoresInitialValues) {
  RegisterFile mem;
  const RegId a = mem.add_register("a", 8, 42);
  const RegId b = mem.add_bit("b");
  mem.poke(a, 7);
  mem.poke(b, 1);
  mem.reset();
  EXPECT_EQ(mem.peek(a), 42u);
  EXPECT_EQ(mem.peek(b), 0u);
}

TEST(RegisterFile, BadIdsThrow) {
  RegisterFile mem;
  EXPECT_THROW((void)mem.peek(0), std::out_of_range);
  const RegId r = mem.add_bit("r");
  EXPECT_NO_THROW((void)mem.peek(r));
  EXPECT_THROW((void)mem.peek(r + 1), std::out_of_range);
  EXPECT_THROW((void)mem.width(-1), std::out_of_range);
}

TEST(RegisterFile, FitsMatchesWidth) {
  RegisterFile mem;
  const RegId r = mem.add_register("r", 3);
  EXPECT_TRUE(mem.fits(r, 7));
  EXPECT_FALSE(mem.fits(r, 8));
}

}  // namespace
}  // namespace cfc
