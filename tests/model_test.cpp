#include "memory/model.h"

#include <gtest/gtest.h>

namespace cfc {
namespace {

TEST(Model, EmptyModelSupportsNothing) {
  const Model m;
  for (BitOp op : kAllBitOps) {
    EXPECT_FALSE(m.supports(op)) << name(op);
  }
  EXPECT_EQ(m.size(), 0);
}

TEST(Model, RmwSupportsEverything) {
  const Model m = Model::rmw();
  for (BitOp op : kAllBitOps) {
    EXPECT_TRUE(m.supports(op)) << name(op);
  }
  EXPECT_EQ(m.size(), kBitOpCount);
}

TEST(Model, TableModelsContainExpectedOps) {
  EXPECT_TRUE(Model::test_and_set().supports(BitOp::TestAndSet));
  EXPECT_EQ(Model::test_and_set().size(), 1);

  EXPECT_TRUE(Model::read_test_and_set().supports(BitOp::Read));
  EXPECT_TRUE(Model::read_test_and_set().supports(BitOp::TestAndSet));
  EXPECT_EQ(Model::read_test_and_set().size(), 2);

  EXPECT_TRUE(Model::read_tas_tar().supports(BitOp::TestAndReset));
  EXPECT_EQ(Model::read_tas_tar().size(), 3);

  EXPECT_TRUE(Model::test_and_flip().supports(BitOp::TestAndFlip));
  EXPECT_EQ(Model::test_and_flip().size(), 1);
}

TEST(Model, IncludesIsSubsetOrder) {
  EXPECT_TRUE(Model::rmw().includes(Model::test_and_set()));
  EXPECT_TRUE(Model::rmw().includes(Model::read_tas_tar()));
  EXPECT_TRUE(Model::read_tas_tar().includes(Model::read_test_and_set()));
  EXPECT_TRUE(Model::read_test_and_set().includes(Model::test_and_set()));
  EXPECT_FALSE(Model::test_and_set().includes(Model::read_test_and_set()));
  EXPECT_FALSE(Model::test_and_flip().includes(Model::test_and_set()));
}

TEST(Model, WithWithoutRoundTrip) {
  const Model m = Model::test_and_set().with(BitOp::Read);
  EXPECT_EQ(m, Model::read_test_and_set());
  EXPECT_EQ(m.without(BitOp::Read), Model::test_and_set());
}

// Section 3.2: if M is the dual of M', bounds for M hold for M'.
TEST(Model, DualModelSwapsDualOps) {
  const Model m{BitOp::TestAndSet, BitOp::Write0};
  const Model d = m.dual_model();
  EXPECT_TRUE(d.supports(BitOp::TestAndReset));
  EXPECT_TRUE(d.supports(BitOp::Write1));
  EXPECT_FALSE(d.supports(BitOp::TestAndSet));
  EXPECT_FALSE(d.supports(BitOp::Write0));
}

TEST(Model, DualIsInvolutionOnAllModels) {
  for (int mask = 0; mask < 256; ++mask) {
    const Model m = Model::from_mask(static_cast<std::uint8_t>(mask));
    EXPECT_EQ(m.dual_model().dual_model(), m) << mask;
  }
}

TEST(Model, SelfDualModels) {
  EXPECT_TRUE(Model::rmw().is_self_dual());
  EXPECT_TRUE(Model::test_and_flip().is_self_dual());
  EXPECT_TRUE(Model::read_tas_tar().dual_model() ==
              (Model{BitOp::Read, BitOp::TestAndReset, BitOp::TestAndSet}));
  EXPECT_TRUE(Model::read_tas_tar().is_self_dual());
  EXPECT_FALSE(Model::test_and_set().is_self_dual());
  EXPECT_FALSE(Model::read_test_and_set().is_self_dual());
}

TEST(Model, DualPreservesSize) {
  for (int mask = 0; mask < 256; ++mask) {
    const Model m = Model::from_mask(static_cast<std::uint8_t>(mask));
    EXPECT_EQ(m.dual_model().size(), m.size()) << mask;
  }
}

TEST(Model, NamesAreStable) {
  EXPECT_EQ(Model::rmw().to_string(), "rmw");
  EXPECT_EQ(Model::test_and_set().to_string(), "test-and-set");
  EXPECT_EQ(Model::read_test_and_set().to_string(), "read+test-and-set");
  EXPECT_EQ(Model::test_and_flip().to_string(), "test-and-flip");
  EXPECT_EQ((Model{BitOp::Read}).to_string(), "{read}");
}

TEST(Model, MaskRoundTrip) {
  for (int mask = 0; mask < 256; ++mask) {
    const Model m = Model::from_mask(static_cast<std::uint8_t>(mask));
    EXPECT_EQ(m.mask(), static_cast<std::uint8_t>(mask));
  }
}

}  // namespace
}  // namespace cfc
