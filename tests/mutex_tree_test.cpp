// Theorem 3 and the tournament constructions: measured contention-free
// complexities match the 7*ceil(log n / l) / 3*ceil(log n / l) formulas.
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "core/bounds.h"
#include "mutex/lamport_tree.h"
#include "sched/sched.h"
#include "mutex/tournament.h"

namespace cfc {
namespace {

struct TreeParam {
  int n;
  int l;
};

class Theorem3PaperArity : public ::testing::TestWithParam<TreeParam> {};

// With the paper-literal arity 2^l, depth is exactly ceil(log2 n / l) and
// the measured contention-free complexities equal the theorem's formulas.
TEST_P(Theorem3PaperArity, MatchesFormulaExactly) {
  const auto [n, l] = GetParam();
  const MutexCfResult r = measure_mutex_contention_free(
      theorem3_factory(l, TreeArity::PaperLiteral), n,
      AccessPolicy::RegistersOnly);
  EXPECT_EQ(r.session.steps,
            bounds::thm3_cf_step_upper(static_cast<std::uint64_t>(n), l))
      << "n=" << n << " l=" << l;
  EXPECT_EQ(r.session.registers,
            bounds::thm3_cf_register_upper(static_cast<std::uint64_t>(n), l))
      << "n=" << n << " l=" << l;
  // Paper-literal arity pays one extra bit of atomicity for the y sentinel.
  EXPECT_EQ(r.measured_atomicity, l + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem3PaperArity,
    ::testing::Values(TreeParam{4, 1}, TreeParam{4, 2}, TreeParam{8, 1},
                      TreeParam{8, 3}, TreeParam{16, 2}, TreeParam{16, 4},
                      TreeParam{64, 2}, TreeParam{64, 3}, TreeParam{64, 6},
                      TreeParam{100, 2}, TreeParam{256, 4},
                      TreeParam{1024, 5}),
    [](const ::testing::TestParamInfo<TreeParam>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_l" +
             std::to_string(pinfo.param.l);
    });

class Theorem3ExactAtomicity : public ::testing::TestWithParam<TreeParam> {};

// With arity 2^l - 1 the atomicity is exactly l and the complexities stay
// within the theorem's bounds computed at the *effective* chunk size
// (log2(2^l - 1) rounds to l only for l >= 2 and slightly deeper trees).
TEST_P(Theorem3ExactAtomicity, AtomicityExactAndWithinConstantFactor) {
  const auto [n, l] = GetParam();
  const MutexCfResult r = measure_mutex_contention_free(
      theorem3_factory(l, TreeArity::ExactAtomicity), n,
      AccessPolicy::RegistersOnly);
  EXPECT_LE(r.measured_atomicity, l);
  // Depth with arity k = 2^l - 1 is at most one level deeper than
  // ceil(log n / l) for the sweep's parameters.
  const int paper_steps =
      bounds::thm3_cf_step_upper(static_cast<std::uint64_t>(n), l);
  const int paper_regs =
      bounds::thm3_cf_register_upper(static_cast<std::uint64_t>(n), l);
  EXPECT_GE(r.session.steps, paper_steps > 7 ? 7 : paper_steps / 7);
  EXPECT_LE(r.session.steps, paper_steps + 2 * 7);
  EXPECT_LE(r.session.registers, paper_regs + 2 * 3);
  // Lower bounds still hold, of course.
  EXPECT_GT(r.session.steps, bounds::thm1_cf_step_lower(
                                 static_cast<double>(n), r.measured_atomicity));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem3ExactAtomicity,
    ::testing::Values(TreeParam{4, 2}, TreeParam{8, 2}, TreeParam{16, 3},
                      TreeParam{64, 3}, TreeParam{256, 4}, TreeParam{256, 8},
                      TreeParam{1024, 4}),
    [](const ::testing::TestParamInfo<TreeParam>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_l" +
             std::to_string(pinfo.param.l);
    });

// l = 1 (all registers are bits): the Peterson tournament stands in, with
// 4/3 constants per level — within the theorem's 7/3 claim.
TEST(Theorem3, AtomicityOneUsesBitTournament) {
  for (int n : {2, 4, 8, 32, 128}) {
    const MutexCfResult r = measure_mutex_contention_free(
        theorem3_factory(1), n, AccessPolicy::RegistersOnly);
    const int depth = bounds::ceil_log2(static_cast<std::uint64_t>(
        n < 2 ? 2 : n));
    EXPECT_EQ(r.measured_atomicity, 1) << "n=" << n;
    EXPECT_EQ(r.session.steps, 4 * depth) << "n=" << n;
    EXPECT_EQ(r.session.registers, 3 * depth) << "n=" << n;
    EXPECT_LE(r.session.steps,
              bounds::thm3_cf_step_upper(static_cast<std::uint64_t>(n), 1));
    EXPECT_LE(r.session.registers, bounds::thm3_cf_register_upper(
                                       static_cast<std::uint64_t>(n), 1));
  }
}

// Kessels tournament: the paper's worst-case register complexity row — all
// bits, O(log n) registers along any run.
TEST(KesselsTree, ContentionFreePerLevelConstants) {
  for (int n : {2, 4, 16, 64}) {
    const MutexCfResult r = measure_mutex_contention_free(
        TournamentMutex::kessels_tree(), n, AccessPolicy::RegistersOnly);
    const int depth =
        bounds::ceil_log2(static_cast<std::uint64_t>(n < 2 ? 2 : n));
    EXPECT_EQ(r.session.steps, 5 * depth) << "n=" << n;
    EXPECT_EQ(r.session.registers, 4 * depth) << "n=" << n;
    EXPECT_EQ(r.measured_atomicity, 1) << "n=" << n;
  }
}

// The tree algorithms have every process pay the same contention-free cost
// (full-path traversal), regardless of which leaf it starts at.
TEST(LamportTree, UniformCostAcrossProcesses) {
  const int n = 27;
  const int l = 2;  // arity 3
  for (Pid pid = 0; pid < n; pid += 5) {
    Sim sim;
    auto alg = setup_mutex(sim, LamportTree::factory(l), n, 1);
    SoloScheduler solo(pid);
    drive(sim, solo);
    const auto windows = contention_free_sessions(sim.trace(), pid, n);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(measure(sim.trace(), pid, windows[0]).steps, 7 * 3)
        << "pid=" << pid;  // depth 3 = ceil(log_3 27)
  }
}

TEST(LamportTree, DepthAndArityAccessors) {
  Sim sim;
  LamportTree tree(sim.memory(), 100, 3, TreeArity::ExactAtomicity);
  EXPECT_EQ(tree.arity(), 7);
  EXPECT_EQ(tree.depth(), 3);  // 7^3 = 343 >= 100 > 49
  EXPECT_EQ(tree.atomicity(), 3);

  Sim sim2;
  LamportTree paper(sim2.memory(), 100, 3, TreeArity::PaperLiteral);
  EXPECT_EQ(paper.arity(), 8);
  EXPECT_EQ(paper.depth(), 3);  // 8^3 >= 100 > 64... no: 8^2=64 < 100
  EXPECT_EQ(paper.atomicity(), 4);
}

TEST(LamportTree, RejectsAtomicityOneWithExactPolicy) {
  Sim sim;
  EXPECT_THROW(LamportTree(sim.memory(), 8, 1, TreeArity::ExactAtomicity),
               std::invalid_argument);
}

// Theorem 3's depth claim for the paper arity: ceil(log2(n)/l) exactly.
TEST(LamportTree, PaperArityDepthFormula) {
  for (int n : {2, 4, 16, 64, 100, 1000}) {
    for (int l : {1, 2, 3, 5}) {
      Sim sim;
      LamportTree tree(sim.memory(), n, l, TreeArity::PaperLiteral);
      EXPECT_EQ(tree.depth(),
                bounds::ceil_div(
                    bounds::ceil_log2(static_cast<std::uint64_t>(n)), l))
          << "n=" << n << " l=" << l;
    }
  }
}

}  // namespace
}  // namespace cfc
