// The all-models census — the paper's "exercise for the reader" made
// executable: solvability classification of all 256 bit-operation models
// and measured bounds for the solvable ones, with duality as a hard
// symmetry check.
#include <gtest/gtest.h>

#include "analysis/model_census.h"
#include "core/adversary.h"
#include "core/bounds.h"
#include "naming/checkers.h"
#include "naming/dual_scan.h"
#include "sched/sched.h"

namespace cfc {
namespace {

TEST(Solvability, ExactlyModelsWithAValueReturningModifierAreSolvable) {
  int solvable = 0;
  for (int mask = 0; mask < 256; ++mask) {
    const Model m = Model::from_mask(static_cast<std::uint8_t>(mask));
    const bool expect = m.supports(BitOp::TestAndSet) ||
                        m.supports(BitOp::TestAndReset) ||
                        m.supports(BitOp::TestAndFlip);
    EXPECT_EQ(naming_solvable(m), expect) << m.to_string();
    solvable += naming_solvable(m) ? 1 : 0;
  }
  // 2^8 minus the 2^5 masks over {skip, read, write-0, write-1, flip}.
  EXPECT_EQ(solvable, 256 - 32);
}

TEST(Solvability, SolvabilityIsDualInvariant) {
  for (int mask = 0; mask < 256; ++mask) {
    const Model m = Model::from_mask(static_cast<std::uint8_t>(mask));
    EXPECT_EQ(naming_solvable(m), naming_solvable(m.dual_model()))
        << m.to_string();
  }
}

// The negative direction, executed: in a model without tas/tar/taf, the
// lockstep adversary keeps identical processes identical through any op —
// writes and flips return nothing; reads return the same value to all.
TEST(Solvability, LockstepNeverSplitsGroupsWithoutRmwOps) {
  // A protocol over {read, write-1, flip} that tries hard to diverge.
  Sim sim;
  sim.set_model(Model{BitOp::Read, BitOp::Write1, BitOp::Flip});
  const RegId a = sim.memory().add_bit("a");
  const RegId b = sim.memory().add_bit("b");
  std::vector<Pid> group;
  for (int i = 0; i < 6; ++i) {
    group.push_back(sim.spawn(
        "p" + std::to_string(i), [a, b](ProcessContext& ctx) -> Task<void> {
          ctx.set_section(Section::Working);
          co_await ctx.op(BitOp::Write1, a);
          const Value v1 = co_await ctx.op(BitOp::Read, a);
          co_await ctx.op(BitOp::Flip, b);
          const Value v2 = co_await ctx.op(BitOp::Read, b);
          ctx.set_output(static_cast<int>(v1 * 2 + v2));
          ctx.set_section(Section::Done);
        }));
  }
  const LockstepResult res = lockstep_symmetry_adversary(sim, group);
  // Everyone stayed identical and decided together: duplicate outputs.
  EXPECT_TRUE(res.identical_group_terminated);
}

// --- Dual algorithms behave exactly like their originals. ---

TEST(DualAlgorithms, TarScanMirrorsTasScan) {
  for (int n : {2, 8, 16}) {
    const NamingRunCheck check = run_naming_sequential(TarScan::factory(), n);
    ASSERT_TRUE(check.ok());
    // Sequential: process i claims name i+1, exactly like tas-scan.
    for (std::size_t i = 0; i < check.names.size(); ++i) {
      EXPECT_EQ(check.names[i], static_cast<int>(i) + 1);
    }
  }
}

TEST(DualAlgorithms, TarScanUniqueUnderRandomSchedules) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    EXPECT_TRUE(run_naming_random(TarScan::factory(), 12, seed).ok());
    EXPECT_TRUE(run_naming_random(TarReadSearch::factory(), 12, seed).ok());
  }
}

TEST(DualAlgorithms, TarReadSearchLogarithmicContentionFree) {
  for (int n : {8, 64, 256}) {
    const NamingRunCheck check =
        run_naming_sequential(TarReadSearch::factory(), n);
    ASSERT_TRUE(check.ok());
    const int expect =
        bounds::ceil_log2(static_cast<std::uint64_t>(n - 1)) + 1;
    for (const ComplexityReport& rep : check.per_process) {
      EXPECT_LE(rep.steps, expect) << "n=" << n;
    }
  }
}

// --- The census itself. ---

TEST(Census, DualModelsGetIdenticalCells) {
  const auto census = run_model_census(8, {1, 2, 3});
  for (const ModelCensusEntry& e : census) {
    const Model dual = e.model.dual_model();
    const ModelCensusEntry& de = census[dual.mask()];
    ASSERT_EQ(e.solvable, de.solvable) << e.model.to_string();
    if (e.cells.has_value()) {
      ASSERT_TRUE(de.cells.has_value());
      EXPECT_EQ(e.cells->cf_register, de.cells->cf_register)
          << e.model.to_string();
      EXPECT_EQ(e.cells->cf_step, de.cells->cf_step) << e.model.to_string();
      EXPECT_EQ(e.cells->wc_register, de.cells->wc_register)
          << e.model.to_string();
      EXPECT_EQ(e.cells->wc_step, de.cells->wc_step) << e.model.to_string();
    }
  }
}

TEST(Census, PaperColumnsEmbedInTheCensus) {
  const int n = 8;
  const int log_n = 3;
  const auto census = run_model_census(n, {1, 2, 3});

  const auto& tas = census[Model::test_and_set().mask()];
  ASSERT_TRUE(tas.cells.has_value());
  EXPECT_EQ(tas.cells->wc_step, n - 1);
  EXPECT_EQ(tas.cells->cf_register, n - 1);

  const auto& taf = census[Model::test_and_flip().mask()];
  ASSERT_TRUE(taf.cells.has_value());
  EXPECT_EQ(taf.cells->wc_step, log_n);
  EXPECT_EQ(taf.cells->cf_register, log_n);

  const auto& rmw = census[Model::rmw().mask()];
  ASSERT_TRUE(rmw.cells.has_value());
  EXPECT_EQ(rmw.cells->wc_step, log_n);
}

TEST(Census, MonotoneInTheModelLattice) {
  // Adding operations can only improve (not worsen) each best-cell value.
  const auto census = run_model_census(8, {1, 2});
  for (int mask = 0; mask < 256; ++mask) {
    const ModelCensusEntry& e = census[static_cast<std::size_t>(mask)];
    if (!e.cells.has_value()) {
      continue;
    }
    for (BitOp op : kAllBitOps) {
      const Model bigger = e.model.with(op);
      const ModelCensusEntry& be = census[bigger.mask()];
      ASSERT_TRUE(be.cells.has_value());
      EXPECT_LE(be.cells->cf_step, e.cells->cf_step) << e.model.to_string();
      EXPECT_LE(be.cells->wc_step, e.cells->wc_step) << e.model.to_string();
      EXPECT_LE(be.cells->cf_register, e.cells->cf_register)
          << e.model.to_string();
      EXPECT_LE(be.cells->wc_register, e.cells->wc_register)
          << e.model.to_string();
    }
  }
}

TEST(Census, SummaryCounts) {
  const int n = 8;
  const auto census = run_model_census(n, {1, 2});
  const CensusSummary s = summarize(census, n);
  EXPECT_EQ(s.total, 256);
  EXPECT_EQ(s.solvable, 224);
  // taf-containing models (128 of them) are all-log-n; so are {tas,tar}
  // models with enough support. At least the 128.
  EXPECT_GE(s.all_log_n, 128);
  // Models with exactly one of tas/tar and nothing else useful sit at n-1
  // across the board.
  EXPECT_GE(s.all_n_minus_1, 2);
  EXPECT_EQ(s.all_n_minus_1 + s.all_log_n + s.solvable - s.solvable,
            s.all_n_minus_1 + s.all_log_n);  // disjoint categories sanity
  EXPECT_LE(s.all_n_minus_1 + s.all_log_n, s.solvable);
}

}  // namespace
}  // namespace cfc
