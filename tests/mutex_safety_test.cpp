// Safety (mutual exclusion) and liveness (deadlock freedom) property tests
// for every mutex algorithm, via preemption-bounded systematic exploration
// and seeded random schedules. The simulator throws on any state with two
// processes in their critical sections.
#include <gtest/gtest.h>

#include "mutex/checkers.h"
#include "sched/sched.h"
#include "mutex/kessels.h"
#include "mutex/lamport_fast.h"
#include "mutex/lamport_tree.h"
#include "mutex/peterson.h"
#include "mutex/tas_lock.h"
#include "mutex/tournament.h"

namespace cfc {
namespace {

struct AlgCase {
  const char* name;
  MutexFactory factory;
  int max_n;
};

std::vector<AlgCase> all_algorithms() {
  return {
      {"peterson", Peterson::factory(), 2},
      {"kessels", Kessels::factory(), 2},
      {"lamport", LamportFast::factory(), 64},
      {"peterson-tree", TournamentMutex::peterson_tree(), 64},
      {"kessels-tree", TournamentMutex::kessels_tree(), 64},
      {"lamport-tree-l2", theorem3_factory(2), 64},
      {"lamport-tree-l3-paper", theorem3_factory(3, TreeArity::PaperLiteral),
       64},
      {"tas-lock", TasLock::factory(), 64},
  };
}

class MutexSafety : public ::testing::TestWithParam<int> {};

TEST_P(MutexSafety, TwoProcessBoundedPreemptionExploration) {
  const auto algs = all_algorithms();
  const AlgCase& alg = algs[static_cast<std::size_t>(GetParam())];
  const ExplorationResult res = explore_bounded_preemption(
      alg.factory, /*n=*/2, /*sessions=*/1, /*max_segments=*/4,
      /*max_segment_len=*/6);
  EXPECT_EQ(res.violations, 0u) << alg.name;
  EXPECT_EQ(res.incomplete_runs, 0u) << alg.name;
  EXPECT_GT(res.plans_run, 1000u);
}

TEST_P(MutexSafety, ThreeProcessBoundedPreemptionExploration) {
  const auto algs = all_algorithms();
  const AlgCase& alg = algs[static_cast<std::size_t>(GetParam())];
  if (alg.max_n < 3) {
    GTEST_SKIP() << alg.name << " supports only 2 processes";
  }
  const ExplorationResult res = explore_bounded_preemption(
      alg.factory, /*n=*/3, /*sessions=*/1, /*max_segments=*/3,
      /*max_segment_len=*/5);
  EXPECT_EQ(res.violations, 0u) << alg.name;
  EXPECT_EQ(res.incomplete_runs, 0u) << alg.name;
}

TEST_P(MutexSafety, RandomSchedulesManySeeds) {
  const auto algs = all_algorithms();
  const AlgCase& alg = algs[static_cast<std::size_t>(GetParam())];
  const int n = std::min(alg.max_n, 5);
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Sim sim;
    auto a = setup_mutex(sim, alg.factory, n, /*sessions=*/2);
    RandomScheduler rnd(seed);
    // The ME invariant check throws on violation.
    EXPECT_NO_THROW(drive(sim, rnd, RunLimits{500'000})) << alg.name;
  }
}

TEST_P(MutexSafety, DeadlockFreeUnderFairSchedules) {
  const auto algs = all_algorithms();
  const AlgCase& alg = algs[static_cast<std::size_t>(GetParam())];
  const int n = std::min(alg.max_n, 4);
  EXPECT_TRUE(deadlock_free_under_fair_schedules(
      alg.factory, n, /*sessions=*/3, {1, 2, 3, 4, 5, 6, 7, 8}))
      << alg.name;
}

TEST_P(MutexSafety, SoloSessionsComplete) {
  const auto algs = all_algorithms();
  const AlgCase& alg = algs[static_cast<std::size_t>(GetParam())];
  EXPECT_TRUE(completes_solo_sessions(alg.factory, std::min(alg.max_n, 8)))
      << alg.name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MutexSafety, ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           static const auto algs = all_algorithms();
                           std::string name =
                               algs[static_cast<std::size_t>(pinfo.param)]
                                   .name;
                           for (char& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

// Regression for a pitfall found while reproducing Theorem 3: the paper
// phrases the tree exit as "execute the exit code in all the nodes in its
// path from the leaf to the root". That order is safe for Lamport nodes
// (validated by the exploration above) but unsafe for Peterson nodes — a
// same-subtree successor reaches an upper node after the leaf release, and
// the exiting process's later release of the shared side erases the
// successor's intent flag. Random schedules find the double-CS reliably.
TEST(TournamentExitOrder, LeafToRootIsUnsafeForPetersonNodes) {
  int violations = 0;
  for (std::uint64_t seed = 0; seed < 40 && violations == 0; ++seed) {
    Sim sim;
    auto alg = setup_mutex(
        sim, TournamentMutex::peterson_tree(ReleaseOrder::LeafToRoot),
        /*n=*/5, /*sessions=*/2);
    RandomScheduler rnd(seed);
    try {
      drive(sim, rnd, RunLimits{500'000});
    } catch (const MutualExclusionViolation&) {
      violations += 1;
    }
  }
  EXPECT_GT(violations, 0);
}

// A deliberately broken "mutex" (no synchronization at all): the bounded
// preemption explorer must find the violation — evidence the checker works.
TEST(MutexSafetyChecker, CatchesBrokenAlgorithm) {
  class NoMutex final : public MutexAlgorithm {
   public:
    explicit NoMutex(RegisterFile& mem) { r_ = mem.add_bit("nomutex.r"); }
    Task<void> enter(ProcessContext& ctx, int) override {
      co_await ctx.read(r_);  // looks busy, guarantees nothing
    }
    Task<void> exit(ProcessContext& ctx, int) override {
      co_await ctx.read(r_);
    }
    Task<Value> try_enter(ProcessContext& ctx, int slot, RegId) override {
      co_await enter(ctx, slot);
      co_return 1;
    }
    [[nodiscard]] int capacity() const override { return 1 << 20; }
    [[nodiscard]] int atomicity() const override { return 1; }
    [[nodiscard]] std::string algorithm_name() const override {
      return "broken";
    }

   private:
    RegId r_;
  };
  MutexFactory broken = [](RegisterFile& mem, int) {
    return std::make_unique<NoMutex>(mem);
  };
  const ExplorationResult res =
      explore_bounded_preemption(broken, 2, 1, 2, 3);
  EXPECT_GT(res.violations, 0u);
}

}  // namespace
}  // namespace cfc
