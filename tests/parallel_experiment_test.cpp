// The parallel experiment engine: ExperimentRunner semantics (full
// coverage, caller participation, exception propagation, nesting) and the
// determinism contract — every experiment entry point must produce
// bit-identical reports on the thread pool and on the single-threaded
// reference engine.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/experiment_runner.h"
#include "analysis/model_census.h"
#include "analysis/naming_complexity.h"
#include "core/algorithm_registry.h"

namespace cfc {
namespace {

void expect_reports_equal(const ComplexityReport& a,
                          const ComplexityReport& b,
                          const std::string& what) {
  EXPECT_EQ(a.steps, b.steps) << what;
  EXPECT_EQ(a.registers, b.registers) << what;
  EXPECT_EQ(a.read_steps, b.read_steps) << what;
  EXPECT_EQ(a.write_steps, b.write_steps) << what;
  EXPECT_EQ(a.read_registers, b.read_registers) << what;
  EXPECT_EQ(a.write_registers, b.write_registers) << what;
  EXPECT_EQ(a.atomicity, b.atomicity) << what;
}

TEST(ExperimentRunner, RunsEveryIndexExactlyOnce) {
  ExperimentRunner pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ExperimentRunner, SingleThreadedRunsInline) {
  ExperimentRunner seq(1);
  EXPECT_EQ(seq.thread_count(), 1);
  std::vector<std::size_t> order;
  seq.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ExperimentRunner, PropagatesBodyExceptions) {
  ExperimentRunner pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) {
                            throw std::runtime_error("cell failure");
                          }
                        }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count += 1; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ExperimentRunner, NestedParallelForDoesNotDeadlock) {
  ExperimentRunner pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total += 1; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ExperimentRunner, ZeroCountIsANoop) {
  ExperimentRunner pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

// --- Determinism: pool results == single-threaded reference results. ---

TEST(ParallelDeterminism, MutexWorstCaseSearchIsThreadCountInvariant) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("kessels-tree").factory;
  WorstCaseSearchOptions options;
  options.strategy = SearchStrategy::Random;
  options.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  const MutexWcSearchResult a =
      search_mutex_worst_case(factory, 8, 2, options, &seq);
  const MutexWcSearchResult b =
      search_mutex_worst_case(factory, 8, 2, options, &pool);
  expect_reports_equal(a.entry, b.entry, "wc entry");
  expect_reports_equal(a.exit, b.exit, "wc exit");
  EXPECT_EQ(a.schedules_tried, b.schedules_tried);
}

TEST(ParallelDeterminism, MutexContentionFreeIsThreadCountInvariant) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("thm3-exact-l2").factory;
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  const MutexCfResult a = measure_mutex_contention_free(
      factory, 16, AccessPolicy::RegistersOnly, 0, &seq);
  const MutexCfResult b = measure_mutex_contention_free(
      factory, 16, AccessPolicy::RegistersOnly, 0, &pool);
  expect_reports_equal(a.session, b.session, "cf session");
  expect_reports_equal(a.entry, b.entry, "cf entry");
  expect_reports_equal(a.exit, b.exit, "cf exit");
  EXPECT_EQ(a.measured_atomicity, b.measured_atomicity);
}

TEST(ParallelDeterminism, DetectorSearchIsThreadCountInvariant) {
  // The historical round-robin + seeded-randoms battery, now a StudySpec
  // option (detector_battery; the deprecated seeds overload is gone per
  // the ROADMAP deprecation plan).
  const std::vector<std::uint64_t> seeds = {3, 1, 4, 1, 5};
  const StudySpec spec = StudySpec::of("splitter-tree-l2")
                             .kind(StudyKind::Detector)
                             .n(16)
                             .worst_case(SearchStrategy::Random)
                             .seeds(seeds)
                             .detector_battery();
  ExperimentRunner seq(1);
  ExperimentRunner pool(3);
  const StudyResult a = run_study(spec, &seq);
  const StudyResult b = run_study(spec, &pool);
  expect_reports_equal(a.wc, b.wc, "detector wc");
  EXPECT_EQ(a.schedules_tried, seeds.size() + 1);  // round-robin + seeds
  EXPECT_EQ(a.schedules_tried, b.schedules_tried);
  EXPECT_EQ(a.truncated, b.truncated);
  const DetectorFactory factory =
      AlgorithmRegistry::instance().detector("splitter-tree-l2").factory;
  expect_reports_equal(
      measure_detector_contention_free(factory, 16, &seq),
      measure_detector_contention_free(factory, 16, &pool), "detector cf");
}

TEST(ParallelDeterminism, NamingMeasurementIsThreadCountInvariant) {
  const NamingFactory factory =
      AlgorithmRegistry::instance().naming("tas-read-search").factory;
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  const NamingAlgMeasurement a = measure_naming(factory, 16, {1, 2, 3}, &seq);
  const NamingAlgMeasurement b =
      measure_naming(factory, 16, {1, 2, 3}, &pool);
  EXPECT_EQ(a.name, b.name);
  expect_reports_equal(a.cf, b.cf, "naming cf");
  expect_reports_equal(a.wc, b.wc, "naming wc");
}

TEST(ParallelDeterminism, ModelCensusIsThreadCountInvariant) {
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  const auto a = run_model_census(8, {1, 2}, &seq);
  const auto b = run_model_census(8, {1, 2}, &pool);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].solvable, b[i].solvable) << i;
    EXPECT_EQ(a[i].algorithms_used, b[i].algorithms_used) << i;
    ASSERT_EQ(a[i].cells.has_value(), b[i].cells.has_value()) << i;
    if (a[i].cells.has_value()) {
      EXPECT_EQ(a[i].cells->cf_step, b[i].cells->cf_step) << i;
      EXPECT_EQ(a[i].cells->cf_register, b[i].cells->cf_register) << i;
      EXPECT_EQ(a[i].cells->wc_step, b[i].cells->wc_step) << i;
      EXPECT_EQ(a[i].cells->wc_register, b[i].cells->wc_register) << i;
    }
  }
}

TEST(ParallelDeterminism, ErrorsSurfaceThroughThePool) {
  // A broken detector must produce the documented logic_error through the
  // parallel engine, not a hang or a silent wrong answer.
  class Defeatist final : public Detector {
   public:
    explicit Defeatist(RegisterFile& mem) { r_ = mem.add_bit("d.r"); }
    Task<void> detect(ProcessContext& ctx, int) override {
      co_await ctx.read(r_);
      ctx.set_output(0);
    }
    [[nodiscard]] int capacity() const override { return 8; }
    [[nodiscard]] int atomicity() const override { return 1; }
    [[nodiscard]] std::string algorithm_name() const override {
      return "defeatist";
    }

   private:
    RegId r_;
  };
  const DetectorFactory factory = [](RegisterFile& mem, int) {
    return std::make_unique<Defeatist>(mem);
  };
  ExperimentRunner pool(4);
  EXPECT_THROW((void)measure_detector_contention_free(factory, 8, &pool),
               std::logic_error);
}

}  // namespace
}  // namespace cfc
