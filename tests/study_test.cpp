// The unified Study/Campaign engine: differential equivalence against the
// legacy per-problem drivers (which now forward here — plus an independent
// from-first-principles reference), campaign dedup/interleaving semantics,
// thread-count invariance down to byte-identical canonical JSON, and the
// repaired detector legacy-overload result type.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/naming_complexity.h"
#include "analysis/study.h"
#include "core/algorithm_registry.h"
#include "core/streaming_measures.h"
#include "sched/sched.h"

namespace cfc {
namespace {

void expect_reports_equal(const ComplexityReport& a,
                          const ComplexityReport& b,
                          const std::string& what) {
  EXPECT_EQ(a.steps, b.steps) << what;
  EXPECT_EQ(a.registers, b.registers) << what;
  EXPECT_EQ(a.read_steps, b.read_steps) << what;
  EXPECT_EQ(a.write_steps, b.write_steps) << what;
  EXPECT_EQ(a.read_registers, b.read_registers) << what;
  EXPECT_EQ(a.write_registers, b.write_registers) << what;
  EXPECT_EQ(a.atomicity, b.atomicity) << what;
  EXPECT_EQ(a.truncated, b.truncated) << what;
}

// --- Differential: the study path reproduces an independent
// from-first-principles measurement (solo runs + streaming accumulator,
// written out longhand here, no shared engine code). ---

TEST(StudyDifferential, MutexCfMatchesFirstPrinciplesReference) {
  const MutexFactory make =
      AlgorithmRegistry::instance().mutex("lamport-fast").factory;
  const int n = 8;

  ComplexityReport ref_session;
  ComplexityReport ref_entry;
  ComplexityReport ref_exit;
  for (Pid pid = 0; pid < n; ++pid) {
    Sim sim;
    sim.set_access_policy(AccessPolicy::RegistersOnly);
    MeasureAccumulator acc(n);
    sim.add_sink(acc);
    auto alg = setup_mutex(sim, make, n, 1);
    SoloScheduler solo(pid);
    // A solo run ends with SchedulerStopped (the other processes never
    // start); only budget exhaustion signals failure.
    ASSERT_NE(drive(sim, solo), RunOutcome::BudgetExhausted);
    ref_session = ref_session.max_with(acc.contention_free_session_max(pid));
    ref_entry = ref_entry.max_with(acc.clean_entry_max(pid));
    ref_exit = ref_exit.max_with(acc.exit_max(pid));
  }

  const StudyResult r = run_study(StudySpec::of("lamport-fast")
                                      .kind(StudyKind::Mutex)
                                      .n(n)
                                      .policy(AccessPolicy::RegistersOnly)
                                      .contention_free());
  ASSERT_TRUE(r.has_cf);
  EXPECT_FALSE(r.has_wc);
  expect_reports_equal(r.cf, ref_session, "session");
  expect_reports_equal(r.cf_entry, ref_entry, "entry");
  expect_reports_equal(r.cf_exit, ref_exit, "exit");
  EXPECT_EQ(r.subject, "lamport-fast");
}

// --- Differential: the legacy adapters and the study path agree bit for
// bit on every kind (same seeds, any thread count). ---

TEST(StudyDifferential, LegacyDriversMatchStudyPath) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
  ExperimentRunner seq(1);
  ExperimentRunner pool(4);

  for (ExperimentRunner* runner : {&seq, &pool}) {
    // Mutex cf.
    const MutexFactory kessels = registry.mutex("kessels-tree").factory;
    const MutexCfResult legacy_cf = measure_mutex_contention_free(
        kessels, 8, AccessPolicy::RegistersOnly, 0, runner);
    const StudyResult study_cf =
        run_study(StudySpec::of("kessels-tree")
                      .kind(StudyKind::Mutex)
                      .n(8)
                      .policy(AccessPolicy::RegistersOnly)
                      .contention_free(),
                  runner);
    expect_reports_equal(legacy_cf.session, study_cf.cf, "mutex cf");
    expect_reports_equal(legacy_cf.entry, study_cf.cf_entry, "mutex entry");
    expect_reports_equal(legacy_cf.exit, study_cf.cf_exit, "mutex exit");
    EXPECT_EQ(legacy_cf.measured_atomicity, study_cf.measured_atomicity);

    // Mutex wc (exhaustive, certified).
    WorstCaseSearchOptions exhaustive;
    exhaustive.strategy = SearchStrategy::Exhaustive;
    exhaustive.limits.max_depth = 14;
    const MutexFactory peterson = registry.mutex("peterson-2p").factory;
    const MutexWcSearchResult legacy_wc =
        search_mutex_worst_case(peterson, 2, 1, exhaustive, runner);
    const StudyResult study_wc = run_study(StudySpec::of("peterson-2p")
                                               .kind(StudyKind::Mutex)
                                               .n(2)
                                               .worst_case(exhaustive),
                                           runner);
    expect_reports_equal(legacy_wc.entry, study_wc.wc_entry, "wc entry");
    expect_reports_equal(legacy_wc.exit, study_wc.wc_exit, "wc exit");
    EXPECT_EQ(legacy_wc.schedules_tried, study_wc.schedules_tried);
    EXPECT_EQ(legacy_wc.states_visited, study_wc.states_visited);
    EXPECT_EQ(legacy_wc.violations, study_wc.violations);
    EXPECT_EQ(legacy_wc.certified, study_wc.certified);

    // Naming battery.
    const NamingFactory taf = registry.naming("taf-tree").factory;
    const NamingAlgMeasurement legacy_naming =
        measure_naming(taf, 8, {1, 2, 3}, runner);
    const StudyResult study_naming = run_study(StudySpec::of("taf-tree")
                                                   .kind(StudyKind::Naming)
                                                   .n(8)
                                                   .contention_free()
                                                   .worst_case()
                                                   .seeds({1, 2, 3}),
                                               runner);
    EXPECT_EQ(legacy_naming.name, study_naming.subject);
    expect_reports_equal(legacy_naming.cf, study_naming.cf, "naming cf");
    expect_reports_equal(legacy_naming.wc, study_naming.wc, "naming wc");

    // Detector cf + wc.
    const DetectorFactory splitter =
        registry.detector("splitter-tree-l2").factory;
    const ComplexityReport legacy_dcf =
        measure_detector_contention_free(splitter, 8, runner);
    WorstCaseSearchOptions random;
    random.strategy = SearchStrategy::Random;
    random.seeds = {1, 2, 3, 4};
    const DetectorWcSearchResult legacy_dwc =
        search_detector_worst_case(splitter, 8, random, runner);
    const StudyResult study_detector =
        run_study(StudySpec::of("splitter-tree-l2")
                      .kind(StudyKind::Detector)
                      .n(8)
                      .contention_free()
                      .worst_case(random),
                  runner);
    expect_reports_equal(legacy_dcf, study_detector.cf, "detector cf");
    expect_reports_equal(legacy_dwc.best, study_detector.wc, "detector wc");
    EXPECT_EQ(legacy_dwc.schedules_tried, study_detector.schedules_tried);
    EXPECT_EQ(legacy_dwc.truncated, study_detector.truncated);
  }
}

// --- Campaign semantics. ---

TEST(Campaign, BatchedResultsEqualIndividualRuns) {
  // One mixed-kind campaign (cells interleaved, shared flat grid) must
  // reproduce the one-spec-at-a-time results exactly.
  const std::vector<StudySpec> specs = {
      StudySpec::of("lamport-fast")
          .kind(StudyKind::Mutex)
          .n(4)
          .policy(AccessPolicy::RegistersOnly)
          .contention_free(),
      StudySpec::of("tas-scan")
          .kind(StudyKind::Naming)
          .n(8)
          .contention_free()
          .worst_case()
          .seeds({1, 2}),
      StudySpec::of("splitter-tree-l2")
          .kind(StudyKind::Detector)
          .n(4)
          .contention_free(),
  };
  Campaign campaign;
  campaign.add(specs);
  const std::vector<StudyResult> batched = campaign.run();
  ASSERT_EQ(batched.size(), specs.size());

  const StudyJsonOptions no_timing{.include_timing = false};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const StudyResult single = run_study(specs[i]);
    EXPECT_EQ(to_json(batched[i], no_timing), to_json(single, no_timing))
        << "spec " << i;
  }
}

TEST(Campaign, DeduplicatesIdenticalRegistryMeasurements) {
  const StudySpec spec = StudySpec::of("lamport-fast")
                             .kind(StudyKind::Mutex)
                             .n(4)
                             .policy(AccessPolicy::RegistersOnly)
                             .contention_free();
  Campaign campaign;
  campaign.add(spec);
  campaign.add(spec);  // identical request: must share the task
  // A third spec differing only in sample normalization (sample_pids=0 and
  // sample_pids=n measure the same pids) also dedups.
  StudySpec normalized = spec;
  normalized.sample_pids(4);
  campaign.add(normalized);

  CampaignStats stats;
  const std::vector<StudyResult> results = campaign.run(nullptr, &stats);
  EXPECT_EQ(stats.specs, 3u);
  EXPECT_EQ(stats.tasks_planned, 1u);
  EXPECT_EQ(stats.tasks_deduplicated, 2u);
  EXPECT_EQ(stats.cells, 4u);  // one solo run per pid, shared by all specs

  const StudyJsonOptions no_timing{.include_timing = false};
  EXPECT_EQ(to_json(results[0], no_timing), to_json(results[1], no_timing));
  EXPECT_EQ(to_json(results[0], no_timing), to_json(results[2], no_timing));
}

TEST(Campaign, AdhocFactoriesAreNeverDeduplicated) {
  const MutexFactory lamport =
      AlgorithmRegistry::instance().mutex("lamport-fast").factory;
  StudySpec adhoc = StudySpec::of("custom-label")
                        .kind(StudyKind::Mutex)
                        .n(2)
                        .contention_free();
  adhoc.factory(lamport);
  Campaign campaign;
  campaign.add(adhoc);
  campaign.add(adhoc);
  CampaignStats stats;
  const std::vector<StudyResult> results = campaign.run(nullptr, &stats);
  EXPECT_EQ(stats.tasks_planned, 2u);
  EXPECT_EQ(stats.tasks_deduplicated, 0u);
  EXPECT_EQ(results[0].subject, "custom-label");
}

TEST(Campaign, ThreadCountsProduceByteIdenticalJson) {
  // The acceptance bar: a mixed campaign serialized canonically (timing
  // excluded) is byte-identical between the sequential reference engine
  // and a thread pool.
  Campaign campaign;
  campaign.add(StudySpec::of("kessels-tree")
                   .kind(StudyKind::Mutex)
                   .n(8)
                   .policy(AccessPolicy::RegistersOnly)
                   .contention_free()
                   .worst_case(SearchStrategy::Random)
                   .seeds({1, 2, 3, 4}));
  campaign.add(StudySpec::of("tas-read-search")
                   .kind(StudyKind::Naming)
                   .n(16)
                   .contention_free()
                   .worst_case()
                   .seeds({1, 2, 3}));
  campaign.add(StudySpec::of("splitter-tree-l2")
                   .kind(StudyKind::Detector)
                   .n(8)
                   .contention_free()
                   .worst_case(SearchStrategy::Random)
                   .seeds({5, 6}));

  ExperimentRunner seq(1);
  ExperimentRunner pool(4);
  const std::vector<StudyResult> a = campaign.run(&seq);
  const std::vector<StudyResult> b = campaign.run(&pool);
  const StudyJsonOptions no_timing{.include_timing = false};
  EXPECT_EQ(to_json(a, no_timing), to_json(b, no_timing));
}

TEST(Campaign, NamingWcOnlyMasksContentionFree) {
  const StudyResult r = run_study(StudySpec::of("tas-scan")
                                      .kind(StudyKind::Naming)
                                      .n(8)
                                      .worst_case()
                                      .seeds({1}));
  EXPECT_TRUE(r.has_wc);
  EXPECT_FALSE(r.has_cf);
  EXPECT_EQ(r.cf.steps, 0);
  EXPECT_EQ(r.measured_atomicity, 0);
  EXPECT_GE(r.wc.steps, 7);  // n-1 for tas-scan
}

TEST(Campaign, ResolutionErrorsSurfaceOnTheCallingThread) {
  EXPECT_THROW(
      (void)run_study(
          StudySpec::of("no-such-algorithm").kind(StudyKind::Mutex).n(2)),
      std::out_of_range);
  // Capacity violation: peterson-2p at n=3.
  EXPECT_THROW((void)run_study(StudySpec::of("peterson-2p")
                                   .kind(StudyKind::Mutex)
                                   .n(3)
                                   .contention_free()),
               std::invalid_argument);
}

// --- The reduction policy at the study level. ---

TEST(StudyReduction, ExhaustiveDefaultsToSourceDporAndSurfacesCounters) {
  // StudySpec::worst_case(Exhaustive) selects the reduced certified
  // search; the reduction identity and counters surface in the result
  // (and its canonical JSON), and the certified values match the
  // unreduced tree's — the POR differential suite proves that wholesale,
  // this spot-checks the study integration.
  const StudyResult r = run_study(StudySpec::of("peterson-2p")
                                      .kind(StudyKind::Mutex)
                                      .n(2)
                                      .worst_case(SearchStrategy::Exhaustive)
                                      .depth(14));
  EXPECT_EQ(r.wc_reduction, ReductionPolicy::SourceDpor);
  EXPECT_TRUE(r.certified);
  EXPECT_GT(r.races_detected, 0u);
  EXPECT_GT(r.backtrack_points, 0u);
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"policy\": \"source-dpor\""), std::string::npos);

  const StudyResult off = run_study(StudySpec::of("peterson-2p")
                                        .kind(StudyKind::Mutex)
                                        .n(2)
                                        .worst_case(SearchStrategy::Exhaustive)
                                        .depth(14)
                                        .reduction(ReductionPolicy::Off));
  EXPECT_EQ(off.wc_reduction, ReductionPolicy::Off);
  EXPECT_EQ(off.races_detected, 0u);
  expect_reports_equal(r.wc_entry, off.wc_entry, "entry vs unreduced");
  expect_reports_equal(r.wc_exit, off.wc_exit, "exit vs unreduced");
  EXPECT_EQ(r.certified, off.certified);
  // Distinct reduction policies must not deduplicate into one task.
  Campaign campaign;
  campaign.add(StudySpec::of("peterson-2p")
                   .kind(StudyKind::Mutex)
                   .n(2)
                   .worst_case(SearchStrategy::Exhaustive)
                   .depth(14));
  campaign.add(StudySpec::of("peterson-2p")
                   .kind(StudyKind::Mutex)
                   .n(2)
                   .worst_case(SearchStrategy::Exhaustive)
                   .depth(14)
                   .reduction(ReductionPolicy::Off));
  CampaignStats stats;
  (void)campaign.run(nullptr, &stats);
  EXPECT_EQ(stats.tasks_planned, 2u);
  EXPECT_EQ(stats.tasks_deduplicated, 0u);

  // The fluent order must not matter: replacing the budget struct after
  // worst_case(Exhaustive) keeps the reduced default (a limits struct
  // naming no policy preserves the current one), while a struct that
  // names one wins.
  StudySpec reordered = StudySpec::of("peterson-2p")
                            .kind(StudyKind::Mutex)
                            .n(2)
                            .worst_case(SearchStrategy::Exhaustive);
  ExploreLimits budgets;
  budgets.max_depth = 14;
  reordered.limits(budgets);
  EXPECT_EQ(reordered.search.limits.reduction, ReductionPolicy::SourceDpor);
  EXPECT_EQ(reordered.search.limits.max_depth, 14);
  ExploreLimits lite;
  lite.reduce_independent = true;
  reordered.limits(lite);
  EXPECT_EQ(effective_reduction(reordered.search.limits),
            ReductionPolicy::SleepLite);
}

// --- The detector round-robin battery, folded into the StudySpec
// (ROADMAP deprecation-plan step 2: the deprecated seeds overload is
// deleted; this option is its replacement). ---

TEST(DetectorBattery, RoundRobinOptionReproducesTheLegacyBattery) {
  const std::vector<std::uint64_t> seeds = {1, 2, 3};
  const StudyResult r = run_study(StudySpec::of("splitter-tree-l2")
                                      .kind(StudyKind::Detector)
                                      .n(8)
                                      .worst_case(SearchStrategy::Random)
                                      .seeds(seeds)
                                      .detector_battery());
  EXPECT_GT(r.wc.steps, 0);
  EXPECT_EQ(r.schedules_tried, seeds.size() + 1);  // round-robin + seeds
  EXPECT_FALSE(r.truncated);   // splitter runs terminate within budget
  EXPECT_FALSE(r.certified);   // a sampled battery certifies nothing
  EXPECT_EQ(r.violations, 0u);

  // The battery's maximum dominates the plain Random study's (one more
  // schedule), and the round-robin cell is what the option adds: the
  // same spec without it tries exactly one fewer schedule.
  const StudyResult plain = run_study(StudySpec::of("splitter-tree-l2")
                                          .kind(StudyKind::Detector)
                                          .n(8)
                                          .worst_case(SearchStrategy::Random)
                                          .seeds(seeds));
  EXPECT_EQ(plain.schedules_tried + 1, r.schedules_tried);
  EXPECT_GE(r.wc.steps, plain.wc.steps);

  // Battery and non-battery specs must not deduplicate into one task.
  Campaign campaign;
  campaign.add(StudySpec::of("splitter-tree-l2")
                   .kind(StudyKind::Detector)
                   .n(8)
                   .worst_case(SearchStrategy::Random)
                   .seeds(seeds)
                   .detector_battery());
  campaign.add(StudySpec::of("splitter-tree-l2")
                   .kind(StudyKind::Detector)
                   .n(8)
                   .worst_case(SearchStrategy::Random)
                   .seeds(seeds));
  CampaignStats stats;
  const std::vector<StudyResult> results = campaign.run(nullptr, &stats);
  EXPECT_EQ(stats.tasks_planned, 2u);
  EXPECT_EQ(stats.tasks_deduplicated, 0u);
  EXPECT_EQ(results[0].schedules_tried, results[1].schedules_tried + 1);
}

}  // namespace
}  // namespace cfc
