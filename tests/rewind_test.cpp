// Recycled-rewind fidelity: Sim::rewind_to must reposition the LIVE
// simulation at any prefix of its own schedule log indistinguishably from
// Sim::fork of a checkpoint taken there — across every registry algorithm,
// including crash injection — and the Explorer's rewind restore path must
// produce bit-identical search results to the retained legacy
// fork-by-replay path, with zero Sim constructions per restore and frame
// recreation served entirely from the arena pool after warm-up.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "analysis/experiment.h"
#include "core/algorithm_registry.h"
#include "core/state_fingerprint.h"
#include "mutex/mutex_algorithm.h"
#include "sched/sched.h"

namespace cfc {
namespace {

struct CrashPlan {
  Pid pid;
  std::uint64_t after_accesses;
};

SimBuilder mutex_builder(const MutexFactory& factory, int n, int sessions,
                         std::vector<CrashPlan> crashes) {
  auto keep =
      std::make_shared<std::vector<std::unique_ptr<MutexAlgorithm>>>();
  return [factory, n, sessions, crashes, keep](Sim& sim) {
    keep->push_back(setup_mutex(sim, factory, n, sessions));
    for (const CrashPlan& c : crashes) {
      sim.crash_after(c.pid, c.after_accesses);
    }
  };
}

void expect_same_state(const Sim& a, const Sim& b) {
  ASSERT_EQ(a.process_count(), b.process_count());
  EXPECT_EQ(a.next_seq(), b.next_seq());
  EXPECT_EQ(a.memory().fingerprint(), b.memory().fingerprint());
  EXPECT_EQ(a.memory().snapshot(), b.memory().snapshot());
  EXPECT_EQ(state_fingerprint(a), state_fingerprint(b));
  for (Pid p = 0; p < a.process_count(); ++p) {
    EXPECT_EQ(a.status(p), b.status(p)) << "pid " << p;
    EXPECT_EQ(a.section(p), b.section(p)) << "pid " << p;
    EXPECT_EQ(a.output(p), b.output(p)) << "pid " << p;
    EXPECT_EQ(a.access_count(p), b.access_count(p)) << "pid " << p;
    EXPECT_EQ(a.process_digest(p), b.process_digest(p)) << "pid " << p;
  }
}

/// Runs a random schedule on a rewindable live sim, rewinds it to a
/// prefix, and differential-tests the result against a fork of the same
/// prefix — then drives both onward with identical schedulers and
/// compares again (the rewound sim must behave like the fork forever
/// after, crash plans included).
void rewind_and_compare(const MutexFactory& factory, int n,
                        const std::vector<CrashPlan>& crashes,
                        std::uint64_t seed) {
  const SimBuilder rebuild = mutex_builder(factory, n, 1, crashes);

  Sim live;
  rebuild(live);
  live.mark_rewind_base();
  RandomScheduler rnd(seed);
  drive(live, rnd, RunLimits{60});
  const std::size_t full_len = live.schedule_log().size();
  ASSERT_GT(full_len, 0u);
  const std::size_t prefix_len = full_len / 2;

  const std::unique_ptr<Sim> reference =
      Sim::fork(std::span(live.schedule_log().data(), prefix_len),
                /*expect_fingerprint=*/0, /*expect_seq=*/0, rebuild);
  live.rewind_to(prefix_len);
  ASSERT_EQ(live.schedule_log().size(), prefix_len);
  expect_same_state(live, *reference);

  RandomScheduler cont_a(seed + 17);
  RandomScheduler cont_b(seed + 17);
  drive(live, cont_a, RunLimits{40});
  drive(*reference, cont_b, RunLimits{40});
  expect_same_state(live, *reference);
}

TEST(Rewind, MatchesForkAcrossAllRegistryMutexAlgorithms) {
  for (const MutexAlgorithmEntry* e :
       AlgorithmRegistry::instance().mutex_for_n(2)) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(e->info.name);
      rewind_and_compare(e->factory, 2, {}, seed);
    }
  }
}

TEST(Rewind, MatchesForkUnderCrashInjection) {
  for (const MutexAlgorithmEntry* e :
       AlgorithmRegistry::instance().mutex_for_n(4)) {
    SCOPED_TRACE(e->info.name);
    rewind_and_compare(e->factory, 4, {{0, 3}, {2, 1}}, 5);
  }
}

TEST(Rewind, RewindToZeroAndFullLengthAreExact) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  const SimBuilder rebuild = mutex_builder(factory, 2, 1, {});
  Sim live;
  rebuild(live);
  live.mark_rewind_base();
  RandomScheduler rnd(9);
  drive(live, rnd, RunLimits{30});
  const std::size_t full_len = live.schedule_log().size();
  const std::uint64_t fp = live.memory().fingerprint();
  const Seq seq = live.next_seq();

  // Full-length rewind: a complete in-place re-execution of the same run.
  live.rewind_to(full_len, fp, seq);
  EXPECT_EQ(live.memory().fingerprint(), fp);
  EXPECT_EQ(live.next_seq(), seq);

  // Rewind to zero: back to the post-setup baseline.
  live.rewind_to(0);
  EXPECT_TRUE(live.schedule_log().empty());
  for (Pid p = 0; p < live.process_count(); ++p) {
    EXPECT_EQ(live.status(p), ProcStatus::NotStarted);
  }
}

TEST(Rewind, VerifiesFingerprintAndSeq) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  const SimBuilder rebuild = mutex_builder(factory, 2, 1, {});
  Sim live;
  rebuild(live);
  live.mark_rewind_base();
  RandomScheduler rnd(3);
  drive(live, rnd, RunLimits{20});
  const std::size_t len = live.schedule_log().size();
  const std::uint64_t fp = live.memory().fingerprint();
  const Seq seq = live.next_seq();

  live.rewind_to(len, fp, seq);  // correct expectation: accepted
  EXPECT_THROW(live.rewind_to(len, fp ^ 1, seq), std::logic_error);
}

TEST(Rewind, RequiresBaselineAndValidPrefix) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  const SimBuilder rebuild = mutex_builder(factory, 2, 1, {});
  Sim unmarked;
  rebuild(unmarked);
  EXPECT_THROW(unmarked.rewind_to(0), std::logic_error);

  Sim live;
  rebuild(live);
  live.mark_rewind_base();
  RandomScheduler rnd(4);
  drive(live, rnd, RunLimits{10});
  EXPECT_THROW(live.rewind_to(live.schedule_log().size() + 1),
               std::out_of_range);

  // The baseline must be captured before any unit executes.
  Sim late;
  rebuild(late);
  RandomScheduler rnd2(4);
  drive(late, rnd2, RunLimits{2});
  EXPECT_THROW(late.mark_rewind_base(), std::logic_error);
}

TEST(Rewind, FrameRecreationIsServedFromThePoolAfterWarmup) {
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("lamport-fast").factory;
  const SimBuilder rebuild = mutex_builder(factory, 3, 1, {});
  Sim live;
  rebuild(live);
  live.mark_rewind_base();
  RandomScheduler rnd(11);
  drive(live, rnd, RunLimits{40});
  const std::size_t len = live.schedule_log().size() / 2;

  live.rewind_to(len);  // warm-up: frees + recreates every frame once
  const std::uint64_t fresh_after_first = live.frame_arena_stats().fresh;
  ASSERT_GT(live.frame_arena_stats().reused + fresh_after_first, 0u);
  for (int i = 0; i < 5; ++i) {
    live.rewind_to(len);
  }
  // Identical replays recreate identical frames: all of them recycled,
  // zero fresh arena growth, zero heap fallbacks.
  EXPECT_EQ(live.frame_arena_stats().fresh, fresh_after_first);
  EXPECT_EQ(live.frame_arena_stats().fallback, 0u);
  EXPECT_GT(live.frame_arena_stats().reused, 0u);
}

/// The Explorer-level differential: identical traversal, reports, and
/// stats (except Sim constructions) between the recycled rewind and the
/// legacy fork-by-replay restore paths.
WorstCaseSearchOptions exhaustive_opts(int depth, bool by_fork,
                                       bool verify_snapshot = false) {
  WorstCaseSearchOptions o;
  o.strategy = SearchStrategy::Exhaustive;
  o.limits.max_depth = depth;
  o.limits.restore_by_fork = by_fork;
  o.limits.verify_restore_snapshot = verify_snapshot;
  // These are full-replay differentials: disable the mark-based partial
  // restore so replayed_steps stays comparable between the paths (the
  // mark path is differential-tested separately below).
  o.limits.restore_marks = false;
  return o;
}

void expect_same_report(const ComplexityReport& a, const ComplexityReport& b) {
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.registers, b.registers);
  EXPECT_EQ(a.read_steps, b.read_steps);
  EXPECT_EQ(a.write_steps, b.write_steps);
  EXPECT_EQ(a.read_registers, b.read_registers);
  EXPECT_EQ(a.write_registers, b.write_registers);
  EXPECT_EQ(a.atomicity, b.atomicity);
  EXPECT_EQ(a.truncated, b.truncated);
}

TEST(Rewind, ExplorerPathsBitIdenticalAcrossAllRegistryMutexAlgorithms) {
  for (const MutexAlgorithmEntry* e :
       AlgorithmRegistry::instance().mutex_for_n(2)) {
    SCOPED_TRACE(e->info.name);
    const MutexWcSearchResult rewind = search_mutex_worst_case(
        e->factory, 2, 1, exhaustive_opts(10, /*by_fork=*/false));
    const MutexWcSearchResult fork = search_mutex_worst_case(
        e->factory, 2, 1, exhaustive_opts(10, /*by_fork=*/true));
    expect_same_report(rewind.entry, fork.entry);
    expect_same_report(rewind.exit, fork.exit);
    EXPECT_EQ(rewind.schedules_tried, fork.schedules_tried);
    EXPECT_EQ(rewind.states_visited, fork.states_visited);
    EXPECT_EQ(rewind.violations, fork.violations);
    EXPECT_EQ(rewind.truncated, fork.truncated);
    EXPECT_EQ(rewind.certified, fork.certified);
  }
}

TEST(Rewind, ExplorerPathsBitIdenticalForDetectors) {
  for (const DetectorAlgorithmEntry* e :
       AlgorithmRegistry::instance().detector_algorithms()) {
    SCOPED_TRACE(e->info.name);
    const DetectorWcSearchResult rewind = search_detector_worst_case(
        e->factory, 2, exhaustive_opts(14, /*by_fork=*/false));
    const DetectorWcSearchResult fork = search_detector_worst_case(
        e->factory, 2, exhaustive_opts(14, /*by_fork=*/true));
    expect_same_report(rewind.best, fork.best);
    EXPECT_EQ(rewind.schedules_tried, fork.schedules_tried);
    EXPECT_EQ(rewind.states_visited, fork.states_visited);
    EXPECT_EQ(rewind.certified, fork.certified);
  }
}

TEST(Rewind, ExplorerPathsBitIdenticalUnderCrashInjection) {
  // Crash plans set at setup are part of the rewind baseline; both restore
  // paths must reproduce crashes identically mid-search.
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("lamport-fast").factory;
  auto run = [&](bool by_fork) {
    Explorer::Config cfg;
    cfg.nprocs = 2;
    cfg.strategy = SearchStrategy::Exhaustive;
    cfg.limits.max_depth = 12;
    cfg.limits.restore_by_fork = by_fork;
    cfg.limits.restore_marks = false;  // full-replay differential
    cfg.setup = [&factory](Sim& sim) -> std::shared_ptr<void> {
      auto alg = setup_mutex(sim, factory, 2, 1);
      sim.crash_after(1, 2);
      return std::shared_ptr<void>(std::move(alg));
    };
    return Explorer(cfg).run();
  };
  const Explorer::Result rewind = run(false);
  const Explorer::Result fork = run(true);
  EXPECT_EQ(rewind.stats.states_visited, fork.stats.states_visited);
  EXPECT_EQ(rewind.stats.runs_completed, fork.stats.runs_completed);
  EXPECT_EQ(rewind.stats.runs_truncated, fork.stats.runs_truncated);
  EXPECT_EQ(rewind.stats.pruned_visited, fork.stats.pruned_visited);
  EXPECT_EQ(rewind.stats.violations, fork.stats.violations);
  EXPECT_EQ(rewind.stats.restores, fork.stats.restores);
  EXPECT_EQ(rewind.stats.replayed_steps, fork.stats.replayed_steps);
}

TEST(Rewind, DebugSnapshotVerificationPasses) {
  // verify_restore_snapshot compares full register values on every
  // restore; on a deterministic setup it must change nothing.
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  const MutexWcSearchResult plain = search_mutex_worst_case(
      factory, 2, 1, exhaustive_opts(10, /*by_fork=*/false));
  const MutexWcSearchResult checked = search_mutex_worst_case(
      factory, 2, 1,
      exhaustive_opts(10, /*by_fork=*/false, /*verify_snapshot=*/true));
  expect_same_report(plain.entry, checked.entry);
  EXPECT_EQ(plain.states_visited, checked.states_visited);
}

TEST(Rewind, RestoresPerformZeroSimConstructions) {
  // The acceptance assertion: with the recycled rewind, Sim construction
  // count equals the frontier cell count no matter how many restores ran;
  // the legacy path builds one extra Sim per restore.
  WorstCaseSearchOptions rewind_opts = exhaustive_opts(14, false);
  WorstCaseSearchOptions fork_opts = exhaustive_opts(14, true);
  const MutexFactory factory =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  Explorer::Config cfg;
  cfg.nprocs = 2;
  cfg.strategy = SearchStrategy::Exhaustive;
  cfg.limits = rewind_opts.limits;
  cfg.setup = [&factory](Sim& sim) -> std::shared_ptr<void> {
    return setup_mutex(sim, factory, 2, 1);
  };
  const Explorer::Result rewind = Explorer(cfg).run();
  cfg.limits = fork_opts.limits;
  const Explorer::Result fork = Explorer(cfg).run();

  ASSERT_GT(rewind.stats.restores, 0u);
  EXPECT_EQ(rewind.stats.restores, fork.stats.restores);
  // One Sim per frontier cell — and not one more, however many restores
  // happened; the legacy path builds one extra per restore.
  const std::size_t cells =
      Explorer::frontier_cells(cfg.nprocs, rewind_opts.limits);
  EXPECT_EQ(rewind.stats.sims_built, cells);
  EXPECT_EQ(fork.stats.sims_built, cells + fork.stats.restores);
  EXPECT_GT(rewind.stats.replayed_steps, 0u);
  EXPECT_EQ(rewind.stats.replayed_steps, fork.stats.replayed_steps);
}

/// Mark-based partial restore, sim level: capture a RewindMark mid-run,
/// run on, rewind back to the mark, and differential-test against a fork
/// of the same prefix — then drive both onward identically (the restored
/// sim must behave like the fork forever after, crash plans included).
void mark_rewind_and_compare(const MutexFactory& factory, int n,
                             const std::vector<CrashPlan>& crashes,
                             std::uint64_t seed) {
  const SimBuilder rebuild = mutex_builder(factory, n, 1, crashes);

  Sim live;
  rebuild(live);
  live.mark_rewind_base();
  RandomScheduler rnd(seed);
  drive(live, rnd, RunLimits{30});
  Sim::RewindMark mark;
  live.capture_mark(mark);
  const std::size_t prefix_len = live.schedule_log().size();
  RandomScheduler more(seed + 99);
  drive(live, more, RunLimits{30});

  const std::unique_ptr<Sim> reference =
      Sim::fork(std::span(live.schedule_log().data(), prefix_len),
                /*expect_fingerprint=*/0, /*expect_seq=*/0, rebuild);
  const std::size_t fed = live.rewind_to_mark(mark);
  ASSERT_EQ(live.schedule_log().size(), prefix_len);
  // Only processes that acted past the mark are value-replayed, so the
  // fed-unit count never exceeds the full-replay cost.
  EXPECT_LE(fed, prefix_len);
  expect_same_state(live, *reference);

  RandomScheduler cont_a(seed + 17);
  RandomScheduler cont_b(seed + 17);
  drive(live, cont_a, RunLimits{40});
  drive(*reference, cont_b, RunLimits{40});
  expect_same_state(live, *reference);
}

TEST(Rewind, MarkRestoreMatchesForkAcrossAllRegistryMutexAlgorithms) {
  for (const MutexAlgorithmEntry* e :
       AlgorithmRegistry::instance().mutex_for_n(2)) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(e->info.name);
      mark_rewind_and_compare(e->factory, 2, {}, seed);
    }
  }
}

TEST(Rewind, MarkRestoreMatchesForkUnderCrashInjection) {
  for (const MutexAlgorithmEntry* e :
       AlgorithmRegistry::instance().mutex_for_n(4)) {
    SCOPED_TRACE(e->info.name);
    mark_rewind_and_compare(e->factory, 4, {{0, 3}, {2, 1}}, 5);
  }
}

TEST(Rewind, MarkRestoreKeepsExplorerBitIdentical) {
  // The explorer with restore_marks on must traverse the identical tree —
  // every stat equal except the restore cost counters: mark restores
  // re-execute nothing live (replayed_steps 0, the log re-feed counted
  // in value_replayed_steps) where the full-replay rewind re-executes
  // the whole prefix per sibling.
  for (const MutexAlgorithmEntry* e :
       AlgorithmRegistry::instance().mutex_for_n(2)) {
    SCOPED_TRACE(e->info.name);
    const MutexFactory factory = e->factory;
    Explorer::Config cfg;
    cfg.nprocs = 2;
    cfg.strategy = SearchStrategy::Exhaustive;
    cfg.limits.max_depth = 12;
    cfg.setup = [&factory](Sim& sim) -> std::shared_ptr<void> {
      return setup_mutex(sim, factory, 2, 1);
    };
    cfg.limits.restore_marks = true;
    const Explorer::Result marked = Explorer(cfg).run();
    cfg.limits.restore_marks = false;
    const Explorer::Result plain = Explorer(cfg).run();

    EXPECT_EQ(marked.stats.states_visited, plain.stats.states_visited);
    EXPECT_EQ(marked.stats.runs_completed, plain.stats.runs_completed);
    EXPECT_EQ(marked.stats.runs_truncated, plain.stats.runs_truncated);
    EXPECT_EQ(marked.stats.pruned_visited, plain.stats.pruned_visited);
    EXPECT_EQ(marked.stats.violations, plain.stats.violations);
    EXPECT_EQ(marked.stats.restores, plain.stats.restores);
    EXPECT_EQ(marked.stats.sims_built, plain.stats.sims_built);
    ASSERT_GT(marked.stats.restore_marks, 0u);
    EXPECT_EQ(plain.stats.restore_marks, 0u);
    ASSERT_GT(plain.stats.replayed_steps, 0u);
    EXPECT_EQ(plain.stats.value_replayed_steps, 0u);
    EXPECT_EQ(marked.stats.replayed_steps, 0u);
    ASSERT_GT(marked.stats.value_replayed_steps, 0u);
    // The partial restore's whole point: the cheap re-feed touches no
    // more units than the full replay re-executed, usually far fewer.
    EXPECT_LE(marked.stats.value_replayed_steps, plain.stats.replayed_steps);
  }
}

}  // namespace
}  // namespace cfc
