// Per-algorithm unit tests: contention-free complexity of each mutual
// exclusion algorithm matches the paper's stated constants, measured by the
// instrumented simulator over the Section 2.2 windows.
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "core/bounds.h"
#include "mutex/kessels.h"
#include "mutex/lamport_fast.h"
#include "mutex/peterson.h"
#include "mutex/tas_lock.h"
#include "sched/sched.h"

namespace cfc {
namespace {

// [Lam87]: "a process needs to access the shared memory five times in order
// to enter its critical section and twice in order to exit it — a total of
// seven accesses. Only 3 different registers are accessed."
TEST(LamportFast, ContentionFreeSevenStepsThreeRegisters) {
  for (int n : {1, 2, 3, 8, 64, 1000}) {
    const MutexCfResult r = measure_mutex_contention_free(
        LamportFast::factory(), n, AccessPolicy::RegistersOnly,
        /*max_pids=*/8);
    EXPECT_EQ(r.session.steps, 7) << "n=" << n;
    EXPECT_EQ(r.session.registers, 3) << "n=" << n;
    EXPECT_EQ(r.entry.steps, 5) << "n=" << n;
    EXPECT_EQ(r.exit.steps, 2) << "n=" << n;
  }
}

TEST(LamportFast, ReadWriteSplitInSoloSession) {
  const MutexCfResult r =
      measure_mutex_contention_free(LamportFast::factory(), 8);
  // Entry: w b, w x, r y, w y, r x; exit: w y, w b.
  EXPECT_EQ(r.session.write_steps, 5);
  EXPECT_EQ(r.session.read_steps, 2);
  EXPECT_EQ(r.session.write_registers, 3);
  EXPECT_EQ(r.session.read_registers, 2);
}

TEST(LamportFast, AtomicityIsCeilLog2NPlus1) {
  for (int n : {1, 2, 3, 7, 8, 100, 1023}) {
    const MutexCfResult r = measure_mutex_contention_free(
        LamportFast::factory(), n, AccessPolicy::Unrestricted,
        /*max_pids=*/4);
    EXPECT_EQ(r.measured_atomicity,
              bounds::ceil_log2(static_cast<std::uint64_t>(n) + 1))
        << "n=" << n;
  }
}

TEST(LamportFast, MeasuredComplexitySatisfiesTheorem1And2) {
  for (int n : {4, 16, 256, 1000}) {
    const MutexCfResult r =
        measure_mutex_contention_free(LamportFast::factory(), n);
    const int l = r.measured_atomicity;
    EXPECT_GT(r.session.steps,
              bounds::thm1_cf_step_lower(static_cast<double>(n), l));
    EXPECT_GE(r.session.registers + 1e-9,
              bounds::thm2_cf_register_lower(static_cast<double>(n), l));
  }
}

TEST(LamportFast, MeasuredComplexitySatisfiesLemma3And6) {
  for (int n : {4, 16, 256}) {
    const MutexCfResult r =
        measure_mutex_contention_free(LamportFast::factory(), n);
    const int l = r.measured_atomicity;
    EXPECT_TRUE(bounds::lemma3_satisfied(static_cast<std::uint64_t>(n), l,
                                         r.session.write_steps,
                                         r.session.read_registers));
    EXPECT_TRUE(bounds::lemma6_satisfied(static_cast<std::uint64_t>(n), l,
                                         r.session.registers,
                                         r.session.write_registers));
  }
}

TEST(Peterson, ContentionFreeFourStepsThreeRegisters) {
  const MutexCfResult r = measure_mutex_contention_free(
      Peterson::factory(), 2, AccessPolicy::RegistersOnly);
  EXPECT_EQ(r.session.steps, 4);
  EXPECT_EQ(r.session.registers, 3);
  EXPECT_EQ(r.entry.steps, 3);
  EXPECT_EQ(r.exit.steps, 1);
  EXPECT_EQ(r.measured_atomicity, 1);
}

TEST(Kessels, ContentionFreeFiveStepsFourRegisters) {
  const MutexCfResult r = measure_mutex_contention_free(
      Kessels::factory(), 2, AccessPolicy::RegistersOnly);
  EXPECT_EQ(r.session.steps, 5);
  EXPECT_EQ(r.session.registers, 4);
  EXPECT_EQ(r.entry.steps, 4);
  EXPECT_EQ(r.exit.steps, 1);
  EXPECT_EQ(r.measured_atomicity, 1);
}

// The rmw contrast case: constant complexity regardless of n, *below* the
// Theorem 1/2 atomic-register lower bounds — the bounds are specific to the
// read/write register model.
TEST(TasLock, ConstantContentionFreeComplexityBeatsRegisterBounds) {
  for (int n : {2, 16, 1024, 100000}) {
    // TasLock treats every slot identically: sample a few pids instead of
    // running 100000 quadratic solo measurements.
    const MutexCfResult r = measure_mutex_contention_free(
        TasLock::factory(), n, AccessPolicy::Unrestricted, /*max_pids=*/3);
    EXPECT_EQ(r.session.steps, 2) << "n=" << n;
    EXPECT_EQ(r.session.registers, 1) << "n=" << n;
    EXPECT_EQ(r.measured_atomicity, 1) << "n=" << n;
  }
  // For large enough n the Theorem 1 bound exceeds TasLock's constant 2
  // (at n = 2^63, l = 1: log n / (3 log log n - 1) ~ 3.7): the rmw
  // primitive "violates" a bound that only binds register algorithms.
  const double lb = bounds::thm1_cf_step_lower(9.2e18, 1.0);
  EXPECT_GT(lb, 2.0);
}

TEST(Peterson, RejectsBadSlots) {
  Sim sim;
  Peterson alg(sim.memory());
  const Pid p = sim.spawn("p", [&alg](ProcessContext& ctx) -> Task<void> {
    co_await alg.enter(ctx, 2);
  });
  EXPECT_THROW(run_to_completion(sim, p), std::invalid_argument);
}

TEST(LamportFast, FactoryRespectsCapacity) {
  Sim sim;
  EXPECT_THROW(setup_mutex(sim, Peterson::factory(), 3, 1),
               std::invalid_argument);
}

// Two consecutive solo sessions by the same process both count 7 steps —
// the algorithm resets its registers properly on exit.
TEST(LamportFast, BackToBackSoloSessionsStayFast) {
  Sim sim;
  auto alg = setup_mutex(sim, LamportFast::factory(), 4, /*sessions=*/3);
  SoloScheduler solo(2);
  drive(sim, solo);
  const auto windows = contention_free_sessions(sim.trace(), 2, 4);
  ASSERT_EQ(windows.size(), 3u);
  for (const auto& w : windows) {
    EXPECT_EQ(measure(sim.trace(), 2, w).steps, 7);
  }
}

}  // namespace
}  // namespace cfc
