// Naming algorithms (Theorem 4): uniqueness, wait-freedom, model
// discipline, and the exact complexities the paper states, measured by the
// instrumented simulator.
#include <gtest/gtest.h>

#include "core/bounds.h"
#include "naming/checkers.h"
#include "naming/tas_read_search.h"
#include "naming/tas_scan.h"
#include "naming/tas_tar_tree.h"
#include "naming/taf_tree.h"
#include "sched/sched.h"

namespace cfc {
namespace {

struct NamingCase {
  const char* name;
  NamingFactory factory;
  bool needs_power_of_two;
};

std::vector<NamingCase> all_naming_algorithms() {
  return {
      {"taf-tree", TafTree::factory(), true},
      {"tas-tar-tree", TasTarTree::factory(), true},
      {"tas-scan", TasScan::factory(), false},
      {"tas-read-search", TasReadSearch::factory(), false},
  };
}

class NamingProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (alg, n)

TEST_P(NamingProperty, UniqueNamesUnderRandomSchedules) {
  const auto [alg_idx, n] = GetParam();
  const auto algs = all_naming_algorithms();
  const NamingCase& alg = algs[static_cast<std::size_t>(alg_idx)];
  if (alg.needs_power_of_two && (n & (n - 1)) != 0) {
    GTEST_SKIP();
  }
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const NamingRunCheck check = run_naming_random(alg.factory, n, seed);
    EXPECT_TRUE(check.ok()) << alg.name << " seed " << seed;
    EXPECT_EQ(check.names.size(), static_cast<std::size_t>(n));
  }
}

TEST_P(NamingProperty, UniqueNamesUnderSequentialSchedule) {
  const auto [alg_idx, n] = GetParam();
  const auto algs = all_naming_algorithms();
  const NamingCase& alg = algs[static_cast<std::size_t>(alg_idx)];
  if (alg.needs_power_of_two && (n & (n - 1)) != 0) {
    GTEST_SKIP();
  }
  const NamingRunCheck check = run_naming_sequential(alg.factory, n);
  EXPECT_TRUE(check.ok()) << alg.name;
}

TEST_P(NamingProperty, UniqueNamesSurviveCrashes) {
  const auto [alg_idx, n] = GetParam();
  const auto algs = all_naming_algorithms();
  const NamingCase& alg = algs[static_cast<std::size_t>(alg_idx)];
  if (alg.needs_power_of_two && (n & (n - 1)) != 0) {
    GTEST_SKIP();
  }
  // Crash 1/3 of the processes at varying points; survivors must still get
  // unique names and terminate (wait-freedom under stopping failures).
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    std::vector<CrashPlanEntry> crashes;
    for (Pid p = 0; p < n; p += 3) {
      crashes.push_back({p, seed % 5});
    }
    const NamingRunCheck check =
        run_naming_random(alg.factory, n, seed, crashes);
    EXPECT_TRUE(check.all_terminated) << alg.name << " seed " << seed;
    EXPECT_TRUE(check.names_unique) << alg.name << " seed " << seed;
    EXPECT_TRUE(check.names_in_range) << alg.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NamingProperty,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(2, 3, 4, 8, 13, 16, 32, 64)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& pinfo) {
      static const auto algs = all_naming_algorithms();
      std::string name =
          algs[static_cast<std::size_t>(std::get<0>(pinfo.param))].name;
      for (char& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name + "_n" + std::to_string(std::get<1>(pinfo.param));
    });

// --- Exact complexities per the paper. ---

// Theorem 4.1: taf-tree takes exactly log2(n) steps over log2(n) distinct
// bits, for every process, in every schedule.
TEST(TafTree, ExactlyLogNStepsAlways) {
  for (int n : {2, 4, 16, 64, 256}) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const NamingRunCheck check =
          run_naming_random(TafTree::factory(), n, seed);
      ASSERT_TRUE(check.ok());
      for (const ComplexityReport& rep : check.per_process) {
        EXPECT_EQ(rep.steps, bounds::thm4_taf_wc_step(
                                 static_cast<std::uint64_t>(n)));
        EXPECT_EQ(rep.registers, rep.steps);
        EXPECT_EQ(rep.atomicity, 1);
      }
    }
  }
}

// Theorem 4.2: tas-tar-tree touches exactly log2(n) distinct bits in every
// run (worst-case register complexity log n), though steps may exceed that.
TEST(TasTarTree, RegisterComplexityIsLogNInEveryRun) {
  for (int n : {2, 4, 16, 64}) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const NamingRunCheck check =
          run_naming_random(TasTarTree::factory(), n, seed);
      ASSERT_TRUE(check.ok());
      for (const ComplexityReport& rep : check.per_process) {
        EXPECT_LE(rep.registers, bounds::thm4_tastar_wc_register(
                                     static_cast<std::uint64_t>(n)));
        EXPECT_GE(rep.steps, rep.registers);
      }
    }
  }
}

// Theorem 4.3: tas-scan worst case is exactly n - 1 steps (the sequential
// schedule realizes it: the i-th process scans i bits).
TEST(TasScan, SequentialRealizesWorstCase) {
  for (int n : {2, 5, 16, 50}) {
    const NamingRunCheck check = run_naming_sequential(TasScan::factory(), n);
    ASSERT_TRUE(check.ok());
    int max_steps = 0;
    for (const ComplexityReport& rep : check.per_process) {
      max_steps = std::max(max_steps, rep.steps);
    }
    EXPECT_EQ(max_steps, static_cast<int>(bounds::thm4_tas_wc_step(
                             static_cast<std::uint64_t>(n))));
  }
}

// The sequential names come out in scan order: process i gets name i+1.
TEST(TasScan, SequentialNamesAreOrdered) {
  const NamingRunCheck check = run_naming_sequential(TasScan::factory(), 6);
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.names, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

// Theorem 4.4: tas-read-search contention-free step complexity is
// ceil(log2(n-1)) + 1 — logarithmic, against tas-scan's linear.
TEST(TasReadSearch, ContentionFreeStepsLogarithmic) {
  for (int n : {4, 8, 16, 64, 256, 1000}) {
    const NamingRunCheck check =
        run_naming_sequential(TasReadSearch::factory(), n);
    ASSERT_TRUE(check.ok());
    const int expect =
        bounds::ceil_log2(static_cast<std::uint64_t>(n - 1)) + 1;
    for (const ComplexityReport& rep : check.per_process) {
      EXPECT_LE(rep.steps, expect) << "n=" << n;
    }
    int max_steps = 0;
    for (const ComplexityReport& rep : check.per_process) {
      max_steps = std::max(max_steps, rep.steps);
    }
    EXPECT_EQ(max_steps, expect) << "n=" << n;
  }
}

// --- Model discipline: each algorithm runs entirely inside its declared
// model (the simulator throws otherwise), and the declared models match the
// paper's columns. ---
TEST(NamingModels, DeclaredModelsMatchPaper) {
  Sim s1;
  EXPECT_EQ(TafTree(s1.memory(), 8).model(), Model::test_and_flip());
  Sim s2;
  EXPECT_EQ(TasScan(s2.memory(), 8).model(), Model::test_and_set());
  Sim s3;
  EXPECT_EQ(TasReadSearch(s3.memory(), 8).model(),
            Model::read_test_and_set());
  Sim s4;
  EXPECT_EQ(TasTarTree(s4.memory(), 8).model(),
            (Model{BitOp::TestAndSet, BitOp::TestAndReset}));
  EXPECT_TRUE(Model::read_tas_tar().includes(TasTarTree(s4.memory(), 8).model()));
}

// Duality (Section 3.2): running tas-scan through the dual lens — an
// algorithm for the dual model {test-and-reset} obtained by flipping
// initial values and operations — behaves identically.
TEST(NamingModels, DualOfTasScanWorks) {
  const int n = 8;
  Sim sim;
  std::vector<RegId> bits;
  for (int j = 1; j < n; ++j) {
    // Dual: bits start at 1, test-and-reset claims by resetting to 0.
    bits.push_back(sim.memory().add_bit("dual.b" + std::to_string(j), true));
  }
  sim.set_model(Model{BitOp::TestAndReset});
  for (int i = 0; i < n; ++i) {
    sim.spawn("p" + std::to_string(i), [&bits, n](ProcessContext& ctx) -> Task<void> {
      ctx.set_section(Section::Working);
      int name = n;
      for (std::size_t j = 0; j < bits.size(); ++j) {
        const Value old = co_await ctx.test_and_reset(bits[j]);
        if (old == 1) {  // dual of "old == 0"
          name = static_cast<int>(j + 1);
          break;
        }
      }
      ctx.set_output(name);
      ctx.set_section(Section::Done);
    });
  }
  RoundRobinScheduler rr;
  ASSERT_EQ(drive(sim, rr), RunOutcome::AllDone);
  const NamingRunCheck check = check_naming_run(sim, n);
  EXPECT_TRUE(check.ok());
}

TEST(NamingConstruction, TreesRejectNonPowerOfTwo) {
  Sim sim;
  EXPECT_THROW(TafTree(sim.memory(), 6), std::invalid_argument);
  EXPECT_THROW(TasTarTree(sim.memory(), 12), std::invalid_argument);
  EXPECT_THROW(TafTree(sim.memory(), 1), std::invalid_argument);
}

TEST(NamingConstruction, SpaceIsNMinusOneBits) {
  // All four algorithms use exactly n - 1 shared bits.
  {
    Sim sim;
    TafTree alg(sim.memory(), 16);
    EXPECT_EQ(sim.memory().size(), 15);
  }
  {
    Sim sim;
    TasScan alg(sim.memory(), 16);
    EXPECT_EQ(sim.memory().size(), 15);
  }
  {
    Sim sim;
    TasReadSearch alg(sim.memory(), 16);
    EXPECT_EQ(sim.memory().size(), 15);
  }
  {
    Sim sim;
    TasTarTree alg(sim.memory(), 16);
    EXPECT_EQ(sim.memory().size(), 15);
  }
}

// Wait-freedom: the max steps of any process stays bounded by a function
// of n across schedules (trivially log n or ~2n here), never the budget.
TEST(NamingWaitFreedom, StepsBoundedAcrossSchedules) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 20; ++s) {
    seeds.push_back(s);
  }
  const int n = 16;
  EXPECT_LE(max_steps_any_process(TafTree::factory(), n, seeds), 4);
  EXPECT_LE(max_steps_any_process(TasScan::factory(), n, seeds), n - 1);
  EXPECT_LE(max_steps_any_process(TasReadSearch::factory(), n, seeds),
            4 + (n - 1));
  // tas-tar-tree: each failed (tas, tar) round witnesses another process's
  // success; <= ~2k extra steps per node with k contenders.
  EXPECT_LE(max_steps_any_process(TasTarTree::factory(), n, seeds), 4 * n);
}

}  // namespace
}  // namespace cfc
