// A5 (ablation) — the [MS93] multi-grain packing the paper's Section 1.3
// points at: "several registers of smaller size can be packed into one word
// of memory, enabling reads or writes to all or a subset of them in one
// atomic step. This was demonstrated by Michael and Scott, who improve the
// performance of Lamport's algorithm [...] by exploiting the ability to
// read and write atomically at both full- and half-word granularities."
//
// Two views:
//  1. Simulator (exact counts, one Campaign over both variants): packing x
//     and y into one word keeps the contention-free step count at 7 but
//     drops the *register* complexity from 3 to 2 — strictly better on
//     remote-access architectures, paid for with doubled atomicity.
//     (Register complexity lower-bounds remote accesses, so this is the
//     measure [MS93]'s cache behaviour lives in.)
//  2. Hardware (wall clock): dense vs cache-line-padded register placement
//     for the same algorithm under contention.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/study.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "rt/contention_study.h"

int main(int argc, char** argv) {
  using namespace cfc;
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  if (cfc::bench::handle_list(opts, {cfc::StudyKind::Mutex})) {
    return 0;
  }
  const auto runner = opts.make_runner();
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("ablation_multigrain", opts.out);

  // The simulator view is a paired comparison: it needs both variants, so
  // an --algo filter that drops either skips the whole section.
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
  const bool pair_selected =
      opts.selected(registry.mutex("lamport-fast").info) &&
      opts.selected(registry.mutex("lamport-packed").info);
  if (!pair_selected) {
    cfc::bench::note_algo_inapplicable(
        opts, "the packing comparison needs both lamport variants; "
              "simulator section skipped");
  }
  std::printf("Simulator: packed vs unpacked Lamport, contention-free:\n\n");
  const std::vector<int> ns = pair_selected ? std::vector<int>{4, 16, 64, 1024}
                                            : std::vector<int>{};
  Campaign campaign;
  for (const int n : ns) {
    for (const char* subject : {"lamport-fast", "lamport-packed"}) {
      campaign.add(StudySpec::of(subject)
                       .n(n)
                       .policy(AccessPolicy::RegistersOnly)
                       .sample_pids(4)
                       .contention_free());
    }
  }
  const std::vector<StudyResult> results = campaign.run(runner.get());

  TextTable t({"algorithm", "n", "cf step", "cf reg", "atomicity"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const int n = ns[i];
    const StudyResult& plain = results[2 * i];
    const StudyResult& packed = results[2 * i + 1];
    for (const StudyResult* r : {&plain, &packed}) {
      t.add_row({r->subject, std::to_string(n), std::to_string(r->cf.steps),
                 std::to_string(r->cf.registers),
                 std::to_string(r->measured_atomicity)});
      json.study(*r, {{"section", std::string("packing")}});
    }
    const std::string at = " at n=" + std::to_string(n);
    verify.check(packed.cf.steps == plain.cf.steps,
                 "packing preserves step count" + at);
    verify.check(packed.cf.registers == 2 && plain.cf.registers == 3,
                 "packing drops cf registers 3 -> 2" + at);
    verify.check(packed.measured_atomicity == 2 * plain.measured_atomicity,
                 "packing doubles atomicity" + at);
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("Hardware: register placement under contention "
              "(4 threads, lamport-fast):\n\n");
  TextTable hw({"layout", "backoff", "accesses/acq", "ns/acq", "violations"});
  for (const rt::MemoryLayout layout :
       {rt::MemoryLayout::Padded, rt::MemoryLayout::Packed}) {
    for (const bool backoff : {false, true}) {
      rt::ContentionStudyConfig config;
      config.threads = 4;
      config.acquisitions_per_thread = 2000;
      config.backoff = backoff;
      config.layout = layout;
      const rt::ContentionStudyResult res = rt::run_lamport_study(config);
      char acc[32];
      std::snprintf(acc, sizeof(acc), "%.1f", res.mean_accesses);
      char ns[32];
      std::snprintf(ns, sizeof(ns), "%.0f", res.mean_ns);
      const std::string layout_name =
          layout == rt::MemoryLayout::Padded ? "padded (1 reg/line)"
                                             : "packed (dense)";
      hw.add_row({layout_name, backoff ? "yes" : "no", acc, ns,
                  std::to_string(res.violations)});
      json.row({{"section", std::string("hardware")},
                {"layout", layout_name},
                {"backoff", cfc::bench::jv(backoff ? 1 : 0)},
                {"accesses_per_acq", cfc::bench::jv(res.mean_accesses)},
                {"ns_per_acq", cfc::bench::jv(res.mean_ns)},
                {"violations", cfc::bench::jv(
                                   static_cast<long long>(res.violations))}});
      verify.check(res.violations == 0, "hardware ME holds");
    }
  }
  std::printf("%s\n", hw.render().c_str());
  std::printf(
      "(absolute ns are host-dependent; the point is that layout is a free\n"
      "parameter the register-complexity measure predicts the direction "
      "of.)\n");

  return json.finish(verify);
}
