#ifndef CFC_BENCH_BENCH_UTIL_H
#define CFC_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <utility>
#include <variant>
#include <vector>

#include "analysis/experiment_runner.h"
#include "analysis/study.h"
#include "core/algorithm_registry.h"

namespace cfc::bench {

/// Minimal CLI options shared by every bench binary (micro_substrate keeps
/// google-benchmark's own argv handling):
///   --seed <base>    base seed for the seeded schedule searches (default 1,
///                    which reproduces the historical hard-coded {1..k})
///   --threads <k>    experiment thread pool size (default: shared
///                    hardware-sized pool)
///   --out <dir>      directory for the BENCH_<name>.json report
///   --algo <sel>     restrict registry-enumerated subjects to the
///                    algorithm named <sel> or carrying tag <sel> (paper
///                    verification checks that need the full pool are
///                    skipped on filtered runs)
///   --repeat <n>     repetitions for timed sections; benches report the
///                    min-of-N (the noise-robust estimator on shared CI
///                    machines). Default 1.
///   --reduction <p>  partial-order-reduction policy for the benches'
///                    Exhaustive searches: off | sleep-lite | source-dpor
///                    (default off — the unreduced tree, comparable with
///                    pre-POR baselines)
///   --baseline <f>   committed BENCH_<name>.json to compare against
///                    (explorer_scaling's reduction-factor rows)
///   --study-out <f>  write the bench's canonical study payload (a
///                    cfc.study.v1 array, timing excluded) to <f>; CI runs
///                    the bench at two thread counts and byte-compares the
///                    two files as the determinism gate
///   --trace-out <f>  record a Chrome trace-event JSON (obs/trace.h) of
///                    the whole bench run to <f>; loadable in Perfetto.
///                    Observability only — never changes any reported value
///   --list           print the registry algorithms this bench can target
///                    (after --algo filtering) and exit
struct BenchOptions {
  std::uint64_t seed = 1;
  int threads = 0;
  std::string out = ".";
  std::string algo;
  int repeat = 1;
  ReductionPolicy reduction = ReductionPolicy::Off;
  std::string baseline;
  std::string study_out;
  std::string trace_out;
  bool list = false;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opts;
    const auto usage = [&](std::FILE* to, int exit_code) {
      std::fprintf(to,
                   "usage: %s [--seed <base>] [--threads <k>] [--out <dir>] "
                   "[--algo <tag-or-name>] [--repeat <n>] "
                   "[--reduction off|sleep-lite|source-dpor] "
                   "[--baseline <json>] [--study-out <json>] "
                   "[--trace-out <json>] [--list]\n",
                   argc > 0 ? argv[0] : "bench");
      std::exit(exit_code);
    };
    // A flag matches exactly ("--seed 5") or in its "=" form ("--seed=5");
    // anything else — including prefix typos like "--seeds" — is rejected.
    const auto matches = [](const std::string& arg, const char* flag) {
      return arg == flag || arg.rfind(std::string(flag) + "=", 0) == 0;
    };
    const auto value = [&](int& i, const char* flag) -> std::string {
      const std::string arg = argv[i];
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        return arg.substr(prefix.size());
      }
      if (++i >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(stderr, 2);
      }
      return argv[i];
    };
    const auto number = [&](int& i, const char* flag) -> std::uint64_t {
      const std::string v = value(i, flag);
      // Digits only: strtoull alone would wrap "-4" to 2^64-4 silently.
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "invalid numeric value for %s: '%s'\n", flag,
                     v.c_str());
        usage(stderr, 2);
      }
      return std::strtoull(v.c_str(), nullptr, 10);
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        usage(stdout, 0);
      } else if (matches(arg, "--seed")) {
        opts.seed = number(i, "--seed");
      } else if (matches(arg, "--threads")) {
        opts.threads = static_cast<int>(number(i, "--threads"));
      } else if (matches(arg, "--out")) {
        opts.out = value(i, "--out");
      } else if (matches(arg, "--algo")) {
        opts.algo = value(i, "--algo");
      } else if (matches(arg, "--repeat")) {
        opts.repeat = static_cast<int>(number(i, "--repeat"));
        if (opts.repeat < 1) {
          std::fprintf(stderr, "--repeat must be >= 1\n");
          usage(stderr, 2);
        }
      } else if (matches(arg, "--reduction")) {
        const std::string v = value(i, "--reduction");
        const std::optional<ReductionPolicy> policy =
            reduction_policy_from(v);
        if (!policy.has_value()) {
          std::fprintf(stderr,
                       "invalid --reduction '%s' (off | sleep-lite | "
                       "source-dpor)\n",
                       v.c_str());
          usage(stderr, 2);
        }
        opts.reduction = *policy;
      } else if (matches(arg, "--baseline")) {
        opts.baseline = value(i, "--baseline");
      } else if (matches(arg, "--study-out")) {
        opts.study_out = value(i, "--study-out");
      } else if (matches(arg, "--trace-out")) {
        opts.trace_out = value(i, "--trace-out");
      } else if (arg == "--list") {
        opts.list = true;
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        usage(stderr, 2);
      }
    }
    // Refuse an unusable --out up front: a long bench run that silently
    // drops its report at the end is worse than not starting.
    std::error_code ec;
    std::filesystem::create_directories(opts.out, ec);
    const std::string probe_path = opts.out + "/.cfc_out_probe";
    std::FILE* probe = std::fopen(probe_path.c_str(), "w");
    if (ec || probe == nullptr) {
      std::fprintf(stderr, "cannot write to --out directory '%s'\n",
                   opts.out.c_str());
      std::exit(2);
    }
    std::fclose(probe);
    std::remove(probe_path.c_str());
    return opts;
  }

  /// `count` consecutive seeds starting at the base: the default base 1
  /// reproduces the benches' historical {1, 2, ..., count}.
  [[nodiscard]] std::vector<std::uint64_t> seeds(std::size_t count) const {
    std::vector<std::uint64_t> out_seeds;
    out_seeds.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      out_seeds.push_back(seed + i);
    }
    return out_seeds;
  }

  /// Non-null when --threads was given; pass `.get()` to the experiment
  /// entry points (null selects the shared hardware-sized pool).
  [[nodiscard]] std::unique_ptr<ExperimentRunner> make_runner() const {
    return threads > 0 ? std::make_unique<ExperimentRunner>(threads)
                       : nullptr;
  }

  /// --algo filter: true when no filter is set, or `info` matches it by
  /// exact name or by tag.
  [[nodiscard]] bool selected(const AlgorithmInfo& info) const {
    return algo.empty() || info.name == algo || info.has_tag(algo);
  }

  /// True on an unfiltered run: the paper-verification checks that assume
  /// the full registry pool only make sense then.
  [[nodiscard]] bool full_pool() const { return algo.empty(); }
};

/// --list handler: prints the registry algorithms this bench can actually
/// target — the caller passes the StudyKinds it enumerates (an empty list
/// means the bench has no registry-enumerated subjects) — filtered by
/// --algo, and returns true (the bench should exit 0) when --list was
/// given.
inline bool handle_list(const BenchOptions& opts,
                        std::initializer_list<StudyKind> kinds = {
                            StudyKind::Mutex, StudyKind::Naming,
                            StudyKind::Detector}) {
  if (!opts.list) {
    return false;
  }
  if (kinds.size() == 0) {
    std::printf("this bench has no registry-enumerated subjects\n");
    return true;
  }
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
  const auto targets = [&](StudyKind k) {
    for (const StudyKind want : kinds) {
      if (want == k) {
        return true;
      }
    }
    return false;
  };
  const auto print = [&](const char* kind, const AlgorithmInfo& info) {
    if (!opts.selected(info)) {
      return;
    }
    std::string tags;
    for (const std::string& t : info.tags) {
      tags += tags.empty() ? t : "," + t;
    }
    std::printf("%-9s %-22s %s\n", kind, info.name.c_str(), tags.c_str());
  };
  if (targets(StudyKind::Mutex)) {
    for (const MutexAlgorithmEntry* e : registry.mutex_algorithms()) {
      print("mutex", e->info);
    }
  }
  if (targets(StudyKind::Naming)) {
    for (const NamingAlgorithmEntry* e : registry.naming_algorithms()) {
      print("naming", e->info);
    }
  }
  if (targets(StudyKind::Detector)) {
    for (const DetectorAlgorithmEntry* e : registry.detector_algorithms()) {
      print("detector", e->info);
    }
  }
  return true;
}

/// For benches (or bench sections) whose subject pool is fixed or
/// internally enumerated — paired comparisons, the model census, derived
/// formula curves, hardware studies — prints an honest note when --algo
/// was passed but cannot subset that pool, instead of silently ignoring
/// the flag.
inline void note_algo_inapplicable(const BenchOptions& opts,
                                   const char* why) {
  if (!opts.algo.empty()) {
    std::printf("  [note] --algo=%s has no effect here: %s\n",
                opts.algo.c_str(), why);
  }
}

/// Git revision baked in at configure time (CMake passes CFC_GIT_SHA to
/// every bench target); "unknown" on builds outside a git checkout.
inline const char* git_sha() {
#ifdef CFC_GIT_SHA
  return CFC_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Min-of-N timing: runs `body` `repeat` times and returns the fastest
/// wall time in milliseconds. The minimum is the noise-robust estimator
/// for "how fast does this code run" on shared machines — every slower
/// sample is the same work plus interference.
template <class F>
inline double min_ms_of(int repeat, F&& body) {
  double best = -1.0;
  for (int r = 0; r < (repeat < 1 ? 1 : repeat); ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (best < 0.0 || ms < best) {
      best = ms;
    }
  }
  return best;
}

/// Truncation warning shared by benches (the ComplexityReport::truncated
/// satellite): prints a warning when a measurement was cut off and returns
/// the flag as a JSON-ready 0/1.
inline long long warn_truncated(bool truncated, const std::string& what) {
  if (truncated) {
    std::printf(
        "  [warn] %s: search truncated (budget exhausted); values are lower "
        "bounds\n",
        what.c_str());
  }
  return truncated ? 1 : 0;
}

/// Tiny check-reporting helper shared by the table/figure regenerators:
/// every bench binary verifies the paper's claims against measured values
/// and exits nonzero if any check fails, so the bench run doubles as an
/// end-to-end validation pass.
class Verifier {
 public:
  void check(bool ok, const std::string& what) {
    total_ += 1;
    if (!ok) {
      failed_ += 1;
      std::printf("  [FAIL] %s\n", what.c_str());
    }
  }

  /// Prints the summary line and returns the process exit code.
  int finish(const char* bench_name) {
    std::printf("\n%s: %d/%d checks passed\n", bench_name, total_ - failed_,
                total_);
    return failed_ == 0 ? 0 : 1;
  }

  [[nodiscard]] int failed() const { return failed_; }
  [[nodiscard]] int total() const { return total_; }

 private:
  int total_ = 0;
  int failed_ = 0;
};

/// One value in a JSON row: string, integer, or double.
using JsonValue = std::variant<std::string, long long, double>;

/// Machine-readable results channel shared by all benches, writing the
/// canonical bench schema "cfc.bench.v1" to BENCH_<name>.json on finish():
///
///   {
///     "schema": "cfc.bench.v1",
///     "bench": "<name>",
///     "context": {"git_sha": "<rev>", ...},
///     "studies": [{"context": {...}, "study": <cfc.study.v1 object>}, ...],
///     "rows": [{...flat key/value row...}, ...],
///     "summary": {"checks_total": T, "checks_failed": F, "elapsed_ms": MS}
///   }
///
/// The top-level context records the provenance every perf-trajectory
/// consumer needs (which revision produced these numbers); benches add
/// run parameters via context().
///
/// Study measurements go through study() — the canonical Study serializer
/// from analysis/study.h, with an optional flat context object (section
/// labels, sweep parameters) — so every bench emits the same study schema;
/// row() remains for non-study data (derived bound curves, hardware runs).
///
/// Usage:
///   JsonReport json("table1_mutex_bounds", opts.out);
///   json.study(result, {{"section", "sweep"}, {"l", 2}});
///   json.row({{"section", "hw"}, {"ns", 123}});
///   ...
///   return json.finish(verify);   // writes the file, returns exit code
class JsonReport {
 public:
  using Field = std::pair<std::string, JsonValue>;

  explicit JsonReport(std::string bench_name, std::string out_dir = ".")
      : name_(std::move(bench_name)),
        out_dir_(std::move(out_dir)),
        start_(std::chrono::steady_clock::now()) {
    context_.emplace_back("git_sha", std::string(git_sha()));
  }

  /// Adds a key to the top-level context object (run parameters that
  /// apply to the whole bench, e.g. --repeat).
  void context(std::string key, JsonValue value) {
    context_.emplace_back(std::move(key), std::move(value));
  }

  void row(std::vector<Field> fields) { rows_.push_back(std::move(fields)); }

  /// Appends one canonical study object (with its wall time) plus a flat
  /// context object identifying the study's place in the bench.
  void study(const StudyResult& r, std::vector<Field> context = {}) {
    std::string entry = "{\"context\": ";
    append_row(entry, context);
    entry += ", \"study\": ";
    entry += to_json(r);
    entry += "}";
    studies_.push_back(std::move(entry));
  }

  /// Writes BENCH_<name>.json (studies + rows + summary), prints the
  /// Verifier summary, and returns the process exit code. An unwritable
  /// report is a hard failure: consumers downstream (baseline compares,
  /// cfc_report diffs) must never mistake a missing file for a clean run.
  int finish(Verifier& verify) {
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const bool written = write_file(verify, static_cast<long long>(elapsed));
    const int code = verify.finish(name_.c_str());
    return written ? code : 1;
  }

 private:
  static void append_escaped(std::string& out, const std::string& s) {
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
  }

  static void append_row(std::string& out, const std::vector<Field>& fields) {
    out += '{';
    for (std::size_t f = 0; f < fields.size(); ++f) {
      const auto& [key, value] = fields[f];
      out += '"';
      append_escaped(out, key);
      out += "\": ";
      if (const auto* s = std::get_if<std::string>(&value)) {
        out += '"';
        append_escaped(out, *s);
        out += '"';
      } else if (const auto* i = std::get_if<long long>(&value)) {
        out += std::to_string(*i);
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(value));
        out += buf;
      }
      if (f + 1 < fields.size()) {
        out += ", ";
      }
    }
    out += '}';
  }

  bool write_file(const Verifier& verify, long long elapsed_ms) const {
    std::string out = "{\n  \"schema\": \"cfc.bench.v1\",\n  \"bench\": \"";
    append_escaped(out, name_);
    out += "\",\n  \"context\": ";
    append_row(out, context_);
    out += ",\n  \"studies\": [";
    for (std::size_t i = 0; i < studies_.size(); ++i) {
      out += (i == 0) ? "\n" : ",\n";
      out += studies_[i];
    }
    out += studies_.empty() ? "],\n" : "\n  ],\n";
    out += "  \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out += (r == 0) ? "\n    " : ",\n    ";
      append_row(out, rows_[r]);
    }
    out += rows_.empty() ? "],\n" : "\n  ],\n";
    out += "  \"summary\": {\"checks_total\": " +
           std::to_string(verify.total()) +
           ", \"checks_failed\": " + std::to_string(verify.failed()) +
           ", \"elapsed_ms\": " + std::to_string(elapsed_ms) + "}\n}\n";

    const std::string path = out_dir_ + "/BENCH_" + name_ + ".json";
    if (std::FILE* fp = std::fopen(path.c_str(), "w")) {
      const std::size_t wrote = std::fwrite(out.data(), 1, out.size(), fp);
      const bool ok = std::fclose(fp) == 0 && wrote == out.size();
      if (!ok) {
        std::fprintf(stderr, "error: short write to %s\n", path.c_str());
      }
      return ok;
    }
    std::fprintf(stderr, "error: could not write %s\n", path.c_str());
    return false;
  }

  std::string name_;
  std::string out_dir_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Field> context_;
  std::vector<std::string> studies_;
  std::vector<std::vector<Field>> rows_;
};

/// Convenience: a JsonValue from the common numeric types used in benches.
inline JsonValue jv(int v) { return static_cast<long long>(v); }
inline JsonValue jv(long long v) { return v; }
inline JsonValue jv(std::uint64_t v) { return static_cast<long long>(v); }
inline JsonValue jv(double v) { return v; }
inline JsonValue jv(std::string v) { return v; }

}  // namespace cfc::bench

#endif  // CFC_BENCH_BENCH_UTIL_H
