#ifndef CFC_BENCH_BENCH_UTIL_H
#define CFC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

namespace cfc::bench {

/// Tiny check-reporting helper shared by the table/figure regenerators:
/// every bench binary verifies the paper's claims against measured values
/// and exits nonzero if any check fails, so the bench run doubles as an
/// end-to-end validation pass.
class Verifier {
 public:
  void check(bool ok, const std::string& what) {
    total_ += 1;
    if (!ok) {
      failed_ += 1;
      std::printf("  [FAIL] %s\n", what.c_str());
    }
  }

  /// Prints the summary line and returns the process exit code.
  int finish(const char* bench_name) {
    std::printf("\n%s: %d/%d checks passed\n", bench_name, total_ - failed_,
                total_);
    return failed_ == 0 ? 0 : 1;
  }

  [[nodiscard]] int failed() const { return failed_; }

 private:
  int total_ = 0;
  int failed_ = 0;
};

}  // namespace cfc::bench

#endif  // CFC_BENCH_BENCH_UTIL_H
