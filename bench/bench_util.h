#ifndef CFC_BENCH_BENCH_UTIL_H
#define CFC_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace cfc::bench {

/// Tiny check-reporting helper shared by the table/figure regenerators:
/// every bench binary verifies the paper's claims against measured values
/// and exits nonzero if any check fails, so the bench run doubles as an
/// end-to-end validation pass.
class Verifier {
 public:
  void check(bool ok, const std::string& what) {
    total_ += 1;
    if (!ok) {
      failed_ += 1;
      std::printf("  [FAIL] %s\n", what.c_str());
    }
  }

  /// Prints the summary line and returns the process exit code.
  int finish(const char* bench_name) {
    std::printf("\n%s: %d/%d checks passed\n", bench_name, total_ - failed_,
                total_);
    return failed_ == 0 ? 0 : 1;
  }

  [[nodiscard]] int failed() const { return failed_; }
  [[nodiscard]] int total() const { return total_; }

 private:
  int total_ = 0;
  int failed_ = 0;
};

/// One value in a JSON row: string, integer, or double.
using JsonValue = std::variant<std::string, long long, double>;

/// Machine-readable results channel shared by all benches: collects flat
/// key/value rows and writes them as a JSON array to BENCH_<name>.json in
/// the working directory on finish(), so each bench's measured numbers can
/// be tracked across PRs (the perf trajectory). The last row is a summary
/// with the check counts and the bench wall time.
///
/// Usage:
///   JsonReport json("table1_mutex_bounds");
///   json.row({{"section", "sweep"}, {"n", 64}, {"cf_step", 21}});
///   ...
///   return json.finish(verify);   // writes the file, returns exit code
class JsonReport {
 public:
  using Field = std::pair<std::string, JsonValue>;

  explicit JsonReport(std::string bench_name)
      : name_(std::move(bench_name)),
        start_(std::chrono::steady_clock::now()) {}

  void row(std::vector<Field> fields) { rows_.push_back(std::move(fields)); }

  /// Writes BENCH_<name>.json (rows + summary), prints the Verifier
  /// summary, and returns the process exit code.
  int finish(Verifier& verify) {
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    row({{"section", std::string("summary")},
         {"checks_total", static_cast<long long>(verify.total())},
         {"checks_failed", static_cast<long long>(verify.failed())},
         {"elapsed_ms", static_cast<long long>(elapsed)}});
    write_file();
    return verify.finish(name_.c_str());
  }

 private:
  static void append_escaped(std::string& out, const std::string& s) {
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
  }

  void write_file() const {
    std::string out = "[\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out += "  {";
      for (std::size_t f = 0; f < rows_[r].size(); ++f) {
        const auto& [key, value] = rows_[r][f];
        out += '"';
        append_escaped(out, key);
        out += "\": ";
        if (const auto* s = std::get_if<std::string>(&value)) {
          out += '"';
          append_escaped(out, *s);
          out += '"';
        } else if (const auto* i = std::get_if<long long>(&value)) {
          out += std::to_string(*i);
        } else {
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(value));
          out += buf;
        }
        if (f + 1 < rows_[r].size()) {
          out += ", ";
        }
      }
      out += (r + 1 < rows_.size()) ? "},\n" : "}\n";
    }
    out += "]\n";

    const std::string path = "BENCH_" + name_ + ".json";
    if (std::FILE* fp = std::fopen(path.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), fp);
      std::fclose(fp);
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::vector<Field>> rows_;
};

/// Convenience: a JsonValue from the common numeric types used in benches.
inline JsonValue jv(int v) { return static_cast<long long>(v); }
inline JsonValue jv(long long v) { return v; }
inline JsonValue jv(std::uint64_t v) { return static_cast<long long>(v); }
inline JsonValue jv(double v) { return v; }
inline JsonValue jv(std::string v) { return v; }

}  // namespace cfc::bench

#endif  // CFC_BENCH_BENCH_UTIL_H
