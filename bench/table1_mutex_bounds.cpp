// T1 — regenerates the paper's Section 2.6 table "Bounds for mutual
// exclusion" and validates every cell against values *measured* by the
// instrumented simulator:
//
//                        | lower bound                         | upper bound
//   contention-free reg  | sqrt(log n / (l + log log n))       | 3 ceil(log n / l)   (Thm 2 / Thm 3)
//   contention-free step | log n / (l - 2 + 3 log log n)       | 7 ceil(log n / l)   (Thm 1 / Thm 3)
//   worst-case register  | sqrt(log n / (l + log log n))       | O(log n)            (Thm 2 / [Kes82])
//   worst-case step      | infinity                            | —                   ([AT92])
//
// The bench is one Campaign of StudySpecs over the AlgorithmRegistry's
// Theorem 3 grid (paper-literal and exact-atomicity variants), Lamport's
// fast algorithm (l = log n), and the Kessels tournament (the worst-case
// register row), interleaved across the experiment pool in a single flat
// cell grid; the rows below just read the uniform StudyResults.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/study.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/algorithm_registry.h"
#include "core/bounds.h"
#include "core/measures.h"
#include "sched/sched.h"

namespace {

using namespace cfc;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

void print_paper_table() {
  std::printf("Paper table (Section 2.6), deadlock-free mutual exclusion,\n");
  std::printf("n processes at atomicity l:\n\n");
  TextTable t({"measure", "lower bound", "upper bound"});
  t.add_row({"contention-free register", "sqrt(log n/(l+loglog n))",
             "3*ceil(log n/l)"});
  t.add_row({"contention-free step", "log n/(l-2+3*loglog n)",
             "7*ceil(log n/l)"});
  t.add_row({"worst-case register", "sqrt(log n/(l+loglog n))",
             "O(log n) [Kes82]"});
  t.add_row({"worst-case step", "infinity [AT92]", "-"});
  std::printf("%s\n", t.render().c_str());
}

/// The [AT92] row: drive the scripted adversary from the test suite and
/// report how the winner's clean-window entry steps scale with the spin
/// budget (unbounded worst case, witnessed).
int unbounded_witness(const MutexFactory& lamport_fast, int spins) {
  Sim sim;
  auto alg = setup_mutex(sim, lamport_fast, 3, 1);
  const Pid a = 0;
  const Pid c = 2;
  step_n(sim, a, 4);
  step_n(sim, c, 2);
  step_n(sim, a, 4);
  for (int i = 0; i < spins; ++i) {
    sim.step(a);
  }
  step_n(sim, c, 2);
  step_n(sim, a, 2);
  const auto windows = clean_entry_windows(sim.trace(), a, 3);
  return windows.empty() ? 0 : measure(sim.trace(), a, windows[0]).steps;
}

/// Bench-local spec metadata, index-aligned with the Campaign's results.
struct RowMeta {
  std::string section;
  int n = 0;
  int l = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  if (cfc::bench::handle_list(opts, {cfc::StudyKind::Mutex})) {
    return 0;
  }
  const auto runner = opts.make_runner();
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("table1_mutex_bounds", opts.out);
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
  print_paper_table();

  // --- One campaign for every measured row of the table. ---
  Campaign campaign;
  std::vector<RowMeta> meta;
  const auto add = [&](StudySpec spec, RowMeta m) {
    campaign.add(std::move(spec));
    meta.push_back(std::move(m));
  };

  for (const int n : {4, 16, 64, 256, 1024, 4096}) {
    for (const MutexAlgorithmEntry* entry :
         registry.mutex_for_n(n, "thm3-paper")) {
      const int l = entry->info.atomicity_param;
      if (l > bounds::ceil_log2(static_cast<std::uint64_t>(n)) ||
          !opts.selected(entry->info)) {
        continue;  // the theorem covers 1 <= l <= log n
      }
      add(StudySpec::of(entry->info.name)
              .n(n)
              .policy(AccessPolicy::RegistersOnly)
              .sample_pids(8)
              .contention_free(),
          {"thm3-paper", n, l});
    }
  }
  for (const int n : {64, 256, 1024}) {
    for (const MutexAlgorithmEntry* entry :
         registry.mutex_for_n(n, "thm3-exact")) {
      const int l = entry->info.atomicity_param;
      if (l < 2 || l > 4 || !opts.selected(entry->info)) {
        continue;  // representative mid-range atomicities
      }
      add(StudySpec::of(entry->info.name)
              .n(n)
              .policy(AccessPolicy::RegistersOnly)
              .sample_pids(8)
              .contention_free(),
          {"thm3-exact", n, l});
    }
  }
  const MutexAlgorithmEntry& lamport = registry.mutex("lamport-fast");
  if (opts.selected(lamport.info)) {
    for (const int n : {4, 64, 1024, 100000}) {
      add(StudySpec::of("lamport-fast")
              .n(n)
              .policy(AccessPolicy::RegistersOnly)
              .sample_pids(4)
              .contention_free(),
          {"lamport-fast", n, 0});
    }
  }
  const MutexAlgorithmEntry& kessels = registry.mutex("kessels-tree");
  if (opts.selected(kessels.info)) {
    for (const int n : {4, 8, 16, 32}) {
      add(StudySpec::of("kessels-tree")
              .n(n)
              .sessions(2)
              .worst_case(SearchStrategy::Random)
              .seeds(opts.seeds(8)),
          {"kessels-wc", n, 0});
    }
  }

  const std::vector<StudyResult> results = campaign.run(runner.get());

  // --- Section 1: the Theorem 3 paper-literal sweep. ---
  std::printf(
      "Measured contention-free complexity of the Theorem 3 algorithm\n"
      "(paper-literal arity 2^l; measured == formula is checked per row):\n\n");
  TextTable sweep({"n", "l", "thm1 lb", "cf step", "7ceil(logn/l)",
                   "thm2 lb", "cf reg", "3ceil(logn/l)", "atom"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (meta[i].section != "thm3-paper") {
      continue;
    }
    const StudyResult& r = results[i];
    const int n = meta[i].n;
    const int l = meta[i].l;
    const auto un = static_cast<std::uint64_t>(n);
    const double lb_step = bounds::thm1_cf_step_lower(n, l);
    const double lb_reg = bounds::thm2_cf_register_lower(n, l);
    const int ub_step = bounds::thm3_cf_step_upper(un, l);
    const int ub_reg = bounds::thm3_cf_register_upper(un, l);
    sweep.add_row({std::to_string(n), std::to_string(l), fmt(lb_step),
                   std::to_string(r.cf.steps), std::to_string(ub_step),
                   fmt(lb_reg), std::to_string(r.cf.registers),
                   std::to_string(ub_reg),
                   std::to_string(r.measured_atomicity)});
    json.study(r, {{"section", std::string("thm3-paper")},
                   {"l", cfc::bench::jv(l)},
                   {"ub_step", cfc::bench::jv(ub_step)},
                   {"ub_reg", cfc::bench::jv(ub_reg)},
                   {"lb_step", cfc::bench::jv(lb_step)},
                   {"lb_reg", cfc::bench::jv(lb_reg)}});
    verify.check(r.cf.steps == ub_step,
                 "cf step == 7*ceil(log n/l) at n=" + std::to_string(n) +
                     " l=" + std::to_string(l));
    verify.check(r.cf.registers == ub_reg,
                 "cf reg == 3*ceil(log n/l) at n=" + std::to_string(n) +
                     " l=" + std::to_string(l));
    verify.check(static_cast<double>(r.cf.steps) > lb_step,
                 "Theorem 1 lower bound at n=" + std::to_string(n));
    verify.check(static_cast<double>(r.cf.registers) >= lb_reg,
                 "Theorem 2 lower bound at n=" + std::to_string(n));
    // Lemma 3 / Lemma 6 inequalities on the measured profile.
    verify.check(bounds::lemma3_satisfied(un, r.measured_atomicity,
                                          r.cf.write_steps,
                                          r.cf.read_registers),
                 "Lemma 3 at n=" + std::to_string(n));
    verify.check(bounds::lemma6_satisfied(un, r.measured_atomicity,
                                          r.cf.registers,
                                          r.cf.write_registers),
                 "Lemma 6 at n=" + std::to_string(n));
  }
  std::printf("%s\n", sweep.render().c_str());

  // --- Section 2: the exact-atomicity variant. ---
  std::printf(
      "Exact-atomicity variant (arity 2^l - 1: atomicity is exactly l,\n"
      "constants within one extra level of the formula):\n\n");
  TextTable exact({"n", "l", "cf step", "7ceil(logn/l)", "cf reg",
                   "3ceil(logn/l)", "atom"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (meta[i].section != "thm3-exact") {
      continue;
    }
    const StudyResult& r = results[i];
    const int n = meta[i].n;
    const int l = meta[i].l;
    const auto un = static_cast<std::uint64_t>(n);
    exact.add_row({std::to_string(n), std::to_string(l),
                   std::to_string(r.cf.steps),
                   std::to_string(bounds::thm3_cf_step_upper(un, l)),
                   std::to_string(r.cf.registers),
                   std::to_string(bounds::thm3_cf_register_upper(un, l)),
                   std::to_string(r.measured_atomicity)});
    json.study(r, {{"section", std::string("thm3-exact")},
                   {"l", cfc::bench::jv(l)}});
    verify.check(r.measured_atomicity <= l,
                 "exact variant atomicity == l at n=" + std::to_string(n));
    verify.check(r.cf.steps <= bounds::thm3_cf_step_upper(un, l) + 14,
                 "exact variant within one level of formula at n=" +
                     std::to_string(n));
  }
  std::printf("%s\n", exact.render().c_str());

  // --- Section 3: Lamport's constant-cost endpoint. ---
  std::printf(
      "Lamport's fast algorithm [Lam87] (atomicity log n): constant\n"
      "contention-free complexity — the l = log n endpoint of the table:\n\n");
  TextTable lam_table({"n", "cf step", "cf reg", "entry", "exit", "atom"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (meta[i].section != "lamport-fast") {
      continue;
    }
    const StudyResult& r = results[i];
    lam_table.add_row({std::to_string(meta[i].n), std::to_string(r.cf.steps),
                       std::to_string(r.cf.registers),
                       std::to_string(r.cf_entry.steps),
                       std::to_string(r.cf_exit.steps),
                       std::to_string(r.measured_atomicity)});
    json.study(r, {{"section", std::string("lamport-fast")}});
    verify.check(r.cf.steps == 7 && r.cf.registers == 3,
                 "Lamport constant 7/3 at n=" + std::to_string(meta[i].n));
  }
  std::printf("%s\n", lam_table.render().c_str());

  // --- Section 4: the [Kes82] worst-case register row. ---
  std::printf(
      "Worst-case register row [Kes82]: Kessels tournament (atomicity 1),\n"
      "register complexity along any run is O(log n) — measured as the max\n"
      "over random schedules:\n\n");
  // Per the paper, worst-case complexity is the *sum* of the entry-code and
  // exit-code maxima (StudyResult::wc). A Kessels node costs at most 4
  // entry registers plus 1 exit register per level (the own-intent bit
  // counts in both windows).
  TextTable kes({"n", "wc reg found", "5*log2(n)", "wc entry steps found"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (meta[i].section != "kessels-wc") {
      continue;
    }
    const StudyResult& r = results[i];
    const int n = meta[i].n;
    const int depth = bounds::ceil_log2(static_cast<std::uint64_t>(n));
    kes.add_row({std::to_string(n), std::to_string(r.wc.registers),
                 std::to_string(5 * depth),
                 std::to_string(r.wc_entry.steps)});
    json.study(r, {{"section", std::string("kessels-wc")},
                   {"truncated",
                    cfc::bench::warn_truncated(
                        r.truncated, "kessels-wc n=" + std::to_string(n))}});
    verify.check(r.wc.registers <= 5 * depth,
                 "Kessels wc register <= 5 log n at n=" + std::to_string(n));
  }
  std::printf("%s\n", kes.render().c_str());

  // --- Section 5: the [AT92] unbounded worst-case step witness. ---
  if (opts.selected(lamport.info)) {
    std::printf(
        "Worst-case step row [AT92]: unbounded — the scripted 3-process\n"
        "adversary pushes the winner's clean-window entry steps past any\n"
        "bound (one extra step per adversary spin):\n\n");
    TextTable at92({"adversary spins", "winner entry steps"});
    int prev = 0;
    for (const int spins : {10, 100, 1000, 10000}) {
      const int steps = unbounded_witness(lamport.factory, spins);
      at92.add_row({std::to_string(spins), std::to_string(steps)});
      json.row({{"section", std::string("at92-witness")},
                {"spins", cfc::bench::jv(spins)},
                {"entry_steps", cfc::bench::jv(steps)}});
      verify.check(steps > prev,
                   "witness grows at spins=" + std::to_string(spins));
      prev = steps;
    }
    std::printf("%s\n", at92.render().c_str());
  }

  return json.finish(verify);
}
