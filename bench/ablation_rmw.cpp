// A3 (ablation) — the rmw escape hatch: the Theorem 1/2 lower bounds bind
// only atomic read/write registers. A single test-and-set bit gives a mutex
// with contention-free step complexity 2 and register complexity 1 for any
// n — below the register-model lower bound once n is large. This bench
// prints the separation as n grows, pitting the registry's rmw algorithm
// against the register-model Theorem 3 tree.
#include <cstdio>
#include <string>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/algorithm_registry.h"
#include "core/bounds.h"

int main(int argc, char** argv) {
  using namespace cfc;
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("ablation_rmw", opts.out);
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();

  const MutexFactory tas_factory = registry.mutex("tas-lock").factory;
  const MutexFactory tree_factory = registry.mutex("thm3-exact-l1").factory;

  TextTable t({"n", "thm1 lb (l=1)", "tas-lock cf step",
               "tree(l=1) cf step", "tas cf reg", "tree(l=1) cf reg"});
  for (const int n : {4, 16, 64, 256, 1024, 4096}) {
    const MutexCfResult tas = measure_mutex_contention_free(
        tas_factory, n, AccessPolicy::Unrestricted, /*max_pids=*/3);
    const MutexCfResult tree = measure_mutex_contention_free(
        tree_factory, n, AccessPolicy::RegistersOnly, /*max_pids=*/3);
    const double lb = bounds::thm1_cf_step_lower(n, 1);
    char lb_s[32];
    std::snprintf(lb_s, sizeof(lb_s), "%.2f", lb);
    t.add_row({std::to_string(n), lb_s, std::to_string(tas.session.steps),
               std::to_string(tree.session.steps),
               std::to_string(tas.session.registers),
               std::to_string(tree.session.registers)});
    json.row({{"section", std::string("separation")},
              {"n", cfc::bench::jv(n)},
              {"thm1_lb", cfc::bench::jv(lb)},
              {"tas_cf_step", cfc::bench::jv(tas.session.steps)},
              {"tree_cf_step", cfc::bench::jv(tree.session.steps)},
              {"tas_cf_reg", cfc::bench::jv(tas.session.registers)},
              {"tree_cf_reg", cfc::bench::jv(tree.session.registers)}});
    verify.check(tas.session.steps == 2,
                 "tas constant at n=" + std::to_string(n));
    verify.check(static_cast<double>(tree.session.steps) > lb,
                 "register algorithm obeys Theorem 1 at n=" +
                     std::to_string(n));
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "The register-model tree grows as Theorem 3 predicts while the rmw\n"
      "lock stays at 2 steps / 1 register: the contention-free measures\n"
      "separate the primitives' computational power (the paper's thesis).\n");

  return json.finish(verify);
}
