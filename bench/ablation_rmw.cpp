// A3 (ablation) — the rmw escape hatch: the Theorem 1/2 lower bounds bind
// only atomic read/write registers. A single test-and-set bit gives a mutex
// with contention-free step complexity 2 and register complexity 1 for any
// n — below the register-model lower bound once n is large. This bench
// prints the separation as n grows, pitting the registry's rmw algorithm
// against the register-model Theorem 3 tree, both through one Campaign.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/study.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/algorithm_registry.h"
#include "core/bounds.h"

int main(int argc, char** argv) {
  using namespace cfc;
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  if (cfc::bench::handle_list(opts, {cfc::StudyKind::Mutex})) {
    return 0;
  }
  const auto runner = opts.make_runner();
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("ablation_rmw", opts.out);

  // A paired separation (rmw lock vs register-model tree): an --algo
  // filter that drops either side skips the sweep rather than comparing
  // against nothing.
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
  const bool pair_selected = opts.selected(registry.mutex("tas-lock").info) &&
                             opts.selected(registry.mutex("thm3-exact-l1").info);
  if (!pair_selected) {
    cfc::bench::note_algo_inapplicable(
        opts, "the separation needs both tas-lock and thm3-exact-l1; "
              "sweep skipped");
  }
  const std::vector<int> ns =
      pair_selected ? std::vector<int>{4, 16, 64, 256, 1024, 4096}
                    : std::vector<int>{};
  Campaign campaign;
  for (const int n : ns) {
    campaign.add(StudySpec::of("tas-lock")
                     .n(n)
                     .sample_pids(3)
                     .contention_free());
    campaign.add(StudySpec::of("thm3-exact-l1")
                     .n(n)
                     .policy(AccessPolicy::RegistersOnly)
                     .sample_pids(3)
                     .contention_free());
  }
  const std::vector<StudyResult> results = campaign.run(runner.get());

  TextTable t({"n", "thm1 lb (l=1)", "tas-lock cf step",
               "tree(l=1) cf step", "tas cf reg", "tree(l=1) cf reg"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const int n = ns[i];
    const StudyResult& tas = results[2 * i];
    const StudyResult& tree = results[2 * i + 1];
    const double lb = bounds::thm1_cf_step_lower(n, 1);
    char lb_s[32];
    std::snprintf(lb_s, sizeof(lb_s), "%.2f", lb);
    t.add_row({std::to_string(n), lb_s, std::to_string(tas.cf.steps),
               std::to_string(tree.cf.steps),
               std::to_string(tas.cf.registers),
               std::to_string(tree.cf.registers)});
    json.study(tas, {{"section", std::string("separation")},
                     {"thm1_lb", cfc::bench::jv(lb)}});
    json.study(tree, {{"section", std::string("separation")},
                      {"thm1_lb", cfc::bench::jv(lb)}});
    verify.check(tas.cf.steps == 2,
                 "tas constant at n=" + std::to_string(n));
    verify.check(static_cast<double>(tree.cf.steps) > lb,
                 "register algorithm obeys Theorem 1 at n=" +
                     std::to_string(n));
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "The register-model tree grows as Theorem 3 predicts while the rmw\n"
      "lock stays at 2 steps / 1 register: the contention-free measures\n"
      "separate the primitives' computational power (the paper's thesis).\n");

  return json.finish(verify);
}
