// A6 (extension) — the paper's "exercise for the reader": bounds for ALL
// 2^8 bit-operation models, not just the five table columns. Classifies
// every model for deterministic-naming solvability (solvable iff it has a
// value-returning modifier: test-and-set, test-and-reset, or
// test-and-flip), measures the four complexity measures for each solvable
// model with the best applicable algorithm (originals + duals), and prints
// the census grouped by outcome. The candidate measurements route through
// one Campaign (run_model_census -> measure_registry_naming).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/model_census.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/bounds.h"

int main(int argc, char** argv) {
  using namespace cfc;
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  if (cfc::bench::handle_list(opts, {cfc::StudyKind::Naming})) {
    return 0;
  }
  cfc::bench::note_algo_inapplicable(
      opts, "the census cells are min-over-pool and need the full registry");
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("census_naming_models", opts.out);

  const int n = 16;
  const int log_n = bounds::ceil_log2(static_cast<std::uint64_t>(n));
  std::printf("census of all 256 models at n = %d (log n = %d)\n\n", n,
              log_n);

  const auto census = run_model_census(n, opts.seeds(4));

  // Group models by their measured cell signature.
  struct Group {
    std::vector<int> masks;
  };
  std::map<std::string, Group> groups;
  int unsolvable = 0;
  for (const ModelCensusEntry& e : census) {
    if (!e.solvable) {
      unsolvable += 1;
      continue;
    }
    const Table2Cell& c = *e.cells;
    char key[64];
    std::snprintf(key, sizeof(key), "cf(%d,%d) wc(%d,%d)", c.cf_step,
                  c.cf_register, c.wc_step, c.wc_register);
    groups[key].masks.push_back(e.model.mask());
  }

  std::printf("unsolvable models (no tas/tar/taf): %d\n\n", unsolvable);
  verify.check(unsolvable == 32, "exactly 2^5 unsolvable models");

  TextTable t({"cells (cf step,reg / wc step,reg)", "#models", "example"});
  for (const auto& [key, group] : groups) {
    const Model example =
        Model::from_mask(static_cast<std::uint8_t>(group.masks.front()));
    t.add_row({key, std::to_string(group.masks.size()),
               example.to_string()});
    json.row({{"section", std::string("group")},
              {"cells", std::string(key)},
              {"models", cfc::bench::jv(static_cast<int>(group.masks.size()))},
              {"example", example.to_string()}});
  }
  std::printf("%s\n", t.render().c_str());

  const CensusSummary s = summarize(census, n);
  json.row({{"section", std::string("summary-counts")},
            {"n", cfc::bench::jv(n)},
            {"total", cfc::bench::jv(s.total)},
            {"solvable", cfc::bench::jv(s.solvable)},
            {"all_log_n", cfc::bench::jv(s.all_log_n)},
            {"all_n_minus_1", cfc::bench::jv(s.all_n_minus_1)}});
  std::printf(
      "summary: %d models, %d solvable, %d fully log-n, %d fully (n-1)\n\n",
      s.total, s.solvable, s.all_log_n, s.all_n_minus_1);
  verify.check(s.solvable == 224, "224 solvable models");
  verify.check(s.all_log_n >= 128,
               "every taf-containing model is fully log n");

  // Duality: the census must be symmetric under the dual map.
  bool dual_symmetric = true;
  for (const ModelCensusEntry& e : census) {
    const ModelCensusEntry& de = census[e.model.dual_model().mask()];
    if (e.solvable != de.solvable) {
      dual_symmetric = false;
    }
    if (e.cells.has_value() && de.cells.has_value()) {
      if (e.cells->cf_step != de.cells->cf_step ||
          e.cells->wc_register != de.cells->wc_register) {
        dual_symmetric = false;
      }
    }
  }
  verify.check(dual_symmetric, "census symmetric under duality");

  // Spot-check the five paper columns inside the census.
  const auto cell = [&](Model m) { return *census[m.mask()].cells; };
  verify.check(cell(Model::test_and_set()).wc_step == n - 1,
               "paper col 1 embeds");
  verify.check(cell(Model::read_test_and_set()).cf_step <= log_n + 1,
               "paper col 2 embeds");
  verify.check(cell(Model::read_tas_tar()).wc_register == log_n,
               "paper col 3 embeds");
  verify.check(cell(Model::test_and_flip()).wc_step == log_n,
               "paper col 4 embeds");
  verify.check(cell(Model::rmw()).cf_step == log_n, "paper col 5 embeds");

  // New facts beyond the paper's table, verified by measurement:
  //  * {tas, tar} without read already achieves wc register = log n;
  //  * a lone {tar} model is the exact mirror of lone {tas}: all n-1.
  verify.check(
      cell(Model{BitOp::TestAndSet, BitOp::TestAndReset}).wc_register ==
          log_n,
      "{tas,tar} (no read) already gets wc register = log n");
  verify.check(cell(Model{BitOp::TestAndReset}).cf_register == n - 1,
               "{tar} mirrors {tas}: cf register n-1");

  return json.finish(verify);
}
