// A2 (ablation) — the tree-node choice in the Theorem 3 construction:
// Peterson vs Kessels two-process nodes (atomicity 1) vs Lamport fast-mutex
// nodes at higher atomicity, plus the two arity policies. Per-level
// contention-free constants:
//
//   node        cf steps/level  cf regs/level  atomicity
//   peterson    4               3              1
//   kessels     5               4              1
//   lamport     7               3              l (arity 2^l - 1)
//
// The trade: wider nodes mean fewer levels (7 * ceil(log n / l) total), so
// past a modest l the Lamport tree wins on steps despite the larger
// per-level constant; bit-only trees win at l = 1. The candidate pool is
// the registry's tournament trees plus its Theorem 3 grid, measured as one
// Campaign (the shared tree measurements are deduplicated automatically —
// e.g. the n=1024 crossover check reuses the sweep's cells).
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/study.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/algorithm_registry.h"
#include "core/bounds.h"

namespace {

cfc::StudySpec tree_cf_spec(const std::string& subject, int n) {
  return cfc::StudySpec::of(subject)
      .n(n)
      .policy(cfc::AccessPolicy::RegistersOnly)
      .sample_pids(6)
      .contention_free();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cfc;
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  if (cfc::bench::handle_list(opts, {cfc::StudyKind::Mutex})) {
    return 0;
  }
  const auto runner = opts.make_runner();
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("ablation_tree_nodes", opts.out);
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();

  Campaign campaign;
  struct Meta {
    std::string label;
    int n;
  };
  std::vector<Meta> meta;
  for (const int n : {16, 64, 256, 1024}) {
    for (const MutexAlgorithmEntry* entry :
         registry.mutex_for_n(n, "tournament")) {
      if (!opts.selected(entry->info)) {
        continue;
      }
      campaign.add(tree_cf_spec(entry->info.name, n));
      meta.push_back({entry->info.name + " (l=1)", n});
    }
    for (const MutexAlgorithmEntry* entry :
         registry.mutex_for_n(n, "thm3-exact")) {
      const int l = entry->info.atomicity_param;
      if (l < 2 || l > 4 || !opts.selected(entry->info)) {
        continue;
      }
      campaign.add(tree_cf_spec(entry->info.name, n));
      meta.push_back({"lamport-tree l=" + std::to_string(l), n});
    }
    if (opts.selected(registry.mutex("thm3-paper-l3").info)) {
      campaign.add(tree_cf_spec("thm3-paper-l3", n));
      meta.push_back({"lamport-tree l=3 paper", n});
    }
  }
  // Shape check at n = 1024: the l=4 Lamport tree beats the bit trees on
  // steps (7*ceil(10/4)=21 < 4*10=40) — wider atomicity buys time. These
  // two specs duplicate sweep entries at sample_pids=4, so they form
  // distinct measurement cells only where the sweep used a different
  // sample; identical requests are deduplicated by the campaign.
  const bool crossover = opts.full_pool();
  if (crossover) {
    campaign.add(tree_cf_spec("peterson-tree", 1024).sample_pids(4));
    meta.push_back({"crossover-bit", 1024});
    campaign.add(tree_cf_spec("thm3-exact-l4", 1024).sample_pids(4));
    meta.push_back({"crossover-wide", 1024});
  }

  const std::vector<StudyResult> results = campaign.run(runner.get());

  TextTable t({"tree", "n", "cf step", "cf reg", "atomicity", "depth-eq"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (meta[i].label.rfind("crossover-", 0) == 0) {
      continue;
    }
    const StudyResult& r = results[i];
    // Per-level cost: steps divided by the implied depth.
    t.add_row({meta[i].label, std::to_string(meta[i].n),
               std::to_string(r.cf.steps), std::to_string(r.cf.registers),
               std::to_string(r.measured_atomicity),
               std::to_string(r.cf.registers / 3)});
    json.study(r, {{"section", std::string("tree-nodes")},
                   {"tree", meta[i].label}});
    verify.check(r.cf.steps > 0, "measured " + meta[i].label);
  }
  std::printf("%s\n", t.render().c_str());

  if (crossover) {
    const StudyResult& bit_tree = results[results.size() - 2];
    const StudyResult& wide_tree = results[results.size() - 1];
    verify.check(wide_tree.cf.steps < bit_tree.cf.steps,
                 "l=4 Lamport tree beats bit tournament on cf steps at "
                 "n=1024");
    std::printf("crossover at n=1024: bit tournament %d steps vs "
                "l=4 Lamport tree %d steps\n\n",
                bit_tree.cf.steps, wide_tree.cf.steps);
  }

  std::printf(
      "Per-level constants (from any row: steps = const * levels):\n"
      "  peterson 4/3, kessels 5/4, lamport 7/3 — matching [PF77], [Kes82],\n"
      "  [Lam87] respectively.\n");

  return json.finish(verify);
}
