// A2 (ablation) — the tree-node choice in the Theorem 3 construction:
// Peterson vs Kessels two-process nodes (atomicity 1) vs Lamport fast-mutex
// nodes at higher atomicity, plus the two arity policies. Per-level
// contention-free constants:
//
//   node        cf steps/level  cf regs/level  atomicity
//   peterson    4               3              1
//   kessels     5               4              1
//   lamport     7               3              l (arity 2^l - 1)
//
// The trade: wider nodes mean fewer levels (7 * ceil(log n / l) total), so
// past a modest l the Lamport tree wins on steps despite the larger
// per-level constant; bit-only trees win at l = 1. The candidate pool is
// the registry's tournament trees plus its Theorem 3 grid.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/algorithm_registry.h"
#include "core/bounds.h"

int main(int argc, char** argv) {
  using namespace cfc;
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("ablation_tree_nodes", opts.out);
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();

  struct Case {
    std::string label;
    MutexFactory factory;
  };
  TextTable t({"tree", "n", "cf step", "cf reg", "atomicity", "depth-eq"});
  for (const int n : {16, 64, 256, 1024}) {
    std::vector<Case> cases;
    for (const MutexAlgorithmEntry* entry :
         registry.mutex_for_n(n, "tournament")) {
      cases.push_back({entry->info.name + " (l=1)", entry->factory});
    }
    for (const MutexAlgorithmEntry* entry :
         registry.mutex_for_n(n, "thm3-exact")) {
      const int l = entry->info.atomicity_param;
      if (l >= 2 && l <= 4) {
        cases.push_back({"lamport-tree l=" + std::to_string(l),
                         entry->factory});
      }
    }
    cases.push_back({"lamport-tree l=3 paper",
                     registry.mutex("thm3-paper-l3").factory});

    for (const Case& c : cases) {
      const MutexCfResult r = measure_mutex_contention_free(
          c.factory, n, AccessPolicy::RegistersOnly, /*max_pids=*/6);
      // Per-level cost: steps divided by the implied depth.
      t.add_row({c.label, std::to_string(n), std::to_string(r.session.steps),
                 std::to_string(r.session.registers),
                 std::to_string(r.measured_atomicity),
                 std::to_string(r.session.registers / 3)});
      json.row({{"section", std::string("tree-nodes")},
                {"tree", c.label},
                {"n", cfc::bench::jv(n)},
                {"cf_step", cfc::bench::jv(r.session.steps)},
                {"cf_reg", cfc::bench::jv(r.session.registers)},
                {"atomicity", cfc::bench::jv(r.measured_atomicity)}});
      verify.check(r.session.steps > 0, "measured " + c.label);
    }

    // Shape check: at n = 1024, the l=4 Lamport tree beats the bit trees on
    // steps (7*ceil(10/4)=21 < 4*10=40) — wider atomicity buys time.
    if (n == 1024) {
      const MutexCfResult bit_tree = measure_mutex_contention_free(
          registry.mutex("peterson-tree").factory, n,
          AccessPolicy::RegistersOnly, /*max_pids=*/4);
      const MutexCfResult wide_tree = measure_mutex_contention_free(
          registry.mutex("thm3-exact-l4").factory, n,
          AccessPolicy::RegistersOnly, /*max_pids=*/4);
      verify.check(wide_tree.session.steps < bit_tree.session.steps,
                   "l=4 Lamport tree beats bit tournament on cf steps at "
                   "n=1024");
      std::printf("crossover at n=1024: bit tournament %d steps vs "
                  "l=4 Lamport tree %d steps\n\n",
                  bit_tree.session.steps, wide_tree.session.steps);
    }
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "Per-level constants (from any row: steps = const * levels):\n"
      "  peterson 4/3, kessels 5/4, lamport 7/3 — matching [PF77], [Kes82],\n"
      "  [Lam87] respectively.\n");

  return json.finish(verify);
}
