// F1 (derived figure) — the shape behind Table 1: lower- and upper-bound
// curves for contention-free step and register complexity as n grows, for
// several atomicities l. The paper states these only as formulas; this
// bench prints the series (CSV-style) so the gap between Theorem 1/2 lower
// bounds and the Theorem 3 upper bound is visible, including:
//   * the constant upper bound at l = log n (Lamport's regime),
//   * the sqrt-vs-linear separation of register vs step lower bounds,
//   * the l + c - 1 bit-access floor (Section 2.4 corollary).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/bounds.h"

int main(int argc, char** argv) {
  using namespace cfc;
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  if (cfc::bench::handle_list(opts, {})) {
    return 0;
  }
  cfc::bench::note_algo_inapplicable(
      opts, "derived formula curves; no registry-enumerated subjects");
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("fig_bound_curves", opts.out);

  const std::vector<int> ls = {1, 2, 4, 8, 16};

  std::printf("# contention-free STEP bounds\n");
  std::printf("# n");
  for (const int l : ls) {
    std::printf(", lb(l=%d), ub(l=%d)", l, l);
  }
  std::printf(", ub(l=log n)\n");
  for (int e = 2; e <= 20; ++e) {
    const std::uint64_t n = 1ull << e;
    std::printf("%llu", static_cast<unsigned long long>(n));
    for (const int l : ls) {
      const double lb = bounds::thm1_cf_step_lower(static_cast<double>(n), l);
      const int ub =
          l <= e ? bounds::thm3_cf_step_upper(n, l) : 7;  // l capped at log n
      std::printf(", %.2f, %d", lb, ub);
      json.row({{"section", std::string("step-bounds")},
                {"n", cfc::bench::jv(static_cast<long long>(n))},
                {"l", cfc::bench::jv(l)},
                {"lb", cfc::bench::jv(lb)},
                {"ub", cfc::bench::jv(ub)}});
      verify.check(static_cast<double>(ub) > lb,
                   "step ub dominates lb");
    }
    std::printf(", %d\n", bounds::thm3_cf_step_upper(n, e));
  }

  std::printf("\n# contention-free REGISTER bounds\n");
  std::printf("# n");
  for (const int l : ls) {
    std::printf(", lb(l=%d), ub(l=%d)", l, l);
  }
  std::printf("\n");
  for (int e = 2; e <= 20; ++e) {
    const std::uint64_t n = 1ull << e;
    std::printf("%llu", static_cast<unsigned long long>(n));
    for (const int l : ls) {
      const double lb =
          bounds::thm2_cf_register_lower(static_cast<double>(n), l);
      const int ub =
          l <= e ? bounds::thm3_cf_register_upper(n, l) : 3;
      std::printf(", %.2f, %d", lb, ub);
      json.row({{"section", std::string("register-bounds")},
                {"n", cfc::bench::jv(static_cast<long long>(n))},
                {"l", cfc::bench::jv(l)},
                {"lb", cfc::bench::jv(lb)},
                {"ub", cfc::bench::jv(ub)}});
      verify.check(static_cast<double>(ub) >= lb, "register ub dominates lb");
    }
    std::printf("\n");
  }

  std::printf(
      "\n# Section 2.4 corollary: minimum shared-BIT accesses l + c - 1\n");
  std::printf("# (even at high atomicity, bit traffic cannot be constant)\n");
  std::printf("# n, l=1, l=4, l=16, l=log n\n");
  for (int e = 4; e <= 20; e += 4) {
    const std::uint64_t n = 1ull << e;
    auto floor_at = [&](int l) {
      const int c = bounds::thm1_min_cf_steps(n, l);
      return bounds::min_contention_free_bit_accesses(l, c);
    };
    std::printf("%llu, %d, %d, %d, %d\n",
                static_cast<unsigned long long>(n), floor_at(1), floor_at(4),
                floor_at(16), floor_at(e));
    verify.check(floor_at(e) >= e, "bit-access floor >= log n");
  }

  return json.finish(verify);
}
