// T2 — regenerates the paper's Section 3.3 table "Tight bounds for naming"
// and validates each cell against measured values:
//
//                 test-and-  read+      read+tas+   test-and-   rmw
//                 set        tas        tar         flip        (all)
//   c-f register  n-1        log n      log n       log n       log n
//   c-f step      n-1        log n      log n       log n       log n
//   w-c register  n-1        n-1        log n       log n       log n
//   w-c step      n-1        n-1        n-1         log n       log n
//
// Per cell, the *problem* complexity is the best implemented algorithm
// legal in the column's model, drawn from the AlgorithmRegistry's naming
// catalogue (tas-scan Thm 4.3, tas-read-search Thm 4.4, tas-tar-tree
// Thm 4.2, taf-tree Thm 4.1, plus the Section 3.2 duals). The candidate
// pool is measured once per n through one Campaign
// (measure_registry_naming) and shared between the five model columns; the
// worst case is searched over the sequential schedule, round-robin, the
// Theorem 6 lockstep adversary, and seeded random schedules.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/naming_complexity.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/bounds.h"

namespace {

using namespace cfc;

std::string cell_str(int v, int n, int log_n) {
  if (v == n - 1) {
    return std::to_string(v) + " (n-1)";
  }
  if (v == log_n) {
    return std::to_string(v) + " (log n)";
  }
  return std::to_string(v);
}

}  // namespace

int main(int argc, char** argv) {
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  if (cfc::bench::handle_list(opts, {cfc::StudyKind::Naming})) {
    return 0;
  }
  if (!opts.full_pool()) {
    std::printf(
        "  [note] --algo=%s: the table's cells are min-over-pool, so the "
        "full registry\n  is still measured; the filter restricts only the "
        "emitted candidate studies\n  and skips the paper-cell checks.\n",
        opts.algo.c_str());
  }
  const auto runner = opts.make_runner();
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("table2_naming_bounds", opts.out);

  std::printf("Paper table (Section 3.3), tight bounds for naming:\n\n");
  {
    TextTable t({"measure", "tas", "read+tas", "read+tas+tar", "taf", "rmw"});
    t.add_row({"c-f register", "n-1", "log n", "log n", "log n", "log n"});
    t.add_row({"c-f step", "n-1", "log n", "log n", "log n", "log n"});
    t.add_row({"w-c register", "n-1", "n-1", "log n", "log n", "log n"});
    t.add_row({"w-c step", "n-1", "n-1", "n-1", "log n", "log n"});
    std::printf("%s\n", t.render().c_str());
  }

  const std::vector<std::uint64_t> seeds = opts.seeds(8);
  for (const int n : {8, 16, 32, 64}) {
    const int log_n = bounds::ceil_log2(static_cast<std::uint64_t>(n));
    std::printf("Measured, n = %d (log n = %d):\n\n", n, log_n);
    const RegistryNamingMeasurements reg =
        measure_registry_naming(n, seeds, runner.get());
    for (std::size_t i = 0; i < reg.studies.size(); ++i) {
      if (opts.selected(reg.candidates[i]->info)) {
        json.study(reg.studies[i], {{"section", std::string("candidates")}});
      }
    }
    const std::vector<Table2Column> table = build_table2_columns(reg);

    TextTable t({"measure", "tas", "read+tas", "read+tas+tar", "taf", "rmw"});
    std::vector<Table2Cell> cells;
    cells.reserve(table.size());
    for (const Table2Column& col : table) {
      cells.push_back(col.best());
      const Table2Cell& c = cells.back();
      json.row({{"section", std::string("table2")},
                {"n", cfc::bench::jv(n)},
                {"model", col.model_label},
                {"cf_step", cfc::bench::jv(c.cf_step)},
                {"cf_reg", cfc::bench::jv(c.cf_register)},
                {"wc_step", cfc::bench::jv(c.wc_step)},
                {"wc_reg", cfc::bench::jv(c.wc_register)}});
    }
    auto row = [&](const char* label, auto proj) {
      std::vector<std::string> cs = {label};
      for (const Table2Cell& c : cells) {
        cs.push_back(cell_str(proj(c), n, log_n));
      }
      t.add_row(cs);
    };
    row("c-f register", [](const Table2Cell& c) { return c.cf_register; });
    row("c-f step", [](const Table2Cell& c) { return c.cf_step; });
    row("w-c register", [](const Table2Cell& c) { return c.wc_register; });
    row("w-c step", [](const Table2Cell& c) { return c.wc_step; });
    std::printf("%s\n", t.render().c_str());

    if (!opts.full_pool()) {
      continue;  // paper-cell checks assume the full candidate pool
    }
    const std::string at = " at n=" + std::to_string(n);
    // Column 1: test-and-set — n-1 across all four measures.
    verify.check(cells[0].cf_register == n - 1, "tas c-f register = n-1" + at);
    verify.check(cells[0].cf_step == n - 1, "tas c-f step = n-1" + at);
    verify.check(cells[0].wc_register == n - 1, "tas w-c register = n-1" + at);
    verify.check(cells[0].wc_step == n - 1, "tas w-c step = n-1" + at);
    // Column 2: read+tas — contention-free collapses to ~log n (the +1 is
    // the final test-and-set after the binary search), worst case n-1.
    verify.check(cells[1].cf_step <= log_n + 1 && cells[1].cf_step >= log_n,
                 "read+tas c-f step ~ log n" + at);
    verify.check(cells[1].cf_register <= log_n + 1,
                 "read+tas c-f register ~ log n" + at);
    verify.check(cells[1].wc_step == n - 1, "read+tas w-c step = n-1" + at);
    verify.check(cells[1].wc_register == n - 1,
                 "read+tas w-c register = n-1" + at);
    // Column 3: +tas+tar — worst-case register drops to log n.
    verify.check(cells[2].wc_register == log_n,
                 "read+tas+tar w-c register = log n" + at);
    verify.check(cells[2].wc_step == n - 1,
                 "read+tas+tar w-c step = n-1" + at);
    verify.check(cells[2].cf_register <= log_n,
                 "read+tas+tar c-f register <= log n" + at);
    verify.check(cells[2].cf_step <= log_n + 1,
                 "read+tas+tar c-f step ~ log n" + at);
    // Column 4: test-and-flip — log n everywhere, exactly.
    verify.check(cells[3].cf_register == log_n && cells[3].cf_step == log_n &&
                     cells[3].wc_register == log_n &&
                     cells[3].wc_step == log_n,
                 "taf all four = log n" + at);
    // Column 5: rmw — inherits the best: log n everywhere.
    verify.check(cells[4].cf_register == log_n && cells[4].cf_step == log_n &&
                     cells[4].wc_register == log_n &&
                     cells[4].wc_step == log_n,
                 "rmw all four = log n" + at);
  }

  std::printf(
      "Lower-bound demonstrations (Theorems 5-7) are exercised by the test\n"
      "suite (naming_bounds_test); the w-c step values above are found by\n"
      "the Theorem 6 lockstep adversary, and the tas column's n-1\n"
      "contention-free register complexity is the Theorem 7 sequential run.\n");

  return json.finish(verify);
}
