// A1 (ablation) — contention detection: the Lemma 1 reduction
// (mutex -> detector) vs. the direct splitter tree, across atomicities.
// Shows (a) the reduction preserves contention-free complexity up to one
// extra access, and (b) detection has *bounded* worst-case step complexity
// O(ceil(log n / l)) (Section 2.6 remark) while mutual exclusion does not.
//
// Both candidate pools enumerate via the AlgorithmRegistry and run as one
// Campaign per n: the direct detectors are registry subjects, the Lemma 1
// detectors ad-hoc StudySpec factories wrapping the registry's
// constant-time mutex algorithms (tags "fast" and "rmw") plus the l=2
// Theorem 3 tree.
//
// Battery note (PR 3): the worst-case search is the Study engine's Random
// strategy — seeded random schedules only. The pre-Study battery
// additionally ran the deterministic round-robin schedule (still
// available via the deprecated seeds overload of
// search_detector_worst_case), so "wc found" values are not comparable
// with pre-PR-3 BENCH_ablation_detection.json artifacts; the emitted
// study objects record strategy and schedules_tried explicitly.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/study.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/algorithm_registry.h"
#include "core/bounds.h"
#include "mutex/detector_adapter.h"

int main(int argc, char** argv) {
  using namespace cfc;
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  if (cfc::bench::handle_list(opts, {cfc::StudyKind::Detector, cfc::StudyKind::Mutex})) {
    return 0;
  }
  const auto runner = opts.make_runner();
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("ablation_detection", opts.out);
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();

  const std::vector<std::uint64_t> seeds = opts.seeds(8);

  std::printf(
      "Contention detection, contention-free and worst-found complexity:\n\n");
  TextTable t({"detector", "n", "cf step", "cf reg", "wc step found",
               "wc reg found", "atomicity"});

  for (const int n : {16, 64, 256}) {
    Campaign campaign;
    const auto add_spec = [&](StudySpec spec) {
      campaign.add(std::move(spec)
                       .kind(StudyKind::Detector)
                       .n(n)
                       .contention_free()
                       .worst_case(SearchStrategy::Random)
                       .seeds(seeds));
    };
    for (const DetectorAlgorithmEntry* entry :
         registry.detector_algorithms()) {
      if (opts.selected(entry->info)) {
        add_spec(StudySpec::of(entry->info.name));
      }
    }
    for (const char* tag : {"fast", "rmw"}) {
      for (const MutexAlgorithmEntry* entry : registry.mutex_for_n(n, tag)) {
        if (opts.selected(entry->info)) {
          add_spec(StudySpec::of("lemma1(" + entry->info.name + ")")
                       .factory(DetectorFromMutex::factory(entry->factory)));
        }
      }
    }
    const MutexAlgorithmEntry& tree = registry.mutex("thm3-exact-l2");
    if (opts.selected(tree.info)) {
      add_spec(StudySpec::of("lemma1(thm3-exact-l2)")
                   .factory(DetectorFromMutex::factory(tree.factory)));
    }

    for (const StudyResult& r : campaign.run(runner.get())) {
      t.add_row({r.subject, std::to_string(n), std::to_string(r.cf.steps),
                 std::to_string(r.cf.registers), std::to_string(r.wc.steps),
                 std::to_string(r.wc.registers),
                 std::to_string(r.cf.atomicity)});
      json.study(r, {{"section", std::string("detector")},
                     {"truncated",
                      cfc::bench::warn_truncated(
                          r.truncated || r.cf.truncated, r.subject)}});
      verify.check(r.wc.steps >= r.cf.steps, "wc >= cf for " + r.subject);
    }

    if (!opts.full_pool()) {
      continue;  // the named-subject claims below assume the full pool
    }
    // The reduction overhead claim: lemma1(lamport) == lamport entry + 1.
    const StudyResult lam = run_study(
        StudySpec::of("lemma1(lamport-fast)")
            .kind(StudyKind::Detector)
            .n(n)
            .contention_free()
            .factory(DetectorFromMutex::factory(
                registry.mutex("lamport-fast").factory)),
        runner.get());
    verify.check(lam.cf.steps == 6,
                 "lemma1(lamport) cf = entry(5) + 1 at n=" +
                     std::to_string(n));
    // The bounded-worst-case claim for the direct detector: the splitter
    // tree's wc steps are exactly 4 * depth, independent of schedule.
    const StudyResult sp = run_study(StudySpec::of("splitter-tree-l2")
                                         .kind(StudyKind::Detector)
                                         .n(n)
                                         .worst_case(SearchStrategy::Random)
                                         .seeds(seeds),
                                     runner.get());
    const int d = bounds::ceil_div(
        bounds::ceil_log2(static_cast<std::uint64_t>(n)), 2);
    verify.check(sp.wc.steps <= 4 * d,
                 "splitter tree wc step <= 4*ceil(log n/l) at n=" +
                     std::to_string(n));
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "Contrast: detection's worst case is bounded (4*ceil(log n/l)), while\n"
      "mutual exclusion's worst case is unbounded [AT92] — see\n"
      "table1_mutex_bounds for the growth witness.\n");

  return json.finish(verify);
}
