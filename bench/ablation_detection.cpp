// A1 (ablation) — contention detection: the Lemma 1 reduction
// (mutex -> detector) vs. the direct splitter tree, across atomicities.
// Shows (a) the reduction preserves contention-free complexity up to one
// extra access, and (b) detection has *bounded* worst-case step complexity
// O(ceil(log n / l)) (Section 2.6 remark) while mutual exclusion does not.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/bounds.h"
#include "core/contention_detection.h"
#include "mutex/detector_adapter.h"
#include "mutex/lamport_fast.h"
#include "mutex/lamport_tree.h"
#include "mutex/tas_lock.h"

int main() {
  using namespace cfc;
  cfc::bench::Verifier verify;

  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6, 7, 8};

  std::printf(
      "Contention detection, contention-free and worst-found complexity:\n\n");
  TextTable t({"detector", "n", "cf step", "cf reg", "wc step found",
               "wc reg found", "atomicity"});

  struct Case {
    std::string label;
    DetectorFactory factory;
  };
  for (const int n : {16, 64, 256}) {
    const std::vector<Case> cases = {
        {"splitter-tree l=1", SplitterTree::factory(1)},
        {"splitter-tree l=2", SplitterTree::factory(2)},
        {"splitter-tree l=4", SplitterTree::factory(4)},
        {"splitter-tree l=log n", SplitterTree::factory_full_width()},
        {"lemma1(lamport-fast)",
         DetectorFromMutex::factory(LamportFast::factory())},
        {"lemma1(lamport-tree l=2)",
         DetectorFromMutex::factory(theorem3_factory(2))},
        {"lemma1(tas-lock)", DetectorFromMutex::factory(TasLock::factory())},
    };
    for (const Case& c : cases) {
      const ComplexityReport cf =
          measure_detector_contention_free(c.factory, n);
      const ComplexityReport wc =
          search_detector_worst_case(c.factory, n, seeds);
      t.add_row({c.label, std::to_string(n), std::to_string(cf.steps),
                 std::to_string(cf.registers), std::to_string(wc.steps),
                 std::to_string(wc.registers),
                 std::to_string(cf.atomicity)});
      verify.check(wc.steps >= cf.steps, "wc >= cf for " + c.label);
    }

    // The reduction overhead claim: lemma1(lamport) == lamport entry + 1.
    const ComplexityReport lam_cf = measure_detector_contention_free(
        DetectorFromMutex::factory(LamportFast::factory()), n);
    verify.check(lam_cf.steps == 6,
                 "lemma1(lamport) cf = entry(5) + 1 at n=" +
                     std::to_string(n));
    // The bounded-worst-case claim for the direct detector: the splitter
    // tree's wc steps are exactly 4 * depth, independent of schedule.
    const ComplexityReport sp_wc =
        search_detector_worst_case(SplitterTree::factory(2), n, seeds);
    const int d = bounds::ceil_div(
        bounds::ceil_log2(static_cast<std::uint64_t>(n)), 2);
    verify.check(sp_wc.steps <= 4 * d,
                 "splitter tree wc step <= 4*ceil(log n/l) at n=" +
                     std::to_string(n));
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "Contrast: detection's worst case is bounded (4*ceil(log n/l)), while\n"
      "mutual exclusion's worst case is unbounded [AT92] — see\n"
      "table1_mutex_bounds for the growth witness.\n");

  return verify.finish("ablation_detection");
}
