// A1 (ablation) — contention detection: the Lemma 1 reduction
// (mutex -> detector) vs. the direct splitter tree, across atomicities.
// Shows (a) the reduction preserves contention-free complexity up to one
// extra access, and (b) detection has *bounded* worst-case step complexity
// O(ceil(log n / l)) (Section 2.6 remark) while mutual exclusion does not.
//
// Both candidate pools enumerate via the AlgorithmRegistry: the direct
// detectors are its detector catalogue; the Lemma 1 detectors wrap its
// constant-time mutex algorithms (tags "fast" and "rmw") plus the l=2
// Theorem 3 tree.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/algorithm_registry.h"
#include "core/bounds.h"
#include "mutex/detector_adapter.h"

int main(int argc, char** argv) {
  using namespace cfc;
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  const auto runner = opts.make_runner();
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("ablation_detection", opts.out);
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();

  const std::vector<std::uint64_t> seeds = opts.seeds(8);

  std::printf(
      "Contention detection, contention-free and worst-found complexity:\n\n");
  TextTable t({"detector", "n", "cf step", "cf reg", "wc step found",
               "wc reg found", "atomicity"});

  struct Case {
    std::string label;
    DetectorFactory factory;
  };
  for (const int n : {16, 64, 256}) {
    std::vector<Case> cases;
    for (const DetectorAlgorithmEntry* entry :
         registry.detector_algorithms()) {
      cases.push_back({entry->info.name, entry->factory});
    }
    for (const MutexAlgorithmEntry* entry : registry.mutex_for_n(n, "fast")) {
      cases.push_back({"lemma1(" + entry->info.name + ")",
                       DetectorFromMutex::factory(entry->factory)});
    }
    for (const MutexAlgorithmEntry* entry : registry.mutex_for_n(n, "rmw")) {
      cases.push_back({"lemma1(" + entry->info.name + ")",
                       DetectorFromMutex::factory(entry->factory)});
    }
    cases.push_back(
        {"lemma1(thm3-exact-l2)",
         DetectorFromMutex::factory(registry.mutex("thm3-exact-l2").factory)});

    for (const Case& c : cases) {
      const ComplexityReport cf =
          measure_detector_contention_free(c.factory, n, runner.get());
      const ComplexityReport wc =
          search_detector_worst_case(c.factory, n, seeds, runner.get());
      t.add_row({c.label, std::to_string(n), std::to_string(cf.steps),
                 std::to_string(cf.registers), std::to_string(wc.steps),
                 std::to_string(wc.registers),
                 std::to_string(cf.atomicity)});
      json.row({{"section", std::string("detector")},
                {"detector", c.label},
                {"n", cfc::bench::jv(n)},
                {"cf_step", cfc::bench::jv(cf.steps)},
                {"cf_reg", cfc::bench::jv(cf.registers)},
                {"wc_step", cfc::bench::jv(wc.steps)},
                {"wc_reg", cfc::bench::jv(wc.registers)},
                {"atomicity", cfc::bench::jv(cf.atomicity)},
                {"truncated",
                 cfc::bench::warn_truncated(wc.truncated || cf.truncated,
                                            c.label)}});
      verify.check(wc.steps >= cf.steps, "wc >= cf for " + c.label);
    }

    // The reduction overhead claim: lemma1(lamport) == lamport entry + 1.
    const ComplexityReport lam_cf = measure_detector_contention_free(
        DetectorFromMutex::factory(registry.mutex("lamport-fast").factory),
        n);
    verify.check(lam_cf.steps == 6,
                 "lemma1(lamport) cf = entry(5) + 1 at n=" +
                     std::to_string(n));
    // The bounded-worst-case claim for the direct detector: the splitter
    // tree's wc steps are exactly 4 * depth, independent of schedule.
    const ComplexityReport sp_wc = search_detector_worst_case(
        registry.detector("splitter-tree-l2").factory, n, seeds);
    const int d = bounds::ceil_div(
        bounds::ceil_log2(static_cast<std::uint64_t>(n)), 2);
    verify.check(sp_wc.steps <= 4 * d,
                 "splitter tree wc step <= 4*ceil(log n/l) at n=" +
                     std::to_string(n));
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "Contrast: detection's worst case is bounded (4*ceil(log n/l)), while\n"
      "mutual exclusion's worst case is unbounded [AT92] — see\n"
      "table1_mutex_bounds for the growth witness.\n");

  return json.finish(verify);
}
