// P4/P6/P7 (perf) — schedule-space explorer scaling after the
// allocation-free hot-path rebuild, the parallel source-DPOR round, and
// the stateful (sleep-set-aware visited cache) round: DFS throughput
// (states/sec, min-of-N wall time), the recycled in-place rewind restore
// (Sim::rewind_to) vs the legacy fork-by-replay path (kept compilable
// behind ExploreLimits::restore_by_fork; results must be bit-identical),
// the adaptive restore-mark fast path (Sim::rewind_to_mark) vs full
// replay, the restore-cost counters (restores, replayed-steps-per-node,
// restore_marks, sims_built, visited-table reserved/live bytes),
// visited-state pruning, the opt-in reduce_independent sleep-set mode,
// the source-dpor reduction rows (with a stateful-vs-baseline state
// ceiling), stateful vs stateless source-dpor on the re-convergent
// peterson-tree cell (the >= 10x sleep_blocked gate),
// Sim-level restore mechanics (rewind vs fork vs from-scratch),
// work-stealing thread scaling of the parallel source-DPOR path, and
// thread-count invariance checked byte-for-byte on the canonical study
// JSON (also written to --study-out for CI's cross-thread-count cmp
// gate). Writes BENCH_explorer_scaling.json (schema cfc.bench.v1, git sha
// in the context); CI runs this in Release as the perf smoke.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/study.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/algorithm_registry.h"
#include "core/streaming_measures.h"
#include "obs/trace.h"
#include "sched/sched.h"

namespace {

using namespace cfc;

StudySpec peterson_exhaustive(int depth) {
  return StudySpec::of("peterson-2p")
      .n(2)
      .worst_case(SearchStrategy::Exhaustive)
      .depth(depth);
}

/// The MutexWcTask objective (clean-entry + exit window maxima), stated
/// directly so this bench can drive the Explorer itself and read the
/// restore-cost counters that StudyResult does not carry.
Explorer::Config peterson_config(int depth, bool restore_by_fork,
                                 bool reduce_independent = false,
                                 ReductionPolicy reduction =
                                     ReductionPolicy::Off) {
  const MutexFactory make =
      AlgorithmRegistry::instance().mutex("peterson-2p").factory;
  Explorer::Config cfg;
  cfg.nprocs = 2;
  cfg.strategy = SearchStrategy::Exhaustive;
  cfg.limits.max_depth = depth;
  cfg.limits.restore_by_fork = restore_by_fork;
  cfg.limits.reduce_independent = reduce_independent;
  cfg.limits.reduction = reduction;
  cfg.setup = [make](Sim& sim) -> std::shared_ptr<void> {
    return setup_mutex(sim, make, 2, 1);
  };
  cfg.objective.eval = [](const Sim&, const MeasureAccumulator& acc) {
    ComplexityReport entry;
    ComplexityReport exit;
    for (Pid pid = 0; pid < 2; ++pid) {
      entry = entry.max_with(acc.clean_entry_max(pid));
      exit = exit.max_with(acc.exit_max(pid));
    }
    return std::vector<ComplexityReport>{entry, exit};
  };
  cfg.objective.digest = [](const MeasureAccumulator& acc) {
    return acc.window_digest();
  };
  return cfg;
}

/// A four-process tree-mutex search under source-dpor: the planner fans a
/// wide frontier of long work items — the shape the work-stealing thread
/// scaling section measures.
Explorer::Config tree_dpor_config(int depth) {
  const MutexFactory make =
      AlgorithmRegistry::instance().mutex("peterson-tree").factory;
  Explorer::Config cfg;
  cfg.nprocs = 4;
  cfg.strategy = SearchStrategy::Exhaustive;
  cfg.limits.max_depth = depth;
  cfg.limits.reduction = ReductionPolicy::SourceDpor;
  cfg.setup = [make](Sim& sim) -> std::shared_ptr<void> {
    return setup_mutex(sim, make, 4, 1);
  };
  cfg.objective.eval = [](const Sim&, const MeasureAccumulator& acc) {
    ComplexityReport entry;
    ComplexityReport exit;
    for (Pid pid = 0; pid < 4; ++pid) {
      entry = entry.max_with(acc.clean_entry_max(pid));
      exit = exit.max_with(acc.exit_max(pid));
    }
    return std::vector<ComplexityReport>{entry, exit};
  };
  cfg.objective.digest = [](const MeasureAccumulator& acc) {
    return acc.window_digest();
  };
  return cfg;
}

/// Reads the committed baseline's unreduced throughput states per depth
/// (the `{"section": "throughput", "depth": D, "states": N, ...}` rows of
/// a BENCH_explorer_scaling.json this bench itself wrote). A targeted text
/// scan, not a JSON parser: the row shape is owned by this file.
long long baseline_states_at_depth(const std::string& json, int depth) {
  const std::string sect = "\"section\": \"throughput\"";
  const std::string want_depth = "\"depth\": " + std::to_string(depth);
  for (std::size_t at = json.find(sect); at != std::string::npos;
       at = json.find(sect, at + 1)) {
    const std::size_t row_end = json.find('}', at);
    const std::size_t d = json.find(want_depth, at);
    if (d == std::string::npos || d > row_end) {
      continue;
    }
    const std::size_t s = json.find("\"states\": ", at);
    if (s == std::string::npos || s > row_end) {
      continue;
    }
    return std::strtoll(json.c_str() + s + 10, nullptr, 10);
  }
  return -1;
}

/// Reads a numeric field of the committed baseline's row at a depth in a
/// given section (same targeted scan as baseline_states_at_depth);
/// negative when the baseline predates the field or section.
double baseline_row_double(const std::string& json, const char* section,
                           int depth, const char* field) {
  const std::string sect =
      "\"section\": \"" + std::string(section) + "\"";
  const std::string want_depth = "\"depth\": " + std::to_string(depth);
  for (std::size_t at = json.find(sect); at != std::string::npos;
       at = json.find(sect, at + 1)) {
    const std::size_t row_end = json.find('}', at);
    const std::size_t d = json.find(want_depth, at);
    if (d == std::string::npos || d > row_end) {
      continue;
    }
    const std::string key = "\"" + std::string(field) + "\": ";
    const std::size_t s = json.find(key, at);
    if (s == std::string::npos || s > row_end) {
      continue;
    }
    return std::strtod(json.c_str() + s + key.size(), nullptr);
  }
  return -1.0;
}

double baseline_throughput_double(const std::string& json, int depth,
                                  const char* field) {
  return baseline_row_double(json, "throughput", depth, field);
}

std::string read_file(const std::string& path) {
  std::string out;
  if (std::FILE* fp = std::fopen(path.c_str(), "rb")) {
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), fp)) > 0) {
      out.append(buf, got);
    }
    std::fclose(fp);
  }
  return out;
}

bool same_best(const std::vector<ComplexityReport>& a,
               const std::vector<ComplexityReport>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].steps != b[i].steps || a[i].registers != b[i].registers ||
        a[i].read_steps != b[i].read_steps ||
        a[i].write_steps != b[i].write_steps ||
        a[i].read_registers != b[i].read_registers ||
        a[i].write_registers != b[i].write_registers ||
        a[i].atomicity != b[i].atomicity ||
        a[i].truncated != b[i].truncated) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  if (cfc::bench::handle_list(opts, {cfc::StudyKind::Mutex})) {
    return 0;
  }
  if (!opts.trace_out.empty()) {
    cfc::obs::Tracer::start(opts.trace_out);
  }
  const auto runner = opts.make_runner();
  // Wall-clock gates (states/sec band, rewind-vs-fork) assume the pool
  // fits the host. When --threads asks for more workers than cores —
  // the CI determinism sweep runs --threads 4 on small runners — timing
  // comparisons measure scheduler thrash, not the code, so those gates
  // turn advisory. Every counter and bit-identity gate stays hard.
  const unsigned hw_threads =
      std::max(1u, std::thread::hardware_concurrency());
  const bool oversubscribed =
      opts.threads > 0 && static_cast<unsigned>(opts.threads) > hw_threads;
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("explorer_scaling", opts.out);
  json.context("repeat", cfc::bench::jv(opts.repeat));
  json.context("threads", cfc::bench::jv(opts.threads));
  const std::string baseline_json =
      opts.baseline.empty() ? std::string() : read_file(opts.baseline);
  if (!opts.baseline.empty() && baseline_json.empty()) {
    std::printf("  [warn] --baseline %s not readable; baseline comparisons "
                "omitted\n",
                opts.baseline.c_str());
  }

  // --- 1. Exhaustive DFS throughput over depth (recycled-rewind restore,
  // the default), with the restore cost model's counters: every DFS node
  // with k > 1 branches pays k-1 restores, each replaying the node's
  // schedule prefix in place — replayed-steps-per-node is the knob that
  // perf work on the restore path moves.
  std::printf(
      "Exhaustive exploration throughput (Peterson, n=2, reduction=%s, "
      "min of %d):\n\n",
      name(opts.reduction), opts.repeat);
  json.context("reduction", std::string(name(opts.reduction)));
  TextTable thr({"depth", "states", "leaves", "ms", "states/sec",
                 "restores", "replayed/node", "value/node", "marks",
                 "visited KiB (live)", "entry steps"});
  // Section 3b reuses these as its "unreduced" side when the throughput
  // section already ran unreduced (the default --reduction=off), so the
  // heaviest searches are not repeated per invocation.
  std::vector<std::pair<Explorer::Result, double>> throughput_runs;
  for (const int depth : {12, 16, 20}) {
    Explorer::Result res;
    const double ms = cfc::bench::min_ms_of(opts.repeat, [&] {
      const Explorer explorer(
          peterson_config(depth, false, false, opts.reduction));
      res = explorer.run(runner.get());
    });
    throughput_runs.emplace_back(res, ms);
    const double rate =
        ms > 0 ? 1000.0 * static_cast<double>(res.stats.states_visited) / ms
               : 0.0;
    const double replayed_per_node =
        res.stats.states_visited
            ? static_cast<double>(res.stats.replayed_steps) /
                  static_cast<double>(res.stats.states_visited)
            : 0.0;
    const double value_replayed_per_node =
        res.stats.states_visited
            ? static_cast<double>(res.stats.value_replayed_steps) /
                  static_cast<double>(res.stats.states_visited)
            : 0.0;
    const std::uint64_t leaves =
        res.stats.runs_completed + res.stats.runs_truncated;
    thr.add_row(
        {std::to_string(depth), std::to_string(res.stats.states_visited),
         std::to_string(leaves), std::to_string(static_cast<long long>(ms)),
         std::to_string(static_cast<long long>(rate)),
         std::to_string(res.stats.restores),
         std::to_string(replayed_per_node).substr(0, 5),
         std::to_string(value_replayed_per_node).substr(0, 5),
         std::to_string(res.stats.restore_marks),
         std::to_string(res.stats.visited_bytes / 1024) + " (" +
             std::to_string(res.stats.visited_live_bytes / 1024) + ")",
         std::to_string(res.best.empty() ? 0 : res.best[0].steps)});
    json.row({{"section", std::string("throughput")},
              {"depth", cfc::bench::jv(depth)},
              {"states", cfc::bench::jv(res.stats.states_visited)},
              {"ms_min", cfc::bench::jv(ms)},
              {"states_per_sec", cfc::bench::jv(rate)},
              {"restores", cfc::bench::jv(res.stats.restores)},
              {"replayed_steps", cfc::bench::jv(res.stats.replayed_steps)},
              {"replayed_per_node", cfc::bench::jv(replayed_per_node)},
              {"value_replayed_steps",
               cfc::bench::jv(res.stats.value_replayed_steps)},
              {"value_replayed_per_node",
               cfc::bench::jv(value_replayed_per_node)},
              {"restore_marks", cfc::bench::jv(res.stats.restore_marks)},
              {"sims_built", cfc::bench::jv(res.stats.sims_built)},
              {"visited_bytes", cfc::bench::jv(res.stats.visited_bytes)},
              {"visited_live_bytes",
               cfc::bench::jv(res.stats.visited_live_bytes)}});
    verify.check(res.stats.restores > 0 &&
                     res.stats.replayed_steps +
                             res.stats.value_replayed_steps >
                         0,
                 "restore counters populated at depth " +
                     std::to_string(depth));
    verify.check(res.stats.visited_live_bytes <= res.stats.visited_bytes,
                 "visited live bytes never exceed reserved at depth " +
                     std::to_string(depth));
    if (opts.reduction != ReductionPolicy::SourceDpor) {
      // The zero-allocation invariant of the recycled restore: Sim
      // constructions equal the frontier cell count, however many
      // restores. (The parallel source-dpor path instead builds one Sim
      // per worker plus the planner's — checked in the scaling section.)
      const std::size_t cells = Explorer::frontier_cells(
          2, peterson_config(depth, false).limits);
      verify.check(res.stats.sims_built == cells,
                   "rewind restores build no Sims at depth " +
                       std::to_string(depth));
    }
    // Restore-mark regression guard vs the committed baseline: the marks
    // must keep replayed-steps-per-node from creeping back up (pre-mark
    // baselines recorded ~4.6-6.6 here; the adaptive marks cut that).
    const double base_rpn =
        baseline_json.empty()
            ? -1.0
            : baseline_throughput_double(baseline_json, depth,
                                         "replayed_per_node");
    if (base_rpn > 0.0) {
      verify.check(replayed_per_node <= base_rpn * 1.10,
                   "replayed/node no worse than baseline at depth " +
                       std::to_string(depth));
    }
    // Throughput regression guard vs the committed baseline. Wall time is
    // the one cross-host-noisy number here, so the gate carries a 30%
    // guard band: it catches real hot-path regressions, not machine skew.
    const double base_rate =
        baseline_json.empty()
            ? -1.0
            : baseline_throughput_double(baseline_json, depth,
                                         "states_per_sec");
    if (base_rate > 0.0 && !oversubscribed) {
      verify.check(rate >= base_rate * 0.7,
                   "states/sec not below baseline (30% band) at depth " +
                       std::to_string(depth));
    } else if (base_rate > 0.0) {
      std::printf("  [note] pool of %d on %u hardware threads: baseline "
                  "rate gate advisory at depth %d (%.0f vs %.0f)\n",
                  opts.threads, hw_threads, depth, rate, base_rate);
    }
  }
  std::printf("%s\n", thr.render().c_str());

  // --- 2. Recycled rewind vs legacy fork-by-replay: same traversal, same
  // results (bit-identical reports and stats), different restore
  // mechanics. The speedup is the PR's headline number; the legacy path is
  // the pre-PR restore algorithm kept behind the config flag.
  {
    const int depth = 20;
    Explorer::Result rw;
    Explorer::Result fk;
    // Marks off: this differential asserts replayed_steps equality, which
    // only holds when both paths replay the full schedule prefix.
    Explorer::Config rw_cfg = peterson_config(depth, false);
    rw_cfg.limits.restore_marks = false;
    const double ms_rewind = cfc::bench::min_ms_of(opts.repeat, [&] {
      rw = Explorer(rw_cfg).run(runner.get());
    });
    const double ms_fork = cfc::bench::min_ms_of(opts.repeat, [&] {
      fk = Explorer(peterson_config(depth, true)).run(runner.get());
    });
    const double speedup = ms_rewind > 0 ? ms_fork / ms_rewind : 0.0;
    std::printf(
        "Restore paths at depth %d: rewind %.1f ms vs fork-by-replay %.1f "
        "ms -> %.2fx; %llu restores replayed %llu steps on both paths\n\n",
        depth, ms_rewind, ms_fork, speedup,
        static_cast<unsigned long long>(rw.stats.restores),
        static_cast<unsigned long long>(rw.stats.replayed_steps));
    const bool identical =
        same_best(rw.best, fk.best) &&
        rw.stats.states_visited == fk.stats.states_visited &&
        rw.stats.runs_completed == fk.stats.runs_completed &&
        rw.stats.runs_truncated == fk.stats.runs_truncated &&
        rw.stats.pruned_visited == fk.stats.pruned_visited &&
        rw.stats.violations == fk.stats.violations &&
        rw.stats.restores == fk.stats.restores &&
        rw.stats.replayed_steps == fk.stats.replayed_steps;
    json.row({{"section", std::string("restore_paths")},
              {"depth", cfc::bench::jv(depth)},
              {"rewind_ms_min", cfc::bench::jv(ms_rewind)},
              {"fork_ms_min", cfc::bench::jv(ms_fork)},
              {"speedup_vs_fork_restore", cfc::bench::jv(speedup)},
              {"identical", cfc::bench::jv(identical ? 1 : 0)},
              {"rewind_sims_built", cfc::bench::jv(rw.stats.sims_built)},
              {"fork_sims_built", cfc::bench::jv(fk.stats.sims_built)}});
    verify.check(identical,
                 "rewind and fork-by-replay results are bit-identical");
    verify.check(fk.stats.sims_built == fk.stats.restores + rw.stats.sims_built,
                 "legacy path builds one Sim per restore");
    // Regression guard, not the headline: on a loaded CI box even
    // min-of-N wobbles, so only catch the rewind path LOSING to the
    // legacy restore. The tracked JSON carries the real ratio.
    if (!oversubscribed) {
      verify.check(speedup > 0.9,
                   "recycled rewind not slower than fork-by-replay");
    } else {
      std::printf("  [note] pool of %d on %u hardware threads: rewind-vs-"
                  "fork timing advisory (%.2fx)\n",
                  opts.threads, hw_threads, speedup);
    }
  }

  // --- 2b. Adaptive restore marks vs full-replay rewind: marks captured
  // at branching nodes let the restore value-replay only the suffix past
  // the mark, cutting replayed-steps-per-node. Same traversal, identical
  // certified values and states; only the restore mechanics differ.
  {
    const int depth = 20;
    Explorer::Config marked_cfg = peterson_config(depth, false);
    Explorer::Config plain_cfg = marked_cfg;
    plain_cfg.limits.restore_marks = false;
    Explorer::Result marked;
    Explorer::Result plain;
    const double ms_marked = cfc::bench::min_ms_of(opts.repeat, [&] {
      marked = Explorer(marked_cfg).run(runner.get());
    });
    const double ms_plain = cfc::bench::min_ms_of(opts.repeat, [&] {
      plain = Explorer(plain_cfg).run(runner.get());
    });
    const auto per_node = [](const Explorer::Result& r, std::uint64_t v) {
      return r.stats.states_visited
                 ? static_cast<double>(v) /
                       static_cast<double>(r.stats.states_visited)
                 : 0.0;
    };
    const double rpn_marked = per_node(marked, marked.stats.replayed_steps);
    const double vpn_marked =
        per_node(marked, marked.stats.value_replayed_steps);
    const double rpn_plain = per_node(plain, plain.stats.replayed_steps);
    std::printf(
        "Restore marks at depth %d: %.2f live replayed steps/node + %.2f "
        "value-log re-feeds/node (marks, %llu captured) vs %.2f live "
        "replayed/node (full replay); %.1f ms vs %.1f ms\n\n",
        depth, rpn_marked, vpn_marked,
        static_cast<unsigned long long>(marked.stats.restore_marks),
        rpn_plain, ms_marked, ms_plain);
    json.row({{"section", std::string("restore_marks")},
              {"depth", cfc::bench::jv(depth)},
              {"replayed_per_node_marked", cfc::bench::jv(rpn_marked)},
              {"value_replayed_per_node_marked", cfc::bench::jv(vpn_marked)},
              {"replayed_per_node_plain", cfc::bench::jv(rpn_plain)},
              {"restore_marks", cfc::bench::jv(marked.stats.restore_marks)},
              {"ms_marked", cfc::bench::jv(ms_marked)},
              {"ms_plain", cfc::bench::jv(ms_plain)}});
    verify.check(same_best(marked.best, plain.best) &&
                     marked.stats.states_visited ==
                         plain.stats.states_visited &&
                     marked.stats.restores == plain.stats.restores &&
                     marked.stats.violations == plain.stats.violations,
                 "restore marks keep the traversal bit-identical");
    verify.check(marked.stats.restore_marks > 0,
                 "restore marks captured at branching nodes");
    verify.check(rpn_marked <= rpn_plain * 0.75,
                 "restore marks cut live replayed steps/node by >= 25%");
    verify.check(vpn_marked <= rpn_plain,
                 "mark re-feeds touch no more units than full replay");
  }

  // --- 3. Visited-state pruning and the opt-in independence reduction.
  {
    Explorer::Result pruned;
    Explorer::Result unpruned;
    const double ms_pruned = cfc::bench::min_ms_of(opts.repeat, [&] {
      pruned = Explorer(peterson_config(16, false)).run(runner.get());
    });
    Explorer::Config no_prune = peterson_config(16, false);
    no_prune.limits.prune_visited = false;
    const double ms_unpruned = cfc::bench::min_ms_of(opts.repeat, [&] {
      unpruned = Explorer(no_prune).run(runner.get());
    });
    Explorer::Result reduced;
    const double ms_reduced = cfc::bench::min_ms_of(opts.repeat, [&] {
      reduced = Explorer(peterson_config(16, false, true)).run(runner.get());
    });
    std::printf(
        "Depth 16: %llu states pruned (%.1fx fewer than %llu unpruned); "
        "reduce_independent explores %llu (%llu sibling orderings "
        "skipped)\n\n",
        static_cast<unsigned long long>(pruned.stats.states_visited),
        pruned.stats.states_visited
            ? static_cast<double>(unpruned.stats.states_visited) /
                  static_cast<double>(pruned.stats.states_visited)
            : 0.0,
        static_cast<unsigned long long>(unpruned.stats.states_visited),
        static_cast<unsigned long long>(reduced.stats.states_visited),
        static_cast<unsigned long long>(reduced.stats.pruned_independent));
    json.row({{"section", std::string("pruning")},
              {"states_pruned_on", cfc::bench::jv(pruned.stats.states_visited)},
              {"states_pruned_off",
               cfc::bench::jv(unpruned.stats.states_visited)},
              {"states_reduced", cfc::bench::jv(reduced.stats.states_visited)},
              {"pruned_independent",
               cfc::bench::jv(reduced.stats.pruned_independent)},
              {"ms_pruned_on", cfc::bench::jv(ms_pruned)},
              {"ms_pruned_off", cfc::bench::jv(ms_unpruned)},
              {"ms_reduced", cfc::bench::jv(ms_reduced)}});
    verify.check(same_best(pruned.best, unpruned.best),
                 "pruning preserves the certified maxima");
    verify.check(same_best(pruned.best, reduced.best),
                 "reduce_independent preserves the certified maxima");
    verify.check(pruned.stats.states_visited <=
                     unpruned.stats.states_visited,
                 "pruning never visits more states");
  }

  // --- 3b. The POR reduction rows: source-dpor vs the unreduced search
  // on the same cells, per depth — states explored, the in-run reduction
  // factor, and (when --baseline names the committed
  // BENCH_explorer_scaling.json) the factor against the baseline's
  // recorded unreduced states. Hard gate: the reduced search must never
  // explore more states than the unreduced search on the same cell, and
  // must certify identical values.
  {
    std::printf("Source-DPOR reduction vs the unreduced search:\n\n");
    TextTable red({"depth", "unreduced", "source-dpor", "factor", "races",
                   "backtracks", "sleep-blocked", "vs baseline"});
    const int depths[] = {12, 16, 20};
    for (std::size_t di = 0; di < 3; ++di) {
      const int depth = depths[di];
      Explorer::Result off;
      double ms_off = 0.0;
      if (opts.reduction == ReductionPolicy::Off) {
        off = throughput_runs[di].first;  // already measured in section 1
        ms_off = throughput_runs[di].second;
      } else {
        ms_off = cfc::bench::min_ms_of(opts.repeat, [&] {
          off = Explorer(peterson_config(depth, false)).run(runner.get());
        });
      }
      Explorer::Result dpor;
      double ms_dpor = 0.0;
      if (opts.reduction == ReductionPolicy::SourceDpor) {
        dpor = throughput_runs[di].first;  // already measured in section 1
        ms_dpor = throughput_runs[di].second;
      } else {
        ms_dpor = cfc::bench::min_ms_of(opts.repeat, [&] {
          dpor = Explorer(peterson_config(depth, false, false,
                                          ReductionPolicy::SourceDpor))
                     .run(runner.get());
        });
      }
      const double factor =
          dpor.stats.states_visited
              ? static_cast<double>(off.stats.states_visited) /
                    static_cast<double>(dpor.stats.states_visited)
              : 0.0;
      const long long base_states =
          baseline_json.empty()
              ? -1
              : baseline_states_at_depth(baseline_json, depth);
      const double base_factor =
          base_states > 0 && dpor.stats.states_visited
              ? static_cast<double>(base_states) /
                    static_cast<double>(dpor.stats.states_visited)
              : 0.0;
      red.add_row({std::to_string(depth),
                   std::to_string(off.stats.states_visited),
                   std::to_string(dpor.stats.states_visited),
                   std::to_string(factor).substr(0, 5),
                   std::to_string(dpor.stats.races_detected),
                   std::to_string(dpor.stats.backtrack_points),
                   std::to_string(dpor.stats.sleep_blocked),
                   base_states > 0
                       ? std::to_string(base_factor).substr(0, 5)
                       : std::string("n/a")});
      json.row({{"section", std::string("reduction")},
                {"depth", cfc::bench::jv(depth)},
                {"states_unreduced",
                 cfc::bench::jv(off.stats.states_visited)},
                {"states_source_dpor",
                 cfc::bench::jv(dpor.stats.states_visited)},
                {"reduction_factor", cfc::bench::jv(factor)},
                {"baseline_states", cfc::bench::jv(base_states)},
                {"reduction_factor_vs_baseline",
                 cfc::bench::jv(base_factor)},
                {"races_detected",
                 cfc::bench::jv(dpor.stats.races_detected)},
                {"backtrack_points",
                 cfc::bench::jv(dpor.stats.backtrack_points)},
                {"sleep_blocked", cfc::bench::jv(dpor.stats.sleep_blocked)},
                {"cache_hits", cfc::bench::jv(dpor.stats.pruned_visited)},
                {"ms_unreduced", cfc::bench::jv(ms_off)},
                {"ms_source_dpor", cfc::bench::jv(ms_dpor)}});
      verify.check(same_best(off.best, dpor.best),
                   "source-dpor certifies the unreduced values at depth " +
                       std::to_string(depth));
      verify.check(
          dpor.stats.states_visited <= off.stats.states_visited,
          "source-dpor explores no more states than the unreduced search "
          "at depth " +
              std::to_string(depth));
      verify.check(dpor.stats.races_detected > 0 &&
                       dpor.stats.backtrack_points > 0,
                   "reduction counters populated at depth " +
                       std::to_string(depth));
      // The stateful-cache regression ceiling: the sleep-set-aware visited
      // cache composes with source-dpor, so today's reduced search must
      // never explore MORE states than the committed baseline's recorded
      // source-dpor run on the same cell.
      const long long base_dpor_states =
          baseline_json.empty()
              ? -1
              : static_cast<long long>(baseline_row_double(
                    baseline_json, "reduction", depth, "states_source_dpor"));
      if (base_dpor_states > 0) {
        verify.check(
            dpor.stats.states_visited <=
                static_cast<std::uint64_t>(base_dpor_states),
            "stateful source-dpor explores no more states than the "
            "baseline's source-dpor run at depth " +
                std::to_string(depth));
      }
    }
    std::printf("%s\n", red.render().c_str());
  }

  // --- 3c. Stateful vs stateless source-dpor on the re-convergent cell
  // (peterson-tree, n=4): the tournament tree's schedule lattice
  // re-converges massively, so the sleep-set-aware visited cache should
  // collapse both the state count and — the ISSUE headline — the
  // sleep_blocked counter, which under stateless source-dpor counts every
  // re-arrival at an already-settled interleaving. Hard gates: identical
  // certified values, never more states, and sleep_blocked down >= 10x.
  {
    std::printf(
        "Stateful vs stateless source-DPOR (peterson-tree, n=4):\n\n");
    TextTable tree({"depth", "stateless", "stateful", "factor",
                    "sleep-blk stateless", "sleep-blk stateful",
                    "cache-hits"});
    const int tree_depths[] = {12, 14};
    for (const int depth : tree_depths) {
      Explorer::Result stateless;
      Explorer::Config off_cfg = tree_dpor_config(depth);
      off_cfg.limits.prune_visited = false;  // PR 6 behavior: no cache
      const double ms_less = cfc::bench::min_ms_of(opts.repeat, [&] {
        stateless = Explorer(off_cfg).run(runner.get());
      });
      Explorer::Result stateful;
      const double ms_ful = cfc::bench::min_ms_of(opts.repeat, [&] {
        stateful = Explorer(tree_dpor_config(depth)).run(runner.get());
      });
      const double factor =
          stateful.stats.states_visited
              ? static_cast<double>(stateless.stats.states_visited) /
                    static_cast<double>(stateful.stats.states_visited)
              : 0.0;
      tree.add_row({std::to_string(depth),
                    std::to_string(stateless.stats.states_visited),
                    std::to_string(stateful.stats.states_visited),
                    std::to_string(factor).substr(0, 5),
                    std::to_string(stateless.stats.sleep_blocked),
                    std::to_string(stateful.stats.sleep_blocked),
                    std::to_string(stateful.stats.pruned_visited)});
      json.row({{"section", std::string("tree_reduction")},
                {"depth", cfc::bench::jv(depth)},
                {"states_stateless",
                 cfc::bench::jv(stateless.stats.states_visited)},
                {"states_stateful",
                 cfc::bench::jv(stateful.stats.states_visited)},
                {"reduction_factor", cfc::bench::jv(factor)},
                {"sleep_blocked_stateless",
                 cfc::bench::jv(stateless.stats.sleep_blocked)},
                {"sleep_blocked_stateful",
                 cfc::bench::jv(stateful.stats.sleep_blocked)},
                {"cache_hits",
                 cfc::bench::jv(stateful.stats.pruned_visited)},
                {"ms_stateless", cfc::bench::jv(ms_less)},
                {"ms_stateful", cfc::bench::jv(ms_ful)}});
      verify.check(same_best(stateless.best, stateful.best),
                   "stateful source-dpor certifies the stateless values at "
                   "depth " +
                       std::to_string(depth));
      verify.check(
          stateful.stats.states_visited <= stateless.stats.states_visited,
          "the sleep-set-aware cache never adds states at depth " +
              std::to_string(depth));
      verify.check(
          stateful.stats.sleep_blocked * 10 <=
              stateless.stats.sleep_blocked,
          "sleep_blocked drops >= 10x under the stateful cache at depth " +
              std::to_string(depth));
    }
    std::printf("%s\n", tree.render().c_str());
  }

  // --- 3d. Static dependence refinement (src/sa/): the footprint pass's
  // may-conflict table refines the worst-case pending-side dependence
  // checks (unstarted first units, armed crash units, section-quiet plain
  // writes). Hard gates: the refined search certifies bit-identical values
  // and never explores more states / detects more races / inserts more
  // backtrack points than the unrefined source-dpor search — and at least
  // one of those counters measurably DECREASES, so the refinement is
  // demonstrably load-bearing, not just sound.
  {
    std::printf(
        "Static dependence refinement under source-DPOR "
        "(peterson-tree, n=4):\n\n");
    TextTable sa({"depth", "states", "refined states", "races",
                  "refined races", "backtracks", "refined backtracks",
                  "refined pairs"});
    const int sa_depths[] = {12, 14};
    for (const int depth : sa_depths) {
      Explorer::Result plain;
      const double ms_plain = cfc::bench::min_ms_of(opts.repeat, [&] {
        plain = Explorer(tree_dpor_config(depth)).run(runner.get());
      });
      Explorer::Config sa_cfg = tree_dpor_config(depth);
      sa_cfg.limits.static_refine = true;
      Explorer::Result refined;
      const double ms_refined = cfc::bench::min_ms_of(opts.repeat, [&] {
        refined = Explorer(sa_cfg).run(runner.get());
      });
      sa.add_row({std::to_string(depth),
                  std::to_string(plain.stats.states_visited),
                  std::to_string(refined.stats.states_visited),
                  std::to_string(plain.stats.races_detected),
                  std::to_string(refined.stats.races_detected),
                  std::to_string(plain.stats.backtrack_points),
                  std::to_string(refined.stats.backtrack_points),
                  std::to_string(refined.stats.static_refined_pairs)});
      json.row({{"section", std::string("static_refine")},
                {"depth", cfc::bench::jv(depth)},
                {"states_unrefined",
                 cfc::bench::jv(plain.stats.states_visited)},
                {"states_refined",
                 cfc::bench::jv(refined.stats.states_visited)},
                {"races_unrefined",
                 cfc::bench::jv(plain.stats.races_detected)},
                {"races_refined",
                 cfc::bench::jv(refined.stats.races_detected)},
                {"backtracks_unrefined",
                 cfc::bench::jv(plain.stats.backtrack_points)},
                {"backtracks_refined",
                 cfc::bench::jv(refined.stats.backtrack_points)},
                {"static_refined_pairs",
                 cfc::bench::jv(refined.stats.static_refined_pairs)},
                {"ms_unrefined", cfc::bench::jv(ms_plain)},
                {"ms_refined", cfc::bench::jv(ms_refined)}});
      verify.check(same_best(plain.best, refined.best) &&
                       plain.stats.violations == refined.stats.violations,
                   "static refinement certifies the unrefined values at "
                   "depth " +
                       std::to_string(depth));
      verify.check(refined.stats.states_visited <=
                           plain.stats.states_visited &&
                       refined.stats.races_detected <=
                           plain.stats.races_detected &&
                       refined.stats.backtrack_points <=
                           plain.stats.backtrack_points,
                   "static refinement never grows the reduced search at "
                   "depth " +
                       std::to_string(depth));
      verify.check(refined.stats.static_refined_pairs > 0,
                   "static refinement flips dependence pairs at depth " +
                       std::to_string(depth));
      verify.check(refined.stats.states_visited <
                           plain.stats.states_visited ||
                       refined.stats.races_detected <
                           plain.stats.races_detected ||
                       refined.stats.backtrack_points <
                           plain.stats.backtrack_points,
                   "static refinement measurably shrinks the search at "
                   "depth " +
                       std::to_string(depth));
    }
    std::printf("%s\n", sa.render().c_str());
  }

  // --- 4. Sim-level restore mechanics: reposition a measured run K times
  // by recycled rewind, by fork-by-replay, and by from-scratch replay
  // (rebuild + re-run with live measurement).
  std::printf("Sim restore mechanics (peterson-tree, n=4):\n\n");
  {
    const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
    const MutexFactory tree = registry.mutex("peterson-tree").factory;
    const int n = 4;
    auto keep =
        std::make_shared<std::vector<std::unique_ptr<MutexAlgorithm>>>();
    const SimBuilder rebuild = [tree, n, keep](Sim& sim) {
      keep->push_back(setup_mutex(sim, tree, n, /*sessions=*/8));
      sim.set_trace_recording(false);
    };

    Sim original;
    rebuild(original);
    original.mark_rewind_base();
    MeasureAccumulator acc(n);
    original.add_sink(acc);
    RandomScheduler rnd(opts.seed);
    drive(original, rnd, RunLimits{1200});
    const SimCheckpoint cp = original.checkpoint();
    const std::size_t prefix_len = cp.schedule.size();
    const std::uint64_t fp = cp.memory_fingerprint;
    const Seq seq = cp.next_seq;

    const int iters = 100;
    const double ms_rewind = cfc::bench::min_ms_of(opts.repeat, [&] {
      for (int i = 0; i < iters; ++i) {
        original.rewind_to(prefix_len, fp, seq);
        MeasureAccumulator restored(acc);  // plain-data restore
      }
    });
    const double ms_fork = cfc::bench::min_ms_of(opts.repeat, [&] {
      for (int i = 0; i < iters; ++i) {
        std::unique_ptr<Sim> forked = Sim::fork(cp, rebuild);
        MeasureAccumulator restored(acc);
        forked->add_sink(restored);
      }
    });
    const double ms_scratch = cfc::bench::min_ms_of(opts.repeat, [&] {
      for (int i = 0; i < iters; ++i) {
        Sim scratch;
        rebuild(scratch);
        MeasureAccumulator fresh(n);
        scratch.add_sink(fresh);
        for (const SimCheckpoint::Unit& u : cp.schedule) {
          if (u.start_only) {
            scratch.ensure_started(u.pid);
          } else {
            scratch.step(u.pid);
          }
        }
      }
    });
    std::printf(
        "  prefix %zu picks x %d restores: rewind %.1f ms, fork %.1f ms, "
        "from-scratch %.1f ms (%.2fx rewind vs scratch)\n\n",
        prefix_len, iters, ms_rewind, ms_fork, ms_scratch,
        ms_rewind > 0 ? ms_scratch / ms_rewind : 0.0);
    json.row({{"section", std::string("sim_restore")},
              {"prefix_picks",
               cfc::bench::jv(static_cast<long long>(prefix_len))},
              {"iters", cfc::bench::jv(iters)},
              {"rewind_ms", cfc::bench::jv(ms_rewind)},
              {"fork_ms", cfc::bench::jv(ms_fork)},
              {"scratch_ms", cfc::bench::jv(ms_scratch)}});
    verify.check(original.rewind_stats().rewinds > 0,
                 "rewind stats populated");
    // Noise guard only: rewind must at least keep up with from-scratch.
    verify.check(ms_rewind <= ms_scratch * 1.25,
                 "recycled rewind not slower than from-scratch replay");
  }

  // --- 4b. Work-stealing thread scaling of the parallel source-DPOR
  // path: a four-process tree search whose planner fans a wide frontier
  // of work items over per-worker engines. Certified values, states, and
  // every thread-invariant counter must match the sequential reference
  // exactly at every pool size; the speedup gate only binds on hosts with
  // >= 4 hardware threads (elsewhere the pool adds overhead, not cores).
  {
    const int depth = 14;
    std::printf(
        "Parallel source-DPOR scaling (peterson-tree, n=4, depth %d):\n\n",
        depth);
    TextTable scale({"threads", "ms", "states/sec", "speedup", "work items",
                     "steals"});
    Explorer::Result ref;
    double rate1 = 0.0;
    double rate4 = 0.0;
    for (const int threads : {1, 2, 4}) {
      ExperimentRunner pool(threads);
      Explorer::Result r;
      const double ms = cfc::bench::min_ms_of(opts.repeat, [&] {
        r = Explorer(tree_dpor_config(depth)).run(&pool);
      });
      const double rate =
          ms > 0 ? 1000.0 * static_cast<double>(r.stats.states_visited) / ms
                 : 0.0;
      if (threads == 1) {
        ref = r;
        rate1 = rate;
        verify.check(r.stats.work_items > 1,
                     "planner fans out multiple work items");
      } else {
        verify.check(same_best(ref.best, r.best) &&
                         ref.stats.states_visited == r.stats.states_visited &&
                         ref.stats.races_detected == r.stats.races_detected &&
                         ref.stats.backtrack_points ==
                             r.stats.backtrack_points &&
                         ref.stats.sleep_blocked == r.stats.sleep_blocked &&
                         ref.stats.work_items == r.stats.work_items &&
                         ref.stats.restore_marks == r.stats.restore_marks &&
                         ref.stats.violations == r.stats.violations,
                     "parallel run matches sequential at threads=" +
                         std::to_string(threads));
      }
      if (threads == 4) {
        rate4 = rate;
      }
      scale.add_row(
          {std::to_string(threads),
           std::to_string(static_cast<long long>(ms)),
           std::to_string(static_cast<long long>(rate)),
           std::to_string(rate1 > 0 ? rate / rate1 : 0.0).substr(0, 4),
           std::to_string(r.stats.work_items),
           std::to_string(r.stats.steals)});
      json.row({{"section", std::string("thread_scaling")},
                {"threads", cfc::bench::jv(threads)},
                {"ms_min", cfc::bench::jv(ms)},
                {"states_per_sec", cfc::bench::jv(rate)},
                {"speedup_vs_1", cfc::bench::jv(rate1 > 0 ? rate / rate1
                                                          : 0.0)},
                {"work_items", cfc::bench::jv(r.stats.work_items)},
                {"steals", cfc::bench::jv(r.stats.steals)},
                {"sims_built", cfc::bench::jv(r.stats.sims_built)},
                {"states", cfc::bench::jv(r.stats.states_visited)}});
    }
    std::printf("%s\n", scale.render().c_str());
    if (std::thread::hardware_concurrency() >= 4) {
      verify.check(rate4 >= 2.5 * rate1,
                   "parallel source-dpor >= 2.5x states/sec at 4 threads");
      verify.check(rate4 >= rate1,
                   "threads=4 not below threads=1 states/sec");
    } else if (rate4 < rate1) {
      // Advisory on starved hosts: with fewer hardware threads than pool
      // workers, the pool's scheduling overhead competes with the search
      // itself for the same cores, so a slowdown here does not indicate a
      // work-stealing regression.
      std::printf(
          "  [note] threads=4 at %.2fx of threads=1 on %u hardware "
          "thread(s): pool overhead without extra cores — speedup gates "
          "are advisory on this host\n\n",
          rate1 > 0 ? rate4 / rate1 : 0.0,
          std::thread::hardware_concurrency());
    } else {
      std::printf(
          "  [note] %u hardware threads: the 4-thread speedup gate is "
          "advisory only on this host (measured %.2fx)\n\n",
          std::thread::hardware_concurrency(),
          rate1 > 0 ? rate4 / rate1 : 0.0);
    }
  }

  // --- 5. Thread-count invariance of the certified results, checked on
  // the canonical serialization: the study JSONs (timing excluded) must be
  // byte-identical between the sequential reference engine and a pool.
  {
    ExperimentRunner seq(1);
    ExperimentRunner par(4);
    const StudyResult a = run_study(peterson_exhaustive(18), &seq);
    const StudyResult b = run_study(peterson_exhaustive(18), &par);
    const StudyJsonOptions no_timing{.include_timing = false};
    const bool identical = to_json(a, no_timing) == to_json(b, no_timing);
    std::printf("Thread invariance (threads=1 vs 4): %s\n",
                identical ? "bit-identical" : "MISMATCH");
    json.study(a, {{"section", std::string("thread_invariance")}});
    json.row({{"section", std::string("thread_invariance")},
              {"identical", cfc::bench::jv(identical ? 1 : 0)},
              {"entry_steps", cfc::bench::jv(a.wc_entry.steps)},
              {"states_visited", cfc::bench::jv(a.states_visited)}});
    verify.check(identical,
                 "canonical study JSON bit-identical for threads=1 vs 4");
    verify.check(a.certified, "exhaustive search certified at depth 18");
  }

  // --- 6. The --study-out payload: a fixed pair of source-dpor studies
  // run on the --threads runner, serialized timing-free. CI invokes this
  // bench at --threads 1 and --threads 4 and byte-compares the two files
  // (`cmp`) as the cross-process determinism gate.
  if (!opts.study_out.empty()) {
    const StudyJsonOptions no_timing{.include_timing = false};
    std::vector<StudyResult> studies;
    studies.push_back(run_study(peterson_exhaustive(18), runner.get()));
    studies.push_back(run_study(StudySpec::of("splitter-tree-l2")
                                    .kind(StudyKind::Detector)
                                    .n(3)
                                    .worst_case(SearchStrategy::Exhaustive)
                                    .depth(12),
                                runner.get()));
    const std::string payload = to_json(studies, no_timing) + "\n";
    if (std::FILE* fp = std::fopen(opts.study_out.c_str(), "w")) {
      std::fwrite(payload.data(), 1, payload.size(), fp);
      std::fclose(fp);
      std::printf("Wrote canonical study payload to %s\n",
                  opts.study_out.c_str());
    } else {
      verify.check(false, "--study-out path writable");
    }
  }

  if (!opts.trace_out.empty()) {
    verify.check(cfc::obs::Tracer::stop(), "--trace-out file written");
  }
  return json.finish(verify);
}
