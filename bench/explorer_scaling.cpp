// P1 (perf) — schedule-space explorer scaling: DFS throughput (states/sec),
// the value of visited-state pruning, checkpoint-restore (fork-by-replay
// with suppressed sinks + accumulator snapshot) vs. from-scratch replay
// (rebuild + re-run with live measurement), and thread-count invariance of
// the certified results — checked byte-for-byte on the canonical study
// JSON. The searches are StudySpec-driven; the checkpoint section drives
// the Sim directly. Writes BENCH_explorer_scaling.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/study.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "core/algorithm_registry.h"
#include "core/streaming_measures.h"
#include "sched/sched.h"

namespace {

using namespace cfc;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

StudySpec peterson_exhaustive(int depth) {
  return StudySpec::of("peterson-2p")
      .n(2)
      .worst_case(SearchStrategy::Exhaustive)
      .depth(depth);
}

}  // namespace

int main(int argc, char** argv) {
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  if (cfc::bench::handle_list(opts, {cfc::StudyKind::Mutex})) {
    return 0;
  }
  const auto runner = opts.make_runner();
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("explorer_scaling", opts.out);
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();

  // --- 1. Exhaustive DFS throughput over depth, with and without pruning.
  std::printf("Exhaustive exploration throughput (Peterson, n=2):\n\n");
  TextTable thr({"depth", "states", "leaves", "ms", "states/sec",
                 "entry steps"});
  for (const int depth : {12, 16, 20}) {
    const StudyResult r = run_study(peterson_exhaustive(depth), runner.get());
    const double ms = r.wall_ms;
    const double rate =
        ms > 0 ? 1000.0 * static_cast<double>(r.states_visited) / ms : 0.0;
    thr.add_row({std::to_string(depth), std::to_string(r.states_visited),
                 std::to_string(r.schedules_tried),
                 std::to_string(static_cast<long long>(ms)),
                 std::to_string(static_cast<long long>(rate)),
                 std::to_string(r.wc_entry.steps)});
    // Depth truncation is expected here (Peterson spins), so no warning —
    // but the study JSON records the flag faithfully.
    json.study(r, {{"section", std::string("throughput")},
                   {"depth", cfc::bench::jv(depth)},
                   {"states_per_sec", cfc::bench::jv(rate)}});
    verify.check(r.certified, "exhaustive certified at depth " +
                                  std::to_string(depth));
  }
  std::printf("%s\n", thr.render().c_str());

  {
    StudySpec pruned = peterson_exhaustive(16);
    StudySpec unpruned = peterson_exhaustive(16);
    unpruned.search.limits.prune_visited = false;
    const StudyResult rp = run_study(pruned, runner.get());
    const StudyResult ru = run_study(unpruned, runner.get());
    std::printf(
        "Visited-state pruning at depth 16: %llu states vs %llu unpruned "
        "(%.1fx fewer)\n\n",
        static_cast<unsigned long long>(rp.states_visited),
        static_cast<unsigned long long>(ru.states_visited),
        rp.states_visited
            ? static_cast<double>(ru.states_visited) /
                  static_cast<double>(rp.states_visited)
            : 0.0);
    json.row({{"section", std::string("pruning")},
              {"states_pruned_on", cfc::bench::jv(rp.states_visited)},
              {"states_pruned_off", cfc::bench::jv(ru.states_visited)},
              {"ms_pruned_on", cfc::bench::jv(rp.wall_ms)},
              {"ms_pruned_off", cfc::bench::jv(ru.wall_ms)}});
    verify.check(rp.wc_entry.steps == ru.wc_entry.steps,
                 "pruning preserves the certified entry maximum");
    verify.check(rp.states_visited <= ru.states_visited,
                 "pruning never visits more states");
  }

  // --- 2. Checkpoint-restore vs from-scratch replay.
  // A measured run is repositioned K times: fork-by-replay (sinks
  // suppressed, accumulator restored by copy) against the no-checkpoint
  // alternative (rebuild, re-attach a fresh accumulator, re-run every unit
  // with measurement live).
  std::printf("Checkpoint-restore vs from-scratch replay:\n\n");
  const MutexFactory tree = registry.mutex("peterson-tree").factory;
  const int n = 4;
  auto keep = std::make_shared<std::vector<std::unique_ptr<MutexAlgorithm>>>();
  const SimBuilder rebuild = [tree, n, keep](Sim& sim) {
    keep->push_back(setup_mutex(sim, tree, n, /*sessions=*/8));
    sim.set_trace_recording(false);
  };

  Sim original;
  rebuild(original);
  MeasureAccumulator acc(n);
  original.add_sink(acc);
  RandomScheduler rnd(opts.seed);
  drive(original, rnd, RunLimits{1200});
  const SimCheckpoint cp = original.checkpoint();
  const std::size_t prefix_len = cp.schedule.size();

  // Interleaved A/B batches so machine-load drift hits both paths equally;
  // the pass/fail check uses the median batch ratio.
  const int batches = 30;
  const int per_batch = 10;
  const int iters = batches * per_batch;
  double ms_fork = 0.0;
  double ms_scratch = 0.0;
  std::vector<double> ratios;
  ratios.reserve(static_cast<std::size_t>(batches));
  for (int b = 0; b < batches; ++b) {
    const auto tf0 = std::chrono::steady_clock::now();
    for (int i = 0; i < per_batch; ++i) {
      std::unique_ptr<Sim> forked = Sim::fork(cp, rebuild);
      MeasureAccumulator restored(acc);  // checkpointed by copy
      forked->add_sink(restored);
    }
    const double bf = ms_since(tf0);
    const auto ts0 = std::chrono::steady_clock::now();
    for (int i = 0; i < per_batch; ++i) {
      Sim scratch;
      rebuild(scratch);
      MeasureAccumulator fresh(n);
      scratch.add_sink(fresh);
      for (const SimCheckpoint::Unit& u : cp.schedule) {
        if (u.start_only) {
          scratch.ensure_started(u.pid);
        } else {
          scratch.step(u.pid);
        }
      }
    }
    const double bs = ms_since(ts0);
    ms_fork += bf;
    ms_scratch += bs;
    ratios.push_back(bf > 0 ? bs / bf : 0.0);
  }
  std::sort(ratios.begin(), ratios.end());
  const double speedup = ratios[ratios.size() / 2];  // median batch ratio
  std::printf(
      "  prefix %zu picks, %d restores: fork-by-replay %.1f ms, "
      "from-scratch %.1f ms -> %.2fx speedup (median of %d batches)\n\n",
      prefix_len, iters, ms_fork, ms_scratch, speedup, batches);
  json.row({{"section", std::string("checkpoint_restore")},
            {"prefix_picks", cfc::bench::jv(
                                 static_cast<long long>(prefix_len))},
            {"iters", cfc::bench::jv(iters)},
            {"fork_ms", cfc::bench::jv(ms_fork)},
            {"scratch_ms", cfc::bench::jv(ms_scratch)},
            {"speedup", cfc::bench::jv(speedup)}});
  // Regression guard, not a proof: locally the margin is ~2x, but this
  // runs in CI where a loaded machine adds noise even to the median batch
  // ratio — the threshold only catches fork-by-replay becoming
  // pathologically slower than scratch. The JSON row tracks the real value.
  verify.check(speedup > 0.75,
               "checkpoint-restore not slower than from-scratch replay");

  // --- 3. Thread-count invariance of the certified results, checked on
  // the canonical serialization: the study JSONs (timing excluded) must be
  // byte-identical between the sequential reference engine and a pool.
  {
    ExperimentRunner seq(1);
    ExperimentRunner par(4);
    const StudyResult a = run_study(peterson_exhaustive(18), &seq);
    const StudyResult b = run_study(peterson_exhaustive(18), &par);
    const StudyJsonOptions no_timing{.include_timing = false};
    const bool identical = to_json(a, no_timing) == to_json(b, no_timing);
    std::printf("Thread invariance (threads=1 vs 4): %s\n",
                identical ? "bit-identical" : "MISMATCH");
    json.row({{"section", std::string("thread_invariance")},
              {"identical", cfc::bench::jv(identical ? 1 : 0)},
              {"entry_steps", cfc::bench::jv(a.wc_entry.steps)},
              {"states_visited", cfc::bench::jv(a.states_visited)}});
    verify.check(identical,
                 "canonical study JSON bit-identical for threads=1 vs 4");
  }

  return json.finish(verify);
}
