// F2 (derived figure) — the Section 4 discussion, after [MS93]: on real
// hardware (std::thread + std::atomic), exponential backoff keeps the
// winning process's per-acquisition cost close to the contention-free cost
// regardless of the contention level. Prints per-acquisition shared-memory
// accesses and wall-clock time for Lamport's fast lock and the test-and-set
// lock, with and without backoff, across thread counts.
//
// Absolute numbers depend on the host; the *shape* reproduced here:
//   * at 1 thread, Lamport costs exactly 7 accesses per acquisition;
//   * without backoff, mean accesses grow steeply with threads (spinning);
//   * with backoff, mean accesses stay within a small factor of the
//     contention-free cost.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "rt/contention_study.h"

int main(int argc, char** argv) {
  using namespace cfc;
  using namespace cfc::rt;
  const cfc::bench::BenchOptions opts =
      cfc::bench::BenchOptions::parse(argc, argv);
  if (cfc::bench::handle_list(opts, {})) {
    return 0;
  }
  cfc::bench::note_algo_inapplicable(
      opts, "hardware study over the fixed rt/ locks; no registry subjects");
  cfc::bench::Verifier verify;
  cfc::bench::JsonReport json("fig_backoff_rt", opts.out);

  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<int> thread_counts = {1, 2};
  if (hw >= 4) {
    thread_counts.push_back(4);
  }
  if (hw >= 8) {
    thread_counts.push_back(8);
  }

  std::printf("host hardware_concurrency = %u\n\n", hw);

  double lamport_solo_accesses = 0;
  double lamport_backoff_worst = 0;
  double lamport_nobackoff_worst = 0;

  TextTable t({"lock", "threads", "backoff", "accesses/acq", "ns/acq",
               "violations"});
  for (const int k : thread_counts) {
    for (const bool backoff : {false, true}) {
      ContentionStudyConfig config;
      config.threads = k;
      config.acquisitions_per_thread = 2000;
      config.backoff = backoff;

      const ContentionStudyResult lam = run_lamport_study(config);
      char acc[32];
      std::snprintf(acc, sizeof(acc), "%.1f", lam.mean_accesses);
      char ns[32];
      std::snprintf(ns, sizeof(ns), "%.0f", lam.mean_ns);
      t.add_row({"lamport-fast", std::to_string(k), backoff ? "yes" : "no",
                 acc, ns, std::to_string(lam.violations)});
      json.row({{"section", std::string("hardware")},
                {"lock", std::string("lamport-fast")},
                {"threads", cfc::bench::jv(k)},
                {"backoff", cfc::bench::jv(backoff ? 1 : 0)},
                {"accesses_per_acq", cfc::bench::jv(lam.mean_accesses)},
                {"ns_per_acq", cfc::bench::jv(lam.mean_ns)}});
      verify.check(lam.violations == 0, "lamport ME holds on hardware");
      if (k == 1 && !backoff) {
        lamport_solo_accesses = lam.mean_accesses;
      }
      if (k == thread_counts.back()) {
        (backoff ? lamport_backoff_worst : lamport_nobackoff_worst) =
            lam.mean_accesses;
      }

      const ContentionStudyResult tas = run_tas_study(config);
      std::snprintf(acc, sizeof(acc), "%.1f", tas.mean_accesses);
      std::snprintf(ns, sizeof(ns), "%.0f", tas.mean_ns);
      t.add_row({"tas-lock", std::to_string(k), backoff ? "yes" : "no", acc,
                 ns, std::to_string(tas.violations)});
      json.row({{"section", std::string("hardware")},
                {"lock", std::string("tas-lock")},
                {"threads", cfc::bench::jv(k)},
                {"backoff", cfc::bench::jv(backoff ? 1 : 0)},
                {"accesses_per_acq", cfc::bench::jv(tas.mean_accesses)},
                {"ns_per_acq", cfc::bench::jv(tas.mean_ns)}});
      verify.check(tas.violations == 0, "tas ME holds on hardware");
    }
  }
  std::printf("%s\n", t.render().c_str());

  verify.check(lamport_solo_accesses == 7.0,
               "solo Lamport acquisition costs exactly 7 accesses");
  // The MS93 shape: backoff's per-acquisition access count under maximum
  // contention stays below the no-backoff count (usually by a large
  // factor). Allow equality for single-core CI boxes.
  verify.check(lamport_backoff_worst <= lamport_nobackoff_worst,
               "backoff reduces (or matches) contended access counts");
  std::printf(
      "shape: solo=7.0 accesses; at %d threads: no-backoff=%.1f, "
      "backoff=%.1f\n",
      thread_counts.back(), lamport_nobackoff_worst, lamport_backoff_worst);

  return json.finish(verify);
}
