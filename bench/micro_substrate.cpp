// A4 — google-benchmark microbenchmarks of the simulation substrate:
// events/second through the scheduler, solo mutex sessions (trace-recorded
// vs streaming-measured), full detection runs, and trace measurement.
// These put a number on the harness itself so sweep costs in the table
// benches are predictable. Algorithms are resolved from the
// AlgorithmRegistry; results additionally land in
// BENCH_micro_substrate.json for the cross-PR perf trajectory. NOTE: this
// file uses google-benchmark's native JSON schema ({context, benchmarks})
// rather than bench_util.h's canonical "cfc.bench.v1" schema — trajectory
// tooling must branch on the top-level shape (the only bench exempt from
// the shared schema, per its google-benchmark argv handling).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/experiment.h"
#include "core/algorithm_registry.h"
#include "core/measures.h"
#include "core/streaming_measures.h"
#include "sched/sched.h"

namespace {

using namespace cfc;

MutexFactory lamport_fast() {
  return AlgorithmRegistry::instance().mutex("lamport-fast").factory;
}

void BM_SimReadWriteSteps(benchmark::State& state) {
  const auto iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    const RegId r = sim.memory().add_register("r", 8);
    const Pid p = sim.spawn("p", [r, iters](ProcessContext& ctx) -> Task<void> {
      for (int i = 0; i < iters; ++i) {
        const Value v = co_await ctx.read(r);
        co_await ctx.write(r, (v + 1) & 0xff);
      }
    });
    while (sim.runnable(p)) {
      sim.step(p);
    }
    benchmark::DoNotOptimize(sim.trace().size());
  }
  state.SetItemsProcessed(state.iterations() * iters * 2);
}
BENCHMARK(BM_SimReadWriteSteps)->Arg(64)->Arg(1024);

void BM_SoloLamportSession(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    auto alg = setup_mutex(sim, lamport_fast(), n, 1);
    SoloScheduler solo(0);
    drive(sim, solo);
    benchmark::DoNotOptimize(sim.trace().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoloLamportSession)->Arg(8)->Arg(64)->Arg(512);

void BM_TreeMutexSoloSession(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    auto alg = setup_mutex(
        sim, AlgorithmRegistry::instance().mutex("thm3-exact-l2").factory, n,
        1);
    SoloScheduler solo(0);
    drive(sim, solo);
    benchmark::DoNotOptimize(sim.trace().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeMutexSoloSession)->Arg(64)->Arg(512);

void BM_DetectionFullRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Sim sim;
    auto det = setup_detection(
        sim, AlgorithmRegistry::instance().detector("splitter-tree-l2").factory,
        n);
    RandomScheduler rnd(seed++);
    drive(sim, rnd);
    benchmark::DoNotOptimize(count_winners(sim));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DetectionFullRun)->Arg(16)->Arg(64);

void BM_TraceMeasurement(benchmark::State& state) {
  Sim sim;
  auto alg = setup_mutex(sim, lamport_fast(), 8, 50);
  RoundRobinScheduler rr;
  drive(sim, rr);
  for (auto _ : state) {
    ComplexityReport total;
    for (Pid p = 0; p < 8; ++p) {
      total = total.max_with(max_over_windows(
          sim.trace(), p, contention_free_sessions(sim.trace(), p, 8)));
    }
    benchmark::DoNotOptimize(total.steps);
  }
}
BENCHMARK(BM_TraceMeasurement);

void BM_SoloLamportSessionStreaming(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    sim.set_trace_recording(false);
    MeasureAccumulator acc(n);
    sim.add_sink(acc);
    auto alg = setup_mutex(sim, lamport_fast(), n, 1);
    SoloScheduler solo(0);
    drive(sim, solo);
    benchmark::DoNotOptimize(acc.total(0).steps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoloLamportSessionStreaming)->Arg(8)->Arg(64)->Arg(512);

void BM_WorstCaseSearchStreaming(benchmark::State& state) {
  // The refactored hot path: random-schedule search, streaming measurement,
  // no trace materialization, single-threaded engine (so the number is the
  // per-core cost, comparable across PRs).
  ExperimentRunner seq(1);
  WorstCaseSearchOptions options;
  options.strategy = SearchStrategy::Random;
  options.seeds = {1, 2, 3, 4};
  options.budget_per_run = 50'000;
  for (auto _ : state) {
    const MutexWcSearchResult wc = search_mutex_worst_case(
        lamport_fast(), 8, /*sessions=*/2, options, &seq);
    benchmark::DoNotOptimize(wc.entry.steps);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_WorstCaseSearchStreaming);

}  // namespace

// BENCHMARK_MAIN, defaulting --benchmark_out to the BENCH_<name>.json
// naming convention all benches follow (an explicit --benchmark_out on the
// command line still wins). The payload is google-benchmark's own JSON
// schema, not bench_util.h's row array — see the file comment.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro_substrate.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  const bool has_out = std::any_of(
      args.begin(), args.end(), [](const char* a) {
        return std::string_view(a).rfind("--benchmark_out=", 0) == 0;
      });
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
