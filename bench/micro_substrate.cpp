// A4 — google-benchmark microbenchmarks of the simulation substrate:
// events/second through the scheduler, solo mutex sessions, full detection
// runs, and trace measurement. These put a number on the harness itself so
// sweep costs in the table benches are predictable.
#include <benchmark/benchmark.h>

#include "analysis/experiment.h"
#include "core/contention_detection.h"
#include "core/measures.h"
#include "mutex/lamport_fast.h"
#include "mutex/lamport_tree.h"
#include "sched/sched.h"

namespace {

using namespace cfc;

void BM_SimReadWriteSteps(benchmark::State& state) {
  const auto iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    const RegId r = sim.memory().add_register("r", 8);
    const Pid p = sim.spawn("p", [r, iters](ProcessContext& ctx) -> Task<void> {
      for (int i = 0; i < iters; ++i) {
        const Value v = co_await ctx.read(r);
        co_await ctx.write(r, (v + 1) & 0xff);
      }
    });
    while (sim.runnable(p)) {
      sim.step(p);
    }
    benchmark::DoNotOptimize(sim.trace().size());
  }
  state.SetItemsProcessed(state.iterations() * iters * 2);
}
BENCHMARK(BM_SimReadWriteSteps)->Arg(64)->Arg(1024);

void BM_SoloLamportSession(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    auto alg = setup_mutex(sim, LamportFast::factory(), n, 1);
    SoloScheduler solo(0);
    drive(sim, solo);
    benchmark::DoNotOptimize(sim.trace().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoloLamportSession)->Arg(8)->Arg(64)->Arg(512);

void BM_TreeMutexSoloSession(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Sim sim;
    auto alg = setup_mutex(sim, theorem3_factory(2), n, 1);
    SoloScheduler solo(0);
    drive(sim, solo);
    benchmark::DoNotOptimize(sim.trace().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeMutexSoloSession)->Arg(64)->Arg(512);

void BM_DetectionFullRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Sim sim;
    auto det = setup_detection(sim, SplitterTree::factory(2), n);
    RandomScheduler rnd(seed++);
    drive(sim, rnd);
    benchmark::DoNotOptimize(count_winners(sim));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DetectionFullRun)->Arg(16)->Arg(64);

void BM_TraceMeasurement(benchmark::State& state) {
  Sim sim;
  auto alg = setup_mutex(sim, LamportFast::factory(), 8, 50);
  RoundRobinScheduler rr;
  drive(sim, rr);
  for (auto _ : state) {
    ComplexityReport total;
    for (Pid p = 0; p < 8; ++p) {
      total = total.max_with(max_over_windows(
          sim.trace(), p, contention_free_sessions(sim.trace(), p, 8)));
    }
    benchmark::DoNotOptimize(total.steps);
  }
}
BENCHMARK(BM_TraceMeasurement);

}  // namespace

BENCHMARK_MAIN();
