#include "rt/contention_study.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace cfc::rt {

namespace {

using Clock = std::chrono::steady_clock;

template <class LockFn, class UnlockFn>
ContentionStudyResult run_study(const ContentionStudyConfig& config,
                                LockFn&& lock, UnlockFn&& unlock) {
  if (config.threads < 1) {
    throw std::invalid_argument("contention study needs >= 1 thread");
  }
  std::atomic<std::uint64_t> total_accesses{0};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<int> in_cs{0};
  std::atomic<bool> go{false};

  auto worker = [&](int id) {
    std::uint64_t my_accesses = 0;
    while (!go.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    for (int i = 0; i < config.acquisitions_per_thread; ++i) {
      my_accesses += lock(id);
      if (in_cs.fetch_add(1, std::memory_order_seq_cst) != 0) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      in_cs.fetch_sub(1, std::memory_order_seq_cst);
      my_accesses += unlock(id);
    }
    total_accesses.fetch_add(my_accesses, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    pool.emplace_back(worker, t + 1);
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& t : pool) {
    t.join();
  }
  const auto stop = Clock::now();

  ContentionStudyResult res;
  res.threads = config.threads;
  res.backoff = config.backoff;
  res.total_acquisitions =
      static_cast<std::uint64_t>(config.threads) *
      static_cast<std::uint64_t>(config.acquisitions_per_thread);
  res.mean_accesses = static_cast<double>(total_accesses.load()) /
                      static_cast<double>(res.total_acquisitions);
  res.mean_ns = static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        stop - start)
                        .count()) /
                static_cast<double>(res.total_acquisitions);
  res.violations = violations.load();
  return res;
}

}  // namespace

ContentionStudyResult run_lamport_study(const ContentionStudyConfig& config) {
  AtomicMemory mem(LamportFastRt::registers_needed(config.threads),
                   config.layout);
  BackoffPolicy policy;
  policy.enabled = config.backoff;
  LamportFastRt lock(mem, config.threads, policy);
  return run_study(
      config, [&lock](int id) { return lock.lock(id); },
      [&lock](int id) { return lock.unlock(id); });
}

ContentionStudyResult run_tas_study(const ContentionStudyConfig& config) {
  AtomicMemory mem(1);
  BackoffPolicy policy;
  policy.enabled = config.backoff;
  TasLockRt lock(mem, 0, policy);
  return run_study(
      config, [&lock](int) { return lock.lock(); },
      [&lock](int) { return lock.unlock(); });
}

}  // namespace cfc::rt
