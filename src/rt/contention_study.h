#ifndef CFC_RT_CONTENTION_STUDY_H
#define CFC_RT_CONTENTION_STUDY_H

#include <cstdint>
#include <vector>

#include "rt/lamport_fast_rt.h"

namespace cfc::rt {

/// The Section 4 / MS93 experiment: with k threads hammering the lock,
/// measure per-acquisition figures for the winning thread and compare
/// against the contention-free (k = 1) baseline. The paper's claim: with
/// backoff, "the time it takes the winning process to enter its critical
/// section since the last time a critical section was released is very
/// close to the time it takes in absence of contention".
struct ContentionStudyConfig {
  int threads = 4;
  int acquisitions_per_thread = 2'000;
  bool backoff = false;
  /// Physical register placement (the [MS93] packing dimension).
  MemoryLayout layout = MemoryLayout::Padded;
  std::uint64_t seed = 1;  ///< reserved for workload jitter
};

struct ContentionStudyResult {
  int threads = 0;
  bool backoff = false;
  std::uint64_t total_acquisitions = 0;
  /// Shared-memory accesses per acquisition (entry+exit), averaged over all
  /// acquisitions — the step-complexity analogue on hardware.
  double mean_accesses = 0.0;
  /// Wall-clock nanoseconds per acquisition, aggregated throughput view.
  double mean_ns = 0.0;
  /// Mutual exclusion check: number of times two threads were observed in
  /// the critical section (must be 0).
  std::uint64_t violations = 0;
};

/// Runs the study with Lamport's fast lock.
[[nodiscard]] ContentionStudyResult run_lamport_study(
    const ContentionStudyConfig& config);

/// Runs the study with the test-and-set lock (rmw baseline).
[[nodiscard]] ContentionStudyResult run_tas_study(
    const ContentionStudyConfig& config);

}  // namespace cfc::rt

#endif  // CFC_RT_CONTENTION_STUDY_H
