#ifndef CFC_RT_ATOMIC_MEMORY_H
#define CFC_RT_ATOMIC_MEMORY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace cfc::rt {

/// Real shared memory for the wall-clock experiments (the F2 backoff study
/// and the rmw contrast): a fixed array of cache-line-padded
/// std::atomic<uint64_t> registers. Unlike the discrete-event simulator this
/// backend runs under std::thread with genuine hardware contention; it backs
/// the Section 4 discussion (MS93: with backoff, time-to-enter under load
/// approaches the contention-free time).
///
/// Sequential consistency is used throughout: the paper's model is atomic
/// registers with interleaving semantics, and seq_cst is the faithful (if
/// conservative) mapping.
/// Physical placement of the registers (the [MS93] packing dimension):
/// Padded gives every register its own cache line (no false sharing,
/// maximum footprint); Packed lays them out densely (one line may hold 8
/// registers — fewer lines to move, more invalidation coupling).
enum class MemoryLayout : std::uint8_t { Padded, Packed };

class AtomicMemory {
 public:
  explicit AtomicMemory(int registers,
                        MemoryLayout layout = MemoryLayout::Padded)
      : layout_(layout) {
    if (layout_ == MemoryLayout::Padded) {
      padded_ = std::vector<PaddedSlot>(static_cast<std::size_t>(registers));
    } else {
      packed_ = std::vector<std::atomic<std::uint64_t>>(
          static_cast<std::size_t>(registers));
    }
  }

  [[nodiscard]] std::uint64_t read(int r) const {
    return slot(r).load(std::memory_order_seq_cst);
  }

  void write(int r, std::uint64_t v) {
    slot(r).store(v, std::memory_order_seq_cst);
  }

  /// test-and-set on a register used as a bit; returns the old value.
  [[nodiscard]] std::uint64_t test_and_set(int r) {
    return slot(r).exchange(1, std::memory_order_seq_cst);
  }

  void reset() {
    for (int r = 0; r < size(); ++r) {
      slot(r).store(0, std::memory_order_seq_cst);
    }
  }

  [[nodiscard]] int size() const {
    return layout_ == MemoryLayout::Padded
               ? static_cast<int>(padded_.size())
               : static_cast<int>(packed_.size());
  }

  [[nodiscard]] MemoryLayout layout() const { return layout_; }

 private:
  struct alignas(64) PaddedSlot {  // one cache line per register
    std::atomic<std::uint64_t> value{0};
  };

  [[nodiscard]] std::atomic<std::uint64_t>& slot(int r) {
    return layout_ == MemoryLayout::Padded
               ? padded_[static_cast<std::size_t>(r)].value
               : packed_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] const std::atomic<std::uint64_t>& slot(int r) const {
    return layout_ == MemoryLayout::Padded
               ? padded_[static_cast<std::size_t>(r)].value
               : packed_[static_cast<std::size_t>(r)];
  }

  MemoryLayout layout_;
  std::vector<PaddedSlot> padded_;
  std::vector<std::atomic<std::uint64_t>> packed_;
};

}  // namespace cfc::rt

#endif  // CFC_RT_ATOMIC_MEMORY_H
