#ifndef CFC_RT_LAMPORT_FAST_RT_H
#define CFC_RT_LAMPORT_FAST_RT_H

#include <cstdint>

#include "rt/atomic_memory.h"

namespace cfc::rt {

/// Exponential backoff policy (Section 4's discussion): on noticing
/// contention a process delays itself before retrying, so the winner's path
/// from lock release to the next critical-section entry stays close to the
/// contention-free path (the MS93 observation).
struct BackoffPolicy {
  bool enabled = false;
  std::uint32_t min_spins = 1 << 4;
  std::uint32_t max_spins = 1 << 14;
};

/// Lamport's fast mutual exclusion algorithm [Lam87] over real atomics, for
/// wall-clock experiments. Register layout inside an AtomicMemory:
///   [0] x, [1] y (0 = empty, ids are 1..n), [2 + i] b[i].
///
/// The simulator twin (mutex/lamport_fast.h) is the measured, instrumented
/// version; this one exists to run the paper's Section 4 story on hardware.
class LamportFastRt {
 public:
  /// `mem` must have at least 2 + n registers.
  LamportFastRt(AtomicMemory& mem, int n, BackoffPolicy backoff = {});

  /// Entry code for process id 1..n. Returns the number of shared accesses
  /// performed (7 total with exit, in the absence of contention).
  std::uint64_t lock(int id);

  /// Exit code. Returns the number of shared accesses performed (2).
  std::uint64_t unlock(int id);

  [[nodiscard]] static int registers_needed(int n) { return 2 + n; }

 private:
  void backoff_wait(std::uint32_t& spins) const;

  AtomicMemory& mem_;
  int n_;
  BackoffPolicy backoff_;
};

/// One-bit test-and-set spinlock over real atomics (the rmw baseline).
class TasLockRt {
 public:
  explicit TasLockRt(AtomicMemory& mem, int bit = 0,
                     BackoffPolicy backoff = {})
      : mem_(mem), bit_(bit), backoff_(backoff) {}

  std::uint64_t lock();
  std::uint64_t unlock();

 private:
  AtomicMemory& mem_;
  int bit_;
  BackoffPolicy backoff_;
};

}  // namespace cfc::rt

#endif  // CFC_RT_LAMPORT_FAST_RT_H
