#include "rt/lamport_fast_rt.h"

#include <stdexcept>
#include <thread>

namespace cfc::rt {

namespace {
constexpr int kX = 0;
constexpr int kY = 1;
constexpr int kB0 = 2;
}  // namespace

LamportFastRt::LamportFastRt(AtomicMemory& mem, int n, BackoffPolicy backoff)
    : mem_(mem), n_(n), backoff_(backoff) {
  if (mem.size() < registers_needed(n)) {
    throw std::invalid_argument("AtomicMemory too small for LamportFastRt");
  }
}

void LamportFastRt::backoff_wait(std::uint32_t& spins) const {
  for (std::uint32_t i = 0; i < spins; ++i) {
    std::this_thread::yield();
  }
  if (spins < backoff_.max_spins) {
    spins *= 2;
  }
}

std::uint64_t LamportFastRt::lock(int id) {
  const auto uid = static_cast<std::uint64_t>(id);
  std::uint64_t accesses = 0;
  std::uint32_t spins = backoff_.min_spins;
  for (;;) {
    mem_.write(kB0 + id - 1, 1);
    ++accesses;
    mem_.write(kX, uid);
    ++accesses;
    ++accesses;
    if (mem_.read(kY) != 0) {
      mem_.write(kB0 + id - 1, 0);
      ++accesses;
      for (;;) {
        if (backoff_.enabled) {
          backoff_wait(spins);
        }
        ++accesses;
        if (mem_.read(kY) == 0) {
          break;
        }
      }
      continue;
    }
    mem_.write(kY, uid);
    ++accesses;
    ++accesses;
    if (mem_.read(kX) != uid) {
      mem_.write(kB0 + id - 1, 0);
      ++accesses;
      for (int j = 0; j < n_; ++j) {
        for (;;) {
          ++accesses;
          if (mem_.read(kB0 + j) == 0) {
            break;
          }
          if (backoff_.enabled) {
            backoff_wait(spins);
          }
        }
      }
      ++accesses;
      if (mem_.read(kY) != uid) {
        for (;;) {
          if (backoff_.enabled) {
            backoff_wait(spins);
          }
          ++accesses;
          if (mem_.read(kY) == 0) {
            break;
          }
        }
        continue;
      }
    }
    return accesses;
  }
}

std::uint64_t LamportFastRt::unlock(int id) {
  mem_.write(kY, 0);
  mem_.write(kB0 + id - 1, 0);
  return 2;
}

std::uint64_t TasLockRt::lock() {
  std::uint64_t accesses = 0;
  std::uint32_t spins = backoff_.min_spins;
  for (;;) {
    ++accesses;
    if (mem_.test_and_set(bit_) == 0) {
      return accesses;
    }
    if (backoff_.enabled) {
      for (std::uint32_t i = 0; i < spins; ++i) {
        std::this_thread::yield();
      }
      if (spins < backoff_.max_spins) {
        spins *= 2;
      }
    }
  }
}

std::uint64_t TasLockRt::unlock() {
  mem_.write(bit_, 0);
  return 1;
}

}  // namespace cfc::rt
