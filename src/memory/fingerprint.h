#ifndef CFC_MEMORY_FINGERPRINT_H
#define CFC_MEMORY_FINGERPRINT_H

#include <cstdint>

namespace cfc {

/// 64-bit hash primitives shared by the incremental state fingerprints
/// (RegisterFile memory hash, Sim per-process observation digests, and the
/// core/state_fingerprint combiner). They exist so the schedule-space
/// explorer can key its visited-state cache on cheap O(1)-maintained values
/// instead of serializing simulator state at every node.

/// splitmix64 finalizer: decorrelates structured inputs (small ids, small
/// values) into well-mixed 64-bit words.
[[nodiscard]] constexpr std::uint64_t fp_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent accumulation: folds `v` into the running hash `h`.
/// Use for sequences (observation histories, per-process digest chains).
[[nodiscard]] constexpr std::uint64_t fp_push(std::uint64_t h,
                                              std::uint64_t v) noexcept {
  return fp_mix(h ^ fp_mix(v ^ 0x2545f4914f6cdd1dULL));
}

/// Contribution of one (slot, value) pair to an order-INdependent set hash
/// (combined by XOR). A value change is applied incrementally as
/// `h ^= fp_slot(r, old) ^ fp_slot(r, new)`.
[[nodiscard]] constexpr std::uint64_t fp_slot(std::uint64_t slot,
                                              std::uint64_t value) noexcept {
  return fp_mix(fp_mix(slot + 1) ^ fp_mix(value ^ 0xd6e8feb86659fd93ULL));
}

}  // namespace cfc

#endif  // CFC_MEMORY_FINGERPRINT_H
