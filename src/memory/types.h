#ifndef CFC_MEMORY_TYPES_H
#define CFC_MEMORY_TYPES_H

#include <cstdint>

namespace cfc {

/// Process identifier. Processes are numbered 0..n-1 inside the simulator;
/// algorithms that require ids from {1,...,n} (as in the paper) add 1.
using Pid = int;

/// Index of a shared register within a RegisterFile.
using RegId = int;

/// Value stored in a shared register. Registers are 1..64 bits wide; the
/// register file range-checks stores against the declared width.
using Value = std::uint64_t;

/// Global event sequence number within a run (the index of the event e_i in
/// the paper's run sigma = s0 -e0-> s1 -e1-> ...).
using Seq = std::uint64_t;

}  // namespace cfc

#endif  // CFC_MEMORY_TYPES_H
