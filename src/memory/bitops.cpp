#include "memory/bitops.h"

namespace cfc {

std::string_view name(BitOp op) {
  switch (op) {
    case BitOp::Skip:
      return "skip";
    case BitOp::Read:
      return "read";
    case BitOp::Write0:
      return "write-0";
    case BitOp::TestAndReset:
      return "test-and-reset";
    case BitOp::Write1:
      return "write-1";
    case BitOp::TestAndSet:
      return "test-and-set";
    case BitOp::Flip:
      return "flip";
    case BitOp::TestAndFlip:
      return "test-and-flip";
  }
  return "unknown";
}

std::optional<BitOp> parse_bit_op(std::string_view s) {
  for (BitOp op : kAllBitOps) {
    if (name(op) == s) {
      return op;
    }
  }
  return std::nullopt;
}

}  // namespace cfc
