#ifndef CFC_MEMORY_REGISTER_FILE_H
#define CFC_MEMORY_REGISTER_FILE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "memory/types.h"

namespace cfc {

/// A copy of every register's current value, in register-id order. Cheap to
/// take and restore (one Value per register); the backbone of the simulator
/// checkpoints used by the schedule-space explorer.
using MemorySnapshot = std::vector<Value>;

/// The shared memory of a simulated system: a set of named registers, each
/// 1..64 bits wide. The *atomicity* of an algorithm (paper, Section 2.1) is
/// the width of the widest register it accesses in one atomic step; the
/// simulator derives it from the widths recorded in the trace.
///
/// RegisterFile is plain storage: atomic access semantics come from the
/// simulator, which executes exactly one access at a time (the interleaving
/// model of Section 2.2). Mutation during a run goes through Sim so every
/// access is counted; `peek`/`poke` exist for checkers and test setup only.
class RegisterFile {
 public:
  /// Maximum supported register width in bits.
  static constexpr int kMaxWidth = 64;

  /// Adds a register and returns its id. `width_bits` must be in [1, 64];
  /// `initial` must fit in `width_bits` bits. Throws std::invalid_argument
  /// otherwise.
  RegId add_register(std::string reg_name, int width_bits, Value initial = 0);

  /// Adds a 1-bit register.
  RegId add_bit(std::string reg_name, bool initial = false);

  /// Number of registers (the paper's *space* complexity, which is distinct
  /// from register complexity).
  [[nodiscard]] int size() const { return static_cast<int>(slots_.size()); }

  [[nodiscard]] int width(RegId r) const { return slot(r).width; }
  [[nodiscard]] std::string_view reg_name(RegId r) const {
    return slot(r).name;
  }
  [[nodiscard]] Value initial_value(RegId r) const { return slot(r).initial; }

  /// Current value; does not count as a step (checker/test use only).
  [[nodiscard]] Value peek(RegId r) const { return slot(r).value; }

  /// Sets the current value directly (test setup only; not a counted step).
  void poke(RegId r, Value v);

  /// Restores every register to its initial value.
  void reset();

  /// Copies every register's current value (O(size), no allocation beyond
  /// the returned vector).
  [[nodiscard]] MemorySnapshot snapshot() const;

  /// Restores the values captured by `snapshot()`. The register layout
  /// (count, widths) must be unchanged; throws std::invalid_argument on a
  /// size mismatch or a value that no longer fits its register.
  void restore(const MemorySnapshot& snap);

  /// 64-bit incremental hash of the current (register, value) set,
  /// maintained O(1) per mutation. Two register files with the same layout
  /// and the same values have equal fingerprints; used for visited-state
  /// pruning and checkpoint-replay verification, not for equality proofs.
  [[nodiscard]] std::uint64_t fingerprint() const { return fp_; }

  /// Largest value representable in register r.
  [[nodiscard]] Value max_value(RegId r) const;

  /// True iff v fits in register r.
  [[nodiscard]] bool fits(RegId r, Value v) const { return v <= max_value(r); }

 private:
  struct Slot {
    std::string name;
    int width = 1;
    Value initial = 0;
    Value value = 0;
  };

  [[nodiscard]] const Slot& slot(RegId r) const;
  [[nodiscard]] Slot& slot(RegId r);

  std::vector<Slot> slots_;
  std::uint64_t fp_ = 0;

  friend class Sim;  // Sim::execute applies counted accesses in place
};

}  // namespace cfc

#endif  // CFC_MEMORY_REGISTER_FILE_H
