#include "memory/model.h"

namespace cfc {

std::vector<BitOp> Model::operations() const {
  std::vector<BitOp> ops;
  for (BitOp op : kAllBitOps) {
    if (supports(op)) {
      ops.push_back(op);
    }
  }
  return ops;
}

std::string Model::to_string() const {
  if (*this == Model::rmw()) {
    return "rmw";
  }
  if (*this == Model::test_and_set()) {
    return "test-and-set";
  }
  if (*this == Model::read_test_and_set()) {
    return "read+test-and-set";
  }
  if (*this == Model::read_tas_tar()) {
    return "read+test-and-set+test-and-reset";
  }
  if (*this == Model::test_and_flip()) {
    return "test-and-flip";
  }
  std::string out = "{";
  bool first = true;
  for (BitOp op : operations()) {
    if (!first) {
      out += ", ";
    }
    out += name(op);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace cfc
