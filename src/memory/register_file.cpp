#include "memory/register_file.h"

#include <stdexcept>
#include <utility>

#include "memory/fingerprint.h"

namespace cfc {

RegId RegisterFile::add_register(std::string reg_name, int width_bits,
                                 Value initial) {
  if (width_bits < 1 || width_bits > kMaxWidth) {
    throw std::invalid_argument("register width must be in [1, 64]: " +
                                std::move(reg_name));
  }
  Slot s;
  s.name = std::move(reg_name);
  s.width = width_bits;
  if (width_bits < kMaxWidth && initial > ((Value{1} << width_bits) - 1)) {
    throw std::invalid_argument("initial value does not fit register " +
                                s.name);
  }
  s.initial = initial;
  s.value = initial;
  slots_.push_back(std::move(s));
  const RegId id = static_cast<RegId>(slots_.size()) - 1;
  fp_ ^= fp_slot(static_cast<std::uint64_t>(id), initial);
  return id;
}

RegId RegisterFile::add_bit(std::string reg_name, bool initial) {
  return add_register(std::move(reg_name), 1, initial ? 1 : 0);
}

void RegisterFile::poke(RegId r, Value v) {
  Slot& s = slot(r);
  if (!fits(r, v)) {
    throw std::invalid_argument("poke value does not fit register " + s.name);
  }
  const auto ur = static_cast<std::uint64_t>(r);
  fp_ ^= fp_slot(ur, s.value) ^ fp_slot(ur, v);
  s.value = v;
}

void RegisterFile::reset() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    fp_ ^= fp_slot(i, s.value) ^ fp_slot(i, s.initial);
    s.value = s.initial;
  }
}

MemorySnapshot RegisterFile::snapshot() const {
  MemorySnapshot snap;
  snap.reserve(slots_.size());
  for (const Slot& s : slots_) {
    snap.push_back(s.value);
  }
  return snap;
}

void RegisterFile::restore(const MemorySnapshot& snap) {
  if (snap.size() != slots_.size()) {
    throw std::invalid_argument(
        "snapshot does not match register file layout");
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (s.width < kMaxWidth && snap[i] > ((Value{1} << s.width) - 1)) {
      throw std::invalid_argument("snapshot value does not fit register " +
                                  s.name);
    }
    fp_ ^= fp_slot(i, s.value) ^ fp_slot(i, snap[i]);
    s.value = snap[i];
  }
}

Value RegisterFile::max_value(RegId r) const {
  const int w = slot(r).width;
  if (w >= kMaxWidth) {
    return ~Value{0};
  }
  return (Value{1} << w) - 1;
}

const RegisterFile::Slot& RegisterFile::slot(RegId r) const {
  if (r < 0 || r >= size()) {
    throw std::out_of_range("bad register id");
  }
  return slots_[static_cast<std::size_t>(r)];
}

RegisterFile::Slot& RegisterFile::slot(RegId r) {
  if (r < 0 || r >= size()) {
    throw std::out_of_range("bad register id");
  }
  return slots_[static_cast<std::size_t>(r)];
}

}  // namespace cfc
