#include "memory/register_file.h"

#include <stdexcept>
#include <utility>

namespace cfc {

RegId RegisterFile::add_register(std::string reg_name, int width_bits,
                                 Value initial) {
  if (width_bits < 1 || width_bits > kMaxWidth) {
    throw std::invalid_argument("register width must be in [1, 64]: " +
                                std::move(reg_name));
  }
  Slot s;
  s.name = std::move(reg_name);
  s.width = width_bits;
  if (width_bits < kMaxWidth && initial > ((Value{1} << width_bits) - 1)) {
    throw std::invalid_argument("initial value does not fit register " +
                                s.name);
  }
  s.initial = initial;
  s.value = initial;
  slots_.push_back(std::move(s));
  return static_cast<RegId>(slots_.size()) - 1;
}

RegId RegisterFile::add_bit(std::string reg_name, bool initial) {
  return add_register(std::move(reg_name), 1, initial ? 1 : 0);
}

void RegisterFile::poke(RegId r, Value v) {
  Slot& s = slot(r);
  if (!fits(r, v)) {
    throw std::invalid_argument("poke value does not fit register " + s.name);
  }
  s.value = v;
}

void RegisterFile::reset() {
  for (Slot& s : slots_) {
    s.value = s.initial;
  }
}

Value RegisterFile::max_value(RegId r) const {
  const int w = slot(r).width;
  if (w >= kMaxWidth) {
    return ~Value{0};
  }
  return (Value{1} << w) - 1;
}

const RegisterFile::Slot& RegisterFile::slot(RegId r) const {
  if (r < 0 || r >= size()) {
    throw std::out_of_range("bad register id");
  }
  return slots_[static_cast<std::size_t>(r)];
}

RegisterFile::Slot& RegisterFile::slot(RegId r) {
  if (r < 0 || r >= size()) {
    throw std::out_of_range("bad register id");
  }
  return slots_[static_cast<std::size_t>(r)];
}

}  // namespace cfc
