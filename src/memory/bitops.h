#ifndef CFC_MEMORY_BITOPS_H
#define CFC_MEMORY_BITOPS_H

#include <array>
#include <optional>
#include <string_view>

namespace cfc {

/// The eight single-bit operations of Section 3.1 of the paper. Each is
/// defined by how it affects the bit and whether it returns the old value.
///
/// The enumerator values are chosen so that op and its dual are computable
/// (see `dual`): write-0/write-1, test-and-reset/test-and-set are dual pairs;
/// skip, read, flip and test-and-flip are self-dual.
enum class BitOp : std::uint8_t {
  Skip = 0,          ///< no effect, no return value
  Read = 1,          ///< no effect, returns current value
  Write0 = 2,        ///< sets bit to 0, no return value
  TestAndReset = 3,  ///< sets bit to 0, returns old value
  Write1 = 4,        ///< sets bit to 1, no return value
  TestAndSet = 5,    ///< sets bit to 1, returns old value
  Flip = 6,          ///< complements bit, no return value
  TestAndFlip = 7,   ///< complements bit, returns old value
};

/// Number of distinct single-bit operations.
inline constexpr int kBitOpCount = 8;

/// All eight operations, in enumerator order.
inline constexpr std::array<BitOp, kBitOpCount> kAllBitOps = {
    BitOp::Skip,   BitOp::Read,       BitOp::Write0, BitOp::TestAndReset,
    BitOp::Write1, BitOp::TestAndSet, BitOp::Flip,   BitOp::TestAndFlip};

/// Result of applying a bit operation.
struct BitOpResult {
  bool new_value = false;             ///< value of the bit after the op
  std::optional<bool> returned;       ///< old value, if the op returns one
};

/// Applies `op` to a bit currently holding `old_value`.
[[nodiscard]] constexpr BitOpResult apply(BitOp op, bool old_value) {
  switch (op) {
    case BitOp::Skip:
      return {old_value, std::nullopt};
    case BitOp::Read:
      return {old_value, old_value};
    case BitOp::Write0:
      return {false, std::nullopt};
    case BitOp::TestAndReset:
      return {false, old_value};
    case BitOp::Write1:
      return {true, std::nullopt};
    case BitOp::TestAndSet:
      return {true, old_value};
    case BitOp::Flip:
      return {!old_value, std::nullopt};
    case BitOp::TestAndFlip:
      return {!old_value, old_value};
  }
  return {old_value, std::nullopt};  // unreachable
}

/// True iff the operation returns the old value of the bit.
[[nodiscard]] constexpr bool returns_value(BitOp op) {
  return op == BitOp::Read || op == BitOp::TestAndReset ||
         op == BitOp::TestAndSet || op == BitOp::TestAndFlip;
}

/// True iff the operation can modify the bit (for some old value).
[[nodiscard]] constexpr bool can_modify(BitOp op) {
  return op != BitOp::Skip && op != BitOp::Read;
}

/// The dual operation (Section 3.2): write-0 <-> write-1, test-and-reset <->
/// test-and-set; skip, read, flip, and test-and-flip are their own duals.
/// Bounds proved for a model transfer to its dual model.
[[nodiscard]] constexpr BitOp dual(BitOp op) {
  switch (op) {
    case BitOp::Write0:
      return BitOp::Write1;
    case BitOp::Write1:
      return BitOp::Write0;
    case BitOp::TestAndReset:
      return BitOp::TestAndSet;
    case BitOp::TestAndSet:
      return BitOp::TestAndReset;
    default:
      return op;
  }
}

/// Stable lower-case name, e.g. "test-and-set".
[[nodiscard]] std::string_view name(BitOp op);

/// Parses a name produced by `name`. Returns nullopt for unknown strings.
[[nodiscard]] std::optional<BitOp> parse_bit_op(std::string_view s);

}  // namespace cfc

#endif  // CFC_MEMORY_BITOPS_H
