#ifndef CFC_MEMORY_MODEL_H
#define CFC_MEMORY_MODEL_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "memory/bitops.h"

namespace cfc {

/// A *model* (Section 3.1) is a subset of the eight single-bit operations: it
/// defines which operations a process may apply to a shared bit in one atomic
/// step. There are 2^8 models; the paper's naming table (Section 3.3) uses
/// five of them, exposed below as named factories.
///
/// Model is a small value type (a bitmask over BitOp).
class Model {
 public:
  /// The empty model (no operation allowed; useless but well-defined).
  constexpr Model() = default;

  constexpr Model(std::initializer_list<BitOp> ops) {
    for (BitOp op : ops) {
      mask_ |= bit(op);
    }
  }

  /// ---- The five models of the paper's naming table, left to right. ----

  /// {test-and-set}: n-1 is tight for all four measures (Thms 4.3, 6, 7).
  [[nodiscard]] static constexpr Model test_and_set() {
    return Model{BitOp::TestAndSet};
  }
  /// {read, test-and-set}: contention-free measures drop to log n (Thm 4.4).
  [[nodiscard]] static constexpr Model read_test_and_set() {
    return Model{BitOp::Read, BitOp::TestAndSet};
  }
  /// {read, test-and-set, test-and-reset}: worst-case register complexity
  /// drops to log n as well (Thm 4.2).
  [[nodiscard]] static constexpr Model read_tas_tar() {
    return Model{BitOp::Read, BitOp::TestAndSet, BitOp::TestAndReset};
  }
  /// {test-and-flip}: log n is tight for all four measures (Thms 4.1, 5).
  [[nodiscard]] static constexpr Model test_and_flip() {
    return Model{BitOp::TestAndFlip};
  }
  /// All eight operations: the read/modify/write model.
  [[nodiscard]] static constexpr Model rmw() {
    Model m;
    for (BitOp op : kAllBitOps) {
      m.mask_ |= bit(op);
    }
    return m;
  }

  /// The atomic-register model on bits: read and both writes, no
  /// read-modify-write. (Naming is unsolvable deterministically here, which
  /// the test suite demonstrates via the symmetry adversary.)
  [[nodiscard]] static constexpr Model read_write() {
    return Model{BitOp::Read, BitOp::Write0, BitOp::Write1};
  }

  [[nodiscard]] constexpr bool supports(BitOp op) const {
    return (mask_ & bit(op)) != 0;
  }

  [[nodiscard]] constexpr Model with(BitOp op) const {
    Model m = *this;
    m.mask_ |= bit(op);
    return m;
  }

  [[nodiscard]] constexpr Model without(BitOp op) const {
    Model m = *this;
    m.mask_ &= static_cast<std::uint8_t>(~bit(op));
    return m;
  }

  /// True iff every operation of `other` is also in this model: an algorithm
  /// written for `other` runs unmodified here.
  [[nodiscard]] constexpr bool includes(Model other) const {
    return (mask_ & other.mask_) == other.mask_;
  }

  /// The dual model (Section 3.2): each operation replaced by its dual.
  /// Every complexity bound that holds for M holds for dual(M).
  [[nodiscard]] constexpr Model dual_model() const {
    Model m;
    for (BitOp op : kAllBitOps) {
      if (supports(op)) {
        m.mask_ |= bit(dual(op));
      }
    }
    return m;
  }

  [[nodiscard]] constexpr bool is_self_dual() const {
    return dual_model().mask_ == mask_;
  }

  [[nodiscard]] constexpr int size() const {
    int k = 0;
    for (BitOp op : kAllBitOps) {
      k += supports(op) ? 1 : 0;
    }
    return k;
  }

  [[nodiscard]] std::vector<BitOp> operations() const;

  /// Human-readable name: "{read, test-and-set}" or a canonical short name
  /// for the five table models ("rmw", "test-and-set", ...).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr friend bool operator==(Model a, Model b) {
    return a.mask_ == b.mask_;
  }

  /// Raw mask, for hashing / enumeration of all 2^8 models.
  [[nodiscard]] constexpr std::uint8_t mask() const { return mask_; }

  /// Builds a model from a raw mask (inverse of `mask`).
  [[nodiscard]] static constexpr Model from_mask(std::uint8_t mask) {
    Model m;
    m.mask_ = mask;
    return m;
  }

 private:
  static constexpr std::uint8_t bit(BitOp op) {
    return static_cast<std::uint8_t>(1u << static_cast<unsigned>(op));
  }

  std::uint8_t mask_ = 0;
};

}  // namespace cfc

#endif  // CFC_MEMORY_MODEL_H
