#ifndef CFC_MEMORY_ACCESS_H
#define CFC_MEMORY_ACCESS_H

#include <optional>

#include "memory/bitops.h"
#include "memory/types.h"

namespace cfc {

/// Kind of a shared-memory access event.
///
/// Mutual exclusion (Section 2) runs in the atomic-register model: a process
/// either Reads or Writes one register per step. Naming (Section 3) runs in
/// bit-operation models: a process applies one of the eight BitOps to one
/// shared bit per step.
enum class AccessKind : std::uint8_t {
  Read,   ///< read an l-bit register, returns its value
  Write,  ///< write an l-bit register with a given value
  Bit,    ///< apply a BitOp to a 1-bit register
};

/// One access event e_i of a run: which process touched which register, how,
/// and what it observed. This is the unit counted by *step complexity*; the
/// set of distinct `reg` values per process is *register complexity*.
struct Access {
  Seq seq = 0;             ///< global event sequence number
  Pid pid = -1;            ///< acting process
  RegId reg = -1;          ///< register accessed
  AccessKind kind = AccessKind::Read;
  BitOp bit_op = BitOp::Skip;     ///< valid iff kind == Bit
  Value written = 0;              ///< valid iff kind == Write
  std::optional<Value> returned;  ///< value observed (Read / returning BitOp)
  Value before = 0;               ///< register value before the access
  Value after = 0;                ///< register value after the access
  int width = 1;                  ///< register width (atomicity bookkeeping)
  /// Multi-grain sub-word store (write_field): the written window. A plain
  /// whole-register write records field_width == 0.
  int field_shift = 0;
  int field_width = 0;

  /// True iff the access is a read in the read/write-step refinement used by
  /// Lemma 3 (read-step vs write-step complexity). For bit ops, only
  /// BitOp::Read counts as a read; every other non-skip op is a write.
  [[nodiscard]] bool is_read() const {
    if (kind == AccessKind::Read) {
      return true;
    }
    if (kind == AccessKind::Bit) {
      return bit_op == BitOp::Read;
    }
    return false;
  }

  /// True iff the access can modify the register (write-step refinement).
  [[nodiscard]] bool is_write() const {
    if (kind == AccessKind::Write) {
      return true;
    }
    if (kind == AccessKind::Bit) {
      return can_modify(bit_op);
    }
    return false;
  }

  /// Bit mask of the register the access may modify: the field window for
  /// a sub-word store, the full register width for every other write, and
  /// 0 for a pure read.
  [[nodiscard]] Value written_mask() const {
    if (!is_write()) {
      return 0;
    }
    const int w = field_width > 0 ? field_width : width;
    const Value mask = w >= 64 ? ~Value{0} : ((Value{1} << w) - 1);
    return field_width > 0 ? mask << static_cast<unsigned>(field_shift)
                           : mask;
  }
};

}  // namespace cfc

#endif  // CFC_MEMORY_ACCESS_H
