#include "naming/naming_algorithm.h"

#include <stdexcept>

namespace cfc {

Task<void> naming_driver(ProcessContext& ctx, NamingAlgorithm& alg) {
  ctx.set_section(Section::Working);
  const Value name = co_await alg.claim(ctx);
  ctx.set_output(static_cast<int>(name));
  ctx.set_section(Section::Done);
}

std::unique_ptr<NamingAlgorithm> setup_naming(Sim& sim,
                                              const NamingFactory& make,
                                              int n) {
  if (sim.process_count() != 0) {
    throw std::invalid_argument("setup_naming requires an empty sim");
  }
  std::unique_ptr<NamingAlgorithm> alg = make(sim.memory(), n);
  if (alg->capacity() < n) {
    throw std::invalid_argument("naming capacity below process count");
  }
  sim.set_model(alg->model());
  for (int i = 0; i < n; ++i) {
    NamingAlgorithm* a = alg.get();
    // Identical bodies: no slot/index reaches the algorithm.
    sim.spawn("n" + std::to_string(i), [a](ProcessContext& ctx) {
      return naming_driver(ctx, *a);
    });
  }
  return alg;
}

}  // namespace cfc
