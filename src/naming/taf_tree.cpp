#include "naming/taf_tree.h"

#include <stdexcept>

#include "core/algorithm_registry.h"
#include "core/bounds.h"

namespace cfc {

TafTree::TafTree(RegisterFile& mem, int n) : n_(n) {
  if (n < 2 || !bounds::is_power_of_two(n)) {
    throw std::invalid_argument("TafTree needs a power-of-two n >= 2");
  }
  bits_.resize(static_cast<std::size_t>(n));  // index 0 unused
  for (int v = 1; v < n; ++v) {
    bits_[static_cast<std::size_t>(v)] =
        mem.add_bit("taf.t" + std::to_string(v));
  }
}

Task<Value> TafTree::claim(ProcessContext& ctx) {
  // Walk the heap-shaped tree: node v's children are 2v and 2v+1. After
  // log2(n) flips, v lands in [n, 2n); names are 1-based slots.
  int v = 1;
  while (v < n_) {
    const Value r =
        co_await ctx.test_and_flip(bits_[static_cast<std::size_t>(v)]);
    v = 2 * v + static_cast<int>(r);
  }
  co_return static_cast<Value>(v - n_ + 1);
}

NamingFactory TafTree::factory() {
  return [](RegisterFile& mem, int n) {
    return std::make_unique<TafTree>(mem, n);
  };
}

namespace {
const NamingRegistrar kTafTreeRegistrar{
    AlgorithmInfo::named("taf-tree")
        .desc("test-and-flip tree (Thm 4.1): log n in all four measures, "
              "tight for the {taf} model")
        .model(Model::test_and_flip())
        .pow2_only()
        .tag("paper")
        .tag("tree"),
    TafTree::factory()};
}  // namespace

}  // namespace cfc
