#ifndef CFC_NAMING_TAS_READ_SEARCH_H
#define CFC_NAMING_TAS_READ_SEARCH_H

#include <vector>

#include "naming/naming_algorithm.h"

namespace cfc {

/// Theorem 4.4: naming with read + test-and-set — contention-free step
/// complexity log n (tight by Theorem 5), while the worst case stays n - 1.
///
/// Same n - 1 bit array as TasScan. A process first binary-searches (with
/// plain reads) for the least-numbered bit that still reads 0 — in a
/// contention-free (sequential) run the set bits form a prefix, so the
/// search is exact and costs ceil(log2(n-1)) reads. The final search step
/// is a test-and-set on the candidate; if it returns 1 (possible only under
/// contention, when the array is not a clean prefix), the process falls
/// back to the linear scan from that position.
class TasReadSearch final : public NamingAlgorithm {
 public:
  TasReadSearch(RegisterFile& mem, int n);

  Task<Value> claim(ProcessContext& ctx) override;
  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int name_space() const override { return n_; }
  [[nodiscard]] Model model() const override {
    return Model::read_test_and_set();
  }
  [[nodiscard]] std::string algorithm_name() const override {
    return "tas-read-search";
  }

  [[nodiscard]] static NamingFactory factory();

 private:
  int n_;
  std::vector<RegId> bits_;
};

}  // namespace cfc

#endif  // CFC_NAMING_TAS_READ_SEARCH_H
