#ifndef CFC_NAMING_DUAL_SCAN_H
#define CFC_NAMING_DUAL_SCAN_H

#include <vector>

#include "naming/naming_algorithm.h"

namespace cfc {

/// Dual of TasScan under the Section 3.2 duality: bits start at 1 and are
/// claimed with test-and-reset (old value 1 wins). Every bound for the
/// {test-and-set} model transfers to {test-and-reset} through this
/// algorithm — the executable witness of the duality argument, and a
/// building block for the all-models census.
class TarScan final : public NamingAlgorithm {
 public:
  TarScan(RegisterFile& mem, int n);

  Task<Value> claim(ProcessContext& ctx) override;
  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int name_space() const override { return n_; }
  [[nodiscard]] Model model() const override {
    return Model{BitOp::TestAndReset};
  }
  [[nodiscard]] std::string algorithm_name() const override {
    return "tar-scan";
  }

  [[nodiscard]] static NamingFactory factory();

 private:
  int n_;
  std::vector<RegId> bits_;
};

/// Dual of TasReadSearch: bits start at 1; binary search (by reads) for the
/// least bit still reading 1, then test-and-reset probes. Contention-free
/// step complexity ~ log n in the {read, test-and-reset} model.
class TarReadSearch final : public NamingAlgorithm {
 public:
  TarReadSearch(RegisterFile& mem, int n);

  Task<Value> claim(ProcessContext& ctx) override;
  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int name_space() const override { return n_; }
  [[nodiscard]] Model model() const override {
    return Model{BitOp::Read, BitOp::TestAndReset};
  }
  [[nodiscard]] std::string algorithm_name() const override {
    return "tar-read-search";
  }

  [[nodiscard]] static NamingFactory factory();

 private:
  int n_;
  std::vector<RegId> bits_;
};

}  // namespace cfc

#endif  // CFC_NAMING_DUAL_SCAN_H
