#include "naming/tas_tar_tree.h"

#include <stdexcept>

#include "core/algorithm_registry.h"
#include "core/bounds.h"

namespace cfc {

TasTarTree::TasTarTree(RegisterFile& mem, int n) : n_(n) {
  if (n < 2 || !bounds::is_power_of_two(n)) {
    throw std::invalid_argument("TasTarTree needs a power-of-two n >= 2");
  }
  bits_.resize(static_cast<std::size_t>(n));
  for (int v = 1; v < n; ++v) {
    bits_[static_cast<std::size_t>(v)] =
        mem.add_bit("tastar.t" + std::to_string(v));
  }
}

Task<Value> TasTarTree::claim(ProcessContext& ctx) {
  int v = 1;
  while (v < n_) {
    const RegId bit = bits_[static_cast<std::size_t>(v)];
    int direction = -1;
    while (direction < 0) {
      const Value s = co_await ctx.test_and_set(bit);
      if (s == 0) {
        direction = 0;  // this process performed the 0 -> 1 transition
        break;
      }
      const Value r = co_await ctx.test_and_reset(bit);
      if (r == 1) {
        direction = 1;  // this process performed the 1 -> 0 transition
      }
    }
    v = 2 * v + direction;
  }
  co_return static_cast<Value>(v - n_ + 1);
}

NamingFactory TasTarTree::factory() {
  return [](RegisterFile& mem, int n) {
    return std::make_unique<TasTarTree>(mem, n);
  };
}

namespace {
const NamingRegistrar kTasTarTreeRegistrar{
    AlgorithmInfo::named("tas-tar-tree")
        .desc("alternating tas/tar tree (Thm 4.2): worst-case register "
              "complexity log n without test-and-flip")
        .model(Model{BitOp::TestAndSet, BitOp::TestAndReset})
        .pow2_only()
        .tag("paper")
        .tag("tree"),
    TasTarTree::factory()};
}  // namespace

}  // namespace cfc
