#include "naming/tas_scan.h"

#include <stdexcept>

#include "core/algorithm_registry.h"

namespace cfc {

TasScan::TasScan(RegisterFile& mem, int n) : n_(n) {
  if (n < 1) {
    throw std::invalid_argument("TasScan needs n >= 1");
  }
  bits_.reserve(static_cast<std::size_t>(n - 1));
  for (int j = 1; j < n; ++j) {
    bits_.push_back(mem.add_bit("tasscan.b" + std::to_string(j)));
  }
}

Task<Value> TasScan::claim(ProcessContext& ctx) {
  for (std::size_t j = 0; j < bits_.size(); ++j) {
    const Value old = co_await ctx.test_and_set(bits_[j]);
    if (old == 0) {
      co_return static_cast<Value>(j + 1);
    }
  }
  co_return static_cast<Value>(n_);  // all n-1 probes returned 1
}

NamingFactory TasScan::factory() {
  return [](RegisterFile& mem, int n) {
    return std::make_unique<TasScan>(mem, n);
  };
}

namespace {
const NamingRegistrar kTasScanRegistrar{
    AlgorithmInfo::named("tas-scan")
        .desc("linear test-and-set scan (Thm 4.3): n-1 in all four "
              "measures, tight for the {tas} model")
        .model(Model::test_and_set())
        .tag("paper")
        .tag("scan"),
    TasScan::factory()};
}  // namespace

}  // namespace cfc
