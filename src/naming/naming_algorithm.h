#ifndef CFC_NAMING_NAMING_ALGORITHM_H
#define CFC_NAMING_NAMING_ALGORITHM_H

#include <functional>
#include <memory>
#include <string>

#include "memory/model.h"
#include "memory/register_file.h"
#include "sched/sim.h"
#include "sched/task.h"

namespace cfc {

/// The naming problem (Section 3): n initially *identical* processes must
/// each obtain a unique name from {1, ..., name_space()}, wait-free (every
/// participating process terminates in a bounded number of its own steps
/// regardless of crashes elsewhere), over shared bits accessed with the
/// operations of a declared Model.
///
/// Symmetry is structural: `claim` receives no process identifier — a
/// process can branch only on values returned by earlier operations. The
/// simulator additionally enforces the bit-model discipline (every access
/// is one BitOp of the declared model applied to one shared bit).
class NamingAlgorithm {
 public:
  virtual ~NamingAlgorithm() = default;

  /// The protocol: runs until a name is claimed and returns it.
  virtual Task<Value> claim(ProcessContext& ctx) = 0;

  /// Maximum number of participating processes.
  [[nodiscard]] virtual int capacity() const = 0;

  /// Size of the name space (n for all algorithms here — optimal).
  [[nodiscard]] virtual int name_space() const = 0;

  /// The weakest model the algorithm needs.
  [[nodiscard]] virtual Model model() const = 0;

  [[nodiscard]] virtual std::string algorithm_name() const = 0;
};

using NamingFactory =
    std::function<std::unique_ptr<NamingAlgorithm>(RegisterFile& mem, int n)>;

/// Standard driver: Working/Done bookkeeping, records the claimed name as
/// the process output.
Task<void> naming_driver(ProcessContext& ctx, NamingAlgorithm& alg);

/// Spawns n naming processes into an empty sim, declares the algorithm's
/// model on the simulator (enforcing the bit discipline), and returns the
/// algorithm instance.
std::unique_ptr<NamingAlgorithm> setup_naming(Sim& sim,
                                              const NamingFactory& make,
                                              int n);

}  // namespace cfc

#endif  // CFC_NAMING_NAMING_ALGORITHM_H
