#ifndef CFC_NAMING_TAF_TREE_H
#define CFC_NAMING_TAF_TREE_H

#include <vector>

#include "naming/naming_algorithm.h"

namespace cfc {

/// Theorem 4.1: naming with test-and-flip, worst-case step complexity
/// exactly log n (tight by Theorem 5).
///
/// n - 1 shared bits arranged as a complete binary tree (n a power of two).
/// Each process walks root-to-leaf applying test-and-flip at every node:
/// returned 0 goes left, 1 goes right. Because test-and-flip alternates the
/// returned values 0,1,0,1,... among the processes completing an operation
/// at a node, at most ceil(k/2) of k visitors descend to either side, so at
/// most one process arrives at each of the 2n virtual slots below the
/// leaves — its unique name.
class TafTree final : public NamingAlgorithm {
 public:
  /// n must be a power of two, >= 2.
  TafTree(RegisterFile& mem, int n);

  Task<Value> claim(ProcessContext& ctx) override;
  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int name_space() const override { return n_; }
  [[nodiscard]] Model model() const override {
    return Model::test_and_flip();
  }
  [[nodiscard]] std::string algorithm_name() const override {
    return "taf-tree";
  }

  [[nodiscard]] static NamingFactory factory();

 private:
  int n_;
  std::vector<RegId> bits_;  // heap layout, index 1..n-1
};

}  // namespace cfc

#endif  // CFC_NAMING_TAF_TREE_H
