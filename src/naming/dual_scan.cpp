#include "naming/dual_scan.h"

#include <stdexcept>

#include "core/algorithm_registry.h"

namespace cfc {

TarScan::TarScan(RegisterFile& mem, int n) : n_(n) {
  if (n < 1) {
    throw std::invalid_argument("TarScan needs n >= 1");
  }
  bits_.reserve(static_cast<std::size_t>(n - 1));
  for (int j = 1; j < n; ++j) {
    bits_.push_back(mem.add_bit("tarscan.b" + std::to_string(j), true));
  }
}

Task<Value> TarScan::claim(ProcessContext& ctx) {
  for (std::size_t j = 0; j < bits_.size(); ++j) {
    const Value old = co_await ctx.test_and_reset(bits_[j]);
    if (old == 1) {  // dual of "old == 0"
      co_return static_cast<Value>(j + 1);
    }
  }
  co_return static_cast<Value>(n_);
}

NamingFactory TarScan::factory() {
  return [](RegisterFile& mem, int n) {
    return std::make_unique<TarScan>(mem, n);
  };
}

TarReadSearch::TarReadSearch(RegisterFile& mem, int n) : n_(n) {
  if (n < 1) {
    throw std::invalid_argument("TarReadSearch needs n >= 1");
  }
  bits_.reserve(static_cast<std::size_t>(n - 1));
  for (int j = 1; j < n; ++j) {
    bits_.push_back(mem.add_bit("tarsearch.b" + std::to_string(j), true));
  }
}

Task<Value> TarReadSearch::claim(ProcessContext& ctx) {
  if (bits_.empty()) {
    co_return 1;
  }
  // Binary search for the least index still reading 1 (claimed bits read 0
  // here — everything is the complement of TasReadSearch).
  std::size_t lo = 0;
  std::size_t hi = bits_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const Value v = co_await ctx.op(BitOp::Read, bits_[mid]);
    if (v == 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (std::size_t j = lo; j < bits_.size(); ++j) {
    const Value old = co_await ctx.test_and_reset(bits_[j]);
    if (old == 1) {
      co_return static_cast<Value>(j + 1);
    }
  }
  co_return static_cast<Value>(n_);
}

NamingFactory TarReadSearch::factory() {
  return [](RegisterFile& mem, int n) {
    return std::make_unique<TarReadSearch>(mem, n);
  };
}

namespace {
const NamingRegistrar kTarScanRegistrar{
    AlgorithmInfo::named("tar-scan")
        .desc("dual of tas-scan under the Section 3.2 duality: "
              "test-and-reset over bits initialized to 1")
        .model(Model{BitOp::TestAndReset})
        .tag("dual")
        .tag("scan"),
    TarScan::factory()};
const NamingRegistrar kTarReadSearchRegistrar{
    AlgorithmInfo::named("tar-read-search")
        .desc("dual of tas-read-search: binary search by reads, then "
              "test-and-reset probes")
        .model(Model{BitOp::Read, BitOp::TestAndReset})
        .tag("dual")
        .tag("search"),
    TarReadSearch::factory()};
}  // namespace

}  // namespace cfc
