#ifndef CFC_NAMING_TAS_SCAN_H
#define CFC_NAMING_TAS_SCAN_H

#include <vector>

#include "naming/naming_algorithm.h"

namespace cfc {

/// Theorem 4.3: naming with test-and-set only — worst-case step complexity
/// n - 1, which is optimal in this model: Theorem 6 gives the matching n-1
/// worst-case lower bound (no test-and-flip), and Theorem 7 shows even the
/// contention-free register complexity is n - 1 here.
///
/// n - 1 bits, initially 0, numbered 1..n-1. A process scans them in order
/// applying test-and-set; it takes as its name the first bit whose old
/// value was 0, or n if every probe returned 1.
class TasScan final : public NamingAlgorithm {
 public:
  TasScan(RegisterFile& mem, int n);

  Task<Value> claim(ProcessContext& ctx) override;
  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int name_space() const override { return n_; }
  [[nodiscard]] Model model() const override {
    return Model::test_and_set();
  }
  [[nodiscard]] std::string algorithm_name() const override {
    return "tas-scan";
  }

  [[nodiscard]] static NamingFactory factory();

 private:
  int n_;
  std::vector<RegId> bits_;
};

}  // namespace cfc

#endif  // CFC_NAMING_TAS_SCAN_H
