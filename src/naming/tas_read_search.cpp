#include "naming/tas_read_search.h"

#include <stdexcept>

#include "core/algorithm_registry.h"

namespace cfc {

TasReadSearch::TasReadSearch(RegisterFile& mem, int n) : n_(n) {
  if (n < 1) {
    throw std::invalid_argument("TasReadSearch needs n >= 1");
  }
  bits_.reserve(static_cast<std::size_t>(n - 1));
  for (int j = 1; j < n; ++j) {
    bits_.push_back(mem.add_bit("tassearch.b" + std::to_string(j)));
  }
}

Task<Value> TasReadSearch::claim(ProcessContext& ctx) {
  if (bits_.empty()) {
    co_return 1;  // single process, single name
  }
  // Binary search with reads for the least index whose bit reads 0. In a
  // contention-free run the 1-bits form a prefix, so this is exact.
  std::size_t lo = 0;
  std::size_t hi = bits_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const Value v = co_await ctx.op(BitOp::Read, bits_[mid]);
    if (v != 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // Probe from the candidate onward (degenerates to the linear scan only
  // under contention).
  for (std::size_t j = lo; j < bits_.size(); ++j) {
    const Value old = co_await ctx.test_and_set(bits_[j]);
    if (old == 0) {
      co_return static_cast<Value>(j + 1);
    }
  }
  co_return static_cast<Value>(n_);
}

NamingFactory TasReadSearch::factory() {
  return [](RegisterFile& mem, int n) {
    return std::make_unique<TasReadSearch>(mem, n);
  };
}

namespace {
const NamingRegistrar kTasReadSearchRegistrar{
    AlgorithmInfo::named("tas-read-search")
        .desc("binary search by reads plus test-and-set probes (Thm 4.4): "
              "contention-free measures ~log n")
        .model(Model::read_test_and_set())
        .tag("paper")
        .tag("search"),
    TasReadSearch::factory()};
}  // namespace

}  // namespace cfc
