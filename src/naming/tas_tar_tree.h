#ifndef CFC_NAMING_TAS_TAR_TREE_H
#define CFC_NAMING_TAS_TAR_TREE_H

#include <vector>

#include "naming/naming_algorithm.h"

namespace cfc {

/// Theorem 4.2: naming with test-and-set + test-and-reset, worst-case
/// *register* complexity log n (the process revisits the same node bit, so
/// its step count can exceed log n, but it never touches more than log n
/// distinct bits).
///
/// Same tree as TafTree; at each node, since test-and-flip is unavailable,
/// the process alternately applies test-and-set and test-and-reset until a
/// test-and-set returns 0 (descend left) or a test-and-reset returns 1
/// (descend right). Value-changing successes alternate 0->1 (tas) and
/// 1->0 (tar), so completers split left/right exactly as with
/// test-and-flip; failed probes change nothing and only cost steps.
class TasTarTree final : public NamingAlgorithm {
 public:
  /// n must be a power of two, >= 2.
  TasTarTree(RegisterFile& mem, int n);

  Task<Value> claim(ProcessContext& ctx) override;
  [[nodiscard]] int capacity() const override { return n_; }
  [[nodiscard]] int name_space() const override { return n_; }
  [[nodiscard]] Model model() const override {
    return Model{BitOp::TestAndSet, BitOp::TestAndReset};
  }
  [[nodiscard]] std::string algorithm_name() const override {
    return "tas-tar-tree";
  }

  [[nodiscard]] static NamingFactory factory();

 private:
  int n_;
  std::vector<RegId> bits_;
};

}  // namespace cfc

#endif  // CFC_NAMING_TAS_TAR_TREE_H
