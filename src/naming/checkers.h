#ifndef CFC_NAMING_CHECKERS_H
#define CFC_NAMING_CHECKERS_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/measures.h"
#include "naming/naming_algorithm.h"

namespace cfc {

/// Outcome of validating one completed naming run.
struct NamingRunCheck {
  bool all_terminated = false;    ///< every non-crashed process got a name
  bool names_unique = true;       ///< no two processes share a name
  bool names_in_range = true;     ///< all names in 1..name_space
  std::vector<int> names;         ///< claimed names (crashed: absent)
  /// Per-process full-run complexity (crashed processes included, with the
  /// steps they took before crashing).
  std::vector<ComplexityReport> per_process;

  [[nodiscard]] bool ok() const {
    return all_terminated && names_unique && names_in_range;
  }
};

/// Validates outputs + measures per-process complexity of a finished run.
[[nodiscard]] NamingRunCheck check_naming_run(const Sim& sim, int name_space);

/// Runs the algorithm under a seeded random schedule (optionally crashing
/// the processes listed in `crash_after` after the given access counts) and
/// validates it. Wait-freedom shows up as the run completing within the
/// budget even with crashed processes holding resources.
struct CrashPlanEntry {
  Pid pid;
  std::uint64_t after_accesses;
};

[[nodiscard]] NamingRunCheck run_naming_random(
    const NamingFactory& make, int n, std::uint64_t seed,
    const std::vector<CrashPlanEntry>& crashes = {},
    std::uint64_t budget = 1'000'000);

/// Runs the paper's contention-free schedule (processes one after another,
/// Section 3.2) and validates; returns the per-process reports, where the
/// maximum is the algorithm's measured contention-free complexity.
[[nodiscard]] NamingRunCheck run_naming_sequential(const NamingFactory& make,
                                                   int n);

/// Wait-freedom bound check: the maximum number of steps any single process
/// takes, over the given seeds and crash patterns. A wait-free algorithm's
/// value is bounded by a function of n only.
[[nodiscard]] int max_steps_any_process(const NamingFactory& make, int n,
                                        const std::vector<std::uint64_t>& seeds);

}  // namespace cfc

#endif  // CFC_NAMING_CHECKERS_H
