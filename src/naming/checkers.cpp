#include "naming/checkers.h"

#include <set>

#include "core/adversary.h"
#include "sched/sched.h"

namespace cfc {

NamingRunCheck check_naming_run(const Sim& sim, int name_space) {
  NamingRunCheck out;
  out.all_terminated = true;
  std::set<int> seen;
  for (Pid p = 0; p < sim.process_count(); ++p) {
    out.per_process.push_back(measure_all(sim.trace(), p));
    if (sim.status(p) == ProcStatus::Crashed) {
      continue;  // a crashed process claims nothing
    }
    if (sim.status(p) != ProcStatus::Done || !sim.output(p).has_value()) {
      out.all_terminated = false;
      continue;
    }
    const int name = *sim.output(p);
    out.names.push_back(name);
    if (name < 1 || name > name_space) {
      out.names_in_range = false;
    }
    if (!seen.insert(name).second) {
      out.names_unique = false;
    }
  }
  return out;
}

NamingRunCheck run_naming_random(const NamingFactory& make, int n,
                                 std::uint64_t seed,
                                 const std::vector<CrashPlanEntry>& crashes,
                                 std::uint64_t budget) {
  Sim sim;
  auto alg = setup_naming(sim, make, n);
  for (const CrashPlanEntry& c : crashes) {
    sim.crash_after(c.pid, c.after_accesses);
  }
  RandomScheduler rnd(seed);
  drive(sim, rnd, RunLimits{budget});
  return check_naming_run(sim, alg->name_space());
}

NamingRunCheck run_naming_sequential(const NamingFactory& make, int n) {
  Sim sim;
  auto alg = setup_naming(sim, make, n);
  run_sequentially(sim);
  return check_naming_run(sim, alg->name_space());
}

int max_steps_any_process(const NamingFactory& make, int n,
                          const std::vector<std::uint64_t>& seeds) {
  int worst = 0;
  for (const std::uint64_t seed : seeds) {
    const NamingRunCheck check = run_naming_random(make, n, seed);
    for (const ComplexityReport& rep : check.per_process) {
      worst = std::max(worst, rep.steps);
    }
  }
  return worst;
}

}  // namespace cfc
