#ifndef CFC_SCHED_EVENT_SINK_H
#define CFC_SCHED_EVENT_SINK_H

#include "sched/run.h"

namespace cfc {

/// Observer of a simulation's event stream. The simulator publishes every
/// event (counted accesses, section changes, crashes, terminations) to its
/// registered sinks as the run unfolds, in sequence order.
///
/// Trace recording is just one sink (TraceRecorder, enabled by default on
/// every Sim); streaming consumers such as MeasureAccumulator subscribe the
/// same way and compute their results online, which lets long searches run
/// with trace materialization switched off entirely.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Called for every event, after the event took effect on the shared
  /// state, in increasing `ev.seq` order.
  virtual void on_event(const TraceEvent& ev) = 0;
};

/// The classic full-run recorder: materializes the trace the offline
/// measurement functions in core/measures.h consume.
class TraceRecorder final : public EventSink {
 public:
  void on_event(const TraceEvent& ev) override { trace_.push(ev); }

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] Trace& trace() { return trace_; }
  void clear() { trace_.clear(); }

 private:
  Trace trace_;
};

}  // namespace cfc

#endif  // CFC_SCHED_EVENT_SINK_H
