#ifndef CFC_SCHED_SCHED_H
#define CFC_SCHED_SCHED_H

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <vector>

#include "sched/sim.h"

namespace cfc {

/// A scheduler resolves the nondeterminism of the asynchronous model: at
/// each point it picks which process performs the next event. The paper's
/// adversary arguments are schedulers; its contention-free runs are the
/// Solo / Sequential schedulers below.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Next process to step, or nullopt to stop the run.
  virtual std::optional<Pid> next(const Sim& sim) = 0;
};

/// Result of driving a simulation with a scheduler.
enum class RunOutcome : std::uint8_t {
  AllDone,           ///< every process ran to completion (or crashed)
  SchedulerStopped,  ///< the scheduler returned nullopt
  BudgetExhausted,   ///< step budget ran out (e.g. busy-wait loops)
};

struct RunLimits {
  std::uint64_t max_steps = 1'000'000;
};

/// Drives `sim` until completion, scheduler stop, or budget exhaustion.
RunOutcome drive(Sim& sim, Scheduler& sched, RunLimits limits = {});

/// drive(), resumable from a checkpoint: forks a fresh simulation from `cp`
/// (see Sim::fork — `rebuild` reconstructs the static setup, the prefix is
/// replayed with sinks suppressed), then continues driving it with `sched`.
/// `attach` (optional) runs between the fork and the first new step — the
/// place to re-attach event sinks or restore streaming accumulators.
/// `limits` budgets only the post-checkpoint steps. The driven simulation
/// is handed back through `out` for inspection.
RunOutcome drive_from(const SimCheckpoint& cp, const SimBuilder& rebuild,
                      Scheduler& sched, std::unique_ptr<Sim>& out,
                      RunLimits limits = {}, const SimBuilder& attach = {});

/// Contention-free scheduler for a single process: runs only `pid`; all
/// other processes never start (they stay in their remainder region), which
/// is exactly the paper's contention-free run condition.
class SoloScheduler final : public Scheduler {
 public:
  explicit SoloScheduler(Pid pid) : pid_(pid) {}
  std::optional<Pid> next(const Sim& sim) override;

 private:
  Pid pid_;
};

/// Contention-free scheduler for one-shot tasks (naming, detection): runs
/// processes one after the other, each to completion before the next starts
/// (Section 3.2's contention-free runs and the Theorem 5/7 adversary).
class SequentialScheduler final : public Scheduler {
 public:
  explicit SequentialScheduler(std::vector<Pid> order)
      : order_(std::move(order)) {}
  std::optional<Pid> next(const Sim& sim) override;

 private:
  std::vector<Pid> order_;
  std::size_t at_ = 0;
};

/// Fair round-robin over runnable processes.
class RoundRobinScheduler final : public Scheduler {
 public:
  std::optional<Pid> next(const Sim& sim) override;

 private:
  Pid last_ = -1;
};

/// Uniformly random choice among runnable processes; deterministic given the
/// seed. The workhorse for property tests and worst-case search.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  std::optional<Pid> next(const Sim& sim) override;

 private:
  std::mt19937_64 rng_;
};

/// Replays an explicit pid sequence (the scripted adversaries of the
/// lower-bound proofs); stops at the end of the script. Script entries
/// naming non-runnable processes are skipped.
class ScriptedScheduler final : public Scheduler {
 public:
  explicit ScriptedScheduler(std::vector<Pid> script)
      : script_(std::move(script)) {}
  std::optional<Pid> next(const Sim& sim) override;

 private:
  std::vector<Pid> script_;
  std::size_t at_ = 0;
};

/// Wraps any scheduler and records the pid sequence it produced, so the
/// exact run can be replayed later with ScriptedScheduler — deterministic
/// reproduction of any schedule (e.g. a failing random seed) independent of
/// the original scheduler's state.
class RecordingScheduler final : public Scheduler {
 public:
  explicit RecordingScheduler(Scheduler& inner) : inner_(&inner) {}
  std::optional<Pid> next(const Sim& sim) override;

  [[nodiscard]] const std::vector<Pid>& schedule() const { return log_; }

 private:
  Scheduler* inner_;
  std::vector<Pid> log_;
};

/// --- Step-level helpers for hand-built adversary constructions. ---

/// Steps `pid` until `pred(sim)` holds or the process stops being runnable
/// or `max_steps` accesses were performed. Returns the number of accesses.
std::uint64_t step_until(Sim& sim, Pid pid,
                         const std::function<bool(const Sim&)>& pred,
                         std::uint64_t max_steps = 100'000);

/// Steps `pid` exactly `k` accesses (or until not runnable). Returns the
/// number of accesses performed.
std::uint64_t step_n(Sim& sim, Pid pid, std::uint64_t k);

/// Steps `pid` until it terminates (or budget). Returns accesses performed.
std::uint64_t run_to_completion(Sim& sim, Pid pid,
                                std::uint64_t max_steps = 100'000);

}  // namespace cfc

#endif  // CFC_SCHED_SCHED_H
