#include "sched/frame_arena.h"

#include <algorithm>
#include <new>

namespace cfc {

namespace {

// Coroutine frames require at most fundamental alignment (the standard
// routes over-aligned frames through a different allocation protocol the
// promise does not opt into). Headers and blocks keep that alignment.
constexpr std::size_t kAlign = alignof(std::max_align_t);

constexpr std::size_t round_up(std::size_t n) {
  return (n + kAlign - 1) & ~(kAlign - 1);
}

// Blocks grow geometrically from small (a Sim that only ever runs a few
// coroutines — forks, one-shot drivers — should not reserve more than a
// page) to large (a long-lived explorer cell amortizes block boundaries
// away). Oversized requests bypass the arena (stats().fallback) rather
// than dedicating a block.
constexpr std::size_t kMinBlockSize = 4 * 1024;
constexpr std::size_t kMaxBlockSize = 256 * 1024;
constexpr std::size_t kMaxPooled = 2 * 1024;

}  // namespace

constinit thread_local FrameArena* FrameArena::current_ = nullptr;

FrameArena::~FrameArena() {
  for (void* block : blocks_) {
    ::operator delete(block);
  }
}

void* FrameArena::allocate(std::size_t bytes) {
  const std::size_t size = round_up(bytes);
  if (size > kMaxPooled) {
    ++stats_.fallback;
    return ::operator new(size);
  }
  for (FreeList& fl : free_lists_) {  // few distinct frame sizes: O(1)-ish
    if (fl.size == size && fl.head != nullptr) {
      void* p = fl.head;
      fl.head = *static_cast<void**>(p);
      ++stats_.reused;
      return p;
    }
  }
  if (bump_left_ < size) {
    const std::size_t block = std::min(
        kMaxBlockSize, kMinBlockSize << std::min<std::size_t>(
                           blocks_.size(), 8));
    bump_ = static_cast<char*>(::operator new(block));
    bump_left_ = block;
    blocks_.push_back(bump_);
    stats_.bytes_reserved += block;
  }
  void* p = bump_;
  bump_ += size;
  bump_left_ -= size;
  ++stats_.fresh;
  return p;
}

void FrameArena::deallocate(void* p, std::size_t bytes) noexcept {
  const std::size_t size = round_up(bytes);
  if (size > kMaxPooled) {
    ::operator delete(p);
    return;
  }
  for (FreeList& fl : free_lists_) {
    if (fl.size == size) {
      *static_cast<void**>(p) = fl.head;
      fl.head = p;
      return;
    }
  }
  *static_cast<void**>(p) = nullptr;
  free_lists_.push_back(FreeList{size, p});
}

}  // namespace cfc
