#ifndef CFC_SCHED_FRAME_ARENA_H
#define CFC_SCHED_FRAME_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace cfc {

/// Pooled allocator for coroutine frames.
///
/// The schedule-space explorer restores a DFS node by destroying every
/// process coroutine and re-running the schedule prefix, which recreates
/// the same frames over and over — the same handful of frame sizes, once
/// per process per restore. A general-purpose heap pays full malloc/free
/// for each; this arena makes the recreation allocation-free: memory is
/// bump-allocated from monotonic blocks (never returned to the OS until
/// the arena dies) and freed frames go onto exact-size free lists, so a
/// frame of a size seen before is recycled with two pointer moves.
///
/// Threading: an arena serves ONE thread at a time (the explorer keeps one
/// Sim — and with it one arena — per frontier cell, each driven by a single
/// worker). The active arena is published through a thread-local pointer
/// (FrameArena::Scope); Task<T>'s promise operator new consults it, so
/// every coroutine frame created while a Sim is stepping lands in that
/// Sim's arena. Frames created with no active arena fall back to the
/// global heap. Each allocation carries a header naming its owner, so
/// deallocation needs no thread-local lookup and is correct even when the
/// active arena has changed in between.
class FrameArena {
 public:
  struct Stats {
    std::uint64_t fresh = 0;   ///< bump allocations (first time at a size)
    std::uint64_t reused = 0;  ///< free-list hits (recycled frames)
    std::uint64_t fallback = 0;  ///< served by the global heap (oversized)
    std::uint64_t bytes_reserved = 0;  ///< block bytes owned by the arena
  };

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena();

  /// Returns a block of at least `bytes`, aligned for any coroutine frame.
  /// Precondition for calling deallocate later: the arena outlives the
  /// allocation.
  [[nodiscard]] void* allocate(std::size_t bytes);

  /// Returns a block obtained from allocate() with the same size to the
  /// arena's free lists (the memory stays owned by the arena).
  void deallocate(void* p, std::size_t bytes) noexcept;

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Installs an arena as the thread's frame allocator for the current
  /// scope (nestable; restores the previous arena on destruction).
  class Scope {
   public:
    explicit Scope(FrameArena* arena) noexcept : prev_(current_) {
      current_ = arena;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { current_ = prev_; }

   private:
    FrameArena* prev_;
  };

  [[nodiscard]] static FrameArena* current() noexcept { return current_; }

 private:
  struct FreeList {
    std::size_t size = 0;  ///< rounded allocation size this list serves
    void* head = nullptr;  ///< singly linked through the freed blocks
  };

  // constinit: guarantees constant initialization, so cross-TU accesses
  // read the TLS slot directly instead of calling a dynamic-init wrapper
  // on every coroutine frame allocation.
  static constinit thread_local FrameArena* current_;

  std::vector<void*> blocks_;
  std::vector<FreeList> free_lists_;
  char* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  Stats stats_;
};

namespace detail {

/// Header in front of every coroutine frame, recording its owning arena
/// (null = global heap) so frame_free routes it back without thread-local
/// state. Sized to preserve fundamental alignment for the frame behind it.
struct FrameHeader {
  FrameArena* owner;
  std::size_t size;  ///< total allocation, header included
};
inline constexpr std::size_t kFrameHeaderSize =
    (sizeof(FrameHeader) + alignof(std::max_align_t) - 1) &
    ~(alignof(std::max_align_t) - 1);

}  // namespace detail

/// Allocation entry points for coroutine promises (sched/task.h), inline
/// so the no-arena fast path costs one thread-local read over plain
/// operator new.
[[nodiscard]] inline void* frame_alloc(std::size_t size) {
  const std::size_t total = detail::kFrameHeaderSize + size;
  FrameArena* arena = FrameArena::current();
  void* raw = arena ? arena->allocate(total) : ::operator new(total);
  auto* header = static_cast<detail::FrameHeader*>(raw);
  header->owner = arena;
  header->size = total;
  return static_cast<char*>(raw) + detail::kFrameHeaderSize;
}

inline void frame_free(void* p) noexcept {
  if (p == nullptr) {
    return;
  }
  void* raw = static_cast<char*>(p) - detail::kFrameHeaderSize;
  const detail::FrameHeader header =
      *static_cast<detail::FrameHeader*>(raw);
  if (header.owner != nullptr) {
    header.owner->deallocate(raw, header.size);
  } else {
    ::operator delete(raw);
  }
}

}  // namespace cfc

#endif  // CFC_SCHED_FRAME_ARENA_H
