#ifndef CFC_SCHED_SIM_H
#define CFC_SCHED_SIM_H

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

#include <vector>

#include "memory/access.h"
#include "memory/model.h"
#include "memory/register_file.h"
#include "memory/types.h"
#include "sched/event_sink.h"
#include "sched/frame_arena.h"
#include "sched/run.h"
#include "sched/task.h"

namespace cfc {

class Sim;

/// Rebuilds a simulation's static configuration from scratch: registers,
/// processes, access policy/model, crash injection, invariant checks —
/// everything that is set up *before* the first scheduler pick. Must be
/// deterministic: Sim::fork() replays a schedule prefix against a rebuilt
/// simulation and verifies the result against the checkpoint's memory
/// fingerprint.
using SimBuilder = std::function<void(Sim&)>;

/// A resumable point in a run. Coroutine frames cannot be copied, so a
/// checkpoint is *not* a deep copy of the simulator: it is the schedule
/// prefix that led here (every scheduler pick, in order) plus a snapshot of
/// shared memory for verification. Restoring = rebuilding a fresh simulation
/// with the same SimBuilder and replaying the prefix (fork-by-replay).
///
/// What a fork restores exactly: register values, per-process coroutine
/// positions, sections, outputs, access counts, pending accesses, crash
/// status, and the event sequence counter — everything the original run
/// observed, because replay re-executes the same deterministic accesses.
/// What it does NOT restore: the materialized trace (replayed events are
/// suppressed — the fork's trace starts empty) and event-sink history
/// (sinks attach after the replay and see only post-fork events; streaming
/// consumers like MeasureAccumulator are plain data, so checkpoint them by
/// copy and re-attach alongside the fork).
struct SimCheckpoint {
  /// One replay unit: a scheduler pick (`start_only == false`, replayed via
  /// step()) or a bare body start (`start_only == true`, replayed via
  /// ensure_started() — the adversary constructions use it).
  struct Unit {
    Pid pid = -1;
    bool start_only = false;
  };

  std::vector<Unit> schedule;    ///< every unit executed so far, in order
  MemorySnapshot memory;         ///< register values at capture (verification)
  std::uint64_t memory_fingerprint = 0;  ///< RegisterFile::fingerprint()
  Seq next_seq = 0;              ///< event counter at capture (verification)
};

/// Thrown when two processes are simultaneously in their critical sections
/// and the mutual-exclusion invariant check is enabled.
struct MutualExclusionViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown when an access violates the simulation's access policy (e.g. a
/// bit operation outside the declared model, or a multi-bit read in a
/// bits-only naming simulation).
struct AccessPolicyViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What kinds of accesses a simulation permits.
enum class AccessPolicy : std::uint8_t {
  /// Anything goes (default).
  Unrestricted,
  /// Atomic-register model of Section 2: one Read or one Write of a single
  /// register per step; no read-modify-write bit operations.
  RegistersOnly,
  /// Bit-operation model of Section 3: every access is one BitOp applied to
  /// one shared bit, and the BitOp must belong to the declared Model.
  BitModel,
};

/// The access a process has decided to perform next. A live process is
/// always suspended at exactly one pending access; the simulator performs it
/// atomically when a scheduler picks the process. A pending access with
/// `local_yield` set performs no shared-memory operation: it is the paper's
/// "update of the internal state" event — it occupies a scheduling slot (so
/// other processes can observe the state in between) but is not counted by
/// any complexity measure.
struct PendingAccess {
  AccessKind kind = AccessKind::Read;
  BitOp bit_op = BitOp::Skip;
  RegId reg = -1;
  Value to_write = 0;
  bool local_yield = false;
  /// Multi-grain store (Section 1.3, after [MS93]): when `field_width` > 0
  /// the write atomically replaces only bits [field_shift,
  /// field_shift+field_width) of the register — several logical registers
  /// packed into one word, written at sub-word granularity.
  int field_shift = 0;
  int field_width = 0;
};

/// Per-process door to shared memory. Handed to algorithm coroutines; every
/// method returning an awaiter suspends the coroutine until the simulator
/// executes the access. Section changes and outputs are zero-cost local
/// events (they do not count as steps).
class ProcessContext {
 public:
  class AccessAwaiter {
   public:
    AccessAwaiter(ProcessContext& ctx, PendingAccess req)
        : ctx_(&ctx), req_(req) {}
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      ctx_->post(req_, h);
    }
    [[nodiscard]] Value await_resume() const noexcept {
      return ctx_->last_result();
    }

   private:
    ProcessContext* ctx_;
    PendingAccess req_;
  };

  /// --- Atomic-register operations (mutual exclusion, Section 2). ---
  [[nodiscard]] AccessAwaiter read(RegId r) {
    return {*this, PendingAccess{AccessKind::Read, BitOp::Skip, r, 0}};
  }
  [[nodiscard]] AccessAwaiter write(RegId r, Value v) {
    return {*this, PendingAccess{AccessKind::Write, BitOp::Skip, r, v}};
  }

  /// --- Single-bit operations (naming, Section 3). ---
  [[nodiscard]] AccessAwaiter op(BitOp o, RegId r) {
    return {*this, PendingAccess{AccessKind::Bit, o, r, 0}};
  }
  [[nodiscard]] AccessAwaiter read_bit(RegId r) { return op(BitOp::Read, r); }
  [[nodiscard]] AccessAwaiter test_and_set(RegId r) {
    return op(BitOp::TestAndSet, r);
  }
  [[nodiscard]] AccessAwaiter test_and_reset(RegId r) {
    return op(BitOp::TestAndReset, r);
  }
  [[nodiscard]] AccessAwaiter test_and_flip(RegId r) {
    return op(BitOp::TestAndFlip, r);
  }
  [[nodiscard]] AccessAwaiter flip(RegId r) { return op(BitOp::Flip, r); }
  [[nodiscard]] AccessAwaiter write_bit(RegId r, bool v) {
    return op(v ? BitOp::Write1 : BitOp::Write0, r);
  }

  /// Multi-grain sub-word store: atomically writes `v` into bits
  /// [shift, shift+width) of register r, leaving the rest of the word
  /// intact. One counted step, like any store; the enabling hardware is
  /// the multi-granularity memory access of Section 1.3 / [MS93].
  [[nodiscard]] AccessAwaiter write_field(RegId r, int shift, int width,
                                          Value v) {
    if (width < 1) {
      throw std::invalid_argument(
          "write_field: field width must be >= 1 (a zero-width store is "
          "not an access)");
    }
    if (shift < 0) {
      throw std::invalid_argument("write_field: negative field shift");
    }
    PendingAccess pa;
    pa.kind = AccessKind::Write;
    pa.reg = r;
    pa.to_write = v;
    pa.field_shift = shift;
    pa.field_width = width;
    return {*this, pa};
  }

  /// A local (internal) step: suspends until the scheduler picks this
  /// process again, without touching shared memory or any complexity
  /// counter. The mutex driver yields once inside the critical section so
  /// that CS occupancy spans at least one state of the run.
  [[nodiscard]] AccessAwaiter yield() {
    PendingAccess pa;
    pa.local_yield = true;
    return {*this, pa};
  }

  /// Moves this process to a protocol section (free local event).
  void set_section(Section s);

  /// Records the process's decision value (naming: the claimed name;
  /// contention detection: 0 or 1). Free local event.
  void set_output(int value);

  [[nodiscard]] Pid pid() const noexcept { return pid_; }
  [[nodiscard]] int process_count() const noexcept;

 private:
  friend class Sim;

  ProcessContext(Sim& sim, Pid pid) : sim_(&sim), pid_(pid) {}
  void post(const PendingAccess& req, std::coroutine_handle<> h) {
    // Hot path (once per access request): write straight into the
    // process record through slots cached at spawn, skipping the
    // bounds-checked process lookup.
    *pending_slot_ = req;
    *resume_slot_ = h;
  }
  [[nodiscard]] Value last_result() const noexcept {
    return *last_result_slot_;
  }

  Sim* sim_;
  Pid pid_;
  // Stable addresses into this process's Sim record (procs_ is a deque),
  // wired by Sim::spawn.
  std::optional<PendingAccess>* pending_slot_ = nullptr;
  std::coroutine_handle<>* resume_slot_ = nullptr;
  const Value* last_result_slot_ = nullptr;
};

/// Lifecycle state of a simulated process.
enum class ProcStatus : std::uint8_t {
  NotStarted,  ///< spawned, body not yet running (counts as remainder/idle)
  Runnable,    ///< suspended at a pending access
  Done,        ///< body ran to completion
  Crashed,     ///< stopping failure injected; takes no further steps
};

/// Discrete-event simulator implementing the paper's interleaving semantics
/// (Section 2.2): a run is an alternating sequence of states and events,
/// where each event is one process's atomic access to one shared register.
///
/// Schedulers drive the run by calling `step(pid)`, which executes exactly
/// one shared-memory access of that process (local computation between
/// accesses is free, matching the step-complexity measure). The full run is
/// recorded in `trace()` for the measurement code in core/measures.h.
class Sim {
 public:
  using BodyFactory = std::function<Task<void>(ProcessContext&)>;

  Sim() = default;
  Sim(const Sim&) = delete;
  Sim& operator=(const Sim&) = delete;
  Sim(Sim&&) = delete;
  Sim& operator=(Sim&&) = delete;

  [[nodiscard]] RegisterFile& memory() { return mem_; }
  [[nodiscard]] const RegisterFile& memory() const { return mem_; }

  /// Registers a process. The body coroutine is created lazily on its first
  /// step, so spawning alone leaves the process "not started" (idle), which
  /// the contention-free windows treat as being in the remainder region.
  Pid spawn(std::string proc_name, BodyFactory factory);

  [[nodiscard]] int process_count() const {
    return static_cast<int>(procs_.size());
  }

  /// Outcome of one scheduler pick.
  enum class StepResult : std::uint8_t {
    Access,       ///< performed one shared-memory access
    LocalStep,    ///< performed an internal (yield) step, not counted
    Finished,     ///< body completed without needing another access
    CrashedNow,   ///< crash injection fired instead of the access
    NotRunnable,  ///< process is done/crashed; nothing happened
  };

  /// Runs `pid` forward through exactly one shared-memory access (starting
  /// the body first if needed, and letting it run past the access through
  /// any local computation up to its next access request or completion).
  StepResult step(Pid pid);

  /// Starts the body coroutine (running its local computation up to its
  /// first shared-memory access request) without performing any access.
  /// Afterwards `pending(pid)` reveals the process's next access — used by
  /// the adversary constructions that schedule on "about to write".
  void ensure_started(Pid pid);

  /// True iff step(pid) can still make progress.
  [[nodiscard]] bool runnable(Pid pid) const;
  [[nodiscard]] bool any_runnable() const;
  [[nodiscard]] bool all_done() const;

  [[nodiscard]] ProcStatus status(Pid pid) const { return proc(pid).status; }
  [[nodiscard]] Section section(Pid pid) const { return proc(pid).section; }
  [[nodiscard]] const std::string& proc_name(Pid pid) const {
    return proc(pid).name;
  }
  [[nodiscard]] std::optional<int> output(Pid pid) const {
    return proc(pid).output;
  }
  [[nodiscard]] std::uint64_t access_count(Pid pid) const {
    return proc(pid).naccesses;
  }

  /// The pending access a runnable process will perform next, if started.
  [[nodiscard]] std::optional<PendingAccess> pending(Pid pid) const {
    return proc(pid).pending;
  }

  /// Summary of the most recent step()/ensure_started() unit: which counted
  /// access it performed (if any) and whether any section-change event was
  /// emitted during the unit. This is the per-step access summary the
  /// partial-order reduction's race detector consumes (por/dependence.h);
  /// callers that need the whole run's summaries capture one per executed
  /// unit. Valid after the first unit; reset at the start of each unit (a
  /// NotRunnable pick resets it to an empty summary for that pid), and
  /// still filled in when the unit throws (the fields cover everything
  /// that took effect before the throw).
  [[nodiscard]] const StepSummary& last_step_summary() const {
    return last_step_;
  }

  /// The materialized run (empty when trace recording is disabled).
  [[nodiscard]] const Trace& trace() const { return recorder_.trace(); }

  /// --- Checkpointing (fork-by-replay). ---

  /// Captures the current point of the run: the full schedule log plus (by
  /// default) a memory snapshot. O(picks + registers). See SimCheckpoint for
  /// the exact restore semantics. `with_memory = false` skips the deep copy
  /// of the register values and leaves `cp.memory` empty — fork() then
  /// verifies the replay by fingerprint and event counter only, which is
  /// what fingerprint-tracking callers (the explorer) need; keep the
  /// default when the checkpoint should be self-verifying value-for-value.
  [[nodiscard]] SimCheckpoint checkpoint(bool with_memory = true) const;

  /// Restores a checkpoint into a fresh simulation: `rebuild` reconstructs
  /// the static setup, then the schedule prefix is replayed with event
  /// sinks, trace materialization, and the mutual-exclusion invariant check
  /// suppressed (the prefix was already observed/validated when it first
  /// ran). After the replay the memory fingerprint, event counter, and (when
  /// present) the memory snapshot values are verified against the
  /// checkpoint; a mismatch (non-deterministic rebuild) throws
  /// std::logic_error. Attach sinks to the returned simulation afterwards —
  /// they see only post-fork events.
  ///
  /// `cp.memory_fingerprint == 0 && cp.memory.empty()` skips verification
  /// (used by the explorer, which tracks fingerprints per node itself).
  [[nodiscard]] static std::unique_ptr<Sim> fork(const SimCheckpoint& cp,
                                                 const SimBuilder& rebuild);

  /// Zero-copy fork: replays a borrowed schedule span (typically a prefix
  /// of a live simulation's own schedule_log(), which must stay alive and
  /// unmodified until this returns) without materializing a SimCheckpoint.
  /// `expect_fingerprint == 0` skips verification; `expect_memory`, when
  /// non-null, additionally compares the full register values (debug).
  [[nodiscard]] static std::unique_ptr<Sim> fork(
      std::span<const SimCheckpoint::Unit> schedule,
      std::uint64_t expect_fingerprint, Seq expect_seq,
      const SimBuilder& rebuild, const MemorySnapshot* expect_memory = nullptr);

  /// checkpoint() + fork(): a second simulation positioned exactly here.
  [[nodiscard]] std::unique_ptr<Sim> fork(const SimBuilder& rebuild) const {
    return fork(checkpoint(), rebuild);
  }

  /// --- In-place rewind (recycled restore; the explorer's hot path). ---

  /// Captures the post-setup baseline rewind_to() restores: the register
  /// values, the event counter, and each process's crash plan. Must be
  /// called before any unit executes (schedule log empty) — i.e. right
  /// after the static setup — and marks this simulation as rewindable.
  void mark_rewind_base();
  [[nodiscard]] bool rewind_base_marked() const { return rewind_base_set_; }

  /// Repositions THIS simulation at `prefix_len` units of its own schedule
  /// log, in place: destroys every coroutine frame (recycled through the
  /// per-Sim frame arena), resets processes and registers to the
  /// mark_rewind_base() baseline, and quietly re-executes the first
  /// `prefix_len` units of the previous run — the schedule log is reused
  /// where it sits, never copied. Equivalent to fork()-ing a checkpoint
  /// taken at that point, but with zero Sim construction, zero setup
  /// re-execution, and (steady-state) zero heap allocation.
  ///
  /// Like fork(), the replay runs with sinks, trace materialization, and
  /// invariant checks suppressed; any materialized trace is cleared.
  /// Attached sinks stay attached and see only post-rewind events — reset
  /// their state alongside (the explorer restores its accumulator by
  /// assignment). Verification: `expect_fingerprint == 0` skips it;
  /// otherwise the memory fingerprint and event counter must match or the
  /// rewind throws std::logic_error. `expect_memory`, when non-null, also
  /// compares full register values (debug; costs a snapshot per call).
  void rewind_to(std::size_t prefix_len, std::uint64_t expect_fingerprint = 0,
                 Seq expect_seq = 0,
                 const MemorySnapshot* expect_memory = nullptr);

  struct RewindStats {
    std::uint64_t rewinds = 0;         ///< rewind/rewind-to-mark calls completed
    std::uint64_t replayed_units = 0;  ///< schedule units re-executed by them
  };

  /// --- Mark-based partial rewind (the explorer's restore round 3). ---

  /// A restore point along the current run: shared memory, the event
  /// counter, and each process's observation digest and access count at a
  /// schedule-log prefix. A mark does NOT capture coroutine frames (they
  /// cannot be copied); rewind_to_mark() instead *value-replays* only the
  /// processes that executed units past the mark, feeding each unit the
  /// Value the original execution delivered (its per-pid value tape) so the
  /// coroutine re-reaches its suspension point without touching memory.
  /// Processes with no units past the mark are left entirely alone — the
  /// savings over rewind_to(), which resets and replays every process.
  struct RewindMark {
    MemorySnapshot memory;
    std::uint64_t fingerprint = 0;  ///< RegisterFile::fingerprint() at capture
    Seq seq = 0;                    ///< event counter at capture
    std::size_t prefix_len = 0;     ///< schedule-log length at capture
    std::vector<std::uint64_t> digests;    ///< per-pid process_digest()
    std::vector<std::uint64_t> naccesses;  ///< per-pid access_count()
    /// Per-pid schedule-unit counts within the prefix (start unit
    /// included): rewind_to_mark() walks each touched pid's own value tape
    /// up to this count instead of scanning the whole schedule prefix.
    std::vector<std::uint32_t> pid_units;
  };

  /// Captures a RewindMark at the current point of the run, reusing the
  /// mark's buffers (steady-state allocation-free when the caller recycles
  /// marks, as the explorer's per-depth mark pool does). Requires
  /// mark_rewind_base(); O(registers + processes).
  void capture_mark(RewindMark& mark) const;

  /// Repositions THIS simulation at `mark` (which must have been captured
  /// on this simulation, at a prefix of the CURRENT schedule log — i.e. no
  /// rewind past the mark happened in between; the explorer's DFS restores
  /// only to ancestors of the current path, which guarantees it). Touched
  /// processes — those with schedule units in [mark.prefix_len, log size)
  /// — are reset to their pre-start state and value-replayed over their
  /// own units of the prefix: each access is fed the recorded delivered
  /// value instead of re-executing against memory, so shared memory is
  /// restored by assignment from the mark and untouched processes keep
  /// their live coroutines as-is. Digests and access counts of touched
  /// processes are restored from the mark (they fold memory values a
  /// value-replay cannot see). Sinks/trace semantics match rewind_to().
  ///
  /// Sound because a process with units past the mark was runnable at the
  /// mark, so its prefix units contain no crash/finish and every recorded
  /// value feeds a live suspension. Returns the number of units actually
  /// value-replayed (<= prefix units of touched processes; the traversal-
  /// observable state is identical to rewind_to(mark.prefix_len)).
  std::size_t rewind_to_mark(const RewindMark& mark);
  [[nodiscard]] const RewindStats& rewind_stats() const {
    return rewind_stats_;
  }

  /// Allocation counters of the per-Sim coroutine frame arena.
  [[nodiscard]] const FrameArena::Stats& frame_arena_stats() const {
    return arena_.stats();
  }

  /// True iff the next step(pid) fires the injected stopping failure
  /// instead of performing the pending access.
  [[nodiscard]] bool crash_pending(Pid pid) const {
    const Proc& pr = proc(pid);
    return pr.crash_after.has_value() && pr.naccesses >= *pr.crash_after;
  }

  /// The schedule log backing checkpoint(): every step()/ensure_started()
  /// unit executed so far, in order.
  [[nodiscard]] const std::vector<SimCheckpoint::Unit>& schedule_log() const {
    return sched_log_;
  }

  /// True while this simulation is replaying a checkpoint prefix inside
  /// fork() (sinks/trace/invariant checks suppressed).
  [[nodiscard]] bool in_replay() const { return quiet_replay_; }

  /// 64-bit digest of everything process `pid` has observed: its access
  /// history including returned values, plus start/yield/crash/finish
  /// marks. Two processes (in identically built simulations) with equal
  /// digests are at the same coroutine position with the same local state —
  /// the per-process half of the explorer's visited-state fingerprint.
  [[nodiscard]] std::uint64_t process_digest(Pid pid) const {
    return proc(pid).digest;
  }

  /// Order-independent XOR of per-process (digest, status, section) slot
  /// hashes, maintained with ONE batched update at the end of each unit —
  /// covering every write the unit made (digest pushes, section changes,
  /// status transitions) instead of hashing all processes per query. Makes
  /// core/state_fingerprint O(1) per explored node. A unit that throws
  /// leaves the value stale until the next rewind — the same
  /// poisoned-until-restored contract the schedule log already has.
  [[nodiscard]] std::uint64_t proc_state_fp() const noexcept {
    return procs_fp_;
  }

  /// --- Event sinks (observer interface). ---

  /// Subscribes a sink to the event stream. The sink must outlive the
  /// simulation (or be removed first); events already emitted are not
  /// replayed to late subscribers.
  void add_sink(EventSink& sink) { sinks_.push_back(&sink); }

  void remove_sink(EventSink& sink);

  /// Enables/disables materialization of the full trace (on by default).
  /// Streaming consumers (MeasureAccumulator) work with recording off,
  /// which removes the trace's allocation cost from long search runs;
  /// sequence numbers keep advancing identically either way.
  void set_trace_recording(bool enabled) { record_trace_ = enabled; }
  [[nodiscard]] bool trace_recording() const { return record_trace_; }

  /// Next sequence number to be assigned (equals the number of events
  /// emitted so far, whether or not they were materialized).
  [[nodiscard]] Seq next_seq() const { return next_seq_; }

  /// --- Configuration (set before stepping). ---

  void set_access_policy(AccessPolicy p) { policy_ = p; }
  void set_model(Model m) {
    model_ = m;
    policy_ = AccessPolicy::BitModel;
  }
  [[nodiscard]] std::optional<Model> model() const { return model_; }

  /// Injects a stopping failure: the process crashes when it attempts its
  /// (`accesses`+1)-th shared-memory access.
  void crash_after(Pid pid, std::uint64_t accesses) {
    proc(pid).crash_after = accesses;
  }

  /// When enabled, throws MutualExclusionViolation if two processes are in
  /// Section::Critical simultaneously.
  void check_mutual_exclusion(bool enabled) { check_mutex_ = enabled; }

  /// Number of processes currently in a given section.
  [[nodiscard]] int count_in_section(Section s) const;

 private:
  friend class ProcessContext;

  struct Proc {
    std::string name;
    BodyFactory factory;
    ProcessContext ctx;
    Task<void> root;
    std::coroutine_handle<> resume_point;
    std::optional<PendingAccess> pending;
    Value last_result = 0;
    ProcStatus status = ProcStatus::NotStarted;
    Section section = Section::Remainder;
    std::optional<int> output;
    std::uint64_t naccesses = 0;
    std::optional<std::uint64_t> crash_after;
    std::uint64_t digest = 0;  ///< observation-history hash (process_digest)
    /// This process's current contribution to Sim::procs_fp_ (the batched
    /// per-unit state-fingerprint update swaps it out by XOR).
    std::uint64_t fp_contrib = 0;

    Proc(Sim& sim, Pid pid, std::string n, BodyFactory f)
        : name(std::move(n)), factory(std::move(f)), ctx(sim, pid) {}
  };

  [[nodiscard]] const Proc& proc(Pid pid) const;
  [[nodiscard]] Proc& proc(Pid pid);

  /// Performs the access atomically against the register file, enforcing the
  /// access policy, and appends the event to the trace.
  Value execute(Proc& pr, Pid pid, const PendingAccess& req);

  void on_section_change(Pid pid, Section s);
  void on_output(Pid pid, int value);
  void record_terminal(Pid pid, TraceEvent::Kind kind);

  /// The batched per-unit fingerprint update: recomputes `pid`'s slot hash
  /// over its (digest, status, section) and swaps it into procs_fp_.
  void refresh_proc_fp(Pid pid);

  /// Publishes the event: materializes it when recording is on, then
  /// notifies every subscribed sink.
  void emit(const TraceEvent& ev);

  RegisterFile mem_;
  FrameArena arena_;  // declared before procs_: frames die before the arena
  std::deque<Proc> procs_;  // deque: stable addresses for ProcessContext
  TraceRecorder recorder_;
  std::vector<EventSink*> sinks_;
  std::vector<SimCheckpoint::Unit> sched_log_;
  /// Recycled scratch for rewind_to: the old schedule log is swapped here
  /// and replayed from, so the log is never copied and both buffers keep
  /// their capacity across rewinds (steady-state allocation-free).
  std::vector<SimCheckpoint::Unit> replay_buf_;
  /// Per-pid value tapes (rewindable simulations only): for each process,
  /// the Value each of its non-start units delivered (Proc::last_result
  /// after the unit; 0 for yield/crash units), in its own program order.
  /// rewind_to_mark() feeds a touched process its own tape back instead of
  /// re-executing accesses — and, because the tape is already per-pid, it
  /// never scans the global schedule prefix for the process's units.
  std::vector<std::vector<Value>> tape_;
  /// Scratch for rewind_to_mark's touched-process scan (recycled).
  std::vector<char> touched_buf_;
  /// Scratch for rewind_to's per-pid tape truncation (recycled).
  std::vector<std::uint32_t> unit_count_buf_;
  /// XOR accumulator behind proc_state_fp().
  std::uint64_t procs_fp_ = 0;
  /// mark_rewind_base() baseline.
  bool rewind_base_set_ = false;
  MemorySnapshot base_memory_;
  Seq base_seq_ = 0;
  std::vector<std::optional<std::uint64_t>> base_crash_;
  RewindStats rewind_stats_;
  /// last_step_summary(): rebuilt by every step()/ensure_started() unit.
  StepSummary last_step_;
  /// True only inside rewind_to's replay: step/ensure_started skip the
  /// per-unit log append (the log is bulk-restored from replay_buf_ after).
  bool bulk_replay_ = false;
  bool quiet_replay_ = false;
  bool record_trace_ = true;
  Seq next_seq_ = 0;
  AccessPolicy policy_ = AccessPolicy::Unrestricted;
  std::optional<Model> model_;
  bool check_mutex_ = false;
};

}  // namespace cfc

#endif  // CFC_SCHED_SIM_H
