#ifndef CFC_SCHED_TASK_H
#define CFC_SCHED_TASK_H

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sched/frame_arena.h"

namespace cfc {

/// Lazy coroutine task with continuation chaining.
///
/// Algorithms in this library are written as coroutines: every shared-memory
/// access is a `co_await` on an awaiter provided by ProcessContext, which
/// suspends the whole coroutine stack and returns control to the simulator.
/// The simulator then performs the access atomically (this is the event e_i
/// of the paper's interleaving model) and resumes the process.
///
/// Task<T> composes: `co_await subtask` starts the subtask via symmetric
/// transfer and resumes the awaiting coroutine when the subtask completes.
/// Tasks are move-only and destroy their coroutine frame on destruction,
/// including frames suspended mid-run (used for crash injection).
template <class T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::exception_ptr exception;

  /// Coroutine frames route through the frame arena (sched/frame_arena.h):
  /// when a Sim has installed its arena for the current thread, frames are
  /// recycled across the explorer's rewind-replay restores instead of
  /// hitting the global heap; with no arena installed this is one
  /// thread-local read over plain operator new.
  static void* operator new(std::size_t size) { return frame_alloc(size); }
  static void operator delete(void* p) noexcept { frame_free(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    frame_free(p);
  }

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) const noexcept {
      // Symmetric transfer to whoever co_awaited this task (or noop for the
      // outermost task, handing control back to the simulator).
      return h.promise().continuation;
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
    return {};
  }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

template <class T>
class Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }
  [[nodiscard]] std::coroutine_handle<> handle() const noexcept {
    return handle_;
  }

  /// Rethrows any exception stored by the coroutine; call after done().
  void rethrow_if_exception() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  /// Result of a completed task. Precondition: done() and no exception.
  [[nodiscard]] T result() const {
    rethrow_if_exception();
    return *handle_.promise().value;
  }

  auto operator co_await() const noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;  // start the child task
      }
      T await_resume() const {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
        return std::move(*h.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() const noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }
  [[nodiscard]] std::coroutine_handle<> handle() const noexcept {
    return handle_;
  }

  void rethrow_if_exception() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  auto operator co_await() const noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() const {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace cfc

#endif  // CFC_SCHED_TASK_H
