#include "sched/sched.h"

namespace cfc {

RunOutcome drive(Sim& sim, Scheduler& sched, RunLimits limits) {
  std::uint64_t steps = 0;
  while (steps < limits.max_steps) {
    if (!sim.any_runnable()) {
      return RunOutcome::AllDone;
    }
    const std::optional<Pid> pick = sched.next(sim);
    if (!pick.has_value()) {
      return RunOutcome::SchedulerStopped;
    }
    sim.step(*pick);
    ++steps;
  }
  return RunOutcome::BudgetExhausted;
}

RunOutcome drive_from(const SimCheckpoint& cp, const SimBuilder& rebuild,
                      Scheduler& sched, std::unique_ptr<Sim>& out,
                      RunLimits limits, const SimBuilder& attach) {
  out = Sim::fork(cp, rebuild);
  if (attach) {
    attach(*out);
  }
  return drive(*out, sched, limits);
}

std::optional<Pid> SoloScheduler::next(const Sim& sim) {
  if (sim.runnable(pid_)) {
    return pid_;
  }
  return std::nullopt;
}

std::optional<Pid> SequentialScheduler::next(const Sim& sim) {
  while (at_ < order_.size() && !sim.runnable(order_[at_])) {
    ++at_;
  }
  if (at_ >= order_.size()) {
    return std::nullopt;
  }
  return order_[at_];
}

std::optional<Pid> RoundRobinScheduler::next(const Sim& sim) {
  const int n = sim.process_count();
  for (int i = 1; i <= n; ++i) {
    const Pid p = static_cast<Pid>((last_ + i) % n);
    if (sim.runnable(p)) {
      last_ = p;
      return p;
    }
  }
  return std::nullopt;
}

std::optional<Pid> RandomScheduler::next(const Sim& sim) {
  std::vector<Pid> ready;
  ready.reserve(static_cast<std::size_t>(sim.process_count()));
  for (Pid p = 0; p < sim.process_count(); ++p) {
    if (sim.runnable(p)) {
      ready.push_back(p);
    }
  }
  if (ready.empty()) {
    return std::nullopt;
  }
  std::uniform_int_distribution<std::size_t> pick(0, ready.size() - 1);
  return ready[pick(rng_)];
}

std::optional<Pid> ScriptedScheduler::next(const Sim& sim) {
  while (at_ < script_.size() && !sim.runnable(script_[at_])) {
    ++at_;
  }
  if (at_ >= script_.size()) {
    return std::nullopt;
  }
  return script_[at_++];
}

std::optional<Pid> RecordingScheduler::next(const Sim& sim) {
  const std::optional<Pid> pick = inner_->next(sim);
  if (pick.has_value()) {
    log_.push_back(*pick);
  }
  return pick;
}

std::uint64_t step_until(Sim& sim, Pid pid,
                         const std::function<bool(const Sim&)>& pred,
                         std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (steps < max_steps && !pred(sim) && sim.runnable(pid)) {
    sim.step(pid);
    ++steps;
  }
  return steps;
}

std::uint64_t step_n(Sim& sim, Pid pid, std::uint64_t k) {
  std::uint64_t steps = 0;
  while (steps < k && sim.runnable(pid)) {
    sim.step(pid);
    ++steps;
  }
  return steps;
}

std::uint64_t run_to_completion(Sim& sim, Pid pid, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (steps < max_steps && sim.runnable(pid)) {
    sim.step(pid);
    ++steps;
  }
  return steps;
}

}  // namespace cfc
