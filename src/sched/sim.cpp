#include "sched/sim.h"

#include <algorithm>
#include <utility>

#include "memory/fingerprint.h"

namespace cfc {

namespace {

// Digest marks for the non-access events of a process's observation
// history (fingerprint.h fp_push folds them into Proc::digest).
constexpr std::uint64_t kDigestStart = 0x5712a6cbb1a5e0d1ULL;
constexpr std::uint64_t kDigestYield = 0x9c0e8b5d47f3a2e7ULL;
constexpr std::uint64_t kDigestCrash = 0xc4a51fd2387b6e09ULL;
constexpr std::uint64_t kDigestFinish = 0xf1f0c2d9e8b7a6c5ULL;

/// A process's observation digest before it observes anything; spawn and
/// rewind_to must agree on it.
std::uint64_t initial_digest(Pid pid) {
  return fp_mix(0x5eedULL ^ static_cast<std::uint64_t>(pid));
}

/// Slot-id base separating per-process state-fingerprint contributions
/// (Sim::procs_fp_) from RegisterFile slot ids in fp_slot's domain.
constexpr std::uint64_t kProcFpSalt = 0x70c5a17e00ULL;

}  // namespace

void Sim::refresh_proc_fp(Pid pid) {
  Proc& pr = procs_[static_cast<std::size_t>(pid)];
  const std::uint64_t meta = (static_cast<std::uint64_t>(pr.status) << 8) |
                             static_cast<std::uint64_t>(pr.section);
  const std::uint64_t c =
      fp_slot(kProcFpSalt + static_cast<std::uint64_t>(pid),
              pr.digest ^ fp_mix(meta));
  procs_fp_ ^= pr.fp_contrib ^ c;
  pr.fp_contrib = c;
}

void Sim::remove_sink(EventSink& sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), &sink),
               sinks_.end());
}

void Sim::emit(const TraceEvent& ev) {
  if (quiet_replay_) {
    return;  // checkpoint replay: the events were already published once
  }
  if (record_trace_) {
    recorder_.on_event(ev);
  }
  for (EventSink* sink : sinks_) {
    sink->on_event(ev);
  }
}

void ProcessContext::set_section(Section s) { sim_->on_section_change(pid_, s); }

void ProcessContext::set_output(int value) { sim_->on_output(pid_, value); }

int ProcessContext::process_count() const noexcept {
  return sim_->process_count();
}

Pid Sim::spawn(std::string proc_name, BodyFactory factory) {
  const Pid pid = static_cast<Pid>(procs_.size());
  procs_.emplace_back(*this, pid, std::move(proc_name), std::move(factory));
  Proc& pr = procs_.back();
  pr.digest = initial_digest(pid);
  // Wire the context's fast-path slots (deque: addresses are stable).
  pr.ctx.pending_slot_ = &pr.pending;
  pr.ctx.resume_slot_ = &pr.resume_point;
  pr.ctx.last_result_slot_ = &pr.last_result;
  tape_.emplace_back();  // the pid's value tape (filled once rewindable)
  refresh_proc_fp(pid);
  return pid;
}

const Sim::Proc& Sim::proc(Pid pid) const {
  if (pid < 0 || pid >= process_count()) {
    throw std::out_of_range("bad pid");
  }
  return procs_[static_cast<std::size_t>(pid)];
}

Sim::Proc& Sim::proc(Pid pid) {
  if (pid < 0 || pid >= process_count()) {
    throw std::out_of_range("bad pid");
  }
  return procs_[static_cast<std::size_t>(pid)];
}

bool Sim::runnable(Pid pid) const {
  const ProcStatus st = proc(pid).status;
  return st == ProcStatus::NotStarted || st == ProcStatus::Runnable;
}

bool Sim::any_runnable() const {
  for (Pid p = 0; p < process_count(); ++p) {
    if (runnable(p)) {
      return true;
    }
  }
  return false;
}

bool Sim::all_done() const {
  for (Pid p = 0; p < process_count(); ++p) {
    if (proc(p).status != ProcStatus::Done) {
      return false;
    }
  }
  return true;
}

int Sim::count_in_section(Section s) const {
  int k = 0;
  for (const Proc& pr : procs_) {
    k += (pr.section == s) ? 1 : 0;
  }
  return k;
}

void Sim::ensure_started(Pid pid) {
  Proc& pr = proc(pid);
  if (pr.status != ProcStatus::NotStarted) {
    return;
  }
  // Begin this unit's summary (step() calls this before anything is
  // recorded, so the re-reset is harmless there): the prologue's section
  // changes are part of the unit they run in.
  last_step_ = StepSummary{};
  last_step_.pid = pid;
  last_step_.started = true;
  // Rewindable simulations route frames through the per-Sim arena (the
  // body here, subtask frames during any resume), so the rewind-replay
  // restore recycles them instead of hitting the heap. Ordinary
  // simulations skip the arena: their frames never get a second life, so
  // the global heap is the better allocator for them.
  const FrameArena::Scope frame_scope(rewind_base_set_ ? &arena_ : nullptr);
  if (!bulk_replay_) {
    // Start units deliver no value, so they have no tape entry: a pid's
    // tape holds exactly its non-start units.
    sched_log_.push_back({pid, /*start_only=*/true});
  }
  pr.digest = fp_push(pr.digest, kDigestStart);
  pr.status = ProcStatus::Runnable;
  pr.root = pr.factory(pr.ctx);
  if (!pr.root.valid()) {
    throw std::logic_error("process body factory returned an invalid task");
  }
  pr.resume_point = pr.root.handle();
  pr.resume_point.resume();  // run to first access request or completion
  if (pr.root.done()) {
    pr.root.rethrow_if_exception();
    pr.status = ProcStatus::Done;
    record_terminal(pid, TraceEvent::Kind::Finish);
    refresh_proc_fp(pid);  // batched: digest + status in one update
    return;
  }
  if (!pr.pending.has_value()) {
    throw std::logic_error("live process is not suspended at an access");
  }
  refresh_proc_fp(pid);  // batched: start mark + prologue section changes
}

Sim::StepResult Sim::step(Pid pid) {
  Proc& pr = proc(pid);
  // Reset the unit summary even on the no-op path below: a NotRunnable
  // pick must not leave last_step_summary() reporting the previous unit
  // under the wrong attribution.
  last_step_ = StepSummary{};
  last_step_.pid = pid;
  if (pr.status == ProcStatus::Done || pr.status == ProcStatus::Crashed) {
    return StepResult::NotRunnable;
  }
  const FrameArena::Scope frame_scope(rewind_base_set_ ? &arena_ : nullptr);

  if (pr.status == ProcStatus::NotStarted) {
    ensure_started(pid);
    if (pr.status == ProcStatus::Done) {
      return StepResult::Finished;
    }
  }

  if (!bulk_replay_) {
    sched_log_.push_back({pid, /*start_only=*/false});
    if (rewind_base_set_) {
      // Tape placeholder, filled after the delivered value is known. Crash
      // units and units that throw before delivering keep the 0 — both
      // only ever occupy suffixes a rewind discards (a crashed process
      // never acts again; a violating unit is backtracked past).
      tape_[static_cast<std::size_t>(pid)].push_back(0);
    }
  }

  // Crash injection fires when the process attempts one access too many.
  if (pr.crash_after.has_value() && pr.naccesses >= *pr.crash_after) {
    last_step_.crashed = true;
    pr.status = ProcStatus::Crashed;
    record_terminal(pid, TraceEvent::Kind::Crash);
    refresh_proc_fp(pid);  // batched: digest + status in one update
    return StepResult::CrashedNow;
  }

  if (!pr.pending.has_value()) {
    throw std::logic_error("live process is not suspended at an access");
  }

  // The linearization point: perform the access atomically, then let the
  // process run (for free) up to its next access request or to completion.
  const PendingAccess req = *pr.pending;
  pr.pending.reset();
  if (req.local_yield) {
    pr.digest = fp_push(pr.digest, kDigestYield);
  }
  pr.last_result = req.local_yield ? 0 : execute(pr, pid, req);
  if (!bulk_replay_ && rewind_base_set_) {
    // Before the resume: a unit that throws during its local run (e.g. a
    // mutual-exclusion violation at a section change) still records the
    // value it delivered.
    tape_[static_cast<std::size_t>(pid)].back() = pr.last_result;
  }
  const std::coroutine_handle<> h = pr.resume_point;
  h.resume();
  if (pr.root.done()) {
    pr.root.rethrow_if_exception();
    pr.status = ProcStatus::Done;
    record_terminal(pid, TraceEvent::Kind::Finish);
  } else if (!pr.pending.has_value()) {
    throw std::logic_error("live process is not suspended at an access");
  }
  // ONE fingerprint update for the whole unit's write set: the access's
  // digest fold, every section change the resume made, and any terminal
  // status — instead of a procs_-wide rehash per explored node.
  refresh_proc_fp(pid);
  return req.local_yield ? StepResult::LocalStep : StepResult::Access;
}

Value Sim::execute(Proc& pr, Pid pid, const PendingAccess& req) {
  // Hot path: one bounds-checked slot lookup serves the width read, the
  // value read, and the committed write below (Sim is a RegisterFile
  // friend exactly for this).
  RegisterFile::Slot& sl = mem_.slot(req.reg);
  const int w = sl.width;

  Access a;
  a.seq = next_seq_;
  a.pid = pid;
  a.reg = req.reg;
  a.kind = req.kind;
  a.width = w;
  a.before = sl.value;

  switch (req.kind) {
    case AccessKind::Read: {
      if (policy_ == AccessPolicy::BitModel) {
        throw AccessPolicyViolation(
            "register read in a bit-operation model; use BitOp::Read");
      }
      a.returned = a.before;
      a.after = a.before;
      break;
    }
    case AccessKind::Write: {
      if (policy_ == AccessPolicy::BitModel) {
        throw AccessPolicyViolation(
            "register write in a bit-operation model; use write-0/write-1");
      }
      if (req.field_width > 0) {
        // Multi-grain sub-word store.
        if (req.field_shift < 0 || req.field_width < 1 ||
            req.field_shift + req.field_width > w) {
          throw std::invalid_argument("field store outside register bounds");
        }
        const Value mask =
            (req.field_width >= 64)
                ? ~Value{0}
                : ((Value{1} << req.field_width) - 1);
        if (req.to_write > mask) {
          throw std::invalid_argument("field value does not fit field width");
        }
        const auto shift = static_cast<unsigned>(req.field_shift);
        a.after = (a.before & ~(mask << shift)) | (req.to_write << shift);
        a.written = a.after;
        a.field_shift = req.field_shift;
        a.field_width = req.field_width;
        break;
      }
      if (w < RegisterFile::kMaxWidth &&
          req.to_write > ((Value{1} << w) - 1)) {
        throw std::invalid_argument("written value does not fit register");
      }
      a.written = req.to_write;
      a.after = req.to_write;
      break;
    }
    case AccessKind::Bit: {
      if (policy_ == AccessPolicy::RegistersOnly) {
        throw AccessPolicyViolation(
            "bit operation in the atomic-register model");
      }
      if (w != 1) {
        throw AccessPolicyViolation("bit operation on a multi-bit register");
      }
      if (model_.has_value() && !model_->supports(req.bit_op)) {
        throw AccessPolicyViolation(std::string("operation ") +
                                    std::string(name(req.bit_op)) +
                                    " not in model " + model_->to_string());
      }
      a.bit_op = req.bit_op;
      const BitOpResult r = apply(req.bit_op, a.before != 0);
      a.after = r.new_value ? 1 : 0;
      if (r.returned.has_value()) {
        a.returned = *r.returned ? 1 : 0;
      }
      break;
    }
  }

  if (a.after != a.before) {  // commit; a no-op write keeps fp_ unchanged
    const auto ur = static_cast<std::uint64_t>(req.reg);
    mem_.fp_ ^= fp_slot(ur, sl.value) ^ fp_slot(ur, a.after);
    sl.value = a.after;
  }
  last_step_.accessed = true;
  last_step_.reg = req.reg;
  last_step_.wrote = a.is_write();
  pr.naccesses += 1;
  // Fold the full observation into the process digest: what was done and
  // what came back. A deterministic coroutine's local state is a function
  // of its observation history, so equal digests mean equal local states.
  // (Mixed down to one fp_push: this runs once per simulated access,
  // including every replayed one.)
  const std::uint64_t meta = (static_cast<std::uint64_t>(a.reg) << 16) |
                             (static_cast<std::uint64_t>(a.kind) << 8) |
                             static_cast<std::uint64_t>(a.bit_op);
  std::uint64_t obs =
      fp_mix(meta ^ (a.before * 0x9e3779b97f4a7c15ULL));
  obs ^= fp_mix(a.after + 0x7f4a7c159e3779b9ULL);
  if (a.returned.has_value()) {
    obs ^= fp_mix(*a.returned ^ 0xd6e8feb86659fd93ULL) | 1u;
  }
  pr.digest = fp_push(pr.digest, obs);
  const Seq seq = next_seq_++;
  if (!quiet_replay_) {  // replayed events were already published once:
    TraceEvent ev;       // skip even constructing them
    ev.seq = seq;
    ev.pid = pid;
    ev.kind = TraceEvent::Kind::Access;
    ev.access = a;
    emit(ev);
  }
  return a.returned.value_or(0);
}

void Sim::on_section_change(Pid pid, Section s) {
  Proc& pr = proc(pid);
  // Recorded before the mutual-exclusion check: a unit that throws AT a
  // section change is still section-change-adjacent for the summary.
  last_step_.section_changed = true;
  if (check_mutex_ && !quiet_replay_ && s == Section::Critical) {
    for (Pid q = 0; q < process_count(); ++q) {
      if (q != pid && proc(q).section == Section::Critical) {
        throw MutualExclusionViolation(
            "two processes in the critical section: " + pr.name + " and " +
            proc(q).name);
      }
    }
  }
  TraceEvent ev;
  ev.seq = next_seq_++;
  ev.pid = pid;
  ev.kind = TraceEvent::Kind::SectionChange;
  ev.from = pr.section;
  ev.to = s;
  pr.section = s;  // apply before emit: sinks observe post-event state
  emit(ev);
}

void Sim::on_output(Pid pid, int value) { proc(pid).output = value; }

SimCheckpoint Sim::checkpoint(bool with_memory) const {
  SimCheckpoint cp;
  cp.schedule = sched_log_;
  if (with_memory) {
    cp.memory = mem_.snapshot();
  }
  cp.memory_fingerprint = mem_.fingerprint();
  cp.next_seq = next_seq_;
  return cp;
}

std::unique_ptr<Sim> Sim::fork(const SimCheckpoint& cp,
                               const SimBuilder& rebuild) {
  return fork(cp.schedule, cp.memory_fingerprint, cp.next_seq, rebuild,
              cp.memory.empty() ? nullptr : &cp.memory);
}

std::unique_ptr<Sim> Sim::fork(std::span<const SimCheckpoint::Unit> schedule,
                               std::uint64_t expect_fingerprint,
                               Seq expect_seq, const SimBuilder& rebuild,
                               const MemorySnapshot* expect_memory) {
  if (!rebuild) {
    throw std::invalid_argument("Sim::fork needs a rebuild callback");
  }
  auto sim = std::make_unique<Sim>();
  rebuild(*sim);
  sim->quiet_replay_ = true;
  try {
    for (const SimCheckpoint::Unit& u : schedule) {
      if (u.start_only) {
        sim->ensure_started(u.pid);
      } else {
        sim->step(u.pid);
      }
    }
  } catch (...) {
    sim->quiet_replay_ = false;
    throw;
  }
  sim->quiet_replay_ = false;
  const bool diverged =
      (expect_fingerprint != 0 &&
       (sim->next_seq_ != expect_seq ||
        sim->mem_.fingerprint() != expect_fingerprint)) ||
      (expect_memory != nullptr && sim->mem_.snapshot() != *expect_memory);
  if (diverged) {
    throw std::logic_error(
        "Sim::fork: replay diverged from the checkpoint (non-deterministic "
        "SimBuilder?)");
  }
  return sim;
}

void Sim::mark_rewind_base() {
  if (!sched_log_.empty()) {
    throw std::logic_error(
        "Sim::mark_rewind_base: must be called before any unit executes "
        "(right after setup)");
  }
  base_memory_ = mem_.snapshot();
  base_seq_ = next_seq_;
  base_crash_.clear();
  base_crash_.reserve(procs_.size());
  for (const Proc& pr : procs_) {
    base_crash_.push_back(pr.crash_after);
  }
  rewind_base_set_ = true;
}

void Sim::rewind_to(std::size_t prefix_len, std::uint64_t expect_fingerprint,
                    Seq expect_seq, const MemorySnapshot* expect_memory) {
  if (!rewind_base_set_) {
    throw std::logic_error("Sim::rewind_to: mark_rewind_base was not called");
  }
  if (prefix_len > sched_log_.size()) {
    throw std::out_of_range(
        "Sim::rewind_to: prefix exceeds the schedule log");
  }
  if (quiet_replay_) {
    throw std::logic_error("Sim::rewind_to: already replaying");
  }
  if (procs_.size() != base_crash_.size()) {
    throw std::logic_error(
        "Sim::rewind_to: processes were spawned after mark_rewind_base");
  }

  // Borrow the previous run's log as the replay source: swap it into the
  // scratch buffer (no copy; both vectors keep their capacity). The log is
  // bulk-restored from the buffer after the replay instead of re-appending
  // unit by unit.
  replay_buf_.swap(sched_log_);
  sched_log_.clear();

  // Reset every process to its pre-start state. Destroying the root task
  // frees the whole coroutine frame chain into the per-Sim arena, where
  // the replay's recreations will recycle it.
  for (Pid pid = 0; pid < process_count(); ++pid) {
    Proc& pr = procs_[static_cast<std::size_t>(pid)];
    pr.root = Task<void>{};
    pr.resume_point = {};
    pr.pending.reset();
    pr.last_result = 0;
    pr.status = ProcStatus::NotStarted;
    pr.section = Section::Remainder;
    pr.output.reset();
    pr.naccesses = 0;
    pr.crash_after = base_crash_[static_cast<std::size_t>(pid)];
    pr.digest = initial_digest(pid);
    refresh_proc_fp(pid);  // replayed units re-refresh; unstepped pids
                           // need the reset folded in here
  }
  mem_.restore(base_memory_);
  next_seq_ = base_seq_;
  recorder_.clear();  // like a fork, the rewound run's trace starts empty

  quiet_replay_ = true;
  bulk_replay_ = true;
  try {
    for (std::size_t i = 0; i < prefix_len; ++i) {
      const SimCheckpoint::Unit u = replay_buf_[i];
      if (u.start_only) {
        ensure_started(u.pid);
      } else {
        step(u.pid);
      }
    }
  } catch (...) {
    quiet_replay_ = false;
    bulk_replay_ = false;
    throw;
  }
  quiet_replay_ = false;
  bulk_replay_ = false;
  sched_log_.assign(replay_buf_.begin(),
                    replay_buf_.begin() +
                        static_cast<std::ptrdiff_t>(prefix_len));
  // Truncate each pid's value tape to its unit count within the prefix
  // (a per-pid subsequence of a log prefix is a prefix of the pid's tape,
  // so the surviving values are unchanged).
  unit_count_buf_.assign(procs_.size(), 0);
  for (std::size_t i = 0; i < prefix_len; ++i) {
    const SimCheckpoint::Unit u = replay_buf_[i];
    if (!u.start_only) {
      ++unit_count_buf_[static_cast<std::size_t>(u.pid)];
    }
  }
  for (std::size_t p = 0; p < procs_.size(); ++p) {
    tape_[p].resize(unit_count_buf_[p]);
  }

  rewind_stats_.rewinds += 1;
  rewind_stats_.replayed_units += prefix_len;

  const bool diverged =
      (expect_fingerprint != 0 &&
       (next_seq_ != expect_seq || mem_.fingerprint() != expect_fingerprint)) ||
      (expect_memory != nullptr && mem_.snapshot() != *expect_memory);
  if (diverged) {
    throw std::logic_error(
        "Sim::rewind_to: replay diverged from the expected state "
        "(non-deterministic process body?)");
  }
}

void Sim::capture_mark(RewindMark& mark) const {
  if (!rewind_base_set_) {
    throw std::logic_error("Sim::capture_mark: mark_rewind_base was not called");
  }
  const std::size_t nregs = static_cast<std::size_t>(mem_.size());
  mark.memory.resize(nregs);
  for (std::size_t r = 0; r < nregs; ++r) {
    mark.memory[r] = mem_.slots_[r].value;  // friend access: no realloc
  }
  mark.fingerprint = mem_.fingerprint();
  mark.seq = next_seq_;
  mark.prefix_len = sched_log_.size();
  mark.digests.resize(procs_.size());
  mark.naccesses.resize(procs_.size());
  mark.pid_units.resize(procs_.size());
  for (std::size_t p = 0; p < procs_.size(); ++p) {
    mark.digests[p] = procs_[p].digest;
    mark.naccesses[p] = procs_[p].naccesses;
    // Tape length + the start unit (in the log iff the process started).
    mark.pid_units[p] = static_cast<std::uint32_t>(
        tape_[p].size() +
        (procs_[p].status != ProcStatus::NotStarted ? 1u : 0u));
  }
}

std::size_t Sim::rewind_to_mark(const RewindMark& mark) {
  if (!rewind_base_set_) {
    throw std::logic_error(
        "Sim::rewind_to_mark: mark_rewind_base was not called");
  }
  if (mark.prefix_len > sched_log_.size()) {
    throw std::out_of_range(
        "Sim::rewind_to_mark: mark prefix exceeds the schedule log");
  }
  if (quiet_replay_) {
    throw std::logic_error("Sim::rewind_to_mark: already replaying");
  }
  if (mark.digests.size() != procs_.size() ||
      mark.pid_units.size() != procs_.size() ||
      procs_.size() != base_crash_.size()) {
    throw std::logic_error(
        "Sim::rewind_to_mark: process set changed since the mark/base");
  }
  std::size_t tape_units = 0;
  for (std::size_t p = 0; p < procs_.size(); ++p) {
    tape_units += tape_[p].size() +
                  (procs_[p].status != ProcStatus::NotStarted ? 1u : 0u);
  }
  if (tape_units != sched_log_.size()) {
    throw std::logic_error(
        "Sim::rewind_to_mark: value tapes out of sync with the schedule "
        "log");
  }

  // Which processes acted past the mark? Only they diverged from it.
  touched_buf_.assign(procs_.size(), 0);
  for (std::size_t i = mark.prefix_len; i < sched_log_.size(); ++i) {
    touched_buf_[static_cast<std::size_t>(sched_log_[i].pid)] = 1;
  }

  // Reset every touched process to its pre-start state (frames recycle
  // through the arena) and value-replay it over its own prefix units.
  for (Pid pid = 0; pid < process_count(); ++pid) {
    if (touched_buf_[static_cast<std::size_t>(pid)] == 0) {
      continue;
    }
    Proc& pr = procs_[static_cast<std::size_t>(pid)];
    pr.root = Task<void>{};
    pr.resume_point = {};
    pr.pending.reset();
    pr.last_result = 0;
    pr.status = ProcStatus::NotStarted;
    pr.section = Section::Remainder;
    pr.output.reset();
    pr.naccesses = 0;
    pr.crash_after = base_crash_[static_cast<std::size_t>(pid)];
    pr.digest = initial_digest(pid);
  }

  std::size_t fed = 0;
  quiet_replay_ = true;
  bulk_replay_ = true;
  try {
    const FrameArena::Scope frame_scope(&arena_);
    // Per-pid replay off each touched process's own value tape: the units
    // fed are exactly the ones owed, with no scan over the global schedule
    // prefix (cross-pid order is irrelevant — a value replay reads no
    // shared memory, only the recorded values). mark.pid_units == 0 means
    // the process had not started at the mark: the reset above already put
    // it in that state.
    for (Pid pid = 0; pid < process_count(); ++pid) {
      const auto up = static_cast<std::size_t>(pid);
      if (touched_buf_[up] == 0 || mark.pid_units[up] == 0) {
        continue;
      }
      ++fed;  // the start unit
      ensure_started(pid);
      Proc& pr = procs_[up];
      const Value* vals = tape_[up].data();
      const std::uint32_t nvals = mark.pid_units[up] - 1;
      for (std::uint32_t k = 0; k < nvals; ++k) {
        // A touched process was runnable at the mark, so its prefix units
        // contain no crash/finish: every one feeds a live suspension.
        if (pr.status != ProcStatus::Runnable || !pr.pending.has_value()) {
          throw std::logic_error(
              "Sim::rewind_to_mark: touched process not suspended at an "
              "access during value replay (log/mark mismatch?)");
        }
        ++fed;
        pr.pending.reset();
        pr.last_result = vals[k];
        const std::coroutine_handle<> h = pr.resume_point;
        h.resume();
        if (pr.root.done() || !pr.pending.has_value()) {
          throw std::logic_error(
              "Sim::rewind_to_mark: value replay diverged (process "
              "finished before its mark position)");
        }
      }
    }
  } catch (...) {
    quiet_replay_ = false;
    bulk_replay_ = false;
    throw;
  }
  quiet_replay_ = false;
  bulk_replay_ = false;

  // Shared state comes from the mark by assignment; per-process digests
  // and access counts too (they fold memory values the value replay never
  // sees). Untouched processes already carry the mark's values.
  mem_.restore(mark.memory);
  next_seq_ = mark.seq;
  for (Pid pid = 0; pid < process_count(); ++pid) {
    const auto up = static_cast<std::size_t>(pid);
    if (touched_buf_[up] != 0) {
      Proc& pr = procs_[up];
      pr.digest = mark.digests[up];
      pr.naccesses = mark.naccesses[up];
      refresh_proc_fp(pid);  // batched: mark digest + replayed status
      // The pid's suffix tape entries die with the suffix; untouched
      // processes have none, so their tapes are already at mark length.
      const std::uint32_t nu = mark.pid_units[up];
      tape_[up].resize(nu == 0 ? 0 : nu - 1);
    }
  }
  sched_log_.resize(mark.prefix_len);
  recorder_.clear();  // like any rewind, the restored run's trace is empty

  rewind_stats_.rewinds += 1;
  rewind_stats_.replayed_units += fed;

  if (mem_.fingerprint() != mark.fingerprint) {
    throw std::logic_error(
        "Sim::rewind_to_mark: restored memory does not match the mark's "
        "fingerprint (corrupted mark?)");
  }
  return fed;
}

void Sim::record_terminal(Pid pid, TraceEvent::Kind kind) {
  Proc& pr = proc(pid);
  pr.digest = fp_push(pr.digest, kind == TraceEvent::Kind::Crash
                                     ? kDigestCrash
                                     : kDigestFinish);
  TraceEvent ev;
  ev.seq = next_seq_++;
  ev.pid = pid;
  ev.kind = kind;
  emit(ev);
}

}  // namespace cfc
