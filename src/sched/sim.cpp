#include "sched/sim.h"

#include <algorithm>
#include <utility>

#include "memory/fingerprint.h"

namespace cfc {

namespace {

// Digest marks for the non-access events of a process's observation
// history (fingerprint.h fp_push folds them into Proc::digest).
constexpr std::uint64_t kDigestStart = 0x5712a6cbb1a5e0d1ULL;
constexpr std::uint64_t kDigestYield = 0x9c0e8b5d47f3a2e7ULL;
constexpr std::uint64_t kDigestCrash = 0xc4a51fd2387b6e09ULL;
constexpr std::uint64_t kDigestFinish = 0xf1f0c2d9e8b7a6c5ULL;

}  // namespace

void Sim::remove_sink(EventSink& sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), &sink),
               sinks_.end());
}

void Sim::emit(const TraceEvent& ev) {
  if (quiet_replay_) {
    return;  // checkpoint replay: the events were already published once
  }
  if (record_trace_) {
    recorder_.on_event(ev);
  }
  for (EventSink* sink : sinks_) {
    sink->on_event(ev);
  }
}

void ProcessContext::post(const PendingAccess& req, std::coroutine_handle<> h) {
  Sim::Proc& pr = sim_->proc(pid_);
  pr.pending = req;
  pr.resume_point = h;
}

Value ProcessContext::last_result() const noexcept {
  return sim_->proc(pid_).last_result;
}

void ProcessContext::set_section(Section s) { sim_->on_section_change(pid_, s); }

void ProcessContext::set_output(int value) { sim_->on_output(pid_, value); }

int ProcessContext::process_count() const noexcept {
  return sim_->process_count();
}

Pid Sim::spawn(std::string proc_name, BodyFactory factory) {
  const Pid pid = static_cast<Pid>(procs_.size());
  procs_.emplace_back(*this, pid, std::move(proc_name), std::move(factory));
  procs_.back().digest = fp_mix(0x5eedULL ^ static_cast<std::uint64_t>(pid));
  return pid;
}

const Sim::Proc& Sim::proc(Pid pid) const {
  if (pid < 0 || pid >= process_count()) {
    throw std::out_of_range("bad pid");
  }
  return procs_[static_cast<std::size_t>(pid)];
}

Sim::Proc& Sim::proc(Pid pid) {
  if (pid < 0 || pid >= process_count()) {
    throw std::out_of_range("bad pid");
  }
  return procs_[static_cast<std::size_t>(pid)];
}

bool Sim::runnable(Pid pid) const {
  const ProcStatus st = proc(pid).status;
  return st == ProcStatus::NotStarted || st == ProcStatus::Runnable;
}

bool Sim::any_runnable() const {
  for (Pid p = 0; p < process_count(); ++p) {
    if (runnable(p)) {
      return true;
    }
  }
  return false;
}

bool Sim::all_done() const {
  for (Pid p = 0; p < process_count(); ++p) {
    if (proc(p).status != ProcStatus::Done) {
      return false;
    }
  }
  return true;
}

int Sim::count_in_section(Section s) const {
  int k = 0;
  for (const Proc& pr : procs_) {
    k += (pr.section == s) ? 1 : 0;
  }
  return k;
}

void Sim::ensure_started(Pid pid) {
  Proc& pr = proc(pid);
  if (pr.status != ProcStatus::NotStarted) {
    return;
  }
  sched_log_.push_back({pid, /*start_only=*/true});
  pr.digest = fp_push(pr.digest, kDigestStart);
  pr.status = ProcStatus::Runnable;
  pr.root = pr.factory(pr.ctx);
  if (!pr.root.valid()) {
    throw std::logic_error("process body factory returned an invalid task");
  }
  pr.resume_point = pr.root.handle();
  pr.resume_point.resume();  // run to first access request or completion
  if (pr.root.done()) {
    pr.root.rethrow_if_exception();
    pr.status = ProcStatus::Done;
    record_terminal(pid, TraceEvent::Kind::Finish);
    return;
  }
  if (!pr.pending.has_value()) {
    throw std::logic_error("live process is not suspended at an access");
  }
}

Sim::StepResult Sim::step(Pid pid) {
  Proc& pr = proc(pid);
  if (pr.status == ProcStatus::Done || pr.status == ProcStatus::Crashed) {
    return StepResult::NotRunnable;
  }

  if (pr.status == ProcStatus::NotStarted) {
    ensure_started(pid);
    if (pr.status == ProcStatus::Done) {
      return StepResult::Finished;
    }
  }

  sched_log_.push_back({pid, /*start_only=*/false});

  // Crash injection fires when the process attempts one access too many.
  if (pr.crash_after.has_value() && pr.naccesses >= *pr.crash_after) {
    pr.status = ProcStatus::Crashed;
    record_terminal(pid, TraceEvent::Kind::Crash);
    return StepResult::CrashedNow;
  }

  if (!pr.pending.has_value()) {
    throw std::logic_error("live process is not suspended at an access");
  }

  // The linearization point: perform the access atomically, then let the
  // process run (for free) up to its next access request or to completion.
  const PendingAccess req = *pr.pending;
  pr.pending.reset();
  if (req.local_yield) {
    pr.digest = fp_push(pr.digest, kDigestYield);
  }
  pr.last_result = req.local_yield ? 0 : execute(pid, req);
  const std::coroutine_handle<> h = pr.resume_point;
  h.resume();
  if (pr.root.done()) {
    pr.root.rethrow_if_exception();
    pr.status = ProcStatus::Done;
    record_terminal(pid, TraceEvent::Kind::Finish);
  } else if (!pr.pending.has_value()) {
    throw std::logic_error("live process is not suspended at an access");
  }
  return req.local_yield ? StepResult::LocalStep : StepResult::Access;
}

Value Sim::execute(Pid pid, const PendingAccess& req) {
  Proc& pr = proc(pid);
  const int w = mem_.width(req.reg);

  Access a;
  a.seq = next_seq_;
  a.pid = pid;
  a.reg = req.reg;
  a.kind = req.kind;
  a.width = w;
  a.before = mem_.peek(req.reg);

  switch (req.kind) {
    case AccessKind::Read: {
      if (policy_ == AccessPolicy::BitModel) {
        throw AccessPolicyViolation(
            "register read in a bit-operation model; use BitOp::Read");
      }
      a.returned = a.before;
      a.after = a.before;
      break;
    }
    case AccessKind::Write: {
      if (policy_ == AccessPolicy::BitModel) {
        throw AccessPolicyViolation(
            "register write in a bit-operation model; use write-0/write-1");
      }
      if (req.field_width > 0) {
        // Multi-grain sub-word store.
        if (req.field_shift < 0 || req.field_width < 1 ||
            req.field_shift + req.field_width > w) {
          throw std::invalid_argument("field store outside register bounds");
        }
        const Value mask =
            (req.field_width >= 64)
                ? ~Value{0}
                : ((Value{1} << req.field_width) - 1);
        if (req.to_write > mask) {
          throw std::invalid_argument("field value does not fit field width");
        }
        const auto shift = static_cast<unsigned>(req.field_shift);
        a.after = (a.before & ~(mask << shift)) | (req.to_write << shift);
        a.written = a.after;
        break;
      }
      if (!mem_.fits(req.reg, req.to_write)) {
        throw std::invalid_argument("written value does not fit register");
      }
      a.written = req.to_write;
      a.after = req.to_write;
      break;
    }
    case AccessKind::Bit: {
      if (policy_ == AccessPolicy::RegistersOnly) {
        throw AccessPolicyViolation(
            "bit operation in the atomic-register model");
      }
      if (w != 1) {
        throw AccessPolicyViolation("bit operation on a multi-bit register");
      }
      if (model_.has_value() && !model_->supports(req.bit_op)) {
        throw AccessPolicyViolation(std::string("operation ") +
                                    std::string(name(req.bit_op)) +
                                    " not in model " + model_->to_string());
      }
      a.bit_op = req.bit_op;
      const BitOpResult r = apply(req.bit_op, a.before != 0);
      a.after = r.new_value ? 1 : 0;
      if (r.returned.has_value()) {
        a.returned = *r.returned ? 1 : 0;
      }
      break;
    }
  }

  mem_.poke(req.reg, a.after);
  pr.naccesses += 1;
  // Fold the full observation into the process digest: what was done and
  // what came back. A deterministic coroutine's local state is a function
  // of its observation history, so equal digests mean equal local states.
  std::uint64_t h = pr.digest;
  h = fp_push(h, static_cast<std::uint64_t>(a.reg));
  h = fp_push(h, (static_cast<std::uint64_t>(a.kind) << 8) |
                     static_cast<std::uint64_t>(a.bit_op));
  h = fp_push(h, a.before);
  h = fp_push(h, a.after);
  h = fp_push(h, a.returned.has_value() ? fp_mix(*a.returned) | 1u : 0u);
  pr.digest = h;
  TraceEvent ev;
  ev.seq = next_seq_++;
  ev.pid = pid;
  ev.kind = TraceEvent::Kind::Access;
  ev.access = a;
  emit(ev);
  return a.returned.value_or(0);
}

void Sim::on_section_change(Pid pid, Section s) {
  Proc& pr = proc(pid);
  if (check_mutex_ && !quiet_replay_ && s == Section::Critical) {
    for (Pid q = 0; q < process_count(); ++q) {
      if (q != pid && proc(q).section == Section::Critical) {
        throw MutualExclusionViolation(
            "two processes in the critical section: " + pr.name + " and " +
            proc(q).name);
      }
    }
  }
  TraceEvent ev;
  ev.seq = next_seq_++;
  ev.pid = pid;
  ev.kind = TraceEvent::Kind::SectionChange;
  ev.from = pr.section;
  ev.to = s;
  pr.section = s;  // apply before emit: sinks observe post-event state
  emit(ev);
}

void Sim::on_output(Pid pid, int value) { proc(pid).output = value; }

SimCheckpoint Sim::checkpoint() const {
  SimCheckpoint cp;
  cp.schedule = sched_log_;
  cp.memory = mem_.snapshot();
  cp.memory_fingerprint = mem_.fingerprint();
  cp.next_seq = next_seq_;
  return cp;
}

std::unique_ptr<Sim> Sim::fork(const SimCheckpoint& cp,
                               const SimBuilder& rebuild) {
  if (!rebuild) {
    throw std::invalid_argument("Sim::fork needs a rebuild callback");
  }
  auto sim = std::make_unique<Sim>();
  rebuild(*sim);
  sim->quiet_replay_ = true;
  try {
    for (const SimCheckpoint::Unit& u : cp.schedule) {
      if (u.start_only) {
        sim->ensure_started(u.pid);
      } else {
        sim->step(u.pid);
      }
    }
  } catch (...) {
    sim->quiet_replay_ = false;
    throw;
  }
  sim->quiet_replay_ = false;
  const bool diverged =
      (cp.memory_fingerprint != 0 &&
       (sim->next_seq_ != cp.next_seq ||
        sim->mem_.fingerprint() != cp.memory_fingerprint)) ||
      (!cp.memory.empty() && sim->mem_.snapshot() != cp.memory);
  if (diverged) {
    throw std::logic_error(
        "Sim::fork: replay diverged from the checkpoint (non-deterministic "
        "SimBuilder?)");
  }
  return sim;
}

void Sim::record_terminal(Pid pid, TraceEvent::Kind kind) {
  Proc& pr = proc(pid);
  pr.digest = fp_push(pr.digest, kind == TraceEvent::Kind::Crash
                                     ? kDigestCrash
                                     : kDigestFinish);
  TraceEvent ev;
  ev.seq = next_seq_++;
  ev.pid = pid;
  ev.kind = kind;
  emit(ev);
}

}  // namespace cfc
