#include "sched/run.h"

#include <algorithm>

namespace cfc {

std::string_view name(Section s) {
  switch (s) {
    case Section::Remainder:
      return "remainder";
    case Section::Entry:
      return "entry";
    case Section::Critical:
      return "critical";
    case Section::Exit:
      return "exit";
    case Section::Working:
      return "working";
    case Section::Done:
      return "done";
  }
  return "unknown";
}

std::vector<Access> Trace::accesses_of(Pid pid) const {
  std::vector<Access> out;
  for (const TraceEvent& ev : events_) {
    if (ev.kind == TraceEvent::Kind::Access && ev.pid == pid) {
      out.push_back(ev.access);
    }
  }
  return out;
}

std::vector<Access> Trace::accesses() const {
  std::vector<Access> out;
  for (const TraceEvent& ev : events_) {
    if (ev.kind == TraceEvent::Kind::Access) {
      out.push_back(ev.access);
    }
  }
  return out;
}

std::size_t Trace::access_count() const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(), [](const TraceEvent& ev) {
        return ev.kind == TraceEvent::Kind::Access;
      }));
}

int Trace::max_width_accessed(Pid pid) const {
  int w = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.kind == TraceEvent::Kind::Access && ev.pid == pid) {
      w = std::max(w, ev.access.width);
    }
  }
  return w;
}

int Trace::max_width_accessed() const {
  int w = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.kind == TraceEvent::Kind::Access) {
      w = std::max(w, ev.access.width);
    }
  }
  return w;
}

}  // namespace cfc
