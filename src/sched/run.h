#ifndef CFC_SCHED_RUN_H
#define CFC_SCHED_RUN_H

#include <string_view>
#include <vector>

#include "memory/access.h"
#include "memory/types.h"

namespace cfc {

/// Protocol section a process is in. For mutual exclusion the paper's
/// regions are Remainder / Entry / Critical / Exit; one-shot tasks (naming,
/// contention detection) use Working / Done. A process that has not started
/// is treated as being in its remainder region by the contention-free
/// measurement windows.
enum class Section : std::uint8_t {
  Remainder,
  Entry,
  Critical,
  Exit,
  Working,
  Done,
};

[[nodiscard]] std::string_view name(Section s);

/// One entry in a run's trace. Shared-memory accesses are the paper's
/// counted events; section changes and terminal events are zero-cost
/// bookkeeping that lets the measurement code reconstruct, for every event
/// index, which section every process is in (the "state" s_i of the run).
struct TraceEvent {
  enum class Kind : std::uint8_t {
    Access,         ///< a counted shared-memory access
    SectionChange,  ///< process moved between protocol sections
    Crash,          ///< process crashed (stopping failure, Section 3)
    Finish,         ///< process terminated normally
  };

  Seq seq = 0;
  Pid pid = -1;
  Kind kind = Kind::Access;
  Access access;              ///< valid iff kind == Access
  Section from = Section::Remainder;  ///< valid iff kind == SectionChange
  Section to = Section::Remainder;    ///< valid iff kind == SectionChange
};

/// Summary of one *scheduler unit* — everything a single step()/
/// ensure_started() call emitted, compressed to what the partial-order
/// reduction's dependence relation (por/dependence.h) needs. A unit is the
/// atomic access plus the free local run up to the next access request;
/// section changes emitted during that local run belong to the unit, which
/// is exactly the "section-change-adjacent" property the measurement-aware
/// dependence relation keys on.
struct StepSummary {
  Pid pid = -1;
  /// Performed a counted shared-memory access (false: yield / crash /
  /// bare body start).
  bool accessed = false;
  RegId reg = -1;     ///< valid iff accessed
  bool wrote = false; ///< the access can modify the register (is_write)
  /// >= 1 SectionChange event was emitted during the unit (by the body's
  /// local run before or after the access).
  bool section_changed = false;
  /// The injected stopping failure fired instead of the access.
  bool crashed = false;
  /// The unit ran the body's start-up prologue (NotStarted -> Runnable).
  bool started = false;
};

/// The recorded run sigma = s0 -e0-> s1 -e1-> ... . States are implicit:
/// the measurement code replays section changes to recover them.
class Trace {
 public:
  void push(TraceEvent ev) { events_.push_back(ev); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Next sequence number to assign.
  [[nodiscard]] Seq next_seq() const { return static_cast<Seq>(events_.size()); }

  /// All counted accesses of one process, in order.
  [[nodiscard]] std::vector<Access> accesses_of(Pid pid) const;

  /// All counted accesses (any process), in order.
  [[nodiscard]] std::vector<Access> accesses() const;

  /// Total number of counted accesses.
  [[nodiscard]] std::size_t access_count() const;

  /// Widest register touched by `pid` (the algorithm's measured atomicity
  /// from this process's point of view); 0 if it made no access.
  [[nodiscard]] int max_width_accessed(Pid pid) const;

  /// Widest register touched by any process.
  [[nodiscard]] int max_width_accessed() const;

  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace cfc

#endif  // CFC_SCHED_RUN_H
