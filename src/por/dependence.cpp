#include "por/dependence.h"

#include "sched/sim.h"

namespace cfc {

NextStep next_step_of(const Sim& sim, Pid pid) {
  NextStep info;
  if (sim.status(pid) != ProcStatus::Runnable || sim.crash_pending(pid)) {
    return info;  // unknown next unit: dependent with everything
  }
  const std::optional<PendingAccess> pa = sim.pending(pid);
  if (!pa.has_value()) {
    return info;
  }
  info.known = true;
  info.yield = pa->local_yield;
  if (!info.yield) {
    info.reg = pa->reg;
    // One counted unit is one atomic access: everything but a plain
    // register read can modify its target (bit ops are conservatively
    // writes unless BitOp::Read, mirroring Access::is_write()).
    info.wrote = !(pa->kind == AccessKind::Read ||
                   (pa->kind == AccessKind::Bit && pa->bit_op == BitOp::Read));
  }
  return info;
}

bool dependent(const StepSummary& a, const StepSummary& b) {
  if (a.pid == b.pid) {
    return true;  // program order
  }
  if (a.section_changed && b.section_changed) {
    return true;  // both touch the section table the window predicates read
  }
  if (a.accessed && b.accessed && a.reg == b.reg && (a.wrote || b.wrote)) {
    return true;  // register conflict
  }
  return false;
}

bool dependent(const StepSummary& taken, const NextStep& pend) {
  if (!pend.known) {
    return true;
  }
  if (taken.section_changed) {
    // The pending unit might change sections too once it runs; assume the
    // worst and keep the pair ordered.
    return true;
  }
  if (taken.accessed && !pend.yield && taken.reg == pend.reg &&
      (taken.wrote || pend.wrote)) {
    return true;
  }
  return false;
}

bool lite_independent(const NextStep& a, const NextStep& b) {
  if (!a.known || !b.known) {
    return false;
  }
  if (a.yield || b.yield) {
    return true;
  }
  return a.reg != b.reg;
}

}  // namespace cfc
