#include "por/dependence.h"

#include "sa/static_summary.h"
#include "sched/sim.h"

namespace cfc {

NextStep next_step_of(const Sim& sim, Pid pid) {
  NextStep info;
  if (sim.status(pid) != ProcStatus::Runnable || sim.crash_pending(pid)) {
    return info;  // unknown next unit: dependent with everything
  }
  const std::optional<PendingAccess> pa = sim.pending(pid);
  if (!pa.has_value()) {
    return info;
  }
  info.known = true;
  info.yield = pa->local_yield;
  if (!info.yield) {
    info.reg = pa->reg;
    // One counted unit is one atomic access: everything but a plain
    // register read can modify its target (bit ops are conservatively
    // writes unless BitOp::Read, mirroring Access::is_write()).
    info.wrote = !(pa->kind == AccessKind::Read ||
                   (pa->kind == AccessKind::Bit && pa->bit_op == BitOp::Read));
  }
  return info;
}

NextStep next_step_of(const Sim& sim, Pid pid, const StaticModel* statics) {
  NextStep info = next_step_of(sim, pid);
  if (statics == nullptr) {
    return info;
  }
  if (info.known) {
    // R3: a pending plain Write on a register whose collected write units
    // all ran section-quiet cannot change sections. Reads and bit ops are
    // never refined — their continuations branch on the returned value,
    // which the pass cannot enumerate (see the header's soundness note).
    if (!info.yield) {
      const std::optional<PendingAccess> pa = sim.pending(pid);
      if (pa.has_value() && pa->kind == AccessKind::Write &&
          !statics->write_may_change_section(info.reg)) {
        info.may_change_section = false;
      }
    }
    return info;
  }
  if (sim.status(pid) == ProcStatus::Runnable && sim.crash_pending(pid)) {
    // R2: the armed crash unit emits only the Crash terminal event — no
    // access, no section change; it commutes with every other unit.
    info.known = true;
    info.yield = true;
    info.may_change_section = false;
    info.statically_known = true;
    return info;
  }
  if (sim.status(pid) == ProcStatus::NotStarted) {
    const FirstUnit& fu = statics->first_unit(pid);
    if (!fu.known || !fu.prologue_quiet) {
      // R1 requires a section-quiet prologue. A prologue that changes
      // sections (the mutex session driver entering Entry) is
      // observationally dependent with every concurrently measured step —
      // its section change flips that step's window cleanliness when the
      // two swap — and the register+section relation cannot express that
      // on the pending side. Keep the unit unknown (dependent with
      // everything), exactly like the dynamic capture.
      return info;
    }
    if (sim.crash_pending(pid)) {
      // crash_after = 0: the unit is the (provably section-quiet)
      // prologue followed by the immediate crash — no shared access, no
      // section change.
      info.known = true;
      info.yield = true;
      info.may_change_section = false;
      info.statically_known = true;
      return info;
    }
    // R1: quiet prologue + statically recorded first access. The access's
    // continuation may still change sections, so may_change_section stays
    // conservative — the refined pend carries exactly the information
    // quality of a dynamic Runnable capture.
    info.known = true;
    info.yield = fu.yield;
    info.reg = fu.reg;
    info.wrote = fu.wrote;
    info.statically_known = true;
  }
  return info;
}

bool dependent(const StepSummary& a, const StepSummary& b) {
  if (a.pid == b.pid) {
    return true;  // program order
  }
  if (a.section_changed && b.section_changed) {
    return true;  // both touch the section table the window predicates read
  }
  if (a.accessed && b.accessed && a.reg == b.reg && (a.wrote || b.wrote)) {
    return true;  // register conflict
  }
  return false;
}

bool dependent(const StepSummary& taken, const NextStep& pend) {
  return dependent(taken, pend, nullptr);
}

bool dependent(const StepSummary& taken, const NextStep& pend,
               std::uint64_t* refined_pairs) {
  if (!pend.known) {
    return true;
  }
  if (taken.section_changed && pend.may_change_section) {
    // The pending unit might change sections too once it runs; assume the
    // worst and keep the pair ordered.
    return true;
  }
  if (taken.accessed && !pend.yield && taken.reg == pend.reg &&
      (taken.wrote || pend.wrote)) {
    return true;
  }
  // Independent. The unrefined relation would have answered dependent when
  // the pend was synthesized statically (it would be unknown), or when the
  // executed unit changed sections (only a static section-quiet fact lets
  // the pair through in that case) — those are the refined pairs.
  if (refined_pairs != nullptr &&
      (pend.statically_known || taken.section_changed)) {
    ++*refined_pairs;
  }
  return false;
}

bool lite_independent(const NextStep& a, const NextStep& b) {
  return lite_independent(a, b, nullptr);
}

bool lite_independent(const NextStep& a, const NextStep& b,
                      std::uint64_t* refined_pairs) {
  if (!a.known || !b.known) {
    return false;
  }
  const bool independent = a.yield || b.yield || a.reg != b.reg;
  // The register-only relation refines exactly when a statically
  // synthesized pend stands in for what the dynamic capture reports as
  // unknown (and hence never-independent).
  if (independent && refined_pairs != nullptr &&
      (a.statically_known || b.statically_known)) {
    ++*refined_pairs;
  }
  return independent;
}

}  // namespace cfc
