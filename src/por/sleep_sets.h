#ifndef CFC_POR_SLEEP_SETS_H
#define CFC_POR_SLEEP_SETS_H

#include <cstdint>
#include <span>

#include "por/dependence.h"

namespace cfc {

/// Sleep sets are process bitmasks: plenty for every algorithm in the
/// registry and checked by the Explorer constructor.
inline constexpr int kMaxPorProcs = 32;

/// A sleep set: the processes whose next unit, taken from the current
/// state, starts only schedules that are reorderings of schedules already
/// explored through an earlier sibling (Godefroid's sleep sets). The
/// explorer folds the raw mask into its visited-state key, so the
/// representation stays a transparent 32-bit mask with set-algebra helpers.
class SleepSet {
 public:
  constexpr SleepSet() = default;
  constexpr explicit SleepSet(std::uint32_t mask) : mask_(mask) {}

  [[nodiscard]] constexpr bool contains(Pid p) const {
    return ((mask_ >> static_cast<unsigned>(p)) & 1u) != 0;
  }
  constexpr void insert(Pid p) { mask_ |= 1u << static_cast<unsigned>(p); }
  constexpr void erase(Pid p) { mask_ &= ~(1u << static_cast<unsigned>(p)); }
  [[nodiscard]] constexpr bool empty() const { return mask_ == 0; }
  [[nodiscard]] constexpr std::uint32_t mask() const { return mask_; }

  friend constexpr bool operator==(SleepSet a, SleepSet b) {
    return a.mask_ == b.mask_;
  }

 private:
  std::uint32_t mask_ = 0;
};

/// Full sleep-set transfer (the measurement-aware relation): of the
/// parent's sleepers and earlier-explored siblings (`candidates`), the
/// child keeps asleep exactly those whose captured next step is
/// independent of the unit just executed (`taken`) — a dependent step
/// wakes the sleeper. `pends` holds every process's NextStep captured at
/// the parent node, indexed by pid; the executing process itself must not
/// be in `candidates`.
/// `refined_pairs`, when non-null, accumulates the statically refined
/// pairs the transfer kept asleep (por/dependence.h counter overloads).
[[nodiscard]] SleepSet transfer_sleep(SleepSet candidates,
                                      const StepSummary& taken,
                                      std::span<const NextStep> pends,
                                      std::uint64_t* refined_pairs = nullptr);

/// PR 4's sleep-set-lite transfer, kept verbatim for the `sleep-lite`
/// compatibility policy: both sides are the *pending* captures from the
/// parent node, compared under the register-only lite_independent
/// relation.
[[nodiscard]] SleepSet transfer_sleep_lite(
    SleepSet candidates, const NextStep& taken,
    std::span<const NextStep> pends, std::uint64_t* refined_pairs = nullptr);

}  // namespace cfc

#endif  // CFC_POR_SLEEP_SETS_H
