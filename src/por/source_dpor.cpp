#include "por/source_dpor.h"

#include <algorithm>
#include <stdexcept>

namespace cfc {

SourceDpor::SourceDpor(int nprocs) : nprocs_(nprocs) {
  if (nprocs < 1 || nprocs > kMaxPorProcs) {
    throw std::invalid_argument(
        "SourceDpor: nprocs must be in [1, 32] (process-mask sleep sets)");
  }
  per_pid_count_.assign(static_cast<std::size_t>(nprocs), 0);
}

void SourceDpor::push_step(int node_depth, const StepSummary& step,
                           std::span<std::uint32_t> backtrack_by_depth) {
  // --- 1. Happens-before clock of the new unit e, one backward walk.
  // Merging the clocks of dependent events as the walk meets them makes
  // "already in the clock" exactly "reachable through a chain of later
  // dependences": a dependent event NOT yet in the clock is concurrent
  // with e — a race (skipping program-order pairs, which the most recent
  // same-pid event covers transitively).
  Event e;
  e.step = step;
  e.node_depth = node_depth;
  e.self_index = per_pid_count_[static_cast<std::size_t>(step.pid)];
  e.clock.fill(0);
  races_scratch_.clear();
  for (std::size_t i = trace_.size(); i-- > 0;) {
    const Event& d = trace_[i];
    if (!dependent(d.step, e.step)) {
      continue;
    }
    if (in_clock(e.clock, i)) {
      continue;  // already ordered before e through a later dependence
    }
    if (d.step.pid != e.step.pid) {
      races_scratch_.push_back(i);
      ++stats_.races_detected;
    }
    merge_clock(e.clock, d);
  }
  e.clock[static_cast<std::size_t>(step.pid)] =
      static_cast<std::uint16_t>(e.self_index + 1);
  per_pid_count_[static_cast<std::size_t>(step.pid)] += 1;
  trace_.push_back(e);

  // --- 2. Source-set backtrack insertion per race, most recent race
  // first (the walk's order; any fixed order is sound and this one is
  // deterministic). Each resolution sees the previous insertions.
  for (const std::size_t d_index : races_scratch_) {
    apply_race(d_index, step.pid, /*virtual_pend=*/nullptr,
               backtrack_by_depth);
  }
}

void SourceDpor::note_cut(std::uint32_t enabled_mask,
                          std::span<const NextStep> pends,
                          std::span<std::uint32_t> backtrack_by_depth) {
  const auto insert = [&](int node_depth, Pid q) {
    const std::uint32_t mask =
        backtrack_by_depth[static_cast<std::size_t>(node_depth)];
    if (((mask >> static_cast<unsigned>(q)) & 1u) == 0) {
      backtrack_by_depth[static_cast<std::size_t>(node_depth)] |=
          1u << static_cast<unsigned>(q);
      ++stats_.backtrack_points;
    }
  };

  // --- 1. Pending-placement buckets, per enabled process q. Equivalent
  // traces carry the same unit multiset, so a class that schedules q's
  // next unit before the horizon has no representative in which q slips
  // past it: the placement itself decides which tail unit the bound
  // truncates. Placements of q's next unit between two consecutive path
  // units DEPENDENT with it are equivalent (each neighbouring swap
  // commutes), so one placement per bucket covers that space: insert q at
  // the node of every path unit dependent with its pending (the placement
  // just before the bucket boundary) and at the deepest node (the final
  // bucket). No chain or source-set suppression applies — each bucket
  // needs its own representative. Placements before q's own last unit are
  // invalid (program order), so that walk stops there; deeper recursion
  // re-runs this at the reversals' own cut leaves, which covers q's
  // subsequent units.
  for (Pid q = 0; q < static_cast<Pid>(pends.size()); ++q) {
    if (((enabled_mask >> static_cast<unsigned>(q)) & 1u) == 0) {
      continue;
    }
    const NextStep& pend = pends[static_cast<std::size_t>(q)];
    for (std::size_t i = trace_.size(); i-- > 0;) {
      const Event& d = trace_[i];
      if (d.step.pid == q) {
        break;
      }
      if (i + 1 == trace_.size() ||
          dependent(d.step, pend, &stats_.static_refined_pairs)) {
        insert(d.node_depth, q);
      }
    }
  }

  // --- 2. Droppable-unit placements. A path unit u that commutes with its
  // ENTIRE suffix can be pushed to the very end of an equivalent
  // linearization — where the horizon truncates *it* instead of the
  // path's last unit, making room for one more unit of another process q.
  // Those classes have a different unit multiset than every reordering of
  // the path (u traded for the extra unit), so the bucket rule above does
  // not cover them: their representatives branch q exactly at u's node.
  // The displacement can change an observable value only when
  //
  //   * u carries no access at all (a crash unit, a pure local yield):
  //     its slot is measurement-free, and trading it for a real step
  //     strictly extends some process's run — the canonical case is a
  //     crash unit sitting between another process's spin steps; or
  //   * q's pending conflicts with u: whether q's extra step observes u's
  //     write (or overwrites the value u read past) depends on the trade.
  //
  // When u carries an access and is independent of q's pending as well,
  // the traded class is value-covered by the bucket placements: q's units
  // observe identical values with or without u, and u's own process only
  // loses its final step (every objective is monotone along a run). The
  // quadratic walk is bounded by the depth budget (tiny) and runs only at
  // cut points.
  for (std::size_t i = trace_.size(); i-- > 0;) {
    const Event& u = trace_[i];
    bool droppable = true;
    for (std::size_t j = i + 1; j < trace_.size(); ++j) {
      if (dependent(u.step, trace_[j].step)) {
        droppable = false;
        break;
      }
    }
    if (!droppable) {
      continue;
    }
    for (Pid q = 0; q < static_cast<Pid>(pends.size()); ++q) {
      if (q != u.step.pid &&
          ((enabled_mask >> static_cast<unsigned>(q)) & 1u) != 0 &&
          (!u.step.accessed ||
           dependent(u.step, pends[static_cast<std::size_t>(q)],
                     &stats_.static_refined_pairs))) {
        insert(u.node_depth, q);
      }
    }
  }
}

void SourceDpor::merge_clock(Clock& into, const Event& d) const {
  for (int p = 0; p < nprocs_; ++p) {
    into[static_cast<std::size_t>(p)] =
        std::max(into[static_cast<std::size_t>(p)],
                 d.clock[static_cast<std::size_t>(p)]);
  }
  into[static_cast<std::size_t>(d.step.pid)] = std::max(
      into[static_cast<std::size_t>(d.step.pid)],
      static_cast<std::uint16_t>(d.self_index + 1));
}

void SourceDpor::apply_race(std::size_t d_index, Pid q,
                            const NextStep* virtual_pend,
                            std::span<std::uint32_t> backtrack_by_depth) {
  const int target = trace_[d_index].node_depth;
  const std::uint32_t mask =
      backtrack_by_depth[static_cast<std::size_t>(target)];
  const Pid chosen = choose_initial(d_index, q, virtual_pend, mask);
  if (chosen >= 0) {
    backtrack_by_depth[static_cast<std::size_t>(target)] |=
        1u << static_cast<unsigned>(chosen);
    ++stats_.backtrack_points;
  }
}

Pid SourceDpor::choose_initial(std::size_t d_index, Pid q,
                               const NextStep* virtual_pend,
                               std::uint32_t backtrack_mask) {
  const Event& d = trace_[d_index];
  // For a real race, e = trace_.back() stands as v's final element; for a
  // virtual (cut-point) race the final element is q's pending unit, which
  // is not in the trace.
  const std::size_t v_end =
      virtual_pend == nullptr ? trace_.size() - 1 : trace_.size();

  // v = notdep(d, E).q: the units after d that do NOT happen-after d, in
  // trace order, then the racing process q's unit itself (which is by
  // construction dependent on d, so it is appended explicitly).
  v_scratch_.clear();
  for (std::size_t j = d_index + 1; j < v_end; ++j) {
    const bool after_d =
        trace_[j].clock[static_cast<std::size_t>(d.step.pid)] >
        d.self_index;
    if (!after_d) {
      v_scratch_.push_back(j);
    }
  }

  // I(v): processes whose first unit in v has no dependence predecessor
  // inside v. The first element of v is always an initial, so I(v) is
  // never empty.
  std::uint32_t initials = 0;
  Pid first_pid = -1;
  for (std::size_t a = 0; a < v_scratch_.size(); ++a) {
    const Event& w = trace_[v_scratch_[a]];
    if (((initials >> static_cast<unsigned>(w.step.pid)) & 1u) != 0) {
      continue;  // already initial through its first unit
    }
    bool initial = true;
    for (std::size_t b = 0; b < a; ++b) {
      if (dependent(trace_[v_scratch_[b]].step, w.step)) {
        initial = false;
        break;
      }
    }
    if (initial) {
      initials |= 1u << static_cast<unsigned>(w.step.pid);
      if (first_pid < 0) {
        first_pid = w.step.pid;
      }
    }
  }
  // The final element: q's unit (real or virtual). Initial iff no unit of
  // v precedes it dependently. (q has no earlier unit in v: its prior
  // units happen-after d only when... they never are in v for a real race
  // — see the race definition — and a virtual q contributes no units.)
  if (((initials >> static_cast<unsigned>(q)) & 1u) == 0) {
    bool initial = true;
    for (const std::size_t j : v_scratch_) {
      const bool dep =
          virtual_pend == nullptr
              ? dependent(trace_[j].step, trace_[v_end].step)
              : dependent(trace_[j].step, *virtual_pend,
                          &stats_.static_refined_pairs);
      if (dep) {
        initial = false;
        break;
      }
    }
    if (initial) {
      initials |= 1u << static_cast<unsigned>(q);
      if (first_pid < 0) {
        first_pid = q;
      }
    }
  }

  if ((initials & backtrack_mask) != 0) {
    return -1;  // the race's reversal is already scheduled at d's node
  }
  if (((initials >> static_cast<unsigned>(q)) & 1u) != 0) {
    return q;
  }
  return first_pid;
}

void SourceDpor::pop_to(std::size_t len) {
  while (trace_.size() > len) {
    per_pid_count_[static_cast<std::size_t>(trace_.back().step.pid)] -= 1;
    trace_.pop_back();
  }
}

void SourceDpor::clear() {
  trace_.clear();
  std::fill(per_pid_count_.begin(), per_pid_count_.end(),
            static_cast<std::uint16_t>(0));
  stats_ = Stats{};
}

}  // namespace cfc
