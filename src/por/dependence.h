#ifndef CFC_POR_DEPENDENCE_H
#define CFC_POR_DEPENDENCE_H

#include "memory/types.h"
#include "sched/run.h"

namespace cfc {

class Sim;

/// --- The measurement-aware dependence relation. ---
///
/// Two scheduler units *commute* (are independent) when swapping them as
/// adjacent steps of a run changes neither the shared-memory state nor any
/// value the measurement objectives can ever read. The explorer's certified
/// searches maximize the streaming window objectives of
/// core/streaming_measures.h (cf-session / clean-entry / exit maxima and
/// whole-run totals), so independence here must make those objectives
/// *trace-invariant*: equal on every linearization of the same
/// Mazurkiewicz trace. The relation below guarantees that by construction:
///
///  * Register conflict. Two accesses to the same register with a write on
///    either side do not commute: the read's returned value (and hence the
///    process's whole future) or the final register value changes.
///    Disjoint-register accesses, and same-register read/read pairs,
///    commute in memory; they also commute in the accumulator, because an
///    Access event only updates its own process's totals and open-window
///    counts and never reads the section table.
///
///  * Section-change adjacency. Every window predicate is driven by
///    SectionChange events: window opens/closes fire on a process's own
///    transitions, and the clean flags read the *global* section table
///    (others_in_remainder, nobody_in_cs_or_exit). Two units that both
///    emitted section changes therefore do not commute — swapping them
///    reorders section-table reads against section-table writes and can
///    flip a window's cleanliness or its open/close interleaving. A unit
///    that emitted NO section change, however, commutes with any section
///    change: an Access event neither reads nor writes the section table,
///    and a SectionChange event neither touches register state nor any
///    other process's window accumulators. Hence the rule: two units are
///    dependent when BOTH are section-change-adjacent; a section-quiet
///    unit is dependent only through a register conflict.
///
///  * Unknown next steps. A process that has not started, or whose next
///    step fires the injected stopping failure, has an unknowable next
///    unit: it is conservatively dependent with everything.
///
/// The mutual-exclusion invariant is also trace-invariant under this
/// relation: a violation (two processes simultaneously in Critical) is a
/// property of the section-event subsequence, whose internal order the
/// relation never commutes — so every linearization of a violating trace
/// violates, and excluding the class exactly mirrors the unreduced
/// explorer's exclusion of each violating schedule.
///
/// Executed units carry full information (StepSummary, captured from
/// Sim::last_step_summary()); a *pending* unit is known only up to its
/// posted access (NextStep below) — whether executing it would emit a
/// section change is unknowable in advance, so the executed-vs-pending
/// form conservatively assumes the pending side may change sections.

/// What is known about a process's NEXT scheduler unit before it runs:
/// the posted pending access, or nothing (unstarted / crash-armed).
struct NextStep {
  bool known = false;  ///< started, not crash-armed, suspended at an access
  bool yield = false;  ///< a local step: posts no shared-memory access
  RegId reg = -1;      ///< valid iff known && !yield
  bool wrote = false;  ///< the posted access can modify the register
};

/// Captures `pid`'s NextStep from a live simulation (unknown when the
/// process is not runnable, not yet started, or crash-armed).
[[nodiscard]] NextStep next_step_of(const Sim& sim, Pid pid);

/// Executed-vs-executed dependence (the race detector's relation): full
/// information on both sides.
[[nodiscard]] bool dependent(const StepSummary& a, const StepSummary& b);

/// Executed-vs-pending dependence (the sleep-set transfer relation): the
/// pending side's section adjacency is unknowable, so this is
/// `dependent(taken, pend-with-worst-case-adjacency)` — dependent whenever
/// the executed unit changed sections, or on a register conflict.
[[nodiscard]] bool dependent(const StepSummary& taken, const NextStep& pend);

/// PR 4's sleep-set-lite independence over two pending steps, kept verbatim
/// for the `sleep-lite` compatibility policy: local yields are independent
/// of everything and any two accesses of distinct registers commute —
/// register-only, NOT measurement-aware (window objectives may observe the
/// section timing it commutes), which is why sleep-lite stays off for
/// certified window searches.
[[nodiscard]] bool lite_independent(const NextStep& a, const NextStep& b);

}  // namespace cfc

#endif  // CFC_POR_DEPENDENCE_H
