#ifndef CFC_POR_DEPENDENCE_H
#define CFC_POR_DEPENDENCE_H

#include <cstdint>

#include "memory/types.h"
#include "sched/run.h"

namespace cfc {

class Sim;
class StaticModel;

/// --- The measurement-aware dependence relation. ---
///
/// Two scheduler units *commute* (are independent) when swapping them as
/// adjacent steps of a run changes neither the shared-memory state nor any
/// value the measurement objectives can ever read. The explorer's certified
/// searches maximize the streaming window objectives of
/// core/streaming_measures.h (cf-session / clean-entry / exit maxima and
/// whole-run totals), so independence here must make those objectives
/// *trace-invariant*: equal on every linearization of the same
/// Mazurkiewicz trace. The relation below guarantees that by construction:
///
///  * Register conflict. Two accesses to the same register with a write on
///    either side do not commute: the read's returned value (and hence the
///    process's whole future) or the final register value changes.
///    Disjoint-register accesses, and same-register read/read pairs,
///    commute in memory; they also commute in the accumulator, because an
///    Access event only updates its own process's totals and open-window
///    counts and never reads the section table.
///
///  * Section-change adjacency. Every window predicate is driven by
///    SectionChange events: window opens/closes fire on a process's own
///    transitions, and the clean flags read the *global* section table
///    (others_in_remainder, nobody_in_cs_or_exit). Two units that both
///    emitted section changes therefore do not commute — swapping them
///    reorders section-table reads against section-table writes and can
///    flip a window's cleanliness or its open/close interleaving. A unit
///    that emitted NO section change, however, commutes with any section
///    change: an Access event neither reads nor writes the section table,
///    and a SectionChange event neither touches register state nor any
///    other process's window accumulators. Hence the rule: two units are
///    dependent when BOTH are section-change-adjacent; a section-quiet
///    unit is dependent only through a register conflict.
///
///  * Unknown next steps. A process that has not started, or whose next
///    step fires the injected stopping failure, has an unknowable next
///    unit: it is conservatively dependent with everything.
///
/// The mutual-exclusion invariant is also trace-invariant under this
/// relation: a violation (two processes simultaneously in Critical) is a
/// property of the section-event subsequence, whose internal order the
/// relation never commutes — so every linearization of a violating trace
/// violates, and excluding the class exactly mirrors the unreduced
/// explorer's exclusion of each violating schedule.
///
/// Executed units carry full information (StepSummary, captured from
/// Sim::last_step_summary()); a *pending* unit is known only up to its
/// posted access (NextStep below) — whether executing it would emit a
/// section change is unknowable in advance, so the executed-vs-pending
/// form conservatively assumes the pending side may change sections.
///
/// --- Static refinement (src/sa/). ---
///
/// The sa/ footprint pass dry-runs the configured model ahead of the
/// search and records per-register / per-pid facts the search can trust.
/// next_step_of's StaticModel overload folds three refinements into the
/// NextStep it returns, so every consumer of the pending-side relations
/// (sleep transfer, cut-point placement, initial-set selection) refines
/// uniformly through the field values alone:
///
///  * R1 — unstarted first units with a section-quiet prologue. A
///    NotStarted process's first scheduler unit is its deterministic
///    prologue (which performs no shared access — the prologue ends
///    exactly at the first access request) plus that first access. The
///    prologue's code path cannot depend on any shared value, so the
///    statically recorded first access is exact, and the otherwise-
///    unknown pend becomes a known access pend. The refinement applies
///    ONLY when the prologue is provably section-quiet
///    (FirstUnit::prologue_quiet): a prologue that changes sections (the
///    mutex session driver entering Entry) is observationally dependent
///    with every concurrently measured step — swapping the two flips the
///    measured step's window cleanliness — and the pending side of this
///    relation has no vocabulary for "changes sections BEFORE its
///    access". With a quiet prologue the refined pend carries exactly
///    the information a dynamic Runnable capture would (reg/wrote exact,
///    continuation section changes unknowable, may_change_section stays
///    true), so it inherits the certified baseline's soundness. The
///    crash_after = 0 variant (quiet prologue + immediate crash) is
///    additionally marked never-change-section: the unit provably emits
///    nothing but the Crash terminal.
///
///  * R2 — armed crash units. A runnable process whose injected crash
///    threshold has been reached executes, as its next unit, only the
///    Crash terminal event: no access is performed, no section change is
///    emitted, and the section table is untouched. The unit commutes with
///    everything (program order aside): a known local yield that never
///    changes sections.
///
///  * R3 — section-quiet plain writes. When every write unit the pass
///    collected on a register ran section-quiet, a pending plain Write on
///    that register is marked never-change-section. A write unit's
///    continuation is value-independent — the write's local code path is
///    fixed at post time — so per program point the fact is stable; the
///    pass's coverage of contended-only write sites is what the
///    over-approximation suite and the bit-identity differential gate.
///    Reads are NEVER refined this way: a read's continuation branches on
///    the value it returns, and solo/perturbed dry-runs cannot enumerate
///    every contended value (e.g. a turn-read that only enters the
///    critical section under contention). Bit ops are excluded for the
///    same reason (their continuations branch on the returned bit).
///
/// The counter overloads report each pair the refinement actually flips —
/// refined-independent where the unrefined relation would have answered
/// dependent — into `*refined_pairs` (the static_refined_pairs counter).

/// What is known about a process's NEXT scheduler unit before it runs:
/// the posted pending access, or nothing (unstarted / crash-armed).
struct NextStep {
  bool known = false;  ///< started, not crash-armed, suspended at an access
  bool yield = false;  ///< a local step: posts no shared-memory access
  RegId reg = -1;      ///< valid iff known && !yield
  bool wrote = false;  ///< the posted access can modify the register
  /// Whether executing the unit may emit a section change. True unless a
  /// static fact (R2/R3 above) proves the unit section-quiet.
  bool may_change_section = true;
  /// The pend was synthesized from static facts (R1/R2): without the
  /// StaticModel this process's next unit would be unknown. Drives the
  /// refined-pair counters; never consulted by the relation itself.
  bool statically_known = false;
};

/// Captures `pid`'s NextStep from a live simulation (unknown when the
/// process is not runnable, not yet started, or crash-armed).
[[nodiscard]] NextStep next_step_of(const Sim& sim, Pid pid);

/// The statically refined capture: the dynamic NextStep above, plus the
/// R1/R2/R3 refinements when `statics` is non-null (nullptr reproduces
/// the dynamic capture exactly).
[[nodiscard]] NextStep next_step_of(const Sim& sim, Pid pid,
                                    const StaticModel* statics);

/// Executed-vs-executed dependence (the race detector's relation): full
/// information on both sides.
[[nodiscard]] bool dependent(const StepSummary& a, const StepSummary& b);

/// Executed-vs-pending dependence (the sleep-set transfer relation): the
/// pending side's section adjacency is unknowable in general, so this is
/// `dependent(taken, pend-with-worst-case-adjacency)` — dependent whenever
/// the executed unit changed sections (unless the pend is statically
/// section-quiet), or on a register conflict.
[[nodiscard]] bool dependent(const StepSummary& taken, const NextStep& pend);

/// As above; additionally bumps `*refined_pairs` (when non-null) for every
/// independent answer the unrefined relation would have called dependent.
[[nodiscard]] bool dependent(const StepSummary& taken, const NextStep& pend,
                             std::uint64_t* refined_pairs);

/// PR 4's sleep-set-lite independence over two pending steps, kept verbatim
/// for the `sleep-lite` compatibility policy: local yields are independent
/// of everything and any two accesses of distinct registers commute —
/// register-only, NOT measurement-aware (window objectives may observe the
/// section timing it commutes), which is why sleep-lite stays off for
/// certified window searches.
[[nodiscard]] bool lite_independent(const NextStep& a, const NextStep& b);

/// As above, with the refined-pair counter (statically synthesized pends
/// can make pairs independent the dynamic capture could not know).
[[nodiscard]] bool lite_independent(const NextStep& a, const NextStep& b,
                                    std::uint64_t* refined_pairs);

}  // namespace cfc

#endif  // CFC_POR_DEPENDENCE_H
