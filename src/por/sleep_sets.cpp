#include "por/sleep_sets.h"

namespace cfc {

SleepSet transfer_sleep(SleepSet candidates, const StepSummary& taken,
                        std::span<const NextStep> pends,
                        std::uint64_t* refined_pairs) {
  SleepSet child;
  for (Pid q = 0; q < static_cast<Pid>(pends.size()); ++q) {
    if (candidates.contains(q) &&
        !dependent(taken, pends[static_cast<std::size_t>(q)],
                   refined_pairs)) {
      child.insert(q);
    }
  }
  return child;
}

SleepSet transfer_sleep_lite(SleepSet candidates, const NextStep& taken,
                             std::span<const NextStep> pends,
                             std::uint64_t* refined_pairs) {
  SleepSet child;
  for (Pid q = 0; q < static_cast<Pid>(pends.size()); ++q) {
    if (candidates.contains(q) &&
        lite_independent(pends[static_cast<std::size_t>(q)], taken,
                         refined_pairs)) {
      child.insert(q);
    }
  }
  return child;
}

}  // namespace cfc
