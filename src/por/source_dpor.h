#ifndef CFC_POR_SOURCE_DPOR_H
#define CFC_POR_SOURCE_DPOR_H

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "por/dependence.h"
#include "por/sleep_sets.h"

namespace cfc {

/// The source-DPOR engine behind ReductionPolicy::SourceDpor (Abdulla,
/// Aronis, Jonsson, Sagonas, POPL'14 — source sets without wakeup trees):
/// it watches the explorer's *current* execution path, detects races
/// between the newest unit and earlier units under the measurement-aware
/// dependence relation (por/dependence.h), and inserts, per race, a
/// backtrack point at the ancestor node that executed the raced-with unit,
/// so the reversal of the race is eventually explored.
///
/// Mechanics. The engine keeps one entry per executed unit of the current
/// path: its StepSummary, the depth of the DFS node it was taken from, and
/// its happens-before vector clock (clock[p] = how many of p's units
/// happen-before-or-equal this one; happens-before is the trace-order
/// closure of the dependence relation). push_step() computes the new
/// unit's clock with one backward walk — a prior unit d that is dependent
/// but not yet in the clock is a *race* (dependent and concurrent:
/// reachable by no chain of intermediate dependences). For every race it
/// derives the source-set insertion: with
///
///   v = notdep(d, E).q   (units after d not happening-after d, then the
///                         racing process q)
///
/// the candidate set is I(v), the initials of v (processes whose first
/// unit in v has no dependence predecessor inside v). If the backtrack
/// mask of the node that executed d already intersects I(v), the race is
/// covered; otherwise one member of I(v) is inserted (q when q ∈ I(v),
/// else the first initial in v-order — a fixed, deterministic choice).
///
/// Everything is per-path and single-threaded; pop_to() rewinds the trace
/// on DFS backtrack. Storage is recycled across pushes (steady-state
/// allocation-free at bounded depth).
class SourceDpor {
 public:
  /// Sentinel backtrack mask for node depths the caller does not own
  /// (the explorer's frontier prefix: every alternative ordering there is
  /// its own frontier cell). A full mask always intersects I(v), so no
  /// insertion is ever attempted against it.
  static constexpr std::uint32_t kForeignNode = 0xffffffffu;

  struct Stats {
    std::uint64_t races_detected = 0;
    std::uint64_t backtrack_points = 0;  ///< insertions applied
    /// Pending-side pairs the static refinement (src/sa/) flipped from
    /// worst-case dependent to independent inside this engine's cut-point
    /// and initial-set decisions (por/dependence.h counter overloads).
    std::uint64_t static_refined_pairs = 0;
  };

  explicit SourceDpor(int nprocs);

  /// Appends the unit just executed from the node at `node_depth`, detects
  /// its races against the current path, and inserts the resulting
  /// backtrack points directly into `backtrack_by_depth` (node backtrack
  /// masks indexed by absolute node depth; mark foreign nodes with
  /// kForeignNode). Insertions are resolved one race at a time, each
  /// seeing the previous insertions.
  void push_step(int node_depth, const StepSummary& step,
                 std::span<std::uint32_t> backtrack_by_depth);

  /// Conservative cut-point insertions for bounded search. Classic
  /// source-DPOR assumes executions run to completion: every alternative
  /// branch is seeded by a race some *executed* unit exposes. Under a
  /// depth bound a cut path never executes the units beyond the horizon —
  /// on a spin path, a competing process may never run at all — so its
  /// races never materialize and whole reorderings would silently vanish
  /// from the "certified" space. At every depth-truncated leaf the
  /// explorer calls this with the mask of enabled, non-sleeping processes
  /// and every process's captured NextStep; the engine inserts backtrack
  /// points for (1) each enabled process's pending-placement buckets along
  /// the path and (2) each *droppable* path unit's node (see the
  /// implementation for both coverage arguments). The reversals then run
  /// the cut-off units inside the bound, whose own races and cut points
  /// cascade the rest.
  void note_cut(std::uint32_t enabled_mask, std::span<const NextStep> pends,
                std::span<std::uint32_t> backtrack_by_depth);

  /// Drops every unit recorded beyond trace length `len` (DFS backtrack).
  void pop_to(std::size_t len);

  /// Full reset for a fresh frontier cell.
  void clear();

  [[nodiscard]] std::size_t size() const { return trace_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  using Clock = std::array<std::uint16_t, kMaxPorProcs>;

  struct Event {
    StepSummary step;
    int node_depth = 0;
    std::uint16_t self_index = 0;  ///< index among its process's units
    Clock clock{};                 ///< happens-before closure (see above)
  };

  /// True iff trace_[i] happens-before-or-equal the event whose clock is
  /// `c`.
  [[nodiscard]] bool in_clock(const Clock& c, std::size_t i) const {
    const Event& ev = trace_[i];
    return c[static_cast<std::size_t>(ev.step.pid)] >
           ev.self_index;
  }

  /// Folds event d (and d itself) into a happens-before clock.
  void merge_clock(Clock& into, const Event& d) const;

  /// Resolves one race of process q's unit (trace_.back() for a real
  /// race, the virtual pending unit when `virtual_pend` is set) against
  /// trace_[d_index], inserting the chosen source-set process at d's node.
  void apply_race(std::size_t d_index, Pid q, const NextStep* virtual_pend,
                  std::span<std::uint32_t> backtrack_by_depth);

  /// Computes I(v) for the race and returns the pid to insert, or -1 when
  /// `backtrack_mask` (the mask of d's node) already intersects I(v).
  [[nodiscard]] Pid choose_initial(std::size_t d_index, Pid q,
                                   const NextStep* virtual_pend,
                                   std::uint32_t backtrack_mask);

  int nprocs_;
  std::vector<Event> trace_;
  std::vector<std::uint16_t> per_pid_count_;
  Stats stats_;
  std::vector<std::size_t> races_scratch_;  ///< d-indices of one push
  std::vector<std::size_t> v_scratch_;      ///< v-sequence trace indices
};

}  // namespace cfc

#endif  // CFC_POR_SOURCE_DPOR_H
