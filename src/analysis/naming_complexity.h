#ifndef CFC_ANALYSIS_NAMING_COMPLEXITY_H
#define CFC_ANALYSIS_NAMING_COMPLEXITY_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment_runner.h"
#include "analysis/study.h"
#include "core/algorithm_registry.h"
#include "core/measures.h"
#include "naming/naming_algorithm.h"

namespace cfc {

/// Measured complexity of one naming algorithm at one n.
///
///  * cf — contention-free: max over processes in the paper's sequential
///    schedule (each process runs to completion before the next starts);
///  * wc — worst case *found*: max over processes across the sequential
///    schedule, round-robin, the Theorem 6 lockstep adversary, and seeded
///    random schedules. A lower bound on the true worst case; exact for
///    the fixed-length algorithms (taf-tree) and for tas-scan (where the
///    lockstep adversary achieves the n-1 bound).
struct NamingAlgMeasurement {
  std::string name;
  ComplexityReport cf;
  ComplexityReport wc;
};

/// Repackages a naming StudyResult into the legacy measurement struct.
[[nodiscard]] NamingAlgMeasurement naming_measurement_from(
    const StudyResult& r);

/// Thin forwarding adapter over the Study API: one naming study (cf + the
/// worst-case battery) for an ad-hoc factory. The independent runs are
/// fanned across `runner` and reduced in a fixed order, so results are
/// identical for every thread count.
[[nodiscard]] NamingAlgMeasurement measure_naming(
    const NamingFactory& make, int n, const std::vector<std::uint64_t>& seeds,
    ExperimentRunner* runner = nullptr);

/// Every registered naming algorithm measured once at n via one Campaign
/// (per-algorithm cells interleaved, no per-algorithm barrier);
/// candidates[i] corresponds to measured[i] and studies[i], in the
/// registry's deterministic (name-sorted) order. The shared candidate pool
/// behind measure_table2 and the model census.
struct RegistryNamingMeasurements {
  std::vector<const NamingAlgorithmEntry*> candidates;
  std::vector<NamingAlgMeasurement> measured;
  /// The uniform study results (canonical JSON via to_json).
  std::vector<StudyResult> studies;
};

[[nodiscard]] RegistryNamingMeasurements measure_registry_naming(
    int n, const std::vector<std::uint64_t>& seeds,
    ExperimentRunner* runner = nullptr);

/// One column of the paper's Section 3.3 table: a model plus the measured
/// complexities of every implemented algorithm legal in that model. The
/// *problem* complexity per measure is the min over algorithms (each cell
/// of the paper's table is achieved by the best algorithm for that cell,
/// not necessarily the same one).
struct Table2Cell {
  int cf_register = 0;
  int cf_step = 0;
  int wc_register = 0;
  int wc_step = 0;
};

struct Table2Column {
  std::string model_label;
  Model model;
  std::vector<NamingAlgMeasurement> algorithms;

  [[nodiscard]] Table2Cell best() const;
};

/// Distributes already-measured candidates into the paper's five model
/// columns (each distinct algorithm measured once, shared between columns).
[[nodiscard]] std::vector<Table2Column> build_table2_columns(
    const RegistryNamingMeasurements& measurements);

/// Measures all five columns of the paper's naming table for n processes
/// (n must be a power of two >= 2 for the tree algorithms), routing the
/// candidate pool through one Campaign via measure_registry_naming.
[[nodiscard]] std::vector<Table2Column> measure_table2(
    int n, const std::vector<std::uint64_t>& seeds,
    ExperimentRunner* runner = nullptr);

}  // namespace cfc

#endif  // CFC_ANALYSIS_NAMING_COMPLEXITY_H
