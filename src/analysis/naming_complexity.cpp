#include "analysis/naming_complexity.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "core/adversary.h"
#include "core/algorithm_registry.h"
#include "naming/checkers.h"
#include "sched/sched.h"

namespace cfc {

namespace {

ComplexityReport max_over_processes(const Sim& sim) {
  ComplexityReport best;
  for (Pid p = 0; p < sim.process_count(); ++p) {
    best = best.max_with(measure_all(sim.trace(), p));
  }
  return best;
}

void require_ok(const NamingRunCheck& check, const std::string& who) {
  if (!check.ok()) {
    throw std::logic_error("naming run failed validation: " + who);
  }
}

}  // namespace

NamingAlgMeasurement measure_naming(const NamingFactory& make, int n,
                                    const std::vector<std::uint64_t>& seeds,
                                    ExperimentRunner* runner) {
  NamingAlgMeasurement out;

  // Resolve the algorithm name (and capacity errors) up front, on the
  // calling thread, so misconfiguration surfaces as the documented
  // exception rather than through the pool.
  {
    Sim sim;
    auto alg = setup_naming(sim, make, n);
    out.name = alg->algorithm_name();
  }

  // Cells: 0 = the sequential (contention-free) schedule, 1 = round-robin,
  // 2 = the Theorem 6 lockstep symmetry adversary, 3.. = seeded randoms.
  // All independent; reduced below in this fixed order.
  const std::size_t cell_count = 3 + seeds.size();
  std::vector<ComplexityReport> wc_cells(cell_count);
  ComplexityReport cf;

  runner_or_shared(runner).parallel_for(cell_count, [&](std::size_t i) {
    Sim sim;
    auto alg = setup_naming(sim, make, n);
    bool cut = false;  // budget exhausted: surfaced as truncated below
    switch (i) {
      case 0: {
        if (!run_sequentially(sim)) {
          throw std::logic_error("sequential naming run did not finish: " +
                                 out.name);
        }
        break;
      }
      case 1: {
        RoundRobinScheduler rr;
        if (drive(sim, rr) != RunOutcome::AllDone) {
          throw std::logic_error("round-robin naming run did not finish: " +
                                 out.name);
        }
        break;
      }
      case 2: {
        // The lockstep symmetry adversary, finished off fairly so
        // stragglers complete and count.
        std::vector<Pid> group;
        group.reserve(static_cast<std::size_t>(n));
        for (Pid p = 0; p < n; ++p) {
          group.push_back(p);
        }
        const LockstepResult res = lockstep_symmetry_adversary(sim, group);
        if (res.identical_group_terminated) {
          throw std::logic_error("identical processes terminated together: " +
                                 out.name);
        }
        RoundRobinScheduler rr;
        cut = drive(sim, rr) != RunOutcome::AllDone;
        break;
      }
      default: {
        RandomScheduler rnd(seeds[i - 3]);
        if (drive(sim, rnd) != RunOutcome::AllDone) {
          throw std::logic_error("random naming run did not finish: " +
                                 out.name);
        }
        break;
      }
    }
    require_ok(check_naming_run(sim, alg->name_space()), out.name);
    wc_cells[i] = max_over_processes(sim);
    wc_cells[i].truncated = wc_cells[i].truncated || cut;
    if (i == 0) {
      cf = wc_cells[i];
    }
  });

  out.cf = cf;
  for (const ComplexityReport& cell : wc_cells) {
    out.wc = out.wc.max_with(cell);
  }
  return out;
}

Table2Cell Table2Column::best() const {
  Table2Cell cell;
  cell.cf_register = std::numeric_limits<int>::max();
  cell.cf_step = std::numeric_limits<int>::max();
  cell.wc_register = std::numeric_limits<int>::max();
  cell.wc_step = std::numeric_limits<int>::max();
  for (const NamingAlgMeasurement& m : algorithms) {
    cell.cf_register = std::min(cell.cf_register, m.cf.registers);
    cell.cf_step = std::min(cell.cf_step, m.cf.steps);
    cell.wc_register = std::min(cell.wc_register, m.wc.registers);
    cell.wc_step = std::min(cell.wc_step, m.wc.steps);
  }
  return cell;
}

RegistryNamingMeasurements measure_registry_naming(
    int n, const std::vector<std::uint64_t>& seeds,
    ExperimentRunner* runner) {
  RegistryNamingMeasurements out;
  out.candidates = AlgorithmRegistry::instance().naming_algorithms();
  out.measured.resize(out.candidates.size());
  runner_or_shared(runner).parallel_for(
      out.candidates.size(), [&](std::size_t i) {
        out.measured[i] =
            measure_naming(out.candidates[i]->factory, n, seeds, runner);
      });
  return out;
}

std::vector<Table2Column> measure_table2(
    int n, const std::vector<std::uint64_t>& seeds,
    ExperimentRunner* runner) {
  // Candidate pool: every registered naming algorithm, measured once.
  const auto [candidates, measured] =
      measure_registry_naming(n, seeds, runner);

  const std::vector<std::pair<std::string, Model>> columns = {
      {"test-and-set", Model::test_and_set()},
      {"read+test-and-set", Model::read_test_and_set()},
      {"read+tas+tar", Model::read_tas_tar()},
      {"test-and-flip", Model::test_and_flip()},
      {"rmw (all)", Model::rmw()},
  };

  std::vector<Table2Column> out;
  out.reserve(columns.size());
  for (const auto& [label, model] : columns) {
    Table2Column col;
    col.model_label = label;
    col.model = model;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (model.includes(candidates[i]->info.required_model)) {
        col.algorithms.push_back(measured[i]);
      }
    }
    out.push_back(std::move(col));
  }
  return out;
}

}  // namespace cfc
