#include "analysis/naming_complexity.h"

#include <limits>
#include <stdexcept>

#include "core/adversary.h"
#include "naming/checkers.h"
#include "naming/tas_read_search.h"
#include "naming/tas_scan.h"
#include "naming/tas_tar_tree.h"
#include "naming/taf_tree.h"
#include "sched/sched.h"

namespace cfc {

namespace {

ComplexityReport max_over_processes(const Sim& sim) {
  ComplexityReport best;
  for (Pid p = 0; p < sim.process_count(); ++p) {
    best = best.max_with(measure_all(sim.trace(), p));
  }
  return best;
}

void require_ok(const NamingRunCheck& check, const std::string& who) {
  if (!check.ok()) {
    throw std::logic_error("naming run failed validation: " + who);
  }
}

}  // namespace

NamingAlgMeasurement measure_naming(const NamingFactory& make, int n,
                                    const std::vector<std::uint64_t>& seeds) {
  NamingAlgMeasurement out;

  // Contention-free: the sequential schedule.
  {
    Sim sim;
    auto alg = setup_naming(sim, make, n);
    out.name = alg->algorithm_name();
    if (!run_sequentially(sim)) {
      throw std::logic_error("sequential naming run did not finish: " +
                             out.name);
    }
    require_ok(check_naming_run(sim, alg->name_space()), out.name);
    out.cf = max_over_processes(sim);
    out.wc = out.wc.max_with(out.cf);
  }

  // Worst-case search: round-robin.
  {
    Sim sim;
    auto alg = setup_naming(sim, make, n);
    RoundRobinScheduler rr;
    if (drive(sim, rr) != RunOutcome::AllDone) {
      throw std::logic_error("round-robin naming run did not finish: " +
                             out.name);
    }
    require_ok(check_naming_run(sim, alg->name_space()), out.name);
    out.wc = out.wc.max_with(max_over_processes(sim));
  }

  // Worst-case search: the Theorem 6 lockstep symmetry adversary, finished
  // off fairly so stragglers complete and count.
  {
    Sim sim;
    auto alg = setup_naming(sim, make, n);
    std::vector<Pid> group;
    for (Pid p = 0; p < n; ++p) {
      group.push_back(p);
    }
    const LockstepResult res = lockstep_symmetry_adversary(sim, group);
    if (res.identical_group_terminated) {
      throw std::logic_error("identical processes terminated together: " +
                             out.name);
    }
    RoundRobinScheduler rr;
    drive(sim, rr);
    require_ok(check_naming_run(sim, alg->name_space()), out.name);
    out.wc = out.wc.max_with(max_over_processes(sim));
  }

  // Worst-case search: seeded random schedules.
  for (const std::uint64_t seed : seeds) {
    Sim sim;
    auto alg = setup_naming(sim, make, n);
    RandomScheduler rnd(seed);
    if (drive(sim, rnd) != RunOutcome::AllDone) {
      throw std::logic_error("random naming run did not finish: " + out.name);
    }
    require_ok(check_naming_run(sim, alg->name_space()), out.name);
    out.wc = out.wc.max_with(max_over_processes(sim));
  }

  return out;
}

Table2Cell Table2Column::best() const {
  Table2Cell cell;
  cell.cf_register = std::numeric_limits<int>::max();
  cell.cf_step = std::numeric_limits<int>::max();
  cell.wc_register = std::numeric_limits<int>::max();
  cell.wc_step = std::numeric_limits<int>::max();
  for (const NamingAlgMeasurement& m : algorithms) {
    cell.cf_register = std::min(cell.cf_register, m.cf.registers);
    cell.cf_step = std::min(cell.cf_step, m.cf.steps);
    cell.wc_register = std::min(cell.wc_register, m.wc.registers);
    cell.wc_step = std::min(cell.wc_step, m.wc.steps);
  }
  return cell;
}

std::vector<Table2Column> measure_table2(
    int n, const std::vector<std::uint64_t>& seeds) {
  struct Candidate {
    NamingFactory factory;
    Model requires_model;
  };
  const std::vector<Candidate> candidates = {
      {TasScan::factory(), Model::test_and_set()},
      {TasReadSearch::factory(), Model::read_test_and_set()},
      {TasTarTree::factory(), Model{BitOp::TestAndSet, BitOp::TestAndReset}},
      {TafTree::factory(), Model::test_and_flip()},
  };

  const std::vector<std::pair<std::string, Model>> columns = {
      {"test-and-set", Model::test_and_set()},
      {"read+test-and-set", Model::read_test_and_set()},
      {"read+tas+tar", Model::read_tas_tar()},
      {"test-and-flip", Model::test_and_flip()},
      {"rmw (all)", Model::rmw()},
  };

  std::vector<Table2Column> out;
  for (const auto& [label, model] : columns) {
    Table2Column col;
    col.model_label = label;
    col.model = model;
    for (const Candidate& c : candidates) {
      if (model.includes(c.requires_model)) {
        col.algorithms.push_back(measure_naming(c.factory, n, seeds));
      }
    }
    out.push_back(std::move(col));
  }
  return out;
}

}  // namespace cfc
