#include "analysis/naming_complexity.h"

#include <limits>
#include <utility>

namespace cfc {

namespace {

StudySpec naming_spec(std::string subject, int n,
                      const std::vector<std::uint64_t>& seeds) {
  return StudySpec::of(std::move(subject))
      .kind(StudyKind::Naming)
      .n(n)
      .contention_free()
      .worst_case()
      .seeds(seeds);
}

}  // namespace

NamingAlgMeasurement naming_measurement_from(const StudyResult& r) {
  NamingAlgMeasurement out;
  out.name = r.subject;
  out.cf = r.cf;
  out.wc = r.wc;
  return out;
}

NamingAlgMeasurement measure_naming(const NamingFactory& make, int n,
                                    const std::vector<std::uint64_t>& seeds,
                                    ExperimentRunner* runner) {
  StudySpec spec = naming_spec("", n, seeds);
  spec.factory(make);  // subject label left empty: resolves algorithm_name()
  return naming_measurement_from(run_study(spec, runner));
}

Table2Cell Table2Column::best() const {
  Table2Cell cell;
  cell.cf_register = std::numeric_limits<int>::max();
  cell.cf_step = std::numeric_limits<int>::max();
  cell.wc_register = std::numeric_limits<int>::max();
  cell.wc_step = std::numeric_limits<int>::max();
  for (const NamingAlgMeasurement& m : algorithms) {
    cell.cf_register = std::min(cell.cf_register, m.cf.registers);
    cell.cf_step = std::min(cell.cf_step, m.cf.steps);
    cell.wc_register = std::min(cell.wc_register, m.wc.registers);
    cell.wc_step = std::min(cell.wc_step, m.wc.steps);
  }
  return cell;
}

RegistryNamingMeasurements measure_registry_naming(
    int n, const std::vector<std::uint64_t>& seeds, ExperimentRunner* runner) {
  RegistryNamingMeasurements out;
  out.candidates = AlgorithmRegistry::instance().naming_algorithms();

  Campaign campaign;
  for (const NamingAlgorithmEntry* entry : out.candidates) {
    campaign.add(naming_spec(entry->info.name, n, seeds));
  }
  out.studies = campaign.run(runner);

  out.measured.reserve(out.studies.size());
  for (const StudyResult& r : out.studies) {
    out.measured.push_back(naming_measurement_from(r));
  }
  return out;
}

std::vector<Table2Column> build_table2_columns(
    const RegistryNamingMeasurements& measurements) {
  const std::vector<std::pair<std::string, Model>> columns = {
      {"test-and-set", Model::test_and_set()},
      {"read+test-and-set", Model::read_test_and_set()},
      {"read+tas+tar", Model::read_tas_tar()},
      {"test-and-flip", Model::test_and_flip()},
      {"rmw (all)", Model::rmw()},
  };

  std::vector<Table2Column> out;
  out.reserve(columns.size());
  for (const auto& [label, model] : columns) {
    Table2Column col;
    col.model_label = label;
    col.model = model;
    for (std::size_t i = 0; i < measurements.candidates.size(); ++i) {
      if (model.includes(measurements.candidates[i]->info.required_model)) {
        col.algorithms.push_back(measurements.measured[i]);
      }
    }
    out.push_back(std::move(col));
  }
  return out;
}

std::vector<Table2Column> measure_table2(
    int n, const std::vector<std::uint64_t>& seeds, ExperimentRunner* runner) {
  return build_table2_columns(measure_registry_naming(n, seeds, runner));
}

}  // namespace cfc
