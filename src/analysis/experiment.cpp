#include "analysis/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "core/streaming_measures.h"
#include "sched/sched.h"

namespace cfc {

MutexCfResult measure_mutex_contention_free(const MutexFactory& make, int n,
                                            AccessPolicy policy, int max_pids,
                                            ExperimentRunner* runner) {
  const int pid_limit = (max_pids > 0 && max_pids < n) ? max_pids : n;

  struct Cell {
    ComplexityReport session;
    ComplexityReport entry;
    ComplexityReport exit;
    int atomicity = 0;
  };
  std::vector<Cell> cells(static_cast<std::size_t>(pid_limit));

  runner_or_shared(runner).parallel_for(
      cells.size(), [&](std::size_t i) {
        const Pid pid = static_cast<Pid>(i);
        Sim sim;
        sim.set_trace_recording(false);
        sim.set_access_policy(policy);
        MeasureAccumulator acc(n);
        sim.add_sink(acc);
        auto alg = setup_mutex(sim, make, n, /*sessions=*/1);
        SoloScheduler solo(pid);
        const RunOutcome out = drive(sim, solo);
        if (out == RunOutcome::BudgetExhausted) {
          throw std::logic_error(
              "solo mutex session did not terminate (weak deadlock freedom "
              "violated)");
        }
        if (acc.contention_free_session_count(pid) != 1) {
          throw std::logic_error(
              "expected exactly one contention-free session");
        }
        Cell& cell = cells[i];
        cell.session = acc.contention_free_session_max(pid);
        cell.entry = acc.clean_entry_max(pid);
        cell.exit = acc.exit_max(pid);
        cell.atomicity = acc.total(pid).atomicity;
      });

  MutexCfResult res;
  for (const Cell& cell : cells) {  // index order: deterministic reduction
    res.session = res.session.max_with(cell.session);
    res.entry = res.entry.max_with(cell.entry);
    res.exit = res.exit.max_with(cell.exit);
    res.measured_atomicity = std::max(res.measured_atomicity, cell.atomicity);
  }
  return res;
}

namespace {

/// Copies the run statistics shared by every worst-case search result —
/// including the single definition of the `certified` invariant.
template <class ResultT>
void fill_search_stats(ResultT& res, const Explorer::Result& r,
                       SearchStrategy strategy) {
  res.schedules_tried = r.stats.runs_completed + r.stats.runs_truncated;
  res.states_visited = r.stats.states_visited;
  res.violations = r.stats.violations;
  res.truncated = r.stats.truncated;
  res.certified =
      strategy != SearchStrategy::Random && !r.stats.state_budget_hit;
}

/// Explorer configuration for the mutex worst-case objective: maximize the
/// clean-entry and exit window maxima over all processes. The objective is
/// monotone along a run (window maxima never decrease), and its pruning
/// digest is the window digest — the whole-run totals are irrelevant to it.
Explorer::Config mutex_explore_config(const MutexFactory& make, int n,
                                      int sessions,
                                      const WorstCaseSearchOptions& options) {
  Explorer::Config cfg;
  cfg.nprocs = n;
  cfg.strategy = options.strategy;
  cfg.limits = options.limits;
  cfg.seeds = options.seeds;
  cfg.random_budget = options.budget_per_run;
  cfg.setup = [make, n, sessions](Sim& sim) -> std::shared_ptr<void> {
    return setup_mutex(sim, make, n, sessions);
  };
  cfg.objective.eval = [n](const Sim&, const MeasureAccumulator& acc) {
    ComplexityReport entry;
    ComplexityReport exit;
    for (Pid pid = 0; pid < n; ++pid) {
      entry = entry.max_with(acc.clean_entry_max(pid));
      exit = exit.max_with(acc.exit_max(pid));
    }
    return std::vector<ComplexityReport>{entry, exit};
  };
  cfg.objective.digest = [](const MeasureAccumulator& acc) {
    return acc.window_digest();
  };
  return cfg;
}

}  // namespace

MutexWcSearchResult search_mutex_worst_case(
    const MutexFactory& make, int n, int sessions,
    const WorstCaseSearchOptions& options, ExperimentRunner* runner) {
  const Explorer explorer(mutex_explore_config(make, n, sessions, options));
  const Explorer::Result r = explorer.run(runner);

  MutexWcSearchResult res;
  if (r.best.size() >= 2) {
    res.entry = r.best[0];
    res.exit = r.best[1];
  }
  fill_search_stats(res, r, options.strategy);
  return res;
}

MutexWcSearchResult search_mutex_worst_case(
    const MutexFactory& make, int n, int sessions,
    const std::vector<std::uint64_t>& seeds, std::uint64_t budget_per_run,
    ExperimentRunner* runner) {
  WorstCaseSearchOptions options;
  options.strategy = SearchStrategy::Random;
  options.seeds = seeds;
  options.budget_per_run = budget_per_run;
  return search_mutex_worst_case(make, n, sessions, options, runner);
}

namespace {

/// One detector run under `sched`, measured streaming: the max whole-run
/// complexity over all processes. `expect_solo_winner` additionally
/// verifies the solo process's output (the contention-detection liveness
/// side).
ComplexityReport run_detector_cell(const DetectorFactory& make, int n,
                                   Scheduler& sched,
                                   std::optional<Pid> expect_solo_winner) {
  Sim sim;
  sim.set_trace_recording(false);
  MeasureAccumulator acc(n);
  sim.add_sink(acc);
  auto det = setup_detection(sim, make, n);
  if (drive(sim, sched) == RunOutcome::BudgetExhausted) {
    acc.mark_truncated();  // surfaced as ComplexityReport::truncated
  }
  if (expect_solo_winner.has_value() &&
      sim.output(*expect_solo_winner) != 1) {
    throw std::logic_error(
        "solo detector process did not output 1 (broken detector)");
  }
  ComplexityReport best;
  for (Pid pid = 0; pid < n; ++pid) {
    best = best.max_with(acc.total(pid));
  }
  return best;
}

}  // namespace

ComplexityReport measure_detector_contention_free(const DetectorFactory& make,
                                                  int n,
                                                  ExperimentRunner* runner) {
  std::vector<ComplexityReport> cells(static_cast<std::size_t>(n));
  runner_or_shared(runner).parallel_for(
      cells.size(), [&](std::size_t i) {
        const Pid pid = static_cast<Pid>(i);
        SoloScheduler solo(pid);
        cells[i] = run_detector_cell(make, n, solo, pid);
      });
  ComplexityReport best;
  for (const ComplexityReport& cell : cells) {
    best = best.max_with(cell);
  }
  return best;
}

DetectorWcSearchResult search_detector_worst_case(
    const DetectorFactory& make, int n, const WorstCaseSearchOptions& options,
    ExperimentRunner* runner) {
  Explorer::Config cfg;
  cfg.nprocs = n;
  cfg.strategy = options.strategy;
  cfg.limits = options.limits;
  cfg.seeds = options.seeds;
  cfg.random_budget = options.budget_per_run;
  cfg.setup = [make, n](Sim& sim) -> std::shared_ptr<void> {
    return setup_detection(sim, make, n);
  };
  cfg.objective.eval = [n](const Sim&, const MeasureAccumulator& acc) {
    ComplexityReport best;
    for (Pid pid = 0; pid < n; ++pid) {
      best = best.max_with(acc.total(pid));
    }
    return std::vector<ComplexityReport>{best};
  };
  // Whole-run totals objective: the default accumulator digest (which
  // covers the totals) is the sound pruning key, so leave it unset.

  const Explorer explorer(std::move(cfg));
  const Explorer::Result r = explorer.run(runner);

  DetectorWcSearchResult res;
  if (!r.best.empty()) {
    res.best = r.best[0];
  }
  fill_search_stats(res, r, options.strategy);
  return res;
}

ComplexityReport search_detector_worst_case(
    const DetectorFactory& make, int n,
    const std::vector<std::uint64_t>& seeds, ExperimentRunner* runner) {
  // Cell 0 is the round-robin schedule; cells 1..k are the seeded randoms.
  std::vector<ComplexityReport> cells(seeds.size() + 1);
  runner_or_shared(runner).parallel_for(
      cells.size(), [&](std::size_t i) {
        if (i == 0) {
          RoundRobinScheduler rr;
          cells[i] = run_detector_cell(make, n, rr, std::nullopt);
        } else {
          RandomScheduler rnd(seeds[i - 1]);
          cells[i] = run_detector_cell(make, n, rnd, std::nullopt);
        }
      });
  ComplexityReport best;
  for (const ComplexityReport& cell : cells) {
    best = best.max_with(cell);
  }
  return best;
}

}  // namespace cfc
