#include "analysis/experiment.h"

#include <stdexcept>

#include "sched/sched.h"

namespace cfc {

MutexCfResult measure_mutex_contention_free(const MutexFactory& make, int n,
                                            AccessPolicy policy,
                                            int max_pids) {
  MutexCfResult res;
  const int pid_limit = (max_pids > 0 && max_pids < n) ? max_pids : n;
  for (Pid pid = 0; pid < pid_limit; ++pid) {
    Sim sim;
    sim.set_access_policy(policy);
    auto alg = setup_mutex(sim, make, n, /*sessions=*/1);
    SoloScheduler solo(pid);
    const RunOutcome out = drive(sim, solo);
    if (out == RunOutcome::BudgetExhausted) {
      throw std::logic_error(
          "solo mutex session did not terminate (weak deadlock freedom "
          "violated)");
    }
    const auto sessions = contention_free_sessions(sim.trace(), pid, n);
    if (sessions.size() != 1) {
      throw std::logic_error("expected exactly one contention-free session");
    }
    res.session = res.session.max_with(measure(sim.trace(), pid, sessions[0]));
    res.entry = res.entry.max_with(max_over_windows(
        sim.trace(), pid, clean_entry_windows(sim.trace(), pid, n)));
    res.exit = res.exit.max_with(
        max_over_windows(sim.trace(), pid, exit_windows(sim.trace(), pid)));
    res.measured_atomicity =
        std::max(res.measured_atomicity, sim.trace().max_width_accessed(pid));
  }
  return res;
}

MutexWcSearchResult search_mutex_worst_case(
    const MutexFactory& make, int n, int sessions,
    const std::vector<std::uint64_t>& seeds, std::uint64_t budget_per_run) {
  MutexWcSearchResult res;
  for (const std::uint64_t seed : seeds) {
    Sim sim;
    auto alg = setup_mutex(sim, make, n, sessions);
    RandomScheduler rnd(seed);
    drive(sim, rnd, RunLimits{budget_per_run});
    for (Pid pid = 0; pid < n; ++pid) {
      res.entry = res.entry.max_with(max_over_windows(
          sim.trace(), pid, clean_entry_windows(sim.trace(), pid, n)));
      res.exit = res.exit.max_with(
          max_over_windows(sim.trace(), pid, exit_windows(sim.trace(), pid)));
    }
    res.schedules_tried += 1;
  }
  return res;
}

ComplexityReport measure_detector_contention_free(const DetectorFactory& make,
                                                  int n) {
  ComplexityReport best;
  for (Pid pid = 0; pid < n; ++pid) {
    Sim sim;
    auto det = setup_detection(sim, make, n);
    SoloScheduler solo(pid);
    drive(sim, solo);
    if (sim.output(pid) != 1) {
      throw std::logic_error(
          "solo detector process did not output 1 (broken detector)");
    }
    best = best.max_with(measure_all(sim.trace(), pid));
  }
  return best;
}

ComplexityReport search_detector_worst_case(
    const DetectorFactory& make, int n,
    const std::vector<std::uint64_t>& seeds) {
  ComplexityReport best;
  auto account = [&](const Sim& sim) {
    for (Pid pid = 0; pid < n; ++pid) {
      best = best.max_with(measure_all(sim.trace(), pid));
    }
  };
  {
    Sim sim;
    auto det = setup_detection(sim, make, n);
    RoundRobinScheduler rr;
    drive(sim, rr);
    account(sim);
  }
  for (const std::uint64_t seed : seeds) {
    Sim sim;
    auto det = setup_detection(sim, make, n);
    RandomScheduler rnd(seed);
    drive(sim, rnd);
    account(sim);
  }
  return best;
}

}  // namespace cfc
