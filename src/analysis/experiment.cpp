#include "analysis/experiment.h"

namespace cfc {

// Every adapter here builds a StudySpec with an ad-hoc factory (the legacy
// surface passes factories, not registry names) and repackages the
// StudyResult. The measurement mechanics — cell grids, streaming sinks,
// Explorer configuration, index-order reduction — live in study.cpp.

MutexCfResult measure_mutex_contention_free(const MutexFactory& make, int n,
                                            AccessPolicy policy, int max_pids,
                                            ExperimentRunner* runner) {
  StudySpec spec = StudySpec::of("")
                       .kind(StudyKind::Mutex)
                       .n(n)
                       .policy(policy)
                       .sample_pids(max_pids)
                       .contention_free();
  spec.factory(make);
  const StudyResult r = run_study(spec, runner);

  MutexCfResult res;
  res.session = r.cf;
  res.entry = r.cf_entry;
  res.exit = r.cf_exit;
  res.measured_atomicity = r.measured_atomicity;
  return res;
}

MutexWcSearchResult search_mutex_worst_case(
    const MutexFactory& make, int n, int sessions,
    const WorstCaseSearchOptions& options, ExperimentRunner* runner) {
  StudySpec spec = StudySpec::of("")
                       .kind(StudyKind::Mutex)
                       .n(n)
                       .sessions(sessions)
                       .worst_case(options);
  spec.factory(make);
  const StudyResult r = run_study(spec, runner);

  MutexWcSearchResult res;
  res.entry = r.wc_entry;
  res.exit = r.wc_exit;
  res.schedules_tried = r.schedules_tried;
  res.states_visited = r.states_visited;
  res.violations = r.violations;
  res.truncated = r.truncated;
  res.certified = r.certified;
  return res;
}

ComplexityReport measure_detector_contention_free(const DetectorFactory& make,
                                                  int n,
                                                  ExperimentRunner* runner) {
  StudySpec spec =
      StudySpec::of("").kind(StudyKind::Detector).n(n).contention_free();
  spec.factory(make);
  return run_study(spec, runner).cf;
}

DetectorWcSearchResult search_detector_worst_case(
    const DetectorFactory& make, int n, const WorstCaseSearchOptions& options,
    ExperimentRunner* runner) {
  StudySpec spec =
      StudySpec::of("").kind(StudyKind::Detector).n(n).worst_case(options);
  spec.factory(make);
  const StudyResult r = run_study(spec, runner);

  DetectorWcSearchResult res;
  res.best = r.wc;
  res.schedules_tried = r.schedules_tried;
  res.states_visited = r.states_visited;
  res.violations = r.violations;
  res.truncated = r.truncated;
  res.certified = r.certified;
  return res;
}

}  // namespace cfc
