#include "analysis/experiment.h"

#include <optional>

#include "sched/sched.h"

namespace cfc {

// Every adapter here builds a StudySpec with an ad-hoc factory (the legacy
// surface passes factories, not registry names) and repackages the
// StudyResult. The measurement mechanics — cell grids, streaming sinks,
// Explorer configuration, index-order reduction — live in study.cpp.

MutexCfResult measure_mutex_contention_free(const MutexFactory& make, int n,
                                            AccessPolicy policy, int max_pids,
                                            ExperimentRunner* runner) {
  StudySpec spec = StudySpec::of("")
                       .kind(StudyKind::Mutex)
                       .n(n)
                       .policy(policy)
                       .sample_pids(max_pids)
                       .contention_free();
  spec.factory(make);
  const StudyResult r = run_study(spec, runner);

  MutexCfResult res;
  res.session = r.cf;
  res.entry = r.cf_entry;
  res.exit = r.cf_exit;
  res.measured_atomicity = r.measured_atomicity;
  return res;
}

MutexWcSearchResult search_mutex_worst_case(
    const MutexFactory& make, int n, int sessions,
    const WorstCaseSearchOptions& options, ExperimentRunner* runner) {
  StudySpec spec = StudySpec::of("")
                       .kind(StudyKind::Mutex)
                       .n(n)
                       .sessions(sessions)
                       .worst_case(options);
  spec.factory(make);
  const StudyResult r = run_study(spec, runner);

  MutexWcSearchResult res;
  res.entry = r.wc_entry;
  res.exit = r.wc_exit;
  res.schedules_tried = r.schedules_tried;
  res.states_visited = r.states_visited;
  res.violations = r.violations;
  res.truncated = r.truncated;
  res.certified = r.certified;
  return res;
}

MutexWcSearchResult search_mutex_worst_case(
    const MutexFactory& make, int n, int sessions,
    const std::vector<std::uint64_t>& seeds, std::uint64_t budget_per_run,
    ExperimentRunner* runner) {
  WorstCaseSearchOptions options;
  options.strategy = SearchStrategy::Random;
  options.seeds = seeds;
  options.budget_per_run = budget_per_run;
  return search_mutex_worst_case(make, n, sessions, options, runner);
}

ComplexityReport measure_detector_contention_free(const DetectorFactory& make,
                                                  int n,
                                                  ExperimentRunner* runner) {
  StudySpec spec =
      StudySpec::of("").kind(StudyKind::Detector).n(n).contention_free();
  spec.factory(make);
  return run_study(spec, runner).cf;
}

DetectorWcSearchResult search_detector_worst_case(
    const DetectorFactory& make, int n, const WorstCaseSearchOptions& options,
    ExperimentRunner* runner) {
  StudySpec spec =
      StudySpec::of("").kind(StudyKind::Detector).n(n).worst_case(options);
  spec.factory(make);
  const StudyResult r = run_study(spec, runner);

  DetectorWcSearchResult res;
  res.best = r.wc;
  res.schedules_tried = r.schedules_tried;
  res.states_visited = r.states_visited;
  res.violations = r.violations;
  res.truncated = r.truncated;
  res.certified = r.certified;
  return res;
}

DetectorWcSearchResult search_detector_worst_case(
    const DetectorFactory& make, int n,
    const std::vector<std::uint64_t>& seeds, ExperimentRunner* runner) {
  // The historical battery: cell 0 is the round-robin schedule, cells 1..k
  // the seeded randoms. Kept as its own cell grid (the options overload's
  // Random strategy omits the round-robin run) so legacy callers see
  // bit-identical maxima; the full result type now carries the run
  // statistics the old bare-ComplexityReport return silently dropped.
  std::vector<ComplexityReport> cells(seeds.size() + 1);
  runner_or_shared(runner).parallel_for(cells.size(), [&](std::size_t i) {
    if (i == 0) {
      RoundRobinScheduler rr;
      cells[i] = detail::run_detector_cell(make, n, rr, std::nullopt);
    } else {
      RandomScheduler rnd(seeds[i - 1]);
      cells[i] = detail::run_detector_cell(make, n, rnd, std::nullopt);
    }
  });
  DetectorWcSearchResult res;
  for (const ComplexityReport& cell : cells) {
    res.best = res.best.max_with(cell);
  }
  res.schedules_tried = cells.size();
  res.truncated = res.best.truncated;
  return res;
}

}  // namespace cfc
