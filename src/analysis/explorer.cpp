#include "analysis/explorer.h"

#include <algorithm>
#include <array>
#include <span>
#include <stdexcept>
#include <utility>

#include "analysis/visited_table.h"
#include "core/state_fingerprint.h"

namespace cfc {

const char* name(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::Exhaustive:
      return "exhaustive";
    case SearchStrategy::Bounded:
      return "bounded";
    case SearchStrategy::Random:
      return "random";
  }
  return "unknown";
}

void ExploreStats::merge(const ExploreStats& o) {
  states_visited += o.states_visited;
  runs_completed += o.runs_completed;
  runs_truncated += o.runs_truncated;
  pruned_visited += o.pruned_visited;
  pruned_independent += o.pruned_independent;
  violations += o.violations;
  restores += o.restores;
  replayed_steps += o.replayed_steps;
  sims_built += o.sims_built;
  visited_bytes += o.visited_bytes;
  truncated = truncated || o.truncated;
  state_budget_hit = state_budget_hit || o.state_budget_hit;
}

namespace {

/// Sleep sets are process bitmasks; plenty for every algorithm in the
/// registry and checked by the Explorer constructor.
constexpr int kMaxReduceProcs = 32;

/// Index-wise max_with reduction of objective report vectors (the single
/// definition behind leaf accumulation and the cell reductions).
void merge_best(std::vector<ComplexityReport>& best,
                const std::vector<ComplexityReport>& leaf) {
  if (leaf.empty()) {
    return;
  }
  if (best.empty()) {
    best = leaf;
    return;
  }
  const std::size_t k = std::min(best.size(), leaf.size());
  for (std::size_t i = 0; i < k; ++i) {
    best[i] = best[i].max_with(leaf[i]);
  }
}

/// Per-frontier-cell result slot; reduced in index order afterwards.
struct CellResult {
  ExploreStats stats;
  std::vector<ComplexityReport> best;

  void take_leaf(const std::vector<ComplexityReport>& leaf) {
    merge_best(best, leaf);
  }
};

/// What a process is about to do, captured once per branching node for the
/// independence test of reduce_independent.
struct PendInfo {
  bool known = false;  ///< started, not crash-armed, suspended at an access
  bool yield = false;  ///< a local step: touches no shared register
  RegId reg = -1;
};

/// Two next-steps are independent iff they commute as operations from the
/// current state: a local yield touches nothing; otherwise the accesses
/// must hit disjoint registers (one atomic access per step, so disjoint
/// registers cannot conflict — the paper's notion of contention). Unknown
/// pendings (unstarted or crash-armed processes) are conservatively
/// dependent with everything.
bool independent(const PendInfo& a, const PendInfo& b) {
  if (!a.known || !b.known) {
    return false;
  }
  if (a.yield || b.yield) {
    return true;
  }
  return a.reg != b.reg;
}

/// One frontier cell's DFS: owns the live simulation, the live accumulator,
/// the per-cell visited table, and the recycled scratch pools (branch
/// stack, per-depth accumulator snapshots). Descends by stepping the live
/// sim; backtracks in place via Sim::rewind_to (or the legacy
/// fork-by-replay when ExploreLimits::restore_by_fork is set).
class CellExplorer {
 public:
  CellExplorer(const Explorer::Config& cfg, CellResult& out)
      : cfg_(cfg),
        out_(out),
        acc_(cfg.nprocs),
        reduce_(cfg.limits.reduce_independent) {}

  ~CellExplorer() { out_.stats.visited_bytes += visited_.bytes(); }

  void run(const std::vector<Pid>& prefix) {
    reset_sim();
    int preempt = 0;
    Pid last = -1;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      const Pid p = prefix[i];
      if (!sim_->any_runnable()) {
        // Terminal before the frontier: exactly one cell — the one whose
        // remaining digits are all zero — owns this leaf.
        if (all_zero_from(prefix, i)) {
          ++nodes_;
          ++out_.stats.states_visited;
          leaf_completed();
        }
        return;
      }
      if (!allowed_pick_exists(preempt, last)) {
        // Runnable processes remain but every pick is over the preemption
        // budget (the last-running process finished): the bounded space
        // ends here, exactly as dfs() records it below the frontier.
        if (all_zero_from(prefix, i)) {
          ++nodes_;
          ++out_.stats.states_visited;
          leaf_truncated();
        }
        return;
      }
      if (!sim_->runnable(p)) {
        return;  // unrealizable branch; the runnable-digit cells cover it
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions >= 0 &&
          preempt + switch_cost > cfg_.limits.max_preemptions) {
        return;  // excluded by the bound; the allowed-digit cells cover it
      }
      preempt += switch_cost;
      try {
        sim_->step(p);
      } catch (const MutualExclusionViolation&) {
        if (all_zero_from(prefix, i + 1)) {
          ++out_.stats.violations;
        }
        return;
      }
      last = p;
    }
    dfs(static_cast<int>(prefix.size()), preempt, last, /*sleep=*/0);
  }

 private:
  [[nodiscard]] static bool all_zero_from(const std::vector<Pid>& prefix,
                                          std::size_t from) {
    return std::all_of(prefix.begin() + static_cast<std::ptrdiff_t>(from),
                       prefix.end(), [](Pid p) { return p == 0; });
  }

  /// True iff some runnable pick fits the remaining preemption budget.
  [[nodiscard]] bool allowed_pick_exists(int preempt, Pid last) const {
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (!sim_->runnable(p)) {
        continue;
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions < 0 ||
          preempt + switch_cost <= cfg_.limits.max_preemptions) {
        return true;
      }
    }
    return false;
  }

  void reset_sim() {
    sim_ = std::make_unique<Sim>();
    owner_ = cfg_.setup(*sim_);
    sim_->set_trace_recording(false);
    if (!cfg_.limits.restore_by_fork) {
      sim_->mark_rewind_base();
    }
    ++out_.stats.sims_built;
    acc_ = MeasureAccumulator(cfg_.nprocs);
    sim_->add_sink(acc_);
  }

  /// Repositions the cell at a prefix of the live sim's own schedule log,
  /// restoring the node's accumulator snapshot. Default: in-place recycled
  /// rewind — the live Sim object, its coroutine frame arena, and its
  /// schedule log are all reused, so steady state this performs zero Sim
  /// heap allocation. Legacy (restore_by_fork): fork-by-replay against a
  /// freshly built simulation, borrowing the live log as a span (never
  /// copying it into a SimCheckpoint).
  void restore(std::size_t sched_len, const MeasureAccumulator& snap,
               std::uint64_t mem_fp, Seq seq, const MemorySnapshot* memsnap) {
    ++out_.stats.restores;
    out_.stats.replayed_steps += sched_len;
    if (cfg_.limits.restore_by_fork) {
      const auto& log = sim_->schedule_log();
      std::shared_ptr<void> owner;
      const SimBuilder rebuild = [&](Sim& s) {
        owner = cfg_.setup(s);
        s.set_trace_recording(false);
      };
      // The old sim_ stays alive (and its log unmodified) until the fork's
      // replay of the borrowed span completes.
      std::unique_ptr<Sim> fresh =
          Sim::fork(std::span(log.data(), sched_len), mem_fp, seq, rebuild,
                    memsnap);
      ++out_.stats.sims_built;
      sim_ = std::move(fresh);
      owner_ = std::move(owner);
      acc_ = snap;
      sim_->add_sink(acc_);
    } else {
      sim_->rewind_to(sched_len, mem_fp, seq, memsnap);
      acc_ = snap;  // the sink stays attached; plain-data restore
    }
  }

  [[nodiscard]] std::uint64_t state_key(Pid last, std::uint32_t sleep) const {
    std::uint64_t h = state_fingerprint(*sim_);
    if (cfg_.objective.eval) {
      h = fingerprint_combine(h, cfg_.objective.digest
                                     ? cfg_.objective.digest(acc_)
                                     : acc_.digest());
    }
    if (cfg_.limits.max_preemptions >= 0) {
      // Under a preemption bound the last-scheduled pid is part of the
      // state: futures continuing it are free while switches cost budget,
      // so merging across different `last` would prune feasible subtrees.
      h = fingerprint_combine(h, static_cast<std::uint64_t>(last) + 1);
    }
    if (reduce_) {
      // A sleeping process shrinks the subtree explored from here, so a
      // visit with one sleep set must not stand in for a visit with
      // another (classic sleep-set/state-cache interaction).
      h = fingerprint_combine(h, static_cast<std::uint64_t>(sleep) |
                                     0x100000000ULL);
    }
    return h;
  }

  void eval_leaf(bool truncated) {
    if (!cfg_.objective.eval) {
      return;
    }
    if (truncated) {
      acc_.mark_truncated();  // cleared by the next backtrack restore
    }
    out_.take_leaf(cfg_.objective.eval(*sim_, acc_));
  }

  void leaf_completed() {
    ++out_.stats.runs_completed;
    eval_leaf(false);
  }

  void leaf_truncated() {
    ++out_.stats.runs_truncated;
    out_.stats.truncated = true;
    eval_leaf(true);
  }

  /// Grows the per-depth scratch pools to cover `depth`.
  void ensure_pools(int depth) {
    const auto need = static_cast<std::size_t>(depth) + 1;
    while (acc_pool_.size() < need) {
      acc_pool_.emplace_back(cfg_.nprocs);
    }
    if (cfg_.limits.verify_restore_snapshot) {
      while (mem_pool_.size() < need) {
        mem_pool_.emplace_back();
      }
    }
  }

  void capture_pendings(std::array<PendInfo, kMaxReduceProcs>& pend) const {
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      PendInfo& info = pend[static_cast<std::size_t>(p)];
      info = PendInfo{};
      if (sim_->status(p) != ProcStatus::Runnable || sim_->crash_pending(p)) {
        continue;  // unknown next step: dependent with everything
      }
      const std::optional<PendingAccess> pa = sim_->pending(p);
      if (!pa.has_value()) {
        continue;
      }
      info.known = true;
      info.yield = pa->local_yield;
      info.reg = pa->reg;
    }
  }

  void dfs(int depth, int preempt, Pid last, std::uint32_t sleep) {
    ++nodes_;
    ++out_.stats.states_visited;
    if (!sim_->any_runnable()) {
      leaf_completed();
      return;
    }
    if (depth >= cfg_.limits.max_depth) {
      leaf_truncated();
      return;
    }
    if (cfg_.limits.max_states != 0 && nodes_ >= cfg_.limits.max_states) {
      stop_ = true;
      out_.stats.state_budget_hit = true;
      leaf_truncated();  // the cut path counts like any truncated leaf
      return;
    }
    const int eff_preempt = cfg_.limits.max_preemptions < 0 ? 0 : preempt;
    if (cfg_.limits.prune_visited &&
        visited_.check_and_insert(state_key(last, sleep), depth,
                                  eff_preempt)) {
      ++out_.stats.pruned_visited;
      return;
    }

    // Collect branches into the shared scratch stack (zero per-node
    // allocation), continue-last-pid-first: the first branch descends the
    // live sim with no restore at all, so leading with the running process
    // makes that free descent the preemption-free spine.
    const std::size_t base = branch_buf_.size();
    bool skipped_sleeping = false;
    const auto admit = [&](Pid p) {
      if (!sim_->runnable(p)) {
        return;
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions >= 0 &&
          preempt + switch_cost > cfg_.limits.max_preemptions) {
        return;
      }
      if (reduce_ && ((sleep >> p) & 1u) != 0) {
        // Asleep: every schedule starting here is a reordering of one
        // already explored through an earlier sibling.
        skipped_sleeping = true;
        ++out_.stats.pruned_independent;
        return;
      }
      branch_buf_.push_back(p);
    };
    if (last != -1) {
      admit(last);
    }
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (p != last) {
        admit(p);
      }
    }

    const std::size_t nb = branch_buf_.size() - base;
    if (nb == 0) {
      if (!skipped_sleeping) {
        // Runnable processes exist but every switch is over the preemption
        // budget: the bounded space ends here.
        leaf_truncated();
      }
      // All-asleep nodes are covered elsewhere: not a leaf of the reduced
      // tree, nothing to do.
      return;
    }

    // Node checkpoint for sibling restores (skipped for single branches:
    // the parent restores for us). Scratch pools, not fresh allocations.
    const bool need_restore = nb > 1;
    const std::size_t sched_len = sim_->schedule_log().size();
    const std::uint64_t mem_fp = sim_->memory().fingerprint();
    const Seq seq = sim_->next_seq();
    if (need_restore) {
      ensure_pools(depth);
      acc_pool_[static_cast<std::size_t>(depth)] = acc_;
      if (cfg_.limits.verify_restore_snapshot) {
        mem_pool_[static_cast<std::size_t>(depth)] =
            sim_->memory().snapshot();
      }
    }

    std::array<PendInfo, kMaxReduceProcs> pend;
    if (reduce_) {
      capture_pendings(pend);  // single-branch nodes still inherit sleepers
    }

    std::uint32_t explored = 0;
    for (std::size_t b = 0; b < nb; ++b) {
      if (stop_) {
        break;
      }
      const Pid p = branch_buf_[base + b];
      if (b > 0) {
        restore(sched_len, acc_pool_[static_cast<std::size_t>(depth)],
                mem_fp, seq,
                cfg_.limits.verify_restore_snapshot
                    ? &mem_pool_[static_cast<std::size_t>(depth)]
                    : nullptr);
      }
      try {
        sim_->step(p);
      } catch (const MutualExclusionViolation&) {
        ++out_.stats.violations;
        continue;  // sim is poisoned; the next iteration restores it
      }
      std::uint32_t child_sleep = 0;
      if (reduce_) {
        // The child keeps asleep every earlier-explored or inherited
        // process whose next access is independent of the step just
        // taken; a conflicting access wakes it.
        const std::uint32_t candidates =
            (sleep | explored) & ~(1u << static_cast<unsigned>(p));
        const PendInfo& taken = pend[static_cast<std::size_t>(p)];
        for (Pid q = 0; q < cfg_.nprocs; ++q) {
          if (((candidates >> q) & 1u) != 0 &&
              independent(pend[static_cast<std::size_t>(q)], taken)) {
            child_sleep |= 1u << static_cast<unsigned>(q);
          }
        }
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      dfs(depth + 1, preempt + switch_cost, p, child_sleep);
      explored |= 1u << static_cast<unsigned>(p);
    }
    branch_buf_.resize(base);
  }

  const Explorer::Config& cfg_;
  CellResult& out_;
  std::unique_ptr<Sim> sim_;
  std::shared_ptr<void> owner_;
  MeasureAccumulator acc_;
  VisitedTable visited_;
  std::vector<Pid> branch_buf_;  ///< shared branch scratch stack
  std::vector<MeasureAccumulator> acc_pool_;  ///< per-depth node snapshots
  std::vector<MemorySnapshot> mem_pool_;  ///< per-depth debug snapshots
  std::uint64_t nodes_ = 0;
  bool stop_ = false;
  bool reduce_ = false;
};

}  // namespace

Explorer::Explorer(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.nprocs < 1) {
    throw std::invalid_argument("Explorer: nprocs must be >= 1");
  }
  if (!cfg_.setup) {
    throw std::invalid_argument("Explorer: setup callback is required");
  }
  if (cfg_.strategy == SearchStrategy::Exhaustive) {
    // Exhaustive means every interleaving within the depth bound: a
    // preemption limit left over from a Bounded configuration must not
    // silently shrink the certified space.
    cfg_.limits.max_preemptions = -1;
  }
  if (cfg_.strategy == SearchStrategy::Bounded &&
      cfg_.limits.max_preemptions < 0) {
    // Without a preemption bound, "Bounded" would silently run the full
    // exhaustive DFS — exponentially more states than the caller asked for.
    throw std::invalid_argument(
        "Explorer: Bounded strategy requires limits.max_preemptions >= 0");
  }
  if (cfg_.limits.reduce_independent) {
    if (cfg_.strategy != SearchStrategy::Exhaustive) {
      // Under a preemption budget a sleeping branch's covering reordering
      // may itself be out of budget, so the reduction would cut feasible
      // space; restrict it to the strategy it is defined for.
      throw std::invalid_argument(
          "Explorer: reduce_independent requires the Exhaustive strategy");
    }
    if (cfg_.nprocs > kMaxReduceProcs) {
      throw std::invalid_argument(
          "Explorer: reduce_independent supports at most 32 processes");
    }
  }
}

namespace {

/// Frontier split depth f: prefixes of f picks form the cell grid of
/// n^f cells, capped so wide process counts do not explode it. Depends
/// only on (n, frontier_depth): thread-count invariant.
int frontier_split_depth(int nprocs, const ExploreLimits& limits) {
  const int want_f = std::clamp(limits.frontier_depth, 0, limits.max_depth);
  std::size_t cells = 1;
  int f = 0;
  while (f < want_f && cells * static_cast<std::size_t>(nprocs) <= 4096) {
    cells *= static_cast<std::size_t>(nprocs);
    ++f;
  }
  return f;
}

std::size_t cells_for_depth(int nprocs, int f) {
  std::size_t cells = 1;
  for (int i = 0; i < f; ++i) {
    cells *= static_cast<std::size_t>(nprocs);
  }
  return cells;
}

}  // namespace

std::size_t Explorer::frontier_cells(int nprocs,
                                     const ExploreLimits& limits) {
  return cells_for_depth(nprocs, frontier_split_depth(nprocs, limits));
}

Explorer::Result Explorer::run(ExperimentRunner* runner) const {
  if (cfg_.strategy == SearchStrategy::Random) {
    return run_random_strategy(runner);
  }

  const int n = cfg_.nprocs;
  const int f = frontier_split_depth(n, cfg_.limits);
  const std::size_t cells = cells_for_depth(n, f);

  std::vector<CellResult> slots(cells);
  runner_or_shared(runner).parallel_for(cells, [&](std::size_t c) {
    std::vector<Pid> prefix(static_cast<std::size_t>(f));
    std::size_t x = c;
    for (int i = f - 1; i >= 0; --i) {
      prefix[static_cast<std::size_t>(i)] = static_cast<Pid>(
          x % static_cast<std::size_t>(n));
      x /= static_cast<std::size_t>(n);
    }
    CellExplorer cell(cfg_, slots[c]);
    cell.run(prefix);
  });

  Result res;
  for (const CellResult& slot : slots) {  // index order: deterministic
    res.stats.merge(slot.stats);
    merge_best(res.best, slot.best);
  }
  return res;
}

Explorer::Result Explorer::run_random_strategy(
    ExperimentRunner* runner) const {
  std::vector<CellResult> slots(cfg_.seeds.size());
  runner_or_shared(runner).parallel_for(
      cfg_.seeds.size(), [&](std::size_t i) {
        Sim sim;
        const std::shared_ptr<void> owner = cfg_.setup(sim);
        sim.set_trace_recording(false);
        MeasureAccumulator acc(cfg_.nprocs);
        sim.add_sink(acc);
        RandomScheduler rnd(cfg_.seeds[i]);
        const RunOutcome out =
            drive(sim, rnd, RunLimits{cfg_.random_budget});
        CellResult& slot = slots[i];
        slot.stats.sims_built += 1;
        slot.stats.states_visited += sim.schedule_log().size();
        if (out == RunOutcome::BudgetExhausted) {
          acc.mark_truncated();
          slot.stats.runs_truncated += 1;
          slot.stats.truncated = true;
        } else {
          slot.stats.runs_completed += 1;
        }
        if (cfg_.objective.eval) {
          slot.take_leaf(cfg_.objective.eval(sim, acc));
        }
      });

  Result res;
  for (const CellResult& slot : slots) {
    res.stats.merge(slot.stats);
    merge_best(res.best, slot.best);
  }
  return res;
}

}  // namespace cfc
