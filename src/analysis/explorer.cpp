#include "analysis/explorer.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/state_fingerprint.h"

namespace cfc {

const char* name(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::Exhaustive:
      return "exhaustive";
    case SearchStrategy::Bounded:
      return "bounded";
    case SearchStrategy::Random:
      return "random";
  }
  return "unknown";
}

void ExploreStats::merge(const ExploreStats& o) {
  states_visited += o.states_visited;
  runs_completed += o.runs_completed;
  runs_truncated += o.runs_truncated;
  pruned_visited += o.pruned_visited;
  violations += o.violations;
  truncated = truncated || o.truncated;
  state_budget_hit = state_budget_hit || o.state_budget_hit;
}

namespace {

/// Index-wise max_with reduction of objective report vectors (the single
/// definition behind leaf accumulation and the cell reductions).
void merge_best(std::vector<ComplexityReport>& best,
                const std::vector<ComplexityReport>& leaf) {
  if (leaf.empty()) {
    return;
  }
  if (best.empty()) {
    best = leaf;
    return;
  }
  const std::size_t k = std::min(best.size(), leaf.size());
  for (std::size_t i = 0; i < k; ++i) {
    best[i] = best[i].max_with(leaf[i]);
  }
}

/// Per-frontier-cell result slot; reduced in index order afterwards.
struct CellResult {
  ExploreStats stats;
  std::vector<ComplexityReport> best;

  void take_leaf(const std::vector<ComplexityReport>& leaf) {
    merge_best(best, leaf);
  }
};

/// One frontier cell's DFS: owns the live simulation, the live accumulator,
/// and the per-cell visited cache. Descends by stepping the live sim;
/// backtracks by fork-by-replay plus an accumulator snapshot restore.
class CellExplorer {
 public:
  CellExplorer(const Explorer::Config& cfg, CellResult& out)
      : cfg_(cfg), out_(out), acc_(cfg.nprocs) {}

  void run(const std::vector<Pid>& prefix) {
    reset_sim();
    int preempt = 0;
    Pid last = -1;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      const Pid p = prefix[i];
      if (!sim_->any_runnable()) {
        // Terminal before the frontier: exactly one cell — the one whose
        // remaining digits are all zero — owns this leaf.
        if (all_zero_from(prefix, i)) {
          ++nodes_;
          ++out_.stats.states_visited;
          leaf_completed();
        }
        return;
      }
      if (!allowed_pick_exists(preempt, last)) {
        // Runnable processes remain but every pick is over the preemption
        // budget (the last-running process finished): the bounded space
        // ends here, exactly as dfs() records it below the frontier.
        if (all_zero_from(prefix, i)) {
          ++nodes_;
          ++out_.stats.states_visited;
          leaf_truncated();
        }
        return;
      }
      if (!sim_->runnable(p)) {
        return;  // unrealizable branch; the runnable-digit cells cover it
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions >= 0 &&
          preempt + switch_cost > cfg_.limits.max_preemptions) {
        return;  // excluded by the bound; the allowed-digit cells cover it
      }
      preempt += switch_cost;
      try {
        sim_->step(p);
      } catch (const MutualExclusionViolation&) {
        if (all_zero_from(prefix, i + 1)) {
          ++out_.stats.violations;
        }
        return;
      }
      last = p;
    }
    dfs(static_cast<int>(prefix.size()), preempt, last);
  }

 private:
  [[nodiscard]] static bool all_zero_from(const std::vector<Pid>& prefix,
                                          std::size_t from) {
    return std::all_of(prefix.begin() + static_cast<std::ptrdiff_t>(from),
                       prefix.end(), [](Pid p) { return p == 0; });
  }

  /// True iff some runnable pick fits the remaining preemption budget.
  [[nodiscard]] bool allowed_pick_exists(int preempt, Pid last) const {
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (!sim_->runnable(p)) {
        continue;
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions < 0 ||
          preempt + switch_cost <= cfg_.limits.max_preemptions) {
        return true;
      }
    }
    return false;
  }

  void reset_sim() {
    sim_ = std::make_unique<Sim>();
    owner_ = cfg_.setup(*sim_);
    sim_->set_trace_recording(false);
    acc_ = MeasureAccumulator(cfg_.nprocs);
    sim_->add_sink(acc_);
  }

  /// Fork-by-replay back to a prefix of the live sim's own schedule log,
  /// re-attaching the node's accumulator snapshot.
  void restore(std::size_t sched_len, const MeasureAccumulator& snap,
               std::uint64_t mem_fp, Seq seq) {
    SimCheckpoint cp;
    const auto& log = sim_->schedule_log();
    cp.schedule.assign(log.begin(),
                       log.begin() + static_cast<std::ptrdiff_t>(sched_len));
    cp.memory_fingerprint = mem_fp;
    cp.next_seq = seq;
    std::shared_ptr<void> owner;
    const SimBuilder rebuild = [&](Sim& s) {
      owner = cfg_.setup(s);
      s.set_trace_recording(false);
    };
    sim_ = Sim::fork(cp, rebuild);
    owner_ = std::move(owner);
    acc_ = snap;
    sim_->add_sink(acc_);
  }

  [[nodiscard]] std::uint64_t state_key(Pid last) const {
    std::uint64_t h = state_fingerprint(*sim_);
    if (cfg_.objective.eval) {
      h = fingerprint_combine(h, cfg_.objective.digest
                                     ? cfg_.objective.digest(acc_)
                                     : acc_.digest());
    }
    if (cfg_.limits.max_preemptions >= 0) {
      // Under a preemption bound the last-scheduled pid is part of the
      // state: futures continuing it are free while switches cost budget,
      // so merging across different `last` would prune feasible subtrees.
      h = fingerprint_combine(h, static_cast<std::uint64_t>(last) + 1);
    }
    return h;
  }

  /// Prune iff the state was already explored with at least as much
  /// remaining budget: a stored visit at (depth', preempt') dominates when
  /// depth' <= depth and preempt' <= preempt (leaf evaluations are monotone
  /// along a run, so the dominating subtree's leaves subsume this one's).
  [[nodiscard]] bool visited_dominated(std::uint64_t key, int depth,
                                       int preempt) const {
    const auto it = visited_.find(key);
    if (it == visited_.end()) {
      return false;
    }
    return std::any_of(it->second.begin(), it->second.end(),
                       [&](const std::pair<int, int>& v) {
                         return v.first <= depth && v.second <= preempt;
                       });
  }

  void visited_insert(std::uint64_t key, int depth, int preempt) {
    std::vector<std::pair<int, int>>& v = visited_[key];
    std::erase_if(v, [&](const std::pair<int, int>& e) {
      return e.first >= depth && e.second >= preempt;
    });
    v.emplace_back(depth, preempt);
  }

  void eval_leaf(bool truncated) {
    if (!cfg_.objective.eval) {
      return;
    }
    if (truncated) {
      acc_.mark_truncated();  // cleared by the next backtrack restore
    }
    out_.take_leaf(cfg_.objective.eval(*sim_, acc_));
  }

  void leaf_completed() {
    ++out_.stats.runs_completed;
    eval_leaf(false);
  }

  void leaf_truncated() {
    ++out_.stats.runs_truncated;
    out_.stats.truncated = true;
    eval_leaf(true);
  }

  void dfs(int depth, int preempt, Pid last) {
    ++nodes_;
    ++out_.stats.states_visited;
    if (!sim_->any_runnable()) {
      leaf_completed();
      return;
    }
    if (depth >= cfg_.limits.max_depth) {
      leaf_truncated();
      return;
    }
    if (cfg_.limits.max_states != 0 && nodes_ >= cfg_.limits.max_states) {
      stop_ = true;
      out_.stats.state_budget_hit = true;
      leaf_truncated();  // the cut path counts like any truncated leaf
      return;
    }
    const int eff_preempt = cfg_.limits.max_preemptions < 0 ? 0 : preempt;
    if (cfg_.limits.prune_visited) {
      const std::uint64_t key = state_key(last);
      if (visited_dominated(key, depth, eff_preempt)) {
        ++out_.stats.pruned_visited;
        return;
      }
      visited_insert(key, depth, eff_preempt);
    }

    std::vector<Pid> branches;
    branches.reserve(static_cast<std::size_t>(cfg_.nprocs));
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (!sim_->runnable(p)) {
        continue;
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions >= 0 &&
          preempt + switch_cost > cfg_.limits.max_preemptions) {
        continue;
      }
      branches.push_back(p);
    }
    if (branches.empty()) {
      // Runnable processes exist but every switch is over the preemption
      // budget: the bounded space ends here.
      leaf_truncated();
      return;
    }

    // Node checkpoint for sibling restores (skipped for single branches:
    // the parent restores for us).
    const bool need_restore = branches.size() > 1;
    const std::size_t sched_len = sim_->schedule_log().size();
    const std::uint64_t mem_fp = sim_->memory().fingerprint();
    const Seq seq = sim_->next_seq();
    std::unique_ptr<MeasureAccumulator> acc_snap;
    if (need_restore) {
      acc_snap = std::make_unique<MeasureAccumulator>(acc_);
    }

    for (std::size_t b = 0; b < branches.size(); ++b) {
      if (stop_) {
        return;
      }
      if (b > 0) {
        restore(sched_len, *acc_snap, mem_fp, seq);
      }
      const Pid p = branches[b];
      try {
        sim_->step(p);
      } catch (const MutualExclusionViolation&) {
        ++out_.stats.violations;
        continue;  // sim is poisoned; the next iteration restores it
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      dfs(depth + 1, preempt + switch_cost, p);
    }
  }

  const Explorer::Config& cfg_;
  CellResult& out_;
  std::unique_ptr<Sim> sim_;
  std::shared_ptr<void> owner_;
  MeasureAccumulator acc_;
  std::unordered_map<std::uint64_t, std::vector<std::pair<int, int>>>
      visited_;
  std::uint64_t nodes_ = 0;
  bool stop_ = false;
};

}  // namespace

Explorer::Explorer(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.nprocs < 1) {
    throw std::invalid_argument("Explorer: nprocs must be >= 1");
  }
  if (!cfg_.setup) {
    throw std::invalid_argument("Explorer: setup callback is required");
  }
  if (cfg_.strategy == SearchStrategy::Exhaustive) {
    // Exhaustive means every interleaving within the depth bound: a
    // preemption limit left over from a Bounded configuration must not
    // silently shrink the certified space.
    cfg_.limits.max_preemptions = -1;
  }
  if (cfg_.strategy == SearchStrategy::Bounded &&
      cfg_.limits.max_preemptions < 0) {
    // Without a preemption bound, "Bounded" would silently run the full
    // exhaustive DFS — exponentially more states than the caller asked for.
    throw std::invalid_argument(
        "Explorer: Bounded strategy requires limits.max_preemptions >= 0");
  }
}

Explorer::Result Explorer::run(ExperimentRunner* runner) const {
  if (cfg_.strategy == SearchStrategy::Random) {
    return run_random_strategy(runner);
  }

  const int n = cfg_.nprocs;
  const int want_f =
      std::clamp(cfg_.limits.frontier_depth, 0, cfg_.limits.max_depth);
  // Frontier size n^f, capped so wide process counts do not explode the
  // cell grid. Depends only on (n, frontier_depth): thread-count invariant.
  std::size_t cells = 1;
  int f = 0;
  while (f < want_f && cells * static_cast<std::size_t>(n) <= 4096) {
    cells *= static_cast<std::size_t>(n);
    ++f;
  }

  std::vector<CellResult> slots(cells);
  runner_or_shared(runner).parallel_for(cells, [&](std::size_t c) {
    std::vector<Pid> prefix(static_cast<std::size_t>(f));
    std::size_t x = c;
    for (int i = f - 1; i >= 0; --i) {
      prefix[static_cast<std::size_t>(i)] = static_cast<Pid>(
          x % static_cast<std::size_t>(n));
      x /= static_cast<std::size_t>(n);
    }
    CellExplorer cell(cfg_, slots[c]);
    cell.run(prefix);
  });

  Result res;
  for (const CellResult& slot : slots) {  // index order: deterministic
    res.stats.merge(slot.stats);
    merge_best(res.best, slot.best);
  }
  return res;
}

Explorer::Result Explorer::run_random_strategy(
    ExperimentRunner* runner) const {
  std::vector<CellResult> slots(cfg_.seeds.size());
  runner_or_shared(runner).parallel_for(
      cfg_.seeds.size(), [&](std::size_t i) {
        Sim sim;
        const std::shared_ptr<void> owner = cfg_.setup(sim);
        sim.set_trace_recording(false);
        MeasureAccumulator acc(cfg_.nprocs);
        sim.add_sink(acc);
        RandomScheduler rnd(cfg_.seeds[i]);
        const RunOutcome out =
            drive(sim, rnd, RunLimits{cfg_.random_budget});
        CellResult& slot = slots[i];
        slot.stats.states_visited += sim.schedule_log().size();
        if (out == RunOutcome::BudgetExhausted) {
          acc.mark_truncated();
          slot.stats.runs_truncated += 1;
          slot.stats.truncated = true;
        } else {
          slot.stats.runs_completed += 1;
        }
        if (cfg_.objective.eval) {
          slot.take_leaf(cfg_.objective.eval(sim, acc));
        }
      });

  Result res;
  for (const CellResult& slot : slots) {
    res.stats.merge(slot.stats);
    merge_best(res.best, slot.best);
  }
  return res;
}

}  // namespace cfc
