#include "analysis/explorer.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <utility>

#include "analysis/slab_arena.h"
#include "analysis/visited_table.h"
#include "core/state_fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "por/dependence.h"
#include "por/sleep_sets.h"
#include "por/source_dpor.h"

namespace cfc {

const char* name(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::Exhaustive:
      return "exhaustive";
    case SearchStrategy::Bounded:
      return "bounded";
    case SearchStrategy::Random:
      return "random";
  }
  return "unknown";
}

const char* name(ReductionPolicy p) {
  switch (p) {
    case ReductionPolicy::Off:
      return "off";
    case ReductionPolicy::SleepLite:
      return "sleep-lite";
    case ReductionPolicy::SourceDpor:
      return "source-dpor";
    case ReductionPolicy::Hybrid:
      return "hybrid";
  }
  return "unknown";
}

std::optional<ReductionPolicy> reduction_policy_from(std::string_view s) {
  if (s == "off") {
    return ReductionPolicy::Off;
  }
  if (s == "sleep-lite") {
    return ReductionPolicy::SleepLite;
  }
  if (s == "source-dpor") {
    return ReductionPolicy::SourceDpor;
  }
  if (s == "hybrid") {
    return ReductionPolicy::Hybrid;
  }
  return std::nullopt;
}

ReductionPolicy effective_reduction(const ExploreLimits& l) {
  return l.reduction == ReductionPolicy::Off && l.reduce_independent
             ? ReductionPolicy::SleepLite
             : l.reduction;
}

std::span<const ExploreStatsField> explore_stats_fields() {
#define CFC_STATS_FIELD(field) ExploreStatsField{#field, &ExploreStats::field},
  static constexpr ExploreStatsField kFields[] = {
      CFC_EXPLORE_STATS_COUNTERS(CFC_STATS_FIELD)};
#undef CFC_STATS_FIELD
  return kFields;
}

void ExploreStats::merge(const ExploreStats& o) {
  for (const ExploreStatsField& f : explore_stats_fields()) {
    this->*f.member += o.*f.member;
  }
  truncated = truncated || o.truncated;
  state_budget_hit = state_budget_hit || o.state_budget_hit;
  frontier_clamped = frontier_clamped || o.frontier_clamped;
}

namespace {

/// Index-wise max_with reduction of objective report vectors (the single
/// definition behind leaf accumulation and the cell reductions).
void merge_best(std::vector<ComplexityReport>& best,
                const std::vector<ComplexityReport>& leaf) {
  if (leaf.empty()) {
    return;
  }
  if (best.empty()) {
    best = leaf;
    return;
  }
  const std::size_t k = std::min(best.size(), leaf.size());
  for (std::size_t i = 0; i < k; ++i) {
    best[i] = best[i].max_with(leaf[i]);
  }
}

/// Per-cell / per-work-item result slot; reduced in index order afterwards.
struct CellResult {
  ExploreStats stats;
  std::vector<ComplexityReport> best;

  void take_leaf(const std::vector<ComplexityReport>& leaf) {
    merge_best(best, leaf);
  }
};

/// One unit of the parallel source-DPOR execution: a realizable,
/// violation-free schedule prefix of planner picks (stored in the plan's
/// slab arena), the sleep mask at its horizon node, and the last pick.
/// Self-contained — any worker can claim it, reposition its private Sim,
/// and run the subtree; race detection below the horizon is per-path
/// (vector clocks live in the worker's own SourceDpor trace), so items
/// share no mutable state.
struct WorkItem {
  const Pid* prefix = nullptr;
  std::uint32_t len = 0;
  std::uint32_t sleep = 0;
  Pid last = -1;
};

/// One DFS engine: owns the live simulation, the live accumulator, the
/// per-cell visited table, the recycled scratch pools (branch stack,
/// per-depth accumulator snapshots and rewind marks), and — under
/// ReductionPolicy::SourceDpor — the per-path race detector and the
/// per-depth backtrack masks. Descends by stepping the live sim; backtracks
/// via per-depth RewindMarks (Sim::rewind_to_mark, the default), the plain
/// full-replay rewind (Sim::rewind_to), or the legacy fork-by-replay when
/// ExploreLimits::restore_by_fork is set.
///
/// Three entry points: run() walks one grid cell (policies Off/SleepLite),
/// plan() is the parallel source-DPOR planner, run_item() executes one
/// planner work item. A worker reuses one CellExplorer — and its Sim —
/// across every item it claims.
class CellExplorer {
 public:
  explicit CellExplorer(const Explorer::Config& cfg)
      : cfg_(cfg),
        acc_(cfg.nprocs),
        policy_(cfg.limits.reduction),
        use_marks_(cfg.limits.restore_marks && !cfg.limits.restore_by_fork &&
                   !cfg.limits.verify_restore_snapshot),
        use_scache_(cfg.limits.reduction == ReductionPolicy::SourceDpor &&
                    cfg.limits.prune_visited) {
    if (policy_ == ReductionPolicy::SourceDpor) {
      dpor_.emplace(cfg.nprocs);
      backtrack_.assign(
          static_cast<std::size_t>(cfg.limits.max_depth) + 1,
          SourceDpor::kForeignNode);
    }
  }

  /// Grid-cell DFS (policies Off and SleepLite; the source-DPOR policy
  /// goes through plan()/run_item() instead).
  void run(const std::vector<Pid>& prefix, CellResult& out) {
    out_ = &out;
    begin_metrics();
    run_cell(prefix);
    out.stats.visited_bytes += visited_.bytes();
    out.stats.visited_live_bytes += visited_.live_bytes();
    flush_metrics();
  }

  /// Parallel source-DPOR, phase 1: walks the top `horizon` levels of the
  /// tree with FULL branching over enabled-and-awake processes plus the
  /// measurement-aware sleep transfer, emitting one WorkItem per horizon
  /// node reached (prefix picks copied into `arena`). Runs on the calling
  /// thread only, so every counter it touches — including the planner
  /// levels' states/leaves/violations/sleep_blocked — is thread-count
  /// invariant by construction.
  ///
  /// Soundness of stopping worker race insertions at the horizon
  /// (SourceDpor::kForeignNode masks over prefix depths): full branching
  /// modulo sleep is a maximal persistent set at every planner node, and
  /// source sets only ever need a subset of a persistent set — any
  /// reordering of the prefix a subtree race could demand is already a
  /// planner branch, or asleep and therefore covered by a same-length
  /// explored reordering (the classic sleep-set argument).
  void plan(int horizon, SlabArena& arena, std::vector<WorkItem>& items,
            CellResult& out) {
    out_ = &out;
    begin_metrics();
    reset_sim();
    plan_dfs(0, /*last=*/-1, /*sleep=*/0, horizon, arena, items);
    // The planner's sleep cache lives for the whole walk (it is what makes
    // horizon-level re-convergence prune whole work items), so its
    // footprint is deterministic — account it here. Worker caches are
    // cleared per item and deliberately left out of the byte counters:
    // their reserved capacity depends on which items a worker happened to
    // claim, and every stat except steals/sims_built must stay
    // thread-count invariant.
    out.stats.visited_bytes += scache_.bytes();
    out.stats.visited_live_bytes += scache_.live_bytes();
    flush_metrics();
  }

  /// Parallel source-DPOR, phase 2: executes one work item. The first item
  /// builds the worker's private Sim; later items rewind it to the run
  /// start in place and re-step the prefix live (the planner proved it
  /// realizable and violation-free). Prefix units join the race detector's
  /// trace with foreign-node masks, exactly like the pre-parallel grid
  /// path. Repositioning is part of claiming the item, not a sibling
  /// backtrack, so it counts into neither restores nor replayed_steps.
  void run_item(const WorkItem& item, CellResult& out) {
    out_ = &out;
    begin_metrics();
    if (!sim_ || cfg_.limits.restore_by_fork) {
      reset_sim();
    } else {
      sim_->rewind_to(0);
      acc_ = MeasureAccumulator(cfg_.nprocs);  // sink address is stable
    }
    dpor_->clear();
    // A fresh sleep cache per item (capacity kept): cache hits must depend
    // only on the item's own subtree, never on which items this worker ran
    // before — that per-item scoping is what keeps every counter derived
    // from the pruning identical at every thread count.
    scache_.clear();
    std::fill(backtrack_.begin(), backtrack_.end(),
              SourceDpor::kForeignNode);
    nodes_ = 0;
    stop_ = false;
    int depth = 0;
    for (std::uint32_t i = 0; i < item.len; ++i) {
      const Pid p = item.prefix[i];
      if (!sim_->runnable(p)) {
        throw std::logic_error(
            "Explorer: work-item prefix diverged from the planner's run");
      }
      sim_->step(p);
      dpor_->push_step(depth, sim_->last_step_summary(), backtrack_);
      ++depth;
    }
    dfs_source(depth, item.last, item.sleep);
    // Per-item flush of the race detector's counters (clear() resets
    // them): the deltas land in the item's own slot and merge in item
    // index order, keeping the totals thread-count invariant.
    out.stats.races_detected += dpor_->stats().races_detected;
    out.stats.backtrack_points += dpor_->stats().backtrack_points;
    out.stats.static_refined_pairs += dpor_->stats().static_refined_pairs;
    flush_metrics();
  }

 private:
  void run_cell(const std::vector<Pid>& prefix) {
    reset_sim();
    int preempt = 0;
    Pid last = -1;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      const Pid p = prefix[i];
      if (!sim_->any_runnable()) {
        // Terminal before the frontier: exactly one cell — the one whose
        // remaining digits are all zero — owns this leaf.
        if (all_zero_from(prefix, i)) {
          ++nodes_;
          ++out_->stats.states_visited;
          leaf_completed();
        }
        return;
      }
      if (!allowed_pick_exists(preempt, last)) {
        // Runnable processes remain but every pick is over the preemption
        // budget (the last-running process finished): the bounded space
        // ends here, exactly as dfs() records it below the frontier.
        if (all_zero_from(prefix, i)) {
          ++nodes_;
          ++out_->stats.states_visited;
          leaf_truncated();
        }
        return;
      }
      if (!sim_->runnable(p)) {
        return;  // unrealizable branch; the runnable-digit cells cover it
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions >= 0 &&
          preempt + switch_cost > cfg_.limits.max_preemptions) {
        return;  // excluded by the bound; the allowed-digit cells cover it
      }
      preempt += switch_cost;
      try {
        sim_->step(p);
      } catch (const MutualExclusionViolation&) {
        if (all_zero_from(prefix, i + 1)) {
          ++out_->stats.violations;
        }
        return;
      }
      last = p;
    }
    dfs(static_cast<int>(prefix.size()), preempt, last, /*sleep=*/0);
  }

  [[nodiscard]] static bool all_zero_from(const std::vector<Pid>& prefix,
                                          std::size_t from) {
    return std::all_of(prefix.begin() + static_cast<std::ptrdiff_t>(from),
                       prefix.end(), [](Pid p) { return p == 0; });
  }

  /// True iff some runnable pick fits the remaining preemption budget.
  [[nodiscard]] bool allowed_pick_exists(int preempt, Pid last) const {
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (!sim_->runnable(p)) {
        continue;
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions < 0 ||
          preempt + switch_cost <= cfg_.limits.max_preemptions) {
        return true;
      }
    }
    return false;
  }

  void reset_sim() {
    sim_ = std::make_unique<Sim>();
    owner_ = cfg_.setup(*sim_);
    sim_->set_trace_recording(false);
    if (!cfg_.limits.restore_by_fork) {
      sim_->mark_rewind_base();
    }
    ++out_->stats.sims_built;
    acc_ = MeasureAccumulator(cfg_.nprocs);
    sim_->add_sink(acc_);
  }

  /// Captures the node checkpoint the siblings restore to: the accumulator
  /// snapshot, the RewindMark (default restore path), and the debug memory
  /// snapshot — all held in per-depth pools, so steady state this
  /// allocates nothing.
  void capture_node(int depth) {
    ensure_pools(depth);
    const auto d = static_cast<std::size_t>(depth);
    acc_pool_[d] = acc_;
    if (use_marks_) {
      sim_->capture_mark(mark_pool_[d]);
      ++out_->stats.restore_marks;
    }
    if (cfg_.limits.verify_restore_snapshot) {
      mem_pool_[d] = sim_->memory().snapshot();
    }
  }

  /// Repositions the engine at the node checkpointed by capture_node at
  /// `depth`, restoring the node's accumulator snapshot. Default: the
  /// mark-based partial restore (Sim::rewind_to_mark) — only processes
  /// that acted below the node are value-replayed, counted in
  /// value_replayed_steps (replayed_steps stays 0: nothing re-executes
  /// live on this path). Fallbacks: the full
  /// in-place rewind (under verify_restore_snapshot or restore_marks
  /// off), and the legacy fork-by-replay (restore_by_fork) against a
  /// freshly built simulation; both re-execute the whole prefix.
  void restore(int depth, std::size_t sched_len, std::uint64_t mem_fp,
               Seq seq) {
    // Rewinds are far too frequent to record individually; sample 1/256
    // so traces show representative restore costs without drowning.
    ++rewind_tick_;
    const obs::TraceSpan rewind_span(
        (rewind_tick_ & 0xffu) == 0u ? "explorer.rewind" : nullptr);
    ++out_->stats.restores;
    const auto d = static_cast<std::size_t>(depth);
    if (cfg_.limits.restore_by_fork) {
      out_->stats.replayed_steps += sched_len;
      const auto& log = sim_->schedule_log();
      std::shared_ptr<void> owner;
      const SimBuilder rebuild = [&](Sim& s) {
        owner = cfg_.setup(s);
        s.set_trace_recording(false);
      };
      // The old sim_ stays alive (and its log unmodified) until the fork's
      // replay of the borrowed span completes.
      std::unique_ptr<Sim> fresh =
          Sim::fork(std::span(log.data(), sched_len), mem_fp, seq, rebuild,
                    cfg_.limits.verify_restore_snapshot ? &mem_pool_[d]
                                                        : nullptr);
      ++out_->stats.sims_built;
      sim_ = std::move(fresh);
      owner_ = std::move(owner);
      acc_ = acc_pool_[d];
      sim_->add_sink(acc_);
    } else if (use_marks_) {
      out_->stats.value_replayed_steps += sim_->rewind_to_mark(mark_pool_[d]);
      acc_ = acc_pool_[d];  // the sink stays attached; plain-data restore
    } else {
      out_->stats.replayed_steps += sched_len;
      sim_->rewind_to(sched_len, mem_fp, seq,
                      cfg_.limits.verify_restore_snapshot ? &mem_pool_[d]
                                                          : nullptr);
      acc_ = acc_pool_[d];
    }
  }

  [[nodiscard]] std::uint64_t state_key(Pid last, std::uint32_t sleep) const {
    std::uint64_t h = state_fingerprint(*sim_);
    if (cfg_.objective.eval) {
      h = fingerprint_combine(h, cfg_.objective.digest
                                     ? cfg_.objective.digest(acc_)
                                     : acc_.digest());
    }
    if (cfg_.limits.max_preemptions >= 0) {
      // Under a preemption bound the last-scheduled pid is part of the
      // state: futures continuing it are free while switches cost budget,
      // so merging across different `last` would prune feasible subtrees.
      h = fingerprint_combine(h, static_cast<std::uint64_t>(last) + 1);
    }
    if (policy_ != ReductionPolicy::Off) {
      // A sleeping process shrinks the subtree explored from here, so a
      // visit with one sleep set must not stand in for a visit with
      // another (classic sleep-set/state-cache interaction).
      h = fingerprint_combine(h, static_cast<std::uint64_t>(sleep) |
                                     0x100000000ULL);
    }
    return h;
  }

  /// Key for the sleep-set-aware cache (stateful source-DPOR): state
  /// fingerprint x objective digest, WITHOUT the sleep mask — the mask is
  /// the cache's value dimension (SleepCache subsumption), not part of the
  /// key. No last-pid fold either: source-DPOR is Exhaustive-only, so
  /// there is no preemption budget to make `last` state.
  [[nodiscard]] std::uint64_t scache_key() const {
    std::uint64_t h = state_fingerprint(*sim_);
    if (cfg_.objective.eval) {
      h = fingerprint_combine(h, cfg_.objective.digest
                                     ? cfg_.objective.digest(acc_)
                                     : acc_.digest());
    }
    return h;
  }

  void eval_leaf(bool truncated) {
    if (!cfg_.objective.eval) {
      return;
    }
    if (truncated) {
      acc_.mark_truncated();  // cleared by the next backtrack restore
    }
    out_->take_leaf(cfg_.objective.eval(*sim_, acc_));
  }

  void leaf_completed() {
    ++out_->stats.runs_completed;
    eval_leaf(false);
  }

  void leaf_truncated() {
    ++out_->stats.runs_truncated;
    out_->stats.truncated = true;
    eval_leaf(true);
  }

  /// Grows the per-depth scratch pools to cover `depth`.
  void ensure_pools(int depth) {
    const auto need = static_cast<std::size_t>(depth) + 1;
    while (acc_pool_.size() < need) {
      acc_pool_.emplace_back(cfg_.nprocs);
    }
    if (use_marks_ && mark_pool_.size() < need) {
      mark_pool_.resize(need);
    }
    if (cfg_.limits.verify_restore_snapshot) {
      while (mem_pool_.size() < need) {
        mem_pool_.emplace_back();
      }
    }
  }

  /// Captures every process's NextStep into the flat per-depth pend pool
  /// (hot-path round 4): slot [depth*nprocs, (depth+1)*nprocs) replaces a
  /// kMaxPorProcs array in every recursion frame. Descendants only write
  /// deeper slots, so a frame's capture survives its recursive calls;
  /// frames re-derive the pointer via pend_at() after recursing, so pool
  /// growth never dangles a span.
  void capture_pendings(int depth) {
    const auto np = static_cast<std::size_t>(cfg_.nprocs);
    const std::size_t base = static_cast<std::size_t>(depth) * np;
    if (pend_pool_.size() < base + np) {
      pend_pool_.resize(base + np);
    }
    NextStep* out = pend_pool_.data() + base;
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      out[static_cast<std::size_t>(p)] = next_step_of(*sim_, p, cfg_.statics.get());
    }
  }

  [[nodiscard]] std::span<const NextStep> pend_at(int depth) const {
    const auto np = static_cast<std::size_t>(cfg_.nprocs);
    return {pend_pool_.data() + static_cast<std::size_t>(depth) * np, np};
  }

  /// SourceDpor: placement-bucket and droppable-unit insertions for a
  /// depth-horizon cut (SourceDpor::note_cut). Uses the cut node's own
  /// pool slot — nothing else captured at this depth (the node returns
  /// without branching).
  void cut_point_insertions(int depth, std::uint32_t sleep) {
    capture_pendings(depth);
    std::uint32_t enabled = 0;
    for (Pid q = 0; q < cfg_.nprocs; ++q) {
      if (sim_->runnable(q) && ((sleep >> q) & 1u) == 0) {
        enabled |= 1u << static_cast<unsigned>(q);
      }
    }
    dpor_->note_cut(enabled, pend_at(depth), backtrack_);
  }

  /// Node-entry outcome of classify_node: the leaf accounting shared by
  /// every policy's DFS, with the depth-horizon cut distinguished so the
  /// source-DPOR path can attach its cut-point insertions to it.
  enum class NodeEntry : std::uint8_t {
    Interior,  ///< explore branches
    Leaf,      ///< completed run, or cut by the state budget
    DepthCut,  ///< truncated by the depth horizon
  };

  /// Leaf and budget checks shared by every policy's node entry (the
  /// single definition of the nodes_/states_visited/leaf accounting the
  /// reduced-vs-unreduced stat comparisons rely on). The nodes_ budget
  /// (ExploreLimits::max_states) is per engine run: per grid cell, per
  /// planner walk, per work item.
  [[nodiscard]] NodeEntry classify_node(int depth) {
    ++nodes_;
    ++out_->stats.states_visited;
    if ((nodes_ & 0x1fffu) == 0u) {
      flush_metrics();  // periodic export; one relaxed load when disabled
    }
    if (!sim_->any_runnable()) {
      leaf_completed();
      return NodeEntry::Leaf;
    }
    if (depth >= cfg_.limits.max_depth) {
      leaf_truncated();
      return NodeEntry::DepthCut;
    }
    if (cfg_.limits.max_states != 0 && nodes_ >= cfg_.limits.max_states) {
      stop_ = true;
      out_->stats.state_budget_hit = true;
      leaf_truncated();  // the cut path counts like any truncated leaf
      return NodeEntry::Leaf;
    }
    return NodeEntry::Interior;
  }

  /// The unreduced / sleep-lite DFS (policies Off and SleepLite).
  void dfs(int depth, int preempt, Pid last, std::uint32_t sleep) {
    if (classify_node(depth) != NodeEntry::Interior) {
      return;
    }
    const bool reduce = policy_ == ReductionPolicy::SleepLite;
    const int eff_preempt = cfg_.limits.max_preemptions < 0 ? 0 : preempt;
    if (cfg_.limits.prune_visited &&
        visited_.check_and_insert(state_key(last, sleep), depth,
                                  eff_preempt)) {
      ++out_->stats.pruned_visited;
      return;
    }

    // Collect branches into the shared scratch stack (zero per-node
    // allocation), continue-last-pid-first: the first branch descends the
    // live sim with no restore at all, so leading with the running process
    // makes that free descent the preemption-free spine.
    const std::size_t base = branch_buf_.size();
    bool skipped_sleeping = false;
    const auto admit = [&](Pid p) {
      if (!sim_->runnable(p)) {
        return;
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions >= 0 &&
          preempt + switch_cost > cfg_.limits.max_preemptions) {
        return;
      }
      if (reduce && ((sleep >> p) & 1u) != 0) {
        // Asleep: every schedule starting here is a reordering of one
        // already explored through an earlier sibling.
        skipped_sleeping = true;
        ++out_->stats.pruned_independent;
        ++out_->stats.sleep_blocked;
        return;
      }
      branch_buf_.push_back(p);
    };
    if (last != -1) {
      admit(last);
    }
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (p != last) {
        admit(p);
      }
    }

    const std::size_t nb = branch_buf_.size() - base;
    if (nb == 0) {
      if (!skipped_sleeping) {
        // Runnable processes exist but every switch is over the preemption
        // budget: the bounded space ends here.
        leaf_truncated();
      }
      // All-asleep nodes are covered elsewhere: not a leaf of the reduced
      // tree, nothing to do.
      return;
    }

    // Node checkpoint for sibling restores (skipped for single branches:
    // the parent restores for us).
    const std::size_t sched_len = sim_->schedule_log().size();
    const std::uint64_t mem_fp = sim_->memory().fingerprint();
    const Seq seq = sim_->next_seq();
    if (nb > 1) {
      capture_node(depth);
    }

    if (reduce) {
      capture_pendings(depth);  // single-branch nodes still inherit sleepers
    }

    std::uint32_t explored = 0;
    for (std::size_t b = 0; b < nb; ++b) {
      if (stop_) {
        break;
      }
      const Pid p = branch_buf_[base + b];
      if (b > 0) {
        restore(depth, sched_len, mem_fp, seq);
      }
      try {
        sim_->step(p);
      } catch (const MutualExclusionViolation&) {
        ++out_->stats.violations;
        continue;  // sim is poisoned; the next iteration restores it
      }
      std::uint32_t child_sleep = 0;
      if (reduce) {
        // The child keeps asleep every earlier-explored or inherited
        // process whose next access is independent of the step just
        // taken (PR 4's register-only lite relation, preserved verbatim).
        const SleepSet candidates(
            (sleep | explored) & ~(1u << static_cast<unsigned>(p)));
        const std::span<const NextStep> pends = pend_at(depth);
        child_sleep =
            transfer_sleep_lite(candidates, pends[static_cast<std::size_t>(p)],
                                pends, &out_->stats.static_refined_pairs)
                .mask();
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      dfs(depth + 1, preempt + switch_cost, p, child_sleep);
      explored |= 1u << static_cast<unsigned>(p);
    }
    branch_buf_.resize(base);
  }

  /// The source-DPOR DFS (policy SourceDpor; Exhaustive only, so there is
  /// no preemption accounting). Instead of branching on every enabled
  /// process, the node starts from ONE seed branch and grows its backtrack
  /// mask on demand: the race detector (por/source_dpor.h) watches every
  /// executed unit and inserts, per race against the current path, a
  /// source-set process at the ancestor node that ran the raced-with unit.
  /// Sleep sets (full, measurement-aware transfer) prune the redundant
  /// reorderings exactly as in the classic combination: explored branches
  /// join the node's sleep mask, and the child keeps asleep every sleeper
  /// whose captured next step is independent of the unit just taken.
  void dfs_source(int depth, Pid last, std::uint32_t sleep) {
    switch (classify_node(depth)) {
      case NodeEntry::Leaf:
        // Completed, or cut by the state budget — a budget cut leaves the
        // result uncertified anyway, so there is nothing for cut-point
        // insertions to protect.
        return;
      case NodeEntry::DepthCut:
        // Bounded-search soundness (SourceDpor::note_cut): the units
        // beyond the horizon never execute, so their races never seed the
        // reorderings that run the cut-off processes earlier. Insert each
        // enabled process's captured pending unit at its placement
        // buckets along the path instead. Sleeping processes are covered
        // by reorderings of equal length, so the sleep argument stands
        // and they are skipped.
        cut_point_insertions(depth, sleep);
        return;
      case NodeEntry::Interior:
        break;
    }
    // Stateful DPOR: skip the subtree when a stored visit of this state
    // subsumes it — equal fingerprint implies equal per-process histories
    // (so equal remaining depth and equal accumulator), and a stored sleep
    // set S that is a subset of the current one means the stored subtree
    // covered every behavior this visit could, so its leaves already
    // contributed the same objective values. The one thing the skipped
    // subtree still owes the *current* path is its race-driven backtrack
    // insertions (they are path-dependent); the bounded-horizon cut-point
    // insertions conservatively re-place them, exactly as at a DepthCut.
    if (use_scache_ && scache_.check_and_insert(scache_key(), sleep)) {
      ++out_->stats.pruned_visited;
      cut_point_insertions(depth, sleep);
      return;
    }
    std::uint32_t enabled = 0;
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (sim_->runnable(p)) {
        enabled |= 1u << static_cast<unsigned>(p);
      }
    }
    const std::uint32_t asleep = enabled & sleep;
    if (asleep != 0) {
      const auto blocked =
          static_cast<std::uint64_t>(std::popcount(asleep));
      out_->stats.sleep_blocked += blocked;
      out_->stats.pruned_independent += blocked;
    }
    const std::uint32_t avail = enabled & ~sleep;
    if (avail == 0) {
      // Every enabled branch is asleep: each is a reordering of an
      // explored schedule — not a leaf of the reduced tree.
      return;
    }

    // Seed the backtrack set with one branch, continue-last-pid-first so
    // the restore-free first descent stays on the preemption-free spine;
    // race insertions from the subtree grow the mask while this node's
    // loop is suspended in recursion.
    const Pid seed = (last != -1 && ((avail >> last) & 1u) != 0)
                         ? last
                         : static_cast<Pid>(std::countr_zero(avail));
    backtrack_[static_cast<std::size_t>(depth)] =
        1u << static_cast<unsigned>(seed);

    // Node checkpoint: unlike the full-branching DFS, the branch count is
    // not known up front (insertions arrive later), so capture always.
    const std::size_t sched_len = sim_->schedule_log().size();
    const std::uint64_t mem_fp = sim_->memory().fingerprint();
    const Seq seq = sim_->next_seq();
    capture_node(depth);
    capture_pendings(depth);

    bool first = true;
    while (!stop_) {
      const std::uint32_t todo =
          backtrack_[static_cast<std::size_t>(depth)] & enabled & ~sleep;
      if (todo == 0) {
        break;
      }
      const Pid p = (last != -1 && ((todo >> last) & 1u) != 0)
                        ? last
                        : static_cast<Pid>(std::countr_zero(todo));
      if (!first) {
        restore(depth, sched_len, mem_fp, seq);
      }
      first = false;
      const std::size_t trace_len = dpor_->size();
      bool violated = false;
      try {
        sim_->step(p);
      } catch (const MutualExclusionViolation&) {
        ++out_->stats.violations;
        violated = true;  // sim is poisoned; the next iteration restores it
      }
      // Race-detect even the violating unit (its partial summary covers
      // everything that took effect): the reorderings its races demand
      // may be perfectly safe schedules.
      dpor_->push_step(depth, sim_->last_step_summary(), backtrack_);
      if (!violated) {
        const std::uint32_t candidates =
            sleep & ~(1u << static_cast<unsigned>(p));
        const std::uint32_t child_sleep =
            transfer_sleep(SleepSet(candidates), sim_->last_step_summary(),
                           pend_at(depth), &out_->stats.static_refined_pairs)
                .mask();
        dfs_source(depth + 1, p, child_sleep);
      }
      dpor_->pop_to(trace_len);
      // The explored (or excluded-violating) branch goes to sleep for its
      // later siblings: schedules starting with it here are covered.
      sleep |= 1u << static_cast<unsigned>(p);
    }
  }

  /// The planner walk behind plan(): full branching over enabled-and-awake
  /// processes with the measurement-aware sleep transfer — the same
  /// reduction dfs_source applies, minus the race-driven narrowing (the
  /// planner cannot see the workers' races, so it must branch over the
  /// whole persistent set). Leaves/violations inside the planner levels
  /// are recorded here, once, ever — no work item re-visits them.
  void plan_dfs(int depth, Pid last, std::uint32_t sleep, int horizon,
                SlabArena& arena, std::vector<WorkItem>& items) {
    if (depth == horizon) {
      // Stateful pruning across work items: when an equal horizon state
      // was already emitted under a subset sleep mask, that item's subtree
      // covers this one — skip emitting it entirely. No insertions are
      // owed: every planner node full-branches over enabled-and-awake
      // processes (a maximal persistent set), so any prefix reordering a
      // skipped subtree's race could demand is already a planner branch,
      // and the planner's own backtrack masks are never consulted.
      if (use_scache_ && scache_.check_and_insert(scache_key(), sleep)) {
        ++out_->stats.pruned_visited;
        return;
      }
      // The horizon node itself belongs to the work item (the worker's
      // dfs_source classifies it), keeping node accounting disjoint.
      Pid* stored = arena.alloc<Pid>(path_.size());
      std::copy(path_.begin(), path_.end(), stored);
      items.push_back(WorkItem{stored,
                               static_cast<std::uint32_t>(path_.size()),
                               sleep, last});
      ++out_->stats.work_items;
      return;
    }
    switch (classify_node(depth)) {
      case NodeEntry::Leaf:
        return;
      case NodeEntry::DepthCut:
        // Unreachable (horizon <= max_depth), but keep the cut sound.
        cut_point_insertions(depth, sleep);
        return;
      case NodeEntry::Interior:
        break;
    }
    // Stateful pruning of planner-level re-convergence: same subsumption
    // rule as dfs_source, same no-insertions-owed argument as the horizon
    // check above (planner nodes full-branch over a maximal persistent
    // set). A hit prunes every work item the subtree would have emitted.
    if (use_scache_ && scache_.check_and_insert(scache_key(), sleep)) {
      ++out_->stats.pruned_visited;
      return;
    }
    std::uint32_t enabled = 0;
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (sim_->runnable(p)) {
        enabled |= 1u << static_cast<unsigned>(p);
      }
    }
    const std::uint32_t asleep = enabled & sleep;
    if (asleep != 0) {
      const auto blocked =
          static_cast<std::uint64_t>(std::popcount(asleep));
      out_->stats.sleep_blocked += blocked;
      out_->stats.pruned_independent += blocked;
    }
    const std::uint32_t avail = enabled & ~sleep;
    if (avail == 0) {
      return;  // every enabled branch asleep: covered by reorderings
    }

    // Full branching, continue-last-pid-first then ascending pid — the
    // same deterministic order the other walks use.
    const std::size_t base = branch_buf_.size();
    if (last != -1 && ((avail >> last) & 1u) != 0) {
      branch_buf_.push_back(last);
    }
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (p != last && ((avail >> p) & 1u) != 0) {
        branch_buf_.push_back(p);
      }
    }
    const std::size_t nb = branch_buf_.size() - base;

    const std::size_t sched_len = sim_->schedule_log().size();
    const std::uint64_t mem_fp = sim_->memory().fingerprint();
    const Seq seq = sim_->next_seq();
    if (nb > 1) {
      capture_node(depth);
    }
    capture_pendings(depth);

    for (std::size_t b = 0; b < nb; ++b) {
      if (stop_) {
        break;
      }
      const Pid p = branch_buf_[base + b];
      if (b > 0) {
        restore(depth, sched_len, mem_fp, seq);
      }
      bool violated = false;
      try {
        sim_->step(p);
      } catch (const MutualExclusionViolation&) {
        ++out_->stats.violations;
        violated = true;  // sim is poisoned; the next iteration restores it
      }
      if (!violated) {
        const std::uint32_t candidates =
            sleep & ~(1u << static_cast<unsigned>(p));
        const std::uint32_t child_sleep =
            transfer_sleep(SleepSet(candidates), sim_->last_step_summary(),
                           pend_at(depth), &out_->stats.static_refined_pairs)
                .mask();
        path_.push_back(p);
        plan_dfs(depth + 1, p, child_sleep, horizon, arena, items);
        path_.pop_back();
      }
      // Explored (or excluded-violating) branches sleep for later
      // siblings, exactly as in dfs_source.
      sleep |= 1u << static_cast<unsigned>(p);
    }
    branch_buf_.resize(base);
  }

  /// Starts a fresh metric epoch for the engine run about to begin (the
  /// flush cursor tracks out_->stats, which each run/plan/run_item starts
  /// from zero).
  void begin_metrics() { flushed_ = ExploreStats{}; }

  /// Exports the counter growth since the last flush into the global
  /// registry. Deltas rather than totals so per-worker shard sums equal
  /// the true totals regardless of which worker ran what; a no-op (one
  /// relaxed load) while the registry is disabled. Reads out_->stats only
  /// — the registry never feeds back into the search, so enabling it
  /// cannot change any result.
  void flush_metrics() {
    obs::MetricRegistry& m = obs::MetricRegistry::global();
    if (!m.enabled()) {
      return;
    }
    const ExploreStats& s = out_->stats;
    const auto bump = [&](obs::Metric id, std::uint64_t ExploreStats::*f) {
      m.add(id, s.*f - flushed_.*f);
      flushed_.*f = s.*f;
    };
    bump(obs::Metric::states_visited, &ExploreStats::states_visited);
    bump(obs::Metric::cache_hits, &ExploreStats::pruned_visited);
    bump(obs::Metric::sleep_blocked, &ExploreStats::sleep_blocked);
    bump(obs::Metric::restores, &ExploreStats::restores);
    bump(obs::Metric::races_detected, &ExploreStats::races_detected);
    bump(obs::Metric::backtrack_points, &ExploreStats::backtrack_points);
    bump(obs::Metric::restore_marks, &ExploreStats::restore_marks);
    m.set_max(obs::Metric::visited_live_bytes,
              use_scache_ ? scache_.live_bytes() : visited_.live_bytes());
  }

  const Explorer::Config& cfg_;
  CellResult* out_ = nullptr;
  std::unique_ptr<Sim> sim_;
  std::shared_ptr<void> owner_;
  MeasureAccumulator acc_;
  VisitedTable visited_;
  /// Stateful source-DPOR only (use_scache_): the sleep-set-aware cache.
  /// Planner: one cache across the whole walk. Worker: cleared per item.
  SleepCache scache_;
  std::vector<Pid> branch_buf_;  ///< shared branch scratch stack
  std::vector<Pid> path_;        ///< planner: picks along the current path
  /// Flat per-depth pending captures (capture_pendings / pend_at): one
  /// contiguous slab instead of a kMaxPorProcs array per recursion frame.
  std::vector<NextStep> pend_pool_;
  std::vector<MeasureAccumulator> acc_pool_;  ///< per-depth node snapshots
  std::vector<Sim::RewindMark> mark_pool_;    ///< per-depth rewind marks
  std::vector<MemorySnapshot> mem_pool_;  ///< per-depth debug snapshots
  std::uint64_t nodes_ = 0;
  std::uint64_t rewind_tick_ = 0;  ///< restore() sampling counter
  ExploreStats flushed_;  ///< metric-flush cursor (see flush_metrics)
  bool stop_ = false;
  ReductionPolicy policy_ = ReductionPolicy::Off;
  bool use_marks_ = false;
  bool use_scache_ = false;
  /// SourceDpor only: the race detector over the current path and the
  /// per-depth node backtrack masks it inserts into (prefix depths hold
  /// the foreign-node sentinel).
  std::optional<SourceDpor> dpor_;
  std::vector<std::uint32_t> backtrack_;
};

}  // namespace

Explorer::Explorer(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.nprocs < 1) {
    throw std::invalid_argument("Explorer: nprocs must be >= 1");
  }
  if (!cfg_.setup) {
    throw std::invalid_argument("Explorer: setup callback is required");
  }
  if (cfg_.strategy == SearchStrategy::Exhaustive) {
    // Exhaustive means every interleaving within the depth bound: a
    // preemption limit left over from a Bounded configuration must not
    // silently shrink the certified space.
    cfg_.limits.max_preemptions = -1;
  }
  if (cfg_.strategy == SearchStrategy::Bounded &&
      cfg_.limits.max_preemptions < 0) {
    // Without a preemption bound, "Bounded" would silently run the full
    // exhaustive DFS — exponentially more states than the caller asked for.
    throw std::invalid_argument(
        "Explorer: Bounded strategy requires limits.max_preemptions >= 0");
  }
  // Normalize the legacy sleep-set-lite flag into the policy field (and
  // back, so introspection through either agrees).
  cfg_.limits.reduction = effective_reduction(cfg_.limits);
  cfg_.limits.reduce_independent =
      cfg_.limits.reduction == ReductionPolicy::SleepLite;
  if (cfg_.limits.reduction != ReductionPolicy::Off) {
    if (cfg_.strategy != SearchStrategy::Exhaustive) {
      // Under a preemption budget a sleeping branch's covering reordering
      // may itself be out of budget, so the reduction would cut feasible
      // space; restrict it to the strategy it is defined for.
      throw std::invalid_argument(
          "Explorer: partial-order reduction requires the Exhaustive "
          "strategy");
    }
    if (cfg_.nprocs > kMaxPorProcs) {
      throw std::invalid_argument(
          "Explorer: partial-order reduction supports at most 32 processes");
    }
  }
  // Static refinement (src/sa/): build the footprint/conflict model once,
  // here — run() is const and every walk (grid cells, planner, workers,
  // hybrid probes via Config copies) must share one deterministic model.
  // Random search never consults pending-side dependence, so the flag is
  // inert there and the analysis cost is skipped.
  if (cfg_.limits.static_refine &&
      cfg_.strategy != SearchStrategy::Random && !cfg_.statics) {
    cfg_.statics = std::make_shared<const StaticModel>(
        StaticModel::analyze(cfg_.setup, cfg_.nprocs));
  }
}

namespace {

/// Hard cap on the cell grid / planner fan-out; n^f is clamped under it.
constexpr std::size_t kFrontierCellCap = 4096;

/// Frontier split depth f: prefixes of f picks form the cell grid of
/// n^f cells (grid policies) or the planner horizon (source-DPOR), capped
/// so wide process counts cannot explode — or overflow — the cell count.
/// Depends only on (n, frontier_depth): thread-count invariant. A clamp
/// below the requested depth logs a one-shot warning AND reports through
/// `clamped` so ExploreStats::frontier_clamped (and the study JSON) make
/// the coarser fan-out machine-readable.
int frontier_split_depth(int nprocs, const ExploreLimits& limits,
                         bool* clamped = nullptr) {
  const int want_f = std::clamp(limits.frontier_depth, 0, limits.max_depth);
  // Division instead of multiplication: overflow-proof for any nprocs.
  const std::size_t max_cells =
      kFrontierCellCap / static_cast<std::size_t>(nprocs);
  std::size_t cells = 1;
  int f = 0;
  while (f < want_f && cells <= max_cells) {
    cells *= static_cast<std::size_t>(nprocs);
    ++f;
  }
  if (f < want_f) {
    if (clamped != nullptr) {
      *clamped = true;
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "cfc: Explorer frontier depth clamped from %d to %d "
                   "(%d^%d cells would exceed the %zu-cell cap)\n",
                   want_f, f, nprocs, want_f, kFrontierCellCap);
    }
  }
  return f;
}

std::size_t cells_for_depth(int nprocs, int f) {
  std::size_t cells = 1;
  for (int i = 0; i < f; ++i) {
    cells *= static_cast<std::size_t>(nprocs);
  }
  return cells;
}

}  // namespace

std::size_t Explorer::frontier_cells(int nprocs,
                                     const ExploreLimits& limits) {
  return cells_for_depth(nprocs, frontier_split_depth(nprocs, limits));
}

Explorer::Result Explorer::run(ExperimentRunner* runner) const {
  if (cfg_.strategy == SearchStrategy::Random) {
    return run_random_strategy(runner);
  }
  if (cfg_.limits.reduction == ReductionPolicy::Hybrid) {
    return run_hybrid(runner);
  }
  if (cfg_.limits.reduction == ReductionPolicy::SourceDpor) {
    return run_source_dpor(runner);
  }

  const int n = cfg_.nprocs;
  bool clamped = false;
  const int f = frontier_split_depth(n, cfg_.limits, &clamped);
  const std::size_t cells = cells_for_depth(n, f);

  std::vector<CellResult> slots(cells);
  runner_or_shared(runner).parallel_for(cells, [&](std::size_t c) {
    std::vector<Pid> prefix(static_cast<std::size_t>(f));
    std::size_t x = c;
    for (int i = f - 1; i >= 0; --i) {
      prefix[static_cast<std::size_t>(i)] = static_cast<Pid>(
          x % static_cast<std::size_t>(n));
      x /= static_cast<std::size_t>(n);
    }
    const obs::TraceSpan cell_span("explorer.cell");
    CellExplorer cell(cfg_);
    cell.run(prefix, slots[c]);
  });

  Result res;
  res.reduction_used = cfg_.limits.reduction;
  res.stats.frontier_clamped = clamped;
  for (const CellResult& slot : slots) {  // index order: deterministic
    res.stats.merge(slot.stats);
    merge_best(res.best, slot.best);
  }
  return res;
}

Explorer::Result Explorer::run_source_dpor(ExperimentRunner* runner) const {
  bool clamped = false;
  const int f = frontier_split_depth(cfg_.nprocs, cfg_.limits, &clamped);

  // Phase 1 — sequential planner: full-branching walk (mod sleep) of the
  // top f levels, emitting one self-contained work item per horizon node.
  // Everything the planner counts is thread-count invariant because only
  // the calling thread runs it.
  SlabArena arena;
  std::vector<WorkItem> items;
  CellResult planner_slot;
  {
    const obs::TraceSpan plan_span("explorer.plan");
    CellExplorer planner(cfg_);
    planner.plan(f, arena, items, planner_slot);
  }
  {
    obs::MetricRegistry& m = obs::MetricRegistry::global();
    if (m.enabled()) {
      m.add(obs::Metric::work_items, items.size());
      m.set_max(obs::Metric::slab_bytes, arena.bytes_reserved());
    }
  }

  // Phase 2 — work-stealing execution: items are dealt in contiguous
  // blocks into per-worker queues; a worker drains its own queue first
  // (fetch_add claims), then sweeps the other queues for leftovers. Each
  // worker owns one private Sim + CellExplorer reused across its items and
  // accumulates each item into a worker-LOCAL result, published to the
  // item's shared slot once at item end: the per-node stat increments were
  // previously direct writes through the slots array, whose adjacent
  // ~200-byte entries share cache lines — under the old round-robin deal
  // every neighbour belonged to a different worker, and the resulting
  // false sharing on the hottest counters (states_visited bumps on every
  // DFS node) cost more than the parallelism bought back (the measured
  // threads=4 < threads=1 regression on the scaling bench). The slot
  // merge below runs in item index order — the totals cannot depend on
  // which worker ran what, only `steals` (and sims_built) reflect the
  // scheduling.
  std::vector<CellResult> slots(items.size());
  std::atomic<std::uint64_t> steals{0};
  if (!items.empty()) {
    ExperimentRunner& eng = runner_or_shared(runner);
    const int workers = static_cast<int>(std::min(
        items.size(),
        static_cast<std::size_t>(std::max(1, eng.thread_count()))));
    struct Queue {
      std::vector<std::size_t> items;
      std::atomic<std::size_t> next{0};
    };
    std::vector<Queue> queues(static_cast<std::size_t>(workers));
    {
      const std::size_t nw = static_cast<std::size_t>(workers);
      const std::size_t per = items.size() / nw;
      const std::size_t rem = items.size() % nw;
      std::size_t next_item = 0;
      for (std::size_t w = 0; w < nw; ++w) {
        const std::size_t take = per + (w < rem ? 1 : 0);
        for (std::size_t k = 0; k < take; ++k) {
          queues[w].items.push_back(next_item++);
        }
      }
    }
    eng.parallel_for(static_cast<std::size_t>(workers), [&](std::size_t w) {
      CellExplorer cell(cfg_);
      CellResult local;  // worker-local: one hot cache line per worker
      std::uint64_t local_steals = 0;
      for (;;) {
        std::size_t idx = items.size();
        Queue& own = queues[w];
        const std::size_t pos =
            own.next.fetch_add(1, std::memory_order_relaxed);
        if (pos < own.items.size()) {
          idx = own.items[pos];
        } else {
          for (std::size_t off = 1;
               off < queues.size() && idx == items.size(); ++off) {
            Queue& victim = queues[(w + off) % queues.size()];
            const std::size_t vpos =
                victim.next.fetch_add(1, std::memory_order_relaxed);
            if (vpos < victim.items.size()) {
              idx = victim.items[vpos];
              ++local_steals;
            }
          }
        }
        if (idx == items.size()) {
          break;  // every queue drained
        }
        local.stats = ExploreStats{};
        local.best.clear();
        {
          const obs::TraceSpan item_span("explorer.item");
          cell.run_item(items[idx], local);
        }
        slots[idx].stats = local.stats;
        slots[idx].best.swap(local.best);
      }
      steals.fetch_add(local_steals, std::memory_order_relaxed);
    });
  }

  Result res;
  res.reduction_used = ReductionPolicy::SourceDpor;
  res.stats.frontier_clamped = clamped;
  {
    const obs::TraceSpan merge_span("explorer.merge");
    res.stats.merge(planner_slot.stats);
    merge_best(res.best, planner_slot.best);
    for (const CellResult& slot : slots) {  // item index order: deterministic
      res.stats.merge(slot.stats);
      merge_best(res.best, slot.best);
    }
  }
  res.stats.steals += steals.load(std::memory_order_relaxed);
  {
    obs::MetricRegistry& m = obs::MetricRegistry::global();
    if (m.enabled()) {
      m.add(obs::Metric::steals, res.stats.steals);
    }
  }
  return res;
}

Explorer::Result Explorer::run_hybrid(ExperimentRunner* runner) const {
  // Probe budget per engine run (per cell / per work item, like
  // ExploreLimits::max_states): small enough that a losing probe is cheap
  // next to the real search, large enough that registry-scale spaces
  // complete inside it and the probe IS the final run.
  constexpr std::uint64_t kProbeBudget = 32768;

  Config probe = cfg_;
  probe.limits.prune_visited = true;
  probe.limits.max_states =
      cfg_.limits.max_states == 0
          ? kProbeBudget
          : std::min<std::uint64_t>(kProbeBudget, cfg_.limits.max_states);

  probe.limits.reduction = ReductionPolicy::Off;
  probe.limits.reduce_independent = false;
  const Result off_probe = Explorer(probe).run(runner);

  probe.limits.reduction = ReductionPolicy::SourceDpor;
  const Result dpor_probe = Explorer(probe).run(runner);

  const bool off_done = !off_probe.stats.state_budget_hit;
  const bool dpor_done = !dpor_probe.stats.state_budget_hit;
  if (off_done || dpor_done) {
    // A probe that finished under the budget IS the complete search (the
    // budget only ever cuts, never reorders): keep the cheaper complete
    // one, preferring source-DPOR on a tie. The loser's cost is discarded
    // with its stats — the result describes the winning run only.
    const bool pick_off =
        off_done && (!dpor_done || off_probe.stats.states_visited <
                                       dpor_probe.stats.states_visited);
    return pick_off ? off_probe : dpor_probe;
  }

  // Both probes exhausted the budget: fall back to a full source-DPOR run
  // under the caller's own limits — the policy certified searches default
  // to. Probe stats are discarded here too.
  Config full = cfg_;
  full.limits.reduction = ReductionPolicy::SourceDpor;
  return Explorer(full).run(runner);
}

Explorer::Result Explorer::run_random_strategy(
    ExperimentRunner* runner) const {
  std::vector<CellResult> slots(cfg_.seeds.size());
  runner_or_shared(runner).parallel_for(
      cfg_.seeds.size(), [&](std::size_t i) {
        Sim sim;
        const std::shared_ptr<void> owner = cfg_.setup(sim);
        sim.set_trace_recording(false);
        MeasureAccumulator acc(cfg_.nprocs);
        sim.add_sink(acc);
        RandomScheduler rnd(cfg_.seeds[i]);
        const RunOutcome out =
            drive(sim, rnd, RunLimits{cfg_.random_budget});
        CellResult& slot = slots[i];
        slot.stats.sims_built += 1;
        slot.stats.states_visited += sim.schedule_log().size();
        if (out == RunOutcome::BudgetExhausted) {
          acc.mark_truncated();
          slot.stats.runs_truncated += 1;
          slot.stats.truncated = true;
        } else {
          slot.stats.runs_completed += 1;
        }
        if (cfg_.objective.eval) {
          slot.take_leaf(cfg_.objective.eval(sim, acc));
        }
      });

  Result res;
  for (const CellResult& slot : slots) {
    res.stats.merge(slot.stats);
    merge_best(res.best, slot.best);
  }
  return res;
}

}  // namespace cfc
