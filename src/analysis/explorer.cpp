#include "analysis/explorer.h"

#include <algorithm>
#include <array>
#include <bit>
#include <span>
#include <stdexcept>
#include <utility>

#include "analysis/visited_table.h"
#include "core/state_fingerprint.h"
#include "por/dependence.h"
#include "por/sleep_sets.h"
#include "por/source_dpor.h"

namespace cfc {

const char* name(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::Exhaustive:
      return "exhaustive";
    case SearchStrategy::Bounded:
      return "bounded";
    case SearchStrategy::Random:
      return "random";
  }
  return "unknown";
}

const char* name(ReductionPolicy p) {
  switch (p) {
    case ReductionPolicy::Off:
      return "off";
    case ReductionPolicy::SleepLite:
      return "sleep-lite";
    case ReductionPolicy::SourceDpor:
      return "source-dpor";
  }
  return "unknown";
}

std::optional<ReductionPolicy> reduction_policy_from(std::string_view s) {
  if (s == "off") {
    return ReductionPolicy::Off;
  }
  if (s == "sleep-lite") {
    return ReductionPolicy::SleepLite;
  }
  if (s == "source-dpor") {
    return ReductionPolicy::SourceDpor;
  }
  return std::nullopt;
}

ReductionPolicy effective_reduction(const ExploreLimits& l) {
  return l.reduction == ReductionPolicy::Off && l.reduce_independent
             ? ReductionPolicy::SleepLite
             : l.reduction;
}

void ExploreStats::merge(const ExploreStats& o) {
  states_visited += o.states_visited;
  runs_completed += o.runs_completed;
  runs_truncated += o.runs_truncated;
  pruned_visited += o.pruned_visited;
  pruned_independent += o.pruned_independent;
  violations += o.violations;
  races_detected += o.races_detected;
  backtrack_points += o.backtrack_points;
  sleep_blocked += o.sleep_blocked;
  restores += o.restores;
  replayed_steps += o.replayed_steps;
  sims_built += o.sims_built;
  visited_bytes += o.visited_bytes;
  truncated = truncated || o.truncated;
  state_budget_hit = state_budget_hit || o.state_budget_hit;
}

namespace {

/// Index-wise max_with reduction of objective report vectors (the single
/// definition behind leaf accumulation and the cell reductions).
void merge_best(std::vector<ComplexityReport>& best,
                const std::vector<ComplexityReport>& leaf) {
  if (leaf.empty()) {
    return;
  }
  if (best.empty()) {
    best = leaf;
    return;
  }
  const std::size_t k = std::min(best.size(), leaf.size());
  for (std::size_t i = 0; i < k; ++i) {
    best[i] = best[i].max_with(leaf[i]);
  }
}

/// Per-frontier-cell result slot; reduced in index order afterwards.
struct CellResult {
  ExploreStats stats;
  std::vector<ComplexityReport> best;

  void take_leaf(const std::vector<ComplexityReport>& leaf) {
    merge_best(best, leaf);
  }
};

/// One frontier cell's DFS: owns the live simulation, the live accumulator,
/// the per-cell visited table, the recycled scratch pools (branch stack,
/// per-depth accumulator snapshots), and — under ReductionPolicy::SourceDpor
/// — the per-path race detector and the per-depth backtrack masks. Descends
/// by stepping the live sim; backtracks in place via Sim::rewind_to (or the
/// legacy fork-by-replay when ExploreLimits::restore_by_fork is set).
class CellExplorer {
 public:
  CellExplorer(const Explorer::Config& cfg, CellResult& out)
      : cfg_(cfg),
        out_(out),
        acc_(cfg.nprocs),
        policy_(cfg.limits.reduction) {
    if (policy_ == ReductionPolicy::SourceDpor) {
      dpor_.emplace(cfg.nprocs);
      backtrack_.assign(
          static_cast<std::size_t>(cfg.limits.max_depth) + 1,
          SourceDpor::kForeignNode);
    }
  }

  ~CellExplorer() {
    out_.stats.visited_bytes += visited_.bytes();
    if (dpor_.has_value()) {
      out_.stats.races_detected += dpor_->stats().races_detected;
      out_.stats.backtrack_points += dpor_->stats().backtrack_points;
    }
  }

  void run(const std::vector<Pid>& prefix) {
    reset_sim();
    int preempt = 0;
    Pid last = -1;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      const Pid p = prefix[i];
      if (!sim_->any_runnable()) {
        // Terminal before the frontier: exactly one cell — the one whose
        // remaining digits are all zero — owns this leaf.
        if (all_zero_from(prefix, i)) {
          ++nodes_;
          ++out_.stats.states_visited;
          leaf_completed();
        }
        return;
      }
      if (!allowed_pick_exists(preempt, last)) {
        // Runnable processes remain but every pick is over the preemption
        // budget (the last-running process finished): the bounded space
        // ends here, exactly as dfs() records it below the frontier.
        if (all_zero_from(prefix, i)) {
          ++nodes_;
          ++out_.stats.states_visited;
          leaf_truncated();
        }
        return;
      }
      if (!sim_->runnable(p)) {
        return;  // unrealizable branch; the runnable-digit cells cover it
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions >= 0 &&
          preempt + switch_cost > cfg_.limits.max_preemptions) {
        return;  // excluded by the bound; the allowed-digit cells cover it
      }
      preempt += switch_cost;
      try {
        sim_->step(p);
      } catch (const MutualExclusionViolation&) {
        if (all_zero_from(prefix, i + 1)) {
          ++out_.stats.violations;
        }
        return;
      }
      if (dpor_.has_value()) {
        // Prefix units join the race detector's trace (subtree units race
        // against them); their nodes are foreign — every alternative
        // ordering inside the prefix is its own frontier cell — so the
        // kForeignNode masks suppress insertion there.
        dpor_->push_step(static_cast<int>(i), sim_->last_step_summary(),
                         backtrack_);
      }
      last = p;
    }
    const int depth = static_cast<int>(prefix.size());
    if (policy_ == ReductionPolicy::SourceDpor) {
      dfs_source(depth, last, /*sleep=*/0);
    } else {
      dfs(depth, preempt, last, /*sleep=*/0);
    }
  }

 private:
  [[nodiscard]] static bool all_zero_from(const std::vector<Pid>& prefix,
                                          std::size_t from) {
    return std::all_of(prefix.begin() + static_cast<std::ptrdiff_t>(from),
                       prefix.end(), [](Pid p) { return p == 0; });
  }

  /// True iff some runnable pick fits the remaining preemption budget.
  [[nodiscard]] bool allowed_pick_exists(int preempt, Pid last) const {
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (!sim_->runnable(p)) {
        continue;
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions < 0 ||
          preempt + switch_cost <= cfg_.limits.max_preemptions) {
        return true;
      }
    }
    return false;
  }

  void reset_sim() {
    sim_ = std::make_unique<Sim>();
    owner_ = cfg_.setup(*sim_);
    sim_->set_trace_recording(false);
    if (!cfg_.limits.restore_by_fork) {
      sim_->mark_rewind_base();
    }
    ++out_.stats.sims_built;
    acc_ = MeasureAccumulator(cfg_.nprocs);
    sim_->add_sink(acc_);
  }

  /// Repositions the cell at a prefix of the live sim's own schedule log,
  /// restoring the node's accumulator snapshot. Default: in-place recycled
  /// rewind — the live Sim object, its coroutine frame arena, and its
  /// schedule log are all reused, so steady state this performs zero Sim
  /// heap allocation. Legacy (restore_by_fork): fork-by-replay against a
  /// freshly built simulation, borrowing the live log as a span (never
  /// copying it into a SimCheckpoint).
  void restore(std::size_t sched_len, const MeasureAccumulator& snap,
               std::uint64_t mem_fp, Seq seq, const MemorySnapshot* memsnap) {
    ++out_.stats.restores;
    out_.stats.replayed_steps += sched_len;
    if (cfg_.limits.restore_by_fork) {
      const auto& log = sim_->schedule_log();
      std::shared_ptr<void> owner;
      const SimBuilder rebuild = [&](Sim& s) {
        owner = cfg_.setup(s);
        s.set_trace_recording(false);
      };
      // The old sim_ stays alive (and its log unmodified) until the fork's
      // replay of the borrowed span completes.
      std::unique_ptr<Sim> fresh =
          Sim::fork(std::span(log.data(), sched_len), mem_fp, seq, rebuild,
                    memsnap);
      ++out_.stats.sims_built;
      sim_ = std::move(fresh);
      owner_ = std::move(owner);
      acc_ = snap;
      sim_->add_sink(acc_);
    } else {
      sim_->rewind_to(sched_len, mem_fp, seq, memsnap);
      acc_ = snap;  // the sink stays attached; plain-data restore
    }
  }

  [[nodiscard]] std::uint64_t state_key(Pid last, std::uint32_t sleep) const {
    std::uint64_t h = state_fingerprint(*sim_);
    if (cfg_.objective.eval) {
      h = fingerprint_combine(h, cfg_.objective.digest
                                     ? cfg_.objective.digest(acc_)
                                     : acc_.digest());
    }
    if (cfg_.limits.max_preemptions >= 0) {
      // Under a preemption bound the last-scheduled pid is part of the
      // state: futures continuing it are free while switches cost budget,
      // so merging across different `last` would prune feasible subtrees.
      h = fingerprint_combine(h, static_cast<std::uint64_t>(last) + 1);
    }
    if (policy_ != ReductionPolicy::Off) {
      // A sleeping process shrinks the subtree explored from here, so a
      // visit with one sleep set must not stand in for a visit with
      // another (classic sleep-set/state-cache interaction).
      h = fingerprint_combine(h, static_cast<std::uint64_t>(sleep) |
                                     0x100000000ULL);
    }
    return h;
  }

  void eval_leaf(bool truncated) {
    if (!cfg_.objective.eval) {
      return;
    }
    if (truncated) {
      acc_.mark_truncated();  // cleared by the next backtrack restore
    }
    out_.take_leaf(cfg_.objective.eval(*sim_, acc_));
  }

  void leaf_completed() {
    ++out_.stats.runs_completed;
    eval_leaf(false);
  }

  void leaf_truncated() {
    ++out_.stats.runs_truncated;
    out_.stats.truncated = true;
    eval_leaf(true);
  }

  /// Grows the per-depth scratch pools to cover `depth`.
  void ensure_pools(int depth) {
    const auto need = static_cast<std::size_t>(depth) + 1;
    while (acc_pool_.size() < need) {
      acc_pool_.emplace_back(cfg_.nprocs);
    }
    if (cfg_.limits.verify_restore_snapshot) {
      while (mem_pool_.size() < need) {
        mem_pool_.emplace_back();
      }
    }
  }

  void capture_pendings(std::array<NextStep, kMaxPorProcs>& pend) const {
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      pend[static_cast<std::size_t>(p)] = next_step_of(*sim_, p);
    }
  }

  /// SourceDpor: placement-bucket and droppable-unit insertions for a
  /// depth-horizon cut (SourceDpor::note_cut).
  void cut_point_insertions(std::uint32_t sleep) {
    std::array<NextStep, kMaxPorProcs> pend;
    capture_pendings(pend);
    std::uint32_t enabled = 0;
    for (Pid q = 0; q < cfg_.nprocs; ++q) {
      if (sim_->runnable(q) && ((sleep >> q) & 1u) == 0) {
        enabled |= 1u << static_cast<unsigned>(q);
      }
    }
    dpor_->note_cut(enabled,
                    std::span<const NextStep>(
                        pend.data(), static_cast<std::size_t>(cfg_.nprocs)),
                    backtrack_);
  }

  /// Node-entry outcome of classify_node: the leaf accounting shared by
  /// every policy's DFS, with the depth-horizon cut distinguished so the
  /// source-DPOR path can attach its cut-point insertions to it.
  enum class NodeEntry : std::uint8_t {
    Interior,  ///< explore branches
    Leaf,      ///< completed run, or cut by the state budget
    DepthCut,  ///< truncated by the depth horizon
  };

  /// Leaf and budget checks shared by every policy's node entry (the
  /// single definition of the nodes_/states_visited/leaf accounting the
  /// reduced-vs-unreduced stat comparisons rely on).
  [[nodiscard]] NodeEntry classify_node(int depth) {
    ++nodes_;
    ++out_.stats.states_visited;
    if (!sim_->any_runnable()) {
      leaf_completed();
      return NodeEntry::Leaf;
    }
    if (depth >= cfg_.limits.max_depth) {
      leaf_truncated();
      return NodeEntry::DepthCut;
    }
    if (cfg_.limits.max_states != 0 && nodes_ >= cfg_.limits.max_states) {
      stop_ = true;
      out_.stats.state_budget_hit = true;
      leaf_truncated();  // the cut path counts like any truncated leaf
      return NodeEntry::Leaf;
    }
    return NodeEntry::Interior;
  }

  /// The unreduced / sleep-lite DFS (policies Off and SleepLite).
  void dfs(int depth, int preempt, Pid last, std::uint32_t sleep) {
    if (classify_node(depth) != NodeEntry::Interior) {
      return;
    }
    const bool reduce = policy_ == ReductionPolicy::SleepLite;
    const int eff_preempt = cfg_.limits.max_preemptions < 0 ? 0 : preempt;
    if (cfg_.limits.prune_visited &&
        visited_.check_and_insert(state_key(last, sleep), depth,
                                  eff_preempt)) {
      ++out_.stats.pruned_visited;
      return;
    }

    // Collect branches into the shared scratch stack (zero per-node
    // allocation), continue-last-pid-first: the first branch descends the
    // live sim with no restore at all, so leading with the running process
    // makes that free descent the preemption-free spine.
    const std::size_t base = branch_buf_.size();
    bool skipped_sleeping = false;
    const auto admit = [&](Pid p) {
      if (!sim_->runnable(p)) {
        return;
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      if (cfg_.limits.max_preemptions >= 0 &&
          preempt + switch_cost > cfg_.limits.max_preemptions) {
        return;
      }
      if (reduce && ((sleep >> p) & 1u) != 0) {
        // Asleep: every schedule starting here is a reordering of one
        // already explored through an earlier sibling.
        skipped_sleeping = true;
        ++out_.stats.pruned_independent;
        ++out_.stats.sleep_blocked;
        return;
      }
      branch_buf_.push_back(p);
    };
    if (last != -1) {
      admit(last);
    }
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (p != last) {
        admit(p);
      }
    }

    const std::size_t nb = branch_buf_.size() - base;
    if (nb == 0) {
      if (!skipped_sleeping) {
        // Runnable processes exist but every switch is over the preemption
        // budget: the bounded space ends here.
        leaf_truncated();
      }
      // All-asleep nodes are covered elsewhere: not a leaf of the reduced
      // tree, nothing to do.
      return;
    }

    // Node checkpoint for sibling restores (skipped for single branches:
    // the parent restores for us). Scratch pools, not fresh allocations.
    const bool need_restore = nb > 1;
    const std::size_t sched_len = sim_->schedule_log().size();
    const std::uint64_t mem_fp = sim_->memory().fingerprint();
    const Seq seq = sim_->next_seq();
    if (need_restore) {
      ensure_pools(depth);
      acc_pool_[static_cast<std::size_t>(depth)] = acc_;
      if (cfg_.limits.verify_restore_snapshot) {
        mem_pool_[static_cast<std::size_t>(depth)] =
            sim_->memory().snapshot();
      }
    }

    std::array<NextStep, kMaxPorProcs> pend;
    if (reduce) {
      capture_pendings(pend);  // single-branch nodes still inherit sleepers
    }

    std::uint32_t explored = 0;
    for (std::size_t b = 0; b < nb; ++b) {
      if (stop_) {
        break;
      }
      const Pid p = branch_buf_[base + b];
      if (b > 0) {
        restore(sched_len, acc_pool_[static_cast<std::size_t>(depth)],
                mem_fp, seq,
                cfg_.limits.verify_restore_snapshot
                    ? &mem_pool_[static_cast<std::size_t>(depth)]
                    : nullptr);
      }
      try {
        sim_->step(p);
      } catch (const MutualExclusionViolation&) {
        ++out_.stats.violations;
        continue;  // sim is poisoned; the next iteration restores it
      }
      std::uint32_t child_sleep = 0;
      if (reduce) {
        // The child keeps asleep every earlier-explored or inherited
        // process whose next access is independent of the step just
        // taken (PR 4's register-only lite relation, preserved verbatim).
        const SleepSet candidates(
            (sleep | explored) & ~(1u << static_cast<unsigned>(p)));
        child_sleep =
            transfer_sleep_lite(candidates, pend[static_cast<std::size_t>(p)],
                                std::span(pend.data(),
                                          static_cast<std::size_t>(
                                              cfg_.nprocs)))
                .mask();
      }
      const int switch_cost = (last != -1 && p != last) ? 1 : 0;
      dfs(depth + 1, preempt + switch_cost, p, child_sleep);
      explored |= 1u << static_cast<unsigned>(p);
    }
    branch_buf_.resize(base);
  }

  /// The source-DPOR DFS (policy SourceDpor; Exhaustive only, so there is
  /// no preemption accounting). Instead of branching on every enabled
  /// process, the node starts from ONE seed branch and grows its backtrack
  /// mask on demand: the race detector (por/source_dpor.h) watches every
  /// executed unit and inserts, per race against the current path, a
  /// source-set process at the ancestor node that ran the raced-with unit.
  /// Sleep sets (full, measurement-aware transfer) prune the redundant
  /// reorderings exactly as in the classic combination: explored branches
  /// join the node's sleep mask, and the child keeps asleep every sleeper
  /// whose captured next step is independent of the unit just taken.
  void dfs_source(int depth, Pid last, std::uint32_t sleep) {
    switch (classify_node(depth)) {
      case NodeEntry::Leaf:
        // Completed, or cut by the state budget — a budget cut leaves the
        // result uncertified anyway, so there is nothing for cut-point
        // insertions to protect.
        return;
      case NodeEntry::DepthCut:
        // Bounded-search soundness (SourceDpor::note_cut): the units
        // beyond the horizon never execute, so their races never seed the
        // reorderings that run the cut-off processes earlier. Insert each
        // enabled process's captured pending unit at its placement
        // buckets along the path instead. Sleeping processes are covered
        // by reorderings of equal length, so the sleep argument stands
        // and they are skipped.
        cut_point_insertions(sleep);
        return;
      case NodeEntry::Interior:
        break;
    }
    std::uint32_t enabled = 0;
    for (Pid p = 0; p < cfg_.nprocs; ++p) {
      if (sim_->runnable(p)) {
        enabled |= 1u << static_cast<unsigned>(p);
      }
    }
    const std::uint32_t asleep = enabled & sleep;
    if (asleep != 0) {
      const auto blocked =
          static_cast<std::uint64_t>(std::popcount(asleep));
      out_.stats.sleep_blocked += blocked;
      out_.stats.pruned_independent += blocked;
    }
    const std::uint32_t avail = enabled & ~sleep;
    if (avail == 0) {
      // Every enabled branch is asleep: each is a reordering of an
      // explored schedule — not a leaf of the reduced tree.
      return;
    }

    // Seed the backtrack set with one branch, continue-last-pid-first so
    // the restore-free first descent stays on the preemption-free spine;
    // race insertions from the subtree grow the mask while this node's
    // loop is suspended in recursion.
    const Pid seed = (last != -1 && ((avail >> last) & 1u) != 0)
                         ? last
                         : static_cast<Pid>(std::countr_zero(avail));
    backtrack_[static_cast<std::size_t>(depth)] =
        1u << static_cast<unsigned>(seed);

    // Node checkpoint: unlike the full-branching DFS, the branch count is
    // not known up front (insertions arrive later), so capture always.
    const std::size_t sched_len = sim_->schedule_log().size();
    const std::uint64_t mem_fp = sim_->memory().fingerprint();
    const Seq seq = sim_->next_seq();
    ensure_pools(depth);
    acc_pool_[static_cast<std::size_t>(depth)] = acc_;
    if (cfg_.limits.verify_restore_snapshot) {
      mem_pool_[static_cast<std::size_t>(depth)] = sim_->memory().snapshot();
    }

    std::array<NextStep, kMaxPorProcs> pend;
    capture_pendings(pend);
    const std::span<const NextStep> pend_span(
        pend.data(), static_cast<std::size_t>(cfg_.nprocs));

    bool first = true;
    while (!stop_) {
      const std::uint32_t todo =
          backtrack_[static_cast<std::size_t>(depth)] & enabled & ~sleep;
      if (todo == 0) {
        break;
      }
      const Pid p = (last != -1 && ((todo >> last) & 1u) != 0)
                        ? last
                        : static_cast<Pid>(std::countr_zero(todo));
      if (!first) {
        restore(sched_len, acc_pool_[static_cast<std::size_t>(depth)],
                mem_fp, seq,
                cfg_.limits.verify_restore_snapshot
                    ? &mem_pool_[static_cast<std::size_t>(depth)]
                    : nullptr);
      }
      first = false;
      const std::size_t trace_len = dpor_->size();
      bool violated = false;
      try {
        sim_->step(p);
      } catch (const MutualExclusionViolation&) {
        ++out_.stats.violations;
        violated = true;  // sim is poisoned; the next iteration restores it
      }
      // Race-detect even the violating unit (its partial summary covers
      // everything that took effect): the reorderings its races demand
      // may be perfectly safe schedules.
      dpor_->push_step(depth, sim_->last_step_summary(), backtrack_);
      if (!violated) {
        const std::uint32_t candidates =
            sleep & ~(1u << static_cast<unsigned>(p));
        const std::uint32_t child_sleep =
            transfer_sleep(SleepSet(candidates), sim_->last_step_summary(),
                           pend_span)
                .mask();
        dfs_source(depth + 1, p, child_sleep);
      }
      dpor_->pop_to(trace_len);
      // The explored (or excluded-violating) branch goes to sleep for its
      // later siblings: schedules starting with it here are covered.
      sleep |= 1u << static_cast<unsigned>(p);
    }
  }

  const Explorer::Config& cfg_;
  CellResult& out_;
  std::unique_ptr<Sim> sim_;
  std::shared_ptr<void> owner_;
  MeasureAccumulator acc_;
  VisitedTable visited_;
  std::vector<Pid> branch_buf_;  ///< shared branch scratch stack
  std::vector<MeasureAccumulator> acc_pool_;  ///< per-depth node snapshots
  std::vector<MemorySnapshot> mem_pool_;  ///< per-depth debug snapshots
  std::uint64_t nodes_ = 0;
  bool stop_ = false;
  ReductionPolicy policy_ = ReductionPolicy::Off;
  /// SourceDpor only: the race detector over the current path and the
  /// per-depth node backtrack masks it inserts into (prefix depths hold
  /// the foreign-node sentinel).
  std::optional<SourceDpor> dpor_;
  std::vector<std::uint32_t> backtrack_;
};

}  // namespace

Explorer::Explorer(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.nprocs < 1) {
    throw std::invalid_argument("Explorer: nprocs must be >= 1");
  }
  if (!cfg_.setup) {
    throw std::invalid_argument("Explorer: setup callback is required");
  }
  if (cfg_.strategy == SearchStrategy::Exhaustive) {
    // Exhaustive means every interleaving within the depth bound: a
    // preemption limit left over from a Bounded configuration must not
    // silently shrink the certified space.
    cfg_.limits.max_preemptions = -1;
  }
  if (cfg_.strategy == SearchStrategy::Bounded &&
      cfg_.limits.max_preemptions < 0) {
    // Without a preemption bound, "Bounded" would silently run the full
    // exhaustive DFS — exponentially more states than the caller asked for.
    throw std::invalid_argument(
        "Explorer: Bounded strategy requires limits.max_preemptions >= 0");
  }
  // Normalize the legacy sleep-set-lite flag into the policy field (and
  // back, so introspection through either agrees).
  cfg_.limits.reduction = effective_reduction(cfg_.limits);
  cfg_.limits.reduce_independent =
      cfg_.limits.reduction == ReductionPolicy::SleepLite;
  if (cfg_.limits.reduction == ReductionPolicy::SourceDpor) {
    // Source-DPOR replaces the visited-state cache rather than composing
    // with it: its backtrack insertions are *path-dependent* (races and
    // cut-point placements target the current path's ancestor nodes), so
    // skipping a revisited state would silently drop the insertions that
    // subtree owes the current path — the coverage proofs for dominance
    // pruning and for source sets are each sound alone but mutually
    // circular together. Measured on the registry workloads the reduced
    // tree without the cache beats the cached unreduced tree where
    // interleaving explosion (not state re-convergence) dominates, which
    // is exactly where certified searches need help.
    cfg_.limits.prune_visited = false;
  }
  if (cfg_.limits.reduction != ReductionPolicy::Off) {
    if (cfg_.strategy != SearchStrategy::Exhaustive) {
      // Under a preemption budget a sleeping branch's covering reordering
      // may itself be out of budget, so the reduction would cut feasible
      // space; restrict it to the strategy it is defined for.
      throw std::invalid_argument(
          "Explorer: partial-order reduction requires the Exhaustive "
          "strategy");
    }
    if (cfg_.nprocs > kMaxPorProcs) {
      throw std::invalid_argument(
          "Explorer: partial-order reduction supports at most 32 processes");
    }
  }
}

namespace {

/// Frontier split depth f: prefixes of f picks form the cell grid of
/// n^f cells, capped so wide process counts do not explode it. Depends
/// only on (n, frontier_depth): thread-count invariant.
int frontier_split_depth(int nprocs, const ExploreLimits& limits) {
  const int want_f = std::clamp(limits.frontier_depth, 0, limits.max_depth);
  std::size_t cells = 1;
  int f = 0;
  while (f < want_f && cells * static_cast<std::size_t>(nprocs) <= 4096) {
    cells *= static_cast<std::size_t>(nprocs);
    ++f;
  }
  return f;
}

std::size_t cells_for_depth(int nprocs, int f) {
  std::size_t cells = 1;
  for (int i = 0; i < f; ++i) {
    cells *= static_cast<std::size_t>(nprocs);
  }
  return cells;
}

}  // namespace

std::size_t Explorer::frontier_cells(int nprocs,
                                     const ExploreLimits& limits) {
  return cells_for_depth(nprocs, frontier_split_depth(nprocs, limits));
}

Explorer::Result Explorer::run(ExperimentRunner* runner) const {
  if (cfg_.strategy == SearchStrategy::Random) {
    return run_random_strategy(runner);
  }

  const int n = cfg_.nprocs;
  const int f = frontier_split_depth(n, cfg_.limits);
  const std::size_t cells = cells_for_depth(n, f);

  std::vector<CellResult> slots(cells);
  runner_or_shared(runner).parallel_for(cells, [&](std::size_t c) {
    std::vector<Pid> prefix(static_cast<std::size_t>(f));
    std::size_t x = c;
    for (int i = f - 1; i >= 0; --i) {
      prefix[static_cast<std::size_t>(i)] = static_cast<Pid>(
          x % static_cast<std::size_t>(n));
      x /= static_cast<std::size_t>(n);
    }
    CellExplorer cell(cfg_, slots[c]);
    cell.run(prefix);
  });

  Result res;
  for (const CellResult& slot : slots) {  // index order: deterministic
    res.stats.merge(slot.stats);
    merge_best(res.best, slot.best);
  }
  return res;
}

Explorer::Result Explorer::run_random_strategy(
    ExperimentRunner* runner) const {
  std::vector<CellResult> slots(cfg_.seeds.size());
  runner_or_shared(runner).parallel_for(
      cfg_.seeds.size(), [&](std::size_t i) {
        Sim sim;
        const std::shared_ptr<void> owner = cfg_.setup(sim);
        sim.set_trace_recording(false);
        MeasureAccumulator acc(cfg_.nprocs);
        sim.add_sink(acc);
        RandomScheduler rnd(cfg_.seeds[i]);
        const RunOutcome out =
            drive(sim, rnd, RunLimits{cfg_.random_budget});
        CellResult& slot = slots[i];
        slot.stats.sims_built += 1;
        slot.stats.states_visited += sim.schedule_log().size();
        if (out == RunOutcome::BudgetExhausted) {
          acc.mark_truncated();
          slot.stats.runs_truncated += 1;
          slot.stats.truncated = true;
        } else {
          slot.stats.runs_completed += 1;
        }
        if (cfg_.objective.eval) {
          slot.take_leaf(cfg_.objective.eval(sim, acc));
        }
      });

  Result res;
  for (const CellResult& slot : slots) {
    res.stats.merge(slot.stats);
    merge_best(res.best, slot.best);
  }
  return res;
}

}  // namespace cfc
