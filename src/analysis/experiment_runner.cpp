#include "analysis/experiment_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace cfc {

/// One parallel_for invocation: an index dispenser shared by every thread
/// that helps with the job.
struct ExperimentRunner::Job {
  std::function<void(std::size_t)> body;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t finished = 0;  // guarded by mu
  std::exception_ptr first_error;  // guarded by mu

  /// Claims and runs indices until the dispenser is empty. Returns true if
  /// this call ran at least one index.
  bool drain() {
    bool ran = false;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return ran;
      }
      ran = true;
      std::exception_ptr error;
      try {
        body(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (error && !first_error) {
        first_error = error;
      }
      finished += 1;
      if (finished == count) {
        done_cv.notify_all();
      }
    }
  }

  [[nodiscard]] bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= count;
  }
};

ExperimentRunner::ExperimentRunner(int threads)
    : threads_(threads > 0
                   ? threads
                   : std::max(1u, std::thread::hardware_concurrency())) {
  // The calling thread participates in every parallel_for, so spawn one
  // worker fewer than the requested parallelism.
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ExperimentRunner::~ExperimentRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ExperimentRunner::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_) {
        return;
      }
      job = jobs_.front();
      if (job->exhausted()) {
        // Nothing left to claim; retire the job from the queue.
        jobs_.pop_front();
        continue;
      }
    }
    job->drain();
  }
}

void ExperimentRunner::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  if (threads_ <= 1 || count == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = body;
  job->count = count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  job->drain();  // the calling thread helps; guarantees forward progress

  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock, [&] { return job->finished == job->count; });
  }
  {
    // Retire the job if a worker has not already done so.
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find(jobs_.begin(), jobs_.end(), job);
    if (it != jobs_.end()) {
      jobs_.erase(it);
    }
  }
  if (job->first_error) {
    std::rethrow_exception(job->first_error);
  }
}

ExperimentRunner& ExperimentRunner::shared() {
  static ExperimentRunner runner(0);
  return runner;
}

ExperimentRunner& runner_or_shared(ExperimentRunner* runner) {
  return runner != nullptr ? *runner : ExperimentRunner::shared();
}

}  // namespace cfc
