#include "analysis/study.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/adversary.h"
#include "core/algorithm_registry.h"
#include "core/json.h"
#include "core/streaming_measures.h"
#include "naming/checkers.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sched/sched.h"

namespace cfc {

const char* name(StudyKind k) {
  switch (k) {
    case StudyKind::Mutex:
      return "mutex";
    case StudyKind::Naming:
      return "naming";
    case StudyKind::Detector:
      return "detector";
  }
  return "unknown";
}

// ---------------------------------------------------------------- StudySpec

StudySpec StudySpec::of(std::string subject) {
  StudySpec spec;
  spec.subject_name = std::move(subject);
  return spec;
}

StudySpec& StudySpec::kind(StudyKind k) {
  study_kind = k;
  return *this;
}

StudySpec& StudySpec::n(int nprocs) {
  procs = nprocs;
  return *this;
}

StudySpec& StudySpec::sessions(int s) {
  mutex_sessions = s;
  return *this;
}

StudySpec& StudySpec::policy(AccessPolicy p) {
  access = p;
  return *this;
}

StudySpec& StudySpec::sample_pids(int max_pids) {
  cf_pid_sample = max_pids;
  return *this;
}

StudySpec& StudySpec::contention_free() {
  want_cf = true;
  return *this;
}

StudySpec& StudySpec::worst_case() {
  want_wc = true;
  return *this;
}

StudySpec& StudySpec::worst_case(SearchStrategy s) {
  want_wc = true;
  search.strategy = s;
  if (s == SearchStrategy::Exhaustive) {
    // Certified searches default to the reduced tree: source-DPOR under
    // the measurement-aware dependence relation is value-preserving for
    // every objective the studies maximize (the POR differential suite
    // pins it to the unreduced search), and it reaches depths/process
    // counts the unreduced tree cannot. reduction() overrides.
    search.limits.reduction = ReductionPolicy::SourceDpor;
  }
  return *this;
}

StudySpec& StudySpec::worst_case(const WorstCaseSearchOptions& options) {
  want_wc = true;
  search = options;
  return *this;
}

StudySpec& StudySpec::reduction(ReductionPolicy policy) {
  search.limits.reduction = policy;
  return *this;
}

StudySpec& StudySpec::static_refine(bool on) {
  search.limits.static_refine = on;
  return *this;
}

StudySpec& StudySpec::detector_battery() {
  search.detector_round_robin = true;
  return *this;
}

StudySpec& StudySpec::seeds(std::vector<std::uint64_t> s) {
  search.seeds = std::move(s);
  return *this;
}

StudySpec& StudySpec::crash(std::vector<std::uint64_t> after) {
  search.crash_after = std::move(after);
  return *this;
}

StudySpec& StudySpec::budget(std::uint64_t per_run) {
  search.budget_per_run = per_run;
  return *this;
}

StudySpec& StudySpec::trace(std::string path) {
  trace_path = std::move(path);
  return *this;
}

StudySpec& StudySpec::progress(std::string path, int interval_ms) {
  want_progress = true;
  progress_path = std::move(path);
  progress_interval_ms = interval_ms;
  return *this;
}

StudySpec& StudySpec::limits(const ExploreLimits& l) {
  // Replacing the budget struct must not silently revert the reduction
  // policy a prior worst_case(Exhaustive) defaulted (the builder stays
  // order-independent): a struct that names no policy keeps the current
  // one. An explicit choice — reduction() before/after, or a struct
  // carrying a policy / the legacy sleep-lite flag — always wins; to
  // force the unreduced tree, call reduction(ReductionPolicy::Off).
  const ReductionPolicy keep = search.limits.reduction;
  // static_refine() is sticky the same way: a struct that leaves the flag
  // at its (false) default keeps an earlier opt-in.
  const bool keep_sa = search.limits.static_refine;
  search.limits = l;
  if (effective_reduction(l) == ReductionPolicy::Off) {
    search.limits.reduction = keep;
  }
  search.limits.static_refine = search.limits.static_refine || keep_sa;
  return *this;
}

StudySpec& StudySpec::depth(int max_depth) {
  search.limits.max_depth = max_depth;
  return *this;
}

StudySpec& StudySpec::factory(MutexFactory f) {
  adhoc_mutex = std::move(f);
  return *this;
}

StudySpec& StudySpec::factory(NamingFactory f) {
  adhoc_naming = std::move(f);
  return *this;
}

StudySpec& StudySpec::factory(DetectorFactory f) {
  adhoc_detector = std::move(f);
  return *this;
}

// ------------------------------------------------------- measurement tasks

namespace {

/// One unit of campaign work: a fixed grid of independent cells plus an
/// index-order reduction. Cells from every task in a campaign are
/// interleaved into one flat parallel_for, so there is no per-task (and
/// hence no per-spec) barrier; reductions run afterwards on the calling
/// thread in task order.
class MeasureTask {
 public:
  virtual ~MeasureTask() = default;

  [[nodiscard]] virtual std::size_t cell_count() const = 0;
  virtual void run_cell(std::size_t i, ExperimentRunner& runner) = 0;
  virtual void reduce() = 0;
  /// Writes the task's reduced measurements into the study result.
  virtual void apply(StudyResult& out) const = 0;

  void add_ns(std::int64_t ns) { ns_ += ns; }
  [[nodiscard]] double wall_ms() const {
    return static_cast<double>(ns_.load()) * 1e-6;
  }

 private:
  std::atomic<std::int64_t> ns_{0};
};

/// Copies the Explorer run statistics shared by every worst-case task —
/// including the single definition of the `certified` invariant.
void fill_search_stats(StudyResult& out, const Explorer::Result& r,
                       const WorstCaseSearchOptions& options) {
  out.wc_strategy = options.strategy;
  // Random runs no DFS and hence no reduction; otherwise the requested
  // field reports the effective configured policy and wc_reduction the one
  // the run actually used (they differ only under Hybrid, where the
  // Explorer reports the probe winner).
  out.wc_reduction_requested = options.strategy == SearchStrategy::Random
                                   ? ReductionPolicy::Off
                                   : effective_reduction(options.limits);
  out.wc_reduction = options.strategy == SearchStrategy::Random
                         ? ReductionPolicy::Off
                         : r.reduction_used;
#define CFC_COPY_COUNTER(field, json_key, stats_member, required) \
  out.field = r.stats.stats_member;
  CFC_STUDY_REDUCTION_COUNTERS(CFC_COPY_COUNTER)
#undef CFC_COPY_COUNTER
  out.frontier_clamped = r.stats.frontier_clamped;
  out.schedules_tried = r.stats.runs_completed + r.stats.runs_truncated;
  out.states_visited = r.stats.states_visited;
  out.violations = r.stats.violations;
  out.truncated = out.truncated || r.stats.truncated;
  out.certified = options.strategy != SearchStrategy::Random &&
                  !r.stats.state_budget_hit;
}

/// Mutex contention-free measurement (Section 2.2): one solo session per
/// measured pid, each a cell; max over pids.
class MutexCfTask final : public MeasureTask {
 public:
  MutexCfTask(MutexFactory make, int n, AccessPolicy policy, int pid_limit)
      : make_(std::move(make)), n_(n), policy_(policy) {
    cells_.resize(static_cast<std::size_t>(pid_limit));
  }

  [[nodiscard]] std::size_t cell_count() const override {
    return cells_.size();
  }

  void run_cell(std::size_t i, ExperimentRunner&) override {
    const Pid pid = static_cast<Pid>(i);
    Sim sim;
    sim.set_trace_recording(false);
    sim.set_access_policy(policy_);
    MeasureAccumulator acc(n_);
    sim.add_sink(acc);
    auto alg = setup_mutex(sim, make_, n_, /*sessions=*/1);
    SoloScheduler solo(pid);
    if (drive(sim, solo) == RunOutcome::BudgetExhausted) {
      throw std::logic_error(
          "solo mutex session did not terminate (weak deadlock freedom "
          "violated)");
    }
    if (acc.contention_free_session_count(pid) != 1) {
      throw std::logic_error("expected exactly one contention-free session");
    }
    Cell& cell = cells_[i];
    cell.session = acc.contention_free_session_max(pid);
    cell.entry = acc.clean_entry_max(pid);
    cell.exit = acc.exit_max(pid);
    cell.atomicity = acc.total(pid).atomicity;
  }

  void reduce() override {
    for (const Cell& cell : cells_) {  // index order: deterministic
      session_ = session_.max_with(cell.session);
      entry_ = entry_.max_with(cell.entry);
      exit_ = exit_.max_with(cell.exit);
      atomicity_ = std::max(atomicity_, cell.atomicity);
    }
  }

  void apply(StudyResult& out) const override {
    out.has_cf = true;
    out.cf = session_;
    out.cf_entry = entry_;
    out.cf_exit = exit_;
    out.measured_atomicity = std::max(out.measured_atomicity, atomicity_);
  }

 private:
  struct Cell {
    ComplexityReport session;
    ComplexityReport entry;
    ComplexityReport exit;
    int atomicity = 0;
  };

  MutexFactory make_;
  int n_;
  AccessPolicy policy_;
  std::vector<Cell> cells_;
  ComplexityReport session_;
  ComplexityReport entry_;
  ComplexityReport exit_;
  int atomicity_ = 0;
};

/// Mutex worst-case search: one cell running the schedule-space Explorer
/// (which fans its own frontier/seed cells over the same runner — the
/// ExperimentRunner is nestable and caller-participating).
class MutexWcTask final : public MeasureTask {
 public:
  MutexWcTask(MutexFactory make, int n, int sessions,
              WorstCaseSearchOptions options)
      : make_(std::move(make)),
        n_(n),
        sessions_(sessions),
        options_(std::move(options)) {}

  [[nodiscard]] std::size_t cell_count() const override { return 1; }

  void run_cell(std::size_t, ExperimentRunner& runner) override {
    Explorer::Config cfg;
    cfg.nprocs = n_;
    cfg.strategy = options_.strategy;
    cfg.limits = options_.limits;
    cfg.seeds = options_.seeds;
    cfg.random_budget = options_.budget_per_run;
    const MutexFactory make = make_;
    const int n = n_;
    const int sessions = sessions_;
    const std::vector<std::uint64_t> crash = options_.crash_after;
    cfg.setup = [make, n, sessions, crash](Sim& sim) -> std::shared_ptr<void> {
      auto alg = setup_mutex(sim, make, n, sessions);
      for (std::size_t p = 0; p < crash.size(); ++p) {
        sim.crash_after(static_cast<Pid>(p), crash[p]);
      }
      return alg;
    };
    // Objective: maximize the clean-entry and exit window maxima over all
    // processes. Monotone along a run (window maxima never decrease); its
    // pruning digest is the window digest — whole-run totals are
    // irrelevant to it.
    cfg.objective.eval = [n](const Sim&, const MeasureAccumulator& acc) {
      ComplexityReport entry;
      ComplexityReport exit;
      for (Pid pid = 0; pid < n; ++pid) {
        entry = entry.max_with(acc.clean_entry_max(pid));
        exit = exit.max_with(acc.exit_max(pid));
      }
      return std::vector<ComplexityReport>{entry, exit};
    };
    cfg.objective.digest = [](const MeasureAccumulator& acc) {
      return acc.window_digest();
    };
    const Explorer explorer(std::move(cfg));
    result_ = explorer.run(&runner);
  }

  void reduce() override {}

  void apply(StudyResult& out) const override {
    out.has_wc = true;
    if (result_.best.size() >= 2) {
      out.wc_entry = result_.best[0];
      out.wc_exit = result_.best[1];
    }
    out.wc = out.wc_entry.plus(out.wc_exit);
    fill_search_stats(out, result_, options_);
  }

 private:
  MutexFactory make_;
  int n_;
  int sessions_;
  WorstCaseSearchOptions options_;
  Explorer::Result result_;
};

}  // namespace

namespace detail {

ComplexityReport run_detector_cell(const DetectorFactory& make, int n,
                                   Scheduler& sched,
                                   std::optional<Pid> expect_solo_winner) {
  Sim sim;
  sim.set_trace_recording(false);
  MeasureAccumulator acc(n);
  sim.add_sink(acc);
  auto det = setup_detection(sim, make, n);
  if (drive(sim, sched) == RunOutcome::BudgetExhausted) {
    acc.mark_truncated();  // surfaced as ComplexityReport::truncated
  }
  if (expect_solo_winner.has_value() &&
      sim.output(*expect_solo_winner) != 1) {
    throw std::logic_error(
        "solo detector process did not output 1 (broken detector)");
  }
  ComplexityReport best;
  for (Pid pid = 0; pid < n; ++pid) {
    best = best.max_with(acc.total(pid));
  }
  return best;
}

}  // namespace detail

namespace {

/// Detector contention-free measurement: one solo run per process.
class DetectorCfTask final : public MeasureTask {
 public:
  DetectorCfTask(DetectorFactory make, int n) : make_(std::move(make)) {
    cells_.resize(static_cast<std::size_t>(n));
  }

  [[nodiscard]] std::size_t cell_count() const override {
    return cells_.size();
  }

  void run_cell(std::size_t i, ExperimentRunner&) override {
    const Pid pid = static_cast<Pid>(i);
    SoloScheduler solo(pid);
    cells_[i] = detail::run_detector_cell(
        make_, static_cast<int>(cells_.size()), solo, pid);
  }

  void reduce() override {
    for (const ComplexityReport& cell : cells_) {
      best_ = best_.max_with(cell);
    }
  }

  void apply(StudyResult& out) const override {
    out.has_cf = true;
    out.cf = best_;
    out.measured_atomicity = std::max(out.measured_atomicity,
                                      best_.atomicity);
  }

 private:
  DetectorFactory make_;
  std::vector<ComplexityReport> cells_;
  ComplexityReport best_;
};

/// Detector worst-case search: one Explorer cell over whole-run totals.
class DetectorWcTask final : public MeasureTask {
 public:
  DetectorWcTask(DetectorFactory make, int n, WorstCaseSearchOptions options)
      : make_(std::move(make)), n_(n), options_(std::move(options)) {}

  [[nodiscard]] std::size_t cell_count() const override { return 1; }

  void run_cell(std::size_t, ExperimentRunner& runner) override {
    Explorer::Config cfg;
    cfg.nprocs = n_;
    cfg.strategy = options_.strategy;
    cfg.limits = options_.limits;
    cfg.seeds = options_.seeds;
    cfg.random_budget = options_.budget_per_run;
    const DetectorFactory make = make_;
    const int n = n_;
    const std::vector<std::uint64_t> crash = options_.crash_after;
    cfg.setup = [make, n, crash](Sim& sim) -> std::shared_ptr<void> {
      auto alg = setup_detection(sim, make, n);
      for (std::size_t p = 0; p < crash.size(); ++p) {
        sim.crash_after(static_cast<Pid>(p), crash[p]);
      }
      return alg;
    };
    cfg.objective.eval = [n](const Sim&, const MeasureAccumulator& acc) {
      ComplexityReport best;
      for (Pid pid = 0; pid < n; ++pid) {
        best = best.max_with(acc.total(pid));
      }
      return std::vector<ComplexityReport>{best};
    };
    // Whole-run totals objective: the default accumulator digest (which
    // covers the totals) is the sound pruning key, so leave it unset.
    const Explorer explorer(std::move(cfg));
    result_ = explorer.run(&runner);
    if (options_.detector_round_robin &&
        options_.strategy == SearchStrategy::Random) {
      // The historical battery's deterministic round-robin schedule,
      // folded into the spec (StudySpec::detector_battery).
      RoundRobinScheduler rr;
      round_robin_ = detail::run_detector_cell(make_, n_, rr, std::nullopt);
      ran_round_robin_ = true;
    }
  }

  void reduce() override {}

  void apply(StudyResult& out) const override {
    out.has_wc = true;
    if (!result_.best.empty()) {
      out.wc = result_.best[0];
    }
    fill_search_stats(out, result_, options_);
    if (ran_round_robin_) {
      out.wc = out.wc.max_with(round_robin_);
      out.schedules_tried += 1;
      out.truncated = out.truncated || round_robin_.truncated;
    }
  }

 private:
  DetectorFactory make_;
  int n_;
  WorstCaseSearchOptions options_;
  Explorer::Result result_;
  ComplexityReport round_robin_;
  bool ran_round_robin_ = false;
};

/// Naming measurement battery. Cell 0 is the sequential (contention-free)
/// schedule; with the worst-case battery enabled, cell 1 is round-robin,
/// cell 2 the Theorem 6 lockstep symmetry adversary, and cells 3.. the
/// seeded random schedules. The wc report is the max over all cells
/// (naming worst cases are found by this fixed adversary battery; the DFS
/// strategies do not apply).
class NamingTask final : public MeasureTask {
 public:
  NamingTask(NamingFactory make, int n, std::vector<std::uint64_t> seeds,
             bool battery, std::string label)
      : make_(std::move(make)),
        n_(n),
        seeds_(std::move(seeds)),
        battery_(battery),
        label_(std::move(label)) {
    cells_.resize(battery_ ? 3 + seeds_.size() : 1);
  }

  [[nodiscard]] std::size_t cell_count() const override {
    return cells_.size();
  }

  void run_cell(std::size_t i, ExperimentRunner&) override {
    Sim sim;
    auto alg = setup_naming(sim, make_, n_);
    bool cut = false;  // budget exhausted: surfaced as truncated below
    switch (i) {
      case 0: {
        if (!run_sequentially(sim)) {
          throw std::logic_error("sequential naming run did not finish: " +
                                 label_);
        }
        break;
      }
      case 1: {
        RoundRobinScheduler rr;
        if (drive(sim, rr) != RunOutcome::AllDone) {
          throw std::logic_error("round-robin naming run did not finish: " +
                                 label_);
        }
        break;
      }
      case 2: {
        // The lockstep symmetry adversary, finished off fairly so
        // stragglers complete and count.
        std::vector<Pid> group;
        group.reserve(static_cast<std::size_t>(n_));
        for (Pid p = 0; p < n_; ++p) {
          group.push_back(p);
        }
        const LockstepResult res = lockstep_symmetry_adversary(sim, group);
        if (res.identical_group_terminated) {
          throw std::logic_error("identical processes terminated together: " +
                                 label_);
        }
        RoundRobinScheduler rr;
        cut = drive(sim, rr) != RunOutcome::AllDone;
        break;
      }
      default: {
        RandomScheduler rnd(seeds_[i - 3]);
        if (drive(sim, rnd) != RunOutcome::AllDone) {
          throw std::logic_error("random naming run did not finish: " +
                                 label_);
        }
        break;
      }
    }
    const NamingRunCheck check = check_naming_run(sim, alg->name_space());
    if (!check.ok()) {
      throw std::logic_error("naming run failed validation: " + label_);
    }
    ComplexityReport best;
    for (Pid p = 0; p < sim.process_count(); ++p) {
      best = best.max_with(measure_all(sim.trace(), p));
    }
    best.truncated = best.truncated || cut;
    cells_[i] = best;
  }

  void reduce() override {
    cf_ = cells_[0];
    for (const ComplexityReport& cell : cells_) {
      wc_ = wc_.max_with(cell);
    }
  }

  void apply(StudyResult& out) const override {
    out.has_cf = true;
    out.cf = cf_;
    out.measured_atomicity = std::max(out.measured_atomicity, cf_.atomicity);
    if (battery_) {
      out.has_wc = true;
      out.wc_strategy = SearchStrategy::Random;
      out.wc = wc_;
      out.schedules_tried += cells_.size();
      out.truncated = out.truncated || wc_.truncated;
    }
  }

 private:
  NamingFactory make_;
  int n_;
  std::vector<std::uint64_t> seeds_;
  bool battery_;
  std::string label_;
  std::vector<ComplexityReport> cells_;
  ComplexityReport cf_;
  ComplexityReport wc_;
};

// ------------------------------------------------------ subject resolution

struct ResolvedSubject {
  std::string name;
  MutexFactory mutex;
  NamingFactory naming;
  DetectorFactory detector;
  bool from_registry = false;  ///< dedup-eligible across campaign specs
};

/// Resolves the spec's subject (ad-hoc factory or registry lookup) and
/// validates capacity on the calling thread, so misconfiguration surfaces
/// as the documented exception rather than through the pool. The probe
/// allocates the algorithm's registers once but spawns no processes.
ResolvedSubject resolve(const StudySpec& spec) {
  ResolvedSubject r;
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
  switch (spec.study_kind) {
    case StudyKind::Mutex: {
      if (spec.adhoc_mutex) {
        r.mutex = spec.adhoc_mutex;
      } else {
        r.mutex = registry.mutex(spec.subject_name).factory;
        r.from_registry = true;
      }
      Sim probe;
      auto alg = r.mutex(probe.memory(), spec.procs);
      if (alg->capacity() < spec.procs) {
        throw std::invalid_argument("mutex capacity below process count");
      }
      r.name = spec.subject_name.empty() ? alg->algorithm_name()
                                         : spec.subject_name;
      break;
    }
    case StudyKind::Naming: {
      if (spec.adhoc_naming) {
        r.naming = spec.adhoc_naming;
      } else {
        r.naming = registry.naming(spec.subject_name).factory;
        r.from_registry = true;
      }
      Sim probe;
      auto alg = r.naming(probe.memory(), spec.procs);
      if (alg->capacity() < spec.procs) {
        throw std::invalid_argument("naming capacity below process count");
      }
      r.name = spec.subject_name.empty() ? alg->algorithm_name()
                                         : spec.subject_name;
      break;
    }
    case StudyKind::Detector: {
      if (spec.adhoc_detector) {
        r.detector = spec.adhoc_detector;
      } else {
        r.detector = registry.detector(spec.subject_name).factory;
        r.from_registry = true;
      }
      Sim probe;
      auto alg = r.detector(probe.memory(), spec.procs);
      if (alg->capacity() < spec.procs) {
        throw std::invalid_argument("detector capacity below process count");
      }
      r.name = spec.subject_name.empty() ? alg->algorithm_name()
                                         : spec.subject_name;
      break;
    }
  }
  return r;
}

std::string seeds_key(const std::vector<std::uint64_t>& seeds) {
  std::string out;
  for (const std::uint64_t s : seeds) {
    out += std::to_string(s);
    out += ',';
  }
  return out;
}

std::string search_key(const WorstCaseSearchOptions& o) {
  // The reduction key uses the *effective* policy, so a spec selecting
  // sleep-lite through the legacy reduce_independent flag dedups with one
  // naming it directly.
  const ReductionPolicy effective = effective_reduction(o.limits);
  return std::string(name(o.strategy)) + "|seeds=" + seeds_key(o.seeds) +
         "|budget=" + std::to_string(o.budget_per_run) +
         "|depth=" + std::to_string(o.limits.max_depth) +
         "|preempt=" + std::to_string(o.limits.max_preemptions) +
         "|states=" + std::to_string(o.limits.max_states) +
         "|frontier=" + std::to_string(o.limits.frontier_depth) +
         "|prune=" + std::to_string(o.limits.prune_visited ? 1 : 0) +
         "|reduction=" + name(effective) +
         "|sa=" + std::to_string(o.limits.static_refine ? 1 : 0) +
         "|rr=" + std::to_string(o.detector_round_robin ? 1 : 0) +
         "|crash=" + seeds_key(o.crash_after);
}

int effective_pid_limit(const StudySpec& spec) {
  return (spec.cf_pid_sample > 0 && spec.cf_pid_sample < spec.procs)
             ? spec.cf_pid_sample
             : spec.procs;
}

}  // namespace

// ----------------------------------------------------------------- Campaign

Campaign& Campaign::add(StudySpec spec) {
  specs_.push_back(std::move(spec));
  return *this;
}

Campaign& Campaign::add(std::vector<StudySpec> specs) {
  for (StudySpec& spec : specs) {
    specs_.push_back(std::move(spec));
  }
  return *this;
}

std::vector<StudyResult> Campaign::run(ExperimentRunner* runner,
                                       CampaignStats* stats) const {
  struct Binding {
    MeasureTask* cf = nullptr;
    MeasureTask* wc = nullptr;
  };

  // Observability (src/obs/): honor the first spec asking for a trace /
  // progress heartbeat, started before planning so the plan phase is
  // covered. An already-running outer tracer (a bench's --trace-out) wins.
  // Observational only — neither changes any study value. The guard stops
  // (and writes) an owned tracer on every exit path; it is declared before
  // the reporter so the reporter's final heartbeat lands inside the trace.
  struct TracerGuard {
    bool own = false;
    ~TracerGuard() {
      if (own) {
        obs::Tracer::stop();
      }
    }
  } tracer_guard;
  for (const StudySpec& spec : specs_) {
    if (!spec.trace_path.empty()) {
      if (obs::Tracer::active() == nullptr) {
        obs::Tracer::start(spec.trace_path);
        tracer_guard.own = true;
      }
      break;
    }
  }
  std::unique_ptr<obs::ProgressReporter> progress;
  for (const StudySpec& spec : specs_) {
    if (spec.want_progress) {
      progress = std::make_unique<obs::ProgressReporter>(
          obs::ProgressReporter::Options{spec.progress_path,
                                         spec.progress_interval_ms});
      break;
    }
  }

  const auto plan_t0 = std::chrono::steady_clock::now();
  std::optional<obs::TraceSpan> plan_span;
  plan_span.emplace("campaign.plan");
  std::vector<std::unique_ptr<MeasureTask>> tasks;
  std::map<std::string, MeasureTask*> interned;
  std::vector<Binding> bindings(specs_.size());
  std::vector<std::string> names(specs_.size());
  std::size_t deduplicated = 0;

  // Dedup: an empty key (ad-hoc subject) always plans a fresh task; a
  // registry key covering the full measurement configuration (subject,
  // kind, n, policy/sessions, strategy, seeds, budgets) shares the task.
  const auto intern = [&](const std::string& key,
                          const std::function<std::unique_ptr<MeasureTask>()>&
                              build) -> MeasureTask* {
    if (!key.empty()) {
      const auto it = interned.find(key);
      if (it != interned.end()) {
        deduplicated += 1;
        return it->second;
      }
    }
    tasks.push_back(build());
    MeasureTask* task = tasks.back().get();
    if (!key.empty()) {
      interned.emplace(key, task);
    }
    return task;
  };

  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const StudySpec& spec = specs_[i];
    const ResolvedSubject subject = resolve(spec);
    names[i] = subject.name;
    const std::string base =
        subject.from_registry
            ? std::string(name(spec.study_kind)) + '|' + subject.name +
                  "|n=" + std::to_string(spec.procs)
            : std::string();
    const auto keyed = [&base](const std::string& suffix) {
      return base.empty() ? std::string() : base + '|' + suffix;
    };

    switch (spec.study_kind) {
      case StudyKind::Mutex: {
        if (spec.want_cf) {
          const int pid_limit = effective_pid_limit(spec);
          bindings[i].cf = intern(
              keyed("cf|policy=" +
                    std::to_string(static_cast<int>(spec.access)) +
                    "|pids=" + std::to_string(pid_limit)),
              [&] {
                return std::make_unique<MutexCfTask>(
                    subject.mutex, spec.procs, spec.access, pid_limit);
              });
        }
        if (spec.want_wc) {
          bindings[i].wc = intern(
              keyed("wc|sessions=" + std::to_string(spec.mutex_sessions) +
                    '|' + search_key(spec.search)),
              [&] {
                return std::make_unique<MutexWcTask>(
                    subject.mutex, spec.procs, spec.mutex_sessions,
                    spec.search);
              });
        }
        break;
      }
      case StudyKind::Naming: {
        // One battery task covers both measures; a cf-only spec runs just
        // the sequential cell.
        MeasureTask* task = intern(
            keyed(std::string("battery|wc=") + (spec.want_wc ? '1' : '0') +
                  "|seeds=" + seeds_key(spec.search.seeds)),
            [&] {
              return std::make_unique<NamingTask>(
                  subject.naming, spec.procs, spec.search.seeds,
                  spec.want_wc, subject.name);
            });
        bindings[i].cf = task;
        bindings[i].wc = spec.want_wc ? task : nullptr;
        break;
      }
      case StudyKind::Detector: {
        if (spec.want_cf) {
          bindings[i].cf = intern(keyed("cf"), [&] {
            return std::make_unique<DetectorCfTask>(subject.detector,
                                                    spec.procs);
          });
        }
        if (spec.want_wc) {
          bindings[i].wc = intern(keyed("wc|" + search_key(spec.search)),
                                  [&] {
                                    return std::make_unique<DetectorWcTask>(
                                        subject.detector, spec.procs,
                                        spec.search);
                                  });
        }
        break;
      }
    }
  }

  // Interleave: round-robin one cell per task, so no task (and no spec)
  // forms a barrier in the flat grid.
  std::vector<std::pair<MeasureTask*, std::size_t>> flat;
  std::size_t max_cells = 0;
  for (const auto& task : tasks) {
    max_cells = std::max(max_cells, task->cell_count());
  }
  for (std::size_t round = 0; round < max_cells; ++round) {
    for (const auto& task : tasks) {
      if (round < task->cell_count()) {
        flat.emplace_back(task.get(), round);
      }
    }
  }
  plan_span.reset();
  const double plan_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - plan_t0)
          .count();

  obs::MetricRegistry& metrics = obs::MetricRegistry::global();
  if (metrics.enabled()) {
    metrics.set(obs::Metric::cells_total, flat.size());
  }
  std::vector<double> cell_ms(flat.size(), 0.0);
  ExperimentRunner& engine = runner_or_shared(runner);
  engine.parallel_for(flat.size(), [&](std::size_t i) {
    const obs::TraceSpan cell_span("campaign.cell");
    const auto t0 = std::chrono::steady_clock::now();
    flat[i].first->run_cell(flat[i].second, engine);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    flat[i].first->add_ns(ns);
    cell_ms[i] = static_cast<double>(ns) * 1e-6;
    if (metrics.enabled()) {
      metrics.add(obs::Metric::cells_done, 1);
    }
  });

  const auto merge_t0 = std::chrono::steady_clock::now();
  std::optional<obs::TraceSpan> merge_span;
  merge_span.emplace("campaign.merge");
  for (const auto& task : tasks) {
    task->reduce();
  }

  std::vector<StudyResult> out(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const StudySpec& spec = specs_[i];
    StudyResult& res = out[i];
    res.subject = names[i];
    res.kind = spec.study_kind;
    res.n = spec.procs;
    res.sessions = spec.mutex_sessions;
    if (bindings[i].cf != nullptr) {
      bindings[i].cf->apply(res);
      res.wall_ms += bindings[i].cf->wall_ms();
    }
    if (bindings[i].wc != nullptr && bindings[i].wc != bindings[i].cf) {
      bindings[i].wc->apply(res);
      res.wall_ms += bindings[i].wc->wall_ms();
    }
    res.execute_ms = res.wall_ms;
    // A naming battery measures cf as a side effect; mask it when the spec
    // did not ask for it so the result mirrors the request.
    if (!spec.want_cf) {
      res.has_cf = false;
      res.cf = ComplexityReport{};
      res.cf_entry = ComplexityReport{};
      res.cf_exit = ComplexityReport{};
      res.measured_atomicity = 0;
    }
  }

  merge_span.reset();
  const double merge_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - merge_t0)
          .count();
  for (StudyResult& res : out) {
    res.plan_ms = plan_ms;
    res.merge_ms = merge_ms;
  }

  if (stats != nullptr) {
    stats->specs = specs_.size();
    stats->tasks_planned = tasks.size();
    stats->tasks_deduplicated = deduplicated;
    stats->cells = flat.size();
    stats->cell_wall_ms = std::move(cell_ms);
    stats->plan_ms = plan_ms;
    stats->merge_ms = merge_ms;
  }
  return out;
}

StudyResult run_study(const StudySpec& spec, ExperimentRunner* runner) {
  Campaign campaign;
  campaign.add(spec);
  return campaign.run(runner)[0];
}

// --------------------------------------------------------------- to_json

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_report(std::string& out, const ComplexityReport& r) {
  out += "{\"steps\": " + std::to_string(r.steps) +
         ", \"registers\": " + std::to_string(r.registers) +
         ", \"read_steps\": " + std::to_string(r.read_steps) +
         ", \"write_steps\": " + std::to_string(r.write_steps) +
         ", \"read_registers\": " + std::to_string(r.read_registers) +
         ", \"write_registers\": " + std::to_string(r.write_registers) +
         ", \"atomicity\": " + std::to_string(r.atomicity) +
         ", \"truncated\": " + (r.truncated ? "true" : "false") + "}";
}

}  // namespace

std::string to_json(const StudyResult& r, const StudyJsonOptions& opts) {
  std::string out = "{\n  \"schema\": \"cfc.study.v1\",\n  \"subject\": \"";
  append_escaped(out, r.subject);
  out += "\",\n  \"kind\": \"";
  out += name(r.kind);
  out += "\",\n  \"n\": " + std::to_string(r.n) +
         ",\n  \"sessions\": " + std::to_string(r.sessions) + ",\n";
  if (r.has_cf) {
    out += "  \"cf\": {\n    \"session\": ";
    append_report(out, r.cf);
    out += ",\n    \"entry\": ";
    append_report(out, r.cf_entry);
    out += ",\n    \"exit\": ";
    append_report(out, r.cf_exit);
    out += ",\n    \"atomicity\": " + std::to_string(r.measured_atomicity) +
           "\n  },\n";
  } else {
    out += "  \"cf\": null,\n";
  }
  if (r.has_wc) {
    out += "  \"wc\": {\n    \"strategy\": \"";
    out += name(r.wc_strategy);
    out += "\",\n    \"reduction\": {\"policy\": \"";
    out += name(r.wc_reduction);
    out += "\", \"requested\": \"";
    out += name(r.wc_reduction_requested);
    out += "\"";
    // The counter list (and its emission order) comes from the one table
    // in study.h, so serializer/parser/engine can never disagree.
#define CFC_EMIT_COUNTER(field, json_key, stats_member, required) \
  out += ", \"" json_key "\": " + std::to_string(r.field);
    CFC_STUDY_REDUCTION_COUNTERS(CFC_EMIT_COUNTER)
#undef CFC_EMIT_COUNTER
    out += "}";
    out += ",\n    \"total\": ";
    append_report(out, r.wc);
    out += ",\n    \"entry\": ";
    append_report(out, r.wc_entry);
    out += ",\n    \"exit\": ";
    append_report(out, r.wc_exit);
    out += ",\n    \"schedules_tried\": " +
           std::to_string(r.schedules_tried) +
           ",\n    \"states_visited\": " + std::to_string(r.states_visited) +
           ",\n    \"violations\": " + std::to_string(r.violations) +
           ",\n    \"truncated\": " +
           (r.truncated ? "true" : "false") +
           ",\n    \"certified\": " + (r.certified ? "true" : "false") +
           ",\n    \"frontier_clamped\": " +
           (r.frontier_clamped ? "true" : "false") + "\n  }";
  } else {
    out += "  \"wc\": null";
  }
  if (opts.include_timing) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"timing\": {\"plan_ms\": %.3f, \"execute_ms\": "
                  "%.3f, \"merge_ms\": %.3f},\n  \"wall_ms\": %.3f",
                  r.plan_ms, r.execute_ms, r.merge_ms, r.wall_ms);
    out += buf;
  }
  out += "\n}";
  return out;
}

std::string to_json(const std::vector<StudyResult>& results,
                    const StudyJsonOptions& opts) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out += to_json(results[i], opts);
    out += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  out += "]";
  return out;
}

// ---------------------------------------------------------- study_from_json

namespace {

ComplexityReport report_from(const json::Node& obj) {
  if (!obj.is_object()) {
    throw std::invalid_argument("study JSON: expected a report object");
  }
  ComplexityReport r;
  r.steps = json::to_int(json::member(obj, "steps"));
  r.registers = json::to_int(json::member(obj, "registers"));
  r.read_steps = json::to_int(json::member(obj, "read_steps"));
  r.write_steps = json::to_int(json::member(obj, "write_steps"));
  r.read_registers = json::to_int(json::member(obj, "read_registers"));
  r.write_registers = json::to_int(json::member(obj, "write_registers"));
  r.atomicity = json::to_int(json::member(obj, "atomicity"));
  r.truncated = json::to_bool(json::member(obj, "truncated"));
  return r;
}

StudyKind kind_from(const std::string& s) {
  if (s == "mutex") {
    return StudyKind::Mutex;
  }
  if (s == "naming") {
    return StudyKind::Naming;
  }
  if (s == "detector") {
    return StudyKind::Detector;
  }
  throw std::invalid_argument("study JSON: unknown kind '" + s + "'");
}

SearchStrategy strategy_from(const std::string& s) {
  if (s == "exhaustive") {
    return SearchStrategy::Exhaustive;
  }
  if (s == "bounded") {
    return SearchStrategy::Bounded;
  }
  if (s == "random") {
    return SearchStrategy::Random;
  }
  throw std::invalid_argument("study JSON: unknown strategy '" + s + "'");
}

ReductionPolicy reduction_from(const std::string& s) {
  const std::optional<ReductionPolicy> policy = reduction_policy_from(s);
  if (!policy.has_value()) {
    throw std::invalid_argument("study JSON: unknown reduction policy '" +
                                s + "'");
  }
  return *policy;
}

}  // namespace

StudyResult study_from_json(const std::string& payload) {
  const json::Node root = json::parse(payload);
  if (!root.is_object()) {
    throw std::invalid_argument("study JSON: expected an object");
  }
  if (json::to_string_field(json::member(root, "schema")) !=
      "cfc.study.v1") {
    throw std::invalid_argument("study JSON: unsupported schema '" +
                                json::member(root, "schema").text + "'");
  }
  StudyResult r;
  r.subject = json::to_string_field(json::member(root, "subject"));
  r.kind = kind_from(json::to_string_field(json::member(root, "kind")));
  r.n = json::to_int(json::member(root, "n"));
  r.sessions = json::to_int(json::member(root, "sessions"));

  const json::Node& cf = json::member(root, "cf");
  if (cf.is_object()) {
    r.has_cf = true;
    r.cf = report_from(json::member(cf, "session"));
    r.cf_entry = report_from(json::member(cf, "entry"));
    r.cf_exit = report_from(json::member(cf, "exit"));
    r.measured_atomicity = json::to_int(json::member(cf, "atomicity"));
  }

  const json::Node& wc = json::member(root, "wc");
  if (wc.is_object()) {
    r.has_wc = true;
    r.wc_strategy =
        strategy_from(json::to_string_field(json::member(wc, "strategy")));
    // "reduction" is optional so pre-POR cfc.study.v1 payloads still
    // parse (they carry policy off / zero counters implicitly).
    if (const json::Node* red = wc.find("reduction")) {
      if (!red->is_object()) {
        throw std::invalid_argument("study JSON: expected a reduction "
                                    "object");
      }
      r.wc_reduction =
          reduction_from(json::to_string_field(json::member(*red, "policy")));
      // The counters come from the one table in study.h. Required keys
      // date back to the first POR payloads; the rest were added later
      // and stay optional so older payloads keep parsing as zero.
#define CFC_PARSE_COUNTER(field, json_key, stats_member, required)       if (required) {                                                          r.field = json::to_u64(json::member(*red, json_key));                } else if (const json::Node* node = red->find(json_key)) {               r.field = json::to_u64(*node);                                       }
      CFC_STUDY_REDUCTION_COUNTERS(CFC_PARSE_COUNTER)
#undef CFC_PARSE_COUNTER
      // "requested" defaults to the used policy (pre-hybrid payloads
      // never had the two diverge).
      const json::Node* req = red->find("requested");
      r.wc_reduction_requested =
          req == nullptr ? r.wc_reduction
                         : reduction_from(json::to_string_field(*req));
    }
    r.wc = report_from(json::member(wc, "total"));
    r.wc_entry = report_from(json::member(wc, "entry"));
    r.wc_exit = report_from(json::member(wc, "exit"));
    r.schedules_tried = json::to_u64(json::member(wc, "schedules_tried"));
    r.states_visited = json::to_u64(json::member(wc, "states_visited"));
    r.violations = json::to_u64(json::member(wc, "violations"));
    r.truncated = json::to_bool(json::member(wc, "truncated"));
    r.certified = json::to_bool(json::member(wc, "certified"));
    // Optional (added with the frontier-clamp surfacing).
    const json::Node* fc = wc.find("frontier_clamped");
    r.frontier_clamped = fc != nullptr && json::to_bool(*fc);
  }

  // Optional (added with the phase-timing breakdown); members optional
  // too, mirroring the reduction-object pattern.
  if (const json::Node* timing = root.find("timing")) {
    if (!timing->is_object()) {
      throw std::invalid_argument("study JSON: expected a timing object");
    }
    if (const json::Node* v = timing->find("plan_ms")) {
      r.plan_ms = json::to_double(*v);
    }
    if (const json::Node* v = timing->find("execute_ms")) {
      r.execute_ms = json::to_double(*v);
    }
    if (const json::Node* v = timing->find("merge_ms")) {
      r.merge_ms = json::to_double(*v);
    }
  }
  if (const json::Node* wall = root.find("wall_ms")) {
    r.wall_ms = json::to_double(*wall);
  }
  return r;
}

}  // namespace cfc
