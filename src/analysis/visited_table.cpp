#include "analysis/visited_table.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cfc {

namespace {

constexpr std::size_t kInitialCapacity = 64;  // power of two

/// Key 0 marks an empty slot in both tables; remap the (astronomically
/// unlikely) fingerprint 0 to a fixed constant.
constexpr std::uint64_t normalize_key(std::uint64_t key) {
  return key == 0 ? 0x9e3779b97f4a7c15ULL : key;
}

/// (depth, preempt) packed as depth<<16 | preempt.
constexpr std::uint32_t pack(int depth, int preempt) {
  return (static_cast<std::uint32_t>(depth) << 16) |
         static_cast<std::uint32_t>(preempt);
}
constexpr int unpack_depth(std::uint32_t p) { return static_cast<int>(p >> 16); }
constexpr int unpack_preempt(std::uint32_t p) {
  return static_cast<int>(p & 0xffffu);
}

}  // namespace

std::uint64_t VisitedTable::normalize(std::uint64_t key) {
  // Key 0 marks an empty slot; remap the (astronomically unlikely)
  // fingerprint 0 to a fixed constant — the cache is already approximate
  // at 64-bit-collision fidelity.
  return key == 0 ? 0x9e3779b97f4a7c15ULL : key;
}

std::size_t VisitedTable::find_slot(std::uint64_t key) const {
  // Power-of-two capacity: mask instead of modulo, linear probing. The
  // caller guarantees a free or matching slot exists (load factor < 1).
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = (key * 0x9e3779b97f4a7c15ULL) & mask;
  while (slots_[i].key != 0 && slots_[i].key != key) {
    i = (i + 1) & mask;
  }
  return i;
}

void VisitedTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.empty() ? kInitialCapacity : old.size() * 2, Slot{});
  for (const Slot& s : old) {
    if (s.key != 0) {
      // Spill chains move with the slot: the nodes live in the arena, so
      // their addresses survive the rehash.
      slots_[find_slot(s.key)] = s;
    }
  }
}

void VisitedTable::spill_push(Slot& slot, std::uint32_t pair) {
  SpillNode* node;
  if (spill_free_ != nullptr) {
    node = spill_free_;
    spill_free_ = node->next;
  } else {
    node = spill_arena_.alloc<SpillNode>(1);
  }
  node->pair = pair;
  node->next = slot.spill_head;
  slot.spill_head = node;
  ++spill_live_;
}

bool VisitedTable::slot_dominates(const Slot& slot, int depth,
                                  int preempt) const {
  const auto dominates = [&](std::uint32_t p) {
    return p != kNoPair && unpack_depth(p) <= depth &&
           unpack_preempt(p) <= preempt;
  };
  for (const std::uint32_t p : slot.inline_pairs) {
    if (dominates(p)) {
      return true;
    }
  }
  for (const SpillNode* n = slot.spill_head; n != nullptr; n = n->next) {
    if (dominates(n->pair)) {
      return true;
    }
  }
  return false;
}

bool VisitedTable::dominated(std::uint64_t raw_key, int depth,
                             int preempt) const {
  if (slots_.empty()) {
    return false;
  }
  const std::uint64_t key = normalize(raw_key);
  const Slot& slot = slots_[find_slot(key)];
  return slot.key == key && slot_dominates(slot, depth, preempt);
}

void VisitedTable::insert(std::uint64_t raw_key, int depth, int preempt) {
  if (depth < 0 || depth > 0xffff || preempt < 0 || preempt > 0xffff) {
    throw std::out_of_range("VisitedTable: depth/preempt must fit 16 bits");
  }
  if (slots_.empty() || used_ * 10 >= slots_.size() * 7) {
    grow();
  }
  const std::uint64_t key = normalize(raw_key);
  insert_into(slots_[find_slot(key)], key, depth, preempt);
}

bool VisitedTable::check_and_insert(std::uint64_t raw_key, int depth,
                                    int preempt) {
  if (depth < 0 || depth > 0xffff || preempt < 0 || preempt > 0xffff) {
    throw std::out_of_range("VisitedTable: depth/preempt must fit 16 bits");
  }
  if (slots_.empty() || used_ * 10 >= slots_.size() * 7) {
    grow();
  }
  const std::uint64_t key = normalize(raw_key);
  Slot& slot = slots_[find_slot(key)];
  if (slot.key == key && slot_dominates(slot, depth, preempt)) {
    return true;
  }
  insert_into(slot, key, depth, preempt);
  return false;
}

void VisitedTable::insert_into(Slot& slot, std::uint64_t key, int depth,
                               int preempt) {
  if (slot.key == 0) {
    slot.key = key;
    ++used_;
  }

  // Drop stored pairs the new visit dominates (depth' >= depth and
  // preempt' >= preempt) so the antichain stays minimal.
  const std::uint32_t fresh = pack(depth, preempt);
  const auto is_dominated = [&](std::uint32_t p) {
    return unpack_depth(p) >= depth && unpack_preempt(p) >= preempt;
  };
  for (std::uint32_t& p : slot.inline_pairs) {
    if (p != kNoPair && is_dominated(p)) {
      p = kNoPair;
    }
  }
  SpillNode** link = &slot.spill_head;
  while (*link != nullptr) {
    SpillNode* node = *link;
    if (is_dominated(node->pair)) {
      *link = node->next;
      node->next = spill_free_;
      spill_free_ = node;
      --spill_live_;
    } else {
      link = &node->next;
    }
  }

  for (std::uint32_t& p : slot.inline_pairs) {
    if (p == kNoPair) {
      p = fresh;
      return;
    }
  }
  spill_push(slot, fresh);
}

// ----------------------------------------------------------- SleepCache

std::size_t SleepCache::find_slot(std::uint64_t key) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = (key * 0x9e3779b97f4a7c15ULL) & mask;
  while (slots_[i].key != 0 && slots_[i].key != key) {
    i = (i + 1) & mask;
  }
  return i;
}

void SleepCache::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.empty() ? kInitialCapacity : old.size() * 2, Slot{});
  for (const Slot& s : old) {
    if (s.key != 0) {
      // Spill chains move with the slot: arena addresses survive rehash.
      slots_[find_slot(s.key)] = s;
    }
  }
}

bool SleepCache::subsumed(std::uint64_t raw_key, std::uint32_t sleep) const {
  if (slots_.empty()) {
    return false;
  }
  const std::uint64_t key = normalize_key(raw_key);
  const Slot& slot = slots_[find_slot(key)];
  if (slot.key != key) {
    return false;
  }
  for (std::uint8_t i = 0; i < slot.inline_count; ++i) {
    if ((slot.inline_masks[i] & ~sleep) == 0) {
      return true;
    }
  }
  for (const SpillNode* n = slot.spill_head; n != nullptr; n = n->next) {
    if ((n->mask & ~sleep) == 0) {
      return true;
    }
  }
  return false;
}

void SleepCache::insert(std::uint64_t raw_key, std::uint32_t sleep) {
  if (slots_.empty() || used_ * 10 >= slots_.size() * 7) {
    grow();
  }
  const std::uint64_t key = normalize_key(raw_key);
  insert_into(slots_[find_slot(key)], key, sleep);
}

bool SleepCache::check_and_insert(std::uint64_t raw_key,
                                  std::uint32_t sleep) {
  if (slots_.empty() || used_ * 10 >= slots_.size() * 7) {
    grow();
  }
  const std::uint64_t key = normalize_key(raw_key);
  Slot& slot = slots_[find_slot(key)];
  if (slot.key == key) {
    for (std::uint8_t i = 0; i < slot.inline_count; ++i) {
      if ((slot.inline_masks[i] & ~sleep) == 0) {
        return true;
      }
    }
    for (const SpillNode* n = slot.spill_head; n != nullptr; n = n->next) {
      if ((n->mask & ~sleep) == 0) {
        return true;
      }
    }
  }
  insert_into(slot, key, sleep);
  return false;
}

void SleepCache::insert_into(Slot& slot, std::uint64_t key,
                             std::uint32_t sleep) {
  if (slot.key == 0) {
    slot.key = key;
    ++used_;
  }

  // Drop stored supersets of the new mask: the new visit explores at
  // least every branch they did, so the antichain stays minimal.
  std::uint8_t kept = 0;
  for (std::uint8_t i = 0; i < slot.inline_count; ++i) {
    if ((sleep & ~slot.inline_masks[i]) != 0) {
      slot.inline_masks[kept++] = slot.inline_masks[i];
    }
  }
  slot.inline_count = kept;
  SpillNode** link = &slot.spill_head;
  while (*link != nullptr) {
    SpillNode* node = *link;
    if ((sleep & ~node->mask) == 0) {
      *link = node->next;
      node->next = spill_free_;
      spill_free_ = node;
      --spill_live_;
    } else {
      link = &node->next;
    }
  }

  if (slot.inline_count < 2) {
    slot.inline_masks[slot.inline_count++] = sleep;
    return;
  }
  SpillNode* node;
  if (spill_free_ != nullptr) {
    node = spill_free_;
    spill_free_ = node->next;
  } else {
    node = spill_arena_.alloc<SpillNode>(1);
  }
  node->mask = sleep;
  node->next = slot.spill_head;
  slot.spill_head = node;
  ++spill_live_;
}

void SleepCache::clear() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  spill_arena_.reset();
  spill_free_ = nullptr;
  spill_live_ = 0;
  used_ = 0;
}

std::size_t SleepCache::bytes() const {
  return slots_.capacity() * sizeof(Slot) +
         static_cast<std::size_t>(spill_arena_.bytes_reserved());
}

std::size_t SleepCache::live_bytes() const {
  return used_ * sizeof(Slot) + spill_live_ * sizeof(SpillNode);
}

std::size_t VisitedTable::bytes() const {
  return slots_.capacity() * sizeof(Slot) +
         static_cast<std::size_t>(spill_arena_.bytes_reserved());
}

std::size_t VisitedTable::live_bytes() const {
  return used_ * sizeof(Slot) + spill_live_ * sizeof(SpillNode);
}

}  // namespace cfc
