#ifndef CFC_ANALYSIS_EXPERIMENT_H
#define CFC_ANALYSIS_EXPERIMENT_H

#include <cstdint>
#include <vector>

#include "analysis/experiment_runner.h"
#include "analysis/explorer.h"
#include "analysis/study.h"
#include "core/contention_detection.h"
#include "core/measures.h"
#include "mutex/mutex_algorithm.h"

namespace cfc {

/// Legacy per-problem measurement entry points, kept as thin forwarding
/// adapters over the unified Study/Campaign API (analysis/study.h) — each
/// builds a StudySpec, runs it, and repackages the StudyResult into the
/// historical per-problem structs. New code should use StudySpec/Campaign
/// directly; these remain for source compatibility and as the reference
/// shape of the paper's three measurements. The determinism contract
/// (bit-identical reports for every thread count; `runner = nullptr` uses
/// the shared hardware-sized pool) is inherited from the study engine.
/// (WorstCaseSearchOptions also lives in analysis/study.h now.)

/// Contention-free complexity of a mutual exclusion algorithm, measured per
/// the paper's Section 2.2 definition: for every process, run it alone
/// through one entry/exit session (all other processes stay in their
/// remainder regions) and take the maximum over processes.
struct MutexCfResult {
  ComplexityReport session;  ///< entry + exit (the paper's c-f complexity)
  ComplexityReport entry;    ///< entry code only
  ComplexityReport exit;     ///< exit code only
  int measured_atomicity = 0;
};

/// `max_pids` bounds how many processes get their own solo run (0 = all n).
/// The measurement is otherwise O(n^2): one fresh n-process simulation per
/// measured pid. Tree algorithms have uniform per-process cost, so sampling
/// loses nothing there; pass 0 when exactness over every pid matters.
[[nodiscard]] MutexCfResult measure_mutex_contention_free(
    const MutexFactory& make, int n,
    AccessPolicy policy = AccessPolicy::Unrestricted, int max_pids = 0,
    ExperimentRunner* runner = nullptr);

/// Worst-case entry estimate: maximum step/register complexity over the
/// paper's *clean* entry windows (no process in CS or exit anywhere in the
/// window). Under the Random strategy this is a lower bound on the true
/// worst case; under Exhaustive it is *certified* over all schedules of at
/// most limits.max_depth picks (`certified` below). For waiting algorithms
/// the unbounded worst case [AT92] grows with any depth budget.
struct MutexWcSearchResult {
  ComplexityReport entry;  ///< max over clean entry windows found
  ComplexityReport exit;   ///< max over exit windows found
  std::uint64_t schedules_tried = 0;  ///< runs (Random) / leaves (DFS)
  std::uint64_t states_visited = 0;
  /// Mutual-exclusion violations found (DFS strategies; violating
  /// schedules are excluded from the maxima). Nonzero means the algorithm
  /// is unsafe — the complexity certification is then over the safe
  /// schedules only.
  std::uint64_t violations = 0;
  /// Some run was cut off (budget/depth/preemption bound): the values may
  /// under-report anything beyond the explored space.
  bool truncated = false;
  /// Exhaustive/Bounded only: the whole bounded schedule space was covered
  /// (no max_states cut) — the values are the exact maxima over it.
  bool certified = false;
};

/// (The redundant seed-list overload — Random strategy over bare seeds —
/// was deprecated in PR 3 and removed per the ROADMAP deprecation plan:
/// set strategy/seeds/budget on WorstCaseSearchOptions, or use
/// StudySpec::worst_case.)
[[nodiscard]] MutexWcSearchResult search_mutex_worst_case(
    const MutexFactory& make, int n, int sessions,
    const WorstCaseSearchOptions& options, ExperimentRunner* runner = nullptr);

/// Contention-free complexity of a contention detector: solo run per
/// process, maximum over processes. Also verifies the solo process outputs
/// 1 (throws std::logic_error otherwise — a broken detector).
[[nodiscard]] ComplexityReport measure_detector_contention_free(
    const DetectorFactory& make, int n, ExperimentRunner* runner = nullptr);

/// Worst-case whole-run complexity of a detector (max over processes and
/// runs). Random samples; Exhaustive certifies over the bounded space —
/// detectors terminate in a bounded number of steps, so a sufficient
/// max_depth certifies the true worst case.
struct DetectorWcSearchResult {
  ComplexityReport best;
  std::uint64_t schedules_tried = 0;
  std::uint64_t states_visited = 0;
  std::uint64_t violations = 0;
  bool truncated = false;
  bool certified = false;
};

/// (The redundant seed-list overload — round-robin plus seeded randoms —
/// was deprecated in PR 3 and removed per the ROADMAP deprecation plan.
/// The battery shape is now a StudySpec option: Random strategy with
/// WorstCaseSearchOptions::detector_round_robin, or fluently
/// StudySpec::detector_battery().)
[[nodiscard]] DetectorWcSearchResult search_detector_worst_case(
    const DetectorFactory& make, int n, const WorstCaseSearchOptions& options,
    ExperimentRunner* runner = nullptr);

}  // namespace cfc

#endif  // CFC_ANALYSIS_EXPERIMENT_H
