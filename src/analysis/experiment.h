#ifndef CFC_ANALYSIS_EXPERIMENT_H
#define CFC_ANALYSIS_EXPERIMENT_H

#include <cstdint>
#include <vector>

#include "analysis/experiment_runner.h"
#include "core/contention_detection.h"
#include "core/measures.h"
#include "mutex/mutex_algorithm.h"

namespace cfc {

/// The experiment engine: every entry point fans its independent cells
/// (per-pid solo runs, per-seed schedule searches) across an
/// ExperimentRunner thread pool and reduces the per-cell results in index
/// order, so the reports are bit-identical for every thread count —
/// `ExperimentRunner seq(1)` is the reference sequential engine. Passing
/// `runner = nullptr` uses the shared hardware-sized pool.
///
/// Measurement is streaming: each cell attaches a MeasureAccumulator sink
/// and runs with trace materialization disabled, so long random-schedule
/// searches never allocate a trace.

/// Contention-free complexity of a mutual exclusion algorithm, measured per
/// the paper's Section 2.2 definition: for every process, run it alone
/// through one entry/exit session (all other processes stay in their
/// remainder regions) and take the maximum over processes.
struct MutexCfResult {
  ComplexityReport session;  ///< entry + exit (the paper's c-f complexity)
  ComplexityReport entry;    ///< entry code only
  ComplexityReport exit;     ///< exit code only
  int measured_atomicity = 0;
};

/// `max_pids` bounds how many processes get their own solo run (0 = all n).
/// The measurement is otherwise O(n^2): one fresh n-process simulation per
/// measured pid. Tree algorithms have uniform per-process cost, so sampling
/// loses nothing there; pass 0 when exactness over every pid matters.
[[nodiscard]] MutexCfResult measure_mutex_contention_free(
    const MutexFactory& make, int n,
    AccessPolicy policy = AccessPolicy::Unrestricted, int max_pids = 0,
    ExperimentRunner* runner = nullptr);

/// Worst-case entry estimate: maximum step/register complexity over the
/// paper's *clean* entry windows (no process in CS or exit anywhere in the
/// window), searched over seeded random schedules. A lower bound on the
/// true worst case; for waiting algorithms it grows with the search budget
/// (the worst case is unbounded, [AT92]).
struct MutexWcSearchResult {
  ComplexityReport entry;  ///< max over clean entry windows found
  ComplexityReport exit;   ///< max over exit windows found
  std::uint64_t schedules_tried = 0;
};

[[nodiscard]] MutexWcSearchResult search_mutex_worst_case(
    const MutexFactory& make, int n, int sessions,
    const std::vector<std::uint64_t>& seeds,
    std::uint64_t budget_per_run = 200'000,
    ExperimentRunner* runner = nullptr);

/// Contention-free complexity of a contention detector: solo run per
/// process, maximum over processes. Also verifies the solo process outputs
/// 1 (throws std::logic_error otherwise — a broken detector).
[[nodiscard]] ComplexityReport measure_detector_contention_free(
    const DetectorFactory& make, int n, ExperimentRunner* runner = nullptr);

/// Worst-case step/register complexity of a detector over seeded random
/// schedules plus the round-robin schedule (max over processes and runs).
[[nodiscard]] ComplexityReport search_detector_worst_case(
    const DetectorFactory& make, int n,
    const std::vector<std::uint64_t>& seeds,
    ExperimentRunner* runner = nullptr);

}  // namespace cfc

#endif  // CFC_ANALYSIS_EXPERIMENT_H
