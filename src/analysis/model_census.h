#ifndef CFC_ANALYSIS_MODEL_CENSUS_H
#define CFC_ANALYSIS_MODEL_CENSUS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment_runner.h"
#include "analysis/naming_complexity.h"
#include "memory/model.h"

namespace cfc {

/// The paper covers five of the 2^8 models and "leaves it as an exercise
/// for the reader to come up with bounds for the other models". This module
/// does the exercise: it classifies every model for deterministic naming
/// solvability and, for solvable models, measures the four complexity
/// measures with the best applicable algorithm (including the duals).
///
/// Solvability (deterministic, wait-free naming of identical processes):
/// a model can break symmetry iff it has an operation that both *returns*
/// the old value and *modifies* the bit — test-and-set, test-and-reset, or
/// test-and-flip. Ops that return nothing keep identical processes
/// identical; `read` returns the same value to every member of an identical
/// lockstep group (reads do not change the bit between them). The lockstep
/// adversary then keeps the group intact forever, so no member can safely
/// decide. The test suite validates both directions of this claim.
[[nodiscard]] bool naming_solvable(Model m);

/// Classification of one model.
struct ModelCensusEntry {
  Model model;
  bool solvable = false;
  /// For solvable models: the measured cells (best algorithm per measure)
  /// and the algorithms that achieved them.
  std::optional<Table2Cell> cells;
  std::vector<std::string> algorithms_used;
};

/// Classifies all 256 models at a given n (power of two >= 2 so the tree
/// algorithms apply). The candidate pool is every naming algorithm in the
/// AlgorithmRegistry (which covers every solvable model: the scans for
/// single rmw-op models, the read-searches, the trees and their duals);
/// candidates are measured once each, fanned across `runner`, and the 256
/// model cells reuse the measurements — identical results for every thread
/// count.
[[nodiscard]] std::vector<ModelCensusEntry> run_model_census(
    int n, const std::vector<std::uint64_t>& seeds,
    ExperimentRunner* runner = nullptr);

/// Summary counts over a census.
struct CensusSummary {
  int total = 0;
  int solvable = 0;
  int all_log_n = 0;    ///< models where all four measures are ~log n
  int all_n_minus_1 = 0;  ///< models stuck at n-1 in all four measures
};

[[nodiscard]] CensusSummary summarize(
    const std::vector<ModelCensusEntry>& census, int n);

}  // namespace cfc

#endif  // CFC_ANALYSIS_MODEL_CENSUS_H
