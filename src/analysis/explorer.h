#ifndef CFC_ANALYSIS_EXPLORER_H
#define CFC_ANALYSIS_EXPLORER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "analysis/experiment_runner.h"
#include "core/streaming_measures.h"
#include "sa/static_summary.h"
#include "sched/sched.h"
#include "sched/sim.h"

namespace cfc {

/// How a worst-case search walks the schedule space.
enum class SearchStrategy : std::uint8_t {
  /// Every interleaving within the depth bound — a *certified* bound over
  /// all schedules of at most max_depth picks (hashed-state fidelity).
  Exhaustive,
  /// Every interleaving with at most max_preemptions context switches
  /// (systematic concurrency testing's preemption-bounded search): far
  /// cheaper, and empirically the schedules that expose races.
  Bounded,
  /// Seeded random schedules — the legacy sampler. A lower bound only.
  Random,
};

[[nodiscard]] const char* name(SearchStrategy s);

/// How an Exhaustive DFS reduces the schedule tree (src/por/). Every
/// policy certifies the same objective maxima — the reductions only skip
/// schedules whose values are provably duplicated by an explored one —
/// which the POR differential suite asserts for every registry algorithm.
enum class ReductionPolicy : std::uint8_t {
  /// No reduction: every interleaving within the bounds (the pre-POR
  /// explorer).
  Off,
  /// PR 4's sleep-set-lite (register-only independence, local yields
  /// independent of everything). NOT measurement-aware: sound for totals
  /// and safety, validated-but-not-proven for the paper's window
  /// objectives, so certified window searches do not default to it.
  /// Selected by the legacy ExploreLimits::reduce_independent flag.
  SleepLite,
  /// Source-DPOR (por/source_dpor.h): full sleep sets under the
  /// measurement-aware dependence relation (por/dependence.h — register
  /// conflicts + section-change adjacency, which makes the cf-session /
  /// clean-entry / exit window objectives trace-invariant), with
  /// race-driven source-set backtracking instead of full sibling
  /// branching. The default for certified Exhaustive searches built
  /// through StudySpec. Composes with the sleep-set-aware visited cache
  /// (stateful DPOR) when ExploreLimits::prune_visited is on.
  SourceDpor,
  /// Per-search hybrid: probes the configuration under both the cached
  /// unreduced tree (Off + prune_visited) and SourceDpor with a small
  /// per-engine state budget and keeps the winner — the cheaper complete
  /// probe, or a full SourceDpor run when both probes hit the budget.
  /// The policy actually used is reported in Explorer::Result /
  /// StudyResult::wc_reduction, so the choice is auditable. Exhaustive
  /// only, like every reduction.
  Hybrid,
};

[[nodiscard]] const char* name(ReductionPolicy p);

/// Parses "off" | "sleep-lite" | "source-dpor" | "hybrid" (the bench
/// --reduction flag's vocabulary); nullopt on anything else.
[[nodiscard]] std::optional<ReductionPolicy> reduction_policy_from(
    std::string_view s);

struct ExploreLimits;

/// The single definition of the legacy-flag normalization: the policy a
/// limits struct effectively selects — `reduction`, except that the PR 4
/// compatibility flag `reduce_independent` maps Off to SleepLite. Used by
/// the Explorer constructor, the Study result filling, and the campaign
/// dedup key, so they can never disagree.
[[nodiscard]] ReductionPolicy effective_reduction(const ExploreLimits& l);

/// Budgets for a DFS exploration.
struct ExploreLimits {
  /// Scheduler picks per path (depth of the interleaving tree).
  int max_depth = 48;
  /// Context switches per path; -1 = unlimited (Exhaustive).
  int max_preemptions = -1;
  /// DFS node budget *per engine run* — per frontier cell, and under the
  /// parallel source-DPOR path per planner walk / per work item; 0 =
  /// unlimited. Exceeding it cuts the search (result no longer certified;
  /// ExploreStats::truncated).
  std::uint64_t max_states = 0;
  /// Depth of the parallel frontier split: prefixes of this many picks are
  /// distributed over the ExperimentRunner as independent cells. Fixed per
  /// configuration (never derived from the thread count), so results are
  /// bit-identical for every thread count.
  int frontier_depth = 4;
  /// Visited-state pruning (on by default). The cache is per frontier
  /// cell; keys combine core/state_fingerprint with the objective digest.
  /// Under SourceDpor this selects the sleep-set-aware cache instead
  /// (stateful DPOR — see ReductionPolicy::SourceDpor and SleepCache).
  bool prune_visited = true;
  /// Restore mechanics for sibling backtracks. Off (default): the recycled
  /// in-place rewind (Sim::rewind_to — zero Sim construction, pooled
  /// coroutine frames, the schedule log borrowed in place). On: the legacy
  /// fork-by-replay (a fresh Sim built and replayed per sibling), kept for
  /// the differential tests. The traversal is identical either way, so
  /// results — reports, fingerprints, every stat except sims_built — are
  /// bit-identical between the two paths.
  bool restore_by_fork = false;
  /// Mark-based partial restore (on by default): every branching node
  /// captures a Sim::RewindMark (memory + digests, O(registers +
  /// processes)) into a per-depth pool, and sibling restores value-replay
  /// ONLY the processes that acted below the node instead of rebuilding
  /// every process from the run's start (Sim::rewind_to_mark). No
  /// schedule unit is re-executed live — replayed_steps stays 0 on this
  /// path and the cheap log re-feed is counted in value_replayed_steps
  /// instead. The traversal — and with it every stat except those two —
  /// is bit-identical to the plain rewind. Ignored under restore_by_fork
  /// and under verify_restore_snapshot (both debug/differential paths
  /// keep the full-replay restore they verify).
  bool restore_marks = true;
  /// Debug: verify every restore against a full MemorySnapshot value
  /// compare in addition to the fingerprint/event-counter check. Costs a
  /// snapshot copy per branching node and a compare per restore.
  bool verify_restore_snapshot = false;
  /// The partial-order reduction applied to Exhaustive searches (src/por/;
  /// see ReductionPolicy). Off by default at this layer; the Study layer
  /// defaults its certified Exhaustive searches to SourceDpor. Visited
  /// pruning interplay: under SleepLite the sleep mask is folded into the
  /// visited-state key and dominance pruning composes; under SourceDpor
  /// prune_visited selects the *sleep-set-aware* cache (stateful DPOR): a
  /// revisit is skipped only when a stored visit's sleep set is a subset
  /// of the current one, and every skip still runs the bounded-horizon
  /// cut-point insertions (SourceDpor::note_cut) at the pruned node, so
  /// the path-dependent backtrack insertions the skipped subtree owes the
  /// current path are conservatively re-placed.
  ReductionPolicy reduction = ReductionPolicy::Off;
  /// Compatibility alias (pre-POR flag, PR 4): setting it selects the
  /// `sleep-lite` policy — skip sibling orderings whose next accesses
  /// touch disjoint registers, with local yields independent of
  /// everything. Kept so existing bench flags and JSON stay meaningful;
  /// the Explorer constructor normalizes it into `reduction` (and sets it
  /// back whenever reduction == SleepLite, so introspection through
  /// either field agrees). Exhaustive strategy only, like every policy.
  bool reduce_independent = false;
  /// Static dependence refinement (src/sa/): the Explorer dry-runs the
  /// configuration's footprint pass once up front (StaticModel::analyze)
  /// and the DFS strategies consult the resulting may-conflict table to
  /// refine the worst-case pending-side dependence checks — unstarted
  /// first units, armed crash units, and statically section-quiet plain
  /// writes (see por/dependence.h for the refinement and its soundness
  /// split). Value-preserving by construction/gating: the sa differential
  /// suite pins refined results bit-identical to unrefined ones. Off by
  /// default (opt-in per search); ignored by the Random strategy.
  bool static_refine = false;
};

/// Every u64 counter of ExploreStats, one row each — the single
/// enumeration behind the table-driven ExploreStats::merge and the
/// name/member table the observability layer reads
/// (explore_stats_fields()). A counter added here merges and exports
/// without further edits; whether it joins the study JSON stays a
/// separate, deliberate decision (CFC_STUDY_REDUCTION_COUNTERS in
/// study.h).
#define CFC_EXPLORE_STATS_COUNTERS(X) \
  X(states_visited)                   \
  X(runs_completed)                   \
  X(runs_truncated)                   \
  X(pruned_visited)                   \
  X(pruned_independent)               \
  X(violations)                       \
  X(races_detected)                   \
  X(backtrack_points)                 \
  X(sleep_blocked)                    \
  X(static_refined_pairs)             \
  X(restores)                         \
  X(replayed_steps)                   \
  X(value_replayed_steps)             \
  X(restore_marks)                    \
  X(work_items)                       \
  X(steals)                           \
  X(sims_built)                       \
  X(visited_bytes)                    \
  X(visited_live_bytes)

struct ExploreStats {
  std::uint64_t states_visited = 0;  ///< DFS nodes entered (all cells)
  std::uint64_t runs_completed = 0;  ///< leaves with no runnable process
  std::uint64_t runs_truncated = 0;  ///< leaves cut by depth/preemption/state budget
  std::uint64_t pruned_visited = 0;  ///< subtrees skipped by the state cache
  std::uint64_t pruned_independent = 0;  ///< branches skipped by sleep sets
  std::uint64_t violations = 0;      ///< MutualExclusionViolations found
  /// --- Reduction counters (zero when reduction == Off). ---
  std::uint64_t races_detected = 0;   ///< SourceDpor: races found in traces
  std::uint64_t backtrack_points = 0; ///< SourceDpor: source-set insertions
  std::uint64_t sleep_blocked = 0;    ///< enabled branches skipped asleep
                                      ///< (== pruned_independent, new name)
  /// Pending-side dependence pairs the static refinement
  /// (ExploreLimits::static_refine, src/sa/) flipped from worst-case
  /// dependent to independent — each one a sleep transfer kept, a
  /// cut-point bucket not placed, or an initial-set membership granted
  /// that the unrefined relation would have denied. Zero when the
  /// refinement is off. Thread-count invariant, like every counter here
  /// except steals/sims_built.
  std::uint64_t static_refined_pairs = 0;
  std::uint64_t restores = 0;        ///< sibling backtracks performed
  /// Schedule units re-executed *live* by restores — the full simulation
  /// replay of the plain rewind and fork-by-replay paths. Mark-based
  /// restores re-execute nothing live, so this stays 0 under the default
  /// restore_marks; their cost lives in value_replayed_steps.
  std::uint64_t replayed_steps = 0;
  /// Units re-fed from the recorded value log by mark restores
  /// (Sim::rewind_to_mark): coroutine resumption with recorded values,
  /// no register traffic, no measurement events — the cheap counterpart
  /// of replayed_steps, counted separately so the two restore cost models
  /// stay comparable.
  std::uint64_t value_replayed_steps = 0;
  std::uint64_t restore_marks = 0;   ///< RewindMarks captured at branching nodes
  /// --- Parallel source-DPOR counters. ---
  /// Work items the planner emitted (horizon subtrees fanned over the
  /// worker pool). Thread-count invariant, like every counter above.
  std::uint64_t work_items = 0;
  /// Work items a worker claimed from another worker's queue. The ONE
  /// deliberately thread-dependent counter (with sims_built, which counts
  /// one private Sim per pool worker): it reports scheduler behaviour,
  /// not search shape, and is excluded from the study JSON and from the
  /// bit-identity gates.
  std::uint64_t steals = 0;
  std::uint64_t sims_built = 0;      ///< Sim constructions + setup executions
  std::uint64_t visited_bytes = 0;   ///< bytes reserved by the visited tables
  /// Bytes of *live* visited-table entries (occupied slots + live spill
  /// nodes); visited_bytes reports reserved capacity, including the spill
  /// freelist — the bench memory column shows both.
  std::uint64_t visited_live_bytes = 0;
  /// True iff some path was cut off before terminating: the objective max
  /// is certified only over the explored bounded space. (For waiting
  /// algorithms, whose schedule space is infinite, this is unavoidable.)
  bool truncated = false;
  /// True iff a cell hit max_states: the *bounded* space itself was not
  /// fully covered, so the result is not certified even within the bounds.
  bool state_budget_hit = false;
  /// True iff the frontier split depth was clamped below the requested
  /// frontier_depth by the cell cap (n^f would exceed it). Advisory — the
  /// search is still complete, just with a coarser parallel fan-out — but
  /// machine-readable here and in the study JSON instead of only a
  /// one-shot stderr warning.
  bool frontier_clamped = false;

  void merge(const ExploreStats& o);
};

/// Name + member-pointer row for one u64 counter of ExploreStats.
struct ExploreStatsField {
  const char* name;
  std::uint64_t ExploreStats::*member;
};

/// The counter table generated from CFC_EXPLORE_STATS_COUNTERS, in
/// declaration order. Backs merge() and lets tooling iterate the counters
/// by name without hand-maintained lists.
[[nodiscard]] std::span<const ExploreStatsField> explore_stats_fields();

/// The measurement fields an exploration maximizes.
struct ExploreObjective {
  /// Evaluated at every leaf (completed or truncated run); the explorer
  /// keeps the index-wise max_with over all leaves. The vector's arity must
  /// be fixed across calls, and eval must be *monotone along a run*
  /// (extending a run never decreases any field — true for the streaming
  /// window maxima and for whole-run totals); visited-state pruning relies
  /// on it. Null = pure safety exploration (no objective).
  std::function<std::vector<ComplexityReport>(const Sim&,
                                              const MeasureAccumulator&)>
      eval;
  /// Digest of the accumulator state the objective's *future* values can
  /// depend on; folded into the visited-state key so pruning never merges
  /// states with measurement-relevant different pasts. Defaults to
  /// MeasureAccumulator::digest() (always sound, weakest pruning); use
  /// window_digest() for window-maxima objectives.
  std::function<std::uint64_t(const MeasureAccumulator&)> digest;
};

/// A DFS over scheduler choices with configurable budgets, recycled-rewind
/// backtracking, and visited-state pruning — the schedule-space exploration
/// engine behind the certified worst-case searches.
///
/// Mechanics: the explorer keeps ONE live simulation per frontier cell and
/// descends by stepping it, ordering branches continue-last-pid-first so
/// the restore-free first descent walks the preemption-free spine.
/// Coroutine frames cannot be copied, so backtracking re-executes the
/// node's schedule prefix — but in place (Sim::rewind_to): the live Sim is
/// reset to its post-setup baseline (registers restored from a
/// once-per-cell snapshot, coroutine frames recycled through the per-Sim
/// arena, the schedule log borrowed where it sits) and quietly replayed,
/// with the node's MeasureAccumulator snapshot (plain data, held in a
/// per-depth scratch pool) restored by assignment. Steady state, a restore
/// performs zero Sim heap allocation; restores are verified by memory
/// fingerprint and event counter (full snapshot compare behind
/// ExploreLimits::verify_restore_snapshot). The legacy fork-by-replay
/// restore is retained behind ExploreLimits::restore_by_fork and is
/// bit-identical in results.
///
/// Parallelism: prefixes of frontier_depth picks partition the tree into
/// independent subtrees, fanned over an ExperimentRunner; per-cell results
/// reduce in index order, so reports are bit-identical for every thread
/// count.
class Explorer {
 public:
  /// Rebuilds the simulation under exploration and returns an owner handle
  /// for objects that must outlive it (the algorithm instance holding the
  /// register layout). Must be deterministic — it runs once per fork.
  using SetupFn = std::function<std::shared_ptr<void>(Sim&)>;

  struct Config {
    int nprocs = 0;             ///< processes the setup spawns
    SetupFn setup;              ///< registers + processes + sim config
    SearchStrategy strategy = SearchStrategy::Exhaustive;
    ExploreLimits limits;       ///< DFS budgets (Exhaustive/Bounded)
    std::vector<std::uint64_t> seeds;  ///< Random: one run per seed
    std::uint64_t random_budget = 200'000;  ///< Random: steps per run
    ExploreObjective objective;
    /// The static may-conflict table (limits.static_refine): built once
    /// by the Explorer constructor from `setup`, shared read-only across
    /// every cell/worker (and inherited by Hybrid's probe Explorers, so
    /// the pass runs once per search). Null when refinement is off.
    std::shared_ptr<const StaticModel> statics;
  };

  struct Result {
    ExploreStats stats;
    /// Index-wise max_with over all evaluated leaves of objective.eval's
    /// vector; empty when no leaf was evaluated or eval is null. Reports
    /// carry truncated=true when any contributing run was cut off.
    std::vector<ComplexityReport> best;
    /// The reduction policy that actually produced `best`. Equal to the
    /// configured effective policy except under Hybrid, where it reports
    /// the probe winner (Off or SourceDpor) — the auditable choice
    /// surfaced through StudyResult::wc_reduction.
    ReductionPolicy reduction_used = ReductionPolicy::Off;
  };

  explicit Explorer(Config cfg);

  /// Number of frontier cells a DFS run partitions into: n^f with f the
  /// (clamped, cap-limited, overflow-guarded) frontier depth. The single
  /// definition behind run()'s cell grid for the Off/SleepLite policies —
  /// with the rewind restore those build exactly this many Sims
  /// (ExploreStats::sims_built). Under SourceDpor the same f is the
  /// planner horizon instead: work items number at most n^f (sleep
  /// pruning drops covered prefix orderings) and sims_built is one
  /// planner Sim plus one per pool worker.
  [[nodiscard]] static std::size_t frontier_cells(int nprocs,
                                                  const ExploreLimits& limits);

  /// Runs the exploration. `runner == nullptr` uses the shared pool.
  [[nodiscard]] Result run(ExperimentRunner* runner = nullptr) const;

 private:
  [[nodiscard]] Result run_random_strategy(ExperimentRunner* runner) const;
  /// The Hybrid dispatch: probes the configuration under Off+cache and
  /// SourceDpor with a small shared state budget, keeps the cheaper
  /// complete probe, and falls back to a full SourceDpor run when both
  /// probes exhaust the budget. Probe stats are discarded — the returned
  /// stats describe only the winning (or fallback) run.
  [[nodiscard]] Result run_hybrid(ExperimentRunner* runner) const;
  /// The parallel source-DPOR path: a sequential planner fans the top f
  /// levels into self-contained work items, executed by a work-stealing
  /// worker pool; results merge in item index order, so everything except
  /// steals/sims_built is bit-identical at every thread count.
  [[nodiscard]] Result run_source_dpor(ExperimentRunner* runner) const;

  Config cfg_;
};

}  // namespace cfc

#endif  // CFC_ANALYSIS_EXPLORER_H
