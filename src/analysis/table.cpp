#include "analysis/table.h"

#include <algorithm>
#include <sstream>

namespace cfc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto pad = [](const std::string& s, std::size_t w, bool left) {
    std::string out;
    if (left) {
      out = s + std::string(w - s.size(), ' ');
    } else {
      out = std::string(w - s.size(), ' ') + s;
    }
    return out;
  };
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << pad(row[c], width[c], c == 0);
    }
    os << " |\n";
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

}  // namespace cfc
