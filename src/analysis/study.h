#ifndef CFC_ANALYSIS_STUDY_H
#define CFC_ANALYSIS_STUDY_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment_runner.h"
#include "analysis/explorer.h"
#include "core/contention_detection.h"
#include "core/measures.h"
#include "mutex/mutex_algorithm.h"
#include "naming/naming_algorithm.h"
#include "sched/sim.h"

namespace cfc {

/// The unified Study/Campaign API: one declarative front door for every
/// measurement driver the paper's framework defines — contention-free
/// measurement and worst-case schedule search, for mutual exclusion, naming
/// and contention detection alike. The per-problem entry points in
/// analysis/experiment.h and analysis/naming_complexity.h are thin
/// forwarding adapters over this layer.
///
/// Determinism contract (inherited from the experiment engine): a study's
/// independent cells are fanned across an ExperimentRunner and reduced in a
/// fixed order, so every StudyResult is bit-identical for every thread
/// count; `ExperimentRunner seq(1)` is the reference sequential engine.
/// Only StudyResult::wall_ms is nondeterministic, and the canonical JSON
/// serializer can exclude it (StudyJsonOptions::include_timing).

/// Which of the paper's three problems a study measures.
enum class StudyKind : std::uint8_t { Mutex, Naming, Detector };

[[nodiscard]] const char* name(StudyKind k);

/// How to search for worst cases: the strategy plus its budgets. The
/// Exhaustive/Bounded strategies run the schedule-space Explorer (DFS with
/// checkpoint-based backtracking and visited-state pruning); Random is the
/// legacy seeded sampler. (Naming studies instead run the fixed adversary
/// battery — sequential, round-robin, the Theorem 6 lockstep adversary —
/// plus one random schedule per seed; strategy and limits are ignored.)
struct WorstCaseSearchOptions {
  SearchStrategy strategy = SearchStrategy::Random;
  /// Random: one run per seed, each `budget_per_run` picks long.
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  std::uint64_t budget_per_run = 200'000;
  /// Exhaustive/Bounded: the DFS budgets (including limits.reduction, the
  /// partial-order-reduction policy). Bounded additionally requires
  /// limits.max_preemptions >= 0 (Exhaustive ignores it).
  ExploreLimits limits;
  /// Detector studies under the Random strategy: additionally run the
  /// deterministic round-robin schedule as part of the battery (the
  /// historical search_detector_worst_case seeds-overload semantics,
  /// folded into the spec). Ignored by other kinds and strategies.
  bool detector_round_robin = false;
  /// Crash injection, applied after the subject's setup: process p crashes
  /// at its crash_after[p]-th access attempt (Sim::crash_after). An empty
  /// vector injects nothing; entries past n-1 are ignored by the sim.
  /// Part of the measurement identity, so it feeds the campaign dedup key.
  std::vector<std::uint64_t> crash_after;
};

/// Declarative description of one study: a subject (an AlgorithmRegistry
/// name, or an ad-hoc factory with a display label) plus the measurements
/// to run on it. Built fluently:
///
///   StudySpec::of("peterson-2p")
///       .kind(StudyKind::Mutex)
///       .n(2)
///       .contention_free()
///       .worst_case(SearchStrategy::Exhaustive)
///       .depth(20);
///
/// The fluent methods return *this, so specs compose inline and can also be
/// grown incrementally. Fields are public for the engine and for tests;
/// prefer the fluent surface when building specs.
struct StudySpec {
  /// Registry key of the subject, or a display label when an ad-hoc
  /// factory is set. Resolution happens at Campaign::run time.
  std::string subject_name;
  StudyKind study_kind = StudyKind::Mutex;
  int procs = 2;
  /// Mutex worst-case search: entry/exit sessions per process.
  int mutex_sessions = 1;
  /// Mutex contention-free measurement: simulator access policy.
  AccessPolicy access = AccessPolicy::Unrestricted;
  /// Mutex contention-free measurement: how many processes get their own
  /// solo run (0 = all n). Tree algorithms have uniform per-process cost,
  /// so sampling loses nothing there.
  int cf_pid_sample = 0;
  bool want_cf = false;
  bool want_wc = false;
  WorstCaseSearchOptions search;
  /// Ad-hoc subjects: exactly the factory matching `study_kind` may be
  /// set; it overrides registry lookup (and is never deduplicated across
  /// campaign specs — only registry subjects are).
  MutexFactory adhoc_mutex;
  NamingFactory adhoc_naming;
  DetectorFactory adhoc_detector;
  /// Observability wiring (trace() / progress()). Not part of the
  /// measurement identity: excluded from the campaign dedup key, and the
  /// engine guarantees identical results with it on or off.
  std::string trace_path;
  bool want_progress = false;
  std::string progress_path;  ///< empty = human heartbeat to stderr
  int progress_interval_ms = 500;

  [[nodiscard]] static StudySpec of(std::string subject);

  StudySpec& kind(StudyKind k);
  StudySpec& n(int nprocs);
  StudySpec& sessions(int s);
  StudySpec& policy(AccessPolicy p);
  StudySpec& sample_pids(int max_pids);
  StudySpec& contention_free();
  StudySpec& worst_case();
  /// Selects the strategy; an Exhaustive search additionally defaults to
  /// the source-dpor reduction policy (the certified searches' default —
  /// override with reduction() or a full options struct).
  StudySpec& worst_case(SearchStrategy s);
  StudySpec& worst_case(const WorstCaseSearchOptions& options);
  /// The partial-order-reduction policy of the DFS strategies.
  StudySpec& reduction(ReductionPolicy policy);
  /// Opts the DFS strategies into the static footprint/conflict refinement
  /// of the dependence relation (src/sa/, ExploreLimits::static_refine).
  /// Sticky across a later limits() call, like the reduction policy.
  StudySpec& static_refine(bool on = true);
  /// Detector + Random only: include the round-robin schedule in the
  /// battery (the legacy detector worst-case battery shape).
  StudySpec& detector_battery();
  StudySpec& seeds(std::vector<std::uint64_t> s);
  /// Crash injection for the worst-case search (per-pid access thresholds;
  /// see WorstCaseSearchOptions::crash_after).
  StudySpec& crash(std::vector<std::uint64_t> after);
  StudySpec& budget(std::uint64_t per_run);
  /// Observability (src/obs/): record a Chrome trace-event / Perfetto
  /// trace of the campaign run to `path`. Purely observational — never
  /// part of the dedup key, never changes any study value; the campaign
  /// honors the first non-empty path among its specs (an already-running
  /// outer tracer wins).
  StudySpec& trace(std::string path);
  /// Observability (src/obs/): emit periodic progress heartbeats while
  /// the campaign runs — JSONL to `path`, or the human format to stderr
  /// when `path` is empty. Observational only, like trace().
  StudySpec& progress(std::string path = {}, int interval_ms = 500);
  /// Replaces the DFS budgets. A struct that names no reduction policy
  /// keeps the one already selected (e.g. worst_case(Exhaustive)'s
  /// source-dpor default), so the fluent order does not matter; use
  /// reduction(ReductionPolicy::Off) to force the unreduced tree.
  StudySpec& limits(const ExploreLimits& l);
  StudySpec& depth(int max_depth);
  StudySpec& factory(MutexFactory f);
  StudySpec& factory(NamingFactory f);
  StudySpec& factory(DetectorFactory f);
};

/// The reduction counters of a worst-case search, as one table: X(field,
/// "json_key", stats_member, required). The StudyResult fields, the
/// canonical JSON emission order inside the "reduction" object (after
/// policy/requested), the parser (non-required keys are optional, so
/// payloads written before a counter existed keep parsing as zero), and
/// the ExploreStats copy in the study engine are all generated from this
/// list — adding a counter is one line here plus its ExploreStats source.
#define CFC_STUDY_REDUCTION_COUNTERS(X)                                   \
  X(races_detected, "races_detected", races_detected, true)               \
  X(backtrack_points, "backtrack_points", backtrack_points, true)         \
  X(sleep_blocked, "sleep_blocked", sleep_blocked, true)                  \
  X(cache_hits, "cache_hits", pruned_visited, false)                      \
  X(work_items, "work_items", work_items, false)                          \
  X(restore_marks, "restore_marks", restore_marks, false)                 \
  X(static_refined_pairs, "static_refined_pairs", static_refined_pairs,   \
    false)

/// The uniform result of one study. Absent measurements are flagged off and
/// zero-valued. Semantics per kind:
///
///  * Mutex: cf is the paper's contention-free session (entry + exit, max
///    over processes), refined by cf_entry / cf_exit; wc_entry / wc_exit
///    are the clean-entry and exit window maxima found by the search and
///    wc is their sum (the paper's worst-case complexity).
///  * Naming: cf is the sequential-schedule max over processes; wc the max
///    over the adversary battery; entry/exit refinements are zero.
///  * Detector: cf is the solo-run max over processes; wc the whole-run
///    max found; entry/exit refinements are zero.
struct StudyResult {
  std::string subject;  ///< resolved algorithm name
  StudyKind kind = StudyKind::Mutex;
  int n = 0;
  int sessions = 1;

  bool has_cf = false;
  ComplexityReport cf;
  ComplexityReport cf_entry;
  ComplexityReport cf_exit;
  int measured_atomicity = 0;

  bool has_wc = false;
  SearchStrategy wc_strategy = SearchStrategy::Random;
  /// The partial-order-reduction policy the search actually ran under
  /// (DFS strategies; Random reports Off). Under ReductionPolicy::Hybrid
  /// this is the probe winner — Off or SourceDpor — so the per-cell
  /// choice is auditable; wc_reduction_requested keeps the configured
  /// policy. Counters: races the source-DPOR race detector found over
  /// executed traces, backtrack points it inserted (source-set +
  /// cut-point placements), enabled branches the sleep sets skipped, and
  /// subtrees the visited caches pruned (under SourceDpor: the
  /// sleep-set-aware SleepCache hits of stateful DPOR).
  ReductionPolicy wc_reduction = ReductionPolicy::Off;
  ReductionPolicy wc_reduction_requested = ReductionPolicy::Off;
  std::uint64_t races_detected = 0;
  std::uint64_t backtrack_points = 0;
  std::uint64_t sleep_blocked = 0;
  std::uint64_t cache_hits = 0;
  /// Parallel source-DPOR: work items the planner emitted and rewind
  /// marks the engines captured at branching nodes. Thread-count
  /// invariant, like every counter here (the deliberately thread-DEPENDENT
  /// counters — steals, sims_built — are excluded from study results, so
  /// the canonical JSON stays byte-identical at every thread count).
  std::uint64_t work_items = 0;
  std::uint64_t restore_marks = 0;
  /// Static model analysis (src/sa/): pending-side dependence pairs the
  /// footprint/conflict refinement flipped from worst-case dependent to
  /// independent during the search. Zero unless the spec opted in via
  /// static_refine() (ExploreLimits::static_refine).
  std::uint64_t static_refined_pairs = 0;
  ComplexityReport wc;
  ComplexityReport wc_entry;
  ComplexityReport wc_exit;
  std::uint64_t schedules_tried = 0;
  std::uint64_t states_visited = 0;
  /// Mutual-exclusion violations found (DFS strategies; violating
  /// schedules are excluded from the maxima). Nonzero means the algorithm
  /// is unsafe — the complexity certification is then over the safe
  /// schedules only.
  std::uint64_t violations = 0;
  /// Some run was cut off (budget/depth/preemption bound): the values may
  /// under-report anything beyond the explored space.
  bool truncated = false;
  /// Exhaustive/Bounded only: the whole bounded schedule space was covered
  /// (no max_states cut) — the values are the exact maxima over it.
  bool certified = false;
  /// The parallel frontier split was clamped below the requested depth by
  /// the cell cap (ExploreStats::frontier_clamped). Advisory — coverage is
  /// unaffected — but surfaced so the coarser fan-out is machine-readable.
  bool frontier_clamped = false;

  /// Wall-clock measurement time attributed to this study: the summed
  /// durations of its cells (a shared, deduplicated measurement counts
  /// fully for every spec that uses it). Nondeterministic — excluded from
  /// the canonical JSON when StudyJsonOptions::include_timing is false.
  double wall_ms = 0.0;
  /// Phase breakdown of the campaign run this study rode in (the optional
  /// "timing" object of cfc.study.v1): planning (subject resolution,
  /// dedup, grid build), cell execution (== wall_ms, the per-spec summed
  /// cell durations), and the merge (reductions + result assembly).
  /// plan_ms/merge_ms are campaign-wide phases, attributed fully to every
  /// study of the run. Nondeterministic, gated like wall_ms.
  double plan_ms = 0.0;
  double execute_ms = 0.0;
  double merge_ms = 0.0;
};

/// Aggregate counters of one Campaign::run, for observability and tests.
struct CampaignStats {
  std::size_t specs = 0;
  std::size_t tasks_planned = 0;       ///< unique measurement tasks run
  std::size_t tasks_deduplicated = 0;  ///< spec requests served by an
                                       ///< identical earlier task
  std::size_t cells = 0;               ///< schedulable cells fanned out
  /// Wall-clock duration of each cell of the flat grid, in grid (round-
  /// robin interleave) order — cell_wall_ms.size() == cells. The
  /// per-cell timing truth behind the progress heartbeat and the
  /// checkpoint/resume planning in ROADMAP's campaign-service item.
  std::vector<double> cell_wall_ms;
  double plan_ms = 0.0;   ///< resolve/dedup/grid-build phase
  double merge_ms = 0.0;  ///< reduce + result-assembly phase
};

/// A batch of studies executed as one flat cell grid: every spec's
/// independent cells (per-pid solo runs, per-schedule adversary runs,
/// whole searches) are interleaved round-robin across specs and fanned
/// over ONE ExperimentRunner::parallel_for — no per-spec barriers — then
/// reduced per spec in a fixed order. Identical measurement requests from
/// different specs (same registry subject, kind, n, and measurement
/// parameters, seeds included) are deduplicated: the cells run once and
/// every requesting spec shares the reduced result. Results are returned
/// in spec insertion order and are bit-identical for every thread count.
class Campaign {
 public:
  Campaign() = default;

  Campaign& add(StudySpec spec);
  Campaign& add(std::vector<StudySpec> specs);

  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] const std::vector<StudySpec>& specs() const { return specs_; }

  /// Runs every study. `runner == nullptr` uses the shared hardware-sized
  /// pool; `stats`, when non-null, receives the plan/dedup counters.
  [[nodiscard]] std::vector<StudyResult> run(
      ExperimentRunner* runner = nullptr, CampaignStats* stats = nullptr) const;

 private:
  std::vector<StudySpec> specs_;
};

/// Convenience: a one-spec campaign.
[[nodiscard]] StudyResult run_study(const StudySpec& spec,
                                    ExperimentRunner* runner = nullptr);

/// --- The canonical JSON serialization (schema "cfc.study.v1"). ---

struct StudyJsonOptions {
  /// Emit the nondeterministic timing fields (the "timing" phase object
  /// and wall_ms). Switch off to compare serialized results byte-for-byte
  /// across thread counts or hosts.
  bool include_timing = true;
};

[[nodiscard]] std::string to_json(const StudyResult& r,
                                  const StudyJsonOptions& opts = {});
[[nodiscard]] std::string to_json(const std::vector<StudyResult>& results,
                                  const StudyJsonOptions& opts = {});

/// Parses a single serialized StudyResult (the exact schema to_json
/// emits). Throws std::invalid_argument on malformed input. wall_ms parses
/// to 0.0 when absent.
[[nodiscard]] StudyResult study_from_json(const std::string& json);

namespace detail {

/// Internal: one detector run under `sched`, measured streaming — the max
/// whole-run complexity over all processes, `truncated` set on budget
/// exhaustion. The single definition shared by the Study engine's detector
/// tasks and the legacy fixed-schedule battery in experiment.cpp.
/// `expect_solo_winner` additionally verifies the solo process's output
/// (throws std::logic_error on a broken detector).
[[nodiscard]] ComplexityReport run_detector_cell(
    const DetectorFactory& make, int n, Scheduler& sched,
    std::optional<Pid> expect_solo_winner);

}  // namespace detail

}  // namespace cfc

#endif  // CFC_ANALYSIS_STUDY_H
