#include "analysis/model_census.h"

#include <limits>

#include "core/algorithm_registry.h"
#include "core/bounds.h"

namespace cfc {

bool naming_solvable(Model m) {
  return m.supports(BitOp::TestAndSet) || m.supports(BitOp::TestAndReset) ||
         m.supports(BitOp::TestAndFlip);
}

std::vector<ModelCensusEntry> run_model_census(
    int n, const std::vector<std::uint64_t>& seeds,
    ExperimentRunner* runner) {
  // The candidate pool is the registry's full naming catalogue, measured
  // once per candidate through one Campaign (analysis/study.h); the 256
  // model cells below reuse the measurements.
  const RegistryNamingMeasurements reg =
      measure_registry_naming(n, seeds, runner);
  const auto& candidates = reg.candidates;
  const auto& measured = reg.measured;

  std::vector<ModelCensusEntry> out;
  out.reserve(256);
  for (int mask = 0; mask < 256; ++mask) {
    ModelCensusEntry entry;
    entry.model = Model::from_mask(static_cast<std::uint8_t>(mask));
    entry.solvable = naming_solvable(entry.model);
    if (entry.solvable) {
      Table2Column col;
      col.model = entry.model;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (entry.model.includes(candidates[i]->info.required_model)) {
          col.algorithms.push_back(measured[i]);
          entry.algorithms_used.push_back(measured[i].name);
        }
      }
      // Every solvable model admits at least one single-op candidate
      // (tas-scan, tar-scan, or taf-tree).
      entry.cells = col.best();
    }
    out.push_back(std::move(entry));
  }
  return out;
}

CensusSummary summarize(const std::vector<ModelCensusEntry>& census, int n) {
  CensusSummary s;
  const int log_n = bounds::ceil_log2(static_cast<std::uint64_t>(n));
  for (const ModelCensusEntry& e : census) {
    s.total += 1;
    if (!e.solvable) {
      continue;
    }
    s.solvable += 1;
    if (!e.cells.has_value()) {
      continue;
    }
    const Table2Cell& c = *e.cells;
    // "~log n": allow the +1 constant of the search algorithms.
    const auto is_log = [log_n](int v) { return v <= log_n + 1; };
    if (is_log(c.cf_register) && is_log(c.cf_step) && is_log(c.wc_register) &&
        is_log(c.wc_step)) {
      s.all_log_n += 1;
    }
    if (c.cf_register == n - 1 && c.cf_step == n - 1 &&
        c.wc_register == n - 1 && c.wc_step == n - 1) {
      s.all_n_minus_1 += 1;
    }
  }
  return s;
}

}  // namespace cfc
